(* Quickstart: boot a 3-node Treaty cluster (full security profile), connect
   an authenticated client, and run a few transactions.

   Run with: dune exec examples/quickstart.exe *)

open Treaty_core
module Sim = Treaty_sim.Sim

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let () =
  (* Everything runs on the deterministic simulator: one Sim.t is the
     "datacenter", and all cluster activity happens inside Sim.run. *)
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      (* The full system: SGX(SCONE) + encryption + authentication +
         stabilization (rollback protection). *)
      let config = Config.with_profile Config.default Config.treaty_enc_stab in
      Printf.printf "booting %d-node cluster (%s)...\n%!" config.Config.nodes
        (Config.profile_name config.Config.profile);
      let cluster =
        match Cluster.create sim config () with
        | Ok c -> c
        | Error m -> failwith ("bootstrap failed: " ^ m)
      in
      Printf.printf "cluster up at t=%.1f ms (CAS attested over IAS, %d nodes provisioned)\n%!"
        (float_of_int (Sim.now sim) /. 1e6)
        config.Config.nodes;

      (* Clients authenticate with the CAS and register with the nodes. *)
      let client = Client.connect_exn cluster ~client_id:1 in

      (* A read-modify-write transaction across whatever shards the keys
         happen to live on — 2PC and stabilization are transparent. *)
      let result =
        Client.with_txn client (fun txn ->
            let* () = Client.put client txn "alice" "100" in
            let* () = Client.put client txn "bob" "42" in
            let* balance = Client.get client txn "alice" in
            Printf.printf "  in-txn read of alice: %s (read-your-own-writes)\n%!"
              (Option.value ~default:"<none>" balance);
            Ok ())
      in
      (match result with
      | Ok () -> print_endline "  transaction committed (stabilized: rollback-protected)"
      | Error e -> Printf.printf "  aborted: %s\n" (Types.abort_reason_to_string e));

      (* A second transaction observes the first (serializably). *)
      (match
         Client.with_txn client (fun txn ->
             let* a = Client.get client txn "alice" in
             let* b = Client.get client txn "bob" in
             Printf.printf "  alice=%s bob=%s\n%!"
               (Option.value ~default:"<none>" a)
               (Option.value ~default:"<none>" b);
             Ok ())
       with
      | Ok () -> ()
      | Error e -> Printf.printf "read failed: %s\n" (Types.abort_reason_to_string e));

      (* Deletes work too. *)
      ignore
        (Client.with_txn client (fun txn -> Client.delete client txn "bob"));
      (match Client.with_txn client (fun txn -> Client.get client txn "bob") with
      | Ok None -> print_endline "  bob deleted"
      | Ok (Some _) -> print_endline "  bob still there?!"
      | Error _ -> ());

      Printf.printf "stats: %d committed, %d aborted across the cluster\n"
        (Cluster.total_committed cluster)
        (Cluster.total_aborted cluster);
      Client.disconnect client;
      Cluster.shutdown cluster);
  Printf.printf "done; %.2f ms of simulated time\n" (float_of_int (Sim.now sim) /. 1e6)
