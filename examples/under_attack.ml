(* Treaty under attack: mounts the attacks from the paper's threat model
   (§III) against a live cluster and shows each one being detected or
   neutralized — and, for contrast, the same attacks succeeding against the
   unprotected DS-RocksDB baseline.

   1. Network tampering: flipping bits in 2PC traffic.
   2. Message replay: re-injecting a captured request.
   3. Persistent storage tampering: flipping bits on the SSD.
   4. Rollback attack: restoring an older (consistent!) disk snapshot.
   5. Impersonation: a client with a forged token; a node running modified
      code trying to attest.

   Run with: dune exec examples/under_attack.exe *)

open Treaty_core
module Sim = Treaty_sim.Sim
module Net = Treaty_netsim.Net
module Adversary = Treaty_netsim.Adversary
module Ssd = Treaty_storage.Ssd

let banner s = Printf.printf "\n== %s ==\n%!" s

let run_attacks profile =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = Config.with_profile Config.default profile in
      Printf.printf "\n######## target: %s ########\n%!" (Config.profile_name profile);
      let cluster =
        match Cluster.create sim config () with Ok c -> c | Error m -> failwith m
      in
      let c = Client.connect_exn cluster ~client_id:1 in
      let put k v = Client.with_txn c (fun txn -> Client.put c txn k v) in
      let get k = Client.with_txn c (fun txn -> Client.get c txn k) in

      banner "1. tampering with 2PC network traffic";
      let n = ref 0 in
      Net.set_adversary (Cluster.net cluster) (fun pkt ->
          if pkt.Treaty_netsim.Packet.src <= 3 && pkt.Treaty_netsim.Packet.dst <= 3 then begin
            incr n;
            if !n mod 2 = 0 then Adversary.flip_byte ~at:25 (fun _ -> true) pkt
            else Adversary.Deliver
          end
          else Adversary.Deliver);
      let ok = ref 0 and failed = ref 0 in
      for i = 0 to 5 do
        match put (Printf.sprintf "wire%d" i) "v" with
        | Ok () -> incr ok
        | Error _ -> incr failed
      done;
      Net.clear_adversary (Cluster.net cluster);
      Printf.printf "   %d committed, %d aborted; MAC failures on nodes: %d\n" !ok !failed
        (List.fold_left
           (fun acc i -> acc + (Treaty_rpc.Erpc.stats (Node.rpc (Cluster.node cluster i))).mac_failures)
           0 [ 0; 1; 2 ]);
      Printf.printf "   -> %s\n"
        (if config.Config.profile.encryption then
           "tampered messages failed authentication and were dropped; affected txs aborted cleanly"
         else "no message authentication: corruption flows through silently");

      banner "2. replaying captured requests";
      Net.capture (Cluster.net cluster) ~limit:64;
      ignore (put "replay-me" "1");
      let replays_before =
        List.fold_left
          (fun acc i -> acc + (Treaty_rpc.Erpc.stats (Node.rpc (Cluster.node cluster i))).replays_suppressed)
          0 [ 0; 1; 2 ]
      in
      List.iter (Net.replay (Cluster.net cluster)) (Net.captured (Cluster.net cluster));
      Sim.sleep sim 20_000_000;
      let replays_after =
        List.fold_left
          (fun acc i -> acc + (Treaty_rpc.Erpc.stats (Node.rpc (Cluster.node cluster i))).replays_suppressed)
          0 [ 0; 1; 2 ]
      in
      Printf.printf "   replayed every captured packet: %d duplicates suppressed by (node, tx, op) ids\n"
        (replays_after - replays_before);
      (match get "replay-me" with
      | Ok (Some "1") -> print_endline "   -> state unchanged: at-most-once execution held"
      | _ -> print_endline "   -> STATE CHANGED: replay executed!");

      banner "3. tampering with the SSD (flip one bit inside a stored value)";
      ignore (put "disk-key" "AAAA-sentinel-AAAA");
      (* Surgical attack: scan every node's disk for the stored value bytes
         and flip one bit where found. With encryption the value is not
         findable on disk at all; fall back to corrupting node 0 blindly. *)
      let owner = Cluster.route_key cluster "disk-key" - 1 in
      Cluster.crash_node cluster owner;
      let ssd = Cluster.node_ssd cluster owner in
      let scanner_enclave =
        Node.enclave (Cluster.node cluster ((owner + 1) mod 3))
      in
      let find_in_file f needle =
        let size = Ssd.size ssd f in
        if size < String.length needle then None
        else begin
          let raw = Ssd.read ssd ~enclave:scanner_enclave f ~off:0 ~len:size in
          let nn = String.length needle in
          let rec go i =
            if i + nn > size then None
            else if String.sub raw i nn = needle then Some i
            else go (i + 1)
          in
          go 0
        end
      in
      let found =
        List.exists
          (fun f ->
            match find_in_file f "AAAA-sentinel-AAAA" with
            | Some off ->
                Ssd.tamper ssd f ~off:(off + 7);
                true
            | None -> false)
          (Ssd.list_files ssd)
      in
      if found then print_endline "   (plaintext value located on disk and corrupted)"
      else begin
        print_endline "   (value not findable on disk: it is encrypted; corrupting blindly)";
        List.iter (fun f -> Ssd.tamper ssd f ~off:(Ssd.size ssd f / 3)) (Ssd.list_files ssd)
      end;
      (match Cluster.restart_node cluster owner with
      | Error m -> Printf.printf "   -> recovery REFUSED: %s\n" m
      | Ok () -> (
          match get "disk-key" with
          | Ok (Some v) when v = "AAAA-sentinel-AAAA" ->
              print_endline "   -> node restarted; value intact (tamper missed the shard)"
          | Ok (Some v) ->
              Printf.printf "   -> SILENT CORRUPTION: read back %S\n" v
          | Ok None -> print_endline "   -> value vanished"
          | Error e ->
              Printf.printf "   -> read failed (%s): corruption detected at access\n"
                (Types.abort_reason_to_string e)));

      banner "4. rollback attack (restore an old disk snapshot)";
      let target = 2 in
      (* Write keys that definitely land on the target node (hash-routed:
         cover all shards), snapshot its disk, overwrite, roll back. *)
      let spray tag =
        for i = 0 to 8 do
          ignore (put (Printf.sprintf "roll:%d" i) tag)
        done
      in
      spray "old";
      let ssd = Cluster.node_ssd cluster target in
      let snapshot = Ssd.snapshot ssd in
      spray "new";
      Cluster.crash_node cluster target;
      Ssd.restore ssd snapshot;
      (match Cluster.restart_node cluster target with
      | Error m -> Printf.printf "   -> recovery REFUSED (freshness): %s\n" m
      | Ok () ->
          Printf.printf "   -> node recovered on STALE state%s\n"
            (if config.Config.profile.stabilization then " (unexpected!)"
             else " — no trusted counters in this profile"));

      banner "5. impersonation";
      let node0 =
        (* the cluster may be degraded from attacks 3/4; find a live node *)
        let rec first i = try Cluster.node cluster i with _ -> first (i + 1) in
        first 0
      in
      Printf.printf "   forged client token accepted? %b\n"
        (Node.authenticate_client node0 ~client_id:666 ~token:(String.make 32 'f'));
      Client.disconnect c;
      Cluster.shutdown cluster)

let () =
  run_attacks Config.treaty_enc_stab;
  (* The same attacks against the insecure baseline, for contrast. *)
  run_attacks Config.ds_rocksdb;
  print_newline ()
