(* Bank transfers: the canonical distributed-transaction workload. Accounts
   are sharded across the 3 nodes; concurrent clients move money between
   random accounts; mid-run one node is power-cycled. At the end the total
   balance must be exactly what we started with — atomicity and durability
   across crashes, under the full security profile.

   Run with: dune exec examples/bank_transfer.exe *)

open Treaty_core
module Sim = Treaty_sim.Sim
module Latch = Treaty_sched.Scheduler.Latch

let n_accounts = 60
let initial_balance = 1_000
let n_clients = 6
let transfers_per_client = 25

let account i = Printf.sprintf "acct:%04d" i
let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let read_balance c txn k =
  let* v = Client.get c txn k in
  match v with
  | Some s -> Ok (int_of_string s)
  | None -> Error Types.Integrity

let transfer c ~from_ ~to_ ~amount =
  Client.with_txn c (fun txn ->
      let* from_bal = read_balance c txn (account from_) in
      if from_bal < amount then Error Types.Rolled_back (* insufficient funds *)
      else
        let* to_bal = read_balance c txn (account to_) in
        let* () = Client.put c txn (account from_) (string_of_int (from_bal - amount)) in
        Client.put c txn (account to_) (string_of_int (to_bal + amount)))

let total_balance c =
  Client.with_txn c (fun txn ->
      let rec go i acc =
        if i >= n_accounts then Ok acc
        else
          let* b = read_balance c txn (account i) in
          go (i + 1) (acc + b)
      in
      go 0 0)

let () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config =
        { (Config.with_profile Config.default Config.treaty_enc_stab) with Config.record_history = true }
      in
      let cluster =
        match Cluster.create sim config () with
        | Ok c -> c
        | Error m -> failwith m
      in
      let admin = Client.connect_exn cluster ~client_id:100 in

      (* Fund the accounts. *)
      (match
         Client.with_txn admin (fun txn ->
             let rec go i =
               if i >= n_accounts then Ok ()
               else
                 let* () = Client.put admin txn (account i) (string_of_int initial_balance) in
                 go (i + 1)
             in
             go 0)
       with
      | Ok () -> Printf.printf "funded %d accounts with %d each\n%!" n_accounts initial_balance
      | Error e -> failwith (Types.abort_reason_to_string e));

      (* Concurrent transfer clients. *)
      let latch = Latch.create n_clients in
      let committed = ref 0 and aborted = ref 0 in
      for cid = 1 to n_clients do
        Sim.spawn sim (fun () ->
            let c = Client.connect_exn cluster ~client_id:cid in
            let rng = Treaty_sim.Rng.split (Sim.rng sim) in
            for _ = 1 to transfers_per_client do
              let from_ = Treaty_sim.Rng.int rng n_accounts in
              let to_ = Treaty_sim.Rng.int rng n_accounts in
              if from_ <> to_ then
                match transfer c ~from_ ~to_ ~amount:(1 + Treaty_sim.Rng.int rng 50) with
                | Ok () -> incr committed
                | Error _ -> incr aborted
            done;
            Client.disconnect c;
            Latch.arrive latch)
      done;

      (* Meanwhile: power-cycle node 2 under load. *)
      Sim.spawn sim (fun () ->
          Sim.sleep sim 40_000_000;
          print_endline "  !! crashing node 2 under load";
          Cluster.crash_node cluster 1;
          Sim.sleep sim 150_000_000;
          match Cluster.restart_node cluster 1 with
          | Ok () -> print_endline "  !! node 2 re-attested and recovered"
          | Error m -> Printf.printf "  !! recovery failed: %s\n" m);

      Latch.wait (Sim.sched sim) latch;
      Printf.printf "transfers: %d committed, %d aborted (crash window + conflicts)\n%!"
        !committed !aborted;

      (* The invariant: money is conserved, exactly. *)
      (match total_balance admin with
      | Ok total ->
          Printf.printf "total balance: %d (expected %d) -> %s\n" total
            (n_accounts * initial_balance)
            (if total = n_accounts * initial_balance then "CONSERVED" else "VIOLATED!");
          assert (total = n_accounts * initial_balance)
      | Error e -> failwith (Types.abort_reason_to_string e));

      (* And the whole history was serializable. *)
      (match Cluster.history cluster with
      | Some h ->
          Format.printf "history: %d committed txs, verdict: %a@."
            (Serializability.committed h)
            Serializability.pp_verdict (Serializability.check h)
      | None -> ());
      Client.disconnect admin;
      Cluster.shutdown cluster)
