(* TPC-C on Treaty: load a small warehouse schema sharded by warehouse
   across the cluster and run the standard transaction mix from a few
   terminals, printing per-profile statistics and the benchmark's
   consistency condition.

   Run with: dune exec examples/tpcc_demo.exe *)

open Treaty_core
module Sim = Treaty_sim.Sim
module W = Treaty_workload
module Latch = Treaty_sched.Scheduler.Latch

let () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = Config.with_profile Config.default Config.treaty_enc_stab in
      let tpcc = W.Tpcc.config ~warehouses:4 () in
      let route = W.Tpcc.route tpcc ~nodes:config.Config.nodes in
      let cluster =
        match Cluster.create sim config ~route () with
        | Ok c -> c
        | Error m -> failwith m
      in
      let loader = Client.connect_exn cluster ~client_id:99 in
      Printf.printf "loading TPC-C: %d warehouses x %d districts, %d items...\n%!"
        tpcc.W.Tpcc.warehouses tpcc.W.Tpcc.districts_per_warehouse tpcc.W.Tpcc.items;
      W.Tpcc.load tpcc loader (Treaty_sim.Rng.create 1L);

      let counts : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
      let bump kind ok =
        let name = W.Tpcc.kind_name kind in
        let c, a = Option.value ~default:(0, 0) (Hashtbl.find_opt counts name) in
        Hashtbl.replace counts name (if ok then (c + 1, a) else (c, a + 1))
      in
      let terminals = 8 and txs_per_terminal = 40 in
      let latch = Latch.create terminals in
      let t0 = Sim.now sim in
      for t = 1 to terminals do
        Sim.spawn sim (fun () ->
            let c = Client.connect_exn cluster ~client_id:t in
            let rng = Treaty_sim.Rng.split (Sim.rng sim) in
            let home = 1 + ((t - 1) mod tpcc.W.Tpcc.warehouses) in
            for _ = 1 to txs_per_terminal do
              let kind = W.Tpcc.pick_kind rng in
              match W.Tpcc.run tpcc c rng ~nodes:config.Config.nodes ~home kind with
              | Ok () -> bump kind true
              | Error _ -> bump kind false
            done;
            Client.disconnect c;
            Latch.arrive latch)
      done;
      Latch.wait (Sim.sched sim) latch;
      let elapsed = Sim.now sim - t0 in
      Printf.printf "\n%-14s %9s %8s\n" "profile" "commits" "aborts";
      Hashtbl.iter (fun k (c, a) -> Printf.printf "%-14s %9d %8d\n" k c a) counts;
      let total = Hashtbl.fold (fun _ (c, _) acc -> acc + c) counts 0 in
      Printf.printf "\n%d txs in %.1f ms simulated -> %.0f tps\n" total
        (float_of_int elapsed /. 1e6)
        (float_of_int total /. (float_of_int elapsed /. 1e9));
      List.iter
        (fun w ->
          Printf.printf "consistency (district vs orders) w%d: %b\n" w
            (W.Tpcc.Check.district_orders tpcc loader ~warehouse:w))
        [ 1; 2; 3; 4 ];
      Client.disconnect loader;
      Cluster.shutdown cluster)
