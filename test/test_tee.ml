(* TEE model: cost accounting, EPC paging, sealing, quotes, hardware
   counters, and the mempool allocator. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Quote = Treaty_tee.Quote
module Hw_counter = Treaty_tee.Hw_counter
module Mempool = Treaty_memalloc.Mempool
module Costmodel = Treaty_sim.Costmodel

let mk_enclave ?(mode = Enclave.Scone) ?(cost = Costmodel.default) sim =
  Enclave.create sim ~mode ~cost ~cores:4 ~node_id:1 ~code_identity:"test-enclave"

let scone_scaling () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let native = Enclave.create sim ~mode:Enclave.Native ~cost:Costmodel.default ~cores:4 ~node_id:1 ~code_identity:"x" in
      let t0 = Sim.now sim in
      Enclave.compute native 1000;
      let native_ns = Sim.now sim - t0 in
      let scone = mk_enclave sim in
      let t1 = Sim.now sim in
      Enclave.compute scone 1000;
      let scone_ns = Sim.now sim - t1 in
      Alcotest.(check int) "native unscaled" 1000 native_ns;
      Alcotest.(check bool) "scone scaled up" true (scone_ns > native_ns);
      let t2 = Sim.now sim in
      Enclave.compute_storage scone 1000;
      let storage_ns = Sim.now sim - t2 in
      Alcotest.(check bool) "storage factor > cpu factor" true (storage_ns > scone_ns))

let syscall_costs () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let e = mk_enclave sim in
      let s0 = (Enclave.stats e).syscalls in
      Enclave.syscall e ~bytes:4096 ();
      Alcotest.(check int) "syscall counted" (s0 + 1) (Enclave.stats e).syscalls;
      let t0 = Sim.now sim in
      Enclave.world_switch e;
      Alcotest.(check bool) "world switch costs time under scone" true (Sim.now sim > t0))

let epc_paging () =
  let sim = Sim.create () in
  let cost = { Costmodel.default with Costmodel.epc_limit_bytes = 1024 * 1024 } in
  Sim.run sim (fun () ->
      let e = mk_enclave ~cost sim in
      Enclave.alloc_enclave e (512 * 1024);
      Enclave.touch_enclave e (512 * 1024);
      Alcotest.(check int) "no paging within EPC" 0 (Enclave.stats e).page_faults;
      Enclave.alloc_enclave e (2 * 1024 * 1024);
      Enclave.touch_enclave e (512 * 1024);
      Alcotest.(check bool) "paging beyond EPC" true ((Enclave.stats e).page_faults > 0);
      let native = Enclave.create sim ~mode:Enclave.Native ~cost ~cores:4 ~node_id:2 ~code_identity:"x" in
      Enclave.alloc_enclave native (16 * 1024 * 1024);
      Enclave.touch_enclave native (1024 * 1024);
      Alcotest.(check int) "no EPC outside SGX" 0 (Enclave.stats native).page_faults)

let sealing () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let e = mk_enclave sim in
      let sealed = Enclave.seal e "secret state" in
      Alcotest.(check bool) "ciphertext differs" true (sealed <> "secret state");
      (match Enclave.unseal e sealed with
      | Ok v -> Alcotest.(check string) "roundtrip" "secret state" v
      | Error _ -> Alcotest.fail "unseal failed");
      (* Another enclave identity (different code) cannot unseal. *)
      let other =
        Enclave.create sim ~mode:Enclave.Scone ~cost:Costmodel.default ~cores:4
          ~node_id:1 ~code_identity:"different-code"
      in
      match Enclave.unseal other sealed with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign enclave unsealed the state")

let quotes () =
  let m = Treaty_crypto.Sha256.digest_string "code-v1" in
  let q = Quote.sign ~las_key:"las-key" ~measurement:m ~report_data:"nonce" in
  Alcotest.(check bool) "verifies" true
    (Quote.verify ~las_key:"las-key" ~expected_measurement:m q);
  Alcotest.(check bool) "wrong key" false
    (Quote.verify ~las_key:"other" ~expected_measurement:m q);
  Alcotest.(check bool) "wrong measurement" false
    (Quote.verify ~las_key:"las-key"
       ~expected_measurement:(Treaty_crypto.Sha256.digest_string "evil")
       q);
  let forged = { q with Quote.report_data = "other-nonce" } in
  Alcotest.(check bool) "tampered report data" false
    (Quote.verify ~las_key:"las-key" ~expected_measurement:m forged)

let hw_counter () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let e = mk_enclave sim in
      let c = Hw_counter.create ~wear_limit:3 e in
      let t0 = Sim.now sim in
      Alcotest.(check int) "first increment" 1 (Hw_counter.increment c);
      Alcotest.(check bool) "250ms latency" true (Sim.now sim - t0 >= 250_000_000);
      ignore (Hw_counter.increment c);
      ignore (Hw_counter.increment c);
      Alcotest.(check int) "monotonic" 3 (Hw_counter.read c);
      Alcotest.check_raises "wears out" Hw_counter.Worn_out (fun () ->
          ignore (Hw_counter.increment c)))

let mempool_recycling () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let e = mk_enclave sim in
      let pool = Mempool.create e in
      let b1 = Mempool.alloc pool Mempool.Host 100 in
      Alcotest.(check int) "class size" 128 (Mempool.class_size 100);
      Mempool.free pool b1;
      let b2 = Mempool.alloc pool Mempool.Host 90 in
      Alcotest.(check int) "recycled" 1 (Mempool.stats pool).recycled;
      Alcotest.(check bool) "same backing buffer" true (b2.Mempool.bytes == b1.Mempool.bytes);
      Mempool.free pool b2;
      Alcotest.check_raises "double free"
        (Invalid_argument "Mempool.free: double free") (fun () ->
          Mempool.free pool b2))

let mempool_regions () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let e = mk_enclave sim in
      let pool = Mempool.create e in
      let epc0 = Enclave.epc_used e in
      let b = Mempool.alloc pool Mempool.Enclave 4096 in
      Alcotest.(check bool) "enclave alloc charged to EPC" true (Enclave.epc_used e > epc0);
      Mempool.free pool b;
      let host0 = Enclave.host_used e in
      let b2 = Mempool.alloc pool Mempool.Host 4096 in
      Alcotest.(check bool) "host alloc charged to host" true (Enclave.host_used e > host0);
      Mempool.free pool b2;
      (* Different owners land on different heaps: no recycling across. *)
      let a = Mempool.alloc pool ~owner:1 Mempool.Host 64 in
      Mempool.free pool ~owner:1 a;
      let c = Mempool.alloc pool ~owner:2 Mempool.Host 64 in
      Alcotest.(check bool) "per-owner heaps" true (c.Mempool.bytes != a.Mempool.bytes))

let prop_class_size =
  QCheck.Test.make ~name:"mempool class size covers request" ~count:500
    QCheck.(int_range 1 1_000_000)
    (fun n ->
      let c = Mempool.class_size n in
      c >= n && c >= 64 && c land (c - 1) = 0)

let suite =
  [
    Alcotest.test_case "scone compute scaling" `Quick scone_scaling;
    Alcotest.test_case "syscall accounting" `Quick syscall_costs;
    Alcotest.test_case "EPC paging model" `Quick epc_paging;
    Alcotest.test_case "sealing" `Quick sealing;
    Alcotest.test_case "quote sign/verify" `Quick quotes;
    Alcotest.test_case "hw monotonic counter" `Quick hw_counter;
    Alcotest.test_case "mempool recycling" `Quick mempool_recycling;
    Alcotest.test_case "mempool regions" `Quick mempool_regions;
    QCheck_alcotest.to_alcotest prop_class_size;
  ]
