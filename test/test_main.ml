let () =
  Alcotest.run "treaty"
    [
      ("crypto", Test_crypto.suite);
      ("util", Test_util.suite);
      ("netsim", Test_netsim.suite);
      ("sim", Test_sim.suite);
      ("tee", Test_tee.suite);
      ("storage", Test_storage.suite);
      ("rpc", Test_rpc.suite);
      ("counter", Test_counter.suite);
      ("cas", Test_cas.suite);
      ("core", Test_core.suite);
      ("durability", Test_durability.suite);
      ("sanitizer", Test_sanitizer.suite);
      ("chaos", Test_chaos.suite);
      ("workload", Test_workload.suite);
      ("obs", Test_obs.suite);
    ]
