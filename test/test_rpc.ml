(* RPC layer: the secure message format, transport cost structure, the eRPC
   engine (request/response, timeouts), and the at-most-once / integrity
   guarantees under an active network adversary. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Net = Treaty_netsim.Net
module Adversary = Treaty_netsim.Adversary
module Erpc = Treaty_rpc.Erpc
module Secure_msg = Treaty_rpc.Secure_msg
module Transport = Treaty_rpc.Transport
module Aead = Treaty_crypto.Aead

let meta =
  {
    Secure_msg.coord = 3;
    tx_seq = 12345;
    op_id = 42;
    src = 3;
    kind = 7;
    is_response = false;
    req_id = 99;
  }

let secure_msg_roundtrip () =
  let key = Aead.key_of_string "net" in
  List.iter
    (fun security ->
      let ivg = Aead.Iv_gen.create ~node_id:1 in
      let wire = Secure_msg.encode security ~iv_gen:ivg meta "payload-data" in
      Alcotest.(check int) "wire_size matches"
        (String.length wire)
        (Secure_msg.wire_size security ~data_len:12);
      match Secure_msg.decode security wire with
      | Ok (m, data) ->
          Alcotest.(check bool) "meta preserved" true (m = meta);
          Alcotest.(check string) "data preserved" "payload-data" data
      | Error _ -> Alcotest.fail "decode failed")
    [ Secure_msg.Plain; Secure_msg.Secure key ]

let secure_msg_confidentiality () =
  let key = Aead.key_of_string "net" in
  let ivg = Aead.Iv_gen.create ~node_id:1 in
  let wire = Secure_msg.encode (Secure_msg.Secure key) ~iv_gen:ivg meta "SECRETVALUE" in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "payload not on the wire" false (contains wire "SECRETVALUE");
  let plain = Secure_msg.encode Secure_msg.Plain ~iv_gen:ivg meta "SECRETVALUE" in
  Alcotest.(check bool) "plain mode leaks (by design)" true (contains plain "SECRETVALUE")

let secure_msg_tamper () =
  let key = Aead.key_of_string "net" in
  let ivg = Aead.Iv_gen.create ~node_id:1 in
  let wire = Secure_msg.encode (Secure_msg.Secure key) ~iv_gen:ivg meta "data" in
  for i = 0 to String.length wire - 1 do
    let b = Bytes.of_string wire in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    match Secure_msg.decode (Secure_msg.Secure key) (Bytes.to_string b) with
    | Error (`Tampered | `Malformed) -> ()
    | Ok _ -> Alcotest.failf "bit flip at %d undetected" i
  done

let at_most_once_key () =
  Alcotest.(check (triple int int int)) "triple" (3, 12345, 42)
    (Secure_msg.at_most_once_key meta)

let transport_shape () =
  let p = Transport.default_params and c = Treaty_sim.Costmodel.default in
  let cost mode kind bytes =
    Transport.per_msg_ns p c mode kind ~rpc_layer:false ~dir:`Tx ~bytes
  in
  (* SCONE is always dearer, and the gap grows with message size on the
     syscall-based paths. *)
  List.iter
    (fun kind ->
      Alcotest.(check bool) "scone dearer" true
        (cost Enclave.Scone kind 1024 > cost Enclave.Native kind 1024))
    [ Transport.Kernel_tcp; Transport.Kernel_udp; Transport.Dpdk ];
  let gap b = cost Enclave.Scone Transport.Kernel_tcp b - cost Enclave.Native Transport.Kernel_tcp b in
  Alcotest.(check bool) "socket scone gap grows with size" true (gap 4096 > gap 64);
  Alcotest.(check bool) "dpdk cheapest natively" true
    (cost Enclave.Native Transport.Dpdk 64 < cost Enclave.Native Transport.Kernel_tcp 64);
  Alcotest.(check int) "no syscalls on dpdk" 0 (Transport.syscalls_per_msg Transport.Dpdk);
  Alcotest.(check int) "udp fragments" 3 (Transport.fragments c ~bytes:4000)

(* --- eRPC over the simulated network ----------------------------------- *)

let mk_endpoint sim net ~security ~node_id =
  let enclave =
    Enclave.create sim ~mode:Enclave.Scone ~cost:Treaty_sim.Costmodel.default
      ~cores:4 ~node_id ~code_identity:"rpc-test"
  in
  let pool = Treaty_memalloc.Mempool.create enclave in
  Erpc.create sim ~net ~enclave ~pool ~config:(Erpc.default_config ~security) ~node_id ()

let with_pair ~security f =
  let sim = Sim.create () in
  let net = Net.create sim Treaty_sim.Costmodel.default in
  Sim.run sim (fun () ->
      let a = mk_endpoint sim net ~security ~node_id:1 in
      let b = mk_endpoint sim net ~security ~node_id:2 in
      f sim net a b)

let rpc_request_response () =
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun _sim _net a b ->
      Erpc.register b ~kind:1 (fun m payload ->
          Printf.sprintf "echo:%s:%d" payload m.Secure_msg.coord);
      match Erpc.call a ~dst:2 ~kind:1 "hello" with
      | Ok reply -> Alcotest.(check string) "reply" "echo:hello:1" reply
      | Error _ -> Alcotest.fail "call failed")

let rpc_timeout_on_dead_peer () =
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun _sim _net a b ->
      Erpc.shutdown b;
      match Erpc.call a ~dst:2 ~kind:1 ~timeout_ns:5_000_000 "hello" with
      | Error `Timeout -> Alcotest.(check int) "timeout counted" 1 (Erpc.stats a).timeouts
      | _ -> Alcotest.fail "expected timeout")

let rpc_tampered_dropped () =
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun _sim net a b ->
      Erpc.register b ~kind:1 (fun _ _ -> "ok");
      Net.set_adversary net
        (Adversary.flip_byte ~at:20 (fun pkt -> pkt.Treaty_netsim.Packet.dst = 2));
      (match Erpc.call a ~dst:2 ~kind:1 ~timeout_ns:5_000_000 "hello" with
      | Error `Timeout -> ()
      | _ -> Alcotest.fail "tampered request should never be answered");
      Alcotest.(check bool) "receiver saw MAC failure" true ((Erpc.stats b).mac_failures > 0))

let rpc_duplicate_not_reexecuted () =
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun _sim net a b ->
      let executions = ref 0 in
      Erpc.register b ~kind:1 (fun _ _ ->
          incr executions;
          "ok");
      (* Duplicate every request packet towards b. *)
      Net.set_adversary net
        (Adversary.duplicate_matching (fun pkt -> pkt.Treaty_netsim.Packet.dst = 2));
      (match Erpc.call a ~dst:2 ~kind:1 ~coord:1 ~tx_seq:7 ~op_id:1 "hello" with
      | Ok "ok" -> ()
      | _ -> Alcotest.fail "call failed");
      Alcotest.(check int) "handler ran exactly once" 1 !executions;
      Alcotest.(check bool) "duplicate answered from cache" true
        ((Erpc.stats b).replays_suppressed > 0))

let rpc_replay_attack_suppressed () =
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun sim net a b ->
      let executions = ref 0 in
      Erpc.register b ~kind:1 (fun _ _ ->
          incr executions;
          "done");
      Net.capture net ~limit:16;
      (match Erpc.call a ~dst:2 ~kind:1 ~coord:1 ~tx_seq:9 ~op_id:5 "op" with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "call failed");
      (* Adversary replays the captured request wholesale. *)
      let request =
        List.find (fun p -> p.Treaty_netsim.Packet.dst = 2) (Net.captured net)
      in
      Net.replay net request;
      Net.replay net request;
      Sim.sleep sim 5_000_000;
      Alcotest.(check int) "replays did not re-execute" 1 !executions;
      (* After the tx is finished and forgotten, a replay is still safe: the
         dedup entry is gone but so is the transaction — the handler would
         create a fresh context, not duplicate the old effect. Here we only
         check the cache-forget API. *)
      Erpc.forget_tx b ~coord:1 ~tx_seq:9;
      Alcotest.(check bool) "suppressions recorded" true
        ((Erpc.stats b).replays_suppressed >= 2))

let rpc_plain_mode_vulnerable () =
  (* Sanity check of the baseline: without the secure format, tampering is
     NOT detected (that is what Treaty adds). *)
  with_pair ~security:Secure_msg.Plain (fun _sim net a b ->
      Erpc.register b ~kind:1 (fun _ payload -> payload);
      Net.set_adversary net
        (Adversary.nth_matching
           (fun pkt -> pkt.Treaty_netsim.Packet.dst = 2)
           ~n:1
           (Adversary.Tamper
              (fun payload ->
                (* Flip a byte inside the (plaintext) data section. *)
                let b = Bytes.of_string payload in
                let i = String.length payload - 2 in
                Bytes.set b i 'X';
                Bytes.to_string b)));
      match Erpc.call a ~dst:2 ~kind:1 "AAAA" with
      | Ok reply -> Alcotest.(check bool) "silently corrupted" true (reply <> "AAAA")
      | Error _ -> Alcotest.fail "plain call failed")

let rpc_dedup_freed_when_handler_forgets_tx () =
  (* Regression: commit/abort handlers tear down their transaction's
     at-most-once state from inside the handler (finish_participant calls
     forget_tx before the reply goes out). The dispatcher used to re-insert
     the Done entry afterwards unconditionally, orphaning it — present in
     the dedup table but absent from the per-tx index, unreachable by any
     later forget_tx. One cache entry leaked per finished transaction. *)
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun _sim _net a b ->
      Erpc.register b ~kind:3 (fun meta _ ->
          Erpc.forget_tx b ~coord:meta.Secure_msg.coord ~tx_seq:meta.tx_seq;
          "committed");
      (match Erpc.call a ~dst:2 ~kind:3 ~coord:1 ~tx_seq:5 ~op_id:1 "" with
      | Ok "committed" -> ()
      | Ok r -> Alcotest.failf "unexpected reply %S" r
      | Error _ -> Alcotest.fail "call failed");
      Alcotest.(check int) "no orphaned dedup entry" 0 (Erpc.dedup_size b);
      (* A redundant forget after the fact must stay a no-op. *)
      Erpc.forget_tx b ~coord:1 ~tx_seq:5;
      Alcotest.(check int) "still clean" 0 (Erpc.dedup_size b))

let rpc_handler_can_block () =
  let key = Aead.key_of_string "net" in
  with_pair ~security:(Secure_msg.Secure key) (fun sim _net a b ->
      Erpc.register b ~kind:1 (fun _ _ ->
          Sim.sleep sim 2_000_000;
          "slow");
      Erpc.register b ~kind:2 (fun _ _ -> "fast");
      let r1 = ref None and r2 = ref None in
      let t0 = Sim.now sim in
      Sim.spawn sim (fun () -> r1 := Some (Erpc.call a ~dst:2 ~kind:1 "x"));
      Sim.spawn sim (fun () -> r2 := Some (Sim.now sim, Erpc.call a ~dst:2 ~kind:2 "y"));
      Sim.sleep sim 10_000_000;
      (match !r1 with Some (Ok "slow") -> () | _ -> Alcotest.fail "slow call");
      match !r2 with
      | Some (_, Ok "fast") -> Alcotest.(check bool) "fast not stuck behind slow" true (Sim.now sim - t0 < 20_000_000)
      | _ -> Alcotest.fail "fast call")

let rpc_burst_coalescing () =
  (* With a doorbell window, concurrent sends to one destination ride a
     single netsim packet; every message still gets its own reply. *)
  let key = Aead.key_of_string "net" in
  let sim = Sim.create () in
  let net = Net.create sim Treaty_sim.Costmodel.default in
  Sim.run sim (fun () ->
      let mk node_id =
        let enclave =
          Enclave.create sim ~mode:Enclave.Scone
            ~cost:Treaty_sim.Costmodel.default ~cores:4 ~node_id
            ~code_identity:"rpc-test"
        in
        let pool = Treaty_memalloc.Mempool.create enclave in
        Erpc.create sim ~net ~enclave ~pool
          ~config:
            {
              (Erpc.default_config ~security:(Secure_msg.Secure key)) with
              Erpc.burst_window_ns = 50_000;
            }
          ~node_id ()
      in
      let a = mk 1 and b = mk 2 in
      Erpc.register b ~kind:1 (fun _ payload -> "r:" ^ payload);
      let n = 8 in
      let answered = ref 0 in
      for i = 1 to n do
        Sim.spawn sim (fun () ->
            match Erpc.call a ~dst:2 ~kind:1 (Printf.sprintf "m%d" i) with
            | Ok r when r = Printf.sprintf "r:m%d" i -> incr answered
            | Ok r -> Alcotest.failf "wrong reply %S for m%d" r i
            | Error _ -> Alcotest.fail "burst call failed")
      done;
      Sim.sleep sim 100_000_000;
      Alcotest.(check int) "all calls answered" n !answered;
      let sa = Erpc.stats a in
      Alcotest.(check bool)
        (Printf.sprintf "coalesced (%d pkts carry %d msgs)" sa.Erpc.bursts_sent
           sa.Erpc.burst_msgs)
        true
        (sa.Erpc.bursts_sent < sa.Erpc.burst_msgs))

(* --- burst envelope (v2) ------------------------------------------------ *)

let mk_meta i =
  {
    Secure_msg.coord = 1 + (i mod 5);
    tx_seq = 1000 + i;
    op_id = i;
    src = 2;
    kind = 1 + (i mod 3);
    is_response = i mod 2 = 0;
    req_id = 7000 + i;
  }

let burst_roundtrip_equiv =
  (* Property: a burst sealed as one v2 packet decodes to exactly the
     (meta, data) list that per-message v1 seal/decode yields — the batched
     crypto changes the wire format, never the delivered messages. *)
  QCheck.Test.make ~name:"burst seal/decode = per-message seal/decode"
    ~count:100
    QCheck.(small_list (string_of_size Gen.(0 -- 300)))
    (fun payloads ->
      let msgs = List.mapi (fun i data -> (mk_meta i, data)) payloads in
      let key = Aead.key_of_string "burst" in
      List.for_all
        (fun security ->
          let per_message =
            List.map
              (fun (m, data) ->
                let ivg = Aead.Iv_gen.create ~node_id:2 in
                match
                  Secure_msg.decode security
                    (Secure_msg.encode security ~iv_gen:ivg m data)
                with
                | Ok md -> md
                | Error _ -> QCheck.Test.fail_report "v1 roundtrip failed")
              msgs
          in
          let ivg = Aead.Iv_gen.create ~node_id:2 in
          let data_lens = List.map (fun (_, d) -> String.length d) msgs in
          let buf =
            Bytes.create (Secure_msg.Burst.wire_size security ~data_lens)
          in
          let n = Secure_msg.Burst.encode_into security ~iv_gen:ivg buf msgs in
          if n <> Bytes.length buf then
            QCheck.Test.fail_report "encode_into size <> wire_size";
          match Secure_msg.Burst.decode security (Bytes.to_string buf) with
          | Ok decoded -> decoded = per_message && decoded = msgs
          | Error _ -> QCheck.Test.fail_report "burst decode failed")
        [ Secure_msg.Plain; Secure_msg.Secure key ])

let burst_tamper_whole_packet () =
  (* One MAC covers the whole packet: flipping ANY byte must reject it, and
     flips inside the AAD-framed length table or the ciphertext must be
     [`Tampered] (a MAC mismatch), not a framing error — the length table is
     authenticated before it is parsed. *)
  let key = Aead.key_of_string "burst" in
  let security = Secure_msg.Secure key in
  let ivg = Aead.Iv_gen.create ~node_id:2 in
  let msgs =
    [ (mk_meta 0, "alpha"); (mk_meta 1, ""); (mk_meta 2, String.make 100 'z') ]
  in
  let data_lens = List.map (fun (_, d) -> String.length d) msgs in
  let buf = Bytes.create (Secure_msg.Burst.wire_size security ~data_lens) in
  ignore (Secure_msg.Burst.encode_into security ~iv_gen:ivg buf msgs);
  let packet = Bytes.to_string buf in
  (match Secure_msg.Burst.decode security packet with
  | Ok m -> Alcotest.(check int) "clean packet decodes" 3 (List.length m)
  | Error _ -> Alcotest.fail "clean packet rejected");
  let iv_size = 12 and mac_size = 16 in
  let lens_off = 1 + iv_size + 4 in
  let body_off = lens_off + (4 * List.length msgs) in
  for i = 0 to String.length packet - 1 do
    let b = Bytes.of_string packet in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    match Secure_msg.Burst.decode security (Bytes.to_string b) with
    | Ok _ -> Alcotest.failf "bit flip at %d undetected" i
    | Error `Tampered -> ()
    | Error `Malformed ->
        (* Only structural fields (version byte, count) may short-circuit
           before the MAC; the authenticated length table and the sealed
           bodies must always fail AS a MAC mismatch. *)
        if i >= lens_off && i < String.length packet - mac_size then
          Alcotest.failf
            "flip at %d (authenticated region) reported Malformed, not \
             Tampered"
            i
  done;
  ignore body_off

let rpc_mixed_envelope_versions () =
  (* A v1-only sender (batch_crypto=false) and a v2 sender interoperate:
     the receive path dispatches on the packet version byte, not on the
     local config. *)
  let key = Aead.key_of_string "net" in
  let sim = Sim.create () in
  let net = Net.create sim Treaty_sim.Costmodel.default in
  Sim.run sim (fun () ->
      let mk node_id ~batch_crypto =
        let enclave =
          Enclave.create sim ~mode:Enclave.Scone
            ~cost:Treaty_sim.Costmodel.default ~cores:4 ~node_id
            ~code_identity:"rpc-test"
        in
        let pool = Treaty_memalloc.Mempool.create enclave in
        Erpc.create sim ~net ~enclave ~pool
          ~config:
            {
              (Erpc.default_config ~security:(Secure_msg.Secure key)) with
              Erpc.batch_crypto;
            }
          ~node_id ()
      in
      let v1 = mk 1 ~batch_crypto:false and v2 = mk 2 ~batch_crypto:true in
      Erpc.register v1 ~kind:1 (fun _ payload -> "v1:" ^ payload);
      Erpc.register v2 ~kind:1 (fun _ payload -> "v2:" ^ payload);
      (match Erpc.call v1 ~dst:2 ~kind:1 "up" with
      | Ok r -> Alcotest.(check string) "v1 -> v2" "v2:up" r
      | Error _ -> Alcotest.fail "v1 -> v2 call failed");
      match Erpc.call v2 ~dst:1 ~kind:1 "down" with
      | Ok r -> Alcotest.(check string) "v2 -> v1" "v1:down" r
      | Error _ -> Alcotest.fail "v2 -> v1 call failed")

let suite =
  [
    Alcotest.test_case "secure message roundtrip" `Quick secure_msg_roundtrip;
    Alcotest.test_case "message confidentiality" `Quick secure_msg_confidentiality;
    Alcotest.test_case "message tamper detection" `Quick secure_msg_tamper;
    Alcotest.test_case "at-most-once key" `Quick at_most_once_key;
    Alcotest.test_case "transport cost structure" `Quick transport_shape;
    Alcotest.test_case "rpc request/response" `Quick rpc_request_response;
    Alcotest.test_case "rpc timeout on dead peer" `Quick rpc_timeout_on_dead_peer;
    Alcotest.test_case "tampered message dropped" `Quick rpc_tampered_dropped;
    Alcotest.test_case "duplicate not re-executed" `Quick rpc_duplicate_not_reexecuted;
    Alcotest.test_case "replay attack suppressed" `Quick rpc_replay_attack_suppressed;
    Alcotest.test_case "plain mode is vulnerable (baseline)" `Quick rpc_plain_mode_vulnerable;
    Alcotest.test_case "handler-forgotten tx leaves no dedup entry" `Quick
      rpc_dedup_freed_when_handler_forgets_tx;
    Alcotest.test_case "handlers run on fibers" `Quick rpc_handler_can_block;
    Alcotest.test_case "burst window coalesces packets" `Quick rpc_burst_coalescing;
    QCheck_alcotest.to_alcotest burst_roundtrip_equiv;
    Alcotest.test_case "burst tamper rejects whole packet" `Quick
      burst_tamper_whole_packet;
    Alcotest.test_case "v1/v2 envelope senders interoperate" `Quick
      rpc_mixed_envelope_versions;
  ]
