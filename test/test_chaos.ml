(* The fault-injection harness itself: determinism of the schedule
   generator, same-seed reproducibility of whole runs, a fault-free
   leak-freedom baseline for the quiescence checker, and the 50-seed
   invariant sweep — the tier-1 gate for crash/partition/replay handling. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module Chaos = Treaty_chaos.Chaos
module Schedule = Treaty_chaos.Schedule

let schedule_deterministic () =
  let gen seed = Schedule.generate ~seed ~nodes:3 ~horizon_ns:600_000_000 in
  Alcotest.(check string) "same seed, same schedule"
    (Schedule.to_string (gen 11))
    (Schedule.to_string (gen 11));
  Alcotest.(check bool) "different seed, different schedule" true
    (Schedule.to_string (gen 11) <> Schedule.to_string (gen 12))

let run_reproducible () =
  (* A full run — workload, faults, recovery — replayed from the same seed
     must produce the identical schedule and outcome counts. This is what
     makes a FAIL line from the sweep a usable bug report. *)
  let run () =
    match Chaos.run_seed ~seed:7 () with
    | Ok r ->
        ( Schedule.to_string r.Chaos.schedule,
          (r.Chaos.committed, r.Chaos.aborted, r.Chaos.history_txs) )
    | Error m -> Alcotest.failf "seed 7: %s" m
  in
  let sched_a, counts_a = run () in
  let sched_b, counts_b = run () in
  Alcotest.(check string) "same fault schedule" sched_a sched_b;
  Alcotest.(check (triple int int int)) "same outcome counts" counts_a counts_b

let cc_modes_reproducible () =
  (* Determinism is per (seed, config): under either concurrency-control
     mode, replaying a traced seed must reproduce byte-identical trace
     JSON — the cc ablation may change outcomes but not determinism. *)
  let trace_of cc =
    let config = { Chaos.default_config with Chaos.cc; trace = true } in
    (match Chaos.run_seed ~config ~seed:7 () with
    | Ok _ -> ()
    | Error m ->
        Alcotest.failf "seed 7 (%s): %s"
          (match cc with
          | Types.Pessimistic -> "2pl"
          | Types.Optimistic -> "occ")
          m);
    Treaty_obs.Trace.export_string ()
  in
  let occ_a = trace_of Types.Optimistic in
  let occ_b = trace_of Types.Optimistic in
  Alcotest.(check bool) "occ trace byte-identical" true (occ_a = occ_b);
  let pess_a = trace_of Types.Pessimistic in
  let pess_b = trace_of Types.Pessimistic in
  Alcotest.(check bool) "2pl trace byte-identical" true (pess_a = pess_b)

let wire_modes_reproducible () =
  (* Same contract for the burst-AEAD ablation: sealing a burst as one v2
     packet or as v1 per-message envelopes changes the wire bytes but must
     not change determinism — each mode replays a traced seed to
     byte-identical trace JSON. *)
  let trace_of batch_crypto =
    let config = { Chaos.default_config with Chaos.batch_crypto; trace = true } in
    (match Chaos.run_seed ~config ~seed:7 () with
    | Ok _ -> ()
    | Error m ->
        Alcotest.failf "seed 7 (batch_crypto=%b): %s" batch_crypto m);
    Treaty_obs.Trace.export_string ()
  in
  let v2_a = trace_of true in
  let v2_b = trace_of true in
  Alcotest.(check bool) "v2 envelope trace byte-identical" true (v2_a = v2_b);
  let v1_a = trace_of false in
  let v1_b = trace_of false in
  Alcotest.(check bool) "v1 envelope trace byte-identical" true (v1_a = v1_b)

let hundred_node_trace_identity () =
  (* The scale regime the event-engine rewrite targets: at 100 nodes the
     timer wheel's overflow heap, slot cascades and the network's same-tick
     delivery batches are all exercised orders of magnitude harder than in
     the 3-node runs above — and determinism must hold just the same: two
     runs from one seed produce byte-identical trace JSON. *)
  let trace_of () =
    let config =
      { Chaos.default_config with Chaos.nodes = 100; clients = 8; trace = true }
    in
    (match Chaos.run_seed ~config ~seed:5 () with
     | Ok r ->
         Alcotest.(check bool)
           "workload made progress" true
           (r.Chaos.committed > 0)
     | Error m -> Alcotest.failf "seed 5 (100 nodes): %s" m);
    Treaty_obs.Trace.export_string ()
  in
  let a = trace_of () in
  let b = trace_of () in
  Alcotest.(check int) "trace sizes equal" (String.length a) (String.length b);
  Alcotest.(check bool) "100-node traces byte-identical" true (a = b)

let quiescent_baseline () =
  (* Leak-freedom without any faults: after a quiet period covering the
     dedup TTL and a couple of sweeps, no node may retain at-most-once
     cache entries, locks or transaction contexts. Establishes that a
     chaos-run quiescence failure really is fault-handling residue. *)
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let cfg =
        {
          (Config.with_profile Config.default Config.treaty_enc_stab) with
          Config.dedup_ttl_ns = 200_000_000;
          sweep_interval_ns = 100_000_000;
        }
      in
      match Cluster.create sim cfg () with
      | Error m -> Alcotest.failf "bootstrap: %s" m
      | Ok cluster ->
          let c = Client.connect_exn cluster ~client_id:1 in
          for i = 1 to 6 do
            match
              Client.with_txn c ~coord:((i mod 3) + 1) (fun txn ->
                  match Client.put c txn (Printf.sprintf "base:k%d" i) "v" with
                  | Ok () -> Client.put c txn (Printf.sprintf "base:j%d" i) "w"
                  | Error e -> Error e)
            with
            | Ok () -> ()
            | Error e -> Alcotest.failf "txn %d: %s" i (Types.abort_reason_to_string e)
          done;
          Client.disconnect c;
          Sim.sleep sim 1_000_000_000;
          (match Cluster.check_quiescent cluster with
          | Ok () -> ()
          | Error m -> Alcotest.failf "residual state after quiet period: %s" m);
          Cluster.shutdown cluster)

let sweep_50_seeds () =
  let failures = ref [] in
  for seed = 1 to 50 do
    (* Alternate the commit-pipeline batching, read-path acceleration and
       concurrency-control knobs across the sweep: crash/partition faults
       land inside batch windows on half the seeds and on the unbatched
       path on the other half; each half also splits Bloom+block-cache
       reads vs the verify-every-block path, and 2PL vs OCC (validation
       aborts racing crashes and partitions). *)
    let config =
      {
        Chaos.default_config with
        Chaos.batching = seed mod 2 = 0;
        (* Opposite phase to [batching]: odd seeds run v2 packets over
           zero-window (single-message) bursts, even seeds run the v1
           per-message envelope under real coalescing — both envelope
           versions meet both burst shapes across the sweep. *)
        batch_crypto = seed mod 2 = 1;
        read_opt = seed mod 2 = 1;
        cc = (if seed mod 2 = 0 then Types.Pessimistic else Types.Optimistic);
      }
    in
    match Chaos.run_seed ~config ~seed () with
    | Ok _ -> ()
    | Error m -> failures := (seed, m) :: !failures
  done;
  match List.rev !failures with
  | [] -> ()
  | (seed, m) :: _ as fs ->
      Alcotest.failf "%d/50 seeds failed; first: seed %d: %s" (List.length fs)
        seed m

let suite =
  [
    Alcotest.test_case "schedule generation is deterministic" `Quick
      schedule_deterministic;
    Alcotest.test_case "same seed reproduces the run" `Quick run_reproducible;
    Alcotest.test_case "cc modes are individually deterministic" `Quick
      cc_modes_reproducible;
    Alcotest.test_case "wire envelope modes are individually deterministic"
      `Quick wire_modes_reproducible;
    Alcotest.test_case "fault-free runs drain to zero residual state" `Quick
      quiescent_baseline;
    Alcotest.test_case "100-node same-seed traces are byte-identical" `Slow
      hundred_node_trace_identity;
    Alcotest.test_case "50-seed fault sweep holds all invariants" `Slow
      sweep_50_seeds;
  ]
