(* Storage engine: SSD model, authenticated logs (tamper/truncation/rollback
   detection), skip list, MemTable, SSTables, record codecs, group commit,
   the full LSM engine, and model-based property tests with crashes. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
open Treaty_storage

let with_sim f =
  let sim = Sim.create () in
  Sim.run sim (fun () -> f sim)

let mk_sec ?(mode = Enclave.Scone) ?(auth = true) ?(enc = true) sim =
  let enclave =
    Enclave.create sim ~mode ~cost:Treaty_sim.Costmodel.default ~cores:4
      ~node_id:1 ~code_identity:"storage-test"
  in
  Sec.create ~enclave ~auth
    ~enc:(if enc then Some (Treaty_crypto.Aead.key_of_string "sk") else None)
    ()

(* --- Ssd --------------------------------------------------------------- *)

let ssd_basics () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let e = Sec.enclave sec in
      let off1 = Ssd.append ssd ~enclave:e "f" "hello " in
      let off2 = Ssd.append ssd ~enclave:e "f" "world" in
      Alcotest.(check (pair int int)) "offsets" (0, 6) (off1, off2);
      Alcotest.(check string) "read back" "lo wor" (Ssd.read ssd ~enclave:e "f" ~off:3 ~len:6);
      Alcotest.(check int) "size" 11 (Ssd.size ssd "f");
      let snap = Ssd.snapshot ssd in
      ignore (Ssd.append ssd ~enclave:e "f" "!!!");
      Ssd.restore ssd snap;
      Alcotest.(check int) "rollback restores old size" 11 (Ssd.size ssd "f");
      Ssd.truncate ssd "f" 5;
      Alcotest.(check int) "truncated" 5 (Ssd.size ssd "f");
      Ssd.delete ssd "f";
      Alcotest.(check bool) "deleted" false (Ssd.exists ssd "f"))

(* --- Log_auth ---------------------------------------------------------- *)

let log_roundtrip () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let log = Log_auth.create ssd sec ~name:"L" in
      let counters = List.map (fun i -> Log_auth.append log (Printf.sprintf "entry%d" i)) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "dense counters" [ 1; 2; 3 ] counters;
      let log2 = Log_auth.create ssd sec ~name:"L" in
      match Log_auth.replay log2 () with
      | Ok (entries, 0) ->
          Alcotest.(check (list string)) "payloads"
            [ "entry1"; "entry2"; "entry3" ]
            (List.map snd entries);
          Alcotest.(check int) "resumes numbering" 4 (Log_auth.next_counter log2)
      | _ -> Alcotest.fail "replay failed")

let log_tamper_detection () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let log = Log_auth.create ssd sec ~name:"L" in
      for i = 1 to 10 do
        ignore (Log_auth.append log (Printf.sprintf "payload-%d" i))
      done;
      Ssd.tamper ssd "L" ~off:(Ssd.size ssd "L" / 2);
      let log2 = Log_auth.create ssd sec ~name:"L" in
      match Log_auth.replay log2 () with
      | Error (`Tampered _) -> ()
      | Ok _ -> Alcotest.fail "tampered log accepted"
      | Error e -> Alcotest.failf "unexpected error: %a" Log_auth.pp_replay_error e)

let log_truncation_detection () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let log = Log_auth.create ssd sec ~name:"L" in
      for i = 1 to 5 do
        ignore (Log_auth.append log (string_of_int i))
      done;
      (* Cut mid-entry: structurally invalid. *)
      Ssd.truncate ssd "L" (Ssd.size ssd "L" - 3);
      let log2 = Log_auth.create ssd sec ~name:"L" in
      match Log_auth.replay log2 () with
      | Error `Truncated -> ()
      | _ -> Alcotest.fail "mid-entry truncation undetected")

let log_rollback_detection () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let log = Log_auth.create ssd sec ~name:"L" in
      for i = 1 to 5 do
        ignore (Log_auth.append log (string_of_int i))
      done;
      let snap = Ssd.snapshot ssd in
      for i = 6 to 9 do
        ignore (Log_auth.append log (string_of_int i))
      done;
      (* Adversary rolls the disk back to the older (still well-formed)
         state; the trusted counter knows better. *)
      Ssd.restore ssd snap;
      let log2 = Log_auth.create ssd sec ~name:"L" in
      (match Log_auth.replay log2 ~trusted:9 () with
      | Error (`Rolled_back (9, 5)) -> ()
      | Ok _ -> Alcotest.fail "rollback attack accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Log_auth.pp_replay_error e);
      (* Without the trusted counter (no stabilization) the stale log is
         indistinguishable from a crash — it replays "cleanly". This is the
         gap the stabilization protocol closes. *)
      let log3 = Log_auth.create ssd sec ~name:"L" in
      match Log_auth.replay log3 () with
      | Ok (entries, _) -> Alcotest.(check int) "stale prefix accepted" 5 (List.length entries)
      | Error _ -> Alcotest.fail "clean prefix should replay")

let log_unstable_tail_dropped () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let log = Log_auth.create ssd sec ~name:"L" in
      for i = 1 to 8 do
        ignore (Log_auth.append log (string_of_int i))
      done;
      (* Only 6 were stabilized before the crash: the tail cannot be
         trusted and is discarded. *)
      let log2 = Log_auth.create ssd sec ~name:"L" in
      match Log_auth.replay log2 ~trusted:6 () with
      | Ok (entries, dropped) ->
          Alcotest.(check int) "kept stable prefix" 6 (List.length entries);
          Alcotest.(check int) "dropped tail" 2 dropped;
          Alcotest.(check int) "appends continue from stable point" 7
            (Log_auth.next_counter log2)
      | Error e -> Alcotest.failf "unexpected: %a" Log_auth.pp_replay_error e)

let log_plain_mode_no_auth () =
  with_sim (fun sim ->
      let sec = mk_sec ~auth:false ~enc:false sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let log = Log_auth.create ssd sec ~name:"L" in
      ignore (Log_auth.append log "entry");
      (* The native baseline stores plaintext and cannot detect tampering;
         that is the point of the comparison. *)
      let raw = Ssd.read ssd ~enclave:(Sec.enclave sec) "L" ~off:0 ~len:(Ssd.size ssd "L") in
      let contains_substring hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "plaintext on disk" true (contains_substring raw "entry"))

(* --- Skiplist ---------------------------------------------------------- *)

let skiplist_versions () =
  let sl = Skiplist.create () in
  Skiplist.insert sl ~key:"k" ~seq:1 "v1";
  Skiplist.insert sl ~key:"k" ~seq:5 "v5";
  Skiplist.insert sl ~key:"k" ~seq:3 "v3";
  Alcotest.(check (option (pair int string))) "freshest below 10" (Some (5, "v5"))
    (Skiplist.find sl ~key:"k" ~max_seq:10);
  Alcotest.(check (option (pair int string))) "snapshot at 4" (Some (3, "v3"))
    (Skiplist.find sl ~key:"k" ~max_seq:4);
  Alcotest.(check (option (pair int string))) "snapshot at 2" (Some (1, "v1"))
    (Skiplist.find sl ~key:"k" ~max_seq:2);
  Alcotest.(check (option (pair int string))) "before first" None
    (Skiplist.find sl ~key:"k" ~max_seq:0);
  Alcotest.(check (option (pair int string))) "missing key" None
    (Skiplist.find sl ~key:"zzz" ~max_seq:10)

let prop_skiplist_vs_model =
  QCheck.Test.make ~name:"skiplist agrees with a model map" ~count:100
    QCheck.(list (pair (int_range 0 20) (int_range 1 50)))
    (fun ops ->
      let sl = Skiplist.create () in
      let model : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
      List.iteri
        (fun i (k, seq) ->
          let key = Printf.sprintf "key%02d" k in
          Skiplist.insert sl ~key ~seq i;
          Hashtbl.replace model (key, seq) i)
        ops;
      (* Every (key, snapshot) lookup agrees with the model's best version. *)
      List.for_all
        (fun snap ->
          List.for_all
            (fun k ->
              let key = Printf.sprintf "key%02d" k in
              let best =
                Hashtbl.fold
                  (fun (mk, mseq) v acc ->
                    if mk = key && mseq <= snap then
                      match acc with
                      | Some (bseq, _) when bseq >= mseq -> acc
                      | _ -> Some (mseq, v)
                    else acc)
                  model None
              in
              Skiplist.find sl ~key ~max_seq:snap = best)
            (List.init 21 Fun.id))
        [ 0; 10; 25; 50 ])

let prop_skiplist_sorted =
  QCheck.Test.make ~name:"skiplist iterates in internal-key order" ~count:100
    QCheck.(list (pair (int_range 0 30) (int_range 1 99)))
    (fun ops ->
      let sl = Skiplist.create () in
      List.iter
        (fun (k, seq) -> Skiplist.insert sl ~key:(Printf.sprintf "%03d" k) ~seq ())
        ops;
      let order = Skiplist.fold sl ~init:[] ~f:(fun acc ~key ~seq () -> (key, seq) :: acc) in
      let order = List.rev order in
      let rec sorted = function
        | (k1, s1) :: ((k2, s2) :: _ as rest) ->
            (k1 < k2 || (k1 = k2 && s1 > s2)) && sorted rest
        | _ -> true
      in
      sorted order)

(* --- Memtable ---------------------------------------------------------- *)

let memtable_roundtrip_and_tamper () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let mt = Memtable.create sec in
      Memtable.add mt ~key:"a" ~seq:1 (Op.Put "v1");
      Memtable.add mt ~key:"a" ~seq:2 (Op.Put "v2");
      Memtable.add mt ~key:"b" ~seq:3 Op.Delete;
      (match Memtable.get mt ~key:"a" ~max_seq:10 with
      | Memtable.Found (2, "v2") -> ()
      | _ -> Alcotest.fail "wrong version");
      (match Memtable.get mt ~key:"a" ~max_seq:1 with
      | Memtable.Found (1, "v1") -> ()
      | _ -> Alcotest.fail "snapshot read failed");
      (match Memtable.get mt ~key:"b" ~max_seq:10 with
      | Memtable.Deleted 3 -> ()
      | _ -> Alcotest.fail "tombstone lost");
      Alcotest.(check int) "entries" 3 (Memtable.entries mt);
      (* Host memory holds the values: flipping a byte there must be
         detected by the in-enclave hash. *)
      Memtable.host_tamper mt;
      let tamper_detected =
        try
          (* One of the values is now corrupt. *)
          ignore (Memtable.get mt ~key:"a" ~max_seq:10);
          ignore (Memtable.get mt ~key:"a" ~max_seq:1);
          false
        with Sec.Integrity_violation _ -> true
      in
      Alcotest.(check bool) "host tampering detected" true tamper_detected)

let memtable_epc_accounting () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let e = Sec.enclave sec in
      let epc0 = Enclave.epc_used e in
      let host0 = Enclave.host_used e in
      let mt = Memtable.create sec in
      Memtable.add mt ~key:"key" ~seq:1 (Op.Put (String.make 1000 'v'));
      Alcotest.(check bool) "keys in enclave" true (Enclave.epc_used e > epc0);
      Alcotest.(check bool) "values in host" true (Enclave.host_used e - host0 >= 1000);
      let epc_with_data = Enclave.epc_used e in
      Alcotest.(check bool) "values not in EPC" true (epc_with_data - epc0 < 500);
      Memtable.release mt;
      Alcotest.(check int) "EPC returned" epc0 (Enclave.epc_used e);
      (* Ablation: values_in_enclave charges the EPC instead. *)
      let mt2 = Memtable.create ~values_in_enclave:true sec in
      Memtable.add mt2 ~key:"key" ~seq:1 (Op.Put (String.make 1000 'v'));
      Alcotest.(check bool) "ablation puts values in EPC" true
        (Enclave.epc_used e - epc0 >= 1000);
      Memtable.release mt2)

(* --- Sstable ----------------------------------------------------------- *)

let build_entries n =
  List.init n (fun i -> (Printf.sprintf "key%04d" i, n - i, Op.Put (Printf.sprintf "val%d" i)))

let sstable_roundtrip () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let entries = build_entries 500 in
      let h, digest = Sstable.build ssd sec ~file_id:1 ~block_bytes:512 entries in
      Alcotest.(check bool) "multiple blocks" true (Sstable.block_count h > 4);
      (match Sstable.get ssd sec h ~key:"key0123" ~max_seq:max_int with
      | Some (_, Op.Put "val123") -> ()
      | _ -> Alcotest.fail "lookup failed");
      Alcotest.(check bool) "absent key" true
        (Sstable.get ssd sec h ~key:"nope" ~max_seq:max_int = None);
      (* Reopen via the manifest-recorded digest (recovery path). *)
      let h2 = Sstable.open_ ssd sec ~file_id:1 ~footer_digest:digest in
      (match Sstable.get ssd sec h2 ~key:"key0456" ~max_seq:max_int with
      | Some (_, Op.Put "val456") -> ()
      | _ -> Alcotest.fail "reopened lookup failed");
      Alcotest.(check int) "full scan" 500 (List.length (Sstable.load_all ssd sec h2)))

let sstable_tamper () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let entries = build_entries 200 in
      let h, digest = Sstable.build ssd sec ~file_id:2 ~block_bytes:512 entries in
      let name = Sstable.file_name ~file_id:2 in
      Ssd.tamper ssd name ~off:64;
      (* A read touching the tampered block must fail its hash. *)
      let detected =
        try
          List.iter
            (fun i ->
              ignore
                (Sstable.get ssd sec h
                   ~key:(Printf.sprintf "key%04d" i)
                   ~max_seq:max_int))
            (List.init 200 Fun.id);
          false
        with Sec.Integrity_violation _ -> true
      in
      Alcotest.(check bool) "block tampering detected" true detected;
      (* Tamper the footer: reopening must fail against the digest. *)
      Ssd.tamper ssd name ~off:(Ssd.size ssd name - 20);
      let footer_detected =
        try
          ignore (Sstable.open_ ssd sec ~file_id:2 ~footer_digest:digest);
          false
        with Sec.Integrity_violation _ -> true
      in
      Alcotest.(check bool) "footer tampering detected" true footer_detected)

let sstable_snapshot_reads () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let entries = [ ("k", 9, Op.Put "new"); ("k", 4, Op.Put "old"); ("k", 2, Op.Delete) ] in
      let h, _ = Sstable.build ssd sec ~file_id:3 ~block_bytes:4096 entries in
      (match Sstable.get ssd sec h ~key:"k" ~max_seq:100 with
      | Some (9, Op.Put "new") -> ()
      | _ -> Alcotest.fail "latest");
      (match Sstable.get ssd sec h ~key:"k" ~max_seq:5 with
      | Some (4, Op.Put "old") -> ()
      | _ -> Alcotest.fail "middle");
      match Sstable.get ssd sec h ~key:"k" ~max_seq:3 with
      | Some (2, Op.Delete) -> ()
      | _ -> Alcotest.fail "tombstone")

let sstable_range () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let entries = build_entries 300 in
      let h, _ = Sstable.build ssd sec ~file_id:9 ~block_bytes:512 entries in
      let r = Sstable.range ssd sec h ~lo:"key0010" ~hi:"key0014" ~max_seq:max_int in
      Alcotest.(check int) "5 keys" 5 (List.length r);
      Alcotest.(check bool) "sorted and bounded" true
        (List.for_all (fun (k, _, _) -> k >= "key0010" && k <= "key0014") r);
      Alcotest.(check int) "empty outside" 0
        (List.length (Sstable.range ssd sec h ~lo:"zzz" ~hi:"zzzz" ~max_seq:max_int)))

let memtable_range () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let mt = Memtable.create sec in
      List.iter
        (fun (k, s, v) -> Memtable.add mt ~key:k ~seq:s (Op.Put v))
        [ ("a", 1, "va"); ("b", 2, "vb"); ("b", 5, "vb2"); ("c", 3, "vc"); ("d", 4, "vd") ];
      let r = Memtable.range mt ~lo:"b" ~hi:"c" ~max_seq:10 in
      Alcotest.(check int) "versions in range" 3 (List.length r);
      (* snapshot filter *)
      let r2 = Memtable.range mt ~lo:"b" ~hi:"c" ~max_seq:2 in
      Alcotest.(check (list (pair string int))) "only old versions"
        [ ("b", 2) ]
        (List.map (fun (k, s, _) -> (k, s)) r2))

let prop_skiplist_range =
  QCheck.Test.make ~name:"fold_range = filtered fold" ~count:100
    QCheck.(list (pair (int_range 0 30) (int_range 1 50)))
    (fun ops ->
      let sl = Skiplist.create () in
      List.iteri
        (fun i (k, seq) -> Skiplist.insert sl ~key:(Printf.sprintf "%03d" k) ~seq i)
        ops;
      let lo = "005" and hi = "020" in
      let via_range =
        Skiplist.fold_range sl ~lo ~hi ~init:[] ~f:(fun acc ~key ~seq v -> (key, seq, v) :: acc)
      in
      let via_filter =
        Skiplist.fold sl ~init:[] ~f:(fun acc ~key ~seq v ->
            if key >= lo && key <= hi then (key, seq, v) :: acc else acc)
      in
      via_range = via_filter)

(* --- record codecs ----------------------------------------------------- *)

let codec_roundtrips () =
  let wal_records =
    [
      Wal_record.Commit_batch [ (5, [ ("a", Op.Put "x"); ("b", Op.Delete) ]); (6, []) ];
      Wal_record.Prepare ((2, 77), [ ("k", Op.Put "v") ]);
      Wal_record.Resolve ((2, 77), Some 9);
      Wal_record.Resolve ((3, 1), None);
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "wal codec" true (Wal_record.decode (Wal_record.encode r) = r))
    wal_records;
  let clog_records =
    [
      Clog_record.Begin_2pc { tx_seq = 4; participants = [ 1; 2; 3 ] };
      Clog_record.Decision { tx_seq = 4; commit = true };
      Clog_record.Decision { tx_seq = 5; commit = false };
      Clog_record.Finished { tx_seq = 4 };
      Clog_record.Batch
        [
          Clog_record.Begin_2pc { tx_seq = 6; participants = [ 2 ] };
          Clog_record.Decision { tx_seq = 6; commit = true };
          Clog_record.Batch [ Clog_record.Finished { tx_seq = 6 } ];
        ];
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "clog codec" true
        (Clog_record.decode (Clog_record.encode r) = r))
    clog_records;
  let edits =
    [
      Manifest.Add_file
        {
          Manifest.file_id = 7;
          level = 2;
          footer_digest = "0123456789abcdef0123456789abcdef";
          footer_version = Sstable.footer_version;
          min_key = "a";
          max_key = "zz";
          max_seq = 99;
          size = 4096;
        };
      Manifest.Delete_file { level = 1; file_id = 3 };
      Manifest.New_wal { wal_id = 2 };
      Manifest.Obsolete_wal { wal_id = 1 };
      Manifest.Clog_trim { upto = 17 };
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool) "manifest codec" true (Manifest.decode (Manifest.encode e) = e))
    edits

let manifest_version_fold () =
  let v = Manifest.empty_version 4 in
  let meta id level =
    {
      Manifest.file_id = id;
      level;
      footer_digest = "";
      footer_version = 1;
      min_key = Printf.sprintf "%d" id;
      max_key = Printf.sprintf "%d" id;
      max_seq = 0;
      size = 10;
    }
  in
  let v = Manifest.apply_edit v (Manifest.New_wal { wal_id = 1 }) in
  let v = Manifest.apply_edit v (Manifest.Add_file (meta 1 0)) in
  let v = Manifest.apply_edit v (Manifest.Add_file (meta 2 0)) in
  let v = Manifest.apply_edit v (Manifest.New_wal { wal_id = 2 }) in
  let v = Manifest.apply_edit v (Manifest.Obsolete_wal { wal_id = 1 }) in
  let v = Manifest.apply_edit v (Manifest.Delete_file { level = 0; file_id = 1 }) in
  Alcotest.(check (list int)) "live wals" [ 2 ] v.Manifest.live_wals;
  Alcotest.(check (list int)) "L0 files" [ 2 ]
    (List.map (fun m -> m.Manifest.file_id) v.Manifest.levels.(0))

(* --- group commit ------------------------------------------------------ *)

let group_commit_batching () =
  with_sim (fun sim ->
      let batches = ref [] in
      let g =
        Group_commit.create sim ~window_ns:1000
          ~flush:(fun _fspan items ->
            batches := items :: !batches;
            List.length !batches)
          ()
      in
      let results = ref [] in
      for i = 1 to 6 do
        Sim.spawn sim (fun () ->
            let c = Group_commit.submit g i in
            results := (i, c) :: !results)
      done;
      Sim.sleep sim 10_000;
      Alcotest.(check int) "one batch for concurrent submitters" 1 (List.length !batches);
      Alcotest.(check int) "all items in it" 6 (List.length (List.hd !batches));
      Alcotest.(check bool) "all got the same counter" true
        (List.for_all (fun (_, c) -> c = 1) !results))

let clog_group_commit_batches () =
  (* Concurrent Clog appends share authenticated appends and counter
     submissions; every record still replays on recovery, tagged with its
     batch's (monotone) counter. *)
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let cfg = { Engine.default_config with Engine.wait_commit_stable = false } in
      let eng = Engine.create ssd sec cfg Engine.noop_stability in
      let n = 24 in
      let counters = Array.make n 0 in
      let pending = ref n in
      for i = 0 to n - 1 do
        Sim.spawn sim (fun () ->
            let c =
              Engine.clog_append eng
                (Clog_record.Decision { tx_seq = i; commit = i mod 2 = 0 })
            in
            counters.(i) <- c;
            (match Engine.clog_wait_stable eng ~counter:c () with
            | Ok () -> ()
            | Error `Stability_timeout -> Alcotest.fail "noop stability timed out");
            decr pending)
      done;
      Sim.sleep sim 50_000_000;
      Alcotest.(check int) "all appends returned" 0 !pending;
      Alcotest.(check int) "appends counted" n (Engine.stats eng).Engine.clog_appends;
      (match Engine.clog_group_stats eng with
      | None -> Alcotest.fail "clog group commit off"
      | Some gs ->
          Alcotest.(check int) "every record flushed" n gs.Group_commit.items;
          Alcotest.(check bool)
            (Printf.sprintf "coalesced (%d batches for %d records)"
               gs.Group_commit.batches n)
            true
            (gs.Group_commit.batches < n));
      (* Counters are monotone: a later batch never gets a smaller value. *)
      let sorted = Array.copy counters in
      Array.sort compare sorted;
      Alcotest.(check bool) "batch counters positive" true (sorted.(0) >= 1);
      (* Crash and recover: the replay must surface all n decisions. *)
      match
        Engine.recover ssd (mk_sec sim) cfg Engine.noop_stability
          ~trusted:(fun _ -> None)
      with
      | Error m -> Alcotest.failf "recovery failed: %s" m
      | Ok (_, info) ->
          let seen = Hashtbl.create n in
          List.iter
            (fun (c, r) ->
              match r with
              | Clog_record.Decision { tx_seq; commit } ->
                  Hashtbl.replace seen tx_seq (commit, c)
              | Clog_record.Batch _ ->
                  Alcotest.fail "recovery leaked an unflattened batch"
              | _ -> ())
            info.Engine.clog_records;
          for i = 0 to n - 1 do
            match Hashtbl.find_opt seen i with
            | None -> Alcotest.failf "decision %d lost in batching" i
            | Some (commit, c) ->
                Alcotest.(check bool)
                  (Printf.sprintf "decision %d intact" i)
                  (i mod 2 = 0) commit;
                Alcotest.(check int)
                  (Printf.sprintf "decision %d counter" i)
                  counters.(i) c
          done)

(* --- engine ------------------------------------------------------------ *)

let engine_cfg =
  {
    Engine.default_config with
    Engine.memtable_max_bytes = 16 * 1024;
    wait_commit_stable = false;
    file_bytes = 8 * 1024;
    level_base_bytes = 32 * 1024;
  }

let mk_engine ?(mode = Enclave.Scone) ?(auth = true) ?(enc = true) sim =
  let sec = mk_sec ~mode ~auth ~enc sim in
  let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
  (Engine.create ssd sec engine_cfg Engine.noop_stability, ssd, sec)

let engine_compaction_cascade () =
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      (* Enough data to force flushes and at least one compaction. *)
      for i = 0 to 4_000 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "k%04d" (i mod 800), Op.Put (String.make 100 'v')) ]
             ())
      done;
      Sim.sleep sim 500_000_000 (* let background flushes drain *);
      Alcotest.(check bool) "flushed" true ((Engine.stats eng).flushes > 0);
      Alcotest.(check bool) "compacted" true ((Engine.stats eng).compactions > 0);
      (* All data still readable after the file churn. *)
      let snap = Engine.snapshot eng in
      for i = 0 to 799 do
        match Engine.get eng ~key:(Printf.sprintf "k%04d" i) ~snapshot:snap with
        | Memtable.Found _ -> ()
        | _ -> Alcotest.failf "key %d lost in compaction" i
      done)

let engine_scan () =
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      for i = 0 to 499 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "scan%04d" i, Op.Put (Printf.sprintf "v%d" i)) ]
             ())
      done;
      (* Overwrites and deletes inside the range. *)
      ignore (Engine.commit eng ~writes:[ ("scan0100", Op.Put "overwritten") ] ());
      ignore (Engine.commit eng ~writes:[ ("scan0101", Op.Delete) ] ());
      Engine.flush_now eng;
      (* More writes after the flush so the scan spans memtable + sstables. *)
      ignore (Engine.commit eng ~writes:[ ("scan0102", Op.Put "post-flush") ] ());
      let snap = Engine.snapshot eng in
      let result = Engine.scan eng ~lo:"scan0099" ~hi:"scan0104" ~snapshot:snap in
      Alcotest.(check (list (pair string string)))
        "merged, deduped, tombstone dropped"
        [
          ("scan0099", "v99");
          ("scan0100", "overwritten");
          ("scan0102", "post-flush");
          ("scan0103", "v103");
          ("scan0104", "v104");
        ]
        result;
      Alcotest.(check (list (pair string string))) "empty range" []
        (Engine.scan eng ~lo:"zzz" ~hi:"zzzz" ~snapshot:snap);
      (* Old snapshot does not see later writes. *)
      let before = Engine.scan eng ~lo:"scan0102" ~hi:"scan0102" ~snapshot:1 in
      Alcotest.(check bool) "snapshot isolation on scans" true (before = []))

let compaction_respects_pinned_snapshots () =
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      (* Install v1 of a key, pin a snapshot that sees it, then bury it
         under many newer versions and force compactions: the pinned
         version must survive GC. *)
      let s1 = Engine.commit eng ~writes:[ ("pinned", Op.Put "v1") ] () in
      let snap = Engine.snapshot eng in
      Engine.retain_snapshot eng snap;
      for i = 0 to 2_000 do
        ignore
          (Engine.commit eng
             ~writes:
               [
                 ("pinned", Op.Put (Printf.sprintf "v%d" (i + 2)));
                 (Printf.sprintf "fill%04d" i, Op.Put (String.make 200 'f'));
               ]
             ())
      done;
      Engine.flush_now eng;
      Engine.compact_now eng;
      Alcotest.(check bool) "compactions ran" true ((Engine.stats eng).compactions > 0);
      (match Engine.get eng ~key:"pinned" ~snapshot:snap with
      | Memtable.Found (seq, "v1") -> Alcotest.(check int) "same version" s1 seq
      | _ -> Alcotest.fail "pinned version lost to GC");
      Engine.release_snapshot eng snap;
      (* After release, a fresh read sees only the newest. *)
      match Engine.get eng ~key:"pinned" ~snapshot:(Engine.snapshot eng) with
      | Memtable.Found (_, v) -> Alcotest.(check string) "newest" "v2002" v
      | _ -> Alcotest.fail "key lost")

(* Planted regression for the compaction GC watermark: a version covered by
   the lowest retained snapshot must survive compaction even when the key
   was later deleted (the tombstone may not swallow it), and the watermark
   accessors must track retain/release exactly — a leaked retention would
   pin GC forever. *)
let gc_watermark_and_tombstones () =
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      let s1 = Engine.commit eng ~writes:[ ("wm", Op.Put "v1") ] () in
      let snap = Engine.snapshot eng in
      Engine.retain_snapshot eng snap;
      Alcotest.(check int) "watermark = retained snapshot" snap
        (Engine.min_active_snapshot eng);
      Alcotest.(check int) "one retention" 1 (Engine.active_snapshot_count eng);
      (* Overwrite, then delete, then bury under fill to force compaction
         with the snapshot pinned. *)
      ignore (Engine.commit eng ~writes:[ ("wm", Op.Put "v2") ] ());
      ignore (Engine.commit eng ~writes:[ ("wm", Op.Delete) ] ());
      for i = 0 to 2_000 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "fill%04d" i, Op.Put (String.make 200 'f')) ]
             ())
      done;
      Engine.flush_now eng;
      Engine.compact_now eng;
      Alcotest.(check bool) "compactions ran" true
        ((Engine.stats eng).compactions > 0);
      Alcotest.(check int) "watermark still pinned" snap
        (Engine.min_active_snapshot eng);
      (* The retained snapshot still reads v1 — not the tombstone. *)
      (match Engine.get eng ~key:"wm" ~snapshot:snap with
      | Memtable.Found (seq, "v1") -> Alcotest.(check int) "v1's seq" s1 seq
      | _ -> Alcotest.fail "retained version GCed under a live snapshot");
      (* A fresh snapshot sees the delete. *)
      (match Engine.get eng ~key:"wm" ~snapshot:(Engine.snapshot eng) with
      | Memtable.Deleted _ | Memtable.Not_found -> ()
      | Memtable.Found _ -> Alcotest.fail "delete lost");
      Engine.release_snapshot eng snap;
      Alcotest.(check int) "no retentions left" 0
        (Engine.active_snapshot_count eng);
      Alcotest.(check bool) "watermark follows visible seq again" true
        (Engine.min_active_snapshot eng > snap);
      (* With the pin gone, a compaction that rewrites the key's file (the
         fresh version overlaps it) finally drops v1: the stale snapshot no
         longer finds it. *)
      ignore (Engine.commit eng ~writes:[ ("wm", Op.Put "v3") ] ());
      Engine.flush_now eng;
      Engine.compact_now eng;
      match Engine.get eng ~key:"wm" ~snapshot:snap with
      | Memtable.Found (_, "v1") -> Alcotest.fail "released version not GCed"
      | _ -> ())

(* Duplicate read/lock entries: however many times a transaction touches a
   key — repeated point reads, a scan over it — the recorded read set keeps
   one entry per key, so OCC prepare acquires each read lock once and the
   serializability checker sees no duplicate edges. *)
let local_txn_read_dedup () =
  let module Core = Treaty_core in
  with_sim (fun sim ->
      let eng, _, sec = mk_engine sim in
      ignore (Engine.commit eng ~writes:[ ("dup", Op.Put "v") ] ());
      let run isolation =
        let locks =
          Core.Lock_table.create sim ~enclave:(Sec.enclave sec) ~shards:4
            ~timeout_ns:1_000_000
        in
        let txn =
          Core.Local_txn.begin_ ~engine:eng ~locks ~isolation
            ~tx:{ Core.Types.coord = 1; seq = 1 } ()
        in
        (match Core.Local_txn.get txn "dup" with
        | Ok (Some "v") -> ()
        | _ -> Alcotest.fail "get");
        (match Core.Local_txn.get txn "dup" with
        | Ok (Some "v") -> ()
        | _ -> Alcotest.fail "reentrant get");
        (match Core.Local_txn.scan txn ~lo:"dup" ~hi:"dup" with
        | Ok [ ("dup", "v") ] -> ()
        | _ -> Alcotest.fail "scan");
        Alcotest.(check int) "one read-set entry" 1
          (List.length (Core.Local_txn.read_set txn));
        (txn, locks)
      in
      (* OCC: accesses take no locks; prepare locks the deduped read set —
         exactly one acquisition — and validates. *)
      let txn, locks = run Core.Types.Optimistic in
      (match Core.Local_txn.prepare txn with
      | Ok () -> ()
      | _ -> Alcotest.fail "occ prepare");
      Alcotest.(check int) "occ: single read-lock acquisition" 1
        (Core.Lock_table.stats locks).Core.Lock_table.acquisitions;
      Core.Local_txn.finish txn;
      Alcotest.(check int) "occ: released" 0 (Core.Lock_table.locked_keys locks);
      (* 2PL: accesses lock at access time (reentrant re-acquisitions are
         granted) but the read set is still deduplicated. *)
      let txn, locks = run Core.Types.Pessimistic in
      (match Core.Local_txn.prepare txn with
      | Ok () -> ()
      | _ -> Alcotest.fail "2pl prepare");
      Core.Local_txn.finish txn;
      Alcotest.(check int) "2pl: released" 0 (Core.Lock_table.locked_keys locks))

let engine_recovery_exact () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let eng = Engine.create ssd sec engine_cfg Engine.noop_stability in
      let expected = Hashtbl.create 64 in
      let rng = Treaty_sim.Rng.create 5L in
      for i = 0 to 1500 do
        let k = Printf.sprintf "key%03d" (Treaty_sim.Rng.int rng 300) in
        if Treaty_sim.Rng.int rng 10 = 0 then begin
          ignore (Engine.commit eng ~writes:[ (k, Op.Delete) ] ());
          Hashtbl.replace expected k None
        end
        else begin
          let v = Printf.sprintf "v%d" i in
          ignore (Engine.commit eng ~writes:[ (k, Op.Put v) ] ());
          Hashtbl.replace expected k (Some v)
        end
      done;
      Engine.prepare eng ~tx:(9, 1) ~writes:[ ("prepared-key", Op.Put "pv") ] ();
      (* Crash: recover from the SSD with a fresh enclave/Sec. *)
      let sec2 = mk_sec sim in
      match Engine.recover ssd sec2 engine_cfg Engine.noop_stability ~trusted:(fun _ -> None) with
      | Error m -> Alcotest.failf "recovery failed: %s" m
      | Ok (eng2, info) ->
          Alcotest.(check int) "prepared tx recovered" 1 (List.length info.Engine.prepared);
          let snap = Engine.snapshot eng2 in
          Hashtbl.iter
            (fun k v ->
              match (Engine.get eng2 ~key:k ~snapshot:snap, v) with
              | Memtable.Found (_, got), Some want when got = want -> ()
              | (Memtable.Deleted _ | Memtable.Not_found), None -> ()
              | got, _ ->
                  Alcotest.failf "key %s mismatches after recovery (%s)" k
                    (match got with
                    | Memtable.Found _ -> "found-wrong"
                    | Memtable.Deleted _ -> "deleted"
                    | Memtable.Not_found -> "missing"))
            expected;
          (* Resolve the recovered prepared tx and read its write. *)
          (match Engine.resolve eng2 ~tx:(9, 1) ~commit:true with
          | Some _ -> ()
          | None -> Alcotest.fail "recovered prepare not resolvable");
          match Engine.get eng2 ~key:"prepared-key" ~snapshot:(Engine.snapshot eng2) with
          | Memtable.Found (_, "pv") -> ()
          | _ -> Alcotest.fail "prepared write lost")

let engine_recovery_idempotent () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let eng = Engine.create ssd sec engine_cfg Engine.noop_stability in
      for i = 0 to 200 do
        ignore (Engine.commit eng ~writes:[ (Printf.sprintf "k%d" i, Op.Put "v") ] ())
      done;
      let recover () =
        match
          Engine.recover ssd (mk_sec sim) engine_cfg Engine.noop_stability
            ~trusted:(fun _ -> None)
        with
        | Ok (e, _) -> e
        | Error m -> Alcotest.failf "recovery failed: %s" m
      in
      let e1 = recover () in
      let e2 = recover () in
      let snap1 = Engine.snapshot e1 and snap2 = Engine.snapshot e2 in
      for i = 0 to 200 do
        let k = Printf.sprintf "k%d" i in
        let a = Engine.get e1 ~key:k ~snapshot:snap1 in
        let b = Engine.get e2 ~key:k ~snapshot:snap2 in
        if a <> b then Alcotest.failf "recovery not idempotent at %s" k
      done)

let engine_duplicate_resolve_ignored () =
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      Engine.prepare eng ~tx:(1, 1) ~writes:[ ("k", Op.Put "v") ] ();
      (match Engine.resolve eng ~tx:(1, 1) ~commit:true with
      | Some _ -> ()
      | None -> Alcotest.fail "first resolve failed");
      (* "If a node has already committed the Tx, this message is ignored." *)
      match Engine.resolve eng ~tx:(1, 1) ~commit:true with
      | None -> ()
      | Some _ -> Alcotest.fail "duplicate commit re-executed")

let prop_engine_vs_model =
  QCheck.Test.make ~name:"engine agrees with model map across crashes" ~count:15
    QCheck.(pair (int_bound 1000) (list (triple (int_range 0 50) (int_range 0 2) small_string)))
    (fun (seed, ops) ->
      let result = ref true in
      let sim = Sim.create ~seed:(Int64.of_int (seed + 1)) () in
      Sim.run sim (fun () ->
          let sec = mk_sec sim in
          let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
          let eng = ref (Engine.create ssd sec engine_cfg Engine.noop_stability) in
          let model : (string, string option) Hashtbl.t = Hashtbl.create 64 in
          let step = ref 0 in
          List.iter
            (fun (k, kind, v) ->
              incr step;
              let key = Printf.sprintf "key%02d" k in
              (match kind with
              | 0 ->
                  ignore (Engine.commit !eng ~writes:[ (key, Op.Put v) ] ());
                  Hashtbl.replace model key (Some v)
              | 1 ->
                  ignore (Engine.commit !eng ~writes:[ (key, Op.Delete) ] ());
                  Hashtbl.replace model key None
              | _ ->
                  (* read + compare *)
                  let got = Engine.get !eng ~key ~snapshot:(Engine.snapshot !eng) in
                  let want = Option.join (Hashtbl.find_opt model key) in
                  let matches =
                    match (got, want) with
                    | Memtable.Found (_, g), Some w -> g = w
                    | (Memtable.Deleted _ | Memtable.Not_found), None -> true
                    | _ -> false
                  in
                  if not matches then result := false);
              (* Crash and recover occasionally. *)
              if !step mod 17 = 0 then
                match
                  Engine.recover ssd (mk_sec sim) engine_cfg Engine.noop_stability
                    ~trusted:(fun _ -> None)
                with
                | Ok (e, _) -> eng := e
                | Error _ -> result := false)
            ops);
      !result)

(* --- bloom filter + block cache (PR 5) --------------------------------- *)

let bloom_no_false_negatives () =
  let n = 500 in
  let b = Bloom.create ~expected:n in
  for i = 0 to n - 1 do
    Bloom.add b (Printf.sprintf "present-%04d" i)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "member %d" i)
      true
      (Bloom.mem b (Printf.sprintf "present-%04d" i))
  done;
  (* 10 bits/key, k=7: the false-positive rate on absent keys must sit
     near the theoretical ~1%, and in particular far from 0% (filter works
     at all) and far from 100% (filter filters at all). *)
  let fps = ref 0 in
  let probes = 10_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent-%05d" i) then incr fps
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fp rate sane (%d/%d)" !fps probes)
    true
    (!fps > 0 && !fps < probes / 10)

let bloom_codec_roundtrip () =
  let b = Bloom.create ~expected:64 in
  List.iter (Bloom.add b) [ "alpha"; "beta"; "gamma" ];
  let buf = Buffer.create 128 in
  Bloom.encode buf b;
  let b2 = Bloom.decode (Treaty_util.Wire.reader (Buffer.contents buf)) in
  List.iter
    (fun k -> Alcotest.(check bool) k true (Bloom.mem b2 k))
    [ "alpha"; "beta"; "gamma" ];
  Alcotest.(check bool) "sizes match" true (Bloom.bytes b = Bloom.bytes b2)

let block_cache_eviction_lru () =
  let c = Block_cache.create ~capacity_bytes:1000 in
  ignore (Block_cache.insert c ~file_id:1 ~block:0 ~bytes:300 "a");
  ignore (Block_cache.insert c ~file_id:1 ~block:1 ~bytes:300 "b");
  ignore (Block_cache.insert c ~file_id:1 ~block:2 ~bytes:300 "c");
  (* Bump the oldest entry: it must survive the next eviction instead of
     the (now least-recent) second entry. *)
  Alcotest.(check (option string)) "bump a" (Some "a")
    (Block_cache.find c ~file_id:1 ~block:0);
  let freed = Block_cache.insert c ~file_id:1 ~block:3 ~bytes:300 "d" in
  Alcotest.(check int) "evicted one entry's bytes" 300 freed;
  Alcotest.(check int) "one eviction" 1 (Block_cache.stats c).Block_cache.evictions;
  Alcotest.(check bool) "budget holds" true
    (Block_cache.used_bytes c <= Block_cache.capacity_bytes c);
  Alcotest.(check (option string)) "LRU victim was b" None
    (Block_cache.find c ~file_id:1 ~block:1);
  Alcotest.(check (option string)) "bumped a survived" (Some "a")
    (Block_cache.find c ~file_id:1 ~block:0);
  (* A value larger than the whole budget is refused, cache untouched. *)
  Alcotest.(check int) "oversized refused" 0
    (Block_cache.insert c ~file_id:9 ~block:0 ~bytes:5000 "huge");
  Alcotest.(check (option string)) "oversized not cached" None
    (Block_cache.find c ~file_id:9 ~block:0)

let block_cache_invalidate () =
  let c = Block_cache.create ~capacity_bytes:10_000 in
  ignore (Block_cache.insert c ~file_id:1 ~block:0 ~bytes:100 "f1b0");
  ignore (Block_cache.insert c ~file_id:2 ~block:0 ~bytes:100 "f2b0");
  ignore (Block_cache.insert c ~file_id:1 ~block:1 ~bytes:100 "f1b1");
  Alcotest.(check int) "freed file 1's bytes" 200
    (Block_cache.invalidate_file c ~file_id:1);
  Alcotest.(check (option string)) "file 1 block 0 gone" None
    (Block_cache.find c ~file_id:1 ~block:0);
  Alcotest.(check (option string)) "file 1 block 1 gone" None
    (Block_cache.find c ~file_id:1 ~block:1);
  Alcotest.(check (option string)) "file 2 untouched" (Some "f2b0")
    (Block_cache.find c ~file_id:2 ~block:0);
  Alcotest.(check int) "one entry left" 1 (Block_cache.entries c)

let engine_read_opt_correctness () =
  (* Bloom positives are only hints: every probe — resident, absent, or a
     filter false positive — must be answered by the verified block. *)
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      for i = 0 to 399 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "ro%04d" (2 * i), Op.Put (Printf.sprintf "v%d" i)) ]
             ())
      done;
      Engine.flush_now eng;
      let snap = Engine.snapshot eng in
      for i = 0 to 399 do
        (match Engine.get eng ~key:(Printf.sprintf "ro%04d" (2 * i)) ~snapshot:snap with
        | Memtable.Found (_, v) ->
            Alcotest.(check string) "resident value" (Printf.sprintf "v%d" i) v
        | _ -> Alcotest.failf "resident key %d missing" i);
        (* Odd keys interleave with residents: in every file's fence range,
           so only the Bloom filter (or the block itself) rejects them. *)
        match Engine.get eng ~key:(Printf.sprintf "ro%04d" ((2 * i) + 1)) ~snapshot:snap with
        | Memtable.Not_found -> ()
        | _ -> Alcotest.failf "absent key %d resurrected" i
      done;
      let s = Engine.stats eng in
      Alcotest.(check bool) "bloom skipped most absent probes" true
        (s.Engine.bloom_negatives > 300);
      Alcotest.(check bool) "cache populated" true (s.Engine.cache_misses > 0))

let engine_cache_invalidation_on_compaction () =
  with_sim (fun sim ->
      let eng, _, _ = mk_engine sim in
      for i = 0 to 299 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "ci%04d" i, Op.Put (Printf.sprintf "old%d" i)) ]
             ())
      done;
      Engine.flush_now eng;
      let snap = Engine.snapshot eng in
      (* Two passes: the second hits the cache. *)
      for pass = 1 to 2 do
        ignore pass;
        for i = 0 to 299 do
          match Engine.get eng ~key:(Printf.sprintf "ci%04d" i) ~snapshot:snap with
          | Memtable.Found _ -> ()
          | _ -> Alcotest.failf "key %d missing pre-compaction" i
        done
      done;
      Alcotest.(check bool) "cache warm" true ((Engine.stats eng).cache_hits > 0);
      (* Overwrite everything and compact: the input files die, and with
         them their cache entries — reads must see the new versions. *)
      for i = 0 to 299 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "ci%04d" i, Op.Put (Printf.sprintf "new%d" i)) ]
             ())
      done;
      Engine.flush_now eng;
      Engine.compact_now eng;
      Alcotest.(check bool) "compacted" true ((Engine.stats eng).compactions > 0);
      let snap2 = Engine.snapshot eng in
      for i = 0 to 299 do
        match Engine.get eng ~key:(Printf.sprintf "ci%04d" i) ~snapshot:snap2 with
        | Memtable.Found (_, v) ->
            Alcotest.(check string)
              (Printf.sprintf "key %d post-compaction" i)
              (Printf.sprintf "new%d" i)
              v
        | _ -> Alcotest.failf "key %d lost across compaction" i
      done;
      match Engine.cache_usage eng with
      | None -> Alcotest.fail "cache disabled"
      | Some (used, cap) ->
          Alcotest.(check bool) "cache budget holds" true (used <= cap))

let engine_cache_capacity_eviction () =
  with_sim (fun sim ->
      let sec = mk_sec sim in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      (* A budget of a couple of blocks forces evictions as reads sweep. *)
      let cfg = { engine_cfg with Engine.block_cache_bytes = 4 * 1024 } in
      let eng = Engine.create ssd sec cfg Engine.noop_stability in
      for i = 0 to 499 do
        ignore
          (Engine.commit eng
             ~writes:[ (Printf.sprintf "ev%04d" i, Op.Put (String.make 100 'e')) ]
             ())
      done;
      Engine.flush_now eng;
      let snap = Engine.snapshot eng in
      for pass = 1 to 2 do
        ignore pass;
        for i = 0 to 499 do
          match Engine.get eng ~key:(Printf.sprintf "ev%04d" i) ~snapshot:snap with
          | Memtable.Found _ -> ()
          | _ -> Alcotest.failf "key %d missing" i
        done
      done;
      let s = Engine.stats eng in
      Alcotest.(check bool) "evictions happened" true (s.Engine.cache_evictions > 0);
      match Engine.cache_usage eng with
      | None -> Alcotest.fail "cache disabled"
      | Some (used, cap) ->
          Alcotest.(check bool) "budget never exceeded" true (used <= cap))

let suite =
  [
    Alcotest.test_case "ssd basics + adversary ops" `Quick ssd_basics;
    Alcotest.test_case "log roundtrip" `Quick log_roundtrip;
    Alcotest.test_case "log tamper detection" `Quick log_tamper_detection;
    Alcotest.test_case "log truncation detection" `Quick log_truncation_detection;
    Alcotest.test_case "log rollback detection (trusted counter)" `Quick log_rollback_detection;
    Alcotest.test_case "log unstable tail dropped" `Quick log_unstable_tail_dropped;
    Alcotest.test_case "plain mode stores plaintext" `Quick log_plain_mode_no_auth;
    Alcotest.test_case "skiplist version visibility" `Quick skiplist_versions;
    QCheck_alcotest.to_alcotest prop_skiplist_vs_model;
    QCheck_alcotest.to_alcotest prop_skiplist_sorted;
    Alcotest.test_case "memtable roundtrip + host tamper" `Quick memtable_roundtrip_and_tamper;
    Alcotest.test_case "memtable EPC accounting" `Quick memtable_epc_accounting;
    Alcotest.test_case "sstable roundtrip" `Quick sstable_roundtrip;
    Alcotest.test_case "sstable tamper detection" `Quick sstable_tamper;
    Alcotest.test_case "sstable snapshot reads" `Quick sstable_snapshot_reads;
    Alcotest.test_case "record codecs" `Quick codec_roundtrips;
    Alcotest.test_case "manifest version fold" `Quick manifest_version_fold;
    Alcotest.test_case "group commit batching" `Quick group_commit_batching;
    Alcotest.test_case "clog group commit + batched replay" `Quick clog_group_commit_batches;
    Alcotest.test_case "engine flush + compaction" `Slow engine_compaction_cascade;
    Alcotest.test_case "engine range scan" `Quick engine_scan;
    Alcotest.test_case "sstable range" `Quick sstable_range;
    Alcotest.test_case "memtable range" `Quick memtable_range;
    QCheck_alcotest.to_alcotest prop_skiplist_range;
    Alcotest.test_case "gc watermark + tombstones" `Slow
      gc_watermark_and_tombstones;
    Alcotest.test_case "local txn read-set dedup" `Quick local_txn_read_dedup;
    Alcotest.test_case "compaction respects pinned snapshots" `Slow
      compaction_respects_pinned_snapshots;
    Alcotest.test_case "engine recovery exact state" `Quick engine_recovery_exact;
    Alcotest.test_case "engine recovery idempotent" `Quick engine_recovery_idempotent;
    Alcotest.test_case "duplicate resolve ignored" `Quick engine_duplicate_resolve_ignored;
    Alcotest.test_case "bloom no false negatives" `Quick bloom_no_false_negatives;
    Alcotest.test_case "bloom codec roundtrip" `Quick bloom_codec_roundtrip;
    Alcotest.test_case "block cache LRU eviction" `Quick block_cache_eviction_lru;
    Alcotest.test_case "block cache file invalidation" `Quick block_cache_invalidate;
    Alcotest.test_case "read-opt answers from verified blocks" `Quick
      engine_read_opt_correctness;
    Alcotest.test_case "compaction invalidates cached blocks" `Quick
      engine_cache_invalidation_on_compaction;
    Alcotest.test_case "cache eviction under a tight budget" `Quick
      engine_cache_capacity_eviction;
    QCheck_alcotest.to_alcotest prop_engine_vs_model;
  ]
