(* Trusted counter service (ROTE) and the asynchronous stabilization
   client: quorum behaviour, monotonicity, batching, recovery queries. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Net = Treaty_netsim.Net
module Erpc = Treaty_rpc.Erpc
module Rote = Treaty_counter.Rote
module CC = Treaty_counter.Counter_client

let mk_group ?(n = 3) sim net =
  List.init n (fun i ->
      let id = i + 1 in
      let enclave =
        Enclave.create sim ~mode:Enclave.Scone ~cost:Treaty_sim.Costmodel.default
          ~cores:4 ~node_id:id ~code_identity:"rote-test"
      in
      let pool = Treaty_memalloc.Mempool.create enclave in
      let rpc =
        Erpc.create sim ~net ~enclave ~pool
          ~config:(Erpc.default_config ~security:Treaty_rpc.Secure_msg.Plain)
          ~node_id:id ()
      in
      (rpc, Rote.create_replica rpc ~group:(List.init n (fun j -> j + 1)) ()))

let with_group ?n f =
  let sim = Sim.create () in
  let net = Net.create sim Treaty_sim.Costmodel.default in
  Sim.run sim (fun () -> f sim (mk_group ?n sim net))

let increment_and_query () =
  with_group (fun _sim group ->
      let _, r1 = List.hd group in
      (match Rote.increment r1 ~owner:1 ~log:"WAL" ~value:5 with
      | Ok () -> ()
      | Error `No_quorum -> Alcotest.fail "quorum available");
      List.iteri
        (fun i (_, r) ->
          Alcotest.(check int)
            (Printf.sprintf "replica %d holds the value" i)
            5
            (Rote.local_value r ~owner:1 ~log:"WAL"))
        group;
      match Rote.query r1 ~owner:1 ~log:"WAL" with
      | Ok 5 -> ()
      | Ok v -> Alcotest.failf "query returned %d" v
      | Error `No_quorum -> Alcotest.fail "query quorum")

let counters_are_namespaced () =
  with_group (fun _sim group ->
      let _, r1 = List.hd group in
      ignore (Rote.increment r1 ~owner:1 ~log:"A" ~value:3);
      ignore (Rote.increment r1 ~owner:1 ~log:"B" ~value:7);
      ignore (Rote.increment r1 ~owner:2 ~log:"A" ~value:11);
      Alcotest.(check int) "owner1/A" 3 (Rote.local_value r1 ~owner:1 ~log:"A");
      Alcotest.(check int) "owner1/B" 7 (Rote.local_value r1 ~owner:1 ~log:"B");
      Alcotest.(check int) "owner2/A" 11 (Rote.local_value r1 ~owner:2 ~log:"A"))

let survives_minority_crash () =
  with_group (fun _sim group ->
      let (_, r1), (rpc2, _), _ =
        match group with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      ignore (Rote.increment r1 ~owner:1 ~log:"L" ~value:4);
      Erpc.shutdown rpc2;
      (match Rote.increment r1 ~owner:1 ~log:"L" ~value:5 with
      | Ok () -> ()
      | Error `No_quorum -> Alcotest.fail "2/3 should still be a quorum");
      match Rote.query r1 ~owner:1 ~log:"L" with
      | Ok 5 -> ()
      | _ -> Alcotest.fail "query after minority crash")

let no_quorum_fails () =
  with_group (fun _sim group ->
      let (_, r1), (rpc2, _), (rpc3, _) =
        match group with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      Erpc.shutdown rpc2;
      Erpc.shutdown rpc3;
      match Rote.increment r1 ~owner:1 ~log:"L" ~value:1 with
      | Error `No_quorum -> ()
      | Ok () -> Alcotest.fail "1/3 is not a quorum")

let recovery_query_from_peers () =
  (* The owner crashes and loses its replica state; the group remembers. *)
  with_group (fun _sim group ->
      let (_, r1), (_, r2), _ =
        match group with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      ignore (Rote.increment r1 ~owner:1 ~log:"WAL" ~value:42);
      (* A fresh replica (recovering node 1) queries the group through any
         member; here through replica 2's endpoint. *)
      match Rote.query r2 ~owner:1 ~log:"WAL" with
      | Ok 42 -> ()
      | Ok v -> Alcotest.failf "peers returned %d" v
      | Error `No_quorum -> Alcotest.fail "quorum")

let expect_stable what = function
  | Ok () -> ()
  | Error `Stability_timeout -> Alcotest.failf "%s: stability timeout" what

let client_batches_rounds () =
  with_group (fun sim group ->
      let _, r1 = List.hd group in
      let cc = CC.create r1 ~owner:1 in
      (* A burst of submits coalesces: far fewer rounds than submits. *)
      for c = 1 to 50 do
        CC.submit cc ~log:"WAL" ~counter:c
      done;
      expect_stable "watermark" (CC.wait_stable cc ~log:"WAL" ~counter:50);
      Alcotest.(check int) "stable watermark" 50 (CC.stable_value cc ~log:"WAL");
      let rounds = (CC.stats cc).CC.rounds_started in
      Alcotest.(check bool)
        (Printf.sprintf "batched (%d rounds for 50 submits)" rounds)
        true (rounds <= 5);
      (* wait_stable below the watermark returns immediately. *)
      let t0 = Sim.now sim in
      expect_stable "below watermark" (CC.wait_stable cc ~log:"WAL" ~counter:10);
      Alcotest.(check int) "no wait below watermark" t0 (Sim.now sim))

let client_wakes_waiters_in_order () =
  with_group (fun sim group ->
      let _, r1 = List.hd group in
      let cc = CC.create r1 ~owner:1 in
      let woken = ref [] in
      for c = 1 to 3 do
        Sim.spawn sim (fun () ->
            expect_stable "waiter" (CC.wait_stable cc ~log:"L" ~counter:c);
            woken := c :: !woken)
      done;
      Sim.sleep sim 100_000_000;
      Alcotest.(check int) "all waiters woken" 3 (List.length !woken);
      Alcotest.(check int) "watermark covers all" 3 (CC.stable_value cc ~log:"L"))

let multi_log_epoch_rounds () =
  (* The epoch pump drains every dirty log per round: submits spread over
     three logs cost barely more rounds than one log, and each log's stable
     watermark lands on its own highest submitted value. *)
  with_group (fun _sim group ->
      let _, r1 = List.hd group in
      let cc = CC.create r1 ~owner:1 in
      let logs = [ ("WAL", 30); ("MANIFEST", 7); ("Clog", 19) ] in
      List.iter
        (fun (log, hi) ->
          for c = 1 to hi do
            CC.submit cc ~log ~counter:c
          done)
        logs;
      List.iter
        (fun (log, hi) ->
          expect_stable log (CC.wait_stable cc ~log ~counter:hi);
          Alcotest.(check int)
            (log ^ " watermark") hi
            (CC.stable_value cc ~log))
        logs;
      let s = CC.stats cc in
      Alcotest.(check bool)
        (Printf.sprintf "cross-log batching (%d rounds)" s.CC.rounds_started)
        true
        (s.CC.rounds_started <= 5);
      let rs = Rote.stats r1 in
      Alcotest.(check bool)
        (Printf.sprintf "rounds carry multiple targets (%d targets / %d incs)"
           rs.Rote.targets rs.Rote.increments)
        true
        (rs.Rote.targets > rs.Rote.increments))

let per_log_knob_costs_more_rounds () =
  (* batch_logs:false is the ablation: same submissions, one log per round. *)
  with_group (fun _sim group ->
      let _, r1 = List.hd group in
      let batched = CC.create r1 ~owner:1 in
      let unbatched = CC.create ~batch_logs:false r1 ~owner:2 in
      let drive cc =
        List.iter
          (fun log ->
            for c = 1 to 5 do
              CC.submit cc ~log ~counter:c
            done)
          [ "WAL"; "MANIFEST"; "Clog" ];
        List.iter
          (fun log -> expect_stable log (CC.wait_stable cc ~log ~counter:5))
          [ "WAL"; "MANIFEST"; "Clog" ]
      in
      drive batched;
      drive unbatched;
      let rb = (CC.stats batched).CC.rounds_started in
      let ru = (CC.stats unbatched).CC.rounds_started in
      Alcotest.(check bool)
        (Printf.sprintf "epoch rounds (%d) < per-log rounds (%d)" rb ru)
        true (rb < ru))

let abandoned_round_fails_waiters () =
  (* Quorum loss past the retry budget must fail pending waiters with
     [`Stability_timeout], not strand their fibers forever. *)
  with_group (fun sim group ->
      let (_, r1), (rpc2, _), (rpc3, _) =
        match group with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      Erpc.shutdown rpc2;
      Erpc.shutdown rpc3;
      let cc = CC.create ~attempts:2 ~retry_backoff_ns:1_000_000 r1 ~owner:1 in
      let outcome = ref `Pending in
      Sim.spawn sim (fun () ->
          match CC.wait_stable cc ~log:"WAL" ~counter:1 with
          | Ok () -> outcome := `Stable
          | Error `Stability_timeout -> outcome := `Failed);
      Sim.sleep sim 500_000_000;
      (match !outcome with
      | `Failed -> ()
      | `Stable -> Alcotest.fail "stabilized without a quorum"
      | `Pending -> Alcotest.fail "waiter hung on the abandoned round");
      Alcotest.(check int) "failure counted" 1 (CC.stats cc).CC.failed_waits;
      Alcotest.(check int) "nothing stable" 0 (CC.stable_value cc ~log:"WAL"))

let suite =
  [
    Alcotest.test_case "increment + quorum query" `Quick increment_and_query;
    Alcotest.test_case "counters namespaced by (owner, log)" `Quick counters_are_namespaced;
    Alcotest.test_case "survives minority crash" `Quick survives_minority_crash;
    Alcotest.test_case "no quorum -> unavailable" `Quick no_quorum_fails;
    Alcotest.test_case "recovery queries the group" `Quick recovery_query_from_peers;
    Alcotest.test_case "stabilization batches rounds" `Quick client_batches_rounds;
    Alcotest.test_case "waiters woken at watermark" `Quick client_wakes_waiters_in_order;
    Alcotest.test_case "epoch rounds span all logs" `Quick multi_log_epoch_rounds;
    Alcotest.test_case "per-log knob costs more rounds" `Quick per_log_knob_costs_more_rounds;
    Alcotest.test_case "abandoned round fails waiters" `Quick abandoned_round_fails_waiters;
  ]
