(* TreatySan: planted violations must be caught, legitimate behaviour must
   stay clean, and chaos runs under the sanitizer must come out spotless. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module San = Treaty_util.Sanitizer
module Aead = Treaty_crypto.Aead
module Taint = Treaty_crypto.Taint
module Net = Treaty_netsim.Net

let tx coord seq = { Types.coord; seq }

let mk_locks ?(timeout_ns = 1_000_000) sim =
  let enclave =
    Treaty_tee.Enclave.create sim ~mode:Treaty_tee.Enclave.Native
      ~cost:Treaty_sim.Costmodel.default ~cores:4 ~node_id:1
      ~code_identity:"san"
  in
  Lock_table.create ~sanitize:true sim ~enclave ~shards:16 ~timeout_ns

let lock_leak () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let lt = mk_locks sim in
      Lock_table.txn_begin lt ~owner:(tx 1 1);
      Lock_table.txn_begin lt ~owner:(tx 1 2);
      ignore (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"leaked" Lock_table.Write);
      ignore (Lock_table.acquire lt ~owner:(tx 1 2) ~key:"clean" Lock_table.Read);
      (* One transaction ends properly, the other leaks its lockset. *)
      Lock_table.txn_end lt ~owner:(tx 1 2);
      Lock_table.leak_check lt);
  Alcotest.(check int) "one leak" 1 (San.count San.Lock_leak);
  Alcotest.(check bool) "leak is a violation" true (San.violations () > 0)

let lock_zombie () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let lt = mk_locks sim in
      Lock_table.txn_begin lt ~owner:(tx 1 7);
      ignore (Lock_table.acquire lt ~owner:(tx 1 7) ~key:"k" Lock_table.Write);
      Lock_table.txn_end lt ~owner:(tx 1 7);
      (* Acquisition after txn_end: the transaction is dead — zombie. *)
      ignore (Lock_table.acquire lt ~owner:(tx 1 7) ~key:"k2" Lock_table.Read);
      Alcotest.(check int) "zombie caught" 1 (San.count San.Lock_zombie);
      (* A fresh txn_begin under the same txid makes it live again (a
         participant may legitimately re-begin after a late-delivered op). *)
      Lock_table.txn_begin lt ~owner:(tx 1 7);
      ignore (Lock_table.acquire lt ~owner:(tx 1 7) ~key:"k3" Lock_table.Read);
      Alcotest.(check int) "no new zombie" 1 (San.count San.Lock_zombie);
      Lock_table.txn_end lt ~owner:(tx 1 7))

let conflict_is_warning () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let lt = mk_locks sim in
      Lock_table.txn_begin lt ~owner:(tx 1 1);
      Lock_table.txn_begin lt ~owner:(tx 1 2);
      ignore (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"a" Lock_table.Write);
      ignore (Lock_table.acquire lt ~owner:(tx 1 2) ~key:"b" Lock_table.Write);
      (* Hold-and-wait that times out: deadlock-suspect, but resolving
         deadlocks by timeout is the paper's strategy — warning only. *)
      (match Lock_table.acquire lt ~owner:(tx 1 2) ~key:"a" Lock_table.Write with
      | Error `Timeout -> ()
      | Ok () -> Alcotest.fail "expected timeout");
      Lock_table.txn_end lt ~owner:(tx 1 1);
      Lock_table.txn_end lt ~owner:(tx 1 2));
  Alcotest.(check int) "conflict recorded" 1 (San.count San.Lock_conflict);
  Alcotest.(check int) "but not a violation" 0 (San.violations ())

let fiber_stall () =
  San.reset ();
  let sim = Sim.create () in
  Sim.enable_fiber_watchdog sim ~threshold_ns:1_000_000 ~report:(fun d ->
      San.record San.Fiber_stall d);
  Sim.run sim (fun () ->
      let starved : unit Sim.ivar = Sim.ivar () in
      Sim.spawn sim (fun () -> Sim.read sim starved);
      (* Keep the clock moving well past the threshold so the periodic
         watchdog scans run; the parked fiber is never woken. *)
      for _ = 1 to 10 do
        Sim.sleep sim 500_000
      done;
      Alcotest.(check int) "stall flagged once" 1 (San.count San.Fiber_stall);
      Sim.fill starved ());
  Alcotest.(check bool) "stall is a violation" true (San.violations () > 0)

let no_stall_under_threshold () =
  San.reset ();
  let sim = Sim.create () in
  Sim.enable_fiber_watchdog sim ~threshold_ns:100_000_000 ~report:(fun d ->
      San.record San.Fiber_stall d);
  Sim.run sim (fun () ->
      let v : unit Sim.ivar = Sim.ivar () in
      Sim.spawn sim (fun () -> Sim.read sim v);
      for _ = 1 to 10 do
        Sim.sleep sim 500_000
      done;
      Sim.fill v ());
  Alcotest.(check int) "no stall" 0 (San.count San.Fiber_stall)

let plaintext_to_transport () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let net = Net.create sim Treaty_sim.Costmodel.default in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> ());
      Taint.enable ();
      let key = Aead.key_of_string "test-key" in
      let iv = String.make Aead.iv_size '\000' in
      (* Built at runtime so the buffer is a fresh heap string, as real
         payloads are. *)
      let pt = String.concat "-" [ "top"; "secret"; "value" ] in
      let ct, _mac = Aead.seal key ~iv pt in
      (* The sealed form crossing the network is the correct flow. *)
      Net.send net ~src:1 ~dst:2 ct;
      Alcotest.(check int) "ciphertext is fine" 0 (San.count San.Plaintext);
      (* The registered plaintext itself reaching the transport is the bug
         TreatySan exists to catch. *)
      Net.send net ~src:1 ~dst:2 pt;
      Alcotest.(check int) "plaintext caught" 1 (San.count San.Plaintext);
      Taint.disable ());
  Alcotest.(check bool) "plaintext is a violation" true (San.violations () > 0)

let mk_pool sim =
  let enclave =
    Treaty_tee.Enclave.create sim ~mode:Treaty_tee.Enclave.Native
      ~cost:Treaty_sim.Costmodel.default ~cores:4 ~node_id:1
      ~code_identity:"san"
  in
  Treaty_memalloc.Mempool.create ~sanitize:true enclave

let mempool_leak () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let module M = Treaty_memalloc.Mempool in
      let pool = mk_pool sim in
      let kept = M.alloc pool M.Host 256 in
      let freed = M.alloc pool M.Host 256 in
      M.free pool freed;
      (* One buffer still outstanding at quiescence: the wire path dropped
         it without returning it to the pool. *)
      M.leak_check pool ~what:"test pool";
      ignore kept);
  Alcotest.(check int) "leak caught" 1 (San.count San.Buf_leak);
  Alcotest.(check bool) "leak is a violation" true (San.violations () > 0)

let mempool_no_false_leak () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let module M = Treaty_memalloc.Mempool in
      let pool = mk_pool sim in
      let b = M.alloc pool M.Host 4096 in
      M.free pool b;
      M.leak_check pool ~what:"test pool");
  Alcotest.(check int) "balanced pool is clean" 0 (San.count San.Buf_leak)

let mempool_double_free () =
  San.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let module M = Treaty_memalloc.Mempool in
      let pool = mk_pool sim in
      let b = M.alloc pool M.Host 128 in
      M.free pool b;
      match M.free pool b with
      | () -> Alcotest.fail "double free must raise"
      | exception Invalid_argument _ -> ());
  Alcotest.(check int) "double free recorded" 1 (San.count San.Buf_double_free);
  Alcotest.(check bool) "double free is a violation" true (San.violations () > 0)

let lane_race_planted () =
  San.reset ();
  (* Same txn, same cell, two lanes, no lock in between: a race. *)
  San.lane_write ~txn:"tx(1,1)" ~cell:"engine.tx-state" ~lane:0;
  San.lane_write ~txn:"tx(1,1)" ~cell:"engine.tx-state" ~lane:1;
  Alcotest.(check int) "cross-lane write caught" 1 (San.count San.Lane_race);
  Alcotest.(check bool) "lane race is a violation" true (San.violations () > 0)

let lane_race_lock_handoff () =
  San.reset ();
  San.lane_write ~txn:"tx(1,2)" ~cell:"engine.tx-state" ~lane:0;
  San.lane_lock ~txn:"tx(1,2)";
  San.lane_write ~txn:"tx(1,2)" ~cell:"engine.tx-state" ~lane:1;
  (* Same lane twice is always fine; other transactions are independent. *)
  San.lane_write ~txn:"tx(1,3)" ~cell:"engine.tx-state" ~lane:0;
  San.lane_write ~txn:"tx(1,3)" ~cell:"engine.tx-state" ~lane:0;
  San.lane_forget ~txn:"tx(1,2)";
  San.lane_write ~txn:"tx(1,2)" ~cell:"engine.tx-state" ~lane:1;
  Alcotest.(check int) "no race" 0 (San.count San.Lane_race)

let chaos_sanitize_clean () =
  (* run_seed already fails a seed on sanitizer violations; assert the
     collector really is empty afterwards as well. *)
  for seed = 1 to 3 do
    (match Treaty_chaos.Chaos.run_seed ~seed () with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "seed %d failed: %s" seed m);
    Alcotest.(check int)
      (Printf.sprintf "seed %d sanitizer-clean" seed)
      0
      (San.violations ())
  done

let suite =
  [
    Alcotest.test_case "planted lock leak is caught" `Quick lock_leak;
    Alcotest.test_case "zombie acquisition is caught" `Quick lock_zombie;
    Alcotest.test_case "lock conflict is warning only" `Quick conflict_is_warning;
    Alcotest.test_case "starved fiber is caught" `Quick fiber_stall;
    Alcotest.test_case "fast fibers stay unflagged" `Quick no_stall_under_threshold;
    Alcotest.test_case "plaintext reaching transport is caught" `Quick
      plaintext_to_transport;
    Alcotest.test_case "planted mempool leak is caught" `Quick mempool_leak;
    Alcotest.test_case "balanced mempool stays clean" `Quick mempool_no_false_leak;
    Alcotest.test_case "mempool double free is caught" `Quick mempool_double_free;
    Alcotest.test_case "planted cross-lane write is caught" `Quick
      lane_race_planted;
    Alcotest.test_case "lock hand-off and same-lane writes stay clean" `Quick
      lane_race_lock_handoff;
    Alcotest.test_case "chaos runs sanitizer-clean" `Quick chaos_sanitize_clean;
  ]
