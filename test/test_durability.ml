(* Durability and stabilization semantics at the cluster level.

   The central promise of the stabilization protocol (§VI): once a client is
   acknowledged, the transaction survives any crash — even an immediate one,
   even a disk rolled back to the latest "consistent" state an adversary can
   fabricate. These tests crash nodes at the worst possible moments. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module Engine = Treaty_storage.Engine
module Net = Treaty_netsim.Net
module Adversary = Treaty_netsim.Adversary
module Secure_msg = Treaty_rpc.Secure_msg

let mk_config profile =
  {
    (Config.with_profile Config.default profile) with
    Config.record_history = false;
    engine =
      {
        (Config.with_profile Config.default profile).Config.engine with
        Engine.memtable_max_bytes = 64 * 1024;
      };
  }

(* Route by explicit prefix, as in test_core. *)
let explicit_route key =
  match String.index_opt key ':' with
  | Some i -> ( try int_of_string (String.sub key 4 (i - 4)) - 1 with _ -> 0)
  | None -> Hashtbl.hash key

let ack_implies_durable_under_immediate_crash () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      match Cluster.create sim (mk_config Config.treaty_enc_stab) ~route:explicit_route () with
      | Error m -> Alcotest.failf "bootstrap: %s" m
      | Ok cluster ->
          let c = Client.connect_exn cluster ~client_id:1 in
          (* Commit through node 2 and crash it in the same instant the ack
             lands — zero grace time. The stabilization protocol must have
             made the WAL entry (and the manifest entry registering that
             WAL) trusted *before* the ack. *)
          (match
             Client.with_txn c ~coord:2 (fun txn ->
                 Client.put c txn "node2:acked" "must-survive")
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
          Cluster.crash_node cluster 1;
          (match Cluster.restart_node cluster 1 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "restart: %s" m);
          (match
             Client.with_txn c ~coord:3 (fun txn ->
                 match Client.get c txn "node2:acked" with
                 | Ok (Some "must-survive") -> Ok ()
                 | Ok _ -> Error Types.Integrity
                 | Error e -> Error e)
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "acked transaction lost: %s"
                (Types.abort_reason_to_string e));
          Client.disconnect c;
          Cluster.shutdown cluster)

let distributed_ack_durable_on_participant_crash () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      match Cluster.create sim (mk_config Config.treaty_enc_stab) ~route:explicit_route () with
      | Error m -> Alcotest.failf "bootstrap: %s" m
      | Ok cluster ->
          let c = Client.connect_exn cluster ~client_id:1 in
          (* A distributed tx acked by coordinator 1; participant 3 crashes
             immediately. Its local commit record may not be stable — but
             the coordinator's stabilized decision must drive recovery to
             commit. *)
          (match
             Client.with_txn c ~coord:1 (fun txn ->
                 match Client.put c txn "node1:a" "1" with
                 | Ok () -> Client.put c txn "node3:b" "2"
                 | Error e -> Error e)
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
          Cluster.crash_node cluster 2;
          (match Cluster.restart_node cluster 2 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "restart: %s" m);
          (* Give the recovered participant time to resolve with the
             coordinator. *)
          Sim.sleep sim 1_000_000_000;
          (match
             Client.with_txn c ~coord:1 (fun txn ->
                 match (Client.get c txn "node1:a", Client.get c txn "node3:b") with
                 | Ok (Some "1"), Ok (Some "2") -> Ok ()
                 | _ -> Error Types.Integrity)
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "acked distributed tx lost: %s"
                (Types.abort_reason_to_string e));
          Client.disconnect c;
          Cluster.shutdown cluster)

let coordinator_crash_between_decision_and_fanout () =
  (* The narrowest 2PC window: the commit decision is stabilized in the
     Clog but the k_commit fan-out never reaches the participants, and the
     coordinator then dies. The in-doubt participants must learn the
     outcome through the Clog-backed decision query against the restarted
     coordinator — and the acked writes must survive on every shard. *)
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      (* Stabilization on, encryption off, so the adversary can classify
         packets by their (plaintext) RPC kind. *)
      let profile = { Config.treaty_no_enc with Config.stabilization = true } in
      let cfg =
        {
          (mk_config profile) with
          Config.rpc_timeout_ns = 60_000_000;
          sweep_interval_ns = 50_000_000;
          part_prepared_resolve_ns = 150_000_000;
        }
      in
      match Cluster.create sim cfg ~route:explicit_route () with
      | Error m -> Alcotest.failf "bootstrap: %s" m
      | Ok cluster ->
          let net = Cluster.net cluster in
          let k_commit = 3 (* node.ml's commit fan-out RPC kind *) in
          Net.set_adversary net
            (Adversary.drop_matching (fun pkt ->
                 pkt.Treaty_netsim.Packet.src = 1
                 && pkt.Treaty_netsim.Packet.dst < 1000
                 && pkt.Treaty_netsim.Packet.dst <> Cluster.cas_id
                 &&
                 match Secure_msg.decode Secure_msg.Plain pkt.payload with
                 | Ok (m, _) -> (not m.Secure_msg.is_response) && m.kind = k_commit
                 | Error _ -> false));
          let c = Client.connect_exn cluster ~client_id:1 in
          (* The ack arrives only after the fan-out attempt times out — the
             decision itself was stabilized before it. *)
          (match
             Client.with_txn c ~coord:1 (fun txn ->
                 match Client.put c txn "node1:dw" "local" with
                 | Ok () -> Client.put c txn "node3:dw" "remote"
                 | Error e -> Error e)
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
          Cluster.crash_node cluster 0;
          (match Cluster.restart_node cluster 0 with
          | Ok () -> ()
          | Error m -> Alcotest.failf "restart: %s" m);
          (* The adversary stays installed: only the participant-initiated
             k_query_decision path can resolve the in-doubt tx. *)
          Sim.sleep sim 1_000_000_000;
          (match
             Client.with_txn c ~coord:2 (fun txn ->
                 match (Client.get c txn "node1:dw", Client.get c txn "node3:dw") with
                 | Ok (Some "local"), Ok (Some "remote") -> Ok ()
                 | _ -> Error Types.Integrity)
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "acked write lost in the decision/fan-out window: %s"
                (Types.abort_reason_to_string e));
          Alcotest.(check bool) "participants resolved via decision query" true
            ((Node.stats (Cluster.node cluster 0)).Node.decisions_queried > 0);
          Client.disconnect c;
          Cluster.shutdown cluster)

let no_stab_profile_vulnerable_to_rollback () =
  (* The contrapositive: without stabilization, a disk rollback after a
     crash is NOT detected — this is precisely the attack surface the
     protocol exists to close. *)
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      match Cluster.create sim (mk_config Config.treaty_enc) ~route:explicit_route () with
      | Error m -> Alcotest.failf "bootstrap: %s" m
      | Ok cluster ->
          let c = Client.connect_exn cluster ~client_id:1 in
          (match
             Client.with_txn c ~coord:1 (fun txn -> Client.put c txn "node1:v" "old")
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
          let ssd = Cluster.node_ssd cluster 0 in
          let snapshot = Treaty_storage.Ssd.snapshot ssd in
          (match
             Client.with_txn c ~coord:1 (fun txn -> Client.put c txn "node1:v" "new")
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "commit2: %s" (Types.abort_reason_to_string e));
          Cluster.crash_node cluster 0;
          Treaty_storage.Ssd.restore ssd snapshot;
          (match Cluster.restart_node cluster 0 with
          | Ok () -> () (* accepted the stale state: the vulnerability *)
          | Error m -> Alcotest.failf "w/o Stab should not detect rollback: %s" m);
          (match
             Client.with_txn c ~coord:2 (fun txn ->
                 match Client.get c txn "node1:v" with
                 | Ok (Some "old") -> Ok () (* stale data served: QED *)
                 | Ok (Some "new") -> Error Types.Integrity
                 | _ -> Error Types.Participant_failed)
           with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "expected the stale value to be served");
          Client.disconnect c;
          Cluster.shutdown cluster)

let stabilization_batches_across_concurrent_commits () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      match Cluster.create sim (mk_config Config.treaty_enc_stab) ~route:explicit_route () with
      | Error m -> Alcotest.failf "bootstrap: %s" m
      | Ok cluster ->
          let latch = Treaty_sched.Scheduler.Latch.create 8 in
          for cid = 1 to 8 do
            Sim.spawn sim (fun () ->
                (match Client.connect cluster ~client_id:cid with
                | Error _ -> ()
                | Ok c ->
                    for i = 1 to 5 do
                      ignore
                        (Client.with_txn c ~coord:1 (fun txn ->
                             Client.put c txn
                               (Printf.sprintf "node1:k%d-%d" cid i)
                               "v"))
                    done;
                    Client.disconnect c);
                Treaty_sched.Scheduler.Latch.arrive latch)
          done;
          Treaty_sched.Scheduler.Latch.wait (Sim.sched sim) latch;
          let node = Cluster.node cluster 0 in
          (match Node.counter_client node with
          | None -> Alcotest.fail "stab profile must have a counter client"
          | Some cc ->
              (* Batching happens at two levels: group commit merges the 40
                 transactions into a handful of WAL entries (submits), and
                 the counter client coalesces in-flight rounds. The 40
                 commits must have cost far fewer than 40 ROTE rounds. *)
              let s = Treaty_counter.Counter_client.stats cc in
              Alcotest.(check bool)
                (Printf.sprintf "rounds (%d) well below commits (40)"
                   s.Treaty_counter.Counter_client.rounds_started)
                true
                (s.Treaty_counter.Counter_client.rounds_started <= 20
                && s.Treaty_counter.Counter_client.rounds_started
                   <= s.Treaty_counter.Counter_client.submits));
          Cluster.shutdown cluster)

let suite =
  [
    Alcotest.test_case "ack implies durable (immediate crash)" `Quick
      ack_implies_durable_under_immediate_crash;
    Alcotest.test_case "distributed ack durable on participant crash" `Quick
      distributed_ack_durable_on_participant_crash;
    Alcotest.test_case "coordinator crash between decision and fan-out" `Quick
      coordinator_crash_between_decision_and_fanout;
    Alcotest.test_case "w/o Stab: rollback goes undetected (by design)" `Quick
      no_stab_profile_vulnerable_to_rollback;
    Alcotest.test_case "stabilization batches counter rounds" `Slow
      stabilization_batches_across_concurrent_commits;
  ]
