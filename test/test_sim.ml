(* Simulation engine: event queue ordering and cancellation, deterministic
   RNG, fiber scheduling, resources, timeouts. *)

module Sim = Treaty_sim.Sim
module Eventq = Treaty_sim.Eventq
module Rng = Treaty_sim.Rng
module Sched = Treaty_sched.Scheduler

let eventq_order () =
  let q = Eventq.create () in
  let fired = ref [] in
  ignore (Eventq.add q ~time:30 (fun () -> fired := 30 :: !fired));
  ignore (Eventq.add q ~time:10 (fun () -> fired := 10 :: !fired));
  ignore (Eventq.add q ~time:20 (fun () -> fired := 20 :: !fired));
  let rec drain () =
    match Eventq.pop q with
    | Some (_, fn) ->
        fn ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "time order" [ 30; 20; 10 ] !fired

let eventq_fifo_same_time () =
  let q = Eventq.create () in
  let fired = ref [] in
  List.iter (fun i -> ignore (Eventq.add q ~time:5 (fun () -> fired := i :: !fired))) [ 1; 2; 3 ];
  let rec drain () = match Eventq.pop q with Some (_, f) -> f (); drain () | None -> () in
  drain ();
  Alcotest.(check (list int)) "fifo among equal times" [ 3; 2; 1 ] !fired

let eventq_cancel () =
  let q = Eventq.create () in
  let fired = ref 0 in
  let h1 = Eventq.add q ~time:1 (fun () -> incr fired) in
  ignore (Eventq.add q ~time:2 (fun () -> incr fired));
  Alcotest.(check bool) "cancel live" true (Eventq.cancel q h1);
  Alcotest.(check bool) "cancel idempotent" false (Eventq.cancel q h1);
  Alcotest.(check int) "live count after cancel" 1 (Eventq.size q);
  let rec drain () = match Eventq.pop q with Some (_, f) -> f (); drain () | None -> () in
  drain ();
  Alcotest.(check int) "cancelled did not fire" 1 !fired;
  Alcotest.(check bool) "empty" true (Eventq.is_empty q)

(* Randomized differential test of the timer wheel against a sorted-list
   reference queue: interleaved add/cancel/pop with distances drawn
   log-uniformly so every wheel level, the overflow heap, same-tick adds
   and rotation-boundary crossings (an add whose distance fits level L but
   whose slot lands one rotation ahead of the cursor) all occur. The
   reference orders by (time, insertion id); the wheel must pop the exact
   same sequence, FIFO among equal timestamps. *)
let eventq_model () =
  let rng = Rng.create 0xD15C0L in
  let q = Eventq.create () in
  (* reference: ascending (time, uid); uid is the insertion counter *)
  let reference = ref [] in
  let handles = Hashtbl.create 64 in
  let uid = ref 0 in
  let last_popped = ref (-1) in
  let now = ref 0 in
  let insert time u =
    let rec go = function
      | [] -> [ (time, u) ]
      | (t', u') :: tl when t' < time || (t' = time && u' < u) ->
          (t', u') :: go tl
      | l -> (time, u) :: l
    in
    reference := go !reference
  in
  let add () =
    let dist =
      match Rng.int rng 10 with
      | 0 -> 0 (* same tick *)
      | 1 -> Rng.int rng 32 (* level 0 *)
      | 9 -> (1 lsl 30) + Rng.int rng (1 lsl 31) (* overflow heap *)
      | k -> Rng.int rng (1 lsl (5 * k)) (* levels 1-5 incl. boundaries *)
    in
    let time = !now + dist in
    let u = !uid in
    incr uid;
    Hashtbl.replace handles u (Eventq.add q ~time (fun () -> last_popped := u));
    insert time u
  in
  let cancel () =
    match !reference with
    | [] -> ()
    | l ->
        let victim = List.nth l (Rng.int rng (List.length l)) in
        let _, u = victim in
        Alcotest.(check bool)
          "cancel live entry" true
          (Eventq.cancel q (Hashtbl.find handles u));
        reference := List.filter (fun e -> e <> victim) !reference
  in
  let pop () =
    match (Eventq.pop q, !reference) with
    | None, [] -> ()
    | Some (t, fn), (rt, ru) :: rest ->
        Alcotest.(check int) "pop time matches reference" rt t;
        fn ();
        Alcotest.(check int) "pop identity matches reference" ru !last_popped;
        reference := rest;
        now := max !now t
    | Some _, [] -> Alcotest.fail "wheel popped but reference empty"
    | None, _ :: _ -> Alcotest.fail "wheel empty but reference live"
  in
  for _ = 1 to 20_000 do
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 -> add ()
    | 4 -> cancel ()
    | _ -> pop ()
  done;
  while not (Eventq.is_empty q) do
    pop ()
  done;
  Alcotest.(check (list (pair int int))) "drained together" [] !reference

(* Regression for the seed queue's lazy-cancel space leak: every
   [read_timeout] that resolves by fill used to strand a dead timer in the
   heap until its deadline surfaced. With eager reclamation the pooled
   record is reused immediately, so thousands of armed-and-cancelled
   timeouts keep both the live count and the pool at a handful of cells. *)
let read_timeout_reclaims () =
  let sim = Sim.create () in
  let peak_live = ref 0 in
  Sim.run sim (fun () ->
      for i = 1 to 5_000 do
        let iv : int Sim.ivar = Sim.ivar () in
        Sim.spawn sim (fun () ->
            Sim.sleep sim 10;
            Sim.fill iv i);
        (match Sim.read_timeout sim ~ns:60_000_000_000 iv with
        | Some v -> Alcotest.(check int) "filled before deadline" i v
        | None -> Alcotest.fail "spurious timeout");
        if Sim.events_live sim > !peak_live then
          peak_live := Sim.events_live sim
      done);
  Alcotest.(check bool)
    (Printf.sprintf "live events bounded (peak %d)" !peak_live)
    true (!peak_live <= 8);
  Alcotest.(check bool)
    (Printf.sprintf "timer pool bounded (%d cells)"
       (Sim.events_allocated sim))
    true
    (Sim.events_allocated sim <= 64)

let rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43L in
  let different = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then different := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !different

let rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v;
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let sim_sleep_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.run sim (fun () ->
      Sim.spawn sim (fun () ->
          Sim.sleep sim 50;
          order := `B :: !order);
      Sim.spawn sim (fun () ->
          Sim.sleep sim 10;
          order := `A :: !order);
      Sim.sleep sim 100;
      order := `C :: !order);
  Alcotest.(check bool) "wakeups in time order" true (!order = [ `C; `B; `A ]);
  Alcotest.(check int) "clock at last event" 100 (Sim.now sim)

let sim_read_timeout () =
  let sim = Sim.create () in
  let results = ref [] in
  Sim.run sim (fun () ->
      let iv1 : int Sim.ivar = Sim.ivar () in
      let iv2 : int Sim.ivar = Sim.ivar () in
      Sim.spawn sim (fun () ->
          Sim.sleep sim 10;
          Sim.fill iv1 1);
      Sim.spawn sim (fun () ->
          let r = Sim.read_timeout sim ~ns:100 iv1 in
          results := (`Fast, r) :: !results);
      Sim.spawn sim (fun () ->
          let r = Sim.read_timeout sim ~ns:50 iv2 in
          results := (`Slow, r) :: !results);
      Sim.sleep sim 200);
  Alcotest.(check bool) "filled before deadline" true
    (List.assoc `Fast !results = Some 1);
  Alcotest.(check bool) "timed out" true (List.assoc `Slow !results = None)

let resource_fifo_and_limit () =
  let sim = Sim.create () in
  let concurrent = ref 0 and peak = ref 0 and order = ref [] in
  Sim.run sim (fun () ->
      let r = Sim.Resource.create sim ~capacity:2 "r" in
      for i = 1 to 5 do
        Sim.spawn sim (fun () ->
            Sim.Resource.acquire r;
            incr concurrent;
            if !concurrent > !peak then peak := !concurrent;
            Sim.sleep sim 10;
            order := i :: !order;
            decr concurrent;
            Sim.Resource.release r)
      done);
  Alcotest.(check int) "peak concurrency = capacity" 2 !peak;
  Alcotest.(check (list int)) "FIFO completion" [ 5; 4; 3; 2; 1 ] !order

let latch_and_ivar () =
  let sim = Sim.create () in
  let done_ = ref false in
  Sim.run sim (fun () ->
      let l = Sched.Latch.create 3 in
      for _ = 1 to 3 do
        Sim.spawn sim (fun () ->
            Sim.sleep sim 5;
            Sched.Latch.arrive l)
      done;
      Sched.Latch.wait (Sim.sched sim) l;
      done_ := true);
  Alcotest.(check bool) "latch released" true !done_

let ivar_double_fill () =
  let iv = Sched.Ivar.create () in
  Sched.Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill on full" false (Sched.Ivar.try_fill iv 2);
  Alcotest.check_raises "fill on full" (Invalid_argument "Ivar.fill: already full")
    (fun () -> Sched.Ivar.fill iv 3);
  Alcotest.(check (option int)) "value preserved" (Some 1) (Sched.Ivar.peek iv)

let sim_determinism () =
  (* Two identical runs produce identical final clocks and trace. *)
  let run () =
    let sim = Sim.create ~seed:99L () in
    let trace = Buffer.create 64 in
    Sim.run sim (fun () ->
        let rng = Sim.rng sim in
        for _ = 1 to 20 do
          let d = Treaty_sim.Rng.int rng 100 in
          Sim.spawn sim (fun () ->
              Sim.sleep sim d;
              Buffer.add_string trace (string_of_int (Sim.now sim)))
        done;
        Sim.sleep sim 200);
    (Sim.now sim, Buffer.contents trace)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bitwise identical runs" true (a = b)

let suite =
  [
    Alcotest.test_case "eventq time order" `Quick eventq_order;
    Alcotest.test_case "eventq fifo at equal time" `Quick eventq_fifo_same_time;
    Alcotest.test_case "eventq cancellation" `Quick eventq_cancel;
    Alcotest.test_case "eventq randomized model check" `Quick eventq_model;
    Alcotest.test_case "read_timeout reclaims cancelled timers" `Quick
      read_timeout_reclaims;
    Alcotest.test_case "rng determinism" `Quick rng_determinism;
    Alcotest.test_case "rng bounds" `Quick rng_bounds;
    Alcotest.test_case "sleep ordering" `Quick sim_sleep_ordering;
    Alcotest.test_case "read_timeout" `Quick sim_read_timeout;
    Alcotest.test_case "resource fifo + capacity" `Quick resource_fifo_and_limit;
    Alcotest.test_case "latch" `Quick latch_and_ivar;
    Alcotest.test_case "ivar double fill" `Quick ivar_double_fill;
    Alcotest.test_case "simulation determinism" `Quick sim_determinism;
  ]
