(* Attestation flow: CAS bootstrap over IAS, LAS-signed node attestation,
   rejection of wrong code identities, client tokens. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Net = Treaty_netsim.Net
module Erpc = Treaty_rpc.Erpc
module Cas = Treaty_cas.Cas
module Las = Treaty_cas.Las
module Ias = Treaty_cas.Ias

let code = "treaty-node-v1"

let mk_endpoint sim net ~node_id ~code_identity =
  let enclave =
    Enclave.create sim ~mode:Enclave.Scone ~cost:Treaty_sim.Costmodel.default
      ~cores:2 ~node_id ~code_identity
  in
  let pool = Treaty_memalloc.Mempool.create enclave in
  ( enclave,
    Erpc.create sim ~net ~enclave ~pool
      ~config:(Erpc.default_config ~security:Treaty_rpc.Secure_msg.Plain)
      ~node_id () )

let with_cas f =
  let sim = Sim.create () in
  let net = Net.create sim Treaty_sim.Costmodel.default in
  Sim.run sim (fun () ->
      let cas_enclave, cas_rpc = mk_endpoint sim net ~node_id:90 ~code_identity:"cas" in
      let cas =
        Cas.bootstrap ~rpc:cas_rpc ~enclave:cas_enclave ~master_secret:"secret!"
          ~expected_measurement:(Treaty_crypto.Sha256.digest_string code)
          ~config_blob:"cfg"
      in
      f sim net cas)

let attest sim net cas ~node_id ~code_identity =
  let enclave, rpc = mk_endpoint sim net ~node_id ~code_identity in
  let las = Las.deploy sim ~node_id in
  Cas.deploy_las cas las;
  let r = Cas.Attest.run ~rpc ~enclave ~las ~cas_node:90 in
  Erpc.shutdown rpc;
  r

let happy_path () =
  with_cas (fun sim net cas_r ->
      match cas_r with
      | Error `Ias_rejected -> Alcotest.fail "IAS rejected the CAS"
      | Ok cas -> (
          let t0 = Sim.now sim in
          Alcotest.(check bool) "IAS round trip took time" true (t0 >= Ias.latency_ns);
          match attest sim net cas ~node_id:1 ~code_identity:code with
          | Ok p ->
              Alcotest.(check string) "master provisioned" "secret!" p.Cas.Attest.master_secret;
              Alcotest.(check string) "config provisioned" "cfg" p.Cas.Attest.config_blob
          | Error _ -> Alcotest.fail "honest node rejected"))

let wrong_code_rejected () =
  with_cas (fun sim net cas_r ->
      match cas_r with
      | Error `Ias_rejected -> Alcotest.fail "bootstrap"
      | Ok cas -> (
          (* An attacker running modified code has a different measurement;
             the LAS signs it faithfully, the CAS must refuse. *)
          match attest sim net cas ~node_id:66 ~code_identity:"evil-code" with
          | Error `Rejected -> ()
          | Ok _ -> Alcotest.fail "wrong measurement provisioned!"
          | Error `Cas_unreachable -> Alcotest.fail "unexpected unreachable"))

let unknown_las_rejected () =
  with_cas (fun sim net cas_r ->
      match cas_r with
      | Error `Ias_rejected -> Alcotest.fail "bootstrap"
      | Ok cas -> (
          (* LAS never registered with the CAS: quotes are unverifiable. *)
          let enclave, rpc = mk_endpoint sim net ~node_id:5 ~code_identity:code in
          let rogue_las = Las.deploy sim ~node_id:5 in
          ignore cas;
          let r = Cas.Attest.run ~rpc ~enclave ~las:rogue_las ~cas_node:90 in
          Erpc.shutdown rpc;
          match r with
          | Error `Rejected -> ()
          | Ok _ -> Alcotest.fail "unregistered LAS accepted"
          | Error `Cas_unreachable -> Alcotest.fail "unexpected unreachable"))

let cas_down_blocks_attestation () =
  with_cas (fun sim net cas_r ->
      match cas_r with
      | Error `Ias_rejected -> Alcotest.fail "bootstrap"
      | Ok cas -> (
          Cas.shutdown cas;
          match attest sim net cas ~node_id:2 ~code_identity:code with
          | Error (`Cas_unreachable | `Rejected) -> ()
          | Ok _ -> Alcotest.fail "dead CAS provisioned a node"))

let client_tokens () =
  with_cas (fun _sim _net cas_r ->
      match cas_r with
      | Error `Ias_rejected -> Alcotest.fail "bootstrap"
      | Ok cas ->
          let t1 = Cas.register_client cas ~client_id:1 in
          let t1' = Cas.register_client cas ~client_id:1 in
          let t2 = Cas.register_client cas ~client_id:2 in
          Alcotest.(check string) "deterministic" t1 t1';
          Alcotest.(check bool) "distinct per client" true (t1 <> t2);
          (* The token is what the storage nodes derive themselves. *)
          Alcotest.(check string) "derivable from master" t1
            (Treaty_crypto.Keys.client_token (Cas.master cas) ~client_id:1))

let suite =
  [
    Alcotest.test_case "attestation happy path" `Quick happy_path;
    Alcotest.test_case "wrong code identity rejected" `Quick wrong_code_rejected;
    Alcotest.test_case "unknown LAS rejected" `Quick unknown_las_rejected;
    Alcotest.test_case "dead CAS blocks attestation" `Quick cas_down_blocks_attestation;
    Alcotest.test_case "client tokens" `Quick client_tokens;
  ]
