(* Crypto substrate: standard test vectors plus property-based roundtrips
   and tamper detection. *)

open Treaty_crypto

let check_hex msg expected got = Alcotest.(check string) msg expected (Sha256.to_hex got)

let sha256_vectors () =
  (* FIPS 180-4 / NIST examples. *)
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_string (String.make 1_000_000 'a'))

let sha256_incremental () =
  (* Chunked absorption must agree with one-shot hashing at every split. *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let oneshot = Sha256.digest_string data in
  List.iter
    (fun split ->
      let ctx = Sha256.init () in
      Sha256.update_string ctx (String.sub data 0 split);
      Sha256.update_string ctx (String.sub data split (String.length data - split));
      Alcotest.(check string)
        (Printf.sprintf "split at %d" split)
        (Sha256.to_hex oneshot)
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 500; 999; 1000 ]

let sha256_copy () =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "shared prefix|";
  let ctx2 = Sha256.copy ctx in
  Sha256.update_string ctx "left";
  Sha256.update_string ctx2 "right";
  Alcotest.(check string) "copy diverges left"
    (Sha256.to_hex (Sha256.digest_string "shared prefix|left"))
    (Sha256.to_hex (Sha256.finalize ctx));
  Alcotest.(check string) "copy diverges right"
    (Sha256.to_hex (Sha256.digest_string "shared prefix|right"))
    (Sha256.to_hex (Sha256.finalize ctx2))

let hmac_vectors () =
  (* RFC 4231 test cases 1, 2 and 7 (long key). *)
  let h1 = Hmac.create (String.make 20 '\x0b') in
  check_hex "rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac h1 "Hi There");
  let h2 = Hmac.create "Jefe" in
  check_hex "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac h2 "what do ya want for nothing?");
  let h7 = Hmac.create (String.make 131 '\xaa') in
  check_hex "rfc4231 tc7 (key > block)"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (Hmac.mac h7
       "This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.")

let hmac_parts () =
  let h = Hmac.create "key" in
  Alcotest.(check string) "mac_parts = mac of concat"
    (Sha256.to_hex (Hmac.mac h "abcdef"))
    (Sha256.to_hex (Hmac.mac_parts h [ "ab"; "cd"; "ef" ]))

let hmac_equal_tags () =
  Alcotest.(check bool) "equal" true (Hmac.equal_tags "same-tag" "same-tag");
  Alcotest.(check bool) "different" false (Hmac.equal_tags "same-tag" "SAME-tag");
  Alcotest.(check bool) "length mismatch" false (Hmac.equal_tags "a" "ab")

let chacha20_rfc_block () =
  (* RFC 8439 §2.3.2: first keystream block. *)
  let key = String.init 32 Char.chr in
  let nonce = "\x00\x00\x00\x09\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let block = Chacha20.block ~key ~nonce ~counter:1 in
  Alcotest.(check string) "keystream prefix"
    "10f1e7e4d13b5915500fdd1fa32071c4"
    (Sha256.to_hex (String.sub block 0 16))

let chacha20_rfc_encrypt () =
  (* RFC 8439 §2.4.2 "Ladies and Gentlemen..." *)
  let key = String.init 32 Char.chr in
  let nonce = "\x00\x00\x00\x00\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.xor ~key ~nonce ~counter:1 plaintext in
  Alcotest.(check string) "first ct bytes"
    "6e2e359a2568f98041ba0728dd0d6981"
    (Sha256.to_hex (String.sub ct 0 16));
  Alcotest.(check string) "decrypt roundtrip" plaintext
    (Chacha20.xor ~key ~nonce ~counter:1 ct)

let aead_tamper_every_byte () =
  let key = Aead.key_of_string "k" in
  let iv = String.make 12 'i' in
  let packed = Aead.seal_packed key ~iv ~aad:"hdr" "secret payload" in
  for i = 0 to String.length packed - 1 do
    let b = Bytes.of_string packed in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x80));
    match Aead.open_packed key ~aad:"hdr" (Bytes.to_string b) with
    | Error `Mac_mismatch -> ()
    | Error `Truncated -> ()
    | Ok _ -> Alcotest.failf "tampering byte %d went undetected" i
  done

let aead_wrong_aad () =
  let key = Aead.key_of_string "k" in
  let iv = String.make 12 'i' in
  let packed = Aead.seal_packed key ~iv ~aad:"aad1" "data" in
  (match Aead.open_packed key ~aad:"aad2" packed with
  | Error `Mac_mismatch -> ()
  | _ -> Alcotest.fail "wrong AAD accepted");
  match Aead.open_packed (Aead.key_of_string "other") ~aad:"aad1" packed with
  | Error `Mac_mismatch -> ()
  | _ -> Alcotest.fail "wrong key accepted"

let iv_gen_unique () =
  let g = Aead.Iv_gen.create ~node_id:7 in
  let seen = Hashtbl.create 1000 in
  for _ = 1 to 1000 do
    let iv = Aead.Iv_gen.next g in
    Alcotest.(check int) "iv size" 12 (String.length iv);
    Alcotest.(check bool) "fresh iv" false (Hashtbl.mem seen iv);
    Hashtbl.replace seen iv ()
  done;
  let g2 = Aead.Iv_gen.create ~node_id:8 in
  Alcotest.(check bool) "distinct nodes disjoint" false
    (Hashtbl.mem seen (Aead.Iv_gen.next g2))

let region_primitives () =
  (* The zero-copy wire path is built on in-place region variants of the
     string crypto; each must agree byte-for-byte with its string twin. *)
  let key = String.init 32 Char.chr and nonce = String.make 12 'n' in
  let pt = String.init 777 (fun i -> Char.chr (i * 7 mod 256)) in
  let b = Bytes.make 1000 '\xee' in
  Bytes.blit_string pt 0 b 100 (String.length pt);
  Chacha20.xor_into ~key ~nonce b ~off:100 ~len:(String.length pt);
  Alcotest.(check string) "xor_into = xor on the region"
    (Chacha20.xor ~key ~nonce pt)
    (Bytes.sub_string b 100 (String.length pt));
  Alcotest.(check char) "byte before region untouched" '\xee' (Bytes.get b 99);
  Alcotest.(check char) "byte after region untouched" '\xee'
    (Bytes.get b (100 + String.length pt));
  let h = Hmac.create "stream-key" in
  let s = Hmac.stream h in
  Hmac.feed_string s "ab";
  Hmac.feed_bytes s (Bytes.of_string "_cdef_") 1 4;
  Alcotest.(check string) "hmac stream = mac of concat"
    (Sha256.to_hex (Hmac.mac h "abcdef"))
    (Sha256.to_hex (Hmac.stream_mac s))

let aead_region_interverifies () =
  (* A message sealed through the region API must open through the string
     API (and vice versa): same IV transcript, same tag. *)
  let key = Aead.key_of_string "k" in
  let iv = String.make 12 'i' in
  let aad = "header" and pt = "the payload" in
  let packed = Aead.seal_packed key ~iv ~aad pt in
  (* packed = iv | ct | mac *)
  let ct_len = String.length pt in
  let b = Bytes.create (String.length aad + ct_len) in
  Bytes.blit_string aad 0 b 0 (String.length aad);
  Bytes.blit_string packed 12 b (String.length aad) ct_len;
  let tag =
    Aead.tag_region key ~iv b ~aad_off:0 ~aad_len:(String.length aad)
      ~ct_off:(String.length aad) ~ct_len
  in
  Alcotest.(check string) "region tag = packed tag"
    (String.sub packed (12 + ct_len) 16)
    tag;
  Alcotest.(check bool) "check_region accepts" true
    (Aead.check_region key ~iv b ~aad_off:0 ~aad_len:(String.length aad)
       ~ct_off:(String.length aad) ~ct_len ~mac:tag);
  Aead.xor_region key ~iv b ~off:(String.length aad) ~len:ct_len;
  Alcotest.(check string) "region decrypt recovers plaintext" pt
    (Bytes.sub_string b (String.length aad) ct_len)

let iv_gen_next_into () =
  let g1 = Aead.Iv_gen.create ~node_id:7 in
  let g2 = Aead.Iv_gen.create ~node_id:7 in
  let b = Bytes.make 20 '\x00' in
  for i = 1 to 100 do
    let iv = Aead.Iv_gen.next g1 in
    Aead.Iv_gen.next_into g2 b 4;
    Alcotest.(check string)
      (Printf.sprintf "next_into = next (step %d)" i)
      iv
      (Bytes.sub_string b 4 12)
  done

let keys_derivation () =
  let m = Keys.master_of_secret "s" in
  Alcotest.(check bool) "labels differ" true (Keys.derive m "a" <> Keys.derive m "b");
  Alcotest.(check string) "deterministic" (Keys.derive m "a") (Keys.derive m "a");
  let m2 = Keys.master_of_secret "s2" in
  Alcotest.(check bool) "masters differ" true (Keys.derive m "a" <> Keys.derive m2 "a");
  Alcotest.(check bool) "client tokens distinct" true
    (Keys.client_token m ~client_id:1 <> Keys.client_token m ~client_id:2)

(* --- properties --- *)

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"aead roundtrip" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 2048)) small_string)
    (fun (pt, aad) ->
      let key = Aead.key_of_string "prop" in
      let iv = String.make 12 'x' in
      let packed = Aead.seal_packed key ~iv ~aad pt in
      Aead.open_packed key ~aad packed = Ok pt)

let prop_chacha_involution =
  QCheck.Test.make ~name:"chacha20 xor is an involution" ~count:200
    (QCheck.string_of_size QCheck.Gen.(0 -- 4096))
    (fun pt ->
      let key = String.make 32 'k' and nonce = String.make 12 'n' in
      Chacha20.xor ~key ~nonce (Chacha20.xor ~key ~nonce pt) = pt)

let prop_sha_distinct =
  QCheck.Test.make ~name:"sha256 distinguishes distinct inputs" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) -> a = b || Sha256.digest_string a <> Sha256.digest_string b)

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Quick sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick sha256_incremental;
    Alcotest.test_case "sha256 state copy" `Quick sha256_copy;
    Alcotest.test_case "hmac rfc4231 vectors" `Quick hmac_vectors;
    Alcotest.test_case "hmac parts" `Quick hmac_parts;
    Alcotest.test_case "hmac tag comparison" `Quick hmac_equal_tags;
    Alcotest.test_case "chacha20 rfc block" `Quick chacha20_rfc_block;
    Alcotest.test_case "chacha20 rfc encrypt" `Quick chacha20_rfc_encrypt;
    Alcotest.test_case "aead detects any bit flip" `Quick aead_tamper_every_byte;
    Alcotest.test_case "aead wrong aad/key" `Quick aead_wrong_aad;
    Alcotest.test_case "iv generator uniqueness" `Quick iv_gen_unique;
    Alcotest.test_case "region crypto primitives" `Quick region_primitives;
    Alcotest.test_case "aead region/string interverify" `Quick
      aead_region_interverifies;
    Alcotest.test_case "iv_gen next_into = next" `Quick iv_gen_next_into;
    Alcotest.test_case "key derivation" `Quick keys_derivation;
    QCheck_alcotest.to_alcotest prop_aead_roundtrip;
    QCheck_alcotest.to_alcotest prop_chacha_involution;
    QCheck_alcotest.to_alcotest prop_sha_distinct;
  ]
