(* Transaction layer: lock table, local transactions, the serializability
   checker itself, and full-cluster end-to-end behaviour — 2PC commit/abort,
   concurrency, crash recovery in every phase, and the security attacks the
   paper defends against. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module Net = Treaty_netsim.Net
module Adversary = Treaty_netsim.Adversary
module Ssd = Treaty_storage.Ssd
module Engine = Treaty_storage.Engine
module Memtable = Treaty_storage.Memtable
module Op = Treaty_storage.Op
module Latch = Treaty_sched.Scheduler.Latch

let tx coord seq = { Types.coord; seq }

(* --- lock table --------------------------------------------------------- *)

let mk_locks ?(timeout_ns = 1_000_000) sim =
  let enclave =
    Treaty_tee.Enclave.create sim ~mode:Treaty_tee.Enclave.Native
      ~cost:Treaty_sim.Costmodel.default ~cores:4 ~node_id:1 ~code_identity:"lt"
  in
  Lock_table.create sim ~enclave ~shards:16 ~timeout_ns

let lock_modes () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let lt = mk_locks sim in
      (* Shared readers. *)
      Alcotest.(check bool) "r1" true (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"k" Lock_table.Read = Ok ());
      Alcotest.(check bool) "r2" true (Lock_table.acquire lt ~owner:(tx 1 2) ~key:"k" Lock_table.Read = Ok ());
      (* Writer blocks behind readers and times out. *)
      Alcotest.(check bool) "w blocked" true
        (Lock_table.acquire lt ~owner:(tx 1 3) ~key:"k" Lock_table.Write = Error `Timeout);
      Lock_table.release_all lt ~owner:(tx 1 1);
      Lock_table.release_all lt ~owner:(tx 1 2);
      (* Now the writer can take it; readers block. *)
      Alcotest.(check bool) "w" true (Lock_table.acquire lt ~owner:(tx 1 3) ~key:"k" Lock_table.Write = Ok ());
      Alcotest.(check bool) "r blocked by writer" true
        (Lock_table.acquire lt ~owner:(tx 1 4) ~key:"k" Lock_table.Read = Error `Timeout);
      (* Reentrant for the owner. *)
      Alcotest.(check bool) "owner rereads" true
        (Lock_table.acquire lt ~owner:(tx 1 3) ~key:"k" Lock_table.Read = Ok ());
      Lock_table.release_all lt ~owner:(tx 1 3);
      Alcotest.(check int) "all released" 0 (Lock_table.locked_keys lt))

let lock_upgrade () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let lt = mk_locks sim in
      ignore (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"k" Lock_table.Read);
      (* Sole reader upgrades. *)
      Alcotest.(check bool) "upgrade" true
        (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"k" Lock_table.Write = Ok ());
      Alcotest.(check bool) "holds write" true
        (Lock_table.holds lt ~owner:(tx 1 1) ~key:"k" Lock_table.Write);
      ignore (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"k2" Lock_table.Read);
      ignore (Lock_table.acquire lt ~owner:(tx 1 2) ~key:"k2" Lock_table.Read);
      (* Two readers: upgrade must fail (deadlock-by-timeout). *)
      Alcotest.(check bool) "contended upgrade times out" true
        (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"k2" Lock_table.Write = Error `Timeout))

let lock_waiter_granted_on_release () =
  let sim = Sim.create () in
  let got = ref false in
  Sim.run sim (fun () ->
      let lt = mk_locks ~timeout_ns:50_000_000 sim in
      ignore (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"k" Lock_table.Write);
      Sim.spawn sim (fun () ->
          got := Lock_table.acquire lt ~owner:(tx 1 2) ~key:"k" Lock_table.Write = Ok ());
      Sim.sleep sim 1000;
      Lock_table.release_all lt ~owner:(tx 1 1);
      Sim.sleep sim 1000);
  Alcotest.(check bool) "waiter granted" true !got

let lock_deadlock_resolved_by_timeout () =
  let sim = Sim.create () in
  let outcomes = ref [] in
  Sim.run sim (fun () ->
      let lt = mk_locks ~timeout_ns:2_000_000 sim in
      let l = Latch.create 2 in
      Sim.spawn sim (fun () ->
          ignore (Lock_table.acquire lt ~owner:(tx 1 1) ~key:"a" Lock_table.Write);
          Sim.sleep sim 100;
          let r = Lock_table.acquire lt ~owner:(tx 1 1) ~key:"b" Lock_table.Write in
          outcomes := ("t1", r) :: !outcomes;
          Lock_table.release_all lt ~owner:(tx 1 1);
          Latch.arrive l);
      Sim.spawn sim (fun () ->
          ignore (Lock_table.acquire lt ~owner:(tx 1 2) ~key:"b" Lock_table.Write);
          Sim.sleep sim 100;
          let r = Lock_table.acquire lt ~owner:(tx 1 2) ~key:"a" Lock_table.Write in
          outcomes := ("t2", r) :: !outcomes;
          Lock_table.release_all lt ~owner:(tx 1 2);
          Latch.arrive l);
      Latch.wait (Sim.sched sim) l);
  (* At least one side must have broken the deadlock via timeout; the other
     may then have acquired. *)
  Alcotest.(check bool) "deadlock broken" true
    (List.exists (fun (_, r) -> r = Error `Timeout) !outcomes)

(* --- serializability checker (unit) ------------------------------------- *)

let checker_detects_cycle () =
  let h = Serializability.create () in
  (* Classic write-skew-like cycle: T1 reads x@0 writes y@1; T2 reads y@0
     writes x@1. *)
  Serializability.record_commit h ~tx:(tx 1 1) ~reads:[ ("x", 0) ] ~writes:[ ("y", 1) ];
  Serializability.record_commit h ~tx:(tx 1 2) ~reads:[ ("y", 0) ] ~writes:[ ("x", 1) ];
  (match Serializability.check h with
  | Serializability.Cycle _ -> ()
  | Serializability.Serializable -> Alcotest.fail "missed write-skew cycle");
  (* A clean serial history passes. *)
  let h2 = Serializability.create () in
  Serializability.record_commit h2 ~tx:(tx 1 1) ~reads:[ ("x", 0) ] ~writes:[ ("x", 1) ];
  Serializability.record_commit h2 ~tx:(tx 1 2) ~reads:[ ("x", 1) ] ~writes:[ ("x", 2) ];
  Serializability.record_commit h2 ~tx:(tx 1 3) ~reads:[ ("x", 2) ] ~writes:[];
  match Serializability.check h2 with
  | Serializability.Serializable -> ()
  | Serializability.Cycle _ -> Alcotest.fail "false positive"

let prop_checker_no_false_positives =
  (* Soundness: a history produced by a genuinely serial execution must
     always be accepted, regardless of the order transactions are recorded
     in. *)
  QCheck.Test.make ~name:"checker accepts serial histories" ~count:200
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(2 -- 12) (list_of_size Gen.(1 -- 4) (pair (int_range 0 4) bool))))
    (fun (salt, tx_specs) ->
      let h = Serializability.create () in
      (* Execute serially against a versioned store: each tx reads the
         current version of its keys and installs new versions for its
         writes. *)
      let store = Array.make 5 0 in
      let next_seq = ref 0 in
      let recorded = ref [] in
      List.iteri
        (fun i ops ->
          let reads = ref [] and writes = ref [] in
          List.iter
            (fun (k, is_write) ->
              let key = Printf.sprintf "key%d" k in
              if is_write then begin
                incr next_seq;
                store.(k) <- !next_seq;
                writes := (key, !next_seq) :: !writes
              end
              else reads := (key, store.(k)) :: !reads)
            ops;
          recorded := ({ Types.coord = 1; seq = i }, !reads, !writes) :: !recorded)
        tx_specs;
      (* Record in a salt-dependent shuffled order. *)
      let arr = Array.of_list !recorded in
      let rng = Treaty_sim.Rng.create (Int64.of_int (salt + 1)) in
      Treaty_sim.Rng.shuffle rng arr;
      Array.iter (fun (tx, reads, writes) -> Serializability.record_commit h ~tx ~reads ~writes) arr;
      Serializability.check h = Serializability.Serializable)

(* --- full cluster fixtures ---------------------------------------------- *)

let mk_config ?(profile = Config.treaty_enc_stab) ?(isolation = Types.Pessimistic) () =
  {
    (Config.with_profile Config.default profile) with
    Config.record_history = true;
    isolation;
    engine =
      {
        (Config.with_profile Config.default profile).Config.engine with
        Engine.memtable_max_bytes = 64 * 1024;
      };
  }

let with_cluster ?profile ?isolation ?route f =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = mk_config ?profile ?isolation () in
      match Cluster.create sim config ?route () with
      | Error m -> Alcotest.failf "cluster bootstrap: %s" m
      | Ok cluster ->
          f sim cluster;
          Cluster.shutdown cluster)

let check_serializable cluster =
  match Cluster.history cluster with
  | None -> Alcotest.fail "history not recorded"
  | Some h -> (
      match Serializability.check h with
      | Serializability.Serializable -> ()
      | Serializability.Cycle _ as v ->
          Alcotest.failf "%s" (Format.asprintf "%a" Serializability.pp_verdict v))

let put_all client txn kvs =
  List.fold_left
    (fun acc (k, v) ->
      match acc with Ok () -> Client.put client txn k v | e -> e)
    (Ok ()) kvs

(* Spread keys deterministically: "nodeN:..." lands on node N. *)
let explicit_route key =
  match String.index_opt key ':' with
  | Some i -> ( try int_of_string (String.sub key 4 (i - 4)) - 1 with _ -> 0)
  | None -> Hashtbl.hash key

let distributed_commit_visible_everywhere () =
  with_cluster ~route:explicit_route (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match
         Client.with_txn c (fun txn ->
             put_all c txn
               [ ("node1:a", "1"); ("node2:b", "2"); ("node3:c", "3") ])
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit failed: %s" (Types.abort_reason_to_string e));
      (* Read back through a different coordinator. *)
      (match
         Client.with_txn c ~coord:2 (fun txn ->
             match (Client.get c txn "node1:a", Client.get c txn "node3:c") with
             | Ok (Some "1"), Ok (Some "3") -> Ok ()
             | _ -> Error Types.Integrity)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "readback failed: %s" (Types.abort_reason_to_string e));
      check_serializable cluster;
      Client.disconnect c)

let abort_leaves_no_trace () =
  with_cluster ~route:explicit_route (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match Client.begin_txn c () with
      | Error _ -> Alcotest.fail "begin"
      | Ok txn ->
          ignore (Client.put c txn "node1:x" "dirty");
          ignore (Client.put c txn "node2:y" "dirty");
          Client.rollback c txn);
      (match
         Client.with_txn c (fun txn ->
             match (Client.get c txn "node1:x", Client.get c txn "node2:y") with
             | Ok None, Ok None -> Ok ()
             | _ -> Error Types.Integrity)
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "aborted writes leaked");
      Alcotest.(check int) "no commits recorded for the aborted tx" 1
        (Cluster.total_committed cluster);
      Client.disconnect c)

let read_own_writes () =
  with_cluster ~route:explicit_route (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match
         Client.with_txn c (fun txn ->
             let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
             let* () = Client.put c txn "node2:k" "mine" in
             let* v = Client.get c txn "node2:k" in
             if v = Some "mine" then Ok () else Error Types.Integrity)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "RYOW failed: %s" (Types.abort_reason_to_string e));
      Client.disconnect c)

let cross_shard_scan () =
  with_cluster ~route:explicit_route (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match
         Client.with_txn c (fun txn ->
             put_all c txn
               [
                 ("node1:s1", "a"); ("node2:s2", "b"); ("node3:s3", "c");
                 ("node1:a0", "below-range"); ("node3:t0", "above-range");
               ])
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup: %s" (Types.abort_reason_to_string e));
      (match
         Client.with_txn c (fun txn ->
             (* A scan across all three shards, plus a buffered write the
                scan must observe. *)
             match Client.put c txn "node1:s0" "mine" with
             | Error e -> Error e
             | Ok () -> (
                 match Client.scan c txn ~lo:"node1:s0" ~hi:"node3:s9" with
                 | Ok kvs ->
                     if
                       kvs
                       = [
                           ("node1:s0", "mine"); ("node1:s1", "a");
                           ("node2:s2", "b"); ("node3:s3", "c");
                         ]
                     then Ok ()
                     else begin
                       List.iter (fun (k, v) -> Printf.printf "  got %s=%s\n" k v) kvs;
                       Error Types.Integrity
                     end
                 | Error e -> Error e))
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "scan tx: %s" (Types.abort_reason_to_string e));
      check_serializable cluster;
      Client.disconnect c)

let concurrent_serializable isolation () =
  with_cluster ~isolation (fun sim cluster ->
      let n = 6 in
      let l = Latch.create n in
      for cid = 1 to n do
        Sim.spawn sim (fun () ->
            (match Client.connect cluster ~client_id:cid with
            | Error _ -> ()
            | Ok c ->
                let rng = Treaty_sim.Rng.split (Sim.rng sim) in
                for _ = 1 to 15 do
                  ignore
                    (Client.with_txn c (fun txn ->
                         let k1 = Printf.sprintf "acct%d" (Treaty_sim.Rng.int rng 6) in
                         let k2 = Printf.sprintf "acct%d" (Treaty_sim.Rng.int rng 6) in
                         match Client.get c txn k1 with
                         | Error e -> Error e
                         | Ok v -> (
                             let bal = Option.value ~default:"0" v in
                             match Client.put c txn k2 (bal ^ "x") with
                             | Ok () -> Ok ()
                             | Error e -> Error e)))
                done;
                Client.disconnect c);
            Latch.arrive l)
      done;
      Latch.wait (Sim.sched sim) l;
      Alcotest.(check bool) "some txs committed" true (Cluster.total_committed cluster > 10);
      check_serializable cluster)

let occ_conflicts_abort () =
  with_cluster ~isolation:Types.Optimistic (fun sim cluster ->
      (* Two clients racing read-modify-write on one key: OCC must abort at
         least one on a real conflict, and the history stays serializable. *)
      let l = Latch.create 2 in
      for cid = 1 to 2 do
        Sim.spawn sim (fun () ->
            (match Client.connect cluster ~client_id:cid with
            | Error _ -> ()
            | Ok c ->
                for _ = 1 to 10 do
                  ignore
                    (Client.with_txn c ~coord:1 (fun txn ->
                         match Client.get c txn "hot" with
                         | Error e -> Error e
                         | Ok v -> Client.put c txn "hot" (Option.value ~default:"" v ^ "+")))
                done;
                Client.disconnect c);
            Latch.arrive l)
      done;
      Latch.wait (Sim.sched sim) l;
      check_serializable cluster)

(* OCC conflict matrix, deterministic interleavings: a read invalidated by a
   concurrent commit fails validation with the typed Validation_failed
   abort; blind write-write does not conflict (nothing read, nothing to
   validate); and the standard client recipe — rerun the transaction —
   succeeds on retry. *)
let occ_conflict_matrix () =
  with_cluster ~isolation:Types.Optimistic ~route:explicit_route
    (fun _sim cluster ->
      let a = Client.connect_exn cluster ~client_id:1 in
      let b = Client.connect_exn cluster ~client_id:2 in
      (match
         Client.with_txn a (fun txn ->
             put_all a txn [ ("node1:k", "0"); ("node1:m", "0") ])
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup: %s" (Types.abort_reason_to_string e));
      (* Read-write conflict: A reads k, B commits a new version of k — A
         must fail validation even though A only wrote m. *)
      (match Client.begin_txn a ~coord:1 () with
      | Error _ -> Alcotest.fail "begin"
      | Ok txa ->
          (match Client.get a txa "node1:k" with
          | Ok (Some "0") -> ()
          | _ -> Alcotest.fail "setup read");
          (match
             Client.with_txn b (fun txn -> Client.put b txn "node1:k" "1")
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf
                "OCC reads must not block writers, yet B aborted: %s"
                (Types.abort_reason_to_string e));
          (match Client.put a txa "node1:m" "1" with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "buffered put: %s" (Types.abort_reason_to_string e));
          (match Client.commit a txa with
          | Error Types.Validation_failed -> ()
          | Ok () -> Alcotest.fail "commit over a stale read"
          | Error e ->
              Alcotest.failf "wrong abort reason: %s"
                (Types.abort_reason_to_string e)));
      (* Retry after the validation abort: a fresh attempt of the same
         read-modify-write goes through. *)
      (match
         Client.with_txn a (fun txn ->
             match Client.get a txn "node1:k" with
             | Ok (Some v) -> Client.put a txn "node1:m" (v ^ "!")
             | _ -> Error Types.Integrity)
       with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "retry aborted: %s" (Types.abort_reason_to_string e));
      (* Write-write, no reads: blind writes validate nothing — both commit
         (last writer wins is serializable). *)
      (match Client.begin_txn a ~coord:1 () with
      | Error _ -> Alcotest.fail "begin"
      | Ok txa ->
          (match Client.put a txa "node1:k" "a-blind" with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "blind put: %s" (Types.abort_reason_to_string e));
          (match
             Client.with_txn b (fun txn -> Client.put b txn "node1:k" "b-blind")
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "B blind write: %s" (Types.abort_reason_to_string e));
          (match Client.commit a txa with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "blind write-write aborted: %s"
                (Types.abort_reason_to_string e)));
      check_serializable cluster;
      Client.disconnect a;
      Client.disconnect b)

(* Distributed flavor: the stale read and the write land on different
   nodes, so the validation failure surfaces through 2PC prepare (the new
   St_conflict wire status) and still reaches the client as
   Validation_failed. *)
let occ_distributed_validation_abort () =
  with_cluster ~isolation:Types.Optimistic ~route:explicit_route
    (fun _sim cluster ->
      let a = Client.connect_exn cluster ~client_id:1 in
      let b = Client.connect_exn cluster ~client_id:2 in
      (match
         Client.with_txn a (fun txn -> Client.put a txn "node1:k" "0")
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup: %s" (Types.abort_reason_to_string e));
      (match Client.begin_txn a ~coord:1 () with
      | Error _ -> Alcotest.fail "begin"
      | Ok txa ->
          (match Client.get a txa "node1:k" with
          | Ok (Some "0") -> ()
          | _ -> Alcotest.fail "setup read");
          (match
             Client.with_txn b (fun txn -> Client.put b txn "node1:k" "1")
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "B: %s" (Types.abort_reason_to_string e));
          (match Client.put a txa "node2:y" "cross-shard" with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "remote put: %s" (Types.abort_reason_to_string e));
          (match Client.commit a txa with
          | Error Types.Validation_failed -> ()
          | Ok () -> Alcotest.fail "distributed commit over a stale read"
          | Error e ->
              Alcotest.failf "wrong abort reason: %s"
                (Types.abort_reason_to_string e)));
      (* The aborted write must not have leaked to node2. *)
      (match
         Client.with_txn a (fun txn ->
             match Client.get a txn "node2:y" with
             | Ok None -> Ok ()
             | Ok (Some _) -> Error Types.Integrity
             | Error e -> Error e)
       with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "aborted write leaked: %s"
            (Types.abort_reason_to_string e));
      check_serializable cluster;
      Client.disconnect a;
      Client.disconnect b)

(* --- read-only fast path ------------------------------------------------- *)

let ro_fast_path isolation () =
  with_cluster ~isolation ~route:explicit_route (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match
         Client.with_txn c (fun txn ->
             put_all c txn
               [ ("node1:a", "1"); ("node2:b", "2"); ("node3:c", "3") ])
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup: %s" (Types.abort_reason_to_string e));
      (match Client.read_only c [ "node3:c"; "node1:a"; "node1:zzz" ] with
      | Error e ->
          Alcotest.failf "ro failed: %s" (Types.abort_reason_to_string e)
      | Ok kvs ->
          Alcotest.(check (list (pair string (option string))))
            "input order, missing key is None"
            [ ("node3:c", Some "3"); ("node1:a", Some "1"); ("node1:zzz", None) ]
            kvs);
      (* Two owners served → two per-shard read-only transactions, all
         counted, every snapshot retention released. *)
      let ro_total =
        List.fold_left
          (fun acc i ->
            acc + (Node.stats (Cluster.node cluster i)).Node.read_only_committed)
          0 [ 0; 1; 2 ]
      in
      Alcotest.(check int) "per-shard ro txns" 2 ro_total;
      List.iter
        (fun i ->
          Alcotest.(check int) "snapshot retentions drained" 0
            (Engine.active_snapshot_count (Node.engine (Cluster.node cluster i))))
        [ 0; 1; 2 ];
      check_serializable cluster;
      Client.disconnect c)

(* The stability guard: a read-only request over a key with an in-flight
   write parks (lock-free) until the writer resolves, then reads the
   committed value — never the pre-commit one, which would be a
   non-serializable prefix once the writer's commit is acked. *)
let ro_waits_for_inflight_writer () =
  with_cluster ~route:explicit_route (fun sim cluster ->
      let a = Client.connect_exn cluster ~client_id:1 in
      let r = Client.connect_exn cluster ~client_id:2 in
      (match Client.with_txn a (fun txn -> Client.put a txn "node1:w" "0") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup: %s" (Types.abort_reason_to_string e));
      match Client.begin_txn a ~coord:1 () with
      | Error _ -> Alcotest.fail "begin"
      | Ok txa ->
          (match Client.put a txa "node1:w" "1" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "put: %s" (Types.abort_reason_to_string e));
          let got = ref None in
          Sim.spawn sim (fun () -> got := Some (Client.read_only r [ "node1:w" ]));
          (* Enough time for the reader to reach the node and park on the
             guard (backoff is 100 µs; the lock-timeout budget is 40 ms). *)
          Sim.sleep sim 2_000_000;
          Alcotest.(check bool) "reader parked while the write is in flight"
            true (!got = None);
          (match Client.commit a txa with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
          Sim.sleep sim 10_000_000;
          (match !got with
          | Some (Ok [ ("node1:w", Some "1") ]) -> ()
          | Some (Ok _) -> Alcotest.fail "reader saw a stale or wrong value"
          | Some (Error e) ->
              Alcotest.failf "ro: %s" (Types.abort_reason_to_string e)
          | None -> Alcotest.fail "reader never unparked");
          check_serializable cluster;
          Client.disconnect a;
          Client.disconnect r)

(* --- crash / recovery matrix -------------------------------------------- *)

let committed_data_survives_crash () =
  with_cluster ~route:explicit_route (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match
         Client.with_txn c (fun txn ->
             put_all c txn [ ("node2:durable", "yes"); ("node1:also", "yes") ])
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
      Cluster.crash_node cluster 1;
      (match Cluster.restart_node cluster 1 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "restart: %s" m);
      (match
         Client.with_txn c (fun txn ->
             match Client.get c txn "node2:durable" with
             | Ok (Some "yes") -> Ok ()
             | _ -> Error Types.Integrity)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "durability: %s" (Types.abort_reason_to_string e));
      Client.disconnect c)

(* Crash a participant between prepare and commit: the coordinator's stable
   decision must drive it to commit on recovery. *)
let participant_crash_mid_2pc () =
  with_cluster ~route:explicit_route (fun sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (* Delay commit messages to node 2 so we can crash it while prepared. *)
      Net.set_adversary (Cluster.net cluster)
        (Adversary.delay_matching
           (fun pkt -> pkt.Treaty_netsim.Packet.dst = 2)
           ~ns:30_000_000);
      let commit_result = ref None in
      Sim.spawn sim (fun () ->
          commit_result :=
            Some
              (Client.with_txn c ~coord:3 (fun txn ->
                   put_all c txn [ ("node2:pk", "pv"); ("node3:qk", "qv") ])));
      (* Let the prepare phase complete (prepare goes out, gets delayed,
         participant stabilizes, acks); then kill node 2. *)
      Sim.sleep sim 150_000_000;
      Net.clear_adversary (Cluster.net cluster);
      Cluster.crash_node cluster 1;
      Sim.sleep sim 400_000_000;
      (match Cluster.restart_node cluster 1 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "restart: %s" m);
      Sim.sleep sim 500_000_000;
      (* Whatever the outcome (commit or abort), both shards must agree. *)
      match
        Client.with_txn c ~coord:3 (fun txn ->
            match (Client.get c txn "node2:pk", Client.get c txn "node3:qk") with
            | Ok a, Ok b -> (
                match (a, b) with
                | Some "pv", Some "qv" -> Ok ()
                | None, None -> Ok ()
                | _ -> Error Types.Integrity)
            | _ -> Error Types.Participant_failed)
      with
      | Ok () -> Client.disconnect c
      | Error e -> Alcotest.failf "atomicity violated: %s" (Types.abort_reason_to_string e))

let coordinator_crash_before_decision_aborts () =
  with_cluster ~route:explicit_route (fun sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (* Drop all prepare ACKs towards coordinator 1 so the decision never
         lands; crash it mid-protocol. *)
      Net.set_adversary (Cluster.net cluster)
        (Adversary.drop_matching (fun pkt ->
             pkt.Treaty_netsim.Packet.dst = 1 && pkt.Treaty_netsim.Packet.src <> 1001));
      Sim.spawn sim (fun () ->
          ignore
            (Client.with_txn c ~coord:1 (fun txn ->
                 put_all c txn [ ("node2:ck", "cv"); ("node3:dk", "dv") ])));
      Sim.sleep sim 80_000_000;
      Cluster.crash_node cluster 0;
      Net.clear_adversary (Cluster.net cluster);
      Sim.sleep sim 200_000_000;
      (match Cluster.restart_node cluster 0 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "restart: %s" m);
      (* Allow cooperative termination (sweeper) to resolve in-doubt
         participants. *)
      Sim.sleep sim 1_500_000_000;
      (* The recovered coordinator aborts the in-doubt tx; participants must
         have released their prepared state. *)
      match
        Client.with_txn c ~coord:2 (fun txn ->
            match (Client.get c txn "node2:ck", Client.get c txn "node3:dk") with
            | Ok None, Ok None -> Ok ()
            | Ok (Some _), Ok (Some _) -> Ok () (* decision was already stable: fine *)
            | _ -> Error Types.Integrity)
      with
      | Ok () -> Client.disconnect c
      | Error e -> Alcotest.failf "in-doubt tx inconsistent: %s" (Types.abort_reason_to_string e))

(* --- security: end-to-end attacks ---------------------------------------- *)

let rollback_attack_detected () =
  with_cluster (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (* Commit some stabilized state, snapshot the disk, commit more, then
         roll the disk back and reboot: freshness must fail. *)
      (match Client.with_txn c ~coord:1 (fun txn -> put_all c txn [ ("k1", "old") ]) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit1: %s" (Types.abort_reason_to_string e));
      let ssd = Cluster.node_ssd cluster 0 in
      let snapshot = Ssd.snapshot ssd in
      (match Client.with_txn c ~coord:1 (fun txn -> put_all c txn [ ("k1", "new") ]) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit2: %s" (Types.abort_reason_to_string e));
      Cluster.crash_node cluster 0;
      Ssd.restore ssd snapshot;
      (match Cluster.restart_node cluster 0 with
      | Error _ -> () (* detected: recovery refused *)
      | Ok () -> Alcotest.fail "rollback attack went undetected");
      Client.disconnect c)

let storage_tamper_detected () =
  with_cluster (fun _sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (match Client.with_txn c ~coord:1 (fun txn -> put_all c txn [ ("tk", "tv") ]) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit: %s" (Types.abort_reason_to_string e));
      Cluster.crash_node cluster 0;
      let ssd = Cluster.node_ssd cluster 0 in
      (* Corrupt every persistent file a little. *)
      List.iter (fun f -> Ssd.tamper ssd f ~off:(Ssd.size ssd f / 2)) (Ssd.list_files ssd);
      (match Cluster.restart_node cluster 0 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "tampered storage accepted");
      Client.disconnect c)

let cas_down_blocks_recovery () =
  with_cluster (fun _sim cluster ->
      Cluster.crash_node cluster 2;
      Cluster.crash_cas cluster;
      match Cluster.restart_node cluster 2 with
      | Error m ->
          Alcotest.(check bool) "reason mentions CAS" true
            (String.length m > 0)
      | Ok () -> Alcotest.fail "recovered without attestation (CAS is down)")

let forged_client_rejected () =
  with_cluster (fun _sim cluster ->
      (* A node rejects a made-up token. *)
      let node = Cluster.node cluster 0 in
      Alcotest.(check bool) "forged token" false
        (Node.authenticate_client node ~client_id:77 ~token:(String.make 32 'z'));
      let ok_token =
        match Cluster.client_token cluster ~client_id:77 with
        | Ok t -> t
        | Error `Cas_down -> Alcotest.fail "cas"
      in
      Alcotest.(check bool) "real token" true
        (Node.authenticate_client node ~client_id:77 ~token:ok_token))

let network_tamper_aborts_but_stays_consistent () =
  with_cluster ~route:explicit_route (fun sim cluster ->
      let c = Client.connect_exn cluster ~client_id:1 in
      (* Tamper every third packet on the fabric between storage nodes. *)
      let n = ref 0 in
      Net.set_adversary (Cluster.net cluster) (fun pkt ->
          if pkt.Treaty_netsim.Packet.src <= 3 && pkt.Treaty_netsim.Packet.dst <= 3 then begin
            incr n;
            if !n mod 3 = 0 then
              Adversary.Tamper
                (fun payload ->
                  let b = Bytes.of_string payload in
                  if Bytes.length b > 30 then
                    Bytes.set b 30 (Char.chr (Char.code (Bytes.get b 30) lxor 1));
                  Bytes.to_string b)
            else Adversary.Deliver
          end
          else Adversary.Deliver);
      let committed = ref 0 and aborted = ref 0 in
      for i = 0 to 9 do
        match
          Client.with_txn c (fun txn ->
              put_all c txn
                [ (Printf.sprintf "node2:t%d" i, "v"); (Printf.sprintf "node3:t%d" i, "v") ])
        with
        | Ok () -> incr committed
        | Error _ -> incr aborted
      done;
      Net.clear_adversary (Cluster.net cluster);
      Alcotest.(check bool) "adversary caused aborts" true (!aborted > 0);
      (* Allow in-doubt prepared participants (lost commit messages) to be
         driven to resolution before checking. *)
      Sim.sleep sim 1_500_000_000;
      (* Atomicity held throughout: both shards agree for every i. *)
      (match
         Client.with_txn c (fun txn ->
             let ok = ref true in
             for i = 0 to 9 do
               match
                 ( Client.get c txn (Printf.sprintf "node2:t%d" i),
                   Client.get c txn (Printf.sprintf "node3:t%d" i) )
               with
               | Ok (Some _), Ok (Some _) | Ok None, Ok None -> ()
               | _ -> ok := false
             done;
             if !ok then Ok () else Error Types.Integrity)
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "tampering broke atomicity");
      check_serializable cluster;
      Client.disconnect c)

let suite =
  [
    Alcotest.test_case "lock modes" `Quick lock_modes;
    Alcotest.test_case "lock upgrade" `Quick lock_upgrade;
    Alcotest.test_case "lock waiter granted" `Quick lock_waiter_granted_on_release;
    Alcotest.test_case "deadlock resolved by timeout" `Quick lock_deadlock_resolved_by_timeout;
    Alcotest.test_case "checker detects write skew" `Quick checker_detects_cycle;
    QCheck_alcotest.to_alcotest prop_checker_no_false_positives;
    Alcotest.test_case "distributed commit visible everywhere" `Quick
      distributed_commit_visible_everywhere;
    Alcotest.test_case "abort leaves no trace" `Quick abort_leaves_no_trace;
    Alcotest.test_case "read own writes" `Quick read_own_writes;
    Alcotest.test_case "cross-shard scan" `Quick cross_shard_scan;
    Alcotest.test_case "concurrent pessimistic serializable" `Slow
      (concurrent_serializable Types.Pessimistic);
    Alcotest.test_case "concurrent optimistic serializable" `Slow
      (concurrent_serializable Types.Optimistic);
    Alcotest.test_case "occ conflicts abort cleanly" `Quick occ_conflicts_abort;
    Alcotest.test_case "occ conflict matrix" `Quick occ_conflict_matrix;
    Alcotest.test_case "occ distributed validation abort" `Quick
      occ_distributed_validation_abort;
    Alcotest.test_case "read-only fast path (2pl)" `Quick
      (ro_fast_path Types.Pessimistic);
    Alcotest.test_case "read-only fast path (occ)" `Quick
      (ro_fast_path Types.Optimistic);
    Alcotest.test_case "read-only waits for in-flight writer" `Quick
      ro_waits_for_inflight_writer;
    Alcotest.test_case "committed data survives crash" `Quick committed_data_survives_crash;
    Alcotest.test_case "participant crash mid-2PC" `Slow participant_crash_mid_2pc;
    Alcotest.test_case "coordinator crash before decision" `Slow
      coordinator_crash_before_decision_aborts;
    Alcotest.test_case "rollback attack detected" `Quick rollback_attack_detected;
    Alcotest.test_case "storage tampering detected" `Quick storage_tamper_detected;
    Alcotest.test_case "CAS down blocks recovery" `Quick cas_down_blocks_recovery;
    Alcotest.test_case "forged client token rejected" `Quick forged_client_rejected;
    Alcotest.test_case "network tampering: aborts, stays atomic" `Slow
      network_tamper_aborts_but_stays_consistent;
  ]
