(* Workload generators: zipf distribution, YCSB shapes, TPC-C execution and
   its consistency conditions, and the benchmark driver. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module W = Treaty_workload
module Rng = Treaty_sim.Rng

let zipf_skew () =
  let z = W.Zipf.create ~theta:0.99 ~n:1000 () in
  let rng = Rng.create 1L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let i = W.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(100));
  Alcotest.(check bool) "roughly zipfian head" true
    (float_of_int counts.(0) > 1.5 *. float_of_int counts.(10));
  let u = W.Zipf.uniform ~n:1000 in
  let ucounts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    ucounts.(W.Zipf.sample u rng) <- ucounts.(W.Zipf.sample u rng) + 1
  done;
  let mx = Array.fold_left max 0 ucounts and mn = Array.fold_left min max_int ucounts in
  Alcotest.(check bool) "uniform is flat-ish" true (mx < 10 * (mn + 1))

let ycsb_mix () =
  let cfg = { W.Ycsb.default with W.Ycsb.read_fraction = 0.8 } in
  let g = W.Ycsb.generator cfg (Rng.create 2L) in
  let reads = ref 0 and writes = ref 0 in
  for _ = 1 to 500 do
    List.iter
      (function
        | W.Ycsb.Read _ -> incr reads
        | W.Ycsb.Update (_, v) ->
            Alcotest.(check int) "value size" cfg.W.Ycsb.value_size (String.length v);
            incr writes)
      (W.Ycsb.next_txn g)
  done;
  let total = !reads + !writes in
  Alcotest.(check int) "ops per txn" (500 * cfg.W.Ycsb.ops_per_txn) total;
  let frac = float_of_int !reads /. float_of_int total in
  Alcotest.(check bool) "read fraction near 0.8" true (frac > 0.75 && frac < 0.85)

let ycsb_zipfian_skew () =
  let cfg = { W.Ycsb.default with W.Ycsb.distribution = `Zipfian 0.99; n_keys = 100 } in
  let g = W.Ycsb.generator cfg (Rng.create 9L) in
  let counts = Hashtbl.create 100 in
  for _ = 1 to 2000 do
    List.iter
      (fun op ->
        let k = match op with W.Ycsb.Read k | W.Ycsb.Update (k, _) -> k in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      (W.Ycsb.next_txn g)
  done;
  let hot = Option.value ~default:0 (Hashtbl.find_opt counts (W.Ycsb.key_of_index 0)) in
  let cold = Option.value ~default:0 (Hashtbl.find_opt counts (W.Ycsb.key_of_index 99)) in
  Alcotest.(check bool)
    (Printf.sprintf "zipf skews hot (%d) vs cold (%d)" hot cold)
    true
    (hot > 5 * (cold + 1))

let stats_percentiles () =
  let s = W.Stats.create () in
  for i = 1 to 100 do
    W.Stats.record s ~latency_ns:(i * 1_000_000)
  done;
  Alcotest.(check int) "count" 100 (W.Stats.committed s);
  (* Percentiles come from the log-scale obs histogram: exact rank selection
     over bucket upper bounds, <=0.2% relative error above the exact range. *)
  Alcotest.(check (float 0.2)) "p50" 50.0 (W.Stats.percentile_ms s 50.0);
  Alcotest.(check (float 0.2)) "p99" 99.0 (W.Stats.percentile_ms s 99.0);
  Alcotest.(check (float 0.01)) "mean" 50.5 (W.Stats.mean_latency_ms s);
  Alcotest.(check (float 1.0)) "tps over 1s" 100.0
    (W.Stats.throughput_tps s ~duration_ns:1_000_000_000)

let tpcc_mix () =
  let rng = Rng.create 3L in
  let counts = Hashtbl.create 5 in
  for _ = 1 to 10_000 do
    let k = W.Tpcc.kind_name (W.Tpcc.pick_kind rng) in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let pct k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. 100.0 in
  Alcotest.(check bool) "NewOrder ~45%" true (abs_float (pct "NewOrder" -. 45.

    ) < 3.0);
  Alcotest.(check bool) "Payment ~43%" true (abs_float (pct "Payment" -. 43.) < 3.0);
  Alcotest.(check bool) "others ~4%" true (abs_float (pct "Delivery" -. 4.) < 1.5)

let tpcc_routing () =
  let cfg = W.Tpcc.config ~warehouses:9 () in
  (* All keys of one warehouse land on the same node. *)
  List.iter
    (fun w ->
      let keys =
        [ Printf.sprintf "w:%d" w; Printf.sprintf "d:%d:4" w; Printf.sprintf "c:%d:2:17" w;
          Printf.sprintf "s:%d:33" w; Printf.sprintf "o:%d:1:5" w ]
      in
      let nodes = List.map (W.Tpcc.route cfg ~nodes:3) keys in
      match nodes with
      | n :: rest -> List.iter (fun n' -> Alcotest.(check int) "colocated" n n') rest
      | [] -> ())
    [ 1; 2; 3; 9 ];
  (* Warehouses spread across nodes. *)
  let distinct =
    List.sort_uniq compare
      (List.map (fun w -> W.Tpcc.home_node cfg ~nodes:3 ~warehouse:w) [ 1; 2; 3 ])
  in
  Alcotest.(check int) "3 warehouses on 3 nodes" 3 (List.length distinct)

let tpcc_end_to_end () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = Config.with_profile Config.default Config.treaty_enc in
      let tpcc = { (W.Tpcc.config ~warehouses:3 ()) with W.Tpcc.items = 50; customers_per_district = 10 } in
      let route = W.Tpcc.route tpcc ~nodes:config.Config.nodes in
      match Cluster.create sim config ~route () with
      | Error m -> Alcotest.failf "cluster: %s" m
      | Ok cluster ->
          let c = Client.connect_exn cluster ~client_id:1 in
          let rng = Rng.create 4L in
          W.Tpcc.load tpcc c rng;
          (* Run a fixed number of each profile. *)
          let failures = ref 0 in
          List.iter
            (fun kind ->
              for _ = 1 to 8 do
                let home = 1 + Rng.int rng 3 in
                match W.Tpcc.run tpcc c rng ~nodes:3 ~home kind with
                | Ok () -> ()
                | Error Types.Rolled_back -> () (* the 1% NewOrder rollback *)
                | Error _ -> incr failures
              done)
            [ W.Tpcc.New_order; W.Tpcc.Payment; W.Tpcc.Order_status; W.Tpcc.Delivery; W.Tpcc.Stock_level ];
          Alcotest.(check int) "no unexpected failures" 0 !failures;
          (* Consistency: district next_o_id agrees with stored orders. *)
          List.iter
            (fun w ->
              Alcotest.(check bool)
                (Printf.sprintf "district/order consistency w%d" w)
                true
                (W.Tpcc.Check.district_orders tpcc c ~warehouse:w))
            [ 1; 2; 3 ];
          Client.disconnect c;
          Cluster.shutdown cluster)

let driver_windows () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = Config.with_profile Config.default Config.ds_rocksdb in
      match Cluster.create sim config () with
      | Error m -> Alcotest.failf "cluster: %s" m
      | Ok cluster ->
          let r =
            W.Driver.run_clients cluster ~clients:4 ~duration_ns:50_000_000
              ~warmup_ns:10_000_000
              ~txn:(fun client ~client_index:_ rng ->
                let k = Printf.sprintf "k%d" (Rng.int rng 100) in
                Client.with_txn client (fun txn -> Client.put client txn k "v"))
              ()
          in
          Alcotest.(check bool) "committed work" true (W.Stats.committed r.W.Driver.stats > 0);
          Alcotest.(check bool) "throughput positive" true (W.Driver.tps r > 0.0);
          Cluster.shutdown cluster)

let suite =
  [
    Alcotest.test_case "zipf skew" `Quick zipf_skew;
    Alcotest.test_case "ycsb mix" `Quick ycsb_mix;
    Alcotest.test_case "ycsb zipfian skew" `Quick ycsb_zipfian_skew;
    Alcotest.test_case "stats percentiles" `Quick stats_percentiles;
    Alcotest.test_case "tpcc transaction mix" `Quick tpcc_mix;
    Alcotest.test_case "tpcc warehouse routing" `Quick tpcc_routing;
    Alcotest.test_case "tpcc end-to-end + consistency" `Slow tpcc_end_to_end;
    Alcotest.test_case "driver measurement windows" `Quick driver_windows;
  ]
