(* Observability: the log-scale histogram, the metrics registry, trace
   well-formedness over a real TPC-C run (root txn span down to group-commit
   flushes and ROTE rounds), and byte-identical trace determinism across
   same-seed chaos runs. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module Rng = Treaty_sim.Rng
module W = Treaty_workload
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics
module Hist = Treaty_obs.Metrics.Hist
module Chaos = Treaty_chaos.Chaos

let has_substring ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- histogram --------------------------------------------------------- *)

let hist_exact_low_range () =
  let h = Hist.create () in
  for i = 1 to 1000 do
    Hist.record h i
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  Alcotest.(check int) "sum" 500_500 (Hist.sum h);
  Alcotest.(check int) "max" 1000 (Hist.max_value h);
  (* Below 1024 every value has its own bucket: percentiles are exact under
     the rank convention ceil (p/100 * n). *)
  Alcotest.(check int) "p50" 500 (Hist.percentile h 50.0);
  Alcotest.(check int) "p99" 990 (Hist.percentile h 99.0);
  Alcotest.(check int) "p100" 1000 (Hist.percentile h 100.0)

let hist_bounded_error_high_range () =
  let h = Hist.create () in
  let vals = [ 1_500; 123_456; 7_654_321; 987_654_321; 1_000_000_000_000 ] in
  List.iter (Hist.record h) vals;
  Alcotest.(check int) "sum exact" (List.fold_left ( + ) 0 vals) (Hist.sum h);
  Alcotest.(check int) "max exact" 1_000_000_000_000 (Hist.max_value h);
  List.iteri
    (fun i v ->
      let p = 100.0 *. float_of_int (i + 1) /. float_of_int (List.length vals) in
      let got = Hist.percentile h p in
      let rel = abs_float (float_of_int (got - v) /. float_of_int v) in
      Alcotest.(check bool)
        (Printf.sprintf "value %d within 0.2%% (got %d)" v got)
        true (rel <= 0.002))
    vals

let hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  for i = 1 to 100 do
    Hist.record a i;
    Hist.record b (i * 1000)
  done;
  let m = Hist.merge a b in
  Alcotest.(check int) "merged count" 200 (Hist.count m);
  Alcotest.(check int) "merged sum" (Hist.sum a + Hist.sum b) (Hist.sum m);
  Alcotest.(check int) "merged max" (Hist.max_value b) (Hist.max_value m)

(* --- registry ---------------------------------------------------------- *)

let registry_basics () =
  Metrics.reset ();
  Metrics.enable ();
  Metrics.incr "a.counter";
  Metrics.incr ~by:4 "a.counter";
  Metrics.set_gauge "b.gauge" 17;
  Metrics.observe "c.hist_ns" 1_000;
  Metrics.observe "c.hist_ns" 3_000;
  Alcotest.(check int) "counter" 5 (Metrics.value "a.counter");
  Alcotest.(check int) "gauge" 17 (Metrics.value "b.gauge");
  (match Metrics.hist "c.hist_ns" with
  | None -> Alcotest.fail "histogram missing"
  | Some h -> Alcotest.(check int) "hist count" 2 (Hist.count h));
  let d1 = Metrics.dump () in
  Alcotest.(check bool) "dump mentions counter" true
    (has_substring ~affix:"a.counter" d1);
  Metrics.disable ();
  Metrics.incr "a.counter";
  Metrics.observe "c.hist_ns" 9;
  Alcotest.(check string) "no-ops when disabled, dump stable" d1 (Metrics.dump ());
  Metrics.reset ()

(* --- trace well-formedness over TPC-C ---------------------------------- *)

let by_id spans =
  let t = Hashtbl.create (List.length spans) in
  List.iter (fun (s : Trace.info) -> Hashtbl.replace t s.id s) spans;
  t

(* Walk parent links; true if some ancestor satisfies [p]. *)
let has_ancestor tbl p (s : Trace.info) =
  let rec go id =
    if id = Trace.none then false
    else
      match Hashtbl.find_opt tbl id with
      | None -> false
      | Some (a : Trace.info) -> p a || go a.parent
  in
  go s.parent

let tpcc_trace_tree () =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config =
        Config.with_profile Config.default
          { Config.treaty_enc_stab with Config.trace = true; metrics = true }
      in
      let tpcc =
        { (W.Tpcc.config ~warehouses:3 ()) with W.Tpcc.items = 50; customers_per_district = 10 }
      in
      let route = W.Tpcc.route tpcc ~nodes:config.Config.nodes in
      match Cluster.create sim config ~route () with
      | Error m -> Alcotest.failf "cluster: %s" m
      | Ok cluster ->
          let c = Client.connect_exn cluster ~client_id:1 in
          let rng = Rng.create 4L in
          W.Tpcc.load tpcc c rng;
          List.iter
            (fun kind ->
              for _ = 1 to 8 do
                let home = 1 + Rng.int rng 3 in
                match W.Tpcc.run tpcc c rng ~nodes:3 ~home kind with
                | Ok () | Error Types.Rolled_back -> ()
                | Error _ -> Alcotest.fail "tpcc txn failed"
              done)
            [ W.Tpcc.New_order; W.Tpcc.Payment; W.Tpcc.Delivery ];
          Client.disconnect c;
          Cluster.publish_metrics cluster;
          let spans = Trace.spans () in
          let tbl = by_id spans in
          Alcotest.(check bool) "trace non-empty" true (spans <> []);
          (* Structural invariants over every span. *)
          List.iter
            (fun (s : Trace.info) ->
              if s.parent <> Trace.none then
                match Hashtbl.find_opt tbl s.parent with
                | None -> Alcotest.failf "span %d: dangling parent %d" s.id s.parent
                | Some p ->
                    if p.start_ns > s.start_ns then
                      Alcotest.failf "span %d (%s) starts before its parent %s"
                        s.id s.name p.name;
                    (* Parent must have been open when the child started
                       (children may outlive the parent, e.g. rote.round). *)
                    if p.end_ns >= 0 && p.end_ns < s.start_ns then
                      Alcotest.failf "span %d (%s) starts after parent %s closed"
                        s.id s.name p.name;
              if s.end_ns >= 0 && s.end_ns < s.start_ns then
                Alcotest.failf "span %d (%s) ends before it starts" s.id s.name)
            spans;
          let named n (s : Trace.info) = s.name = n in
          let all n = List.filter (named n) spans in
          (* Every transaction root closed, with a status annotation. *)
          let txns = all "txn" in
          Alcotest.(check bool) "txn roots recorded" true (txns <> []);
          List.iter
            (fun (s : Trace.info) ->
              Alcotest.(check bool) "txn span closed" true (s.end_ns >= 0);
              Alcotest.(check bool) "txn span has status" true
                (List.mem_assoc "status" s.args))
            txns;
          let is_txn = named "txn" in
          let under_txn name =
            List.exists (has_ancestor tbl is_txn) (all name)
          in
          (* The full tree the issue asks for: txn -> 2PC phases -> group
             commit flushes -> ROTE stabilization rounds. *)
          Alcotest.(check bool) "execute under txn" true (under_txn "execute");
          Alcotest.(check bool) "prepare under txn" true (under_txn "prepare");
          Alcotest.(check bool) "commit under txn" true (under_txn "commit");
          Alcotest.(check bool) "clog flush under txn" true (under_txn "clog.flush");
          Alcotest.(check bool) "rote round under txn" true (under_txn "rote.round");
          Alcotest.(check bool) "rpc handle spans exist" true (all "rpc.handle" <> []);
          Alcotest.(check bool) "cross-node rpc.handle linked" true
            (List.exists
               (fun (s : Trace.info) -> s.parent <> Trace.none)
               (all "rpc.handle"));
          (* Metrics rode along: waits were attributed, pipeline gauges set. *)
          Alcotest.(check bool) "rpc wait attributed" true
            (match Metrics.hist "rpc.wait_ns" with
            | Some h -> Hist.count h > 0
            | None -> false);
          Alcotest.(check bool) "pipeline gauges published" true
            (Metrics.value "pipeline.clog.items" > 0);
          Alcotest.(check bool) "fiber profile published" true
            (has_substring ~affix:"fiber." (Metrics.dump ()));
          (* Export is valid-ish JSON and flags nothing as unclosed-txn. *)
          let json = Trace.export_string () in
          Alcotest.(check bool) "export has trace events" true
            (has_substring ~affix:"\"traceEvents\"" json);
          Cluster.shutdown cluster);
  Trace.reset ();
  Metrics.reset ()

(* --- determinism ------------------------------------------------------- *)

let chaos_trace ~batching ~seed =
  let cfg = { Chaos.default_config with Chaos.trace = true; batching } in
  (match Chaos.run_seed ~config:cfg ~seed () with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "chaos seed %d failed: %s" seed m);
  Trace.export_string ()

let trace_determinism () =
  List.iter
    (fun batching ->
      let a = chaos_trace ~batching ~seed:11 in
      let b = chaos_trace ~batching ~seed:11 in
      Alcotest.(check bool)
        (Printf.sprintf "trace non-trivial (batching=%b)" batching)
        true
        (String.length a > 1000);
      Alcotest.(check bool)
        (Printf.sprintf "same seed, byte-identical trace (batching=%b)" batching)
        true (String.equal a b))
    [ true; false ];
  (* Different seeds must not happen to collide: the trace reflects the run. *)
  let c = chaos_trace ~batching:true ~seed:12 in
  let d = chaos_trace ~batching:true ~seed:11 in
  Alcotest.(check bool) "different seed, different trace" true
    (not (String.equal c d));
  Trace.reset ()

let suite =
  [
    Alcotest.test_case "hist exact below 1024" `Quick hist_exact_low_range;
    Alcotest.test_case "hist 0.2% error above" `Quick hist_bounded_error_high_range;
    Alcotest.test_case "hist merge" `Quick hist_merge;
    Alcotest.test_case "metrics registry basics" `Quick registry_basics;
    Alcotest.test_case "tpcc trace tree well-formed" `Quick tpcc_trace_tree;
    Alcotest.test_case "same-seed chaos traces byte-identical" `Quick trace_determinism;
  ]
