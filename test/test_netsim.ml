(* Network simulation: delivery, serialization/propagation timing, crashed
   endpoints, and every adversary action. *)

module Sim = Treaty_sim.Sim
module Net = Treaty_netsim.Net
module Packet = Treaty_netsim.Packet
module Adversary = Treaty_netsim.Adversary

let with_net f =
  let sim = Sim.create () in
  let net = Net.create sim Treaty_sim.Costmodel.default in
  Sim.run sim (fun () -> f sim net)

let basic_delivery () =
  with_net (fun sim net ->
      let received = ref [] in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun pkt -> received := (Sim.now sim, pkt.Packet.payload) :: !received);
      Net.send net ~src:1 ~dst:2 "hello";
      Sim.sleep sim 1_000_000;
      match !received with
      | [ (t, "hello") ] ->
          (* transmission + propagation: strictly positive, sane bound *)
          Alcotest.(check bool) "took wire time" true (t > 0 && t < 100_000)
      | _ -> Alcotest.fail "delivery failed")

let nic_serialization () =
  with_net (fun sim net ->
      (* Two back-to-back big packets from one NIC serialize: the second
         arrives later by at least one transmission time. *)
      let times = ref [] in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> times := Sim.now sim :: !times);
      let big = String.make 100_000 'x' in
      Net.send net ~src:1 ~dst:2 big;
      Net.send net ~src:1 ~dst:2 big;
      Sim.sleep sim 10_000_000;
      match List.rev !times with
      | [ t1; t2 ] ->
          let tx_time = 100_000 * 8 / 40 in
          Alcotest.(check bool) "fifo serialization" true (t2 - t1 >= tx_time)
      | _ -> Alcotest.fail "expected two deliveries")

let crashed_endpoint_drops () =
  with_net (fun sim net ->
      let got = ref 0 in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> incr got);
      Net.unregister net ~id:2;
      Net.send net ~src:1 ~dst:2 "lost";
      Sim.sleep sim 1_000_000;
      Alcotest.(check int) "no delivery to crashed node" 0 !got;
      Alcotest.(check int) "counted as dropped" 1 (Net.stats net).dropped;
      (* Restart: registration replaces the handler. *)
      Net.register net ~id:2 (fun _ -> incr got);
      Net.send net ~src:1 ~dst:2 "back";
      Sim.sleep sim 1_000_000;
      Alcotest.(check int) "delivery after re-register" 1 !got)

let adversary_actions () =
  with_net (fun sim net ->
      let payloads = ref [] in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun pkt -> payloads := pkt.Packet.payload :: !payloads);
      (* Drop. *)
      Net.set_adversary net (Adversary.drop_matching (fun _ -> true));
      Net.send net ~src:1 ~dst:2 "dropped";
      Sim.sleep sim 1_000_000;
      Alcotest.(check int) "dropped" 0 (List.length !payloads);
      (* Delay. *)
      Net.set_adversary net (Adversary.delay_matching (fun _ -> true) ~ns:5_000_000);
      let t0 = Sim.now sim in
      Net.send net ~src:1 ~dst:2 "late";
      Sim.sleep sim 10_000_000;
      Alcotest.(check (list string)) "delivered late" [ "late" ] !payloads;
      ignore t0;
      (* Duplicate. *)
      payloads := [];
      Net.set_adversary net (Adversary.duplicate_matching (fun _ -> true));
      Net.send net ~src:1 ~dst:2 "twice";
      Sim.sleep sim 1_000_000;
      Alcotest.(check int) "duplicated" 2 (List.length !payloads);
      (* Tamper. *)
      payloads := [];
      Net.set_adversary net (Adversary.flip_byte ~at:0 (fun _ -> true));
      Net.send net ~src:1 ~dst:2 "abc";
      Sim.sleep sim 1_000_000;
      (match !payloads with
      | [ p ] -> Alcotest.(check bool) "modified" true (p <> "abc")
      | _ -> Alcotest.fail "tampered packet lost");
      (* nth_matching targets exactly one packet. *)
      payloads := [];
      Net.set_adversary net (Adversary.nth_matching (fun _ -> true) ~n:2 Adversary.Drop);
      List.iter (fun p -> Net.send net ~src:1 ~dst:2 p) [ "a"; "b"; "c" ];
      Sim.sleep sim 1_000_000;
      Alcotest.(check (list string)) "only 2nd dropped" [ "a"; "c" ] (List.rev !payloads);
      Net.clear_adversary net)

let capture_and_replay () =
  with_net (fun sim net ->
      let count = ref 0 in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> incr count);
      Net.capture net ~limit:10;
      Net.send net ~src:1 ~dst:2 "original";
      Sim.sleep sim 1_000_000;
      let captured = Net.captured net in
      Alcotest.(check int) "captured" 1 (List.length captured);
      List.iter (Net.replay net) captured;
      Sim.sleep sim 1_000_000;
      Alcotest.(check int) "replay delivered" 2 !count)

let capture_ring_wraps () =
  with_net (fun sim net ->
      (* The capture buffer is a fixed ring: past [limit] packets it
         overwrites the oldest in place instead of rebuilding a list per
         delivery. Send more than [limit] and check both the window and
         the oldest-first order. *)
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> ());
      Net.capture net ~limit:4;
      for i = 1 to 7 do
        Net.send net ~src:1 ~dst:2 (Printf.sprintf "p%d" i);
        Sim.sleep sim 1_000_000
      done;
      let payloads =
        List.map (fun p -> p.Packet.payload) (Net.captured net)
      in
      Alcotest.(check (list string))
        "last [limit] packets, oldest first"
        [ "p4"; "p5"; "p6"; "p7" ] payloads)

let same_tick_batch_order () =
  with_net (fun sim net ->
      (* Two packets arriving on the same tick ride one delivery event but
         must be handed to their endpoints in send order, at the same
         simulated instant — the batch is a throughput optimization, not a
         reordering. *)
      let arrivals = ref [] in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> ());
      Net.register net ~id:3 (fun pkt ->
          arrivals := (Sim.now sim, pkt.Packet.payload) :: !arrivals);
      (* same payload size + same NIC configs => same arrival tick *)
      Net.send net ~src:1 ~dst:3 "a";
      Net.send net ~src:2 ~dst:3 "b";
      Sim.sleep sim 1_000_000;
      (match List.rev !arrivals with
      | [ (ta, "a"); (tb, "b") ] ->
          Alcotest.(check int) "one tick, one instant" ta tb
      | l -> Alcotest.failf "unexpected arrivals (%d)" (List.length l));
      (* A later send must not be folded into the spent batch. *)
      arrivals := [];
      Net.send net ~src:1 ~dst:3 "c";
      Sim.sleep sim 1_000_000;
      Alcotest.(check int) "separate tick delivers alone" 1
        (List.length !arrivals))

let client_vs_fabric_nic () =
  with_net (fun sim net ->
      (* A client-NIC endpoint sees much higher latency than fabric peers. *)
      let fabric_t = ref 0 and client_t = ref 0 in
      Net.register net ~id:1 (fun _ -> ());
      Net.register net ~id:2 (fun _ -> fabric_t := Sim.now sim);
      Net.register net ~id:1001 ~config:Net.client_config (fun _ -> client_t := Sim.now sim);
      Net.send net ~src:1 ~dst:2 "f";
      let t0 = Sim.now sim in
      Sim.sleep sim 1_000_000;
      Net.send net ~src:1 ~dst:1001 "c";
      let t1 = Sim.now sim in
      Sim.sleep sim 1_000_000;
      Alcotest.(check bool) "client link slower" true
        (!client_t - t1 > !fabric_t - t0))

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick basic_delivery;
    Alcotest.test_case "nic serialization" `Quick nic_serialization;
    Alcotest.test_case "crashed endpoint drops" `Quick crashed_endpoint_drops;
    Alcotest.test_case "adversary actions" `Quick adversary_actions;
    Alcotest.test_case "capture and replay" `Quick capture_and_replay;
    Alcotest.test_case "capture ring wraps" `Quick capture_ring_wraps;
    Alcotest.test_case "same-tick batch preserves order" `Quick
      same_tick_batch_order;
    Alcotest.test_case "client vs fabric NIC" `Quick client_vs_fabric_nic;
  ]
