(* Wire codec: roundtrips and hostile-input behaviour (everything parsed
   from untrusted bytes must fail closed with Malformed). *)

module Wire = Treaty_util.Wire

let roundtrip () =
  let b = Buffer.create 64 in
  Wire.w8 b 255;
  Wire.w32 b 123_456_789;
  Wire.w64 b 9_007_199_254_740_991;
  Wire.wbool b true;
  Wire.wstr b "hello";
  Wire.wstr b "";
  Wire.wlist b Wire.w64 [ 1; 2; 3 ];
  let r = Wire.reader (Buffer.contents b) in
  Alcotest.(check int) "w8" 255 (Wire.r8 r);
  Alcotest.(check int) "w32" 123_456_789 (Wire.r32 r);
  Alcotest.(check int) "w64" 9_007_199_254_740_991 (Wire.r64 r);
  Alcotest.(check bool) "wbool" true (Wire.rbool r);
  Alcotest.(check string) "wstr" "hello" (Wire.rstr r);
  Alcotest.(check string) "empty wstr" "" (Wire.rstr r);
  Alcotest.(check (list int)) "wlist" [ 1; 2; 3 ] (Wire.rlist r Wire.r64);
  Alcotest.(check bool) "at_end" true (Wire.at_end r)

let truncated_fails () =
  let b = Buffer.create 8 in
  Wire.wstr b "long string here";
  let s = Buffer.contents b in
  (* Any strict prefix must raise Malformed, never return garbage. *)
  for cut = 0 to String.length s - 1 do
    let r = Wire.reader (String.sub s 0 cut) in
    match Wire.rstr r with
    | exception Wire.Malformed _ -> ()
    | got -> Alcotest.failf "prefix %d decoded to %S" cut got
  done

let hostile_lengths () =
  (* A length prefix claiming more data than exists. *)
  let b = Buffer.create 8 in
  Wire.w32 b 1_000_000;
  Buffer.add_string b "short";
  (match Wire.rstr (Wire.reader (Buffer.contents b)) with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "oversized length accepted");
  (* A list length that cannot possibly fit. *)
  let b2 = Buffer.create 8 in
  Wire.w32 b2 0x7FFFFFFF;
  (match Wire.rlist (Wire.reader (Buffer.contents b2)) Wire.r8 with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "absurd list length accepted")

let prop_wstr_roundtrip =
  QCheck.Test.make ~name:"wstr roundtrip on arbitrary bytes" ~count:300
    (QCheck.string_of_size QCheck.Gen.(0 -- 1000))
    (fun s ->
      let b = Buffer.create 16 in
      Wire.wstr b s;
      Wire.rstr (Wire.reader (Buffer.contents b)) = s)

let prop_ints_roundtrip =
  QCheck.Test.make ~name:"w64 roundtrip" ~count:300
    QCheck.(int_bound max_int)
    (fun n ->
      let b = Buffer.create 8 in
      Wire.w64 b n;
      Wire.r64 (Wire.reader (Buffer.contents b)) = n)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "truncation fails closed" `Quick truncated_fails;
    Alcotest.test_case "hostile lengths fail closed" `Quick hostile_lengths;
    QCheck_alcotest.to_alcotest prop_wstr_roundtrip;
    QCheck_alcotest.to_alcotest prop_ints_roundtrip;
  ]
