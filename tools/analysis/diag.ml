(* Shared diagnostics for TreatyCheck and treaty-lint.

   A violation carries the site it should be fixed at (file:line), the rule
   that fired, a message, and — for the interprocedural passes — a witness
   chain: the call path from the entry point (or taint source) down to the
   sink/leaf, one frame per call site. The chain prints indented under the
   main diagnostic so a reader can replay the flow.

   The allowlist format is the one treaty-lint has always used, shared by
   both tools so there is exactly one place justified exceptions live:

     path-suffix rule reason...

   one entry per line, reason mandatory, '#' comments. An entry suppresses
   violations of [rule] in files ending with [path-suffix]; entries that
   suppress nothing are themselves reported so the list cannot rot. *)

type frame = { fr_def : string; fr_file : string; fr_line : int }

type violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
  chain : frame list;  (* outermost call first, sink/leaf last *)
}

let v ?(chain = []) ~file ~line ~rule message =
  { file; line; rule; message; chain }

let print_violation ?(out = stdout) viol =
  Printf.fprintf out "%s:%d: [%s] %s\n" viol.file viol.line viol.rule
    viol.message;
  List.iter
    (fun f ->
      Printf.fprintf out "    via %s:%d: %s\n" f.fr_file f.fr_line f.fr_def)
    viol.chain

(* --- allowlist ----------------------------------------------------------- *)

type allow = {
  suffix : string;
  a_rule : string;
  reason : string;
  mutable used : bool;
}

let load_allowlist path =
  let ic = open_in path in
  let rec lines acc n =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then lines acc (n + 1)
        else
          let fields =
            String.split_on_char ' ' line
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun s -> s <> "")
          in
          (match fields with
          | suffix :: a_rule :: (_ :: _ as reason_words) ->
              lines
                ({ suffix; a_rule; reason = String.concat " " reason_words;
                   used = false }
                :: acc)
                (n + 1)
          | _ ->
              Printf.eprintf
                "%s:%d: malformed allowlist entry (want: path-suffix rule \
                 reason...)\n"
                path n;
              exit 2)
  in
  lines [] 1

let allowed allows (viol : violation) =
  List.exists
    (fun a ->
      if a.a_rule = viol.rule && String.ends_with ~suffix:a.suffix viol.file
      then begin
        a.used <- true;
        true
      end
      else false)
    allows

(* Apply the allowlist, print what remains plus any unused entries, and
   return the exit status under the standard or --expect-fail convention.
   [label] names the tool in summary lines. *)
let finish ~label ~expect_fail ~allows ~files violations =
  let remaining = List.filter (fun viol -> not (allowed allows viol)) violations in
  List.iter (fun viol -> print_violation viol) remaining;
  let unused = List.filter (fun a -> not a.used) allows in
  List.iter
    (fun a ->
      Printf.printf
        "%s: [allowlist] unused entry (rule %s) — remove it or fix the path\n"
        a.suffix a.a_rule)
    unused;
  let bad = remaining <> [] || unused <> [] in
  if expect_fail then
    if remaining <> [] then begin
      Printf.printf "%s: violations found, as expected\n" label;
      0
    end
    else begin
      prerr_endline (label ^ ": --expect-fail but the input is clean");
      1
    end
  else begin
    Printf.printf "%s: %d file(s), %d violation(s), %d allowlisted\n" label
      files (List.length remaining)
      (List.length violations - List.length remaining);
    if bad then 1 else 0
  end
