(* Lane/lock-order safety.

   Two rules over one extracted graph:

   lock-order — every Lock_table.acquire site is classified by its ~key
   argument: a string literal is its own lock class ("A"), anything dynamic
   is the single class <dyn>. Within a def, events are scanned in body
   order: acquiring B while A is held adds an order edge A->B (releases
   clear the held set); calling a function while holding A adds A->c for
   every class c the callee may transitively acquire. A cycle between
   *distinct named* classes is an ABBA deadlock and is reported with the
   acquisition sites. <dyn> edges never form cycles on purpose: Treaty
   acquires per-key locks incrementally and resolves conflicts by timeout
   (the paper's deadlock strategy), so dynamic multi-key acquisition is by
   design and checked at runtime by TreatySan's Lock_conflict warnings.

   lane-race — every Lanes.submit/run site roots a *lane context*, keyed by
   the syntactic class of its lane-key argument (a literal int is its own
   class; a dynamic expression is one class per spelling). The closure (or
   named function) submitted runs under that class, as does everything it
   transitively calls; a dispatcher that submits one of its own function
   parameters (Node.on_lane) attributes the functions its call sites pass
   in. Every mutable-record-field write reachable from a lane root is
   recorded under the root's class; a field written from two or more
   distinct classes, at least one of them without a Lock_table.acquire on
   its witness path, is a cross-lane unguarded write. The runtime
   counterpart is TreatySan's Lane_race assert, so the static pass and the
   sanitizer cross-validate in the chaos sweep. *)

let rule_lock = "lock-order"
let rule_lane = "lane-race"

type event =
  | Acquire of string * int  (* lock class, line *)
  | Release
  | Call of string * int  (* resolved callee, line *)

(* What a submitted inline closure does. *)
type closure_info = {
  ci_refs : string list;  (* known defs it references *)
  ci_writes : (string * int) list;  (* "Type.field", line *)
  ci_guarded : bool;  (* acquires a lock itself *)
  ci_params : int list;  (* enclosing-def param indices it invokes *)
}

type job = Jnamed of string | Jclosure of closure_info

type facts = {
  mutable events : event list;  (* body order, closure interiors excluded *)
  mutable writes : (string * int) list;
  mutable acquires_locally : bool;
  mutable lanes : (string * job * int) list;  (* key class, job, line *)
  mutable dispatches_param : (int * string) list;
}

let labelled_arg label args =
  List.find_map
    (fun (l, eo) ->
      match (l, eo) with
      | Asttypes.Labelled l', Some e when l' = label -> Some e
      | _ -> None)
    args

let positional_args args =
  List.filter_map
    (fun (l, eo) ->
      match (l, eo) with
      | Asttypes.Nolabel, Some e -> Some e
      | _ -> None)
    args

(* A short deterministic rendering of a lane-key expression: its class. *)
let rec expr_class (d : Ir.def) (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant (Const_int n) -> "#" ^ string_of_int n
  | Texp_constant (Const_string (s, _, _)) -> "\"" ^ s ^ "\""
  | Texp_ident (p, _, _) ->
      let n = d.d_resolve p in
      if n <> "" then n else Path.last p
  | Texp_apply (f, _) -> expr_class d f ^ "(..)"
  | Texp_field (_, _, lbl) -> "." ^ lbl.lbl_name
  | _ -> "<expr>"

let lock_class (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant (Const_string (s, _, _)) -> "\"" ^ s ^ "\""
  | _ -> "<dyn>"

let head_path (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> Some p
  | _ -> None

let field_key (d : Ir.def) (e1 : Typedtree.expression)
    (lbl : Types.label_description) =
  let ty = Ir.type_head d e1.exp_type in
  (if ty = "" then "?" else ty) ^ "." ^ lbl.lbl_name

let run (spec : Spec.t) (prog : Ir.program) : Diag.violation list =
  let facts_tbl : (string, facts) Hashtbl.t = Hashtbl.create 256 in
  let special name =
    spec.lock_acquire name || spec.lock_release name || spec.lane_submit name
  in
  (* Everything an inline closure references, writes and dispatches. *)
  let closure_info (d : Ir.def) param_index_of (job : Typedtree.expression) =
    let refs = ref [] and writes = ref [] in
    let guarded = ref false and params = ref [] in
    let open Tast_iterator in
    let super = default_iterator in
    let expr self (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
        when spec.lock_acquire (d.d_resolve p) ->
          guarded := true
      | Texp_ident (p, _, _) -> (
          let n = d.d_resolve p in
          if n <> "" && (not (special n)) && Hashtbl.mem prog.defs n then
            refs := n :: !refs
          else
            match p with
            | Path.Pident id -> (
                match param_index_of id with
                | Some i -> params := i :: !params
                | None -> ())
            | _ -> ())
      | Texp_setfield (e1, _, lbl, _) ->
          writes := (field_key d e1 lbl, Ir.line_of e.exp_loc) :: !writes
      | _ -> ());
      super.expr self e
    in
    let it = { super with expr } in
    it.expr it job;
    {
      ci_refs = List.rev !refs;
      ci_writes = List.rev !writes;
      ci_guarded = !guarded;
      ci_params = List.sort_uniq compare !params;
    }
  in
  (* --- per-def fact extraction ------------------------------------------- *)
  let extract (d : Ir.def) =
    let f =
      {
        events = [];
        writes = [];
        acquires_locally = false;
        lanes = [];
        dispatches_param = [];
      }
    in
    let params = Ir.params_of_body d.d_body in
    let param_index_of id =
      List.find_map
        (fun (i, pid) -> if Ident.same pid id then Some i else None)
        params
    in
    let skip : Typedtree.expression list ref = ref [] in
    let submit_job key_class line (job : Typedtree.expression) =
      match head_path job with
      | Some p -> (
          let n = d.d_resolve p in
          if n <> "" && Hashtbl.mem prog.defs n then
            f.lanes <- (key_class, Jnamed n, line) :: f.lanes
          else
            match p with
            | Path.Pident id -> (
                match param_index_of id with
                | Some i ->
                    f.dispatches_param <- (i, key_class) :: f.dispatches_param
                | None -> ())
            | _ -> ())
      | None -> (
          match job.exp_desc with
          | Texp_function _ ->
              skip := job :: !skip;
              let ci = closure_info d param_index_of job in
              f.lanes <- (key_class, Jclosure ci, line) :: f.lanes;
              List.iter
                (fun i ->
                  f.dispatches_param <- (i, key_class) :: f.dispatches_param)
                ci.ci_params
          | _ -> ())
    in
    let open Tast_iterator in
    let super = default_iterator in
    let expr self (e : Typedtree.expression) =
      if List.memq e !skip then ()
      else begin
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
            let callee = d.d_resolve p in
            let line = Ir.line_of e.exp_loc in
            if spec.lock_acquire callee then begin
              f.acquires_locally <- true;
              let cls =
                match labelled_arg "key" args with
                | Some k -> lock_class k
                | None -> "<dyn>"
              in
              f.events <- Acquire (cls, line) :: f.events
            end
            else if spec.lock_release callee then
              f.events <- Release :: f.events
            else if spec.lane_submit callee then begin
              (* submit lanes key job — key and job are the trailing
                 positional arguments. *)
              match List.rev (positional_args args) with
              | job :: key :: _ -> submit_job (expr_class d key) line job
              | _ -> ()
            end
        | Texp_ident (p, _, _) ->
            (* A function mentioned without application still counts as a
               potential call. *)
            let n = d.d_resolve p in
            if n <> "" && (not (special n)) && Hashtbl.mem prog.defs n then
              f.events <- Call (n, Ir.line_of e.exp_loc) :: f.events
        | Texp_setfield (e1, _, lbl, _) ->
            f.writes <- (field_key d e1 lbl, Ir.line_of e.exp_loc) :: f.writes
        | _ -> ());
        super.expr self e
      end
    in
    let it = { super with expr } in
    it.expr it d.d_body;
    f.events <- List.rev f.events;
    f.writes <- List.rev f.writes;
    f.lanes <- List.rev f.lanes;
    Hashtbl.replace facts_tbl d.d_name f
  in
  List.iter (fun name -> extract (Hashtbl.find prog.defs name)) prog.order;
  let facts name = Hashtbl.find_opt facts_tbl name in
  (* --- lock-order -------------------------------------------------------- *)
  (* Transitive acquire classes per def, to a fixed point. *)
  let acq : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter (fun name -> Hashtbl.replace acq name (Hashtbl.create 4)) prog.order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun name ->
        match facts name with
        | None -> ()
        | Some f ->
            let mine = Hashtbl.find acq name in
            let add c =
              if not (Hashtbl.mem mine c) then begin
                Hashtbl.replace mine c ();
                changed := true
              end
            in
            List.iter
              (function
                | Acquire (c, _) -> add c
                | Call (g, _) -> (
                    match Hashtbl.find_opt acq g with
                    | Some theirs -> Hashtbl.iter (fun c () -> add c) theirs
                    | None -> ())
                | Release -> ())
              f.events)
      prog.order
  done;
  (* Order edges with witness sites. *)
  let edges : (string * string, Diag.frame) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun name ->
      match facts name with
      | None -> ()
      | Some f ->
          let d = Hashtbl.find prog.defs name in
          let held = ref [] in
          let edge a b line =
            if a <> b && not (Hashtbl.mem edges (a, b)) then
              Hashtbl.replace edges (a, b)
                { Diag.fr_def = name; fr_file = d.d_file; fr_line = line }
          in
          List.iter
            (function
              | Acquire (c, line) ->
                  List.iter (fun h -> edge h c line) !held;
                  if not (List.mem c !held) then held := !held @ [ c ]
              | Release -> held := []
              | Call (g, line) -> (
                  match Hashtbl.find_opt acq g with
                  | None -> ()
                  | Some theirs ->
                      Hashtbl.iter
                        (fun c () -> List.iter (fun h -> edge h c line) !held)
                        theirs))
            f.events)
    prog.order;
  let lock_violations = ref [] in
  let nodes =
    Hashtbl.fold (fun (a, b) _ acc -> a :: b :: acc) edges []
    |> List.sort_uniq compare
    |> List.filter (fun c -> c <> "<dyn>")
  in
  let succs a =
    Hashtbl.fold
      (fun (x, y) site acc ->
        if x = a && y <> "<dyn>" then (y, site) :: acc else acc)
      edges []
    |> List.sort compare
  in
  let reported_cycles = Hashtbl.create 4 in
  List.iter
    (fun start ->
      let rec dfs path node =
        List.iter
          (fun (next, site) ->
            if next = start then begin
              let cycle = List.rev ((node, site) :: path) in
              let key =
                List.map fst cycle |> List.sort compare |> String.concat ","
              in
              if not (Hashtbl.mem reported_cycles key) then begin
                Hashtbl.replace reported_cycles key ();
                let sites = List.map snd cycle in
                let first = List.hd sites in
                let names = List.map fst cycle in
                let desc = String.concat " -> " (names @ [ List.hd names ]) in
                lock_violations :=
                  Diag.v ~file:first.Diag.fr_file ~line:first.Diag.fr_line
                    ~rule:rule_lock ~chain:sites
                    ("lock acquisition order cycle " ^ desc
                   ^ " (ABBA deadlock): impose one global order")
                  :: !lock_violations
              end
            end
            else if not (List.exists (fun (n, _) -> n = next) path) then
              dfs ((node, site) :: path) next)
          (succs node)
      in
      dfs [] start)
    nodes;
  (* --- lane-race --------------------------------------------------------- *)
  let write_sites :
      (string, (string * bool * Diag.frame list * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let add_write field cls guarded chain line =
    let l =
      match Hashtbl.find_opt write_sites field with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace write_sites field l;
          l
    in
    l := (cls, guarded, chain, line) :: !l
  in
  (* Seeds: (class, initial guarded, root def, submitting frame). *)
  let frame_of name line =
    let d = Hashtbl.find prog.defs name in
    { Diag.fr_def = name; fr_file = d.d_file; fr_line = line }
  in
  let seeds = ref [] in
  let seed_closure cls owner site ci =
    List.iter
      (fun (field, line) ->
        add_write field cls ci.ci_guarded [ frame_of owner line ] line)
      ci.ci_writes;
    List.iter
      (fun r -> seeds := (cls, ci.ci_guarded, r, frame_of owner site) :: !seeds)
      ci.ci_refs
  in
  List.iter
    (fun name ->
      match facts name with
      | None -> ()
      | Some f ->
          List.iter
            (fun (cls, job, line) ->
              match job with
              | Jnamed n ->
                  seeds := (cls, false, n, frame_of name line) :: !seeds
              | Jclosure ci -> seed_closure cls name line ci)
            f.lanes)
    prog.order;
  (* Dispatcher call sites: a known function (or closure) passed as the
     dispatcher's job parameter runs under the dispatcher's key class. *)
  List.iter
    (fun name ->
      let d = Hashtbl.find prog.defs name in
      let params = Ir.params_of_body d.d_body in
      let param_index_of id =
        List.find_map
          (fun (i, pid) -> if Ident.same pid id then Some i else None)
          params
      in
      let open Tast_iterator in
      let super = default_iterator in
      let expr self (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            let callee = d.d_resolve p in
            match facts callee with
            | Some cf when cf.dispatches_param <> [] ->
                let positional = positional_args args in
                List.iter
                  (fun (i, cls) ->
                    match List.nth_opt positional i with
                    | None -> ()
                    | Some actual -> (
                        match head_path actual with
                        | Some q ->
                            let n = d.d_resolve q in
                            if n <> "" && Hashtbl.mem prog.defs n then
                              seeds :=
                                ( cls, false, n,
                                  frame_of name (Ir.line_of e.exp_loc) )
                                :: !seeds
                        | None -> (
                            match actual.exp_desc with
                            | Texp_function _ ->
                                seed_closure cls name (Ir.line_of e.exp_loc)
                                  (closure_info d param_index_of actual)
                            | _ -> ())))
                  cf.dispatches_param
            | _ -> ())
        | _ -> ());
        super.expr self e
      in
      let it = { super with expr } in
      it.expr it d.d_body)
    prog.order;
  (* Walk the call graph from each seed, carrying the guarded bit. *)
  List.iter
    (fun (cls, guarded0, root, site) ->
      let visited : (string, bool) Hashtbl.t = Hashtbl.create 64 in
      let rec walk name guarded chain depth =
        if depth > 40 then ()
        else
          match Hashtbl.find_opt visited name with
          | Some g when (not g) || guarded -> () (* unguarded visit subsumes *)
          | _ -> (
              Hashtbl.replace visited name guarded;
              match facts name with
              | None -> ()
              | Some f ->
                  let guarded = guarded || f.acquires_locally in
                  List.iter
                    (fun (field, line) ->
                      add_write field cls guarded
                        (List.rev (frame_of name line :: chain))
                        line)
                    f.writes;
                  List.iter
                    (function
                      | Call (g, line) ->
                          walk g guarded
                            (frame_of name line :: chain)
                            (depth + 1)
                      | _ -> ())
                    f.events)
      in
      walk root guarded0 [ site ] 0)
    !seeds;
  let lane_violations = ref [] in
  let fields = Hashtbl.fold (fun k _ acc -> k :: acc) write_sites [] in
  List.iter
    (fun field ->
      let sites = !(Hashtbl.find write_sites field) in
      let classes =
        List.map (fun (c, _, _, _) -> c) sites |> List.sort_uniq compare
      in
      if List.length classes >= 2 then
        match List.find_opt (fun (_, guarded, _, _) -> not guarded) sites with
        | None -> ()
        | Some (cls, _, chain, line) ->
            let file =
              match List.rev chain with
              | last :: _ -> last.Diag.fr_file
              | [] -> "?"
            in
            lane_violations :=
              Diag.v ~file ~line ~rule:rule_lane ~chain
                (Printf.sprintf
                   "mutable field %s is written from more than one lane (key \
                    classes: %s; this write from lane %s) without a guarding \
                    lock"
                   field
                   (String.concat ", " classes)
                   cls)
              :: !lane_violations)
    (List.sort compare fields);
  List.rev !lock_violations @ List.rev !lane_violations
