(* Hermetic self-tests for the interprocedural passes.

   Each case is a tiny OCaml source typechecked in-process (compiler-libs
   Typemod against the ambient stdlib), loaded as the synthetic unit [Self]
   and analyzed with a spec whose source/sink/lock/lane tables point at the
   case's own helpers. No fixture files, no dune plumbing: `treatycheck
   --self-test` must pass anywhere the tool builds, and a regression in
   resolution, summaries or reachability shows up as a named case. *)

type case = {
  label : string;
  rule : string;  (* which pass + which rule the case exercises *)
  expect : int;  (* violations of [rule] the pass must report *)
  source : string;
}

let cases =
  [
    {
      label = "taint: secret laundered through two helpers reaches a sink";
      rule = "taint-escape";
      expect = 1;
      source =
        {|
let get_secret () = Bytes.make 32 'k'
let wrap b = Bytes.to_string b
let relay s = print_string s
let handle_x () = relay (wrap (get_secret ()))
|};
    };
    {
      label = "taint: declassifier on the path suppresses the flow";
      rule = "taint-escape";
      expect = 0;
      source =
        {|
let get_secret () = Bytes.make 32 'k'
let seal b = Bytes.to_string b
let handle_x () = print_string (seal (get_secret ()))
|};
    };
    {
      label = "taint: direct source-to-sink in one body";
      rule = "taint-escape";
      expect = 1;
      source =
        {|
let get_secret () = Bytes.make 32 'k'
let handle_x () = print_string (Bytes.to_string (get_secret ()))
|};
    };
    {
      label = "nondet: PRNG two calls below a handler";
      rule = "nondet-effect";
      expect = 1;
      source =
        {|
let leaf () = Random.int 10
let mid () = leaf () + 1
let handle_req () = mid ()
|};
    };
    {
      label = "nondet: unreachable PRNG is not reported";
      rule = "nondet-effect";
      expect = 0;
      source =
        {|
let unused_leaf () = Random.int 10
let handle_req () = 42
|};
    };
    {
      label = "nondet: physical equality on a mutable record";
      rule = "nondet-effect";
      expect = 1;
      source =
        {|
type cell = { mutable v : int }
let handle_eq (a : cell) (b : cell) = ignore a.v; a == b
|};
    };
    {
      label = "nondet: physical equality on an immutable value is fine";
      rule = "nondet-effect";
      expect = 0;
      source = {|
let handle_eq (a : string) (b : string) = a == b
|};
    };
    {
      label = "lanes: ABBA lock order cycle";
      rule = "lock-order";
      expect = 1;
      source =
        {|
let acquire ~key n = ignore key; ignore n
let release n = ignore n
let ab n = acquire ~key:"A" n; acquire ~key:"B" n; release n
let ba n = acquire ~key:"B" n; acquire ~key:"A" n; release n
|};
    };
    {
      label = "lanes: consistent lock order is fine";
      rule = "lock-order";
      expect = 0;
      source =
        {|
let acquire ~key n = ignore key; ignore n
let release n = ignore n
let ab n = acquire ~key:"A" n; acquire ~key:"B" n; release n
let ab2 n = acquire ~key:"A" n; acquire ~key:"B" n; release n
|};
    };
    {
      label = "lanes: same field written from two lane keys, unguarded";
      rule = "lane-race";
      expect = 1;
      source =
        {|
type cell = { mutable v : int }
let submit q k f = ignore q; ignore k; f ()
let c = { v = 0 }
let bump_a () = c.v <- 1
let handle_a q = submit q 0 bump_a
let handle_b q = submit q 1 (fun () -> c.v <- 2)
|};
    };
    {
      label = "lanes: cross-lane writes under a lock are fine";
      rule = "lane-race";
      expect = 0;
      source =
        {|
type cell = { mutable v : int }
let acquire ~key n = ignore key; ignore n
let submit q k f = ignore q; ignore k; f ()
let c = { v = 0 }
let bump_a n = acquire ~key:"K" n; c.v <- 1
let bump_b n = acquire ~key:"K" n; c.v <- 2
let handle_a q = submit q 0 (fun () -> bump_a 1); submit q 1 (fun () -> bump_b 2)
|};
    };
    {
      label = "lanes: dispatcher attributes call-site jobs to its lane key";
      rule = "lane-race";
      expect = 1;
      source =
        {|
type cell = { mutable v : int }
let submit q k f = ignore q; ignore k; f ()
let c = { v = 0 }
let on_a q f = submit q 0 f
let on_b q f = submit q 1 f
let bump_a () = c.v <- 1
let bump_b () = c.v <- 2
let handle_x q = on_a q bump_a; on_b q bump_b
|};
    };
  ]

(* The self-test spec: production tables, with the case helpers standing in
   for the crypto sources / lock table / lane scheduler. *)
let spec =
  {
    Spec.production with
    sources = (fun n -> n = "Self.get_secret");
    declassifiers = (fun n -> n = "Self.seal");
    taint_skip_unit = (fun _ -> false);
    lock_acquire = (fun n -> n = "Self.acquire");
    lock_release = (fun n -> n = "Self.release");
    lane_submit = (fun n -> n = "Self.submit");
  }

let env =
  lazy
    (Compmisc.init_path ();
     (* Self-test sources are deliberately scruffy; compiler warnings about
        them are noise. *)
     ignore (Warnings.parse_options false "-a");
     Compmisc.initial_env ())

let typecheck source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf "self.ml";
  let parsed = Parse.implementation lexbuf in
  let str, _, _, _, _ = Typemod.type_structure (Lazy.force env) parsed in
  { Ir.ui_name = "Self"; ui_file = "self.ml"; ui_str = str }

let pass_for rule prog =
  match rule with
  | "taint-escape" -> Taint.run spec prog
  | "nondet-effect" -> Determinism.run spec prog
  | _ -> Lanes.run spec prog

let run () =
  let failures = ref 0 in
  List.iter
    (fun c ->
      match
        let prog = Ir.load_units [ typecheck c.source ] in
        pass_for c.rule prog
      with
      | exception exn ->
          incr failures;
          Printf.printf "FAIL %s\n  raised: " c.label;
          Location.report_exception Format.std_formatter exn
      | violations ->
          let hits =
            List.filter (fun (v : Diag.violation) -> v.rule = c.rule) violations
          in
          let stray =
            List.filter (fun (v : Diag.violation) -> v.rule <> c.rule) violations
          in
          if List.length hits = c.expect && stray = [] then
            Printf.printf "ok   %s\n" c.label
          else begin
            incr failures;
            Printf.printf "FAIL %s\n  want %d violation(s) of %s, got:\n"
              c.label c.expect c.rule;
            List.iter (Diag.print_violation ~out:stdout) violations
          end)
    cases;
  if !failures = 0 then begin
    Printf.printf "treatycheck self-test: %d case(s) ok\n" (List.length cases);
    0
  end
  else begin
    Printf.printf "treatycheck self-test: %d failure(s)\n" !failures;
    1
  end
