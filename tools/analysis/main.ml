(* treatycheck — TreatyCheck's command-line driver.

   Loads every .cmt under the given paths (dune keeps them in .objs/
   directories; pass lib trees from _build, or individual files), builds
   the whole-program IR and runs the interprocedural passes:

     taint   secret-taint escape        [taint-escape]
     nondet  determinism effects        [nondet-effect]
     lanes   lane/lock-order safety     [lane-race, lock-order]

   Exit 0 when clean (or, with --expect-fail, when violations were found),
   1 on findings or stale allowlist entries, 2 on usage/load errors. The
   allowlist file is shared with treaty-lint. *)

let usage () =
  prerr_endline
    "usage: treatycheck [--pass taint|nondet|lanes|all] [--allowlist FILE]\n\
    \       [--expect-fail] [--self-test] PATHS...\n\
     PATHS are .cmt files or directories searched recursively for them.";
  exit 2

let () =
  let pass = ref "all" in
  let allowlist = ref None in
  let expect_fail = ref false in
  let self_test = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--pass" :: v :: rest ->
        if not (List.mem v [ "taint"; "nondet"; "lanes"; "all" ]) then usage ();
        pass := v;
        parse rest
    | "--allowlist" :: f :: rest ->
        allowlist := Some f;
        parse rest
    | "--expect-fail" :: rest ->
        expect_fail := true;
        parse rest
    | "--self-test" :: rest ->
        self_test := true;
        parse rest
    | p :: rest ->
        if String.length p > 0 && p.[0] = '-' then usage ();
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !self_test then exit (Selftest.run ());
  if !paths = [] then usage ();
  let prog, units = Ir.load_paths (List.rev !paths) in
  if units = 0 then begin
    prerr_endline "treatycheck: no .cmt files found under the given paths";
    exit 2
  end;
  let spec = Spec.production in
  let want p = !pass = "all" || !pass = p in
  let violations =
    (if want "taint" then Taint.run spec prog else [])
    @ (if want "nondet" then Determinism.run spec prog else [])
    @ if want "lanes" then Lanes.run spec prog else []
  in
  let active_rules =
    (if want "taint" then [ Taint.rule ] else [])
    @ (if want "nondet" then [ Determinism.rule ] else [])
    @ if want "lanes" then [ Lanes.rule_lane; Lanes.rule_lock ] else []
  in
  (* The allowlist is shared with treaty-lint and across analysis scopes:
     entries for rules other tools (or other passes) own, or for files
     outside the tree being analyzed, are not "unused" here. *)
  let src_files =
    Hashtbl.fold (fun _ (d : Ir.def) acc -> d.Ir.d_file :: acc) prog.Ir.defs []
    |> List.sort_uniq compare
  in
  let allows =
    match !allowlist with
    | None -> []
    | Some f ->
        Diag.load_allowlist f
        |> List.filter (fun (a : Diag.allow) ->
               List.mem a.a_rule active_rules
               && List.exists
                    (fun file -> String.ends_with ~suffix:a.suffix file)
                    src_files)
  in
  exit
    (Diag.finish
       ~label:("treatycheck --pass " ^ !pass)
       ~expect_fail:!expect_fail ~allows ~files:units violations)
