(* What the interprocedural passes look for, as data.

   Keeping the source/sink/entry tables here (and letting the self-test
   inject its own over hermetic synthetic units) keeps the pass engines
   free of Treaty-specific names. All names are canonical (Ir). *)

type t = {
  (* taint pass *)
  sources : string -> bool;  (* calls whose result is secret *)
  declassifiers : string -> bool;  (* consume taint safely (sealing, MACs) *)
  sinks : string -> string option;  (* host-visible sinks, with a label *)
  secret_types : string list;  (* types whose every value is secret *)
  taint_skip_unit : string -> bool;  (* the trust kernel itself *)
  (* determinism pass *)
  nondet_leaf : string -> string option;
  entry : Ir.def -> bool;
  (* lane/lock pass *)
  lock_acquire : string -> bool;
  lock_release : string -> bool;
  lane_submit : string -> bool;
}

let prefixed p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let production =
  let sources name =
    (prefixed "Treaty_crypto.Keys." name
    && name <> "Treaty_crypto.Keys.verify_client_token")
    || prefixed "Treaty_crypto.Chacha20." name
  in
  let declassifiers name =
    (* Sealing, MACs and hashes consume key material and plaintext; their
       outputs are safe for the host to see. Taint registration itself is
       the runtime counterpart of this pass, not a leak. *)
    prefixed "Treaty_crypto.Aead." name
    || prefixed "Treaty_crypto.Hmac." name
    || prefixed "Treaty_crypto.Sha256." name
    || prefixed "Treaty_crypto.Taint." name
  in
  let sinks name =
    if name = "Treaty_netsim.Net.send" then Some "Net.send (untrusted wire)"
    else if name = "Treaty_netsim.Net.replay" then Some "Net.replay (untrusted wire)"
    else if name = "Treaty_storage.Ssd.append" then
      Some "Ssd.append (untrusted host storage)"
    else if
      (prefixed "Stdlib.Printf." name || prefixed "Stdlib.Format." name)
      && (let base =
            match String.rindex_opt name '.' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          (* Only the printing entry points: sprintf/asprintf build strings
             in enclave memory, and anything they build stays tainted. *)
          List.mem base [ "printf"; "eprintf"; "fprintf"; "ifprintf" ])
    then Some (name ^ " (host-visible console/format output)")
    else if
      prefixed "Stdlib.print_" name
      || prefixed "Stdlib.prerr_" name
      || prefixed "Stdlib.output_" name
    then Some (name ^ " (host-visible console output)")
    else if prefixed "Treaty_obs." name then
      Some (name ^ " (observability export, host-visible)")
    else None
  in
  let nondet_leaf name =
    if prefixed "Stdlib.Random." name || prefixed "Random." name then
      Some (name ^ ": ambient PRNG breaks seeded reproducibility")
    else if name = "Unix.gettimeofday" then
      Some "Unix.gettimeofday: wall-clock read; use Sim.now"
    else if name = "Stdlib.Sys.time" then
      Some "Sys.time: host CPU clock; use Sim.now"
    else if
      name = "Stdlib.Hashtbl.hash"
      || name = "Stdlib.Hashtbl.seeded_hash"
      || name = "Stdlib.Hashtbl.hash_param"
    then Some (name ^ ": varies across runtimes; use Treaty_util.Fnv.hash")
    else if name = "Stdlib.Obj.magic" then
      Some "Obj.magic defeats the type system"
    else None
  in
  let entry_units =
    [ "Treaty_core.Node"; "Treaty_sched.Scheduler"; "Treaty_sim.Sim";
      "Treaty_chaos.Chaos"; "Treaty_chaos.Schedule" ]
  in
  let entry (d : Ir.def) =
    List.mem d.d_unit entry_units
    ||
    (* protocol handlers wherever they live (also how fixtures opt in) *)
    let base =
      match String.rindex_opt d.d_name '.' with
      | Some i -> String.sub d.d_name (i + 1) (String.length d.d_name - i - 1)
      | None -> d.d_name
    in
    prefixed "handle_" base
  in
  {
    sources;
    declassifiers;
    sinks;
    secret_types = [ "Treaty_crypto.Aead.key"; "Treaty_crypto.Keys.master" ];
    taint_skip_unit = (fun u -> prefixed "Treaty_crypto." u);
    nondet_leaf;
    entry;
    lock_acquire = (fun n -> n = "Treaty_core.Lock_table.acquire");
    lock_release =
      (fun n ->
        n = "Treaty_core.Lock_table.release_all"
        || n = "Treaty_core.Lock_table.txn_end");
    lane_submit =
      (fun n ->
        n = "Treaty_sched.Scheduler.Lanes.submit"
        || n = "Treaty_sched.Scheduler.Lanes.run");
  }
