(* Secret-taint escape: interprocedural value taint over the typedtree.

   Taint origins per expression are a small bitset: bit 0 ("Const") means
   the value derives from an actual secret — a call into a key/cipher
   source (Keys / Chacha20) or a value of a secret type (Aead.key,
   Keys.master); bit i+1 means it derives from parameter i of the def under
   analysis. Each def gets a summary:

     ret    — origin set of its result
     flows  — parameters that reach a host sink inside it (transitively),
              each with the witness chain of call frames down to the sink

   computed to a fixed point over the call graph. A violation is a Const
   origin reaching a sink: either directly in some def's body, or at a call
   site that passes a secret into a parameter the callee's summary says
   flows to a sink — that is the "laundered through a helper" case the
   syntactic lint cannot see.

   Deliberate approximations (documented in DESIGN.md §13): flows through
   mutable heap cells (Buffer, Bytes blits, record stores) are not tracked
   — the runtime Taint tracker owns that side; record field reads are
   field-type-sensitive rather than propagating the record's taint (else
   every access to a struct holding a key would be secret); values of
   immediate type (int/bool/...) never carry taint; implicit flows through
   branch conditions are ignored. Calls into unknown externals propagate
   taint from arguments to result, which is what catches laundering through
   String.sub / ( ^ ) and friends. *)

let const_bit = 1
let param_bit i = 1 lsl (i + 1)

type summary = {
  mutable ret : int;
  (* (param index, sink label, frames from this def's body to the sink) *)
  mutable flows : (int * string * Diag.frame list) list;
}

let rule = "taint-escape"

let run (spec : Spec.t) (prog : Ir.program) : Diag.violation list =
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 256 in
  let summary name =
    match Hashtbl.find_opt summaries name with
    | Some s -> s
    | None ->
        let s = { ret = 0; flows = [] } in
        Hashtbl.replace summaries name s;
        s
  in
  let violations = ref [] in
  let record = ref false in
  let changed = ref false in
  let add_flow s k label chain =
    if not (List.exists (fun (k', l', _) -> k' = k && l' = label) s.flows)
    then begin
      s.flows <- (k, label, chain) :: s.flows;
      changed := true
    end
  in
  let add_ret s o =
    let o' = s.ret lor o in
    if o' <> s.ret then begin
      s.ret <- o';
      changed := true
    end
  in
  let report label chain =
    if !record then
      match List.rev chain with
      | [] -> ()
      | last :: _ ->
          violations :=
            Diag.v ~file:last.Diag.fr_file ~line:last.Diag.fr_line ~rule
              ~chain
              ("secret value reaches " ^ label
             ^ " without passing through Aead.seal")
            :: !violations
  in
  let analyze_def (d : Ir.def) =
    let s = summary d.d_name in
    let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let secret_ty ty = List.mem (Ir.type_head d ty) spec.secret_types in
    let bind id o = Hashtbl.replace env (Ident.unique_name id) o in
    let frame line = { Diag.fr_def = d.d_name; fr_file = d.d_file; fr_line = line } in
    let bind_pat pat o =
      List.iter
        (fun id -> bind id o)
        (Typedtree.pat_bound_idents pat)
    in
    let rec eval (e : Typedtree.expression) : int =
      let mask o =
        if o <> 0 && Ir.could_carry_secret d e.exp_type then o else 0
      in
      match e.exp_desc with
      | Texp_constant _ -> 0
      | Texp_ident (p, _, _) ->
          let local =
            match p with
            | Path.Pident id -> Hashtbl.find_opt env (Ident.unique_name id)
            | _ -> None
          in
          let o =
            match local with
            | Some o -> o
            | None ->
                let n = d.d_resolve p in
                if n <> "" && spec.sources n then const_bit
                else (
                  match Hashtbl.find_opt summaries n with
                  | Some cs -> cs.ret land const_bit
                  | None -> 0)
          in
          mask (if secret_ty e.exp_type then o lor const_bit else o)
      | Texp_apply (f, args) ->
          let arg_origins =
            List.map
              (fun (_, ao) -> match ao with Some a -> eval a | None -> 0)
              args
          in
          let union = List.fold_left ( lor ) 0 arg_origins in
          let callee =
            match f.exp_desc with
            | Texp_ident (p, _, _) -> (
                match p with
                | Path.Pident id
                  when Hashtbl.mem env (Ident.unique_name id) ->
                    ""
                | _ -> d.d_resolve p)
            | _ -> ""
          in
          let line = Ir.line_of e.exp_loc in
          let iter_param_bits o fn =
            let rec go j rest =
              if rest <> 0 then begin
                if rest land 1 <> 0 then fn j;
                go (j + 1) (rest lsr 1)
              end
            in
            go 0 (o lsr 1)
          in
          if callee = "" then mask (eval f lor union)
          else (
            match spec.sinks callee with
            | Some label ->
                List.iter
                  (fun o ->
                    if o land const_bit <> 0 then report label [ frame line ];
                    iter_param_bits o (fun j ->
                        add_flow s j label [ frame line ]))
                  arg_origins;
                0
            | None ->
                if spec.declassifiers callee then 0
                else if spec.sources callee then mask const_bit
                else (
                  match Hashtbl.find_opt summaries callee with
                  | Some cs ->
                      List.iter
                        (fun (k, label, chain) ->
                          match List.nth_opt arg_origins k with
                          | None | Some 0 -> ()
                          | Some o ->
                              let lifted = frame line :: chain in
                              if o land const_bit <> 0 then
                                report label lifted;
                              iter_param_bits o (fun j ->
                                  add_flow s j label lifted))
                        cs.flows;
                      let r = ref (cs.ret land const_bit) in
                      List.iteri
                        (fun j o ->
                          if cs.ret land param_bit j <> 0 then r := !r lor o)
                        arg_origins;
                      mask !r
                  | None -> mask union))
      | Texp_let (_, vbs, body) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              let o = eval vb.vb_expr in
              bind_pat vb.vb_pat o)
            vbs;
          eval body
      | Texp_function _ -> eval_function 0 e
      | Texp_match (scrut, cases, _) ->
          let o = eval scrut in
          List.fold_left
            (fun acc (c : Typedtree.computation Typedtree.case) ->
              bind_pat c.c_lhs o;
              (match c.c_guard with Some g -> ignore (eval g) | None -> ());
              acc lor eval c.c_rhs)
            0 cases
      | Texp_try (body, cases) ->
          let o = eval body in
          List.fold_left
            (fun acc (c : Typedtree.value Typedtree.case) ->
              bind_pat c.c_lhs 0;
              acc lor eval c.c_rhs)
            o cases
      | Texp_ifthenelse (c, a, b) ->
          ignore (eval c);
          eval a lor (match b with Some b -> eval b | None -> 0)
      | Texp_sequence (a, b) ->
          ignore (eval a);
          eval b
      | Texp_tuple es | Texp_array es ->
          List.fold_left (fun acc e -> acc lor eval e) 0 es
      | Texp_construct (_, _, es) ->
          mask (List.fold_left (fun acc e -> acc lor eval e) 0 es)
      | Texp_variant (_, eo) -> (
          match eo with Some e -> eval e | None -> 0)
      | Texp_record { fields; extended_expression } ->
          (match extended_expression with
          | Some e -> ignore (eval e)
          | None -> ());
          Array.iter
            (fun (_, (rld : Typedtree.record_label_definition)) ->
              match rld with
              | Overridden (_, e) -> ignore (eval e)
              | Kept _ -> ())
            fields;
          0
      | Texp_field (e1, _, _) ->
          ignore (eval e1);
          if secret_ty e.exp_type then const_bit else 0
      | Texp_setfield (e1, _, _, e2) ->
          ignore (eval e1);
          ignore (eval e2);
          0
      | _ -> default_children e
    and eval_function i (e : Typedtree.expression) : int =
      (* Closure encountered as a value: analyze its body (params carry no
         origin unless secret-typed) and let the closure's taint be its
         body's, so closures returning secrets propagate. *)
      match e.exp_desc with
      | Texp_function { param; cases; _ } ->
          bind param 0;
          List.fold_left
            (fun acc (c : Typedtree.value Typedtree.case) ->
              let pat_o = if secret_ty c.c_lhs.pat_type then const_bit else 0 in
              bind_pat c.c_lhs pat_o;
              match cases with
              | [ _ ] -> acc lor eval_function i c.c_rhs
              | _ -> acc lor eval c.c_rhs)
            0 cases
      | _ -> eval e
    and default_children e =
      let acc = ref 0 in
      let open Tast_iterator in
      let it =
        { default_iterator with expr = (fun _ c -> acc := !acc lor eval c) }
      in
      default_iterator.expr it e;
      !acc
    in
    (* Bind the def's own parameters to their Param origins (plus Const for
       secret-typed parameters), then evaluate the innermost bodies. *)
    let rec go i (e : Typedtree.expression) =
      match e.exp_desc with
      | Texp_function { param; cases; _ } ->
          bind param (param_bit i);
          List.iter
            (fun (c : Typedtree.value Typedtree.case) ->
              let o =
                param_bit i
                lor if secret_ty c.c_lhs.pat_type then const_bit else 0
              in
              bind_pat c.c_lhs o;
              match cases with
              | [ _ ] -> go (i + 1) c.c_rhs
              | _ -> add_ret s (eval c.c_rhs))
            cases
      | _ -> add_ret s (eval e)
    in
    go 0 d.d_body
  in
  let analyzed =
    List.filter
      (fun name ->
        match Hashtbl.find_opt prog.defs name with
        | Some d -> not (spec.taint_skip_unit d.d_unit)
        | None -> false)
      prog.order
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 20 do
    incr rounds;
    changed := false;
    List.iter
      (fun name -> analyze_def (Hashtbl.find prog.defs name))
      analyzed;
    if not !changed then continue_ := false
  done;
  (* Final recording round over stable summaries. *)
  record := true;
  List.iter (fun name -> analyze_def (Hashtbl.find prog.defs name)) analyzed;
  (* Dedup: the same flow can be reported through several call sites. *)
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (v : Diag.violation) ->
      let key = (v.file, v.line, v.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !violations)
