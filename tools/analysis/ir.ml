(* TreatyCheck's whole-program IR, built from the compiler's .cmt files.

   Each analyzed compilation unit contributes its top-level value bindings
   (including those inside nested structs) as *defs*, named canonically:

     Treaty_core.Node.handle_prepare
     Treaty_sched.Scheduler.Lanes.submit

   dune's module mangling (Treaty_core__Node) is rewritten to dotted form,
   so a reference through the library wrapper (Treaty_core.Node.x), through
   a local alias (module N = Treaty_core.Node; N.x) and from inside the
   defining unit itself (x) all resolve to the same canonical name. That
   resolution is what makes the passes *inter*procedural: an edge in the
   call graph exists for every resolved reference from one def's body to
   another def, whether applied or merely mentioned (passing a function as
   a value is conservatively a call).

   The IR keeps each def's typedtree body so passes can re-walk it with
   full type information (taint needs expression types; the lane pass needs
   setfield labels), plus a resolver closure mapping any Path.t occurring
   in that unit to a canonical name. *)

type def = {
  d_name : string;  (* canonical, e.g. "Treaty_core.Node.handle_prepare" *)
  d_unit : string;  (* canonical unit, e.g. "Treaty_core.Node" *)
  d_file : string;  (* source path as recorded in the cmt *)
  d_line : int;
  d_body : Typedtree.expression;
  d_resolve : Path.t -> string;  (* value paths; "" when local/unresolved *)
  d_resolve_ty : Path.t -> string;  (* type paths; falls back to the raw name *)
}

type program = {
  defs : (string, def) Hashtbl.t;
  order : string list;  (* def names in load order, for determinism *)
  (* def -> resolved references (callee canonical name, line), in body order *)
  calls : (string, (string * int) list) Hashtbl.t;
  (* canonical names of record types with at least one mutable field *)
  mutable_types : (string, unit) Hashtbl.t;
}

let mangle_fix name =
  (* Treaty_core__Node -> Treaty_core.Node *)
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* Per-unit resolution environment: Ident.unique_name -> canonical name for
   module aliases, nested module definitions and unit-level values. *)
let make_resolvers locals =
  let rec canon p =
    match p with
    | Path.Pident id -> (
        match Hashtbl.find_opt locals (Ident.unique_name id) with
        | Some n -> n
        | None -> if Ident.global id then mangle_fix (Ident.name id) else "")
    | Path.Pdot (p, s) -> (
        match canon p with "" -> "" | base -> base ^ "." ^ s)
    | _ -> ""
  in
  let rec canon_ty p =
    (* Type constructor paths: predef heads (bytes, array, ...) are neither
       local nor global idents, so fall back to the raw name. *)
    match p with
    | Path.Pident id -> (
        match Hashtbl.find_opt locals (Ident.unique_name id) with
        | Some n -> n
        | None -> mangle_fix (Ident.name id))
    | Path.Pdot (p, s) -> (
        match canon_ty p with "" -> s | base -> base ^ "." ^ s)
    | _ -> ""
  in
  (canon, canon_ty)

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

(* --- def collection ------------------------------------------------------ *)

type unit_input = {
  ui_name : string;  (* canonical unit name *)
  ui_file : string;
  ui_str : Typedtree.structure;
}

let load_unit prog ui =
  let locals = Hashtbl.create 64 in
  let canon, canon_ty = make_resolvers locals in
  let order = ref [] in
  let add_def name line body =
    let d =
      {
        d_name = name;
        d_unit = ui.ui_name;
        d_file = ui.ui_file;
        d_line = line;
        d_body = body;
        d_resolve = canon;
        d_resolve_ty = canon_ty;
      }
    in
    Hashtbl.replace prog.defs name d;
    order := name :: !order
  in
  let rec unwrap (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_constraint (me, _, _, _) -> unwrap me
    | d -> d
  in
  let rec collect prefix (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let ids = Typedtree.pat_bound_idents vb.vb_pat in
                List.iter
                  (fun id ->
                    let name = prefix ^ "." ^ Ident.name id in
                    Hashtbl.replace locals (Ident.unique_name id) name;
                    add_def name (line_of vb.vb_loc) vb.vb_expr)
                  ids)
              vbs
        | Tstr_module mb -> collect_module prefix mb
        | Tstr_recmodule mbs -> List.iter (collect_module prefix) mbs
        | Tstr_type (_, decls) ->
            List.iter
              (fun (td : Typedtree.type_declaration) ->
                let name = prefix ^ "." ^ Ident.name td.typ_id in
                (* Same-unit mentions of the type are Pidents; register them
                   so type_head agrees with cross-unit resolution. *)
                Hashtbl.replace locals (Ident.unique_name td.typ_id) name;
                match td.typ_kind with
                | Ttype_record lds
                  when List.exists
                         (fun (ld : Typedtree.label_declaration) ->
                           ld.ld_mutable = Mutable)
                         lds ->
                    Hashtbl.replace prog.mutable_types name ()
                | _ -> ())
              decls
        | _ -> ())
      str.str_items
  and collect_module prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
        let name = prefix ^ "." ^ Ident.name id in
        match unwrap mb.mb_expr with
        | Tmod_ident (p, _) ->
            (* module X = Some.Path — an alias: resolve through it. *)
            let target = canon p in
            Hashtbl.replace locals (Ident.unique_name id)
              (if target = "" then name else target)
        | Tmod_structure str ->
            Hashtbl.replace locals (Ident.unique_name id) name;
            collect name str
        | _ -> Hashtbl.replace locals (Ident.unique_name id) name)
  in
  collect ui.ui_name ui.ui_str;
  (* Reference collection: every resolved value mention, in body order. *)
  List.iter
    (fun name ->
      let d = Hashtbl.find prog.defs name in
      let refs = ref [] in
      let open Tast_iterator in
      let super = default_iterator in
      let expr self (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_ident (p, _, _) ->
            let c = canon p in
            if c <> "" then refs := (c, line_of e.exp_loc) :: !refs
        | _ -> ());
        super.expr self e
      in
      let it = { super with expr } in
      it.expr it d.d_body;
      Hashtbl.replace prog.calls name (List.rev !refs))
    (List.rev !order);
  List.rev !order

(* --- cmt loading --------------------------------------------------------- *)

let read_cmt_unit path =
  let cmt = Cmt_format.read_cmt path in
  match (cmt.cmt_annots, cmt.cmt_sourcefile) with
  | _, Some src when Filename.check_suffix src "-gen" ->
      None (* dune's generated library wrapper module *)
  | Cmt_format.Implementation str, src ->
      Some
        {
          ui_name = mangle_fix cmt.cmt_modname;
          ui_file = (match src with Some s -> s | None -> path);
          ui_str = str;
        }
  | _ -> None

let empty_program () =
  {
    defs = Hashtbl.create 512;
    order = [];
    calls = Hashtbl.create 512;
    mutable_types = Hashtbl.create 32;
  }

let load_units uis =
  let prog = empty_program () in
  let order = List.concat_map (fun ui -> load_unit prog ui) uis in
  { prog with order }

(* [paths] are .cmt files or directories to scan recursively (dune keeps
   cmts under .objs/, so hidden directories are descended into). *)
let load_paths paths =
  let files =
    List.concat_map
      (fun p -> Syntactic.gather ~suffix:".cmt" ~into_hidden:true [] p)
      paths
    |> List.sort_uniq compare
  in
  let uis = List.filter_map read_cmt_unit files in
  (load_units uis, List.length uis)

(* --- shared helpers for the passes --------------------------------------- *)

let calls_of prog name =
  match Hashtbl.find_opt prog.calls name with Some l -> l | None -> []

(* The canonical head of a type expression, "" when not a constructor. *)
let type_head (d : def) (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> d.d_resolve_ty p
  | _ -> ""

let immediate_types =
  [ "int"; "bool"; "unit"; "char"; "float"; "int32"; "int64"; "nativeint";
    "Stdlib.Int32.t"; "Stdlib.Int64.t" ]

(* Can a value of this type carry secret bytes? Immediates cannot. *)
let could_carry_secret (d : def) (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      not (List.mem (d.d_resolve_ty p) immediate_types)
  | _ -> true

(* Parameter idents of a def body: descend the curried Texp_function chain,
   binding both the function parameter and any pattern-bound idents of its
   cases to the same parameter index. Returns (param_index, ident) pairs
   and the innermost bodies. *)
let params_of_body body =
  let binds = ref [] in
  let rec go i (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { param; cases; _ } ->
        binds := (i, param) :: !binds;
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            List.iter
              (fun id -> binds := (i, id) :: !binds)
              (Typedtree.pat_bound_idents c.c_lhs);
            match cases with [ _ ] -> go (i + 1) c.c_rhs | _ -> ())
          cases
    | _ -> ()
  in
  go 0 body;
  List.rev !binds
