(* The per-file syntactic rule engine behind treaty-lint.

   This is the Parsetree half of TreatyCheck: zone rules that are purely
   about *which module is mentioned where* (trust zones, determinism bans,
   protocol hygiene) and need no types or cross-module resolution. The
   interprocedural passes (Ir/Taint/Determinism/Lanes) pick up where these
   stop: a violation laundered through a helper function is invisible here
   and caught there.

   Rules:

   - crypto-primitive: the cipher/MAC primitives (Chacha20, Hmac) may only
     be touched inside lib/crypto; everything else goes through Aead/Keys.
   - untrusted-zone: code modelling the untrusted world (lib/netsim,
     lib/memalloc, lib/storage/ssd.ml) must never reference Keys or Aead —
     key material and sealing live on the enclave side of the boundary.
   - hw-counter: Hw_counter (the raw SGX monotonic counter) is private to
     lib/tee; the rest of the tree uses Enclave / the ROTE protocol.
   - obs-zone: the observability layer (lib/obs) watches the protocol, it
     does not participate in it — no key material (Keys), no sealing
     (Aead).
   - cache-zone: the verified block cache (lib/storage/block_cache.ml)
     holds decrypted, already-verified SSTable blocks in enclave memory;
     no Ssd (plaintext back to the untrusted disk) and no Net (plaintext
     on the wire).
   - wire-zone: the RPC layer (lib/rpc) encodes and decodes through
     byte-region cursors over packet buffers; String.sub and ( ^ ) there
     reintroduce the per-message copy-and-concat the zero-copy path exists
     to eliminate.
   - nondeterminism: ambient sources of nondeterminism (Random,
     Unix.gettimeofday, Sys.time, Hashtbl.hash, Obj.magic) break the
     seeded-simulation reproducibility contract.
   - wildcard-match: protocol decode paths (node.ml, counter_client.ml)
     must match exhaustively — a wildcard arm silently swallows new message
     kinds and status codes.
   - partial-failure: library code must return typed errors; failwith and
     assert false turn protocol failures into process aborts. *)

type zone = Crypto | Tee | Untrusted | Obs | Other

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let zone_of path =
  if contains path "lib/crypto/" then Crypto
  else if contains path "lib/tee/" then Tee
  else if
    contains path "lib/netsim/" || contains path "lib/memalloc/"
    || String.ends_with ~suffix:"lib/storage/ssd.ml" path
  then Untrusted
  else if contains path "lib/obs/" then Obs
  else Other

(* --- the rule engine ----------------------------------------------------- *)

let lint ~path structure =
  let zone = zone_of path in
  let base = Filename.basename path in
  let protocol_file = base = "node.ml" || base = "counter_client.ml" in
  let cache_file = contains path "lib/storage/" && contains base "block_cache" in
  let wire_file = contains path "lib/rpc/" in
  let out = ref [] in
  let report (loc : Location.t) rule message =
    out :=
      Diag.v ~file:path ~line:loc.loc_start.Lexing.pos_lnum ~rule message
      :: !out
  in
  (* Module names banned in this file, by zone. *)
  let banned_modules =
    [ ( "Random",
        ( "nondeterminism",
          "ambient PRNG breaks seeded reproducibility; use Treaty_sim.Rng" ) )
    ]
    @ (match zone with
      | Crypto -> []
      | _ ->
          [ ( "Chacha20",
              ( "crypto-primitive",
                "cipher primitive is private to lib/crypto; use Aead" ) );
            ( "Hmac",
              ( "crypto-primitive",
                "MAC primitive is private to lib/crypto; use Aead/Keys" ) )
          ])
    @ (match zone with
      | Tee -> []
      | _ ->
          [ ( "Hw_counter",
              ( "hw-counter",
                "raw SGX counter is private to lib/tee; use Enclave" ) )
          ])
    @ (match zone with
      | Obs ->
          [ ( "Keys",
              ( "obs-zone",
                "the observability layer must not handle key material" ) );
            ( "Aead",
              ( "obs-zone",
                "the observability layer must not seal or open data" ) )
          ]
      | _ -> [])
    @ (if cache_file then
         [ ( "Ssd",
             ( "cache-zone",
               "the block cache holds decrypted blocks; plaintext must \
                never flow back to the untrusted SSD" ) );
           ( "Net",
             ( "cache-zone",
               "the block cache holds decrypted blocks; plaintext must \
                never reach the network" ) )
         ]
       else [])
    @
    match zone with
    | Untrusted ->
        [ ( "Keys",
            ( "untrusted-zone",
              "untrusted code (netsim/ssd/memalloc) must not handle key \
               material" ) );
          ( "Aead",
            ( "untrusted-zone",
              "untrusted code (netsim/ssd/memalloc) must not seal or open \
               data" ) )
        ]
    | _ -> []
  in
  let check_component loc name =
    match List.assoc_opt name banned_modules with
    | Some (rule, msg) -> report loc rule (name ^ ": " ^ msg)
    | None -> ()
  in
  (* [value] marks a value path (last component is the value, not a module). *)
  let check_modules loc lid ~value =
    let comps = Longident.flatten lid in
    let n = List.length comps in
    List.iteri
      (fun i c -> if (not value) || i < n - 1 then check_component loc c)
      comps
  in
  let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l in
  let check_value loc lid =
    match strip_stdlib (Longident.flatten lid) with
    | [ "String"; "sub" ] when wire_file ->
        report loc "wire-zone"
          "String.sub in the wire hot path allocates a copy per message; \
           slice byte regions of the packet buffer (Bytes.sub_string / blit)"
    | [ "^" ] when wire_file ->
        report loc "wire-zone"
          "string concatenation in the wire hot path; write through a \
           cursor into the packet buffer instead"
    | [ "Unix"; "gettimeofday" ] ->
        report loc "nondeterminism"
          "Unix.gettimeofday: wall-clock read; simulated time comes from \
           Sim.now"
    | [ "Sys"; "time" ] ->
        report loc "nondeterminism"
          "Sys.time: host CPU clock; simulated time comes from Sim.now"
    | [ "Hashtbl"; "hash" ] ->
        report loc "nondeterminism"
          "Hashtbl.hash varies across runtimes; use Treaty_util.Fnv.hash"
    | [ "Obj"; "magic" ] ->
        report loc "nondeterminism" "Obj.magic defeats the type system"
    | [ "failwith" ] ->
        report loc "partial-failure"
          "failwith: library code returns typed errors, it does not raise \
           Failure"
    | _ -> ()
  in
  let open Ast_iterator in
  let super = default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        check_modules loc txt ~value:true;
        check_value loc txt
    | Pexp_construct ({ txt; loc }, _) -> check_modules loc txt ~value:true
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        report e.pexp_loc "partial-failure"
          "assert false: encode the invariant in types or return an error"
    | (Pexp_match (_, cases) | Pexp_function cases) when protocol_file ->
        List.iter
          (fun (c : Parsetree.case) ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any ->
                report c.pc_lhs.ppat_loc "wildcard-match"
                  "wildcard arm in a protocol match silently swallows new \
                   message kinds; match exhaustively"
            | _ -> ())
          cases
    | _ -> ());
    super.expr self e
  in
  let pat self (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; loc }, _) -> check_modules loc txt ~value:true
    | _ -> ());
    super.pat self p
  in
  let typ self (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; loc }, _) -> check_modules loc txt ~value:true
    | _ -> ());
    super.typ self t
  in
  let module_expr self (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_modules loc txt ~value:false
    | _ -> ());
    super.module_expr self m
  in
  let it = { super with expr; pat; typ; module_expr } in
  it.structure it structure;
  List.rev !out

(* --- parsing ------------------------------------------------------------- *)

let parse_source ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let lint_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match parse_source ~path src with
  | structure -> lint ~path structure
  | exception e ->
      Printf.eprintf "%s: parse error\n" path;
      (try Location.report_exception Format.err_formatter e
       with _ -> Printf.eprintf "%s\n" (Printexc.to_string e));
      exit 2

(* [into_hidden] descends into dot-directories — needed when gathering .cmt
   files, which dune keeps under .objs/. *)
let rec gather ?(suffix = ".ml") ?(into_hidden = false) acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if
             String.length name = 0 || name = "_build"
             || (name.[0] = '.' && not into_hidden)
           then acc
           else gather ~suffix ~into_hidden acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path suffix then path :: acc
  else acc

(* --- self-test ----------------------------------------------------------- *)

(* (synthetic filename, source, rules expected to fire). Filenames steer the
   zone logic; the sources never touch the real tree. *)
let self_tests =
  [ ("lib/core/node.ml", "let f x = match x with 0 -> () | _ -> ()",
     [ "wildcard-match" ]);
    ("lib/counter/counter_client.ml", "let f = function Some x -> x | _ -> 0",
     [ "wildcard-match" ]);
    ("lib/core/cluster.ml", "let f x = match x with 0 -> () | _ -> ()", []);
    ("lib/storage/engine.ml", "let x = Hmac.mac k m", [ "crypto-primitive" ]);
    ("lib/storage/engine.ml", "let x = Treaty_crypto.Chacha20.encrypt",
     [ "crypto-primitive" ]);
    ("lib/storage/engine.ml", "module H = Treaty_crypto.Hmac",
     [ "crypto-primitive" ]);
    ("lib/crypto/keys.ml", "let x = Hmac.mac k m", []);
    ("lib/netsim/net.ml", "let x = Keys.master_of_secret s",
     [ "untrusted-zone" ]);
    ("lib/storage/ssd.ml", "let x = Aead.seal", [ "untrusted-zone" ]);
    ("lib/memalloc/mempool.ml", "module K = Treaty_crypto.Keys",
     [ "untrusted-zone" ]);
    ("lib/storage/engine.ml", "let x = Keys.client_token m", []);
    ("lib/storage/engine.ml", "let x = Treaty_tee.Hw_counter.read c",
     [ "hw-counter" ]);
    ("lib/tee/enclave.ml", "let x = Hw_counter.read c", []);
    ("lib/obs/trace.ml", "let k = Keys.master_of_secret s", [ "obs-zone" ]);
    ("lib/obs/metrics.ml", "let x = Treaty_crypto.Aead.seal", [ "obs-zone" ]);
    ("lib/obs/trace.ml", "let c = Hw_counter.read c", [ "hw-counter" ]);
    ("lib/obs/trace.ml", "let t = Unix.gettimeofday ()",
     [ "nondeterminism" ]);
    ("lib/obs/trace.ml", "let x = Metrics.incr \"a\"", []);
    ("lib/core/node.ml", "let x = Random.int 5", [ "nondeterminism" ]);
    ("lib/core/node.ml", "open Random", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let x = Unix.gettimeofday ()",
     [ "nondeterminism" ]);
    ("lib/core/node.ml", "let x = Sys.time ()", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let h = Hashtbl.hash key", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let h = Stdlib.Hashtbl.hash key",
     [ "nondeterminism" ]);
    ("lib/core/node.ml", "let t = Hashtbl.create 8", []);
    ("lib/core/node.ml", "let x = Obj.magic 3", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let x () = failwith \"boom\"",
     [ "partial-failure" ]);
    ("lib/core/node.ml", "let x () = assert false", [ "partial-failure" ]);
    ("lib/core/node.ml", "let x b = assert b", []);
    ("lib/core/node.ml", "let x = try f () with _ -> 0", []);
    ("lib/core/node.ml", "let x = 1", []);
    ("lib/storage/block_cache.ml", "let spill ssd e v = Ssd.append ssd e v",
     [ "cache-zone" ]);
    ("lib/storage/block_cache.ml",
     "let leak net v = Treaty_netsim.Net.send net v", [ "cache-zone" ]);
    ("lib/storage/block_cache.ml", "let t = Hashtbl.create 8", []);
    ("lib/storage/engine.ml", "let x = Ssd.read ssd", []);
    ("lib/rpc/secure_msg.ml", "let x = String.sub s 0 4", [ "wire-zone" ]);
    ("lib/rpc/secure_msg.ml", "let x = Stdlib.String.sub s 0 4",
     [ "wire-zone" ]);
    ("lib/rpc/erpc.ml", "let x = a ^ b", [ "wire-zone" ]);
    ("lib/rpc/erpc.ml", "let x = Bytes.sub_string b 0 4", []);
    ("lib/rpc/transport.ml", "let x = a ^ b", [ "wire-zone" ]);
    ("lib/core/node.ml", "let x = String.sub s 0 4", [])
  ]

let run_self_test () =
  let failures = ref 0 in
  List.iteri
    (fun i (path, src, expected) ->
      let fired =
        lint ~path (parse_source ~path src)
        |> List.map (fun (v : Diag.violation) -> v.rule)
        |> List.sort_uniq compare
      in
      let expected = List.sort_uniq compare expected in
      if fired <> expected then begin
        incr failures;
        Printf.printf "self-test %d (%s): expected [%s], got [%s]\n  %s\n" i
          path
          (String.concat "; " expected)
          (String.concat "; " fired)
          src
      end)
    self_tests;
  if !failures = 0 then begin
    Printf.printf "treaty-lint self-test: %d cases ok\n"
      (List.length self_tests);
    0
  end
  else begin
    Printf.printf "treaty-lint self-test: %d failures\n" !failures;
    1
  end

(* Every rule this engine can emit — drivers use it to partition the shared
   allowlist between treaty-lint and treatycheck. *)
let rules =
  [ "wildcard-match"; "crypto-primitive"; "untrusted-zone"; "hw-counter";
    "obs-zone"; "nondeterminism"; "partial-failure"; "cache-zone";
    "wire-zone" ]
