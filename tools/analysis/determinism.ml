(* Determinism effects: transitive "nondet" reachability.

   A def has a direct nondet *leaf* if it references one of the banned
   ambient primitives (Random, Unix.gettimeofday, Sys.time, Hashtbl.hash,
   Obj.magic — the same table the syntactic lint bans per-file) or applies
   physical equality to a value of mutable type (array, bytes, ref, or any
   record with mutable fields — pointer identity of mutable store is
   allocation-order dependent, which the seeded simulation must not
   observe).

   The pass then runs a multi-source BFS from the protocol entry points
   (Node handlers, Scheduler/Sim callbacks, Chaos schedules, any handle_
   def) over the whole-program call graph and reports every leaf
   reachable from an entry, with the witness call chain. This replaces the
   old "is the identifier mentioned in this file" heuristic with real
   reachability: a nondet call three helpers below a handler is still a
   violation, while one in dead bench-only code is not. *)

let rule = "nondet-effect"

type leaf = { lf_line : int; lf_msg : string }

let run (spec : Spec.t) (prog : Ir.program) : Diag.violation list =
  (* Direct leaves per def: banned references plus phys-eq-on-mutables. *)
  let leaves_of (d : Ir.def) =
    let from_calls =
      List.filter_map
        (fun (callee, line) ->
          match spec.nondet_leaf callee with
          | Some msg -> Some { lf_line = line; lf_msg = msg }
          | None -> None)
        (Ir.calls_of prog d.d_name)
    in
    let phys = ref [] in
    let mutable_head ty =
      let h = Ir.type_head d ty in
      h = "array" || h = "bytes" || h = "Stdlib.ref" || h = "ref"
      || Hashtbl.mem prog.mutable_types h
    in
    let open Tast_iterator in
    let super = default_iterator in
    let expr self (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply (f, args) -> (
          match f.exp_desc with
          | Texp_ident (p, _, _)
            when (let n = d.d_resolve p in
                  n = "Stdlib.==" || n = "Stdlib.!=") -> (
              match args with
              | (_, Some a) :: _ when mutable_head a.exp_type ->
                  phys :=
                    {
                      lf_line = Ir.line_of e.exp_loc;
                      lf_msg =
                        "physical equality on a mutable value ("
                        ^ Ir.type_head d a.exp_type
                        ^ ") observes allocation order";
                    }
                    :: !phys
              | _ -> ())
          | _ -> ())
      | _ -> ());
      super.expr self e
    in
    let it = { super with expr } in
    it.expr it d.d_body;
    from_calls @ List.rev !phys
  in
  (* BFS from the entry set over the call graph. *)
  let parent : (string, string * int) Hashtbl.t = Hashtbl.create 256 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun name ->
      let d = Hashtbl.find prog.defs name in
      if spec.entry d && not (Hashtbl.mem visited name) then begin
        Hashtbl.replace visited name ();
        Queue.push name queue
      end)
    prog.order;
  let order_reached = ref [] in
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    order_reached := name :: !order_reached;
    List.iter
      (fun (callee, line) ->
        if Hashtbl.mem prog.defs callee && not (Hashtbl.mem visited callee)
        then begin
          Hashtbl.replace visited callee ();
          Hashtbl.replace parent callee (name, line);
          Queue.push callee queue
        end)
      (Ir.calls_of prog name)
  done;
  let chain_to name =
    (* Frames from the entry point down to [name] (inclusive of callers,
       excluding the leaf line which is the violation site itself). *)
    let rec up acc name =
      match Hashtbl.find_opt parent name with
      | None -> acc
      | Some (caller, line) ->
          let d = Hashtbl.find prog.defs caller in
          up
            ({ Diag.fr_def = caller; fr_file = d.d_file; fr_line = line }
            :: acc)
            caller
    in
    up [] name
  in
  let seen = Hashtbl.create 32 in
  List.rev !order_reached
  |> List.concat_map (fun name ->
         let d = Hashtbl.find prog.defs name in
         List.filter_map
           (fun lf ->
             let key = (d.d_file, lf.lf_line, lf.lf_msg) in
             if Hashtbl.mem seen key then None
             else begin
               Hashtbl.replace seen key ();
               let chain =
                 chain_to name
                 @ [ { Diag.fr_def = name; fr_file = d.d_file;
                       fr_line = lf.lf_line } ]
               in
               Some
                 (Diag.v ~file:d.d_file ~line:lf.lf_line ~rule ~chain
                    ("nondeterministic effect reachable from a protocol \
                      entry point: " ^ lf.lf_msg))
             end)
           (leaves_of d))
