(* TreatyCheck --expect-fail fixture (nondet-effect).

   An ambient PRNG call three frames below a protocol handler. The
   syntactic lint only flags Random in protocol *files*; the determinism
   pass must follow handle_retry -> pick -> backoff -> roll and report the
   Random.int site with that chain. Replacing [roll] with a constant makes
   this file analyze clean. *)

let roll () = Random.int 1000

let backoff n = n + roll ()

let pick n = backoff n * 2

let handle_retry n = pick n
