(* TreatyCheck --expect-fail fixture (taint-escape).

   A derived subkey is laundered through two string helpers and shipped on
   the untrusted wire without Aead.seal. The taint pass must report the
   Net.send site inside [ship] with a witness chain handle_leak -> relay ->
   ship. Deleting the [Keys.derive] call (or sealing the payload) makes
   this file analyze clean. *)

module Keys = Treaty_crypto.Keys
module Net = Treaty_netsim.Net

let massage k = String.sub k 0 16

let ship net body = Net.send net ~src:0 ~dst:1 body

let relay net body = ship net ("hdr:" ^ body)

let handle_leak net master = relay net (massage (Keys.derive master "fixture"))
