(* TreatyCheck --expect-fail fixture (lock-order).

   Two transactions acquire the same two named locks in opposite orders —
   the classic ABBA deadlock. The lane/lock pass classifies each acquire
   by its literal ~key and must report the cycle "acct:A" -> "acct:B" ->
   "acct:A" with both acquisition sites. Swapping the acquire order in
   [txb] makes this file analyze clean. *)

module Lock_table = Treaty_core.Lock_table

let txa lt ~owner =
  ignore (Lock_table.acquire lt ~owner ~key:"acct:A" Lock_table.Write);
  ignore (Lock_table.acquire lt ~owner ~key:"acct:B" Lock_table.Write);
  Lock_table.release_all lt ~owner

let txb lt ~owner =
  ignore (Lock_table.acquire lt ~owner ~key:"acct:B" Lock_table.Write);
  ignore (Lock_table.acquire lt ~owner ~key:"acct:A" Lock_table.Write);
  Lock_table.release_all lt ~owner
