(* TreatyCheck --expect-fail fixture (lane-race).

   The same mutable field is written from two different scheduler lanes
   (literal keys 0 and 1) with no Lock_table.acquire on either path: jobs
   on different lanes interleave at every blocking point, so the increments
   race. The lane pass must report field [shared.hits] written from lane
   classes #0 and #1. Routing both writes through one lane key makes this
   file analyze clean. *)

module Scheduler = Treaty_sched.Scheduler

type shared = { mutable hits : int }

let cell = { hits = 0 }

let bump_even () = cell.hits <- cell.hits + 1

let pump lanes =
  Scheduler.Lanes.submit lanes 0 bump_even;
  Scheduler.Lanes.submit lanes 1 (fun () -> cell.hits <- cell.hits + 7)
