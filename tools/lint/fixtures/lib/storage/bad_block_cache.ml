(* Seeded violations for the cache-zone rule: the verified block cache
   holds decrypted SSTable blocks inside the enclave, so the module must
   be pure bookkeeping — any Ssd or Net reference is an escape hatch for
   plaintext. The runtest rule asserts the checker flags every construct
   below. Parsed by the lint, never compiled. *)

let spill_to_disk ssd enclave plain = Ssd.append ssd ~enclave "cache-dump" plain
let ship_over_wire net dst plain = Treaty_netsim.Net.send net ~dst plain
