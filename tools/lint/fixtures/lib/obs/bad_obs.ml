(* Seeded violations for the obs-zone rule: lib/obs observes the protocol,
   it never participates. The runtest rule asserts the checker flags every
   construct below. Parsed by the lint, never compiled. *)

let master = Keys.master_of_secret "secret"
let sealed = Treaty_crypto.Aead.seal
let raw_counter = Treaty_tee.Hw_counter.read ()
let wall_clock_ts = Unix.gettimeofday ()
let ambient = Random.bits ()
