(* Seeded wire-zone violations: the encode/decode hot paths of the RPC
   layer must run over byte-region cursors, never copy-and-concat. The
   runtest rule asserts the lint flags this file (non-zero exit). Parsed by
   the lint, never compiled. *)

let frame header body = header ^ body
let peel_iv wire = String.sub wire 1 12
let slice_meta wire off = Stdlib.String.sub wire off 80
