(* Seeded violations for treaty-lint: the runtest rule asserts that the
   checker flags every construct below (non-zero exit). This file is parsed
   by the lint, never compiled. *)

let token = Hmac.mac "key" "msg"
let stream = Chacha20.encrypt
let counter = Treaty_tee.Hw_counter.read ()
let dice = Random.int 6
let wall_clock = Unix.gettimeofday ()
let cpu_clock = Sys.time ()
let bucket = Hashtbl.hash "key"
let cast : int = Obj.magic "zero"
let boom () = failwith "boom"
let unreachable () = assert false
