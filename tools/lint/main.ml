(* treaty-lint: trust-zone, determinism and protocol-hygiene checker.

   This is a thin driver: the rule engine (zones, banned-module tables, the
   AST walk and its self-tests) lives in tools/analysis as [Syntactic],
   where TreatyCheck's interprocedural passes share the same diagnostics
   and allowlist machinery. See tools/analysis/syntactic.ml for the rules
   themselves:

     crypto-primitive, untrusted-zone, hw-counter, obs-zone, cache-zone,
     wire-zone, nondeterminism, wildcard-match, partial-failure

   Violations print as "file:line: [rule] message" and make the exit status
   non-zero. Justified exceptions live in the allowlist file shared with
   treatycheck (--allowlist, one "path-suffix rule reason..." entry per
   line, reason mandatory); entries for rules this tool does not own are
   treatycheck's business and are ignored here, while entries for our rules
   that suppress nothing are reported so the list cannot rot. *)

let () =
  let allowlist = ref "" in
  let self_test = ref false in
  let expect_fail = ref false in
  let paths = ref [] in
  let spec =
    [ ("--allowlist", Arg.Set_string allowlist,
       "FILE justified exceptions (path-suffix rule reason... per line)");
      ("--self-test", Arg.Set self_test,
       " run the built-in rule-engine checks and exit");
      ("--expect-fail", Arg.Set expect_fail,
       " invert the exit status: succeed only if violations are found")
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "treaty-lint [options] FILE-OR-DIR...";
  if !self_test then exit (Syntactic.run_self_test ());
  let files = List.concat_map (fun p -> Syntactic.gather [] p) (List.rev !paths) in
  if files = [] then begin
    prerr_endline "treaty-lint: no .ml files to check";
    exit 2
  end;
  let violations = List.concat_map Syntactic.lint_file files in
  let allows =
    if !allowlist = "" then []
    else
      Diag.load_allowlist !allowlist
      |> List.filter (fun (a : Diag.allow) ->
             List.mem a.a_rule Syntactic.rules
             && List.exists
                  (fun file -> String.ends_with ~suffix:a.suffix file)
                  files)
  in
  exit
    (Diag.finish ~label:"treaty-lint" ~expect_fail:!expect_fail ~allows
       ~files:(List.length files) violations)
