(* treaty-lint: trust-zone, determinism and protocol-hygiene checker.

   Parses every .ml file it is given (or finds under the directories it is
   given) with the compiler's own parser and walks the AST looking for
   references that violate the codebase's security architecture:

   - crypto-primitive: the cipher/MAC primitives (Chacha20, Hmac) may only
     be touched inside lib/crypto; everything else goes through Aead/Keys.
   - untrusted-zone: code modelling the untrusted world (lib/netsim,
     lib/memalloc, lib/storage/ssd.ml) must never reference Keys or Aead —
     key material and sealing live on the enclave side of the boundary.
   - hw-counter: Hw_counter (the raw SGX monotonic counter) is private to
     lib/tee; the rest of the tree uses Enclave / the ROTE protocol.
   - obs-zone: the observability layer (lib/obs) watches the protocol, it
     does not participate in it — no key material (Keys), no sealing
     (Aead); Hw_counter is already banned there by hw-counter, and the
     nondeterminism rules keep its clock injected.
   - cache-zone: the verified block cache (lib/storage/block_cache.ml)
     holds decrypted, already-verified SSTable blocks in enclave memory;
     it must stay pure bookkeeping — no Ssd (plaintext written back to the
     untrusted disk) and no Net (plaintext on the wire). TreatySan taints
     the cached bytes at runtime; this rule keeps the escape hatches out
     of the module statically.
   - wire-zone: the RPC layer (lib/rpc) encodes and decodes through
     byte-region cursors over packet buffers; String.sub and ( ^ ) there
     reintroduce the per-message copy-and-concat the zero-copy path exists
     to eliminate.
   - nondeterminism: ambient sources of nondeterminism (Random,
     Unix.gettimeofday, Sys.time, Hashtbl.hash, Obj.magic) break the
     seeded-simulation reproducibility contract.
   - wildcard-match: protocol decode paths (node.ml, counter_client.ml)
     must match exhaustively — a wildcard arm silently swallows new message
     kinds and status codes.
   - partial-failure: library code must return typed errors; failwith and
     assert false turn protocol failures into process aborts.

   Violations print as "file:line: [rule] message" and make the exit status
   non-zero. Justified exceptions live in an allowlist file (--allowlist):
   one "path-suffix rule reason..." entry per line, reason mandatory, and
   unused entries are themselves reported so the list cannot rot. *)

type zone = Crypto | Tee | Untrusted | Obs | Other

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let zone_of path =
  if contains path "lib/crypto/" then Crypto
  else if contains path "lib/tee/" then Tee
  else if
    contains path "lib/netsim/" || contains path "lib/memalloc/"
    || String.ends_with ~suffix:"lib/storage/ssd.ml" path
  then Untrusted
  else if contains path "lib/obs/" then Obs
  else Other

type violation = { file : string; line : int; rule : string; message : string }

(* --- the rule engine ----------------------------------------------------- *)

let lint ~path structure =
  let zone = zone_of path in
  let base = Filename.basename path in
  let protocol_file = base = "node.ml" || base = "counter_client.ml" in
  let cache_file = contains path "lib/storage/" && contains base "block_cache" in
  let wire_file = contains path "lib/rpc/" in
  let out = ref [] in
  let report (loc : Location.t) rule message =
    out :=
      { file = path; line = loc.loc_start.Lexing.pos_lnum; rule; message }
      :: !out
  in
  (* Module names banned in this file, by zone. *)
  let banned_modules =
    [ ( "Random",
        ( "nondeterminism",
          "ambient PRNG breaks seeded reproducibility; use Treaty_sim.Rng" ) )
    ]
    @ (match zone with
      | Crypto -> []
      | _ ->
          [ ( "Chacha20",
              ( "crypto-primitive",
                "cipher primitive is private to lib/crypto; use Aead" ) );
            ( "Hmac",
              ( "crypto-primitive",
                "MAC primitive is private to lib/crypto; use Aead/Keys" ) )
          ])
    @ (match zone with
      | Tee -> []
      | _ ->
          [ ( "Hw_counter",
              ( "hw-counter",
                "raw SGX counter is private to lib/tee; use Enclave" ) )
          ])
    @ (match zone with
      | Obs ->
          [ ( "Keys",
              ( "obs-zone",
                "the observability layer must not handle key material" ) );
            ( "Aead",
              ( "obs-zone",
                "the observability layer must not seal or open data" ) )
          ]
      | _ -> [])
    @ (if cache_file then
         [ ( "Ssd",
             ( "cache-zone",
               "the block cache holds decrypted blocks; plaintext must \
                never flow back to the untrusted SSD" ) );
           ( "Net",
             ( "cache-zone",
               "the block cache holds decrypted blocks; plaintext must \
                never reach the network" ) )
         ]
       else [])
    @
    match zone with
    | Untrusted ->
        [ ( "Keys",
            ( "untrusted-zone",
              "untrusted code (netsim/ssd/memalloc) must not handle key \
               material" ) );
          ( "Aead",
            ( "untrusted-zone",
              "untrusted code (netsim/ssd/memalloc) must not seal or open \
               data" ) )
        ]
    | _ -> []
  in
  let check_component loc name =
    match List.assoc_opt name banned_modules with
    | Some (rule, msg) -> report loc rule (name ^ ": " ^ msg)
    | None -> ()
  in
  (* [value] marks a value path (last component is the value, not a module). *)
  let check_modules loc lid ~value =
    let comps = Longident.flatten lid in
    let n = List.length comps in
    List.iteri
      (fun i c -> if (not value) || i < n - 1 then check_component loc c)
      comps
  in
  let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l in
  let check_value loc lid =
    match strip_stdlib (Longident.flatten lid) with
    | [ "String"; "sub" ] when wire_file ->
        report loc "wire-zone"
          "String.sub in the wire hot path allocates a copy per message; \
           slice byte regions of the packet buffer (Bytes.sub_string / blit)"
    | [ "^" ] when wire_file ->
        report loc "wire-zone"
          "string concatenation in the wire hot path; write through a \
           cursor into the packet buffer instead"
    | [ "Unix"; "gettimeofday" ] ->
        report loc "nondeterminism"
          "Unix.gettimeofday: wall-clock read; simulated time comes from \
           Sim.now"
    | [ "Sys"; "time" ] ->
        report loc "nondeterminism"
          "Sys.time: host CPU clock; simulated time comes from Sim.now"
    | [ "Hashtbl"; "hash" ] ->
        report loc "nondeterminism"
          "Hashtbl.hash varies across runtimes; use Treaty_util.Fnv.hash"
    | [ "Obj"; "magic" ] ->
        report loc "nondeterminism" "Obj.magic defeats the type system"
    | [ "failwith" ] ->
        report loc "partial-failure"
          "failwith: library code returns typed errors, it does not raise \
           Failure"
    | _ -> ()
  in
  let open Ast_iterator in
  let super = default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        check_modules loc txt ~value:true;
        check_value loc txt
    | Pexp_construct ({ txt; loc }, _) -> check_modules loc txt ~value:true
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        report e.pexp_loc "partial-failure"
          "assert false: encode the invariant in types or return an error"
    | (Pexp_match (_, cases) | Pexp_function cases) when protocol_file ->
        List.iter
          (fun (c : Parsetree.case) ->
            match c.pc_lhs.ppat_desc with
            | Ppat_any ->
                report c.pc_lhs.ppat_loc "wildcard-match"
                  "wildcard arm in a protocol match silently swallows new \
                   message kinds; match exhaustively"
            | _ -> ())
          cases
    | _ -> ());
    super.expr self e
  in
  let pat self (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; loc }, _) -> check_modules loc txt ~value:true
    | _ -> ());
    super.pat self p
  in
  let typ self (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; loc }, _) -> check_modules loc txt ~value:true
    | _ -> ());
    super.typ self t
  in
  let module_expr self (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_modules loc txt ~value:false
    | _ -> ());
    super.module_expr self m
  in
  let it = { super with expr; pat; typ; module_expr } in
  it.structure it structure;
  List.rev !out

(* --- parsing ------------------------------------------------------------- *)

let parse_source ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let lint_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match parse_source ~path src with
  | structure -> lint ~path structure
  | exception e ->
      Printf.eprintf "%s: parse error\n" path;
      (try Location.report_exception Format.err_formatter e
       with _ -> Printf.eprintf "%s\n" (Printexc.to_string e));
      exit 2

let rec gather acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if String.length name = 0 || name.[0] = '.' || name = "_build" then
             acc
           else gather acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* --- allowlist ----------------------------------------------------------- *)

type allow = {
  suffix : string;
  a_rule : string;
  reason : string;
  mutable used : bool;
}

let load_allowlist path =
  let ic = open_in path in
  let rec lines acc n =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then lines acc (n + 1)
        else
          let fields =
            String.split_on_char ' ' line
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun s -> s <> "")
          in
          (match fields with
          | suffix :: a_rule :: (_ :: _ as reason_words) ->
              lines
                ({ suffix; a_rule; reason = String.concat " " reason_words;
                   used = false }
                :: acc)
                (n + 1)
          | _ ->
              Printf.eprintf
                "%s:%d: malformed allowlist entry (want: path-suffix rule \
                 reason...)\n"
                path n;
              exit 2)
  in
  lines [] 1

let allowed allows (v : violation) =
  List.exists
    (fun a ->
      if a.a_rule = v.rule && String.ends_with ~suffix:a.suffix v.file then begin
        a.used <- true;
        true
      end
      else false)
    allows

(* --- self-test ----------------------------------------------------------- *)

(* (synthetic filename, source, rules expected to fire). Filenames steer the
   zone logic; the sources never touch the real tree. *)
let self_tests =
  [ ("lib/core/node.ml", "let f x = match x with 0 -> () | _ -> ()",
     [ "wildcard-match" ]);
    ("lib/counter/counter_client.ml", "let f = function Some x -> x | _ -> 0",
     [ "wildcard-match" ]);
    ("lib/core/cluster.ml", "let f x = match x with 0 -> () | _ -> ()", []);
    ("lib/storage/engine.ml", "let x = Hmac.mac k m", [ "crypto-primitive" ]);
    ("lib/storage/engine.ml", "let x = Treaty_crypto.Chacha20.encrypt",
     [ "crypto-primitive" ]);
    ("lib/storage/engine.ml", "module H = Treaty_crypto.Hmac",
     [ "crypto-primitive" ]);
    ("lib/crypto/keys.ml", "let x = Hmac.mac k m", []);
    ("lib/netsim/net.ml", "let x = Keys.master_of_secret s",
     [ "untrusted-zone" ]);
    ("lib/storage/ssd.ml", "let x = Aead.seal", [ "untrusted-zone" ]);
    ("lib/memalloc/mempool.ml", "module K = Treaty_crypto.Keys",
     [ "untrusted-zone" ]);
    ("lib/storage/engine.ml", "let x = Keys.client_token m", []);
    ("lib/storage/engine.ml", "let x = Treaty_tee.Hw_counter.read c",
     [ "hw-counter" ]);
    ("lib/tee/enclave.ml", "let x = Hw_counter.read c", []);
    ("lib/obs/trace.ml", "let k = Keys.master_of_secret s", [ "obs-zone" ]);
    ("lib/obs/metrics.ml", "let x = Treaty_crypto.Aead.seal", [ "obs-zone" ]);
    ("lib/obs/trace.ml", "let c = Hw_counter.read c", [ "hw-counter" ]);
    ("lib/obs/trace.ml", "let t = Unix.gettimeofday ()",
     [ "nondeterminism" ]);
    ("lib/obs/trace.ml", "let x = Metrics.incr \"a\"", []);
    ("lib/core/node.ml", "let x = Random.int 5", [ "nondeterminism" ]);
    ("lib/core/node.ml", "open Random", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let x = Unix.gettimeofday ()",
     [ "nondeterminism" ]);
    ("lib/core/node.ml", "let x = Sys.time ()", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let h = Hashtbl.hash key", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let h = Stdlib.Hashtbl.hash key",
     [ "nondeterminism" ]);
    ("lib/core/node.ml", "let t = Hashtbl.create 8", []);
    ("lib/core/node.ml", "let x = Obj.magic 3", [ "nondeterminism" ]);
    ("lib/core/node.ml", "let x () = failwith \"boom\"",
     [ "partial-failure" ]);
    ("lib/core/node.ml", "let x () = assert false", [ "partial-failure" ]);
    ("lib/core/node.ml", "let x b = assert b", []);
    ("lib/core/node.ml", "let x = try f () with _ -> 0", []);
    ("lib/core/node.ml", "let x = 1", []);
    ("lib/storage/block_cache.ml", "let spill ssd e v = Ssd.append ssd e v",
     [ "cache-zone" ]);
    ("lib/storage/block_cache.ml",
     "let leak net v = Treaty_netsim.Net.send net v", [ "cache-zone" ]);
    ("lib/storage/block_cache.ml", "let t = Hashtbl.create 8", []);
    ("lib/storage/engine.ml", "let x = Ssd.read ssd", []);
    ("lib/rpc/secure_msg.ml", "let x = String.sub s 0 4", [ "wire-zone" ]);
    ("lib/rpc/secure_msg.ml", "let x = Stdlib.String.sub s 0 4",
     [ "wire-zone" ]);
    ("lib/rpc/erpc.ml", "let x = a ^ b", [ "wire-zone" ]);
    ("lib/rpc/erpc.ml", "let x = Bytes.sub_string b 0 4", []);
    ("lib/rpc/transport.ml", "let x = a ^ b", [ "wire-zone" ]);
    ("lib/core/node.ml", "let x = String.sub s 0 4", [])
  ]

let run_self_test () =
  let failures = ref 0 in
  List.iteri
    (fun i (path, src, expected) ->
      let fired =
        lint ~path (parse_source ~path src)
        |> List.map (fun v -> v.rule)
        |> List.sort_uniq compare
      in
      let expected = List.sort_uniq compare expected in
      if fired <> expected then begin
        incr failures;
        Printf.printf "self-test %d (%s): expected [%s], got [%s]\n  %s\n" i
          path
          (String.concat "; " expected)
          (String.concat "; " fired)
          src
      end)
    self_tests;
  if !failures = 0 then begin
    Printf.printf "treaty-lint self-test: %d cases ok\n"
      (List.length self_tests);
    exit 0
  end
  else begin
    Printf.printf "treaty-lint self-test: %d failures\n" !failures;
    exit 1
  end

(* --- driver -------------------------------------------------------------- *)

let () =
  let allowlist = ref "" in
  let self_test = ref false in
  let expect_fail = ref false in
  let paths = ref [] in
  let spec =
    [ ("--allowlist", Arg.Set_string allowlist,
       "FILE justified exceptions (path-suffix rule reason... per line)");
      ("--self-test", Arg.Set self_test,
       " run the built-in rule-engine checks and exit");
      ("--expect-fail", Arg.Set expect_fail,
       " invert the exit status: succeed only if violations are found")
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "treaty-lint [options] FILE-OR-DIR...";
  if !self_test then run_self_test ();
  let files = List.concat_map (gather []) (List.rev !paths) in
  if files = [] then begin
    prerr_endline "treaty-lint: no .ml files to check";
    exit 2
  end;
  let violations = List.concat_map lint_file files in
  let allows = if !allowlist = "" then [] else load_allowlist !allowlist in
  let remaining = List.filter (fun v -> not (allowed allows v)) violations in
  List.iter
    (fun v -> Printf.printf "%s:%d: [%s] %s\n" v.file v.line v.rule v.message)
    remaining;
  let unused = List.filter (fun a -> not a.used) allows in
  List.iter
    (fun a ->
      Printf.printf
        "%s: [allowlist] unused entry (rule %s) — remove it or fix the path\n"
        a.suffix a.a_rule)
    unused;
  let bad = remaining <> [] || unused <> [] in
  if !expect_fail then
    if remaining <> [] then begin
      Printf.printf "treaty-lint: violations found, as expected\n";
      exit 0
    end
    else begin
      prerr_endline "treaty-lint: --expect-fail but the input is clean";
      exit 1
    end
  else begin
    Printf.printf "treaty-lint: %d file(s), %d violation(s), %d allowlisted\n"
      (List.length files) (List.length remaining)
      (List.length violations - List.length remaining);
    exit (if bad then 1 else 0)
  end
