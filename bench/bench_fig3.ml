(* Figure 3: distributed transactions under TPC-C with 10 warehouses (heavy
   W-W conflicts) and 100 warehouses (low conflict), 3 nodes.

   Paper: 10W — Treaty 8x-11x slower than DS-RocksDB (780 tps); DS-RocksDB
   and the non-Stab Treaty variants saturate at 10 clients, the Stab variant
   scales to 16 because lock-free stabilization windows admit more requests.
   100W — overheads drop to 4x-6x (DS-RocksDB at 1200 tps); saturation moves
   from 60 to 84 clients for the Stab variant.

   The warehouse count is the contention knob, which is what the figure is
   about; per-warehouse table sizes are simulation-scaled (DESIGN.md §2). *)

open Treaty_core
module W = Treaty_workload

let systems =
  [
    ("DS-RocksDB", Config.ds_rocksdb, Types.Pessimistic);
    ("Treaty w/o Enc", Config.treaty_no_enc, Types.Pessimistic);
    ("Treaty w/ Enc", Config.treaty_enc, Types.Pessimistic);
    ("Treaty w/ Enc w/ Stab", Config.treaty_enc_stab, Types.Pessimistic);
    (* cc ablation rider: TPC-C transactions are all read-write, so this
       isolates OCC validation cost under contention (no ro fast path). *)
    ("Treaty w/ Stab OCC", Config.treaty_enc_stab, Types.Optimistic);
  ]

let tpcc_result ?(isolation = Types.Pessimistic) sim profile ~tpcc_cfg ~clients =
  let config = { (Common.base_config profile) with Config.isolation } in
  let nodes = config.Config.nodes in
  let route = W.Tpcc.route tpcc_cfg ~nodes in
  let cluster = Common.make_cluster sim config ~route () in
  let loader = Client.connect_exn cluster ~client_id:900 in
  W.Tpcc.load tpcc_cfg loader (Treaty_sim.Rng.create 11L);
  Client.disconnect loader;
  let warehouses = tpcc_cfg.W.Tpcc.warehouses in
  let r =
    W.Driver.run_clients cluster ~clients ~duration_ns:(Common.duration_ns ())
      ~warmup_ns:(Common.warmup_ns ())
      ~txn:(fun client ~client_index rng ->
        let home = 1 + (client_index mod warehouses) in
        W.Tpcc.run tpcc_cfg client rng ~nodes ~home (W.Tpcc.pick_kind rng))
      ()
  in
  Cluster.shutdown cluster;
  r

let run_warehouses ~label ~tpcc_cfg ~clients =
  Common.subsection label;
  let results =
    List.map
      (fun (name, profile, isolation) ->
        let r = ref None in
        Common.run_sim (fun sim ->
            r := Some (tpcc_result ~isolation sim profile ~tpcc_cfg ~clients));
        (name, Option.get !r))
      systems
  in
  let baseline = W.Driver.tps (snd (List.hd results)) in
  List.iter
    (fun (name, r) ->
      Common.print_row ~label:name ~tps:(W.Driver.tps r) ~baseline_tps:baseline
        ~mean_ms:(W.Driver.mean_ms r) ~p99:(W.Driver.p99_ms r))
    results

let run () =
  Common.section "Figure 3: distributed transactions, TPC-C";
  run_warehouses ~label:"10 warehouses (high contention)"
    ~tpcc_cfg:(W.Tpcc.config ~warehouses:10 ())
    ~clients:(if !Common.full_mode then 16 else 12);
  Common.expected "Treaty 8x-11x slower than DS-RocksDB (~780 tps)";
  let big =
    let c = W.Tpcc.config ~warehouses:100 () in
    (* Simulation-scaled per-warehouse tables; contention comes from the
       warehouse count. *)
    { c with W.Tpcc.items = 100; customers_per_district = 20 }
  in
  run_warehouses ~label:"100 warehouses (low contention)" ~tpcc_cfg:big
    ~clients:(if !Common.full_mode then 84 else 48);
  Common.expected "overheads drop to 4x-6x (DS-RocksDB ~1200 tps)"
