(* Figures 6 and 7: single-node transactions (one Treaty node), pessimistic
   (Fig. 6) and optimistic (Fig. 7) concurrency control, under TPC-C (10W)
   and YCSB (20%R and 80%R; 10 ops/tx, 1000 B values, uniform, 10k keys).

   Six systems: RocksDB (plain native engine), Native Treaty, Native Treaty
   w/ Enc, Treaty w/o Enc (SCONE), Treaty w/ Enc, Treaty w/ Enc w/ Stab.

   Paper (Fig. 6, pessimistic): Native Treaty ~= RocksDB; encryption adds
   little natively; SCONE w/o Enc ~1.6x, w/ Enc ~2x, w/ Stab ~2.1x on TPC-C;
   on YCSB the full system lands at ~3.2x-3.5x. (Fig. 7, optimistic): the
   full system is ~5x (TPC-C) and ~4x (YCSB) slower than RocksDB;
   stabilization costs ~10% latency but little throughput. *)

open Treaty_core
module W = Treaty_workload

let systems =
  [
    ("RocksDB", Config.ds_rocksdb);
    ("Native Treaty", Config.native_treaty);
    ("Native Treaty w/ Enc", Config.native_treaty_enc);
    ("Treaty w/o Enc", Config.treaty_no_enc);
    ("Treaty w/ Enc", Config.treaty_enc);
    ("Treaty w/ Enc w/ Stab", Config.treaty_enc_stab);
  ]

let single_node_config profile ~isolation =
  let c = Common.base_config profile in
  { c with Config.nodes = 1; isolation }

let ycsb_single sim profile ~isolation ~read_fraction ~clients =
  let config = single_node_config profile ~isolation in
  let cluster = Common.make_cluster sim config () in
  let ycsb = { W.Ycsb.default with W.Ycsb.read_fraction } in
  Common.load_ycsb cluster ycsb;
  let r =
    W.Driver.run_clients cluster ~clients ~duration_ns:(Common.duration_ns ())
      ~warmup_ns:(Common.warmup_ns ()) ~txn:(Common.ycsb_txn ycsb) ()
  in
  Cluster.shutdown cluster;
  r

let tpcc_single sim profile ~isolation ~clients =
  let config = single_node_config profile ~isolation in
  let tpcc_cfg = W.Tpcc.config ~warehouses:10 () in
  let cluster = Common.make_cluster sim config () in
  let loader = Client.connect_exn cluster ~client_id:900 in
  W.Tpcc.load tpcc_cfg loader (Treaty_sim.Rng.create 13L);
  Client.disconnect loader;
  let r =
    W.Driver.run_clients cluster ~clients ~duration_ns:(Common.duration_ns ())
      ~warmup_ns:(Common.warmup_ns ())
      ~txn:(fun client ~client_index rng ->
        let home = 1 + (client_index mod tpcc_cfg.W.Tpcc.warehouses) in
        W.Tpcc.run tpcc_cfg client rng ~nodes:1 ~home (W.Tpcc.pick_kind rng))
      ()
  in
  Cluster.shutdown cluster;
  r

let run_table ~isolation ~workloads =
  List.iter
    (fun (wl_label, runner) ->
      Common.subsection wl_label;
      let results =
        List.map
          (fun (name, profile) ->
            let r = ref None in
            Common.run_sim (fun sim -> r := Some (runner sim profile ~isolation));
            (name, Option.get !r))
          systems
      in
      let baseline = W.Driver.tps (snd (List.hd results)) in
      List.iter
        (fun (name, r) ->
          Common.print_row ~label:name ~tps:(W.Driver.tps r)
            ~baseline_tps:baseline ~mean_ms:(W.Driver.mean_ms r)
            ~p99:(W.Driver.p99_ms r))
        results)
    workloads

let workloads () =
  let clients = if !Common.full_mode then 32 else 24 in
  [
    ("TPC-C (10 warehouses)", fun sim p ~isolation -> tpcc_single sim p ~isolation ~clients);
    ( "YCSB write-heavy (20% reads)",
      fun sim p ~isolation -> ycsb_single sim p ~isolation ~read_fraction:0.2 ~clients );
    ( "YCSB read-heavy (80% reads)",
      fun sim p ~isolation -> ycsb_single sim p ~isolation ~read_fraction:0.8 ~clients );
  ]

let run_fig6 () =
  Common.section "Figure 6: single-node pessimistic transactions";
  run_table ~isolation:Types.Pessimistic ~workloads:(workloads ());
  Common.expected
    "Native ~= RocksDB; SCONE w/o Enc ~1.6x, w/ Enc ~2x, w/ Stab ~2.1x (TPC-C); ~2.7-3.5x (YCSB)"

let run_fig7 () =
  Common.section "Figure 7: single-node optimistic transactions";
  run_table ~isolation:Types.Optimistic ~workloads:(workloads ());
  Common.expected
    "full system ~5x (TPC-C) and ~4x (YCSB) slower than RocksDB; Stab ~10%% latency, little throughput"
