(* The pre-wheel event queue — a binary min-heap with lazy cancellation —
   kept verbatim as the baseline side of the event-loop micro-benchmark.
   The live tree replaced this with the hierarchical timer wheel in
   lib/sim/eventq.ml; benchmarking against a frozen copy keeps the
   comparison meaningful as the wheel evolves. Not linked anywhere else. *)

type handle = {
  time : int;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
  owner : t;
}

(* Binary min-heap over (time, seq). Cancellation is lazy: cancelled entries
   stay in the heap and are skipped when they reach the top. [live] counts
   non-cancelled entries so emptiness checks stay O(1). *)
and t = {
  mutable heap : handle option array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { heap = Array.make 64 None; len = 0; next_seq = 0; live = 0 }
let is_empty t = t.live = 0
let size t = t.live
let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)
let get t i = match t.heap.(i) with Some h -> h | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less (get t l) (get t !smallest) then smallest := l;
  if r < t.len && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) None in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let add t ~time fn =
  if t.len = Array.length t.heap then grow t;
  let h = { time; seq = t.next_seq; fn; cancelled = false; owner = t } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.len) <- Some h;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  h

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    h.owner.live <- h.owner.live - 1
  end

let pop_raw t =
  if t.len = 0 then None
  else begin
    let h = get t 0 in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some h
  end

let rec pop t =
  match pop_raw t with
  | None -> None
  | Some h when h.cancelled -> pop t
  | Some h ->
      t.live <- t.live - 1;
      Some (h.time, h.fn)
