(* Ablations for the design decisions DESIGN.md calls out. Not a paper
   figure; each isolates one mechanism the paper argues for.

   A. Group commit on/off (§VII-B): write-heavy single-node YCSB.
   B. MemTable values in host memory vs inside the EPC (§V-B/§VII-D): a big
      value set in the enclave triggers paging.
   C. Message buffers in host memory vs the naive SCONE port of eRPC that
      allocates them in the enclave and keeps rdtsc OCALLs (§VII-A).
   D. SGX hardware monotonic counters vs the ROTE-style service (§VI):
      per-stabilization latency and the wear-out budget.
   E. Commit-pipeline batching on/off: epoch stabilization rounds, Clog
      group commit and RPC burst coalescing together (§VII-B applied across
      transactions). *)

open Treaty_core
module Sim = Treaty_sim.Sim
module W = Treaty_workload
module Enclave = Treaty_tee.Enclave

let ycsb = { W.Ycsb.default with W.Ycsb.read_fraction = 0.2 }

let throughput ~engine_overrides ~config_overrides =
  let r = ref None in
  Common.run_sim (fun sim ->
      let config = Common.base_config Config.treaty_enc in
      let config = config_overrides { config with Config.nodes = 1 } in
      let config = { config with Config.engine = engine_overrides config.Config.engine } in
      let cluster = Common.make_cluster sim config () in
      Common.load_ycsb cluster ycsb;
      let res =
        W.Driver.run_clients cluster ~clients:(Common.scale_clients 32)
          ~duration_ns:(Common.duration_ns ()) ~warmup_ns:(Common.warmup_ns ())
          ~txn:(Common.ycsb_txn ycsb) ()
      in
      Cluster.shutdown cluster;
      r := Some (W.Driver.tps res, W.Driver.mean_ms res));
  Option.get !r

let row label (tps, ms) =
  Printf.printf "  %-36s %10.1f tps   lat %6.2f ms\n%!" label tps ms

(* Like [throughput] but distributed, parameterized on the full security
   profile (profiles carry the engine knobs with_profile applies). *)
let throughput_profile profile ~nodes =
  let r = ref None in
  Common.run_sim (fun sim ->
      let config = { (Common.base_config profile) with Config.nodes } in
      let cluster = Common.make_cluster sim config () in
      Common.load_ycsb cluster ycsb;
      let res =
        W.Driver.run_clients cluster ~clients:(Common.scale_clients 32)
          ~duration_ns:(Common.duration_ns ()) ~warmup_ns:(Common.warmup_ns ())
          ~txn:(Common.ycsb_txn ycsb) ()
      in
      Cluster.shutdown cluster;
      r := Some (W.Driver.tps res, W.Driver.mean_ms res));
  Option.get !r

(* Group commit amortizes device write latency: evaluate it on a device
   where that latency is material (SATA-class fsync), not the fast-NVMe
   default the figures use. *)
let slow_ssd c =
  { c with
    Config.cost = { c.Config.cost with Treaty_sim.Costmodel.ssd_write_base_ns = 120_000 } }

let run () =
  Common.section "Ablations";
  Common.subsection "A. group commit (single-node, YCSB 20%R, slow fsync device)";
  row "group commit ON"
    (throughput ~engine_overrides:Common.id_engine ~config_overrides:slow_ssd);
  row "group commit OFF"
    (throughput
       ~engine_overrides:(fun e -> { e with Treaty_storage.Engine.group_commit = false })
       ~config_overrides:slow_ssd);

  Common.subsection "B. MemTable values: host memory vs enclave (EPC)";
  row "values in host memory (Treaty)"
    (throughput ~engine_overrides:Common.id_engine ~config_overrides:Fun.id);
  row "values inside the enclave"
    (throughput
       ~engine_overrides:(fun e ->
         { e with Treaty_storage.Engine.values_in_enclave = true })
       ~config_overrides:(fun c ->
         (* Shrink the EPC so the working set overflows it, as a large
            MemTable does on real SGXv1. *)
         { c with Config.cost = { c.Config.cost with Treaty_sim.Costmodel.epc_limit_bytes = 2 * 1024 * 1024 } }));

  Common.subsection "C. message buffers: host memory vs naive enclave port";
  row "msgbufs in host memory (Treaty)"
    (throughput ~engine_overrides:Common.id_engine ~config_overrides:Fun.id);
  row "naive port (enclave msgbufs + rdtsc OCALLs)"
    (throughput ~engine_overrides:Common.id_engine
       ~config_overrides:(fun c ->
         {
           c with
           Config.naive_rpc_port = true;
           cost = { c.Config.cost with Treaty_sim.Costmodel.epc_limit_bytes = 2 * 1024 * 1024 };
         }));

  Common.subsection "D. trusted counter: SGX hardware counter vs ROTE service";
  let sim = Sim.create () in
  let cost = Treaty_sim.Costmodel.default in
  let e = Enclave.create sim ~mode:Enclave.Scone ~cost ~cores:8 ~node_id:1 ~code_identity:"hw" in
  let hw = Treaty_tee.Hw_counter.create e in
  Sim.run sim (fun () ->
      let t0 = Sim.now sim in
      ignore (Treaty_tee.Hw_counter.increment hw);
      Printf.printf "  SGX hw counter increment: %.1f ms (wears out after ~1M increments)\n"
        (float_of_int (Sim.now sim - t0) /. 1e6));
  let sim2 = Sim.create () in
  Sim.run sim2 (fun () ->
      let net = Treaty_netsim.Net.create sim2 cost in
      let mk id =
        let e = Enclave.create sim2 ~mode:Enclave.Scone ~cost ~cores:8 ~node_id:id ~code_identity:"r" in
        let pool = Treaty_memalloc.Mempool.create e in
        Treaty_rpc.Erpc.create sim2 ~net ~enclave:e ~pool
          ~config:(Treaty_rpc.Erpc.default_config ~security:Treaty_rpc.Secure_msg.Plain)
          ~node_id:id ()
      in
      let r1 = Treaty_counter.Rote.create_replica (mk 1) ~group:[ 1; 2; 3 ] () in
      let _r2 = Treaty_counter.Rote.create_replica (mk 2) ~group:[ 1; 2; 3 ] () in
      let _r3 = Treaty_counter.Rote.create_replica (mk 3) ~group:[ 1; 2; 3 ] () in
      let t0 = Sim.now sim2 in
      (match Treaty_counter.Rote.increment r1 ~owner:1 ~log:"L" ~value:1 with
      | Ok () -> ()
      | Error `No_quorum -> failwith "no quorum");
      Printf.printf "  ROTE echo-broadcast increment: %.2f ms (no wear, survives CPU loss)\n%!"
        (float_of_int (Sim.now sim2 - t0) /. 1e6));

  Common.subsection
    "E. commit-pipeline batching (3 nodes, YCSB 20%R, stabilization on)";
  row "batching ON (epoch rounds, group commit, bursts)"
    (throughput_profile Config.treaty_enc_stab ~nodes:3);
  row "batching OFF (per-log rounds, per-record appends)"
    (throughput_profile
       { Config.treaty_enc_stab with Config.batching = false }
       ~nodes:3)
