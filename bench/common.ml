(* Shared plumbing for the figure/table benchmarks. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module W = Treaty_workload

let full_mode = ref false
(* Quick mode scales client counts and windows down so the whole suite runs
   in minutes; --full uses the paper's parameters. *)

let scale_clients n = if !full_mode then n else max 4 (n / 4)
let duration_ns () = if !full_mode then 1_000_000_000 else 300_000_000
let warmup_ns () = if !full_mode then 200_000_000 else 60_000_000

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let run_sim f =
  let sim = Sim.create ~seed:0xBE7CBE7CL () in
  Sim.run sim (fun () -> f sim)

let cores () = if !full_mode then 8 else 2

let base_config profile =
  let c =
    Config.with_profile { Config.default with Config.record_history = false } profile
  in
  { c with Config.cores_per_node = cores () }

let make_cluster sim config ?route () =
  match Cluster.create sim config ?route () with
  | Ok c -> c
  | Error m -> failwith ("cluster bootstrap failed: " ^ m)

(* Pre-load the YCSB key space through a loader client. *)
let load_ycsb cluster (cfg : W.Ycsb.config) =
  let loader = Client.connect_exn cluster ~client_id:900 in
  let rng = Treaty_sim.Rng.create 7L in
  let keys = W.Ycsb.load_keys cfg in
  let rec chunks = function
    | [] -> ()
    | l ->
        let batch, rest =
          let rec take n acc = function
            | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          take 100 [] l
        in
        (match
           Client.with_txn loader (fun txn ->
               List.iter
                 (fun k ->
                   match Client.put loader txn k (W.Ycsb.make_value cfg rng) with
                   | Ok () -> ()
                   | Error e ->
                       failwith ("ycsb load: " ^ Types.abort_reason_to_string e))
                 batch;
               Ok ())
         with
        | Ok () -> ()
        | Error e -> failwith ("ycsb load: " ^ Types.abort_reason_to_string e));
        chunks rest
  in
  chunks keys;
  Client.disconnect loader

let ycsb_txn ?(ro_fast_path = false) cfg =
  let generators = Hashtbl.create 16 in
  fun client ~client_index rng ->
    let g =
      match Hashtbl.find_opt generators client_index with
      | Some g -> g
      | None ->
          let g = W.Ycsb.generator cfg rng in
          Hashtbl.replace generators client_index g;
          g
    in
    W.Ycsb.run_txn ~ro_fast_path client None (W.Ycsb.next_txn g)

(* Run one YCSB configuration on a fresh cluster with the given profile.
   [isolation] selects the concurrency-control mode; under OCC all-read
   transactions are declared read-only and take the snapshot fast path, as
   the CLI does. *)
let ycsb_result ?(isolation = Types.Pessimistic) sim profile ~ycsb ~clients
    ~engine_overrides =
  let config = { (base_config profile) with Config.isolation } in
  let config = { config with Config.engine = engine_overrides config.Config.engine } in
  let cluster = make_cluster sim config () in
  load_ycsb cluster ycsb;
  let ro_fast_path = isolation = Types.Optimistic in
  let r =
    W.Driver.run_clients cluster ~clients ~duration_ns:(duration_ns ())
      ~warmup_ns:(warmup_ns ()) ~txn:(ycsb_txn ~ro_fast_path ycsb) ()
  in
  Cluster.shutdown cluster;
  r

(* BENCH_commit_pipeline.json is fed by two benches — fig4's pipeline rows
   and micro's crypto-cost section — which can run in either order or alone
   (the CI smoke runs fig4 before micro). Each contributes a named top-level
   section; the file is rewritten with everything contributed so far, so
   whichever bench finishes last leaves the merged document behind. *)
let pipeline_sections : (string * string) list ref = ref []

let pipeline_json_set ~key fragment =
  pipeline_sections :=
    (key, fragment) :: List.remove_assoc key !pipeline_sections;
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"bench\": \"commit_pipeline\",\n  \"mode\": %S"
    (if !full_mode then "full" else "quick");
  List.iter
    (fun (k, v) -> Printf.bprintf b ",\n  %S: %s" k v)
    (List.sort compare !pipeline_sections);
  Buffer.add_string b "\n}\n";
  let oc = open_out "BENCH_commit_pipeline.json" in
  output_string oc (Buffer.contents b);
  close_out oc

let id_engine e = e

let pct x = x *. 100.0

let print_row ~label ~tps ~baseline_tps ~mean_ms ~p99 =
  Printf.printf "  %-24s %10.1f tps   slowdown %5.2fx   lat %6.2f ms (p99 %7.2f)\n%!"
    label tps
    (if tps > 0.0 then baseline_tps /. tps else nan)
    mean_ms p99

let expected fmt = Printf.printf ("  paper:    " ^^ fmt ^^ "\n%!")
