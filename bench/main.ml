(* Benchmark harness: one entry per paper table/figure plus ablations and
   micro-benchmarks. `dune exec bench/main.exe` runs everything in quick
   mode; `-- --full` uses the paper's client counts and windows; `-- --only
   fig5,tab1` selects specific experiments. *)

let benches =
  [
    ("fig4", "2PC protocol in isolation (Figure 4)", Bench_fig4.run);
    ("fig5", "distributed YCSB (Figure 5)", Bench_fig5.run);
    ("fig3", "distributed TPC-C 10W/100W (Figure 3)", Bench_fig3.run);
    ("fig6", "single-node pessimistic (Figure 6)", Bench_fig67.run_fig6);
    ("fig7", "single-node optimistic (Figure 7)", Bench_fig67.run_fig7);
    ("fig8", "network library (Figure 8)", Bench_fig8.run);
    ("tab1", "recovery overheads (Table I)", Bench_tab1.run);
    ("abl", "design ablations", Bench_ablation.run);
    ("micro", "micro-benchmarks (Bechamel)", Bench_micro.run);
    ("read", "authenticated read path (Bloom + block cache)", Bench_read_path.run);
    ("cc", "concurrency-control ablation (2PL vs OCC + ro fast path)", Bench_cc.run);
    ("scale", "100-node million-key event-engine stress", Bench_scale.run);
  ]

let run_selected only full =
  Common.full_mode := full;
  let selected =
    match only with
    | [] -> benches
    | ids ->
        List.filter (fun (id, _, _) -> List.mem id ids) benches
  in
  if selected = [] then begin
    Printf.eprintf "unknown bench id; available: %s\n"
      (String.concat ", " (List.map (fun (id, _, _) -> id) benches));
    exit 1
  end;
  Printf.printf "Treaty benchmark harness (%s mode)\n"
    (if full then "full" else "quick");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, _, run) ->
      let s = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s done in %.1fs wall]\n%!" id (Unix.gettimeofday () -. s))
    selected;
  Printf.printf "\nall done in %.1fs wall\n" (Unix.gettimeofday () -. t0)

open Cmdliner

let only =
  let doc = "Comma-separated bench ids (fig3,fig4,fig5,fig6,fig7,fig8,tab1,abl,micro,read,cc)." in
  Arg.(value & opt (list string) [] & info [ "only" ] ~doc)

let full =
  let doc = "Run with the paper's client counts and measurement windows." in
  Arg.(value & flag & info [ "full" ] ~doc)

let cmd =
  let doc = "Regenerate the Treaty paper's tables and figures" in
  Cmd.v
    (Cmd.info "treaty-bench" ~doc)
    Term.(const run_selected $ only $ full)

let () = exit (Cmd.eval cmd)
