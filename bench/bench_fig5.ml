(* Figure 5: distributed transactions under YCSB — throughput slowdown
   w.r.t. DS-RocksDB and latency — for a write-heavy (20%R) and a
   read-heavy (80%R) workload, 96 clients, 3 nodes.

   Paper: 9x-15x slowdown for the write-heavy mix (DS-RocksDB at 18.5 ktps);
   9.5x (w/o Enc) and 11x (w/ Enc) for the read-heavy mix (DS-RocksDB at
   24 ktps); stabilization mainly costs latency on write-heavy Txs. *)

open Treaty_core
module W = Treaty_workload

let systems =
  [
    ("DS-RocksDB", Config.ds_rocksdb, Types.Pessimistic);
    ("Treaty w/o Enc", Config.treaty_no_enc, Types.Pessimistic);
    ("Treaty w/ Enc", Config.treaty_enc, Types.Pessimistic);
    ("Treaty w/ Enc w/ Stab", Config.treaty_enc_stab, Types.Pessimistic);
    ( "Treaty w/ Stab unbatched",
      { Config.treaty_enc_stab with Config.batching = false },
      Types.Pessimistic );
    (* cc ablation rider: same stack, OCC validation instead of 2PL, with
       all-read transactions taking the read-only snapshot fast path. *)
    ("Treaty w/ Stab OCC", Config.treaty_enc_stab, Types.Optimistic);
  ]

let run_mix ~label ~read_fraction =
  Common.subsection label;
  let ycsb = { W.Ycsb.default with W.Ycsb.read_fraction } in
  let clients = if !Common.full_mode then 96 else 64 in
  let results =
    List.map
      (fun (name, profile, isolation) ->
        let r = ref None in
        Common.run_sim (fun sim ->
            r :=
              Some
                (Common.ycsb_result ~isolation sim profile ~ycsb ~clients
                   ~engine_overrides:Common.id_engine));
        (name, Option.get !r))
      systems
  in
  let baseline = W.Driver.tps (snd (List.hd results)) in
  List.iter
    (fun (name, r) ->
      Common.print_row ~label:name ~tps:(W.Driver.tps r) ~baseline_tps:baseline
        ~mean_ms:(W.Driver.mean_ms r) ~p99:(W.Driver.p99_ms r))
    results

let run () =
  Common.section "Figure 5: distributed transactions, YCSB";
  run_mix ~label:"write-heavy (20% reads)" ~read_fraction:0.2;
  Common.expected "Treaty 9x-15x slower than DS-RocksDB; Stab adds latency";
  run_mix ~label:"read-heavy (80% reads)" ~read_fraction:0.8;
  Common.expected "Treaty w/o Enc ~9.5x, w/ Enc ~11x slower than DS-RocksDB"
