(* Figure 8: network bandwidth by message size for seven systems — iPerf-UDP
   and iPerf-TCP (native and SCONE), eRPC (native and SCONE), and Treaty's
   networking (eRPC + SCONE + the secure message format).

   Each row simulates 8 parallel streams between two machines: the sender
   charges the transport's per-message TX cost, the wire transfers at
   40 GbE, the receiver charges the RX cost; RPC systems additionally carry
   a response. UDP datagrams above the MTU fragment and are (as the paper
   observes) effectively all lost under load.

   Paper's shape: UDP poor everywhere and ~0 above the MTU; TCP best;
   eRPC behind TCP at 256 B/1024 B and equal for large messages;
   SCONE costs TCP up to ~8x and eRPC up to ~4x; eRPC (SCONE) up to ~1.5x
   faster than TCP (SCONE); Treaty networking ~= iPerf-TCP (SCONE) despite
   also encrypting. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Net = Treaty_netsim.Net
module Transport = Treaty_rpc.Transport
module Costmodel = Treaty_sim.Costmodel

type system = {
  name : string;
  kind : Transport.kind;
  mode : Enclave.mode;
  rpc_layer : bool;
  encrypt : bool;
}

let systems =
  [
    { name = "iPerf UDP"; kind = Transport.Kernel_udp; mode = Enclave.Native; rpc_layer = false; encrypt = false };
    { name = "iPerf UDP (Scone)"; kind = Transport.Kernel_udp; mode = Enclave.Scone; rpc_layer = false; encrypt = false };
    { name = "iPerf TCP"; kind = Transport.Kernel_tcp; mode = Enclave.Native; rpc_layer = false; encrypt = false };
    { name = "iPerf TCP (Scone)"; kind = Transport.Kernel_tcp; mode = Enclave.Scone; rpc_layer = false; encrypt = false };
    { name = "eRPC"; kind = Transport.Dpdk; mode = Enclave.Native; rpc_layer = true; encrypt = false };
    { name = "eRPC (Scone)"; kind = Transport.Dpdk; mode = Enclave.Scone; rpc_layer = true; encrypt = false };
    { name = "Treaty networking"; kind = Transport.Dpdk; mode = Enclave.Scone; rpc_layer = true; encrypt = true };
  ]

let sizes = [ 64; 256; 1024; 1460; 2048; 4096 ]
let streams = 8

(* One measurement: saturating streams for a window of simulated time. *)
let measure sys size =
  let cost = Costmodel.default in
  let params = Transport.default_params in
  let sim = Sim.create () in
  let sender = Enclave.create sim ~mode:sys.mode ~cost ~cores:streams ~node_id:1 ~code_identity:"iperf" in
  let receiver = Enclave.create sim ~mode:sys.mode ~cost ~cores:streams ~node_id:2 ~code_identity:"iperf" in
  let net = Net.create sim cost in
  let delivered = ref 0 in
  let window = 3_000_000 (* 3 ms of saturated streaming *) in
  let udp_frag_loss =
    sys.kind = Transport.Kernel_udp && Transport.fragments cost ~bytes:size > 1
  in
  let rng = Sim.rng sim in
  Net.register net ~id:2 (fun pkt ->
      Sim.spawn sim (fun () ->
          (* Fragmented datagrams reassemble only if every fragment survives
             the unmoderated receive path: effectively never under load. *)
          if udp_frag_loss && Treaty_sim.Rng.int rng 100 < 98 then ()
          else begin
            Transport.charge params receiver sys.kind ~rpc_layer:sys.rpc_layer
              ~dir:`Rx ~bytes:pkt.Treaty_netsim.Packet.size;
            if sys.encrypt then Enclave.charge_crypto receiver ~bytes:pkt.size;
            delivered := !delivered + size;
            if sys.rpc_layer then begin
              (* RPC response path. *)
              Transport.charge params receiver sys.kind ~rpc_layer:true ~dir:`Tx
                ~bytes:64;
              Net.send net ~src:2 ~dst:1 (String.make 32 'r')
            end
          end));
  let outstanding_resp = ref 0 in
  Net.register net ~id:1 (fun _pkt ->
      Sim.spawn sim (fun () ->
          Transport.charge params sender sys.kind ~rpc_layer:true ~dir:`Rx ~bytes:96;
          decr outstanding_resp));
  Sim.run sim (fun () ->
      for _ = 1 to streams do
        Sim.spawn sim (fun () ->
            let payload = String.make size 'x' in
            while Sim.now sim < window do
              Transport.charge params sender sys.kind ~rpc_layer:sys.rpc_layer
                ~dir:`Tx ~bytes:size;
              if sys.encrypt then Enclave.charge_crypto sender ~bytes:size;
              Net.send net ~src:1 ~dst:2 payload;
              if sys.rpc_layer then begin
                (* eRPC credit window: bounded outstanding requests. *)
                incr outstanding_resp;
                while !outstanding_resp > 64 && Sim.now sim < window do
                  Sim.sleep sim 500
                done
              end
            done)
      done);
  let t = max 1 (Sim.now sim) in
  float_of_int (!delivered * 8) /. float_of_int t (* Gb/s *)

let run () =
  Common.section "Figure 8: network library bandwidth vs message size";
  Printf.printf "  %-20s" "system";
  List.iter (fun s -> Printf.printf "%8dB" s) sizes;
  Printf.printf "   (Gb/s, 8 streams, 40GbE)\n";
  List.iter
    (fun sys ->
      Printf.printf "  %-20s" sys.name;
      List.iter (fun size -> Printf.printf "%9.2f" (measure sys size)) sizes;
      print_newline ())
    systems;
  Common.expected
    "UDP ~0 above MTU; TCP > eRPC at 256B-1024B, equal large; SCONE hits TCP up to 8x, eRPC up to 4x; Treaty ~= TCP (SCONE)"
