(* Bechamel micro-benchmarks (wall-clock, not simulated): the hot primitives
   under all the figures — crypto, the skip list, the secure message codec
   and the authenticated log record format. *)

open Bechamel
open Toolkit
module Crypto = Treaty_crypto

let value_1k = String.make 1024 'v'
let aead_key = Crypto.Aead.key_of_string "bench"
let hmac = Crypto.Hmac.create "bench-key"
let msg_100 = String.make 100 'm'

let sealed =
  let ivg = Crypto.Aead.Iv_gen.create ~node_id:1 in
  Crypto.Aead.seal_packed aead_key ~iv:(Crypto.Aead.Iv_gen.next ivg) value_1k

let secure_key = Treaty_rpc.Secure_msg.Secure aead_key
let ivg = Crypto.Aead.Iv_gen.create ~node_id:2

let meta =
  {
    Treaty_rpc.Secure_msg.coord = 1;
    tx_seq = 42;
    op_id = 7;
    src = 1;
    kind = 3;
    is_response = false;
    req_id = 99;
  }

let wire = Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg meta value_1k

let prefilled_skiplist =
  let sl = Treaty_storage.Skiplist.create () in
  for i = 0 to 9_999 do
    Treaty_storage.Skiplist.insert sl ~key:(Printf.sprintf "k%06d" i) ~seq:i ()
  done;
  sl

let tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest_string value_1k));
      Test.make ~name:"hmac-100B" (Staged.stage (fun () -> Crypto.Hmac.mac hmac msg_100));
      Test.make ~name:"chacha20-1KiB"
        (Staged.stage (fun () ->
             Crypto.Chacha20.xor ~key:(String.make 32 'k') ~nonce:(String.make 12 'n') value_1k));
      Test.make ~name:"aead-seal-1KiB"
        (Staged.stage (fun () ->
             Crypto.Aead.seal_packed aead_key ~iv:(String.make 12 'i') value_1k));
      Test.make ~name:"aead-open-1KiB"
        (Staged.stage (fun () -> Crypto.Aead.open_packed aead_key sealed));
      Test.make ~name:"secure-msg-encode-1KiB"
        (Staged.stage (fun () ->
             Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg meta value_1k));
      Test.make ~name:"secure-msg-decode-1KiB"
        (Staged.stage (fun () -> Treaty_rpc.Secure_msg.decode secure_key wire));
      Test.make ~name:"skiplist-find-10k"
        (Staged.stage (fun () ->
             Treaty_storage.Skiplist.find prefilled_skiplist ~key:"k004242" ~max_seq:max_int));
    ]

let run () =
  Common.section "Micro-benchmarks (Bechamel, wall-clock)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n" name est
            | _ -> ())
          tbl)
    results
