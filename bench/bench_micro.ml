(* Bechamel micro-benchmarks (wall-clock, not simulated): the hot primitives
   under all the figures — crypto, the skip list, the secure message codec
   and the authenticated log record format. *)

open Bechamel
open Toolkit
module Crypto = Treaty_crypto

let value_1k = String.make 1024 'v'
let aead_key = Crypto.Aead.key_of_string "bench"
let hmac = Crypto.Hmac.create "bench-key"
let msg_100 = String.make 100 'm'

let sealed =
  let ivg = Crypto.Aead.Iv_gen.create ~node_id:1 in
  Crypto.Aead.seal_packed aead_key ~iv:(Crypto.Aead.Iv_gen.next ivg) value_1k

let secure_key = Treaty_rpc.Secure_msg.Secure aead_key
let ivg = Crypto.Aead.Iv_gen.create ~node_id:2

let meta =
  {
    Treaty_rpc.Secure_msg.coord = 1;
    tx_seq = 42;
    op_id = 7;
    src = 1;
    kind = 3;
    is_response = false;
    req_id = 99;
  }

let wire = Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg meta value_1k

(* An 8-message burst of 100 B payloads: one v2 packet (one IV, one
   keystream pass, one MAC) vs eight individually sealed v1 messages. *)
let burst_msgs =
  List.init 8 (fun i -> ({ meta with Treaty_rpc.Secure_msg.op_id = i }, msg_100))

let burst_buf =
  Bytes.create
    (Treaty_rpc.Secure_msg.Burst.wire_size secure_key
       ~data_lens:(List.map (fun _ -> 100) burst_msgs))

let burst_wire =
  let n =
    Treaty_rpc.Secure_msg.Burst.encode_into secure_key ~iv_gen:ivg burst_buf
      burst_msgs
  in
  Bytes.sub_string burst_buf 0 n

let prefilled_skiplist =
  let sl = Treaty_storage.Skiplist.create () in
  for i = 0 to 9_999 do
    Treaty_storage.Skiplist.insert sl ~key:(Printf.sprintf "k%06d" i) ~seq:i ()
  done;
  sl

let clog_batch =
  Treaty_storage.Clog_record.Batch
    (List.init 16 (fun i ->
         Treaty_storage.Clog_record.Decision { tx_seq = i; commit = i mod 2 = 0 }))

let clog_batch_wire = Treaty_storage.Clog_record.encode clog_batch

let tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest_string value_1k));
      Test.make ~name:"hmac-100B" (Staged.stage (fun () -> Crypto.Hmac.mac hmac msg_100));
      Test.make ~name:"chacha20-1KiB"
        (Staged.stage (fun () ->
             Crypto.Chacha20.xor ~key:(String.make 32 'k') ~nonce:(String.make 12 'n') value_1k));
      Test.make ~name:"aead-seal-1KiB"
        (Staged.stage (fun () ->
             Crypto.Aead.seal_packed aead_key ~iv:(String.make 12 'i') value_1k));
      Test.make ~name:"aead-open-1KiB"
        (Staged.stage (fun () -> Crypto.Aead.open_packed aead_key sealed));
      Test.make ~name:"secure-msg-encode-1KiB"
        (Staged.stage (fun () ->
             Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg meta value_1k));
      Test.make ~name:"secure-msg-decode-1KiB"
        (Staged.stage (fun () -> Treaty_rpc.Secure_msg.decode secure_key wire));
      Test.make ~name:"burst-seal-8x100B"
        (Staged.stage (fun () ->
             Treaty_rpc.Secure_msg.Burst.encode_into secure_key ~iv_gen:ivg
               burst_buf burst_msgs));
      Test.make ~name:"per-msg-seal-8x100B"
        (Staged.stage (fun () ->
             List.iter
               (fun (m, data) ->
                 ignore
                   (Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg m data))
               burst_msgs));
      Test.make ~name:"burst-open-8x100B"
        (Staged.stage (fun () ->
             Treaty_rpc.Secure_msg.Burst.decode secure_key burst_wire));
      Test.make ~name:"skiplist-find-10k"
        (Staged.stage (fun () ->
             Treaty_storage.Skiplist.find prefilled_skiplist ~key:"k004242" ~max_seq:max_int));
      Test.make ~name:"clog-batch16-encode"
        (Staged.stage (fun () -> Treaty_storage.Clog_record.encode clog_batch));
      Test.make ~name:"clog-batch16-decode"
        (Staged.stage (fun () -> Treaty_storage.Clog_record.decode clog_batch_wire));
    ]

(* Rounds per transaction: the number the commit pipeline exists to shrink.
   N concurrent "transactions" each stabilize a Clog decision and a WAL
   entry; the epoch pump coalesces the pending targets of every log into one
   ROTE round, so rounds/txn collapses with concurrency. [batch_logs:false]
   reproduces the old one-round-per-log behaviour for comparison. *)
let rounds_per_txn ~batch_logs =
  let module Sim = Treaty_sim.Sim in
  let sim = Sim.create ~seed:0xF00DF00DL () in
  let result = ref 0. in
  Sim.run sim (fun () ->
      let cost = Treaty_sim.Costmodel.default in
      let net = Treaty_netsim.Net.create sim cost in
      let mk id =
        let e =
          Treaty_tee.Enclave.create sim ~mode:Treaty_tee.Enclave.Scone ~cost
            ~cores:8 ~node_id:id ~code_identity:"r"
        in
        let pool = Treaty_memalloc.Mempool.create e in
        Treaty_rpc.Erpc.create sim ~net ~enclave:e ~pool
          ~config:(Treaty_rpc.Erpc.default_config ~security:Treaty_rpc.Secure_msg.Plain)
          ~node_id:id ()
      in
      let r1 = Treaty_counter.Rote.create_replica (mk 1) ~group:[ 1; 2; 3 ] () in
      let _r2 = Treaty_counter.Rote.create_replica (mk 2) ~group:[ 1; 2; 3 ] () in
      let _r3 = Treaty_counter.Rote.create_replica (mk 3) ~group:[ 1; 2; 3 ] () in
      let cc = Treaty_counter.Counter_client.create ~batch_logs r1 ~owner:1 in
      let txns = 64 in
      let clog = ref 0 and wal = ref 0 in
      let latch = Sim.ivar () in
      let pending = ref txns in
      for i = 0 to txns - 1 do
        Sim.spawn sim (fun () ->
            Sim.sleep sim (i * 50_000);
            incr clog;
            let c = !clog in
            Treaty_counter.Counter_client.submit cc ~log:"clog" ~counter:c;
            (match Treaty_counter.Counter_client.wait_stable cc ~log:"clog" ~counter:c with
            | Ok () -> ()
            | Error `Stability_timeout -> failwith "micro: no quorum");
            incr wal;
            let w = !wal in
            (match Treaty_counter.Counter_client.wait_stable cc ~log:"wal" ~counter:w with
            | Ok () -> ()
            | Error `Stability_timeout -> failwith "micro: no quorum");
            decr pending;
            if !pending = 0 then Sim.fill latch ())
      done;
      Sim.read sim latch;
      let s = Treaty_counter.Counter_client.stats cc in
      result := float_of_int s.rounds_started /. float_of_int txns);
  !result

(* Simulated AEAD cost per completed RPC, batched (v2 envelope) vs unbatched
   (v1): an eRPC pair under the commit pipeline's message shape — 32
   concurrent closed-loop callers, ~100 B requests, 1 KiB responses, the
   default 5 µs doorbell window. The enclave's [crypto_ns] counter divided
   by completed calls is the number the burst-level AEAD shrinks: one fixed
   seal/open charge per *packet* instead of per message, plus 28 B of
   per-message IV/pad/MAC framing saved. Also returns the coalescing factor
   so the JSON records msgs/packet alongside the cost it buys. *)
let crypto_ns_per_call ~batch_crypto =
  let module Sim = Treaty_sim.Sim in
  let module Erpc = Treaty_rpc.Erpc in
  let module Enclave = Treaty_tee.Enclave in
  let sim = Sim.create ~seed:0xCAFE01L () in
  let result = ref (0., 0.) in
  Sim.run sim (fun () ->
      let cost = Treaty_sim.Costmodel.default in
      let net = Treaty_netsim.Net.create sim cost in
      let key = Crypto.Aead.key_of_string "micro-net" in
      let mk id =
        let e =
          Enclave.create sim ~mode:Enclave.Scone ~cost ~cores:8 ~node_id:id
            ~code_identity:"crypto-bench"
        in
        let pool = Treaty_memalloc.Mempool.create e in
        ( e,
          Erpc.create sim ~net ~enclave:e ~pool
            ~config:
              {
                (Erpc.default_config
                   ~security:(Treaty_rpc.Secure_msg.Secure key))
                with
                Erpc.batch_crypto;
              }
            ~node_id:id () )
      in
      let e1, a = mk 1 and e2, b = mk 2 in
      let reply = String.make 1024 'r' in
      Erpc.register b ~kind:1 (fun _ _ -> reply);
      let callers = 32 and per_caller = 40 in
      let req = String.make 100 'q' in
      let done_ = Sim.ivar () in
      let pending = ref callers in
      for c = 0 to callers - 1 do
        Sim.spawn sim (fun () ->
            Sim.sleep sim (c * 1_000);
            for i = 1 to per_caller do
              match
                Erpc.call a ~dst:2 ~kind:1 ~coord:1 ~tx_seq:((c * 1000) + i)
                  ~op_id:1 req
              with
              | Ok _ -> ()
              | Error _ -> failwith "micro: crypto bench call failed"
            done;
            decr pending;
            if !pending = 0 then Sim.fill done_ ())
      done;
      Sim.read sim done_;
      let calls = callers * per_caller in
      let crypto =
        (Enclave.stats e1).Enclave.crypto_ns + (Enclave.stats e2).Enclave.crypto_ns
      in
      let sa = Erpc.stats a and sb = Erpc.stats b in
      let pkts = sa.Erpc.bursts_sent + sb.Erpc.bursts_sent in
      let msgs = sa.Erpc.burst_msgs + sb.Erpc.burst_msgs in
      result :=
        ( float_of_int crypto /. float_of_int calls,
          if pkts = 0 then 0. else float_of_int msgs /. float_of_int pkts ));
  !result

(* Event-loop cost under the simulator's hot timer profile: every RPC arms
   a ~50 ms timeout it almost always cancels (the call completed), while
   short sleeps fire constantly. Each iteration is 4 queue ops — arm
   timeout, arm sleep, fire the sleep, cancel the timeout. Under the seed
   heap the cancelled timeouts linger as dead entries (lazy cancellation)
   and every op pays an O(log n) sift through them; the wheel reclaims on
   cancel and runs allocation-free. Both sides run the identical op
   sequence from the same RNG seed. *)
let timer_iters = 100_000

let bench_wheel () =
  let module E = Treaty_sim.Eventq in
  let q = E.create () in
  let rng = Treaty_sim.Rng.create 0xE7E701L in
  let now = ref 0 and fired = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to timer_iters do
    let timeout = E.add q ~time:(!now + 50_000_000) (fun () -> incr fired) in
    ignore
      (E.add q
         ~time:(!now + 1 + Treaty_sim.Rng.int rng 30_000)
         (fun () -> incr fired));
    (match E.pop q with
    | Some (t, fn) ->
        now := t;
        fn ()
    | None -> assert false);
    ignore (E.cancel q timeout)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ignore !fired;
  dt *. 1e9 /. float_of_int (timer_iters * 4)

let bench_seed_heap () =
  let q = Eventq_seed.create () in
  let rng = Treaty_sim.Rng.create 0xE7E701L in
  let now = ref 0 and fired = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to timer_iters do
    let timeout =
      Eventq_seed.add q ~time:(!now + 50_000_000) (fun () -> incr fired)
    in
    ignore
      (Eventq_seed.add q
         ~time:(!now + 1 + Treaty_sim.Rng.int rng 30_000)
         (fun () -> incr fired));
    (match Eventq_seed.pop q with
    | Some (t, fn) ->
        now := t;
        fn ()
    | None -> assert false);
    Eventq_seed.cancel timeout
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ignore !fired;
  ignore (Eventq_seed.is_empty q, Eventq_seed.size q);
  dt *. 1e9 /. float_of_int (timer_iters * 4)

let run_event_loop () =
  (* Warm both paths once so neither pays first-touch costs in the timed
     run, then time each. *)
  ignore (bench_wheel ());
  ignore (bench_seed_heap ());
  let wheel = bench_wheel () in
  let seed = bench_seed_heap () in
  let speedup = seed /. wheel in
  Printf.printf
    "  event loop ns/op (RPC-timeout profile, %d ops): timer wheel %.1f, \
     seed heap %.1f — %.2fx\n%!"
    (timer_iters * 4) wheel seed speedup;
  Common.pipeline_json_set ~key:"event_loop"
    (Printf.sprintf
       "{ \"seed_ns_per_event\": %.1f, \"wheel_ns_per_event\": %.1f, \
        \"speedup\": %.2f }"
       seed wheel speedup)

let run_crypto_per_txn () =
  let batched_ns, batched_mpp = crypto_ns_per_call ~batch_crypto:true in
  let unbatched_ns, unbatched_mpp = crypto_ns_per_call ~batch_crypto:false in
  Printf.printf
    "  AEAD ns/call (32 callers, 100B req / 1KiB resp): v2 burst-sealed \
     %.0f (%.2f msgs/pkt), v1 per-message %.0f (%.2f msgs/pkt) — %.1f%% \
     less\n%!"
    batched_ns batched_mpp unbatched_ns unbatched_mpp
    (100. *. (1. -. (batched_ns /. unbatched_ns)));
  Common.pipeline_json_set ~key:"micro"
    (Printf.sprintf
       "{ \"crypto_ns_per_txn\": { \"batched\": %.1f, \"no_batch_crypto\": \
        %.1f, \"reduction_pct\": %.1f, \"batched_msgs_per_packet\": %.2f, \
        \"no_batch_crypto_msgs_per_packet\": %.2f } }"
       batched_ns unbatched_ns
       (100. *. (1. -. (batched_ns /. unbatched_ns)))
       batched_mpp unbatched_mpp)

let run () =
  Common.section "Micro-benchmarks (Bechamel, wall-clock)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n" name est
            | _ -> ())
          tbl)
    results;
  Printf.printf
    "  stabilization rounds/txn (64 concurrent txns, clog+wal): epoch-batched %.3f, per-log %.3f\n%!"
    (rounds_per_txn ~batch_logs:true)
    (rounds_per_txn ~batch_logs:false);
  run_crypto_per_txn ();
  run_event_loop ()
