(* Bechamel micro-benchmarks (wall-clock, not simulated): the hot primitives
   under all the figures — crypto, the skip list, the secure message codec
   and the authenticated log record format. *)

open Bechamel
open Toolkit
module Crypto = Treaty_crypto

let value_1k = String.make 1024 'v'
let aead_key = Crypto.Aead.key_of_string "bench"
let hmac = Crypto.Hmac.create "bench-key"
let msg_100 = String.make 100 'm'

let sealed =
  let ivg = Crypto.Aead.Iv_gen.create ~node_id:1 in
  Crypto.Aead.seal_packed aead_key ~iv:(Crypto.Aead.Iv_gen.next ivg) value_1k

let secure_key = Treaty_rpc.Secure_msg.Secure aead_key
let ivg = Crypto.Aead.Iv_gen.create ~node_id:2

let meta =
  {
    Treaty_rpc.Secure_msg.coord = 1;
    tx_seq = 42;
    op_id = 7;
    src = 1;
    kind = 3;
    is_response = false;
    req_id = 99;
  }

let wire = Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg meta value_1k

let prefilled_skiplist =
  let sl = Treaty_storage.Skiplist.create () in
  for i = 0 to 9_999 do
    Treaty_storage.Skiplist.insert sl ~key:(Printf.sprintf "k%06d" i) ~seq:i ()
  done;
  sl

let clog_batch =
  Treaty_storage.Clog_record.Batch
    (List.init 16 (fun i ->
         Treaty_storage.Clog_record.Decision { tx_seq = i; commit = i mod 2 = 0 }))

let clog_batch_wire = Treaty_storage.Clog_record.encode clog_batch

let tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest_string value_1k));
      Test.make ~name:"hmac-100B" (Staged.stage (fun () -> Crypto.Hmac.mac hmac msg_100));
      Test.make ~name:"chacha20-1KiB"
        (Staged.stage (fun () ->
             Crypto.Chacha20.xor ~key:(String.make 32 'k') ~nonce:(String.make 12 'n') value_1k));
      Test.make ~name:"aead-seal-1KiB"
        (Staged.stage (fun () ->
             Crypto.Aead.seal_packed aead_key ~iv:(String.make 12 'i') value_1k));
      Test.make ~name:"aead-open-1KiB"
        (Staged.stage (fun () -> Crypto.Aead.open_packed aead_key sealed));
      Test.make ~name:"secure-msg-encode-1KiB"
        (Staged.stage (fun () ->
             Treaty_rpc.Secure_msg.encode secure_key ~iv_gen:ivg meta value_1k));
      Test.make ~name:"secure-msg-decode-1KiB"
        (Staged.stage (fun () -> Treaty_rpc.Secure_msg.decode secure_key wire));
      Test.make ~name:"skiplist-find-10k"
        (Staged.stage (fun () ->
             Treaty_storage.Skiplist.find prefilled_skiplist ~key:"k004242" ~max_seq:max_int));
      Test.make ~name:"clog-batch16-encode"
        (Staged.stage (fun () -> Treaty_storage.Clog_record.encode clog_batch));
      Test.make ~name:"clog-batch16-decode"
        (Staged.stage (fun () -> Treaty_storage.Clog_record.decode clog_batch_wire));
    ]

(* Rounds per transaction: the number the commit pipeline exists to shrink.
   N concurrent "transactions" each stabilize a Clog decision and a WAL
   entry; the epoch pump coalesces the pending targets of every log into one
   ROTE round, so rounds/txn collapses with concurrency. [batch_logs:false]
   reproduces the old one-round-per-log behaviour for comparison. *)
let rounds_per_txn ~batch_logs =
  let module Sim = Treaty_sim.Sim in
  let sim = Sim.create ~seed:0xF00DF00DL () in
  let result = ref 0. in
  Sim.run sim (fun () ->
      let cost = Treaty_sim.Costmodel.default in
      let net = Treaty_netsim.Net.create sim cost in
      let mk id =
        let e =
          Treaty_tee.Enclave.create sim ~mode:Treaty_tee.Enclave.Scone ~cost
            ~cores:8 ~node_id:id ~code_identity:"r"
        in
        let pool = Treaty_memalloc.Mempool.create e in
        Treaty_rpc.Erpc.create sim ~net ~enclave:e ~pool
          ~config:(Treaty_rpc.Erpc.default_config ~security:Treaty_rpc.Secure_msg.Plain)
          ~node_id:id ()
      in
      let r1 = Treaty_counter.Rote.create_replica (mk 1) ~group:[ 1; 2; 3 ] () in
      let _r2 = Treaty_counter.Rote.create_replica (mk 2) ~group:[ 1; 2; 3 ] () in
      let _r3 = Treaty_counter.Rote.create_replica (mk 3) ~group:[ 1; 2; 3 ] () in
      let cc = Treaty_counter.Counter_client.create ~batch_logs r1 ~owner:1 in
      let txns = 64 in
      let clog = ref 0 and wal = ref 0 in
      let latch = Sim.ivar () in
      let pending = ref txns in
      for i = 0 to txns - 1 do
        Sim.spawn sim (fun () ->
            Sim.sleep sim (i * 50_000);
            incr clog;
            let c = !clog in
            Treaty_counter.Counter_client.submit cc ~log:"clog" ~counter:c;
            (match Treaty_counter.Counter_client.wait_stable cc ~log:"clog" ~counter:c with
            | Ok () -> ()
            | Error `Stability_timeout -> failwith "micro: no quorum");
            incr wal;
            let w = !wal in
            (match Treaty_counter.Counter_client.wait_stable cc ~log:"wal" ~counter:w with
            | Ok () -> ()
            | Error `Stability_timeout -> failwith "micro: no quorum");
            decr pending;
            if !pending = 0 then Sim.fill latch ())
      done;
      Sim.read sim latch;
      let s = Treaty_counter.Counter_client.stats cc in
      result := float_of_int s.rounds_started /. float_of_int txns);
  !result

let run () =
  Common.section "Micro-benchmarks (Bechamel, wall-clock)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n" name est
            | _ -> ())
          tbl)
    results;
  Printf.printf
    "  stabilization rounds/txn (64 concurrent txns, clog+wal): epoch-batched %.3f, per-log %.3f\n%!"
    (rounds_per_txn ~batch_logs:true)
    (rounds_per_txn ~batch_logs:false)
