(* The event-engine stress test: a 100-node cluster under a Zipfian YCSB
   workload over a million-key space. Nothing in the paper runs at this
   scale — the point is the simulator itself: with 100 enclaves, their NICs,
   RPC timeout timers and client terminals all live at once, the run is
   dominated by event-queue and scheduler churn, and the numbers reported
   are engine numbers: simulated events per wall-clock second, wall ns per
   event, and GC bytes allocated per committed transaction.

   The key space is NOT pre-loaded (a million puts would dwarf the
   measurement window); keys materialize on first update and reads of
   still-missing keys are legitimate misses. The Zipfian skew (theta 0.99)
   keeps the hot set small, so the workload commits at a healthy rate
   anyway. *)

open Treaty_core
module Sim = Treaty_sim.Sim
module W = Treaty_workload

let nodes = 100
let n_keys = 1_000_000

let run () =
  Common.section
    (Printf.sprintf "Scale: %d nodes, %dk-key Zipfian YCSB (event engine)"
       nodes (n_keys / 1000));
  let clients = if !Common.full_mode then 64 else 16 in
  let duration_ns =
    if !Common.full_mode then 1_000_000_000 else 200_000_000
  in
  let warmup_ns = if !Common.full_mode then 100_000_000 else 50_000_000 in
  let ycsb =
    {
      W.Ycsb.default with
      W.Ycsb.n_keys;
      distribution = `Zipfian 0.99;
      value_size = 100;
    }
  in
  let committed = ref 0 and aborted = ref 0 in
  let events = ref 0 and sim_ns = ref 0 in
  let alloc_per_txn = ref 0. in
  let t0 = Unix.gettimeofday () in
  Common.run_sim (fun sim ->
      let config =
        { (Common.base_config Config.treaty_enc_stab) with Config.nodes }
      in
      let cluster = Common.make_cluster sim config () in
      let a0 = Gc.allocated_bytes () in
      let r =
        W.Driver.run_clients cluster ~clients ~duration_ns ~warmup_ns
          ~txn:(Common.ycsb_txn ycsb) ()
      in
      let a1 = Gc.allocated_bytes () in
      Cluster.shutdown cluster;
      committed := W.Stats.committed r.W.Driver.stats;
      aborted := W.Stats.aborted r.W.Driver.stats;
      events := Sim.events_fired sim;
      sim_ns := Sim.now sim;
      alloc_per_txn :=
        if !committed > 0 then (a1 -. a0) /. float_of_int !committed else 0.);
  let wall = Unix.gettimeofday () -. t0 in
  let events_per_sec = float_of_int !events /. wall in
  let ns_per_event = wall *. 1e9 /. float_of_int !events in
  Printf.printf
    "  %d nodes, %d clients, %d keys: %d committed / %d aborted in %.2fs \
     sim\n%!"
    nodes clients n_keys !committed !aborted
    (float_of_int !sim_ns /. 1e9);
  Printf.printf
    "  engine: %d events, %.0f events/s wall, %.0f ns/event, %.0f alloc \
     B/txn, %.1fs wall\n%!"
    !events events_per_sec ns_per_event !alloc_per_txn wall;
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"scale\",\n\
    \  \"mode\": %S,\n\
    \  \"nodes\": %d,\n\
    \  \"keys\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"committed\": %d,\n\
    \  \"aborted\": %d,\n\
    \  \"sim_seconds\": %.3f,\n\
    \  \"events_fired\": %d,\n\
    \  \"events_per_sec_wall\": %.0f,\n\
    \  \"ns_per_event_wall\": %.1f,\n\
    \  \"alloc_bytes_per_txn\": %.0f,\n\
    \  \"wall_seconds\": %.2f\n\
     }\n"
    (if !Common.full_mode then "full" else "quick")
    nodes n_keys clients !committed !aborted
    (float_of_int !sim_ns /. 1e9)
    !events events_per_sec ns_per_event !alloc_per_txn wall;
  close_out oc
