(* Authenticated read path (PR 5): point-read throughput with the
   acceleration on (SSTable Bloom filters + verified block cache + fence
   arrays) vs off (verify-every-block). Engine-level, single node: the 2PC
   layer would only dilute the effect being measured.

   The workload is the read mix the optimisation targets: half the probes
   hit a hot subset of resident keys (block cache), half probe absent keys
   (Bloom filters). All data is pushed through flush + full compaction
   first so every read is served from authenticated SSTables. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
open Treaty_storage

type row = {
  tps : float;
  reads : int;
  sim_ms : float;
  block_reads : int;
  cache_hits : int;
  cache_misses : int;
  bloom_neg : int;
  bloom_fp : int;
}

let n_keys () = if !Common.full_mode then 8_000 else 2_000
let n_reads () = if !Common.full_mode then 60_000 else 16_000
(* Even-numbered keys are loaded; odd ones are absent but interleave with
   resident keys, so absent probes pass the fence search and exercise the
   Bloom filter rather than being rejected by key-range bounds. *)
let key i = Printf.sprintf "rk%06d" (2 * i)
let absent i = Printf.sprintf "rk%06d" ((2 * i) + 1)

let engine_cfg ~read_opt =
  {
    Engine.default_config with
    Engine.memtable_max_bytes = 64 * 1024;
    file_bytes = 32 * 1024;
    level_base_bytes = 128 * 1024;
    wait_commit_stable = false;
    read_opt;
    block_cache_bytes = 2 * 1024 * 1024;
  }

let run_one ~read_opt =
  let out = ref None in
  let sim = Sim.create ~seed:0x5EAD_BE7CL () in
  Sim.run sim (fun () ->
      let enclave =
        Enclave.create sim ~mode:Enclave.Scone
          ~cost:Treaty_sim.Costmodel.default ~cores:4 ~node_id:1
          ~code_identity:"bench-read-path"
      in
      let sec =
        Sec.create ~enclave ~auth:true
          ~enc:(Some (Treaty_crypto.Aead.key_of_string "bench-key"))
          ()
      in
      let ssd = Ssd.create sim Treaty_sim.Costmodel.default in
      let eng = Engine.create ssd sec (engine_cfg ~read_opt) Engine.noop_stability in
      let n = n_keys () in
      for i = 0 to n - 1 do
        ignore
          (Engine.commit eng
             ~writes:[ (key i, Op.Put (Printf.sprintf "value-%06d-%s" i (String.make 96 'v'))) ]
             ())
      done;
      Engine.flush_now eng;
      Engine.compact_now eng;
      let snap = Engine.snapshot eng in
      let s0 = Engine.stats eng in
      let base_blocks = s0.Engine.sst_block_reads in
      let t0 = Sim.now sim in
      let reads = n_reads () in
      (* Hot set: 1/8 of the keyspace, strided so probes span many blocks. *)
      let hot = max 1 (n / 8) in
      for i = 0 to reads - 1 do
        let k =
          if i mod 2 = 0 then key (i * 7 mod hot) else absent (i * 13 mod (n - 1))
        in
        match Engine.get eng ~key:k ~snapshot:snap with
        | Memtable.Found _ ->
            if i mod 2 <> 0 then failwith "absent key found"
        | Memtable.Not_found | Memtable.Deleted _ ->
            if i mod 2 = 0 then failwith ("resident key lost: " ^ k)
      done;
      let dt = Sim.now sim - t0 in
      let s = Engine.stats eng in
      out :=
        Some
          {
            tps = float_of_int reads /. (float_of_int dt /. 1e9);
            reads;
            sim_ms = float_of_int dt /. 1e6;
            block_reads = s.Engine.sst_block_reads - base_blocks;
            cache_hits = s.Engine.cache_hits;
            cache_misses = s.Engine.cache_misses;
            bloom_neg = s.Engine.bloom_negatives;
            bloom_fp = s.Engine.bloom_false_positives;
          });
  Option.get !out

let print label (r : row) =
  Printf.printf
    "  %-10s %12.0f reads/s   %8.1f sim-ms   %6d block reads   cache \
     %d/%d hit/miss   bloom %d neg, %d fp\n%!"
    label r.tps r.sim_ms r.block_reads r.cache_hits r.cache_misses r.bloom_neg
    r.bloom_fp

let json_row b name (r : row) =
  Printf.bprintf b
    "    { \"name\": %S, \"reads_per_sec\": %.1f, \"reads\": %d, \
     \"sim_ms\": %.2f, \"sst_block_reads\": %d, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"bloom_negatives\": %d, \
     \"bloom_false_positives\": %d }"
    name r.tps r.reads r.sim_ms r.block_reads r.cache_hits r.cache_misses
    r.bloom_neg r.bloom_fp

let write_json on off improvement =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"bench\": \"read_path\",\n  \"mode\": %S,\n"
    (if !Common.full_mode then "full" else "quick");
  Printf.bprintf b "  \"improvement_pct\": %.1f,\n  \"configs\": [\n" improvement;
  json_row b "read_opt_on" on;
  Buffer.add_string b ",\n";
  json_row b "read_opt_off" off;
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out "BENCH_read_path.json" in
  output_string oc (Buffer.contents b);
  close_out oc

let run () =
  Common.section "Authenticated read path: Bloom filters + verified block cache";
  Printf.printf "  %d keys, %d point reads (50%% hot-set hits, 50%% absent)\n%!"
    (n_keys ()) (n_reads ());
  let on = run_one ~read_opt:true in
  let off = run_one ~read_opt:false in
  print "read-opt" on;
  print "baseline" off;
  let improvement = (on.tps -. off.tps) /. off.tps *. 100.0 in
  Printf.printf "  point-read throughput improvement: %+.1f%%\n%!" improvement;
  write_json on off improvement;
  Printf.printf "  wrote BENCH_read_path.json\n%!"
