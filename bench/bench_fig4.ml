(* Figure 4: throughput slowdown of Treaty's 2PC protocol alone — no
   underlying storage — under YCSB 50R/50W (10 ops/tx, 1000 B values),
   normalized to a native, non-secure 2PC.

   Systems: Native 2PC (baseline), Native w/ Enc, Secure (SCONE) w/o Enc,
   Secure (SCONE) w/ Enc. Paper: minimal encryption overhead natively;
   1.8x for SCONE without encryption; 2x for SCONE with encryption. *)

open Treaty_core
module W = Treaty_workload
module Enclave = Treaty_tee.Enclave

let profiles =
  [
    ("Native 2PC", { Config.tee = Enclave.Native; encryption = false; authentication = false; stabilization = false; batching = true; batch_crypto = true; read_opt = true; block_cache_bytes = Config.default_block_cache_bytes; sanitize = false; trace = false; metrics = false });
    ("Native w/ Enc", { Config.tee = Enclave.Native; encryption = true; authentication = false; stabilization = false; batching = true; batch_crypto = true; read_opt = true; block_cache_bytes = Config.default_block_cache_bytes; sanitize = false; trace = false; metrics = false });
    ("Secure w/o Enc", { Config.tee = Enclave.Scone; encryption = false; authentication = false; stabilization = false; batching = true; batch_crypto = true; read_opt = true; block_cache_bytes = Config.default_block_cache_bytes; sanitize = false; trace = false; metrics = false });
    ("Secure w/ Enc", { Config.tee = Enclave.Scone; encryption = true; authentication = false; stabilization = false; batching = true; batch_crypto = true; read_opt = true; block_cache_bytes = Config.default_block_cache_bytes; sanitize = false; trace = false; metrics = false });
  ]

(* Commit pipeline: full-stack treaty-enc-stab with the batching knob on and
   off. The interesting number is ROTE stabilization rounds per committed
   transaction: unbatched, every distributed commit pays at least two (Begin
   + Decision); the epoch pump plus Clog group commit amortize rounds across
   concurrent transactions, so with enough offered load the ratio drops
   below one. *)

type pipeline_row = {
  tps : float;
  committed : int;
  increments : int;
  rounds_per_txn : float;
  clog_items_per_batch : float;
  wal_items_per_batch : float;
  msgs_per_packet : float;
  crypto_ns_per_txn : float;
      (* Enclave ns spent in AEAD seal/open per committed transaction — the
         number the burst-level (v2) envelope exists to shrink. *)
}

let pipeline_run profile ~ycsb ~clients =
  let row = ref None in
  Common.run_sim (fun sim ->
      let config = Common.base_config profile in
      let cluster = Common.make_cluster sim config () in
      Common.load_ycsb cluster ycsb;
      let p0 = Cluster.pipeline_counters cluster in
      let c0 = Cluster.total_committed cluster in
      let r =
        W.Driver.run_clients cluster ~clients
          ~duration_ns:(Common.duration_ns ()) ~warmup_ns:(Common.warmup_ns ())
          ~txn:(Common.ycsb_txn ycsb) ()
      in
      let p1 = Cluster.pipeline_counters cluster in
      let delta name = List.assoc name p1 - List.assoc name p0 in
      let committed = Cluster.total_committed cluster - c0 in
      let increments = delta "rote.increments" in
      let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
      row :=
        Some
          {
            tps = W.Driver.tps r;
            committed;
            increments;
            rounds_per_txn = ratio increments committed;
            clog_items_per_batch =
              ratio (delta "clog.items") (delta "clog.batches");
            wal_items_per_batch = ratio (delta "wal.items") (delta "wal.batches");
            msgs_per_packet =
              ratio (delta "rpc.burst_msgs") (delta "rpc.bursts_sent");
            crypto_ns_per_txn = ratio (delta "crypto.ns") committed;
          };
      Cluster.shutdown cluster);
  Option.get !row

let json_row b name (r : pipeline_row) =
  Printf.bprintf b
    "    { \"name\": %S, \"tps\": %.1f, \"committed\": %d, \
     \"rote_increments\": %d, \"rounds_per_txn\": %.4f, \
     \"clog_items_per_batch\": %.2f, \"wal_items_per_batch\": %.2f, \
     \"msgs_per_packet\": %.2f, \"crypto_ns_per_txn\": %.1f }"
    name r.tps r.committed r.increments r.rounds_per_txn r.clog_items_per_batch
    r.wal_items_per_batch r.msgs_per_packet r.crypto_ns_per_txn

let write_pipeline_json ~clients rows =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"clients\": %d,\n  \"configs\": [\n" clients;
  List.iteri
    (fun i (name, r) ->
      if i > 0 then Buffer.add_string b ",\n";
      json_row b name r)
    rows;
  Buffer.add_string b "\n  ] }";
  Common.pipeline_json_set ~key:"pipeline" (Buffer.contents b)

let pipeline_print label (r : pipeline_row) =
  Printf.printf
    "  %-16s %9.1f tps   %6.3f rounds/txn   clog %5.2f/batch   wal \
     %5.2f/batch   %5.2f msgs/pkt   crypto %8.0f ns/txn\n%!"
    label r.tps r.rounds_per_txn r.clog_items_per_batch r.wal_items_per_batch
    r.msgs_per_packet r.crypto_ns_per_txn

let run_pipeline () =
  Common.subsection
    "commit pipeline: batched vs no-batch-crypto vs unbatched \
     (treaty-enc-stab)";
  (* Wide keyspace here too: under a contended keyspace the commit counts
     are dominated by lock-wait interleaving chaos and the batching knobs
     drown in it; protocol-bound, the crypto and coalescing deltas are the
     signal. Always 64 clients — the coalescing factor (msgs/packet) and
     the amortized crypto cost are the whole point of this row, and both
     need offered load. *)
  let ycsb =
    { W.Ycsb.default with W.Ycsb.read_fraction = 0.5; n_keys = 50_000 }
  in
  let clients = 64 in
  Printf.printf "  YCSB 50R/50W, %d clients, 3 nodes, stabilization on\n%!"
    clients;
  let rows =
    [
      ("batched", pipeline_run Config.treaty_enc_stab ~ycsb ~clients);
      ( "no-batch-crypto",
        pipeline_run
          { Config.treaty_enc_stab with Config.batch_crypto = false }
          ~ycsb ~clients );
      ( "unbatched",
        pipeline_run
          { Config.treaty_enc_stab with Config.batching = false }
          ~ycsb ~clients );
    ]
  in
  List.iter (fun (name, r) -> pipeline_print name r) rows;
  write_pipeline_json ~clients rows;
  Printf.printf "  wrote BENCH_commit_pipeline.json\n%!"

let run () =
  Common.section "Figure 4: 2PC protocol in isolation (no storage)";
  (* Wide keyspace: the protocol benchmark must be CPU-bound, not
     lock-bound. *)
  let ycsb = { W.Ycsb.default with W.Ycsb.read_fraction = 0.5; n_keys = 50_000 } in
  let clients = if !Common.full_mode then 300 else 120 in
  Printf.printf "  YCSB 50R/50W, %d ops/tx, %dB values, %d clients, 3 nodes\n%!"
    ycsb.W.Ycsb.ops_per_txn ycsb.W.Ycsb.value_size clients;
  let results =
    List.map
      (fun (label, profile) ->
        let r = ref None in
        Common.run_sim (fun sim ->
            r :=
              Some
                (Common.ycsb_result sim profile ~ycsb ~clients
                   ~engine_overrides:(fun e ->
                     {
                       e with
                       Treaty_storage.Engine.in_memory = true;
                       group_commit = false;
                       wait_commit_stable = false;
                     })));
        (label, Option.get !r))
      profiles
  in
  let baseline = W.Driver.tps (snd (List.hd results)) in
  List.iter
    (fun (label, r) ->
      Common.print_row ~label ~tps:(W.Driver.tps r) ~baseline_tps:baseline
        ~mean_ms:(W.Driver.mean_ms r) ~p99:(W.Driver.p99_ms r))
    results;
  Common.expected
    "Native w/ Enc ~1.0-1.1x, Secure w/o Enc ~1.8x, Secure w/ Enc ~2.0x";
  run_pipeline ()
