(* Figure 4: throughput slowdown of Treaty's 2PC protocol alone — no
   underlying storage — under YCSB 50R/50W (10 ops/tx, 1000 B values),
   normalized to a native, non-secure 2PC.

   Systems: Native 2PC (baseline), Native w/ Enc, Secure (SCONE) w/o Enc,
   Secure (SCONE) w/ Enc. Paper: minimal encryption overhead natively;
   1.8x for SCONE without encryption; 2x for SCONE with encryption. *)

open Treaty_core
module W = Treaty_workload
module Enclave = Treaty_tee.Enclave

let profiles =
  [
    ("Native 2PC", { Config.tee = Enclave.Native; encryption = false; authentication = false; stabilization = false });
    ("Native w/ Enc", { Config.tee = Enclave.Native; encryption = true; authentication = false; stabilization = false });
    ("Secure w/o Enc", { Config.tee = Enclave.Scone; encryption = false; authentication = false; stabilization = false });
    ("Secure w/ Enc", { Config.tee = Enclave.Scone; encryption = true; authentication = false; stabilization = false });
  ]

let run () =
  Common.section "Figure 4: 2PC protocol in isolation (no storage)";
  (* Wide keyspace: the protocol benchmark must be CPU-bound, not
     lock-bound. *)
  let ycsb = { W.Ycsb.default with W.Ycsb.read_fraction = 0.5; n_keys = 50_000 } in
  let clients = if !Common.full_mode then 300 else 120 in
  Printf.printf "  YCSB 50R/50W, %d ops/tx, %dB values, %d clients, 3 nodes\n%!"
    ycsb.W.Ycsb.ops_per_txn ycsb.W.Ycsb.value_size clients;
  let results =
    List.map
      (fun (label, profile) ->
        let r = ref None in
        Common.run_sim (fun sim ->
            r :=
              Some
                (Common.ycsb_result sim profile ~ycsb ~clients
                   ~engine_overrides:(fun e ->
                     {
                       e with
                       Treaty_storage.Engine.in_memory = true;
                       group_commit = false;
                       wait_commit_stable = false;
                     })));
        (label, Option.get !r))
      profiles
  in
  let baseline = W.Driver.tps (snd (List.hd results)) in
  List.iter
    (fun (label, r) ->
      Common.print_row ~label ~tps:(W.Driver.tps r) ~baseline_tps:baseline
        ~mean_ms:(W.Driver.mean_ms r) ~p99:(W.Driver.p99_ms r))
    results;
  Common.expected
    "Native w/ Enc ~1.0-1.1x, Secure w/o Enc ~1.8x, Secure w/ Enc ~2.0x"
