(* Table I: recovery overheads w.r.t. native recovery.

   The paper constructs logs of 800k entries of ~100 B each (69 MiB plain,
   91 MiB encrypted — the worst case for Treaty: many syscalls, many
   decryption calls) and replays them. Expected: Treaty w/o Enc ~1.5x,
   Treaty (w/ Enc) ~2.0x slower than native replay. *)

module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Storage = Treaty_storage

let entries () = if !Common.full_mode then 800_000 else 120_000
let entry_size = 100

type variant = { name : string; mode : Enclave.mode; auth : bool; enc : bool }

let variants =
  [
    { name = "Native recovery"; mode = Enclave.Native; auth = false; enc = false };
    { name = "Treaty w/o Enc"; mode = Enclave.Scone; auth = true; enc = false };
    { name = "Treaty (w/ Enc)"; mode = Enclave.Scone; auth = true; enc = true };
  ]

let measure v =
  let sim = Sim.create () in
  let cost = Treaty_sim.Costmodel.default in
  let enclave =
    Enclave.create sim ~mode:v.mode ~cost ~cores:8 ~node_id:1 ~code_identity:"rec"
  in
  let sec =
    Storage.Sec.create ~enclave ~auth:v.auth
      ~enc:(if v.enc then Some (Treaty_crypto.Aead.key_of_string "k") else None)
      ()
  in
  let ssd = Storage.Ssd.create sim cost in
  let n = entries () in
  let replay_time = ref 0 and log_bytes = ref 0 in
  Sim.run sim (fun () ->
      let log = Storage.Log_auth.create ssd sec ~name:"RECLOG" in
      let payload = String.make entry_size 'e' in
      for _ = 1 to n do
        ignore (Storage.Log_auth.append log payload)
      done;
      log_bytes := Storage.Log_auth.bytes_on_disk log;
      (* Fresh handle = a rebooted node replaying from scratch. *)
      let log2 = Storage.Log_auth.create ssd sec ~name:"RECLOG" in
      let t0 = Sim.now sim in
      (match Storage.Log_auth.replay log2 () with
      | Ok (replayed, dropped) ->
          assert (List.length replayed = n && dropped = 0)
      | Error e ->
          failwith (Format.asprintf "%a" Storage.Log_auth.pp_replay_error e));
      replay_time := Sim.now sim - t0);
  (!replay_time, !log_bytes)

let run () =
  Common.section "Table I: recovery overheads w.r.t. native recovery";
  Printf.printf "  %d entries of %dB each\n" (entries ()) entry_size;
  let results = List.map (fun v -> (v, measure v)) variants in
  let baseline = float_of_int (fst (snd (List.hd results))) in
  List.iter
    (fun (v, (t, bytes)) ->
      Printf.printf "  %-18s log %6.1f MiB   replay %8.2f ms   slowdown %.2fx\n%!"
        v.name
        (float_of_int bytes /. 1048576.0)
        (float_of_int t /. 1e6)
        (float_of_int t /. baseline))
    results;
  Common.expected "Treaty w/o Enc ~1.5x, Treaty (w/ Enc) ~2.0x; logs ~69/91 MiB at 800k entries"
