(* Concurrency-control ablation (PR 6): distributed YCSB under 2PL vs OCC
   with the zero-RPC read-only fast path, 3 nodes, treaty-enc-stab.

   Three mixes bracket the design space: read-only (100%R — every
   transaction takes the snapshot fast path under occ), read-mostly (95%R —
   the fast path rides alongside occasional read-write transactions), and
   write-heavy (20%R — a regression guard: occ validation must not tax a
   mix the fast path barely touches, and 2pl must be unchanged within
   noise). Each row reports throughput, latency, aborts, and how many
   transactions the fast path absorbed. *)

open Treaty_core
module W = Treaty_workload

type row = {
  tps : float;
  mean_ms : float;
  p99_ms : float;
  committed : int;
  aborted : int;
  ro_txns : int;
}

let modes = [ ("2pl", Types.Pessimistic); ("occ", Types.Optimistic) ]

let ycsb_txn_cc cfg ~ro_fast_path =
  let generators = Hashtbl.create 16 in
  fun client ~client_index rng ->
    let g =
      match Hashtbl.find_opt generators client_index with
      | Some g -> g
      | None ->
          let g = W.Ycsb.generator cfg rng in
          Hashtbl.replace generators client_index g;
          g
    in
    W.Ycsb.run_txn ~ro_fast_path client None (W.Ycsb.next_txn g)

let run_one ~isolation ~read_fraction =
  let out = ref None in
  Common.run_sim (fun sim ->
      let ycsb = { W.Ycsb.default with W.Ycsb.read_fraction } in
      let config =
        { (Common.base_config Config.treaty_enc_stab) with Config.isolation }
      in
      let cluster = Common.make_cluster sim config () in
      Common.load_ycsb cluster ycsb;
      let ro_fast_path = isolation = Types.Optimistic in
      let r =
        W.Driver.run_clients cluster
          ~clients:(Common.scale_clients 96)
          ~duration_ns:(Common.duration_ns ())
          ~warmup_ns:(Common.warmup_ns ())
          ~txn:(ycsb_txn_cc ycsb ~ro_fast_path)
          ()
      in
      let ro_txns =
        List.fold_left
          (fun acc i ->
            acc + (Node.stats (Cluster.node cluster i)).Node.read_only_committed)
          0
          (List.init (Cluster.n_nodes cluster) Fun.id)
      in
      Cluster.shutdown cluster;
      out :=
        Some
          {
            tps = W.Driver.tps r;
            mean_ms = W.Driver.mean_ms r;
            p99_ms = W.Driver.p99_ms r;
            committed = W.Stats.committed r.W.Driver.stats;
            aborted = W.Stats.aborted r.W.Driver.stats;
            ro_txns;
          });
  Option.get !out

let print label (r : row) =
  Printf.printf
    "  %-6s %10.1f tps   lat %6.2f ms (p99 %6.2f)   %6d committed   %4d \
     aborted   %6d via ro fast path\n%!"
    label r.tps r.mean_ms r.p99_ms r.committed r.aborted r.ro_txns

let json_row b ~mix ~mode (r : row) =
  Printf.bprintf b
    "    { \"mix\": %S, \"cc\": %S, \"tps\": %.1f, \"mean_ms\": %.3f, \
     \"p99_ms\": %.3f, \"committed\": %d, \"aborted\": %d, \"ro_txns\": %d }"
    mix mode r.tps r.mean_ms r.p99_ms r.committed r.aborted r.ro_txns

let run () =
  Common.section "Concurrency-control ablation: 2PL vs OCC + read-only fast path";
  let mixes =
    [ ("read-only", 1.0); ("read-mostly", 0.95); ("write-heavy", 0.2) ]
  in
  let results =
    List.map
      (fun (mix, read_fraction) ->
        Common.subsection
          (Printf.sprintf "%s (%.0f%% reads)" mix (read_fraction *. 100.0));
        let rows =
          List.map
            (fun (mode, isolation) ->
              let r = run_one ~isolation ~read_fraction in
              print mode r;
              (mode, r))
            modes
        in
        (match (List.assoc_opt "2pl" rows, List.assoc_opt "occ" rows) with
        | Some p, Some o when p.tps > 0.0 ->
            Printf.printf "  occ/2pl speedup: %.2fx\n%!" (o.tps /. p.tps)
        | _ -> ());
        (mix, rows))
      mixes
  in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"bench\": \"cc\",\n  \"mode\": %S,\n  \"rows\": [\n"
    (if !Common.full_mode then "full" else "quick");
  let first = ref true in
  List.iter
    (fun (mix, rows) ->
      List.iter
        (fun (mode, r) ->
          if not !first then Buffer.add_string b ",\n";
          first := false;
          json_row b ~mix ~mode r)
        rows)
    results;
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out "BENCH_cc.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "  wrote BENCH_cc.json\n%!"
