(** Distributed trusted counter service (§VI; after ROTE).

    SGX's hardware monotonic counters are too slow (~250 ms), wear out, and
    are private per CPU — so Treaty adopts a ROTE-style protection group:
    counter state is replicated in the enclaves of the group's nodes, and an
    increment runs an echo-broadcast with a final confirmation:

    1. the sender enclave (SE) broadcasts the counter update;
    2. each receiver enclave (RE) stores it in protected memory and echoes;
    3. on a quorum of echoes the SE starts a second round;
    4. each RE checks the value matches what it stored and (N)ACKs;
    5. on a quorum of ACKs the SE seals its state; the value is durable
       against the crash of any minority of the group.

    Counters are named by (owner node, log name) — one per authenticated log
    file. A counter value is *trusted* once incremented through the group:
    recovery asks the group ({!query}) and compares log tails against it. *)

type replica

val kind_echo1 : int
val kind_echo2 : int
val kind_query : int
(** RPC handler kinds registered on each group member's endpoint. *)

type stats = {
  mutable increments : int;
      (** Confirmed-or-failed increment attempts (an epoch batch counts 1). *)
  mutable rounds : int;  (** Broadcast rounds run (2 per successful increment). *)
  mutable quorum_failures : int;
  mutable queries : int;
  mutable targets : int;
      (** Total (log, value) targets carried across all increments —
          [targets / increments] is the epoch-batching factor. *)
}

val create_replica :
  Treaty_rpc.Erpc.t ->
  group:int list ->
  ?persist:(string -> unit) ->
  ?restore:(unit -> string list) ->
  unit ->
  replica
(** Join the protection group [group] (node ids, self included), registering
    the counter RPC handlers on this node's endpoint. [persist] receives the
    sealed counter state after each confirmed increment; [restore] returns
    previously persisted blobs, oldest first — the newest one that unseals
    under this enclave's identity re-seeds the replica (ROTE step 5: a
    restarting SE resumes from its sealed state, so a crashed node's own
    counters survive even when the peers that ack'd them are down too).
    Restored state can only be stale-or-equal, never ahead, so the group
    [query] max stays correct; rolling the sealed file back is caught by any
    live peer holding a higher value. *)

val stats : replica -> stats
val sim : replica -> Treaty_sim.Sim.t

val increment :
  replica -> owner:int -> log:string -> value:int -> (unit, [ `No_quorum ]) result
(** Run the echo-broadcast to make [value] the trusted value of
    [(owner, log)]. Values must be submitted in increasing order; a larger
    value subsumes smaller ones. Blocks the calling fiber for the protocol
    rounds (~2 ms); fails if a quorum of the group is unreachable. *)

val increment_batch :
  replica ->
  owner:int ->
  targets:(string * int) list ->
  (unit, [ `No_quorum ]) result
(** Epoch-batched increment: one echo-broadcast (two rounds) carries one
    target value per log, so stabilizing WAL + MANIFEST + Clog costs the
    same as stabilizing one of them. Receivers treat the batch
    all-or-nothing: the second-round ack confirms every target, and on
    [Ok ()] all targets are trusted. [targets = \[\]] is a no-op. *)

val local_value : replica -> owner:int -> log:string -> int
(** This replica's in-enclave view (0 if unknown). *)

val query :
  replica -> owner:int -> log:string -> (int, [ `No_quorum ]) result
(** Quorum read for recovery: the highest value any quorum member holds. *)
