module Sim = Treaty_sim.Sim
module Erpc = Treaty_rpc.Erpc
module Enclave = Treaty_tee.Enclave
module Wire = Treaty_util.Wire

let kind_echo1 = 101
let kind_echo2 = 102
let kind_query = 103

type stats = {
  mutable increments : int;
  mutable rounds : int;
  mutable quorum_failures : int;
  mutable queries : int;
  mutable targets : int;
}

type replica = {
  rpc : Erpc.t;
  group : int list;
  quorum : int;
  (* In-enclave counter store: (owner, log) -> committed value, plus the
     first-round pending value awaiting confirmation. *)
  committed : (int * string, int) Hashtbl.t;
  pending : (int * string, int) Hashtbl.t;
  persist : string -> unit;
  stats : stats;
}

let proc_cost t =
  let e = Erpc.enclave t.rpc in
  Enclave.compute e (Enclave.cost e).rote_proc_ns

let seal_cost t =
  let e = Erpc.enclave t.rpc in
  Enclave.compute e (Enclave.cost e).rote_seal_ns

(* Echo rounds carry a batch of (log, value) targets for one owner — a
   single protocol round stabilizes every log that has pending submissions
   (the epoch pump in Counter_client drains all logs per round). *)
let encode_batch ~owner ~targets =
  let b = Buffer.create 64 in
  Wire.w64 b owner;
  Wire.wlist b
    (fun b (log, value) ->
      Wire.wstr b log;
      Wire.w64 b value)
    targets;
  Buffer.contents b

let decode_batch payload =
  let r = Wire.reader payload in
  let owner = Wire.r64 r in
  let targets =
    Wire.rlist r (fun r ->
        let log = Wire.rstr r in
        let value = Wire.r64 r in
        (log, value))
  in
  (owner, targets)

(* Receiver-enclave transitions, shared between the registered RPC handlers
   and the sender's local participation in [round]. *)
let apply_echo1 t ~owner targets =
  List.iter
    (fun (log, value) -> Hashtbl.replace t.pending (owner, log) value)
    targets;
  "echo"

let apply_echo2 t ~owner targets =
  (* All-or-nothing: the ack confirms the whole epoch batch, so a single
     mismatched target (a concurrent round replaced the pending value)
     nacks without committing anything. *)
  let all_match =
    List.for_all
      (fun (log, value) ->
        match Hashtbl.find_opt t.pending (owner, log) with
        | Some v -> v = value
        | None -> false)
      targets
  in
  if all_match then begin
    List.iter
      (fun (log, value) ->
        let cur =
          Option.value ~default:0 (Hashtbl.find_opt t.committed (owner, log))
        in
        Hashtbl.replace t.committed (owner, log) (max cur value);
        Hashtbl.remove t.pending (owner, log))
      targets;
    "ack"
  end
  else "nack"

let seal_state t =
  (* Seal the committed table to this enclave's identity. *)
  let b = Buffer.create 256 in
  Hashtbl.iter
    (fun (owner, log) v ->
      Wire.w64 b owner;
      Wire.wstr b log;
      Wire.w64 b v)
    t.committed;
  seal_cost t;
  t.persist (Enclave.seal (Erpc.enclave t.rpc) (Buffer.contents b))

let create_replica rpc ~group ?(persist = fun _ -> ()) ?(restore = fun () -> [])
    () =
  let t =
    {
      rpc;
      group;
      quorum = (List.length group / 2) + 1;
      committed = Hashtbl.create 32;
      pending = Hashtbl.create 8;
      persist;
      stats =
        { increments = 0; rounds = 0; quorum_failures = 0; queries = 0; targets = 0 };
    }
  in
  (* Re-seed from the newest sealed snapshot that authenticates (a torn or
     tampered tail just falls back to the previous one). *)
  let load plain =
    let r = Wire.reader plain in
    let rec go () =
      if not (Wire.at_end r) then begin
        let owner = Wire.r64 r in
        let log = Wire.rstr r in
        let value = Wire.r64 r in
        let cur = Option.value ~default:0 (Hashtbl.find_opt t.committed (owner, log)) in
        Hashtbl.replace t.committed (owner, log) (max cur value);
        go ()
      end
    in
    (try go () with Wire.Malformed _ -> ())
  in
  let rec try_restore = function
    | [] -> ()
    | blob :: older -> (
        match Enclave.unseal (Erpc.enclave rpc) blob with
        | Ok plain -> load plain
        | Error (`Mac_mismatch | `Truncated) -> try_restore older)
  in
  try_restore (List.rev (restore ()));
  Erpc.register rpc ~kind:kind_echo1 (fun _meta payload ->
      proc_cost t;
      let owner, targets = decode_batch payload in
      apply_echo1 t ~owner targets);
  Erpc.register rpc ~kind:kind_echo2 (fun _meta payload ->
      proc_cost t;
      let owner, targets = decode_batch payload in
      apply_echo2 t ~owner targets);
  Erpc.register rpc ~kind:kind_query (fun _meta payload ->
      proc_cost t;
      let r = Wire.reader payload in
      let owner = Wire.r64 r in
      let log = Wire.rstr r in
      let v = Option.value ~default:0 (Hashtbl.find_opt t.committed (owner, log)) in
      let b = Buffer.create 8 in
      Wire.w64 b v;
      Buffer.contents b);
  t

let stats t = t.stats
let sim t = Enclave.sim (Erpc.enclave t.rpc)

(* Broadcast one round to the whole group (self included, handled locally)
   and count successes; returns the reply payloads. *)
let round t ~kind ~payload =
  t.stats.rounds <- t.stats.rounds + 1;
  (* Epoch alignment/batch formation in the ROTE service: waiting, not CPU. *)
  Sim.sleep (sim t) (Enclave.cost (Erpc.enclave t.rpc)).rote_round_latency_ns;
  let self = Erpc.node_id t.rpc in
  let replies = ref [] in
  let latch = Treaty_sched.Scheduler.Latch.create (List.length t.group) in
  List.iter
    (fun peer ->
      Sim.spawn (Enclave.sim (Erpc.enclave t.rpc)) (fun () ->
          (if peer = self then begin
             (* Local participation without a network hop. *)
             proc_cost t;
             match kind with
             | k when k = kind_echo1 ->
                 let owner, targets = decode_batch payload in
                 replies := apply_echo1 t ~owner targets :: !replies
             | k when k = kind_echo2 ->
                 let owner, targets = decode_batch payload in
                 replies := apply_echo2 t ~owner targets :: !replies
             | _ -> ()
           end
           else
             match Erpc.call t.rpc ~dst:peer ~kind ~timeout_ns:10_000_000 payload with
             | Ok reply -> replies := reply :: !replies
             | Error (`Timeout | `Tampered) -> ());
          Treaty_sched.Scheduler.Latch.arrive latch))
    t.group;
  Treaty_sched.Scheduler.Latch.wait
    (Sim.sched (Enclave.sim (Erpc.enclave t.rpc)))
    latch;
  !replies

let increment_batch t ~owner ~targets =
  match targets with
  | [] -> Ok ()
  | _ ->
      t.stats.increments <- t.stats.increments + 1;
      t.stats.targets <- t.stats.targets + List.length targets;
      let payload = encode_batch ~owner ~targets in
      let echoes = round t ~kind:kind_echo1 ~payload in
      let ok_echoes = List.length (List.filter (( = ) "echo") echoes) in
      if ok_echoes < t.quorum then begin
        t.stats.quorum_failures <- t.stats.quorum_failures + 1;
        Error `No_quorum
      end
      else begin
        let acks = round t ~kind:kind_echo2 ~payload in
        let ok_acks = List.length (List.filter (( = ) "ack") acks) in
        if ok_acks < t.quorum then begin
          t.stats.quorum_failures <- t.stats.quorum_failures + 1;
          Error `No_quorum
        end
        else begin
          seal_state t;
          Ok ()
        end
      end

let increment t ~owner ~log ~value =
  increment_batch t ~owner ~targets:[ (log, value) ]

let local_value t ~owner ~log =
  Option.value ~default:0 (Hashtbl.find_opt t.committed (owner, log))

let query t ~owner ~log =
  t.stats.queries <- t.stats.queries + 1;
  let b = Buffer.create 16 in
  Wire.w64 b owner;
  Wire.wstr b log;
  let payload = Buffer.contents b in
  let replies = round t ~kind:kind_query ~payload in
  let values =
    List.filter_map
      (fun reply ->
        if reply = "echo" || reply = "ack" || reply = "nack" then None
        else
          match Wire.r64 (Wire.reader reply) with
          | v -> Some v
          | exception Wire.Malformed _ -> None)
      replies
  in
  let values = local_value t ~owner ~log :: values in
  if List.length replies + 1 < t.quorum then Error `No_quorum
  else Ok (List.fold_left max 0 values)
