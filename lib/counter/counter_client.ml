module Sim = Treaty_sim.Sim
module Trace = Treaty_obs.Trace

type stats = {
  mutable submits : int;
  mutable rounds_started : int;
  mutable waits : int;
  mutable failed_waits : int;
}

type log_state = {
  mutable stable : int;
  mutable target : int;  (* highest submitted value *)
  mutable waiters : (int * (unit, [ `Stability_timeout ]) result Sim.ivar) list;
}

type t = {
  replica : Rote.replica;
  owner : int;
  sim : Sim.t;
  logs : (string, log_state) Hashtbl.t;
  stats : stats;
  attempts : int;
  retry_backoff_ns : int;
  batch_logs : bool;
  epoch_window_ns : int;
  mutable pump_active : bool;
  mutable round_span : Trace.span;
      (* Open "rote.round" span: begun by the first submit since the last
         round completed — while its caller (a group-commit flush span) is
         still open, so the parent link is well-formed — and ended when the
         round that covers it finishes. *)
}

let create ?(attempts = 40) ?(retry_backoff_ns = 2_000_000) ?(batch_logs = true)
    ?epoch_window_ns replica ~owner =
  let epoch_window_ns =
    (* The accumulation window only exists for the batched pipeline; the
       per-log ablation keeps the fire-immediately behaviour. *)
    match epoch_window_ns with
    | Some w -> w
    | None -> if batch_logs then 250_000 else 0
  in
  {
    replica;
    owner;
    sim = Rote.sim replica;
    logs = Hashtbl.create 8;
    stats = { submits = 0; rounds_started = 0; waits = 0; failed_waits = 0 };
    attempts;
    retry_backoff_ns;
    batch_logs;
    epoch_window_ns;
    pump_active = false;
    round_span = Trace.none;
  }

let log_state t log =
  match Hashtbl.find_opt t.logs log with
  | Some s -> s
  | None ->
      let s = { stable = 0; target = 0; waiters = [] } in
      Hashtbl.replace t.logs log s;
      s

let wake_waiters s =
  let ready, rest = List.partition (fun (c, _) -> c <= s.stable) s.waiters in
  s.waiters <- rest;
  List.iter (fun (_, iv) -> Sim.fill iv (Ok ())) ready

(* Every log with submissions ahead of its trusted value, sorted by name so
   the batch an epoch carries is independent of Hashtbl iteration order. *)
let pending_targets t =
  Hashtbl.fold
    (fun log s acc -> if s.target > s.stable then (log, s.target) :: acc else acc)
    t.logs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let fail_all_waiters t =
  Hashtbl.iter
    (fun _ s ->
      let abandoned = s.waiters in
      s.waiters <- [];
      List.iter
        (fun (_, iv) ->
          t.stats.failed_waits <- t.stats.failed_waits + 1;
          Sim.fill iv (Error `Stability_timeout))
        abandoned)
    t.logs

(* The epoch pump: while any log has pending targets, run one batched ROTE
   increment carrying the current high-water mark of every such log, then
   wake the waiters it covered. One pump per client — cross-log batching
   replaces the old one-round-in-flight-per-log machinery. *)
let rec pump t ~attempts =
  (* Epoch accumulation: let a window of submissions pile up before the
     round fires, so the ~per-round protocol cost is shared by every
     transaction that lands inside it (group commit applied to counter
     rounds). Pays up to [epoch_window_ns] extra stabilization latency. *)
  if t.epoch_window_ns > 0 then Sim.sleep t.sim t.epoch_window_ns;
  match pending_targets t with
  | [] -> t.pump_active <- false
  | targets -> (
      let targets = if t.batch_logs then targets else [ List.hd targets ] in
      t.stats.rounds_started <- t.stats.rounds_started + 1;
      if Trace.enabled () && t.round_span = Trace.none then
        (* Back-to-back rounds drained by one pump run: targets landed while
           the previous round was in flight, no submit span to parent on. *)
        t.round_span <-
          Trace.begin_span ~node:t.owner ~cat:"counter" "rote.round";
      let end_round status =
        let rs = t.round_span in
        t.round_span <- Trace.none;
        Trace.end_span rs
          ~args:
            [ ("targets", Trace.Int (List.length targets));
              ("status", Trace.Str status) ]
      in
      match Rote.increment_batch t.replica ~owner:t.owner ~targets with
      | Ok () ->
          end_round "ok";
          List.iter
            (fun (log, value) ->
              let s = log_state t log in
              s.stable <- max s.stable value;
              wake_waiters s)
            targets;
          pump t ~attempts:t.attempts
      | Error `No_quorum ->
          (* Availability loss, not a safety issue: retry with a backoff (the
             fault model is crash-recovery, so the quorum normally returns).
             Bounded so a torn-down cluster drains instead of spinning; when
             retries are exhausted every waiter is failed with
             [`Stability_timeout] — a later submit restarts the pump with a
             fresh retry budget. *)
          if attempts > 0 then begin
            Sim.sleep t.sim t.retry_backoff_ns;
            pump t ~attempts:(attempts - 1)
          end
          else begin
            end_round "no_quorum";
            t.pump_active <- false;
            fail_all_waiters t
          end)

let ensure_pump t =
  if (not t.pump_active) && pending_targets t <> [] then begin
    t.pump_active <- true;
    Sim.spawn t.sim (fun () -> pump t ~attempts:t.attempts)
  end

let submit ?(span = Trace.none) t ~log ~counter =
  t.stats.submits <- t.stats.submits + 1;
  let s = log_state t log in
  if counter > s.target then s.target <- counter;
  if Trace.enabled () && t.round_span = Trace.none then
    t.round_span <-
      Trace.begin_span ~parent:span ~node:t.owner ~cat:"counter" "rote.round";
  ensure_pump t

let wait_stable t ~log ~counter =
  let s = log_state t log in
  if counter <= s.stable then Ok ()
  else begin
    t.stats.waits <- t.stats.waits + 1;
    if counter > s.target then s.target <- counter;
    let iv = Sim.ivar () in
    s.waiters <- (counter, iv) :: s.waiters;
    ensure_pump t;
    Sim.read t.sim iv
  end

let stable_value t ~log = (log_state t log).stable
let stats t = t.stats

let trusted_for_recovery t ~log = Rote.query t.replica ~owner:t.owner ~log
