module Sim = Treaty_sim.Sim
type stats = {
  mutable submits : int;
  mutable rounds_started : int;
  mutable waits : int;
}

type log_state = {
  mutable stable : int;
  mutable target : int;  (* highest submitted value *)
  mutable in_flight : bool;
  mutable waiters : (int * unit Sim.ivar) list;
}

type t = {
  replica : Rote.replica;
  owner : int;
  sim : Sim.t;
  logs : (string, log_state) Hashtbl.t;
  stats : stats;
}

let create replica ~owner =
  {
    replica;
    owner;
    sim = Rote.sim replica;
    logs = Hashtbl.create 8;
    stats = { submits = 0; rounds_started = 0; waits = 0 };
  }

let log_state t log =
  match Hashtbl.find_opt t.logs log with
  | Some s -> s
  | None ->
      let s = { stable = 0; target = 0; in_flight = false; waiters = [] } in
      Hashtbl.replace t.logs log s;
      s

let wake_waiters s =
  let ready, rest = List.partition (fun (c, _) -> c <= s.stable) s.waiters in
  s.waiters <- rest;
  List.iter (fun (_, iv) -> Sim.fill iv ()) ready

let rec run_round t log s ~attempts =
  let value = s.target in
  t.stats.rounds_started <- t.stats.rounds_started + 1;
  match Rote.increment t.replica ~owner:t.owner ~log ~value with
  | Ok () ->
      s.stable <- max s.stable value;
      wake_waiters s;
      if s.target > s.stable then run_round t log s ~attempts:40
      else s.in_flight <- false
  | Error `No_quorum ->
      (* Availability loss, not a safety issue: retry with a backoff (the
         fault model is crash-recovery, so the quorum normally returns).
         Bounded so a torn-down cluster drains instead of spinning; waiters
         of an abandoned round stay blocked, exactly like a partitioned
         node. *)
      if attempts > 0 then begin
        Sim.sleep t.sim 2_000_000;
        run_round t log s ~attempts:(attempts - 1)
      end
      else s.in_flight <- false

let submit t ~log ~counter =
  t.stats.submits <- t.stats.submits + 1;
  let s = log_state t log in
  if counter > s.target then s.target <- counter;
  if (not s.in_flight) && s.target > s.stable then begin
    s.in_flight <- true;
    Sim.spawn t.sim (fun () -> run_round t log s ~attempts:40)
  end

let wait_stable t ~log ~counter =
  let s = log_state t log in
  if counter > s.stable then begin
    t.stats.waits <- t.stats.waits + 1;
    if counter > s.target then submit t ~log ~counter;
    let iv = Sim.ivar () in
    s.waiters <- (counter, iv) :: s.waiters;
    Sim.read t.sim iv
  end

let stable_value t ~log = (log_state t log).stable
let stats t = t.stats

let trusted_for_recovery t ~log = Rote.query t.replica ~owner:t.owner ~log
