(** Asynchronous stabilization interface over the trusted counter service
    (§VI: "The communication is asynchronous to maximize CPU usage").

    Log appends call {!submit} with their counter value and keep working;
    fibers that must not proceed until an entry is rollback-protected call
    {!wait_stable}. A single *epoch pump* fiber drains the pending targets
    of every log per ROTE round: each batched increment carries the highest
    submitted value of each dirty log (WAL, MANIFEST, Clog), so bursts of
    appends across all logs coalesce into one round — the batching that
    keeps the ~2 ms round latency off the throughput path. *)

type t

type stats = {
  mutable submits : int;
  mutable rounds_started : int;
      (** Batched increment attempts — with the epoch pump this is rounds
          per *epoch*, not per log: [submits / rounds_started] is the
          coalescing factor. *)
  mutable waits : int;
  mutable failed_waits : int;
      (** Waiters failed with [`Stability_timeout] after the pump exhausted
          its quorum retries. *)
}

val create :
  ?attempts:int ->
  ?retry_backoff_ns:int ->
  ?batch_logs:bool ->
  ?epoch_window_ns:int ->
  Rote.replica ->
  owner:int ->
  t
(** [owner] is the node whose logs this client stabilizes. [attempts]
    (default 40) bounds consecutive no-quorum retries before pending waiters
    are failed; [retry_backoff_ns] (default 2 ms) is the sleep between
    retries. [batch_logs:false] restricts each round to a single log — the
    ablation knob reproducing the pre-batching one-round-per-log behaviour.
    [epoch_window_ns] (default 250 µs batched, 0 unbatched) is how long the
    pump accumulates submissions before each round: the group-commit trade
    of a bounded latency hit for rounds amortized across transactions. *)

val stats : t -> stats

val submit :
  ?span:Treaty_obs.Trace.span -> t -> log:string -> counter:int -> unit
(** Note that [counter] has been appended to [log]; start (or piggyback on)
    the epoch pump. Returns immediately. When tracing, the first submit
    since the last completed round opens the next ["rote.round"] span as a
    child of [span] (typically the group-commit flush span, still open at
    that point), so epoch rounds nest under the flush that triggered
    them. *)

val wait_stable :
  t -> log:string -> counter:int -> (unit, [ `Stability_timeout ]) result
(** Block the calling fiber until [counter] is trusted. [Error] means the
    pump exhausted its quorum retries while this waiter was pending — the
    counter may still stabilize later, but the caller must treat the entry
    as not rollback-protected (abort, don't ack). *)

val stable_value : t -> log:string -> int

val trusted_for_recovery : t -> log:string -> (int, [ `No_quorum ]) result
(** Quorum-query the group (used by a recovering node whose local state is
    gone). *)
