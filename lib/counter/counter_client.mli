(** Asynchronous stabilization interface over the trusted counter service
    (§VI: "The communication is asynchronous to maximize CPU usage").

    Log appends call {!submit} with their counter value and keep working;
    fibers that must not proceed until an entry is rollback-protected call
    {!wait_stable}. One increment round is in flight per log at a time, and
    it always carries the *highest* submitted value, so bursts of appends
    coalesce into one ROTE round — the batching that keeps the ~2 ms round
    latency off the throughput path. *)

type t

type stats = {
  mutable submits : int;
  mutable rounds_started : int;
  mutable waits : int;
}

val create : Rote.replica -> owner:int -> t
(** [owner] is the node whose logs this client stabilizes. *)

val stats : t -> stats

val submit : t -> log:string -> counter:int -> unit
(** Note that [counter] has been appended to [log]; start (or piggyback on)
    an increment round. Returns immediately. *)

val wait_stable : t -> log:string -> counter:int -> unit
(** Block the calling fiber until [counter] is trusted. *)

val stable_value : t -> log:string -> int

val trusted_for_recovery : t -> log:string -> (int, [ `No_quorum ]) result
(** Quorum-query the group (used by a recovering node whose local state is
    gone). *)
