(** Scalable mempool allocator for transaction and message buffers (§VII-D).

    The paper splits in-memory data between enclave and untrusted host
    memory: all network message buffers live in host memory (in 2 MiB
    hugepages) at the cost of encryption, while transaction-private state
    stays in the enclave. Its allocator assigns threads to heaps by a hash of
    their id and recycles buffers to keep mapped memory small.

    This model reproduces those mechanics: size-class free lists, multiple
    heaps selected by a caller id, explicit [Host] vs [Enclave] regions that
    feed the {!Treaty_tee.Enclave} EPC accounting (so allocating message
    buffers in the enclave really does trigger simulated paging — the
    ablation in the benchmarks), and recycling statistics. *)

type region = Host | Enclave

type buf = private {
  bytes : Bytes.t;  (** Backing storage, size-class sized. *)
  mutable size : int;  (** Requested size. *)
  region : region;
  mutable freed : bool;
}

type stats = {
  mutable allocations : int;
  mutable recycled : int;  (** Allocations served from a free list. *)
  mutable mapped_host : int;  (** Bytes of fresh host memory mapped. *)
  mutable mapped_enclave : int;
  mutable live : int;  (** Currently outstanding buffers. *)
}

type t

val create : ?heaps:int -> ?sanitize:bool -> Treaty_tee.Enclave.t -> t
(** [heaps] (default 8) is the number of independent free-list sets; callers
    are spread across them by {!alloc}'s [owner] hash. With [sanitize]
    (default false), double frees and quiescence-time leaks are also
    recorded with TreatySan ({!Treaty_util.Sanitizer}). *)

val alloc : t -> ?owner:int -> region -> int -> buf
(** [alloc t ~owner region n] returns a buffer of at least [n] bytes from the
    owner's heap. Fresh enclave allocations are charged to the EPC (possibly
    paging); recycled ones only pay a touch. *)

val free : t -> ?owner:int -> buf -> unit
(** Return a buffer to its heap's free list. Double frees raise
    [Invalid_argument]. *)

val stats : t -> stats

val class_size : int -> int
(** The size class (power of two, >= 64) that a request of [n] bytes maps
    to. Exposed for tests. *)

val leak_check : t -> what:string -> unit
(** Record a [Buf_leak] TreatySan violation if any buffer is still
    outstanding — call once the run is quiescent (every wire-path
    allocation must have been freed by then). No-op unless the pool was
    created with [~sanitize:true]. *)
