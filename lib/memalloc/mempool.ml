type region = Host | Enclave

type buf = {
  bytes : Bytes.t;
  mutable size : int;
  region : region;
  mutable freed : bool;
}

type stats = {
  mutable allocations : int;
  mutable recycled : int;
  mutable mapped_host : int;
  mutable mapped_enclave : int;
  mutable live : int;
}

(* One heap = free lists indexed by size-class exponent, per region. *)
type heap = { host_free : buf list array; enclave_free : buf list array }

type t = {
  enclave : Treaty_tee.Enclave.t;
  heaps : heap array;
  stats : stats;
  sanitize : bool;
}

let max_class_exp = 26 (* up to 64 MiB *)
let min_class_exp = 6 (* 64 B *)

(* Size-class lookup sits on the per-packet hot path: a branch-free loop over
   the exponent replaces the old doubling + log2 recursion pair (which
   allocated two call chains per alloc/free). *)
let class_exp n =
  let e = ref min_class_exp in
  while 1 lsl !e < n do incr e done;
  !e

let class_size n = 1 lsl class_exp n

let fresh_heap () =
  {
    host_free = Array.make (max_class_exp + 1) [];
    enclave_free = Array.make (max_class_exp + 1) [];
  }

let create ?(heaps = 8) ?(sanitize = false) enclave =
  {
    enclave;
    heaps = Array.init (max 1 heaps) (fun _ -> fresh_heap ());
    stats = { allocations = 0; recycled = 0; mapped_host = 0; mapped_enclave = 0; live = 0 };
    sanitize;
  }

let heap_of t owner = t.heaps.(abs (owner * 0x9E3779B1) mod Array.length t.heaps)

let alloc t ?(owner = 0) region n =
  if n > 1 lsl max_class_exp then invalid_arg "Mempool.alloc: too large";
  let heap = heap_of t owner in
  let exp = class_exp n in
  let free = match region with Host -> heap.host_free | Enclave -> heap.enclave_free in
  t.stats.allocations <- t.stats.allocations + 1;
  t.stats.live <- t.stats.live + 1;
  match free.(exp) with
  | b :: rest ->
      free.(exp) <- rest;
      t.stats.recycled <- t.stats.recycled + 1;
      if region = Enclave then
        Treaty_tee.Enclave.touch_enclave t.enclave (Bytes.length b.bytes);
      b.freed <- false;
      b.size <- n;
      b
  | [] ->
      let c = class_size n in
      (match region with
      | Host ->
          t.stats.mapped_host <- t.stats.mapped_host + c;
          Treaty_tee.Enclave.alloc_host t.enclave c
      | Enclave ->
          t.stats.mapped_enclave <- t.stats.mapped_enclave + c;
          Treaty_tee.Enclave.alloc_enclave t.enclave c);
      { bytes = Bytes.create c; size = n; region; freed = false }

let free t ?(owner = 0) b =
  if b.freed then begin
    if t.sanitize then
      Treaty_util.Sanitizer.record Treaty_util.Sanitizer.Buf_double_free
        (Printf.sprintf "mempool: double free of a %d-byte %s buffer"
           (Bytes.length b.bytes)
           (match b.region with Host -> "host" | Enclave -> "enclave"));
    invalid_arg "Mempool.free: double free"
  end;
  b.freed <- true;
  t.stats.live <- t.stats.live - 1;
  let heap = heap_of t owner in
  let exp = class_exp (Bytes.length b.bytes) in
  let free_lists =
    match b.region with Host -> heap.host_free | Enclave -> heap.enclave_free
  in
  free_lists.(exp) <- b :: free_lists.(exp)

let stats t = t.stats

let leak_check t ~what =
  if t.sanitize && t.stats.live > 0 then
    Treaty_util.Sanitizer.record Treaty_util.Sanitizer.Buf_leak
      (Printf.sprintf "mempool %s: %d buffer(s) still outstanding at quiescence"
         what t.stats.live)
