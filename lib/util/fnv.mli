(** Deterministic FNV-1a string hash.

    [Hashtbl.hash] is seeded per-process in some configurations and its
    output is not specified across compiler versions, so any use of it on
    keyed data (shard selection, routing) is a reproducibility hazard for
    the deterministic simulator. This hash is fixed by construction and
    always non-negative. *)

val hash : string -> int
