(** Binary record encoding shared by the log, SSTable and message formats.

    Fixed-width little-endian integers and length-prefixed strings over a
    [Buffer.t] writer and a cursor-based reader. Decoding raises {!Malformed}
    on truncated or corrupt input — callers on untrusted data (log replay,
    block parsing) catch it and treat it as an integrity failure. *)

exception Malformed of string

val w8 : Buffer.t -> int -> unit
val w32 : Buffer.t -> int -> unit
val w64 : Buffer.t -> int -> unit
val wbool : Buffer.t -> bool -> unit
val wstr : Buffer.t -> string -> unit
(** 32-bit length prefix + bytes. *)

val wlist : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val at_end : reader -> bool
val r8 : reader -> int
val r32 : reader -> int
val r64 : reader -> int
val rbool : reader -> bool
val rstr : reader -> string
val rlist : reader -> (reader -> 'a) -> 'a list
val rbytes : reader -> int -> string
(** Raw bytes without a length prefix. *)
