type kind =
  | Lock_leak
  | Lock_zombie
  | Lock_conflict
  | Fiber_stall
  | Plaintext
  | Snapshot_leak
  | Buf_leak
  | Buf_double_free

type event = { kind : kind; detail : string }

let kind_to_string = function
  | Lock_leak -> "lock-leak"
  | Lock_zombie -> "lock-zombie"
  | Lock_conflict -> "lock-conflict"
  | Fiber_stall -> "fiber-stall"
  | Plaintext -> "plaintext"
  | Snapshot_leak -> "snapshot-leak"
  | Buf_leak -> "buf-leak"
  | Buf_double_free -> "buf-double-free"

(* Deadlock-suspect hold-and-wait timeouts are the system's by-design
   deadlock-resolution strategy (§V-B), so they are surfaced as warnings,
   not violations. *)
let is_violation = function
  | Lock_leak | Lock_zombie | Fiber_stall | Plaintext | Snapshot_leak
  | Buf_leak | Buf_double_free ->
      true
  | Lock_conflict -> false

let max_events = 256
let events_rev : event list ref = ref []
let recorded = ref 0
let counts = Hashtbl.create 8

let reset () =
  events_rev := [];
  recorded := 0;
  Hashtbl.reset counts

let record kind detail =
  recorded := !recorded + 1;
  Hashtbl.replace counts kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind));
  if List.length !events_rev < max_events then
    events_rev := { kind; detail } :: !events_rev

let events () = List.rev !events_rev
let count kind = Option.value ~default:0 (Hashtbl.find_opt counts kind)

let violations () =
  Hashtbl.fold
    (fun kind n acc -> if is_violation kind then acc + n else acc)
    counts 0

let report () =
  let shown =
    List.filter_map
      (fun e ->
        if is_violation e.kind then
          Some (Printf.sprintf "[%s] %s" (kind_to_string e.kind) e.detail)
        else None)
      (events ())
  in
  let n = violations () in
  let lines =
    if n > List.length shown then
      shown @ [ Printf.sprintf "... and %d more" (n - List.length shown) ]
    else shown
  in
  String.concat "; " lines
