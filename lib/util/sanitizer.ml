type kind =
  | Lock_leak
  | Lock_zombie
  | Lock_conflict
  | Fiber_stall
  | Plaintext
  | Snapshot_leak
  | Buf_leak
  | Buf_double_free
  | Lane_race

type event = { kind : kind; detail : string }

let kind_to_string = function
  | Lock_leak -> "lock-leak"
  | Lock_zombie -> "lock-zombie"
  | Lock_conflict -> "lock-conflict"
  | Fiber_stall -> "fiber-stall"
  | Plaintext -> "plaintext"
  | Snapshot_leak -> "snapshot-leak"
  | Buf_leak -> "buf-leak"
  | Buf_double_free -> "buf-double-free"
  | Lane_race -> "lane-race"

(* Deadlock-suspect hold-and-wait timeouts are the system's by-design
   deadlock-resolution strategy (§V-B), so they are surfaced as warnings,
   not violations. *)
let is_violation = function
  | Lock_leak | Lock_zombie | Fiber_stall | Plaintext | Snapshot_leak
  | Buf_leak | Buf_double_free | Lane_race ->
      true
  | Lock_conflict -> false

let max_events = 256
let events_rev : event list ref = ref []
let recorded = ref 0
let counts = Hashtbl.create 8

(* Cross-lane write tracking (Lane_race): per transaction, the lane key of
   the last write to each named cell and a lock epoch that bumps on every
   lock acquisition by that transaction. A write from a different lane with
   the epoch unchanged since the previous write means two lanes touched the
   cell with no lock hand-off between them — the runtime counterpart of
   TreatyCheck's static lane-race pass. *)
let lane_cells : (string, (string, int * int) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 64

let lock_epochs : (string, int) Hashtbl.t = Hashtbl.create 64

let reset () =
  events_rev := [];
  recorded := 0;
  Hashtbl.reset counts;
  Hashtbl.reset lane_cells;
  Hashtbl.reset lock_epochs

let record kind detail =
  recorded := !recorded + 1;
  Hashtbl.replace counts kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind));
  if List.length !events_rev < max_events then
    events_rev := { kind; detail } :: !events_rev

let lane_lock ~txn =
  Hashtbl.replace lock_epochs txn
    (1 + Option.value ~default:0 (Hashtbl.find_opt lock_epochs txn))

let lane_write ~txn ~cell ~lane =
  let epoch = Option.value ~default:0 (Hashtbl.find_opt lock_epochs txn) in
  let cells =
    match Hashtbl.find_opt lane_cells txn with
    | Some c -> c
    | None ->
        let c = Hashtbl.create 4 in
        Hashtbl.replace lane_cells txn c;
        c
  in
  (match Hashtbl.find_opt cells cell with
  | Some (lane0, epoch0) when lane0 <> lane && epoch0 = epoch ->
      record Lane_race
        (Printf.sprintf
           "%s: cell %s written from lane %d after lane %d with no lock \
            acquisition in between"
           txn cell lane lane0)
  | _ -> ());
  Hashtbl.replace cells cell (lane, epoch)

let lane_forget ~txn =
  Hashtbl.remove lane_cells txn;
  Hashtbl.remove lock_epochs txn

let events () = List.rev !events_rev
let count kind = Option.value ~default:0 (Hashtbl.find_opt counts kind)

let violations () =
  Hashtbl.fold
    (fun kind n acc -> if is_violation kind then acc + n else acc)
    counts 0

let report () =
  let shown =
    List.filter_map
      (fun e ->
        if is_violation e.kind then
          Some (Printf.sprintf "[%s] %s" (kind_to_string e.kind) e.detail)
        else None)
      (events ())
  in
  let n = violations () in
  let lines =
    if n > List.length shown then
      shown @ [ Printf.sprintf "... and %d more" (n - List.length shown) ]
    else shown
  in
  String.concat "; " lines
