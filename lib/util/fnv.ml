let hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    s;
  !h
