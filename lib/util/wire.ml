exception Malformed of string

let w8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let w64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let wbool b v = w8 b (if v then 1 else 0)

let wstr b s =
  w32 b (String.length s);
  Buffer.add_string b s

let wlist b f l =
  w32 b (List.length l);
  List.iter (f b) l

type reader = { s : string; mutable pos : int }

let reader ?(pos = 0) s = { s; pos }
let pos r = r.pos
let at_end r = r.pos >= String.length r.s

let need r n =
  if r.pos + n > String.length r.s then raise (Malformed "truncated input")

let r8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r32 r =
  need r 4;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code r.s.[r.pos + i]
  done;
  r.pos <- r.pos + 4;
  !v

let r64 r =
  need r 8;
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code r.s.[r.pos + i]
  done;
  r.pos <- r.pos + 8;
  !v

let rbool r = r8 r = 1

let rbytes r n =
  if n < 0 then raise (Malformed "negative length");
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let rstr r =
  let n = r32 r in
  rbytes r n

let rlist r f =
  let n = r32 r in
  if n < 0 || n > String.length r.s then raise (Malformed "bad list length");
  List.init n (fun _ -> f r)
