(** TreatySan report collector.

    A process-global sink for runtime-sanitizer findings. Subsystems only
    feed it when their own sanitize knob ([Config.profile.sanitize]) is on;
    the simulator is single-threaded and runs are bracketed by {!reset}, so
    a plain global is race-free and keeps the reporting path free of
    plumbing through every constructor.

    Kinds split into violations (lock leaks, zombie acquisitions, starved
    fibers, plaintext at an untrusted boundary) and warnings
    ([Lock_conflict]: a hold-and-wait lock acquisition that timed out —
    deadlock resolved by timeout, the paper's intended strategy). Only
    violations count toward {!violations} and fail a sanitize-clean run. *)

type kind =
  | Lock_leak  (** Locks still held when the run reached quiescence. *)
  | Lock_zombie  (** Acquisition by a transaction after its txn_end. *)
  | Lock_conflict
      (** Hold-and-wait acquisition that timed out (deadlock suspect). *)
  | Fiber_stall  (** Fiber suspended beyond the watchdog threshold. *)
  | Plaintext
      (** Registered plaintext buffer reached the network or host storage. *)
  | Snapshot_leak
      (** Engine MVCC snapshot still retained at quiescence: a transaction
          path dropped its context without [Local_txn.finish], pinning the
          compaction GC watermark. *)
  | Buf_leak
      (** Mempool buffer still outstanding at quiescence: a wire-path
          alloc/free pair was dropped (e.g. an exception between packet
          encode and send). *)
  | Buf_double_free  (** Mempool buffer returned to its free list twice. *)
  | Lane_race
      (** The same named cell written for one transaction from two
          different scheduler lanes with no lock acquisition in between
          (runtime counterpart of TreatyCheck's static lane-race pass). *)

type event = { kind : kind; detail : string }

val kind_to_string : kind -> string
val is_violation : kind -> bool

val reset : unit -> unit
(** Clear all recorded events and counters (start of a sanitized run). *)

val record : kind -> string -> unit

val lane_write : txn:string -> cell:string -> lane:int -> unit
(** Record that [txn]'s handler running on scheduler lane [lane] wrote the
    mutable cell named [cell]. Reports {!Lane_race} when the previous write
    to the same cell for the same transaction came from a different lane
    and no {!lane_lock} happened in between. *)

val lane_lock : txn:string -> unit
(** Bump [txn]'s lock epoch: a subsequent cross-lane {!lane_write} is
    considered hand-off-protected rather than racy. Called by the lock
    table on every acquisition. *)

val lane_forget : txn:string -> unit
(** Drop all lane-tracking state for a finished transaction. *)

val events : unit -> event list
(** Recorded events in order, capped; counters are exact. *)

val count : kind -> int
val violations : unit -> int
val report : unit -> string
(** Human-readable summary of the recorded violations. *)
