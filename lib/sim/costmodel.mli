(** Calibrated cost model for the discrete-event simulation.

    Every hardware effect the Treaty paper's evaluation depends on is charged
    in simulated nanoseconds from this table: SGX/SCONE costs (enclave
    transitions, async syscalls, EPC paging), crypto per-byte costs, network
    transmission and per-message processing for each transport, SSD latency,
    and the ROTE trusted-counter round.

    The defaults are calibrated so the *ratios* in the paper's figures come
    out in the reported bands (e.g. secure 2PC ≈ 2× native, encryption
    ≤ 1.4×, recovery w/ Enc ≈ 2× native); see EXPERIMENTS.md. Individual
    experiments may override fields. *)

type t = {
  (* --- TEE / SCONE --- *)
  enclave_transition_ns : int;
      (** Full world switch (OCALL/interrupt): TLB flush + checks. *)
  syscall_native_ns : int;  (** Plain kernel syscall. *)
  syscall_scone_ns : int;
      (** SCONE exit-less asynchronous syscall (no world switch, but queueing
          and an extra enclave<->host copy). *)
  scone_cpu_factor : float;
      (** Multiplier on in-enclave protocol/network compute. *)
  scone_storage_factor : float;
      (** Multiplier on in-enclave storage-engine compute: the LSM data path
          walks large EPC-resident structures and suffers far more from
          memory encryption and paging than protocol code (cf. SPEICHER). *)
  epc_limit_bytes : int;  (** Enclave Page Cache size (94 MiB on SGXv1). *)
  epc_page_fault_ns : int;  (** Cost of evicting+loading one 4 KiB EPC page. *)
  sgx_hw_counter_inc_ns : int;
      (** SGX monotonic hardware counter increment (~250 ms, §VI). *)
  (* --- storage-engine CPU path --- *)
  engine_op_fixed_ns : int;
      (** Per get/put engine work: parsing, versioning, index walk. *)
  engine_op_per_byte_ns : float;  (** Value copies/serialization. *)
  (* --- crypto (simulated time; the real crypto also executes) --- *)
  enc_per_byte_ns : float;  (** AEAD encrypt/decrypt per byte. *)
  enc_fixed_ns : int;  (** AEAD per-call setup (key schedule, IV, MAC). *)
  hash_per_byte_ns : float;  (** SHA-256/HMAC per byte. *)
  hash_fixed_ns : int;
  (* --- network --- *)
  net_bandwidth_bytes_per_ns : float;  (** Fabric line rate (40 GbE). *)
  net_propagation_ns : int;  (** One-way propagation, same rack. *)
  dpdk_per_msg_ns : int;  (** Kernel-bypass per-message CPU (poll, no syscalls). *)
  kernel_per_msg_ns : int;  (** Kernel socket per-message CPU excl. syscalls. *)
  kernel_syscalls_per_msg : int;  (** send+recv syscalls on the socket path. *)
  scone_copy_per_byte_ns : float;
      (** Extra enclave<->host copy per byte for syscall-based I/O in SCONE. *)
  mtu_bytes : int;  (** Ethernet MTU payload (fragmentation threshold). *)
  (* --- storage --- *)
  ssd_write_base_ns : int;  (** NVMe program + fsync latency. *)
  ssd_write_per_byte_ns : float;
  ssd_read_base_ns : int;  (** Read missing the page cache. *)
  ssd_read_per_byte_ns : float;
  page_cache_read_ns : int;  (** Read served from the kernel page cache. *)
  (* --- trusted counter service (ROTE, §VI) --- *)
  rote_proc_ns : int;  (** Per-replica CPU in one echo round. *)
  rote_round_latency_ns : int;
      (** Sender-side wait per echo round (epoch alignment/batching in the
          ROTE implementation): latency, not CPU. *)
  rote_seal_ns : int;  (** Sealing counter state after quorum ACK. *)
}

val default : t

val crypto_cost : t -> bytes:int -> int
(** Simulated cost of one AEAD operation over [bytes] bytes. *)

val hash_cost : t -> bytes:int -> int
(** Simulated cost of one hash/MAC over [bytes] bytes. *)

val transmission_ns : t -> bytes:int -> int
(** Wire time for [bytes] at fabric line rate. *)
