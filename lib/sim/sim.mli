(** Deterministic discrete-event simulation engine.

    Combines the fiber scheduler ({!Treaty_sched.Scheduler}) with an event
    queue and a simulated clock. Fibers advance simulated time only by
    blocking ([sleep], [Ivar] waits with [timeout], {!Resource} queueing);
    everything in between is instantaneous in simulated time. [run] drives
    the simulation to quiescence: it returns when no fiber is runnable and no
    event is pending. *)

type t

val create : ?seed:int64 -> unit -> t
val now : t -> int
(** Current simulated time in nanoseconds. *)

val rng : t -> Rng.t
(** The root RNG stream; components should [Rng.split] it. *)

val sched : t -> Treaty_sched.Scheduler.t

val enable_fiber_watchdog :
  t -> threshold_ns:int -> report:(string -> unit) -> unit
(** TreatySan starvation detector: periodically (between event firings)
    report fibers that have been suspended longer than [threshold_ns] of
    simulated time. Fibers still parked when the run drains to quiescence
    are abandoned by design and are not reported. *)

val enable_fiber_profile : t -> unit
(** Aggregate per-fiber scheduling statistics (by spawn label) on the sim
    clock; read them back with {!fiber_profile}. *)

val fiber_profile : t -> (string * Treaty_sched.Scheduler.fiber_profile) list

val spawn : ?label:string -> t -> (unit -> unit) -> unit
val yield : t -> unit

val sleep : t -> int -> unit
(** Block the current fiber for [ns] simulated nanoseconds. *)

val at : t -> time:int -> (unit -> unit) -> Eventq.handle
(** Schedule a callback at an absolute simulated time (>= now). *)

val after : t -> ns:int -> (unit -> unit) -> Eventq.handle
(** Schedule a callback [ns] nanoseconds from now. *)

val run : t -> (unit -> unit) -> unit
(** [run t main] spawns [main] and drives fibers and events until both the
    run queue and the event queue are exhausted. Fibers still suspended on
    never-filled ivars are abandoned. *)

type 'a ivar = 'a Treaty_sched.Scheduler.Ivar.ivar

val ivar : unit -> 'a ivar
val fill : 'a ivar -> 'a -> unit
val try_fill : 'a ivar -> 'a -> bool
val read : t -> 'a ivar -> 'a

val read_timeout : t -> ns:int -> 'a ivar -> 'a option
(** Wait for the ivar, giving up after [ns] simulated nanoseconds. If the
    ivar fills first the timer is cancelled and its pooled record reclaimed
    immediately (timeout-heavy paths do not grow the event queue). *)

val events_fired : t -> int
(** Total events dispatched by the engine so far (the scale bench's
    events/sec numerator). *)

val events_live : t -> int
(** Currently scheduled events. *)

val events_allocated : t -> int
(** Timer-record pool capacity; bounded by peak concurrent timers, not by
    how many timeouts were armed and cancelled. *)

val events_stamp : t -> int
(** Monotone event-schedule counter (see {!Treaty_sim.Eventq.stamp}). *)

(** A simulated multi-server resource (CPU cores, an SSD channel, a NIC):
    [capacity] concurrent holders, FIFO waiting. Models saturation: once all
    servers are busy, additional work queues and latency grows. *)
module Resource : sig
  type resource

  val create : t -> capacity:int -> string -> resource
  val acquire : resource -> unit
  val release : resource -> unit

  val consume : resource -> int -> unit
  (** [consume r ns] = acquire a server, hold it for [ns] simulated
      nanoseconds, release. *)

  val in_use : resource -> int
  val queue_length : resource -> int
  val busy_ns : resource -> int
  (** Total server-busy nanoseconds accumulated (for utilisation stats). *)
end
