type t = {
  enclave_transition_ns : int;
  syscall_native_ns : int;
  syscall_scone_ns : int;
  scone_cpu_factor : float;
  scone_storage_factor : float;
  epc_limit_bytes : int;
  epc_page_fault_ns : int;
  sgx_hw_counter_inc_ns : int;
  engine_op_fixed_ns : int;
  engine_op_per_byte_ns : float;
  enc_per_byte_ns : float;
  enc_fixed_ns : int;
  hash_per_byte_ns : float;
  hash_fixed_ns : int;
  net_bandwidth_bytes_per_ns : float;
  net_propagation_ns : int;
  dpdk_per_msg_ns : int;
  kernel_per_msg_ns : int;
  kernel_syscalls_per_msg : int;
  scone_copy_per_byte_ns : float;
  mtu_bytes : int;
  ssd_write_base_ns : int;
  ssd_write_per_byte_ns : float;
  ssd_read_base_ns : int;
  ssd_read_per_byte_ns : float;
  page_cache_read_ns : int;
  rote_proc_ns : int;
  rote_round_latency_ns : int;
  rote_seal_ns : int;
}

let default =
  {
    enclave_transition_ns = 2_700;
    syscall_native_ns = 700;
    syscall_scone_ns = 900;
    scone_cpu_factor = 1.45;
    scone_storage_factor = 4.2;
    epc_limit_bytes = 94 * 1024 * 1024;
    epc_page_fault_ns = 12_000;
    sgx_hw_counter_inc_ns = 250_000_000;
    engine_op_fixed_ns = 5_000;
    engine_op_per_byte_ns = 1.2;
    enc_per_byte_ns = 0.25;
    enc_fixed_ns = 120;
    hash_per_byte_ns = 0.6;
    hash_fixed_ns = 200;
    net_bandwidth_bytes_per_ns = 5.0 (* 40 Gb/s = 5 B/ns *);
    net_propagation_ns = 5_000;
    dpdk_per_msg_ns = 350;
    kernel_per_msg_ns = 2_200;
    kernel_syscalls_per_msg = 2;
    scone_copy_per_byte_ns = 0.45;
    mtu_bytes = 1460;
    ssd_write_base_ns = 8_000;
    ssd_write_per_byte_ns = 0.25;
    ssd_read_base_ns = 9_000;
    ssd_read_per_byte_ns = 0.35;
    page_cache_read_ns = 650;
    rote_proc_ns = 25_000;
    rote_round_latency_ns = 300_000;
    rote_seal_ns = 150_000;
  }

let crypto_cost t ~bytes =
  t.enc_fixed_ns + int_of_float (t.enc_per_byte_ns *. float_of_int bytes)

let hash_cost t ~bytes =
  t.hash_fixed_ns + int_of_float (t.hash_per_byte_ns *. float_of_int bytes)

let transmission_ns t ~bytes =
  int_of_float (float_of_int bytes /. t.net_bandwidth_bytes_per_ns)
