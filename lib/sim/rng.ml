type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits to get a non-negative OCaml int, then reduce. The bias
     is negligible for the bounds used in the simulator. *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
