(* Hierarchical timer wheel with a 4-ary overflow heap.

   Six levels of 32 slots each cover distances up to 32^6 ns (~1.07 s of
   simulated time) from the dispatch cursor; farther timers (long protocol
   TTLs, sweep intervals) wait in a 4-ary min-heap keyed (time, seq) and
   migrate into the wheel as the cursor approaches. Timer state lives in a
   pooled cell array threaded with intrusive doubly-linked slot lists, so
   [add] and [cancel] allocate nothing once the pool is warm, and a
   cancelled timer's cell is unlinked and reused immediately — there is no
   lazy-cancellation garbage for the dispatch path to skip over.

   Determinism contract: pop order is strictly ascending (time, seq), FIFO
   among equal timestamps, exactly like the binary heap this replaces.
   Slot lists are kept sorted by seq: direct adds append (seq is monotone),
   while cascades and heap migrations insert positionally. Two events with
   the same target time always satisfy "the one scheduled earlier sits at a
   coarser level or earlier list position": placement level is the highest
   bit-group where the time differs from the cursor, which only shrinks as
   the cursor advances — so the event still parked coarser was scheduled
   under an older cursor, i.e. strictly earlier, with a smaller seq, and
   the seq-sorted cascade insert puts it first. *)

let bits = 5
let slots = 1 lsl bits (* 32 *)
let levels = 6
let wheel_span = 1 lsl (bits * levels) (* 32^6 ns *)
let handle_bits = 28
let idx_mask = (1 lsl handle_bits) - 1
let gen_mask = (1 lsl 34) - 1

type cell = {
  mutable time : int;
  mutable seq : int;
  mutable fn : unit -> unit;
  mutable gen : int; (* bumped on free; stale handles miss *)
  mutable prev : int; (* intrusive slot list; freelist rides [next] *)
  mutable next : int;
  mutable loc : int; (* >=0: wheel slot id; -1: detached; -2: heap; -3: free *)
  mutable hpos : int; (* position in the overflow heap when loc = -2 *)
}

type handle = int

type t = {
  mutable cells : cell array;
  mutable free_head : int;
  mutable next_seq : int;
  mutable live : int;
  mutable fired_ : int;
  mutable cursor : int; (* dispatch position: no live event precedes it *)
  mutable wheel_live : int;
  mutable hot_sid : int; (* slot of the last pop: same-tick fast path *)
  slot_head : int array; (* levels*slots intrusive lists *)
  slot_tail : int array;
  occ : int array; (* per-level occupancy bitmap *)
  mutable heap : int array; (* 4-ary min-heap of cell indices *)
  mutable heap_len : int;
}


let nop () = ()

let fresh_cell next =
  { time = 0; seq = 0; fn = nop; gen = 0; prev = -1; next; loc = -3; hpos = -1 }

let create () =
  let n = 64 in
  {
    cells = Array.init n (fun i -> fresh_cell (if i = n - 1 then -1 else i + 1));
    free_head = 0;
    next_seq = 0;
    live = 0;
    fired_ = 0;
    cursor = 0;
    wheel_live = 0;
    hot_sid = -1;
    slot_head = Array.make (levels * slots) (-1);
    slot_tail = Array.make (levels * slots) (-1);
    occ = Array.make levels 0;
    heap = Array.make 16 (-1);
    heap_len = 0;
  }

let is_empty t = t.live = 0
let size t = t.live
let stamp t = t.next_seq
let fired t = t.fired_
let allocated t = Array.length t.cells

(* ---- cell pool ---- *)

let alloc_cell t =
  if t.free_head = -1 then begin
    let old = t.cells in
    let n = Array.length old in
    let cells =
      Array.init (2 * n) (fun i ->
          if i < n then old.(i)
          else fresh_cell (if i = (2 * n) - 1 then -1 else i + 1))
    in
    t.cells <- cells;
    t.free_head <- n
  end;
  let idx = t.free_head in
  let c = t.cells.(idx) in
  t.free_head <- c.next;
  c.loc <- -1;
  idx

let free_cell t idx =
  let c = t.cells.(idx) in
  c.gen <- (c.gen + 1) land gen_mask;
  c.fn <- nop;
  c.loc <- -3;
  c.hpos <- -1;
  c.prev <- -1;
  c.next <- t.free_head;
  t.free_head <- idx

(* ---- wheel slot lists (seq-sorted, intrusive) ---- *)

let insert_sorted t sid idx =
  let c = t.cells.(idx) in
  c.loc <- sid;
  t.wheel_live <- t.wheel_live + 1;
  let tl = t.slot_tail.(sid) in
  if tl = -1 then begin
    t.slot_head.(sid) <- idx;
    t.slot_tail.(sid) <- idx;
    c.prev <- -1;
    c.next <- -1;
    let lvl = sid lsr bits in
    t.occ.(lvl) <- t.occ.(lvl) lor (1 lsl (sid land (slots - 1)))
  end
  else if t.cells.(tl).seq < c.seq then begin
    (* common case: direct add, monotone seq appends at the tail *)
    c.prev <- tl;
    c.next <- -1;
    t.cells.(tl).next <- idx;
    t.slot_tail.(sid) <- idx
  end
  else begin
    (* cascade/migration: walk back to the first smaller seq *)
    let p = ref tl in
    while !p <> -1 && t.cells.(!p).seq > c.seq do
      p := t.cells.(!p).prev
    done;
    if !p = -1 then begin
      let h = t.slot_head.(sid) in
      c.next <- h;
      c.prev <- -1;
      t.cells.(h).prev <- idx;
      t.slot_head.(sid) <- idx
    end
    else begin
      let n = t.cells.(!p).next in
      c.prev <- !p;
      c.next <- n;
      t.cells.(!p).next <- idx;
      t.cells.(n).prev <- idx
    end
  end

let unlink t idx =
  let c = t.cells.(idx) in
  let sid = c.loc in
  if c.prev = -1 then t.slot_head.(sid) <- c.next
  else t.cells.(c.prev).next <- c.next;
  if c.next = -1 then t.slot_tail.(sid) <- c.prev
  else t.cells.(c.next).prev <- c.prev;
  if t.slot_head.(sid) = -1 then begin
    let lvl = sid lsr bits in
    t.occ.(lvl) <- t.occ.(lvl) land lnot (1 lsl (sid land (slots - 1)))
  end;
  c.loc <- -1;
  c.prev <- -1;
  c.next <- -1;
  t.wheel_live <- t.wheel_live - 1

(* ---- overflow heap (4-ary, keyed (time, seq)) ---- *)

let hless t a b =
  let ca = t.cells.(a) and cb = t.cells.(b) in
  ca.time < cb.time || (ca.time = cb.time && ca.seq < cb.seq)

let hset t pos idx =
  t.heap.(pos) <- idx;
  t.cells.(idx).hpos <- pos

let rec heap_up t pos =
  if pos > 0 then begin
    let parent = (pos - 1) lsr 2 in
    if hless t t.heap.(pos) t.heap.(parent) then begin
      let a = t.heap.(pos) and b = t.heap.(parent) in
      hset t pos b;
      hset t parent a;
      heap_up t parent
    end
  end

let rec heap_down t pos =
  let first = (pos lsl 2) + 1 in
  if first < t.heap_len then begin
    let best = ref pos in
    let last = min (first + 3) (t.heap_len - 1) in
    for k = first to last do
      if hless t t.heap.(k) t.heap.(!best) then best := k
    done;
    if !best <> pos then begin
      let a = t.heap.(pos) and b = t.heap.(!best) in
      hset t pos b;
      hset t !best a;
      heap_down t !best
    end
  end

let heap_push t idx =
  if t.heap_len = Array.length t.heap then begin
    let h = Array.make (2 * t.heap_len) (-1) in
    Array.blit t.heap 0 h 0 t.heap_len;
    t.heap <- h
  end;
  let c = t.cells.(idx) in
  c.loc <- -2;
  hset t t.heap_len idx;
  t.heap_len <- t.heap_len + 1;
  heap_up t (t.heap_len - 1)

let heap_remove t pos =
  t.heap_len <- t.heap_len - 1;
  let idx = t.heap.(pos) in
  t.cells.(idx).hpos <- -1;
  t.cells.(idx).loc <- -1;
  if pos < t.heap_len then begin
    hset t pos t.heap.(t.heap_len);
    heap_up t pos;
    heap_down t pos
  end

(* ---- placement ---- *)

let level_of dist =
  if dist < 1 lsl bits then 0
  else if dist < 1 lsl (2 * bits) then 1
  else if dist < 1 lsl (3 * bits) then 2
  else if dist < 1 lsl (4 * bits) then 3
  else if dist < 1 lsl (5 * bits) then 4
  else 5

(* Level choice uses the highest bit-group where [time] differs from the
   cursor, not the distance. The two disagree when an interval crosses a
   rotation boundary: an event 1003 ns out sits one full level-1 rotation
   ahead when the cursor is 1019 ns into its own — distance-based placement
   would drop it into the cursor's *current* level-1 slot and the dispatch
   scan would misdate it by a rotation. With the XOR rule every entry at
   level L agrees with the cursor on all bits above L, so a slot holds
   exactly the times its position says it does, and any cursor advance
   (which stays within the same high-bit block) preserves the invariant. *)
let place t idx =
  let c = t.cells.(idx) in
  let x = c.time lxor t.cursor in
  if x >= wheel_span then heap_push t idx
  else begin
    let lvl = level_of x in
    let slot = (c.time lsr (bits * lvl)) land (slots - 1) in
    insert_sorted t ((lvl lsl bits) lor slot) idx
  end

(* ---- public api ---- *)

let add t ~time fn =
  let idx = alloc_cell t in
  let c = t.cells.(idx) in
  c.time <- time;
  c.seq <- t.next_seq;
  c.fn <- fn;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  place t idx;
  (c.gen lsl handle_bits) lor idx

let cancel t h =
  let idx = h land idx_mask in
  if idx >= Array.length t.cells then false
  else begin
    let c = t.cells.(idx) in
    if c.gen <> h lsr handle_bits || c.loc = -3 then false
    else begin
      if c.loc = -2 then heap_remove t c.hpos else unlink t idx;
      t.live <- t.live - 1;
      free_cell t idx;
      true
    end
  end

let ctz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Pull overflow timers whose distance now fits the wheel. When the wheel
   is empty the cursor may jump straight to the heap minimum: nothing can
   precede it. *)
let migrate t =
  if t.heap_len > 0 then begin
    if
      t.wheel_live = 0
      && t.cells.(t.heap.(0)).time lxor t.cursor >= wheel_span
    then t.cursor <- t.cells.(t.heap.(0)).time;
    (* The heap criterion mirrors [place]: an entry overflows iff its time
       differs from the cursor at or above the wheel's top bit. Gating on
       the heap minimum is sound: all live times are >= cursor, so if the
       minimum still differs high, every other heap entry does too. *)
    while
      t.heap_len > 0 && t.cells.(t.heap.(0)).time lxor t.cursor < wheel_span
    do
      let idx = t.heap.(0) in
      heap_remove t 0;
      place t idx
    done
  end

(* Advance the cursor to the earliest occupied slot, cascading coarse slots
   down until the next event sits in a level-0 slot. Returns that slot id.
   Ties between a level-0 slot and a coarser slot starting at the same time
   go to the coarser level first: an entry still parked coarse was scheduled
   strictly earlier than any same-time level-0 entry, so it must be cascaded
   in ahead of the pop (the seq-sorted insert puts it first). *)
let rec find_next t =
  migrate t;
  if t.wheel_live = 0 then None
  else begin
    let best_time = ref max_int and best_lvl = ref (-1) and best_slot = ref 0 in
    for lvl = 0 to levels - 1 do
      let bm = t.occ.(lvl) in
      if bm <> 0 then begin
        let shift = bits * lvl in
        let cur = (t.cursor lsr shift) land (slots - 1) in
        (* parenthesized: lsl/lsr associate to the right in OCaml *)
        let base = (t.cursor lsr (shift + bits)) lsl (shift + bits) in
        (* XOR placement guarantees every occupied slot at this level sits
           at or after the cursor's slot in the current rotation, so the
           scan never wraps. The cursor's own slot is live too — cascades
           from above and same-block adds land there; its nominal start may
           lie behind the cursor, hence the clamp. Entries there agree with
           the cursor through this level's slot bits, so they re-place
           strictly below it and cascades terminate. *)
        let lo = bm land (-1 lsl cur) in
        assert (lo <> 0);
        let s = ctz lo in
        let tm = base + (s lsl shift) in
        let time = if tm < t.cursor then t.cursor else tm and slot = s in
        if time <= !best_time then begin
          best_time := time;
          best_lvl := lvl;
          best_slot := slot
        end
      end
    done;
    t.cursor <- !best_time;
    let sid = (!best_lvl lsl bits) lor !best_slot in
    if !best_lvl = 0 then Some sid
    else begin
      (* cascade the whole slot down; list order is seq order *)
      while t.slot_head.(sid) <> -1 do
        let idx = t.slot_head.(sid) in
        unlink t idx;
        place t idx
      done;
      find_next t
    end
  end

let pop t =
  if t.live = 0 then None
  else begin
    let sid =
      (* same-tick fast path: the slot we last popped from only ever holds
         time == cursor entries, so a non-empty head needs no scan *)
      if t.hot_sid >= 0 && t.slot_head.(t.hot_sid) <> -1 then Some t.hot_sid
      else find_next t
    in
    match sid with
    | None -> None
    | Some sid ->
        t.hot_sid <- sid;
        let idx = t.slot_head.(sid) in
        unlink t idx;
        let c = t.cells.(idx) in
        let time = c.time and fn = c.fn in
        t.live <- t.live - 1;
        t.fired_ <- t.fired_ + 1;
        free_cell t idx;
        Some (time, fn)
  end
