(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulation goes through an explicit
    [Rng.t] so that runs are reproducible given a seed, and independent
    components can be given independent streams ({!split}). *)

type t

val create : int64 -> t
(** Seeded generator. *)

val split : t -> t
(** Derive an independent stream (consumes one draw from the parent). *)

val next_int64 : t -> int64
(** Uniform 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
