module Scheduler = Treaty_sched.Scheduler

type t = {
  scheduler : Scheduler.t;
  events : Eventq.t;
  mutable clock : int;
  root_rng : Rng.t;
  mutable watchdog_every : int;  (** 0 = fiber watchdog off *)
  mutable watchdog_last_scan : int;
}

let create ?(seed = 0x7E47E47E4L) () =
  {
    scheduler = Scheduler.create ();
    events = Eventq.create ();
    clock = 0;
    root_rng = Rng.create seed;
    watchdog_every = 0;
    watchdog_last_scan = 0;
  }

let enable_fiber_watchdog t ~threshold_ns ~report =
  Scheduler.set_watchdog t.scheduler
    ~now:(fun () -> t.clock)
    ~threshold:threshold_ns ~report;
  t.watchdog_every <- max 1_000_000 (threshold_ns / 4);
  t.watchdog_last_scan <- t.clock

let enable_fiber_profile t =
  Scheduler.set_profiler t.scheduler ~now:(fun () -> t.clock)

let fiber_profile t = Scheduler.profile t.scheduler

let now t = t.clock
let rng t = t.root_rng
let sched t = t.scheduler
let spawn ?label t f = Scheduler.spawn ?label t.scheduler f
let yield t = Scheduler.yield t.scheduler

let at t ~time fn =
  if time < t.clock then invalid_arg "Sim.at: time in the past";
  Eventq.add t.events ~time fn

let after t ~ns fn = at t ~time:(t.clock + ns) fn

let sleep t ns =
  if ns > 0 then
    (* The waker is already [unit -> unit]: ride the pooled timer record
       directly instead of wrapping it in a fresh closure. *)
    Scheduler.suspend t.scheduler (fun waker ->
        ignore (Eventq.add t.events ~time:(t.clock + ns) waker))
  else yield t

let events_fired t = Eventq.fired t.events
let events_live t = Eventq.size t.events
let events_allocated t = Eventq.allocated t.events
let events_stamp t = Eventq.stamp t.events

let run t main =
  spawn t main;
  let rec loop () =
    Scheduler.run_pending t.scheduler;
    if t.watchdog_every > 0 && t.clock - t.watchdog_last_scan >= t.watchdog_every
    then begin
      t.watchdog_last_scan <- t.clock;
      Scheduler.watchdog_scan t.scheduler
    end;
    match Eventq.pop t.events with
    | Some (time, fn) ->
        if time > t.clock then t.clock <- time;
        fn ();
        loop ()
    | None -> ()
  in
  loop ()

type 'a ivar = 'a Scheduler.Ivar.ivar

let ivar () = Scheduler.Ivar.create ()
let fill iv v = Scheduler.Ivar.fill iv v
let try_fill iv v = Scheduler.Ivar.try_fill iv v
let read t iv = Scheduler.Ivar.read t.scheduler iv

let read_timeout t ~ns iv =
  match Scheduler.Ivar.peek iv with
  | Some _ as v -> v
  | None ->
      let result = ref None in
      Scheduler.suspend t.scheduler (fun waker ->
          let timer = Eventq.add t.events ~time:(t.clock + ns) waker in
          Scheduler.Ivar.on_fill iv (fun v ->
              (* Cancel returning true means the timer had not fired: this
                 fill wins the race and must wake the fiber itself. A false
                 return means the timeout already ran — the fiber resumed
                 with [None] and the pooled record is long reclaimed. *)
              if Eventq.cancel t.events timer then begin
                result := Some v;
                waker ()
              end));
      !result

module Resource = struct
  type resource = {
    sim : t;
    name : string;
    capacity : int;
    mutable used : int;
    waiters : (unit -> unit) Queue.t;
    mutable busy : int;
  }

  let create sim ~capacity name =
    if capacity <= 0 then invalid_arg "Resource.create: capacity";
    { sim; name; capacity; used = 0; waiters = Queue.create (); busy = 0 }

  let acquire r =
    if r.used < r.capacity then r.used <- r.used + 1
    else
      Scheduler.suspend r.sim.scheduler (fun waker -> Queue.push waker r.waiters)

  let release r =
    match Queue.take_opt r.waiters with
    | Some waker -> waker () (* hand the slot directly to the next waiter *)
    | None -> r.used <- r.used - 1

  let consume r ns =
    acquire r;
    r.busy <- r.busy + ns;
    sleep r.sim ns;
    release r

  let in_use r = r.used
  let queue_length r = Queue.length r.waiters
  let busy_ns r = r.busy
end
