(** Discrete-event timer queue: hierarchical timer wheel + overflow heap.

    Events are (time, callback) pairs dispatched in ascending time order,
    FIFO among equal timestamps. Near events (within ~1.07 s of simulated
    time) live in a six-level timer wheel; far events wait in a 4-ary
    min-heap and migrate inward as the dispatch cursor approaches. Timer
    records are pooled: [add] and [cancel] allocate nothing once the pool
    is warm, and a cancelled timer's record is reclaimed immediately
    rather than lingering until its deadline surfaces.

    Times must be non-decreasing with respect to dispatch: scheduling an
    event earlier than the last popped timestamp clamps it to fire next.
    The simulator's clock guard ([Sim.at]) makes that case unreachable. *)

type t

type handle
(** Packed pool index + generation — an immediate value, safe to retain
    after the event fires (a stale handle's [cancel] is a no-op). *)

val create : unit -> t
val is_empty : t -> bool

val size : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val add : t -> time:int -> (unit -> unit) -> handle
(** Schedule a callback at absolute simulated time [time] (nanoseconds). *)

val cancel : t -> handle -> bool
(** Cancel a scheduled event, releasing its timer record immediately.
    Returns [true] if the event was live (it will now never fire); [false]
    if it had already fired or been cancelled. Idempotent. *)

val pop : t -> (int * (unit -> unit)) option
(** Remove and return the earliest live event. *)

val stamp : t -> int
(** Monotone counter incremented by every [add] — lets callers detect
    whether any event was scheduled between two points (the network's
    same-tick delivery batching depends on this). *)

val fired : t -> int
(** Total events dispatched over the queue's lifetime. *)

val allocated : t -> int
(** Current timer-record pool capacity (live + freelist). Bounded by the
    high-water mark of concurrently scheduled events — eager cancellation
    means hammering timeouts does not grow it. *)
