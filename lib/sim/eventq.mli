(** Discrete-event priority queue.

    Events are (time, callback) pairs ordered by time, with FIFO order among
    equal timestamps. Events can be cancelled in O(1); cancelled entries are
    skipped lazily when popped. *)

type t
type handle

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

val add : t -> time:int -> (unit -> unit) -> handle
(** Schedule a callback at absolute simulated time [time] (nanoseconds). *)

val cancel : handle -> unit
(** Cancel a scheduled event. Idempotent; a fired event cannot be
    cancelled. *)

val pop : t -> (int * (unit -> unit)) option
(** Remove and return the earliest live event, skipping cancelled ones. *)

val next_time : t -> int option
(** Timestamp of the earliest live event without removing it. *)
