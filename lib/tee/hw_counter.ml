type t = {
  enclave : Enclave.t;
  wear_limit : int;
  mutable value : int;
  mutable wear : int;
}

exception Worn_out

let create ?(wear_limit = 1_000_000) enclave = { enclave; wear_limit; value = 0; wear = 0 }

let increment t =
  if t.wear >= t.wear_limit then raise Worn_out;
  t.wear <- t.wear + 1;
  Treaty_sim.Sim.sleep (Enclave.sim t.enclave)
    (Enclave.cost t.enclave).sgx_hw_counter_inc_ns;
  t.value <- t.value + 1;
  t.value

let read t = t.value
let wear t = t.wear
