(** Attestation quotes.

    A quote binds an enclave's measurement and caller-chosen report data to a
    signature by the node's Local Attestation Service (which replaces the
    SGX Quoting Enclave in Treaty's design, §VI). Real quotes use EPID/ECDSA;
    here LAS↔CAS share a MAC key established when the CAS deploys the LAS,
    which preserves the verification logic (who can forge what) at the
    simulation's trust granularity. *)

type t = { measurement : string; report_data : string; signature : string }

val sign : las_key:string -> measurement:string -> report_data:string -> t

val verify : las_key:string -> expected_measurement:string -> t -> bool
(** Checks both the signature and the measurement. *)
