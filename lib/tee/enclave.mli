(** Trusted execution environment model (Intel SGX + SCONE, §II-B, §III).

    There is no SGX hardware in this environment, so the enclave becomes a
    simulation-level object that (a) charges the costs TEEs impose — scaled
    in-enclave compute, async-syscall I/O, EPC paging beyond the 94 MiB
    Enclave Page Cache, world switches — and (b) carries the node's security
    identity: a code measurement, a sealing key and the provisioned key
    material. The *enclave boundary* becomes an API boundary: state reachable
    only through this module plays the role of enclave memory, and tests give
    the adversary everything else (host memory, SSD, network).

    Compute runs on the node's simulated CPU cores (a {!Treaty_sim.Sim.Resource}),
    which is what produces saturation as client counts grow. *)

type mode = Native | Scone

val mode_to_string : mode -> string

type stats = {
  mutable syscalls : int;
  mutable transitions : int;
  mutable page_faults : int;
  mutable compute_ns : int;
  mutable crypto_ns : int;
      (** Share of [compute_ns] spent in {!charge_crypto} (AEAD seal/open) —
          the numerator of the crypto-per-txn benchmark metric. *)
}

type t

val create :
  Treaty_sim.Sim.t ->
  mode:mode ->
  cost:Treaty_sim.Costmodel.t ->
  cores:int ->
  node_id:int ->
  code_identity:string ->
  t

val sim : t -> Treaty_sim.Sim.t
val mode : t -> mode
val cost : t -> Treaty_sim.Costmodel.t
val node_id : t -> int
val stats : t -> stats
val cpu : t -> Treaty_sim.Sim.Resource.resource

val measurement : t -> string
(** SHA-256 over the enclave's code identity (MRENCLAVE equivalent). *)

val compute : t -> int -> unit
(** Charge [ns] of in-enclave compute on a CPU core. Under [Scone] the cost
    is scaled by [scone_cpu_factor]. *)

val compute_untrusted : t -> int -> unit
(** Charge host-side compute (no enclave scaling). *)

val compute_storage : t -> int -> unit
(** Charge storage-engine compute: scaled by [scone_storage_factor] under
    [Scone] (the LSM data path pays the worst of the EPC). *)

val charge_engine_op : ?lsm:bool -> t -> bytes:int -> unit
(** One engine-level get/put worth of CPU over a value of [bytes] bytes.
    [lsm] (default true) applies the storage scaling; the in-memory table
    of the storage-less 2PC benchmark passes [false]. *)

val syscall : t -> ?bytes:int -> unit -> unit
(** One kernel syscall. Under [Scone] this is an exit-less asynchronous
    syscall: no world switch, but dearer than native and with an extra
    enclave<->host copy of [bytes]. *)

val world_switch : t -> unit
(** A full enclave transition (OCALL/interrupt). Treaty's design avoids these
    on the hot path; they are charged by the naive baselines in the network
    figure and by the ablations. *)

val charge_crypto : t -> bytes:int -> unit
(** Simulated time for one AEAD operation over [bytes] bytes. *)

val charge_hash : t -> bytes:int -> unit

val alloc_enclave : t -> int -> unit
(** Account [n] bytes of enclave (EPC) memory. Once usage exceeds the EPC
    limit, allocations and touches charge paging proportional to overflow. *)

val free_enclave : t -> int -> unit
val alloc_host : t -> int -> unit
val free_host : t -> int -> unit
val epc_used : t -> int
val host_used : t -> int

val touch_enclave : t -> int -> unit
(** Model accessing [n] bytes of enclave memory: free while the working set
    fits the EPC, pays paging proportional to the overflow fraction beyond
    it. *)

(** Provisioned secrets: installed by the CAS after attestation, readable
    only through the enclave. *)
val install_secrets : t -> Treaty_crypto.Keys.master -> unit

val secrets : t -> Treaty_crypto.Keys.master option
val sealing_key : t -> Treaty_crypto.Aead.key
(** Per-CPU sealing key: exists even before provisioning (derived from a
    hardware fuse key in real SGX; modelled from the node id here). *)

val seal : t -> string -> string
(** Seal data to this enclave identity (AEAD under the sealing key, with the
    measurement as associated data). *)

val unseal : t -> string -> (string, [ `Mac_mismatch | `Truncated ]) result
