type t = { measurement : string; report_data : string; signature : string }

let payload ~measurement ~report_data =
  Printf.sprintf "%d:%s%d:%s" (String.length measurement) measurement
    (String.length report_data) report_data

let sign ~las_key ~measurement ~report_data =
  let mac = Treaty_crypto.Hmac.create las_key in
  {
    measurement;
    report_data;
    signature = Treaty_crypto.Hmac.mac mac (payload ~measurement ~report_data);
  }

let verify ~las_key ~expected_measurement t =
  let mac = Treaty_crypto.Hmac.create las_key in
  Treaty_crypto.Hmac.equal_tags t.measurement expected_measurement
  && Treaty_crypto.Hmac.verify mac
       (payload ~measurement:t.measurement ~report_data:t.report_data)
       ~tag:t.signature
