module Sim = Treaty_sim.Sim
module Costmodel = Treaty_sim.Costmodel

type mode = Native | Scone

let mode_to_string = function Native -> "native" | Scone -> "scone"

type stats = {
  mutable syscalls : int;
  mutable transitions : int;
  mutable page_faults : int;
  mutable compute_ns : int;
  mutable crypto_ns : int;
}

type t = {
  sim : Sim.t;
  mode : mode;
  cost : Costmodel.t;
  node_id : int;
  cpu : Sim.Resource.resource;
  measurement : string;
  seal_key : Treaty_crypto.Aead.key;
  iv_gen : Treaty_crypto.Aead.Iv_gen.t;
  stats : stats;
  mutable epc_used : int;
  mutable host_used : int;
  mutable master : Treaty_crypto.Keys.master option;
}

let create sim ~mode ~cost ~cores ~node_id ~code_identity =
  {
    sim;
    mode;
    cost;
    node_id;
    cpu = Sim.Resource.create sim ~capacity:cores (Printf.sprintf "cpu%d" node_id);
    measurement = Treaty_crypto.Sha256.digest_string code_identity;
    seal_key =
      Treaty_crypto.Aead.key_of_string (Printf.sprintf "fuse-key:%d" node_id);
    iv_gen = Treaty_crypto.Aead.Iv_gen.create ~node_id;
    stats = { syscalls = 0; transitions = 0; page_faults = 0; compute_ns = 0; crypto_ns = 0 };
    epc_used = 0;
    host_used = 0;
    master = None;
  }

let sim t = t.sim
let mode t = t.mode
let cost t = t.cost
let node_id t = t.node_id
let stats t = t.stats
let cpu t = t.cpu
let measurement t = t.measurement

let charge t ns =
  if ns > 0 then begin
    t.stats.compute_ns <- t.stats.compute_ns + ns;
    Sim.Resource.consume t.cpu ns
  end

let scale_cpu t ns =
  match t.mode with
  | Native -> ns
  | Scone -> int_of_float (float_of_int ns *. t.cost.scone_cpu_factor)

let compute t ns = charge t (scale_cpu t ns)

let compute_untrusted t ns = charge t ns

let compute_storage t ns =
  let ns =
    match t.mode with
    | Native -> ns
    | Scone -> int_of_float (float_of_int ns *. t.cost.scone_storage_factor)
  in
  charge t ns

let charge_engine_op ?(lsm = true) t ~bytes =
  let ns =
    t.cost.engine_op_fixed_ns
    + int_of_float (t.cost.engine_op_per_byte_ns *. float_of_int bytes)
  in
  if lsm then compute_storage t ns else compute t ns

let syscall t ?(bytes = 0) () =
  t.stats.syscalls <- t.stats.syscalls + 1;
  let ns =
    match t.mode with
    | Native -> t.cost.syscall_native_ns
    | Scone ->
        t.cost.syscall_scone_ns
        + int_of_float (t.cost.scone_copy_per_byte_ns *. float_of_int bytes)
  in
  charge t ns

let world_switch t =
  t.stats.transitions <- t.stats.transitions + 1;
  match t.mode with
  | Native -> ()
  | Scone -> charge t t.cost.enclave_transition_ns

let charge_crypto t ~bytes =
  let ns = scale_cpu t (Costmodel.crypto_cost t.cost ~bytes) in
  t.stats.crypto_ns <- t.stats.crypto_ns + ns;
  charge t ns
let charge_hash t ~bytes = compute t (Costmodel.hash_cost t.cost ~bytes)

(* EPC paging model: while the enclave working set fits in the EPC, touches
   are free. Beyond the limit, a touch of [n] bytes faults on a fraction of
   its pages equal to the overflow ratio — a smooth stand-in for LRU paging
   that preserves the qualitative cliff the paper describes. *)
let paging_charge t n =
  if t.mode = Scone && t.epc_used > t.cost.epc_limit_bytes then begin
    let overflow =
      float_of_int (t.epc_used - t.cost.epc_limit_bytes)
      /. float_of_int t.epc_used
    in
    let pages = (n + 4095) / 4096 in
    let faulting = int_of_float (ceil (float_of_int pages *. overflow)) in
    if faulting > 0 then begin
      t.stats.page_faults <- t.stats.page_faults + faulting;
      charge t (faulting * t.cost.epc_page_fault_ns)
    end
  end

let alloc_enclave t n =
  t.epc_used <- t.epc_used + n;
  paging_charge t n

let free_enclave t n = t.epc_used <- max 0 (t.epc_used - n)
let alloc_host t n = t.host_used <- t.host_used + n
let free_host t n = t.host_used <- max 0 (t.host_used - n)
let epc_used t = t.epc_used
let host_used t = t.host_used
let touch_enclave t n = paging_charge t n

let install_secrets t master = t.master <- Some master
let secrets t = t.master
let sealing_key t = t.seal_key

let seal t data =
  let iv = Treaty_crypto.Aead.Iv_gen.next t.iv_gen in
  Treaty_crypto.Aead.seal_packed t.seal_key ~iv ~aad:t.measurement data

let unseal t sealed =
  Treaty_crypto.Aead.open_packed t.seal_key ~aad:t.measurement sealed
