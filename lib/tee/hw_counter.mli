(** SGX monotonic hardware counter model (§VI).

    The paper rejects these for the stabilization protocol because increments
    take ~250 ms, the counters wear out after days of heavy use, and they are
    private per-CPU. This model reproduces all three properties — it exists
    so the benchmarks and tests can demonstrate *why* Treaty needs the ROTE
    service instead. *)

type t

exception Worn_out

val create : ?wear_limit:int -> Enclave.t -> t
(** [wear_limit] defaults to 1_000_000 increments (the order of magnitude at
    which SGX counters die at high rate per the ROTE paper). *)

val increment : t -> int
(** Charges the ~250 ms increment latency; returns the new value. Raises
    {!Worn_out} past the wear limit. *)

val read : t -> int
val wear : t -> int
