(** Per-node storage security context.

    Bundles the knobs that distinguish the paper's baselines — whether
    persistent data is authenticated (hashes/MACs) and whether it is
    encrypted — with the enclave that pays the corresponding simulated
    costs and the key material. All storage modules (logs, SSTables,
    MemTable values) protect and check data through this one interface, so
    a mode switch reconfigures the whole engine consistently:

    - DS-RocksDB / Native Treaty w/o Enc: [auth = false], [enc = None]
    - Treaty w/o Enc: [auth = true], [enc = None] (integrity, no secrecy)
    - Treaty w/ Enc: [auth = true], [enc = Some key] *)

exception Integrity_violation of string
(** Raised when an integrity or freshness check on untrusted data fails —
    the detection event Treaty's guarantees are about. *)

type t

val create :
  enclave:Treaty_tee.Enclave.t ->
  auth:bool ->
  enc:Treaty_crypto.Aead.key option ->
  unit ->
  t

val enclave : t -> Treaty_tee.Enclave.t
val auth : t -> bool
val encrypted : t -> bool

val protect : t -> string -> string
(** Encrypt a value/block for untrusted memory or disk ([enc] mode), or pass
    it through. Charges simulated crypto time. *)

val unprotect : t -> string -> string
(** Inverse of {!protect}. Raises {!Integrity_violation} if the AEAD check
    fails. *)

val digest : t -> string -> string
(** 32-byte hash in [auth] mode (charged), [""] otherwise. *)

val check_digest : t -> what:string -> data:string -> expected:string -> unit
(** Raises {!Integrity_violation} naming [what] on mismatch. No-op when
    [auth] is off. *)

val mac_key : t -> string -> Treaty_crypto.Hmac.t
(** Keyed MAC context for a named log chain (derived per log). *)
