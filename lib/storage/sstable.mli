(** Authenticated SSTables (SPEICHER's data model, §V-B).

    On disk a table is a sequence of blocks of sorted KV versions — each
    block encrypted as a unit in [enc] mode — followed by a footer holding
    per-block key ranges, offsets and hashes. The footer itself is
    authenticated by its digest recorded in the MANIFEST's [Add_file] entry,
    rooting the whole hierarchy in the counter-stamped MANIFEST chain:
    tampering with a block fails the footer's block hash, tampering with the
    footer fails the MANIFEST digest, and replaying an old file fails the
    MANIFEST freshness check.

    All versions of one user key always share a block, so a point lookup
    touches exactly one block. *)

type entry = string * int * Op.t
(** (key, seq, op) in internal-key order: key asc, seq desc. *)

type handle

val build :
  Ssd.t ->
  Sec.t ->
  file_id:int ->
  block_bytes:int ->
  entry list ->
  handle * string
(** Write a table from sorted entries as one sequential file write; returns
    the handle and the footer digest for the MANIFEST. The entry list must
    be non-empty and sorted. *)

val open_ :
  Ssd.t -> Sec.t -> file_id:int -> footer_digest:string -> handle
(** Recovery path: re-open a file named by its id, verifying the footer
    against the MANIFEST-recorded digest. Raises {!Sec.Integrity_violation}
    on mismatch. *)

val file_name : file_id:int -> string
val id : handle -> int
val min_key : handle -> string
val max_key : handle -> string
val data_bytes : handle -> int
val block_count : handle -> int

val overlaps : handle -> min:string -> max:string -> bool

val get : Ssd.t -> Sec.t -> handle -> key:string -> max_seq:int -> (int * Op.t) option
(** Freshest version of [key] with [seq <= max_seq]. Reads, verifies and
    decrypts the one candidate block. *)

val load_all : Ssd.t -> Sec.t -> handle -> entry list
(** Sequential scan of the whole table (compaction input). *)

val range :
  Ssd.t -> Sec.t -> handle -> lo:string -> hi:string -> max_seq:int -> entry list
(** All versions with [lo <= key <= hi] and [seq <= max_seq]: reads (and
    verifies) only the blocks whose key ranges overlap. *)
