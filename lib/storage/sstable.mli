(** Authenticated SSTables (SPEICHER's data model, §V-B).

    On disk a table is a sequence of blocks of sorted KV versions — each
    block encrypted as a unit in [enc] mode — followed by a footer holding
    per-block key ranges, offsets and hashes. The footer itself is
    authenticated by its digest recorded in the MANIFEST's [Add_file] entry,
    rooting the whole hierarchy in the counter-stamped MANIFEST chain:
    tampering with a block fails the footer's block hash, tampering with the
    footer fails the MANIFEST digest, and replaying an old file fails the
    MANIFEST freshness check.

    Footer format v2 (PR 5) prepends a {!Bloom} filter over the file's user
    keys, decoded into enclave memory at build/open time so absent-key
    probes can skip the block read + verify + decrypt entirely. The
    MANIFEST records each file's footer version; v1 (bare index) files
    still open. The block-granular API ([find_block_idx]/[read_block_idx])
    lets the engine route reads through its verified block cache.

    All versions of one user key always share a block, so a point lookup
    touches exactly one block. *)

type entry = string * int * Op.t
(** (key, seq, op) in internal-key order: key asc, seq desc. *)

type handle

val footer_version : int
(** The footer format written by {!build} (currently 2). *)

val build :
  Ssd.t ->
  Sec.t ->
  file_id:int ->
  block_bytes:int ->
  entry list ->
  handle * string
(** Write a table from sorted entries as one sequential file write; returns
    the handle and the footer digest for the MANIFEST. The entry list must
    be non-empty and sorted. *)

val open_ :
  ?version:int -> Ssd.t -> Sec.t -> file_id:int -> footer_digest:string -> handle
(** Recovery path: re-open a file named by its id, verifying the footer
    against the MANIFEST-recorded digest. [version] (default current) is
    the footer format the MANIFEST recorded for the file. Raises
    {!Sec.Integrity_violation} on mismatch. *)

val release : Sec.t -> handle -> unit
(** Drop the handle's enclave residency (the Bloom filter) when the file
    leaves the live hierarchy (compaction input). *)

val file_name : file_id:int -> string
val id : handle -> int
val min_key : handle -> string
val max_key : handle -> string
val data_bytes : handle -> int
val block_count : handle -> int
val format_version : handle -> int

val overlaps : handle -> min:string -> max:string -> bool

val may_contain : handle -> string -> bool
(** Bloom probe: [false] means the key is definitely absent (skip the file);
    [true] is only a hint. v1 files (no filter) always answer [true]. *)

val find_block_idx : handle -> string -> int option
(** Binary search over the block index (fence pointers) for the one block
    whose key span may contain the key. *)

val block_span : handle -> int -> string * string
(** (first_key, last_key) of a block — overlap tests for cached range
    reads. *)

val read_block_idx : Ssd.t -> Sec.t -> handle -> int -> entry list * string
(** Read, verify and decrypt one block; returns the decoded entries and the
    plaintext bytes (the engine caches both — the plaintext string is what
    TreatySan taint-tracks, and its length is the cache-budget charge).
    Raises [Invalid_argument] if the file was deleted under the reader
    (compaction); {!Sec.Integrity_violation} on tampering. *)

val search_entries : entry list -> key:string -> max_seq:int -> (int * Op.t) option
(** Freshest version of [key] with [seq <= max_seq] in one block's entries
    (cache-hit lookup). *)

val get : Ssd.t -> Sec.t -> handle -> key:string -> max_seq:int -> (int * Op.t) option
(** Freshest version of [key] with [seq <= max_seq]. Reads, verifies and
    decrypts the one candidate block (uncached path). *)

val load_all : Ssd.t -> Sec.t -> handle -> entry list
(** Sequential scan of the whole table (compaction input; deliberately
    bypasses the block cache — compaction inputs are about to die). *)

val range :
  Ssd.t -> Sec.t -> handle -> lo:string -> hi:string -> max_seq:int -> entry list
(** All versions with [lo <= key <= hi] and [seq <= max_seq]: reads (and
    verifies) only the blocks whose key ranges overlap (uncached path). *)
