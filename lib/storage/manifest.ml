module Wire = Treaty_util.Wire

type file_meta = {
  file_id : int;
  level : int;
  footer_digest : string;
  footer_version : int;  (* footer format the file was written with *)
  min_key : string;
  max_key : string;
  max_seq : int;  (* highest version in the file, for seq recovery *)
  size : int;
}

type edit =
  | Add_file of file_meta
  | Delete_file of { level : int; file_id : int }
  | New_wal of { wal_id : int }
  | Obsolete_wal of { wal_id : int }
  | Clog_trim of { upto : int }

type version = {
  levels : file_meta list array;
  live_wals : int list;
  clog_trim : int;
}

let empty_version n_levels =
  { levels = Array.make n_levels []; live_wals = []; clog_trim = 0 }

let apply_edit v = function
  | Add_file m ->
      let levels = Array.copy v.levels in
      if m.level = 0 then levels.(0) <- m :: levels.(0) (* newest first *)
      else
        levels.(m.level) <-
          List.sort (fun a b -> compare a.min_key b.min_key) (m :: levels.(m.level));
      { v with levels }
  | Delete_file { level; file_id } ->
      let levels = Array.copy v.levels in
      levels.(level) <- List.filter (fun m -> m.file_id <> file_id) levels.(level);
      { v with levels }
  | New_wal { wal_id } -> { v with live_wals = v.live_wals @ [ wal_id ] }
  | Obsolete_wal { wal_id } ->
      { v with live_wals = List.filter (fun id -> id <> wal_id) v.live_wals }
  | Clog_trim { upto } -> { v with clog_trim = max v.clog_trim upto }

let encode edit =
  let b = Buffer.create 64 in
  (match edit with
  | Add_file m ->
      Wire.w8 b 1;
      Wire.w64 b m.file_id;
      Wire.w32 b m.level;
      Wire.wstr b m.footer_digest;
      Wire.w32 b m.footer_version;
      Wire.wstr b m.min_key;
      Wire.wstr b m.max_key;
      Wire.w64 b m.max_seq;
      Wire.w64 b m.size
  | Delete_file { level; file_id } ->
      Wire.w8 b 2;
      Wire.w32 b level;
      Wire.w64 b file_id
  | New_wal { wal_id } ->
      Wire.w8 b 3;
      Wire.w64 b wal_id
  | Obsolete_wal { wal_id } ->
      Wire.w8 b 4;
      Wire.w64 b wal_id
  | Clog_trim { upto } ->
      Wire.w8 b 5;
      Wire.w64 b upto);
  Buffer.contents b

let decode payload =
  let r = Wire.reader payload in
  match Wire.r8 r with
  | 1 ->
      let file_id = Wire.r64 r in
      let level = Wire.r32 r in
      let footer_digest = Wire.rstr r in
      let footer_version = Wire.r32 r in
      let min_key = Wire.rstr r in
      let max_key = Wire.rstr r in
      let max_seq = Wire.r64 r in
      let size = Wire.r64 r in
      Add_file
        { file_id; level; footer_digest; footer_version; min_key; max_key; max_seq; size }
  | 2 ->
      let level = Wire.r32 r in
      let file_id = Wire.r64 r in
      Delete_file { level; file_id }
  | 3 -> New_wal { wal_id = Wire.r64 r }
  | 4 -> Obsolete_wal { wal_id = Wire.r64 r }
  | 5 -> Clog_trim { upto = Wire.r64 r }
  | n -> raise (Wire.Malformed (Printf.sprintf "bad manifest edit tag %d" n))

let replay_edits entries =
  let decoded = List.map (fun (c, payload) -> (c, decode payload)) entries in
  let version =
    List.fold_left (fun v (_, e) -> apply_edit v e) (empty_version 8) decoded
  in
  (version, decoded)

let wal_name id = Printf.sprintf "wal-%06d" id
