(** Untrusted persistent storage (the testbed's SSDs).

    Files are append-only byte streams with random reads. The store survives
    node crashes (the volatile engine state does not) and is fully
    adversary-accessible per the threat model (§III): tests tamper with
    bytes, truncate files, and snapshot/restore to mount rollback attacks.

    I/O time: writes pay NVMe program+fsync latency on a per-device channel
    (so concurrent writers queue — the motivation for group commit); reads
    are served from the kernel page cache by default, as in the paper's
    experiments ("the database fits entirely in the kernel page cache").
    Syscall costs are charged separately by the caller through its enclave,
    because they depend on the TEE mode. *)

type t

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

val create : Treaty_sim.Sim.t -> Treaty_sim.Costmodel.t -> t
val stats : t -> stats
val sim : t -> Treaty_sim.Sim.t

val append : t -> enclave:Treaty_tee.Enclave.t -> string -> string -> int
(** [append t ~enclave name data] appends to (creating) [name]; returns the
    offset the data landed at. Charges one write syscall and the device
    write. *)

val read : t -> enclave:Treaty_tee.Enclave.t -> string -> off:int -> len:int -> string
(** Random read; raises [Invalid_argument] past EOF. Charges one read
    syscall and a page-cache hit. *)

val size : t -> string -> int
(** Size in bytes; 0 if the file does not exist. *)

val exists : t -> string -> bool
val delete : t -> string -> unit
val list_files : t -> string list

(* --- adversary interface (tests only) --- *)

type snapshot

val snapshot : t -> snapshot
(** Copy the full persistent state (for later rollback). *)

val restore : t -> snapshot -> unit
(** Roll the store back to an earlier snapshot — the rollback attack of
    §III/§VI. *)

val tamper : t -> string -> off:int -> unit
(** Flip one bit of a stored file. *)

val truncate : t -> string -> int -> unit
(** Cut a file to [len] bytes (e.g. delete a log suffix). *)
