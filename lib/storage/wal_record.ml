module Wire = Treaty_util.Wire

type txid = int * int

type record =
  | Commit_batch of (int * (string * Op.t) list) list
  | Prepare of txid * (string * Op.t) list
  | Resolve of txid * int option

let encode_writes b writes =
  Wire.wlist b
    (fun b (key, op) ->
      Wire.wstr b key;
      Op.encode b op)
    writes

let decode_writes r =
  Wire.rlist r (fun r ->
      let key = Wire.rstr r in
      let op = Op.decode r in
      (key, op))

let encode record =
  let b = Buffer.create 128 in
  (match record with
  | Commit_batch txs ->
      Wire.w8 b 1;
      Wire.wlist b
        (fun b (seq, writes) ->
          Wire.w64 b seq;
          encode_writes b writes)
        txs
  | Prepare ((coord, tx), writes) ->
      Wire.w8 b 2;
      Wire.w64 b coord;
      Wire.w64 b tx;
      encode_writes b writes
  | Resolve ((coord, tx), outcome) ->
      Wire.w8 b 3;
      Wire.w64 b coord;
      Wire.w64 b tx;
      (match outcome with
      | Some seq ->
          Wire.w8 b 1;
          Wire.w64 b seq
      | None -> Wire.w8 b 0));
  Buffer.contents b

let decode payload =
  let r = Wire.reader payload in
  match Wire.r8 r with
  | 1 ->
      Commit_batch
        (Wire.rlist r (fun r ->
             let seq = Wire.r64 r in
             let writes = decode_writes r in
             (seq, writes)))
  | 2 ->
      let coord = Wire.r64 r in
      let tx = Wire.r64 r in
      Prepare ((coord, tx), decode_writes r)
  | 3 ->
      let coord = Wire.r64 r in
      let tx = Wire.r64 r in
      let outcome = if Wire.r8 r = 1 then Some (Wire.r64 r) else None in
      Resolve ((coord, tx), outcome)
  | n -> raise (Wire.Malformed (Printf.sprintf "bad wal record tag %d" n))
