module Enclave = Treaty_tee.Enclave
module Aead = Treaty_crypto.Aead

exception Integrity_violation of string

type t = {
  enclave : Enclave.t;
  auth : bool;
  enc : Aead.key option;
  iv_gen : Aead.Iv_gen.t;
  mac_root : Treaty_crypto.Hmac.t;
}

let create ~enclave ~auth ~enc () =
  let node = Enclave.node_id enclave in
  {
    enclave;
    auth;
    enc;
    iv_gen = Aead.Iv_gen.create ~node_id:node;
    mac_root =
      Treaty_crypto.Hmac.create
        (Treaty_crypto.Sha256.digest_string (Printf.sprintf "log-mac-root:%d" node));
  }

let enclave t = t.enclave
let auth t = t.auth
let encrypted t = Option.is_some t.enc

let protect t data =
  match t.enc with
  | None -> data
  | Some key ->
      Enclave.charge_crypto t.enclave ~bytes:(String.length data);
      Aead.seal_packed key ~iv:(Aead.Iv_gen.next t.iv_gen) data

let unprotect t data =
  match t.enc with
  | None -> data
  | Some key -> (
      Enclave.charge_crypto t.enclave ~bytes:(String.length data);
      match Aead.open_packed key data with
      | Ok pt -> pt
      | Error (`Mac_mismatch | `Truncated) ->
          raise (Integrity_violation "encrypted payload failed authentication"))

let digest t data =
  if not t.auth then ""
  else begin
    Enclave.charge_hash t.enclave ~bytes:(String.length data);
    Treaty_crypto.Sha256.digest_string data
  end

let check_digest t ~what ~data ~expected =
  if t.auth then begin
    Enclave.charge_hash t.enclave ~bytes:(String.length data);
    if not
         (Treaty_crypto.Hmac.equal_tags
            (Treaty_crypto.Sha256.digest_string data)
            expected)
    then raise (Integrity_violation what)
  end

let mac_key t name = Treaty_crypto.Hmac.create (Treaty_crypto.Hmac.mac t.mac_root name)
