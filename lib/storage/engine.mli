(** Treaty's per-node storage engine: SPEICHER extended for transactions
    (§V-B, §VII-B).

    A leveled LSM tree over the untrusted SSD: a MemTable absorbing writes,
    counter-stamped authenticated logs (WAL, MANIFEST, Clog), authenticated
    SSTables, flush and cascading compaction, and group commit. On top of
    plain puts it supports the two-phase-commit-facing operations the Tx
    layer needs: [prepare]/[resolve] for participant-side transactions and
    Clog appends for coordinator protocol state.

    Stabilization is injected: the Tx layer supplies a {!stability} record
    wired to the trusted counter service; an engine created with
    {!noop_stability} is the "w/o Stab" configuration. Garbage collection of
    WALs and compacted SSTables is gated on the MANIFEST entries that
    obsolete them being stable, so recovery from the rollback-protected
    prefix never references deleted files. *)

type stability = {
  submit : span:Treaty_obs.Trace.span -> log:string -> counter:int -> unit;
      (** Kick off asynchronous stabilization of [counter] on [log]. When
          tracing, [span] (the group-commit flush span, [Trace.none]
          otherwise) parents the ROTE epoch round carrying the target. *)
  wait_stable : log:string -> counter:int -> (unit, [ `Stability_timeout ]) result;
      (** Block the calling fiber until stabilized. [Error] means the
          counter service gave up (quorum unreachable past its retry
          budget): the entry is durable locally but not rollback-protected. *)
}

exception Stability_timeout
(** Raised by operations that must not acknowledge an entry whose
    stabilization failed ({!commit} with [wait_commit_stable], {!prepare}). *)

val noop_stability : stability

type config = {
  memtable_max_bytes : int;
  block_bytes : int;
  file_bytes : int;  (** Target SSTable size from compactions. *)
  l0_trigger : int;  (** L0 file count that triggers compaction. *)
  level_base_bytes : int;  (** L1 capacity; each level below is 10x. *)
  group_commit : bool;
  clog_group_commit : bool;
      (** Route Clog appends through their own group commit: one
          authenticated append + one counter submission per yield window of
          2PC records (the commit-pipeline batching knob). *)
  group_window_ns : int;
  values_in_enclave : bool;  (** Ablation: MemTable values in EPC. *)
  wait_commit_stable : bool;
      (** Only acknowledge single-node commits once stable (§V-B). *)
  in_memory : bool;
      (** Skip all persistence (no WAL/MANIFEST/Clog writes, no flushes):
          isolates the 2PC protocol itself, as the paper's Figure 4 run
          "without any underlying storage". *)
  read_opt : bool;
      (** Authenticated read-path acceleration (the PR-5 ablation knob, on
          in every named profile): Bloom-filter probes before block reads
          and the verified block cache. [false] reproduces the
          verify-every-block behaviour — fence-array lookups stay on either
          way. *)
  block_cache_bytes : int;
      (** Byte budget for the verified block cache (enclave memory);
          [0] disables the cache even with [read_opt]. *)
}

val default_config : config

type stats = {
  mutable gets : int;
  mutable commits : int;
  mutable prepares : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable sst_block_reads : int;
  mutable wal_appends : int;
  mutable clog_appends : int;
  mutable cache_hits : int;  (** Block-cache hits (SSD read + verify + decrypt skipped). *)
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable bloom_negatives : int;  (** Files skipped entirely by a Bloom probe. *)
  mutable bloom_false_positives : int;
      (** Bloom said "maybe", the verified block said no. *)
}

type recovery_info = {
  prepared : (Wal_record.txid * (string * Op.t) list) list;
      (** Prepared, undecided transactions found in the WALs. *)
  clog_records : (int * Clog_record.record) list;
      (** Surviving coordinator 2PC state, counter-tagged. *)
  wal_entries_dropped : int;  (** Unstabilized tail entries discarded. *)
  clog_entries_dropped : int;
}

type t

val create : ?node:int -> Ssd.t -> Sec.t -> config -> stability -> t
(** Initialize a fresh database on an empty SSD. [node] is the trace pid
    lane this engine's spans render on (default 0). *)

val recover :
  ?node:int ->
  Ssd.t ->
  Sec.t ->
  config ->
  stability ->
  trusted:(string -> int option) ->
  (t * recovery_info, string) result
(** Rebuild from the SSD after a crash: replay MANIFEST, verify and reopen
    the SSTable hierarchy, replay live WALs (restoring the MemTable and
    prepared transactions), replay the Clog. [trusted] maps a log name to
    the trusted counter service's value for it — [None] disables freshness
    enforcement (the non-Stab configurations). Detected rollback, tampering
    or truncation surfaces as [Error description]. *)

val sim : t -> Treaty_sim.Sim.t
val sec : t -> Sec.t
val stats : t -> stats
val config : t -> config

val snapshot : t -> int
(** Latest visible sequence number: the read snapshot for new transactions. *)

val next_seq : t -> int
(** Allocate the next commit sequence number. *)

val get :
  ?span:Treaty_obs.Trace.span -> t -> key:string -> snapshot:int -> Memtable.lookup
(** Point lookup at a snapshot: MemTable, then immutable MemTables, then L0
    newest-first, then (via fence-array binary search) the one candidate
    file per deeper level. With [read_opt], each SSTable probe consults the
    file's Bloom filter first and block reads go through the verified block
    cache. [span] parents the [sst.read] spans of any block fetches. *)

val scan :
  ?span:Treaty_obs.Trace.span ->
  t ->
  lo:string ->
  hi:string ->
  snapshot:int ->
  (string * string) list
(** Range scan at a snapshot: merges the MemTables and every overlapping
    SSTable (block reads through the cache when enabled), keeps the
    freshest visible version of each key, drops tombstones. Results in key
    order. *)

val commit :
  t -> ?span:Treaty_obs.Trace.span -> writes:(string * Op.t) list -> unit -> int
(** Durably commit one transaction's write set: appends to the WAL
    (group-committed with concurrent callers when enabled), applies to the
    MemTable at a freshly assigned sequence number (returned), publishes
    visibility, and if [wait_commit_stable] blocks until the WAL entry is
    rollback-protected. Raises {!Stability_timeout} if that wait fails —
    the writes are applied and locally durable, but the caller must not
    acknowledge the transaction as committed. [span] parents the WAL flush
    and stabilization-wait spans. *)

val retain_snapshot : t -> int -> unit
(** Pin a snapshot: compactions keep every version a transaction reading at
    it could need. Pair with {!release_snapshot}. *)

val release_snapshot : t -> int -> unit

val min_active_snapshot : t -> int
(** The compaction GC watermark: the lowest retained snapshot, or the
    current visible sequence number when none is retained. Compaction may
    drop a shadowed version only if a newer version is also at or below
    this watermark. *)

val active_snapshot_count : t -> int
(** Total outstanding {!retain_snapshot} references. Zero at quiescence —
    a transaction path that drops its context without releasing pins the
    GC watermark; TreatySan checks this at the end of sanitized runs. *)

val prepare :
  t ->
  ?span:Treaty_obs.Trace.span ->
  tx:Wal_record.txid ->
  writes:(string * Op.t) list ->
  unit ->
  unit
(** Participant prepare: persist the transaction's writes in the WAL and
    block until the entry is stable (§V: "participants delay replying back
    to the coordinator until the prepare entry in the log is stabilized").
    Raises {!Stability_timeout} if stabilization fails; the prepare record
    stays registered and is resolved by the coordinator's decision (or
    recovery). *)

val resolve : t -> tx:Wal_record.txid -> commit:bool -> int option
(** Commit or abort a prepared transaction. On commit the writes are applied
    at a fresh sequence number (returned). Unknown/already-resolved
    transactions return [None] (duplicate commit messages are ignored,
    §VI). *)

val prepared_txs : t -> Wal_record.txid list

val key_prepared : t -> key:string -> bool
(** Does any prepared-but-unresolved transaction write [key]? Used by the
    read-only fast path's stability guard: such a transaction may already
    be globally decided (its resolve merely in flight here), so a snapshot
    read around it could miss a write serialized before data it returns. *)

val clog_append : t -> ?span:Treaty_obs.Trace.span -> Clog_record.record -> int
(** Append coordinator 2PC state; returns the Clog counter value. With
    [clog_group_commit] the record is merged into the current yield window
    (blocking until the window flushes) and the returned counter is shared
    by every record in the window. [span] parents the Clog flush span. *)

val clog_wait_stable :
  t ->
  ?span:Treaty_obs.Trace.span ->
  counter:int ->
  unit ->
  (unit, [ `Stability_timeout ]) result
val clog_trim : t -> upto:int -> unit

val wal_group_stats : t -> Group_commit.stats option
val clog_group_stats : t -> Group_commit.stats option
(** Batching efficiency of the WAL / Clog group commits ([None] when the
    corresponding group commit is disabled). *)

val log_last_counters : t -> (string * int) list
(** (log name, last counter) for every live log — what the trusted counter
    service is asked to vouch for. *)

val flush_now : t -> unit
(** Force MemTable rotation and wait for the flush to complete (tests). *)

val compact_now : t -> unit
(** Enqueue a full compaction pass and block until the background
    compaction queue has drained (deterministic; tests). *)

val compaction_idle : t -> bool
(** No queued work and no compactor fiber running. *)

val level_files : t -> int -> int
(** Number of SSTables on a level (tests/benches). *)

val cache_usage : t -> (int * int) option
(** (used_bytes, capacity_bytes) of the verified block cache, [None] when
    disabled. *)

val memtable_handle : t -> Memtable.t
(** The live MemTable — exposed for the host-memory tampering tests. *)
