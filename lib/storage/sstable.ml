module Wire = Treaty_util.Wire

type entry = string * int * Op.t

type block_meta = {
  first_key : string;
  last_key : string;
  offset : int;
  length : int;
  bhash : string;
}

type handle = {
  file_id : int;
  name : string;
  index : block_meta array;
  bloom : Bloom.t option;  (* None for format-v1 files: always "maybe" *)
  version : int;
  hmin_key : string;
  hmax_key : string;
  data_bytes : int;
}

let file_name ~file_id = Printf.sprintf "sst-%06d" file_id
let magic = "TRTYSSTB"
let footer_version = 2

let encode_block entries =
  let b = Buffer.create 4096 in
  Wire.w32 b (List.length entries);
  List.iter
    (fun (key, seq, op) ->
      Wire.wstr b key;
      Wire.w64 b seq;
      Op.encode b op)
    entries;
  Buffer.contents b

let decode_block data =
  let r = Wire.reader data in
  let n = Wire.r32 r in
  List.init n (fun _ ->
      let key = Wire.rstr r in
      let seq = Wire.r64 r in
      let op = Op.decode r in
      (key, seq, op))

let encode_index b index =
  Wire.wlist b
    (fun b m ->
      Wire.wstr b m.first_key;
      Wire.wstr b m.last_key;
      Wire.w64 b m.offset;
      Wire.w64 b m.length;
      Wire.wstr b m.bhash)
    (Array.to_list index)

let decode_index r =
  Wire.rlist r (fun r ->
      let first_key = Wire.rstr r in
      let last_key = Wire.rstr r in
      let offset = Wire.r64 r in
      let length = Wire.r64 r in
      let bhash = Wire.rstr r in
      { first_key; last_key; offset; length; bhash })
  |> Array.of_list

(* Footer format v2 (PR 5): a version tag, the Bloom filter over the user
   keys, then the block index. v1 footers are the bare index list — still
   decoded for files recorded with [footer_version = 1] in the MANIFEST.
   Either way the whole footer is covered by the digest in [Add_file], so
   the filter is as tamper-evident as the index. *)
let encode_footer bloom index =
  let b = Buffer.create 1024 in
  Wire.w8 b footer_version;
  Bloom.encode b bloom;
  encode_index b index;
  Buffer.contents b

let decode_footer ~version data =
  let r = Wire.reader data in
  match version with
  | 1 -> (None, decode_index r)
  | 2 ->
      let tag = Wire.r8 r in
      if tag <> footer_version then
        raise (Wire.Malformed (Printf.sprintf "bad footer version tag %d" tag));
      let bloom = Bloom.decode r in
      (Some bloom, decode_index r)
  | v -> raise (Wire.Malformed (Printf.sprintf "unknown footer version %d" v))

(* Split sorted entries into blocks of roughly [block_bytes] plaintext,
   never splitting the versions of one user key across blocks. *)
let partition_blocks ~block_bytes entries =
  let blocks = ref [] and cur = ref [] and cur_bytes = ref 0 in
  let flush_cur () =
    if !cur <> [] then begin
      blocks := List.rev !cur :: !blocks;
      cur := [];
      cur_bytes := 0
    end
  in
  let rec go = function
    | [] -> ()
    | ((key, _, op) as e) :: rest ->
        let sz = String.length key + 16 + Op.size op in
        let same_key_as_prev =
          match !cur with (k, _, _) :: _ -> k = key | [] -> false
        in
        if !cur_bytes + sz > block_bytes && !cur <> [] && not same_key_as_prev then
          flush_cur ();
        cur := e :: !cur;
        cur_bytes := !cur_bytes + sz;
        go rest
  in
  go entries;
  flush_cur ();
  List.rev !blocks

(* The filter covers distinct user keys; entries arrive in internal-key
   order, so distinct keys are adjacent. *)
let bloom_of_entries entries =
  let distinct =
    List.fold_left
      (fun (n, prev) (k, _, _) -> if Some k = prev then (n, prev) else (n + 1, Some k))
      (0, None) entries
    |> fst
  in
  let bloom = Bloom.create ~expected:distinct in
  List.iter (fun (k, _, _) -> Bloom.add bloom k) entries;
  bloom

let account_bloom sec = function
  | None -> ()
  | Some bloom ->
      (* The filter is enclave-resident for the file's lifetime. *)
      Treaty_tee.Enclave.alloc_enclave (Sec.enclave sec) (Bloom.bytes bloom)

let release sec h =
  match h.bloom with
  | None -> ()
  | Some bloom -> Treaty_tee.Enclave.free_enclave (Sec.enclave sec) (Bloom.bytes bloom)

let build ssd sec ~file_id ~block_bytes entries =
  if entries = [] then invalid_arg "Sstable.build: empty";
  let name = file_name ~file_id in
  let file = Buffer.create (64 * 1024) in
  let index = ref [] in
  List.iter
    (fun block_entries ->
      let plain = encode_block block_entries in
      let stored = Sec.protect sec plain in
      (* TreatySan boundary: SSTable blocks go to the untrusted SSD. *)
      Treaty_crypto.Taint.check ~what:("sstable block write " ^ name) stored;
      let bhash = Sec.digest sec stored in
      let first_key = (fun (k, _, _) -> k) (List.hd block_entries) in
      let last_key =
        (fun (k, _, _) -> k) (List.nth block_entries (List.length block_entries - 1))
      in
      index :=
        {
          first_key;
          last_key;
          offset = Buffer.length file;
          length = String.length stored;
          bhash;
        }
        :: !index;
      Buffer.add_string file stored)
    (partition_blocks ~block_bytes entries);
  let index = Array.of_list (List.rev !index) in
  let data_bytes = Buffer.length file in
  let bloom = bloom_of_entries entries in
  let footer = encode_footer bloom index in
  let footer_digest = Sec.digest sec footer in
  Buffer.add_string file footer;
  let tail = Buffer.create 16 in
  Wire.w64 tail (String.length footer);
  Buffer.add_string tail magic;
  Buffer.add_string file (Buffer.contents tail);
  ignore (Ssd.append ssd ~enclave:(Sec.enclave sec) name (Buffer.contents file));
  account_bloom sec (Some bloom);
  let handle =
    {
      file_id;
      name;
      index;
      bloom = Some bloom;
      version = footer_version;
      hmin_key = index.(0).first_key;
      hmax_key = index.(Array.length index - 1).last_key;
      data_bytes;
    }
  in
  (handle, footer_digest)

let open_ ?(version = footer_version) ssd sec ~file_id ~footer_digest =
  let name = file_name ~file_id in
  let total = Ssd.size ssd name in
  let enclave = Sec.enclave sec in
  if total < 16 then raise (Sec.Integrity_violation (name ^ ": too small"));
  let tail = Ssd.read ssd ~enclave name ~off:(total - 16) ~len:16 in
  let r = Wire.reader tail in
  let footer_len = Wire.r64 r in
  if Wire.rbytes r 8 <> magic then
    raise (Sec.Integrity_violation (name ^ ": bad magic"));
  if footer_len < 0 || footer_len > total - 16 then
    raise (Sec.Integrity_violation (name ^ ": bad footer length"));
  let footer = Ssd.read ssd ~enclave name ~off:(total - 16 - footer_len) ~len:footer_len in
  Sec.check_digest sec ~what:(name ^ ": footer digest") ~data:footer
    ~expected:footer_digest;
  let bloom, index =
    try decode_footer ~version footer
    with Wire.Malformed m -> raise (Sec.Integrity_violation (name ^ ": " ^ m))
  in
  if Array.length index = 0 then raise (Sec.Integrity_violation (name ^ ": empty index"));
  account_bloom sec bloom;
  {
    file_id;
    name;
    index;
    bloom;
    version;
    hmin_key = index.(0).first_key;
    hmax_key = index.(Array.length index - 1).last_key;
    data_bytes = total - 16 - footer_len;
  }

let id h = h.file_id
let min_key h = h.hmin_key
let max_key h = h.hmax_key
let data_bytes h = h.data_bytes
let block_count h = Array.length h.index
let format_version h = h.version

let overlaps h ~min ~max = not (h.hmax_key < min || h.hmin_key > max)

let may_contain h key =
  match h.bloom with None -> true | Some bloom -> Bloom.mem bloom key

let read_stored_block ssd sec h meta =
  let stored =
    Ssd.read ssd ~enclave:(Sec.enclave sec) h.name ~off:meta.offset ~len:meta.length
  in
  Sec.check_digest sec ~what:(h.name ^ ": block hash") ~data:stored
    ~expected:meta.bhash;
  let plain = Sec.unprotect sec stored in
  let entries =
    try decode_block plain
    with Wire.Malformed m -> raise (Sec.Integrity_violation (h.name ^ ": " ^ m))
  in
  (entries, plain)

let read_block ssd sec h meta = fst (read_stored_block ssd sec h meta)

(* Binary search for the block whose key range may contain [key]. *)
let find_block_idx h key =
  let lo = ref 0 and hi = ref (Array.length h.index - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let m = h.index.(mid) in
    if key < m.first_key then hi := mid - 1
    else if key > m.last_key then lo := mid + 1
    else begin
      found := Some mid;
      lo := !hi + 1
    end
  done;
  !found

let find_block h key = Option.map (fun i -> h.index.(i)) (find_block_idx h key)

let read_block_idx ssd sec h idx = read_stored_block ssd sec h h.index.(idx)

let block_span h idx =
  let m = h.index.(idx) in
  (m.first_key, m.last_key)

let search_entries entries ~key ~max_seq =
  (* Entries are (key asc, seq desc): first matching version wins. *)
  List.find_map
    (fun (k, seq, op) -> if k = key && seq <= max_seq then Some (seq, op) else None)
    entries

let get ssd sec h ~key ~max_seq =
  match find_block h key with
  | None -> None
  | Some meta -> search_entries (read_block ssd sec h meta) ~key ~max_seq

let load_all ssd sec h =
  Array.to_list h.index |> List.concat_map (read_block ssd sec h)

let range ssd sec h ~lo ~hi ~max_seq =
  Array.to_list h.index
  |> List.concat_map (fun meta ->
         if meta.last_key < lo || meta.first_key > hi then []
         else
           List.filter
             (fun (k, seq, _) -> k >= lo && k <= hi && seq <= max_seq)
             (read_block ssd sec h meta))
