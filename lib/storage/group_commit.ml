module Sim = Treaty_sim.Sim
module Trace = Treaty_obs.Trace

type stats = { mutable batches : int; mutable items : int }

type 'a t = {
  sim : Sim.t;
  name : string;
  node : int;
  window_ns : int;
  flush : Trace.span -> 'a list -> int;
  mutable queue : ('a * int Sim.ivar * Trace.span) list;  (* newest first *)
  mutable leader_active : bool;
  stats : stats;
}

let create sim ?(name = "group") ?(node = 0) ~window_ns ~flush () =
  { sim; name; node; window_ns; flush; queue = []; leader_active = false;
    stats = { batches = 0; items = 0 } }

let submit t ?(span = Trace.none) item =
  let iv = Sim.ivar () in
  t.queue <- (item, iv, span) :: t.queue;
  if not t.leader_active then begin
    t.leader_active <- true;
    (* Defer logging so followers can join the group. *)
    Sim.sleep t.sim t.window_ns;
    (* Items submitted while a flush is in progress are drained by the same
       leader: followers enqueue and block, so nobody else can lead until we
       release leadership with an empty queue. *)
    while t.queue <> [] do
      let batch = List.rev t.queue in
      t.queue <- [];
      (* The flush span parents on the first item's submit-site span: that
         fiber is parked on its ivar until the flush returns, so the parent
         is provably open for the whole child. *)
      let fspan =
        if Trace.enabled () then begin
          let parent =
            match batch with (_, _, s) :: _ -> s | [] -> Trace.none
          in
          Trace.begin_span ~parent ~node:t.node ~cat:"storage"
            (t.name ^ ".flush")
            ~args:[ ("items", Trace.Int (List.length batch)) ]
        end
        else Trace.none
      in
      let counter = t.flush fspan (List.map (fun (it, _, _) -> it) batch) in
      Trace.end_span fspan ~args:[ ("counter", Trace.Int counter) ];
      t.stats.batches <- t.stats.batches + 1;
      t.stats.items <- t.stats.items + List.length batch;
      List.iter (fun (_, biv, _) -> Sim.fill biv counter) batch
    done;
    t.leader_active <- false
  end;
  Sim.read t.sim iv

let stats t = t.stats
