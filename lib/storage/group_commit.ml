module Sim = Treaty_sim.Sim

type stats = { mutable batches : int; mutable items : int }

type 'a t = {
  sim : Sim.t;
  window_ns : int;
  flush : 'a list -> int;
  mutable queue : ('a * int Sim.ivar) list;  (* newest first *)
  mutable leader_active : bool;
  stats : stats;
}

let create sim ~window_ns ~flush =
  { sim; window_ns; flush; queue = []; leader_active = false; stats = { batches = 0; items = 0 } }

let submit t item =
  let iv = Sim.ivar () in
  t.queue <- (item, iv) :: t.queue;
  if not t.leader_active then begin
    t.leader_active <- true;
    (* Defer logging so followers can join the group. *)
    Sim.sleep t.sim t.window_ns;
    (* Items submitted while a flush is in progress are drained by the same
       leader: followers enqueue and block, so nobody else can lead until we
       release leadership with an empty queue. *)
    while t.queue <> [] do
      let batch = List.rev t.queue in
      t.queue <- [];
      let counter = t.flush (List.map fst batch) in
      t.stats.batches <- t.stats.batches + 1;
      t.stats.items <- t.stats.items + List.length batch;
      List.iter (fun (_, biv) -> Sim.fill biv counter) batch
    done;
    t.leader_active <- false
  end;
  Sim.read t.sim iv

let stats t = t.stats
