(** Clog record format (§V-A, §VII-B).

    The Clog is Treaty's addition to SPEICHER's persistent structures: the
    coordinator-side log of 2PC protocol state. [Begin_2pc] is written when
    the coordinator starts preparing a distributed transaction (step 5 in
    Figure 2); [Decision] records the commit/abort decision, which must be
    *stabilized* before participants are told to commit (steps 6–7);
    [Finished] marks full resolution so the entry can be trimmed. *)

type record =
  | Begin_2pc of { tx_seq : int; participants : int list }
  | Decision of { tx_seq : int; commit : bool }
  | Finished of { tx_seq : int }
  | Batch of record list
      (** Group-committed window of records sharing one authenticated append
          and one counter value (§VII-B applied to the Clog). *)

val encode : record -> string
val decode : string -> record

val flatten : record -> record list
(** Expand nested [Batch]es into the flat record sequence, in append order.
    A plain record flattens to itself. *)
