(** A versioned write: a value or a tombstone. *)

type t = Put of string | Delete

val encode : Buffer.t -> t -> unit
val decode : Treaty_util.Wire.reader -> t
val size : t -> int
val pp : Format.formatter -> t -> unit
