module Wire = Treaty_util.Wire

type t = Put of string | Delete

let encode b = function
  | Put v ->
      Wire.w8 b 1;
      Wire.wstr b v
  | Delete -> Wire.w8 b 0

let decode r =
  match Wire.r8 r with
  | 1 -> Put (Wire.rstr r)
  | 0 -> Delete
  | n -> raise (Wire.Malformed (Printf.sprintf "bad op tag %d" n))

let size = function Put v -> String.length v | Delete -> 0

let pp ppf = function
  | Put v -> Format.fprintf ppf "Put(%dB)" (String.length v)
  | Delete -> Format.fprintf ppf "Delete"
