(** Verified block cache: enclave-resident LRU of already-decrypted,
    already-verified SSTable blocks.

    A hit on the authenticated read path skips the SSD read, the block-hash
    check and the AEAD decryption — the Fides-style observation that
    verification cost is amortized by caching authenticated data in trusted
    memory. The cached plaintext therefore lives strictly inside the
    enclave trust zone: this module holds bytes and bookkeeping only and
    never touches [Net] or [Ssd] (treaty-lint enforces that, and the engine
    registers cached plaintext with [Taint] so TreatySan catches any escape
    to an untrusted boundary at runtime).

    Keys are [(file_id, block_idx)]; file ids are never reused, so an entry
    can go stale only by outliving its file — compaction invalidates the
    inputs' entries when it swaps them out. Capacity is a byte budget
    ([Config.profile.block_cache_bytes]); recency is an explicit linked
    list, so eviction order is a pure function of the access sequence
    (determinism contract), never of [Hashtbl] internals.

    The cache itself is storage-agnostic ['a] bookkeeping; enclave-memory
    accounting is the caller's job, which is why mutators return the bytes
    they freed. *)

type 'a t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

val create : capacity_bytes:int -> 'a t

val find : 'a t -> file_id:int -> block:int -> 'a option
(** Bumps the entry to most-recently-used; counts a hit or miss. *)

val insert : 'a t -> file_id:int -> block:int -> bytes:int -> 'a -> int
(** Insert (replacing any stale entry for the same key), evicting from the
    LRU tail until the budget holds. Returns the bytes freed by
    replacement/eviction so the caller can release the matching enclave
    allocation. Values larger than the whole budget are not cached
    (returns 0 with the cache untouched). *)

val invalidate_file : 'a t -> file_id:int -> int
(** Drop every block of [file_id] (compaction deleted it); returns bytes
    freed. *)

val clear : 'a t -> int

val stats : 'a t -> stats
val used_bytes : 'a t -> int
val capacity_bytes : 'a t -> int
val entries : 'a t -> int
