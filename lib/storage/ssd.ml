module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

type t = {
  sim : Sim.t;
  cost : Treaty_sim.Costmodel.t;
  files : (string, Buffer.t) Hashtbl.t;
  channel : Sim.Resource.resource;  (** Device write channel: writers queue. *)
  stats : stats;
}

let create sim cost =
  {
    sim;
    cost;
    files = Hashtbl.create 32;
    channel = Sim.Resource.create sim ~capacity:1 "ssd";
    stats = { writes = 0; reads = 0; bytes_written = 0; bytes_read = 0 };
  }

let stats t = t.stats
let sim t = t.sim

let file t name =
  match Hashtbl.find_opt t.files name with
  | Some b -> b
  | None ->
      let b = Buffer.create 4096 in
      Hashtbl.replace t.files name b;
      b

let append t ~enclave name data =
  let buf = file t name in
  let off = Buffer.length buf in
  Enclave.syscall enclave ~bytes:(String.length data) ();
  Sim.Resource.consume t.channel
    (t.cost.ssd_write_base_ns
    + int_of_float (t.cost.ssd_write_per_byte_ns *. float_of_int (String.length data)));
  Buffer.add_string buf data;
  t.stats.writes <- t.stats.writes + 1;
  t.stats.bytes_written <- t.stats.bytes_written + String.length data;
  off

let read t ~enclave name ~off ~len =
  match Hashtbl.find_opt t.files name with
  | None -> invalid_arg (Printf.sprintf "Ssd.read: no such file %s" name)
  | Some buf ->
      if off < 0 || len < 0 || off + len > Buffer.length buf then
        invalid_arg (Printf.sprintf "Ssd.read: out of bounds %s" name);
      Enclave.syscall enclave ~bytes:len ();
      Enclave.compute_untrusted enclave t.cost.page_cache_read_ns;
      t.stats.reads <- t.stats.reads + 1;
      t.stats.bytes_read <- t.stats.bytes_read + len;
      Buffer.sub buf off len

let size t name =
  match Hashtbl.find_opt t.files name with
  | None -> 0
  | Some b -> Buffer.length b

let exists t name = Hashtbl.mem t.files name
let delete t name = Hashtbl.remove t.files name

let list_files t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare

type snapshot = (string * string) list

let snapshot t =
  Hashtbl.fold (fun name buf acc -> (name, Buffer.contents buf) :: acc) t.files []

let restore t snap =
  Hashtbl.reset t.files;
  List.iter
    (fun (name, contents) ->
      let b = Buffer.create (String.length contents) in
      Buffer.add_string b contents;
      Hashtbl.replace t.files name b)
    snap

let tamper t name ~off =
  match Hashtbl.find_opt t.files name with
  | None -> invalid_arg "Ssd.tamper: no such file"
  | Some buf ->
      let contents = Bytes.of_string (Buffer.contents buf) in
      if Bytes.length contents = 0 then ()
      else begin
        let i = off mod Bytes.length contents in
        Bytes.set contents i (Char.chr (Char.code (Bytes.get contents i) lxor 0x01));
        Buffer.clear buf;
        Buffer.add_bytes buf contents
      end

let truncate t name len =
  match Hashtbl.find_opt t.files name with
  | None -> invalid_arg "Ssd.truncate: no such file"
  | Some buf ->
      let contents = Buffer.sub buf 0 (min len (Buffer.length buf)) in
      Buffer.clear buf;
      Buffer.add_string buf contents
