module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics

type stability = {
  submit : span:Trace.span -> log:string -> counter:int -> unit;
  wait_stable : log:string -> counter:int -> (unit, [ `Stability_timeout ]) result;
}

exception Stability_timeout

let noop_stability =
  {
    submit = (fun ~span:_ ~log:_ ~counter:_ -> ());
    wait_stable = (fun ~log:_ ~counter:_ -> Ok ());
  }

type config = {
  memtable_max_bytes : int;
  block_bytes : int;
  file_bytes : int;
  l0_trigger : int;
  level_base_bytes : int;
  group_commit : bool;
  clog_group_commit : bool;
  group_window_ns : int;
  values_in_enclave : bool;
  wait_commit_stable : bool;
  in_memory : bool;
  read_opt : bool;
  block_cache_bytes : int;
}

let default_config =
  {
    memtable_max_bytes = 4 * 1024 * 1024;
    block_bytes = 4096;
    file_bytes = 2 * 1024 * 1024;
    l0_trigger = 4;
    level_base_bytes = 16 * 1024 * 1024;
    group_commit = true;
    clog_group_commit = true;
    group_window_ns = 15_000;
    values_in_enclave = false;
    wait_commit_stable = true;
    in_memory = false;
    read_opt = true;
    block_cache_bytes = 8 * 1024 * 1024;
  }

type stats = {
  mutable gets : int;
  mutable commits : int;
  mutable prepares : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable sst_block_reads : int;
  mutable wal_appends : int;
  mutable clog_appends : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable bloom_negatives : int;
  mutable bloom_false_positives : int;
}

type recovery_info = {
  prepared : (Wal_record.txid * (string * Op.t) list) list;
  clog_records : (int * Clog_record.record) list;
  wal_entries_dropped : int;
  clog_entries_dropped : int;
}

let n_levels = 8
let manifest_log = "MANIFEST"
let clog_log = "CLOG"

type level_file = { meta : Manifest.file_meta; handle : Sstable.handle }

type commit_item = {
  cwrites : (string * Op.t) list;
  mutable cseq : int;
}

(* Background compaction work: [Demand] drains whatever the level triggers
   ask for (the flush-path request); [Full] compacts every populated level
   once, top down (compact_now). *)
type compact_req = Demand | Full

type t = {
  sim : Sim.t;
  ssd : Ssd.t;
  sec : Sec.t;
  config : config;
  trace_node : int;  (* Chrome pid lane for this engine's spans *)
  stability : stability;
  manifest : Log_auth.t;
  clog : Log_auth.t;
  mutable wal : Log_auth.t;
  mutable wal_id : int;
  mutable wal_manifest_counter : int;
      (* MANIFEST counter of the New_wal edit registering the current WAL: a
         commit is only rollback-protected once the WAL entry AND the edit
         that makes recovery replay that WAL are both stable. *)
  mutable memtable : Memtable.t;
  mutable immutables : (Memtable.t * int) list;  (* with their WAL id, newest first *)
  levels : level_file array array;
      (* mutable via Array.set; L0 newest-first (files may overlap), deeper
         levels sorted by min_key with disjoint ranges — the fence arrays
         point lookups binary-search. *)
  cache : (Sstable.entry list * string) Block_cache.t option;
      (* Verified block cache (read_opt): decoded entries + the decrypted
         plaintext they came from, both enclave-resident. *)
  mutable next_file_id : int;
  mutable last_alloc_seq : int;
  mutable visible_seq : int;
  commit_lock : Sim.Resource.resource;
  mutable group : commit_item Group_commit.t option;
  mutable clog_group : Clog_record.record Group_commit.t option;
  prepared : (Wal_record.txid, (string * Op.t) list * int (* wal id *)) Hashtbl.t;
  wal_unresolved : (int, int ref) Hashtbl.t;  (* wal id -> live prepare count *)
  active_snapshots : (int, int) Hashtbl.t;  (* snapshot seq -> refcount *)
  mutable flushing : bool;
  compact_queue : compact_req Queue.t;
  mutable compactor_running : bool;
      (* The single compactor fiber's guard: spawned on demand when work is
         enqueued, exits when the queue drains. All compaction — background
         triggers and compact_now alike — flows through this one gate. *)
  ephemeral_counters : (string, int ref) Hashtbl.t;
      (* Synthetic per-log counters for the in-memory (no-storage) mode. *)
  stats : stats;
}

let ephemeral_counter t name =
  let r =
    match Hashtbl.find_opt t.ephemeral_counters name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.ephemeral_counters name r;
        r
  in
  incr r;
  !r

let sim t = t.sim
let sec t = t.sec
let stats t = t.stats
let config t = t.config
let snapshot t = t.visible_seq

let next_seq t =
  t.last_alloc_seq <- t.last_alloc_seq + 1;
  t.last_alloc_seq

let enclave t = Sec.enclave t.sec

(* Small in-enclave compute constants on the read/write path. *)
let probe_ns = 280

let fresh_stats () =
  {
    gets = 0;
    commits = 0;
    prepares = 0;
    flushes = 0;
    compactions = 0;
    sst_block_reads = 0;
    wal_appends = 0;
    clog_appends = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    bloom_negatives = 0;
    bloom_false_positives = 0;
  }

let manifest_append t edit =
  if t.config.in_memory then ephemeral_counter t manifest_log
  else begin
    let c = Log_auth.append t.manifest (Manifest.encode edit) in
    t.stability.submit ~span:Trace.none ~log:manifest_log ~counter:c;
    c
  end

let wal_append t ?(span = Trace.none) record =
  t.stats.wal_appends <- t.stats.wal_appends + 1;
  if t.config.in_memory then ephemeral_counter t (Log_auth.name t.wal)
  else begin
    let c = Log_auth.append t.wal (Wal_record.encode record) in
    t.stability.submit ~span ~log:(Log_auth.name t.wal) ~counter:c;
    c
  end

(* --- construction --------------------------------------------------- *)

let mk_group t =
  Group_commit.create t.sim ~name:"wal" ~node:t.trace_node
    ~window_ns:t.config.group_window_ns
    ~flush:(fun fspan items ->
      (* Sequence, persist and apply the whole group atomically with respect
         to other WAL writers. *)
      Sim.Resource.acquire t.commit_lock;
      Fun.protect ~finally:(fun () -> Sim.Resource.release t.commit_lock)
      @@ fun () ->
      List.iter (fun it -> it.cseq <- next_seq t) items;
      let record =
        Wal_record.Commit_batch (List.map (fun it -> (it.cseq, it.cwrites)) items)
      in
      let counter = wal_append t ~span:fspan record in
      List.iter
        (fun it ->
          List.iter
            (fun (key, op) ->
              Enclave.charge_engine_op ~lsm:(not t.config.in_memory)
                (Sec.enclave t.sec) ~bytes:(Op.size op);
              Memtable.add t.memtable ~key ~seq:it.cseq op)
            it.cwrites)
        items;
      t.visible_seq <- t.last_alloc_seq;
      counter)
    ()

(* Clog group commit: a yield window of 2PC records (Begin/Decision/Finished
   across concurrent coordinated transactions) rides one authenticated
   append and one counter submission — every record in the window shares
   the batch's counter, so one stabilization round covers them all. *)
let mk_clog_group t =
  Group_commit.create t.sim ~name:"clog" ~node:t.trace_node
    ~window_ns:t.config.group_window_ns
    ~flush:(fun fspan records ->
      let payload =
        match records with
        | [ record ] -> Clog_record.encode record
        | records -> Clog_record.encode (Clog_record.Batch records)
      in
      let c = Log_auth.append t.clog payload in
      t.stability.submit ~span:fspan ~log:clog_log ~counter:c;
      c)
    ()

let create_internal ?(node = 0) sim ssd sec cfg stability =
  let t =
    {
      sim;
      ssd;
      sec;
      config = cfg;
      trace_node = node;
      stability;
      manifest = Log_auth.create ssd sec ~name:manifest_log;
      clog = Log_auth.create ssd sec ~name:clog_log;
      wal = Log_auth.create ssd sec ~name:(Manifest.wal_name 1);
      wal_id = 1;
      wal_manifest_counter = 0;
      memtable = Memtable.create ~values_in_enclave:cfg.values_in_enclave sec;
      immutables = [];
      levels = Array.make n_levels [||];
      cache =
        (if cfg.read_opt && not cfg.in_memory && cfg.block_cache_bytes > 0 then
           Some (Block_cache.create ~capacity_bytes:cfg.block_cache_bytes)
         else None);
      next_file_id = 1;
      last_alloc_seq = 0;
      visible_seq = 0;
      commit_lock = Sim.Resource.create sim ~capacity:1 "commit";
      group = None;
      clog_group = None;
      prepared = Hashtbl.create 32;
      wal_unresolved = Hashtbl.create 8;
      active_snapshots = Hashtbl.create 64;
      flushing = false;
      compact_queue = Queue.create ();
      compactor_running = false;
      ephemeral_counters = Hashtbl.create 8;
      stats = fresh_stats ();
    }
  in
  if cfg.group_commit then t.group <- Some (mk_group t);
  if cfg.clog_group_commit && not cfg.in_memory then
    t.clog_group <- Some (mk_clog_group t);
  t

let create ?node ssd sec cfg stability =
  let t = create_internal ?node (Ssd.sim ssd) ssd sec cfg stability in
  t.wal_manifest_counter <- manifest_append t (Manifest.New_wal { wal_id = 1 });
  t

(* --- reads ----------------------------------------------------------- *)

let min_active_snapshot t =
  Hashtbl.fold (fun s _ acc -> min s acc) t.active_snapshots t.visible_seq

let active_snapshot_count t =
  Hashtbl.fold (fun _ n acc -> acc + n) t.active_snapshots 0

let retain_snapshot t s =
  Hashtbl.replace t.active_snapshots s
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.active_snapshots s))

let release_snapshot t s =
  match Hashtbl.find_opt t.active_snapshots s with
  | Some 1 -> Hashtbl.remove t.active_snapshots s
  | Some n -> Hashtbl.replace t.active_snapshots s (n - 1)
  | None -> ()

let internal_compare (k1, s1, _) (k2, s2, _) =
  match String.compare k1 k2 with 0 -> compare s2 s1 | c -> c

let lookup_of_sst = function
  | Some (seq, Op.Put v) -> Memtable.Found (seq, v)
  | Some (seq, Op.Delete) -> Memtable.Deleted seq
  | None -> Memtable.Not_found

(* Fence search on a sorted, disjoint level: the one file whose
   [min_key, max_key] span contains [key]. *)
let find_level_file files key =
  let lo = ref 0 and hi = ref (Array.length files - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let lf = files.(mid) in
    if key < lf.meta.Manifest.min_key then hi := mid - 1
    else if key > lf.meta.Manifest.max_key then lo := mid + 1
    else begin
      found := Some lf;
      lo := !hi + 1
    end
  done;
  !found

(* Files of a sorted level overlapping [lo, hi]: binary-search the first
   candidate, then walk while the spans intersect. *)
let level_files_overlapping files ~lo ~hi =
  let n = Array.length files in
  let a = ref 0 and b = ref n in
  while !a < !b do
    let mid = (!a + !b) / 2 in
    if files.(mid).meta.Manifest.max_key < lo then a := mid + 1 else b := mid
  done;
  let acc = ref [] in
  let i = ref !a in
  while !i < n && files.(!i).meta.Manifest.min_key <= hi do
    acc := files.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

(* Fetch one block's decoded entries: through the verified block cache when
   enabled (a hit skips the SSD read, hash check and decryption), reading
   and filling on a miss. The decrypted plaintext is enclave-resident and
   taint-registered: handing it to [Net.send] or a host-memory write is a
   TreatySan violation. *)
let read_block_cached t ?span lf idx =
  let e = enclave t in
  let file_id = lf.meta.Manifest.file_id in
  let sspan =
    if Trace.enabled () then
      Trace.begin_span ?parent:span ~node:t.trace_node ~cat:"storage" "sst.read"
        ~args:[ ("file", Trace.Int file_id); ("block", Trace.Int idx) ]
    else Trace.none
  in
  let finish src entries =
    Trace.end_span sspan ~args:[ ("src", Trace.Str src) ];
    entries
  in
  match t.cache with
  | None ->
      t.stats.sst_block_reads <- t.stats.sst_block_reads + 1;
      finish "ssd" (fst (Sstable.read_block_idx t.ssd t.sec lf.handle idx))
  | Some c -> (
      match Block_cache.find c ~file_id ~block:idx with
      | Some (entries, plain) ->
          t.stats.cache_hits <- t.stats.cache_hits + 1;
          Metrics.incr "engine.cache.hit";
          Enclave.touch_enclave e (String.length plain);
          finish "cache" entries
      | None ->
          t.stats.cache_misses <- t.stats.cache_misses + 1;
          Metrics.incr "engine.cache.miss";
          t.stats.sst_block_reads <- t.stats.sst_block_reads + 1;
          let entries, plain = Sstable.read_block_idx t.ssd t.sec lf.handle idx in
          let bytes = String.length plain in
          Treaty_crypto.Taint.register plain;
          let ev0 = (Block_cache.stats c).Block_cache.evictions in
          let freed =
            Block_cache.insert c ~file_id ~block:idx ~bytes (entries, plain)
          in
          let evicted = (Block_cache.stats c).Block_cache.evictions - ev0 in
          if bytes <= Block_cache.capacity_bytes c then Enclave.alloc_enclave e bytes;
          if freed > 0 then Enclave.free_enclave e freed;
          if evicted > 0 then begin
            t.stats.cache_evictions <- t.stats.cache_evictions + evicted;
            Metrics.incr ~by:evicted "engine.cache.evict"
          end;
          finish "ssd" entries)

(* Point probe of one SSTable: Bloom filter first (read_opt), then the
   fence index, then the one candidate block through the cache. *)
let sst_get t ?span lf ~key ~max_seq =
  Enclave.compute (enclave t) probe_ns;
  if t.config.read_opt && not (Sstable.may_contain lf.handle key) then begin
    t.stats.bloom_negatives <- t.stats.bloom_negatives + 1;
    Metrics.incr "engine.bloom.neg";
    None
  end
  else
    match Sstable.find_block_idx lf.handle key with
    | None ->
        if t.config.read_opt then begin
          t.stats.bloom_false_positives <- t.stats.bloom_false_positives + 1;
          Metrics.incr "engine.bloom.fp"
        end;
        None
    | Some idx ->
        let entries = read_block_cached t ?span lf idx in
        (* A positive Bloom probe is only a hint: the verified block is the
           authority, and "the key is not actually here" is the filter's
           false positive. *)
        if
          t.config.read_opt
          && not (List.exists (fun (k, _, _) -> k = key) entries)
        then begin
          t.stats.bloom_false_positives <- t.stats.bloom_false_positives + 1;
          Metrics.incr "engine.bloom.fp"
        end;
        Sstable.search_entries entries ~key ~max_seq

let rec get_attempt t ?span ~key ~snapshot attempts =
  let e = enclave t in
  Enclave.compute_storage e probe_ns;
  match Memtable.get t.memtable ~key ~max_seq:snapshot with
  | (Memtable.Found _ | Memtable.Deleted _) as r -> r
  | Memtable.Not_found -> (
      let from_immutables =
        List.fold_left
          (fun acc (mt, _) ->
            match acc with
            | Memtable.Not_found ->
                Enclave.compute e probe_ns;
                Memtable.get mt ~key ~max_seq:snapshot
            | found -> found)
          Memtable.Not_found t.immutables
      in
      match from_immutables with
      | (Memtable.Found _ | Memtable.Deleted _) as r -> r
      | Memtable.Not_found -> (
          try
            (* L0 files may overlap: newest first, all candidates. *)
            let l0_hit =
              Array.fold_left
                (fun acc lf ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      if Sstable.overlaps lf.handle ~min:key ~max:key then
                        sst_get t ?span lf ~key ~max_seq:snapshot
                      else None)
                None t.levels.(0)
            in
            match l0_hit with
            | Some _ as hit -> lookup_of_sst hit
            | None ->
                (* Deeper levels are disjoint: fence binary search finds the
                   single candidate file per level. *)
                let deep_hit = ref None in
                let level = ref 1 in
                while !deep_hit = None && !level < n_levels do
                  (match find_level_file t.levels.(!level) key with
                  | Some lf -> deep_hit := sst_get t ?span lf ~key ~max_seq:snapshot
                  | None -> ());
                  incr level
                done;
                lookup_of_sst !deep_hit
          with Invalid_argument _ when attempts > 0 ->
            (* A compaction deleted a file under us between the index lookup
               and the block read; the new version has the data. *)
            get_attempt t ?span ~key ~snapshot (attempts - 1)))

(* Range read of one SSTable through the block cache. *)
let sst_range t ?span lf ~lo ~hi ~max_seq =
  match t.cache with
  | None ->
      t.stats.sst_block_reads <- t.stats.sst_block_reads + 1;
      Sstable.range t.ssd t.sec lf.handle ~lo ~hi ~max_seq
  | Some _ ->
      let n = Sstable.block_count lf.handle in
      let acc = ref [] in
      for idx = n - 1 downto 0 do
        let first, last = Sstable.block_span lf.handle idx in
        if not (last < lo || first > hi) then
          acc :=
            List.filter
              (fun (k, seq, _) -> k >= lo && k <= hi && seq <= max_seq)
              (read_block_cached t ?span lf idx)
            @ !acc
      done;
      !acc

let scan ?span t ~lo ~hi ~snapshot =
  if lo > hi then []
  else begin
    let e = enclave t in
    Enclave.compute_storage e probe_ns;
    let sst_sources =
      List.concat
        (List.init n_levels (fun l ->
             let candidates =
               if l = 0 then
                 Array.to_list t.levels.(0)
                 |> List.filter (fun lf -> Sstable.overlaps lf.handle ~min:lo ~max:hi)
               else level_files_overlapping t.levels.(l) ~lo ~hi
             in
             List.map
               (fun lf -> sst_range t ?span lf ~lo ~hi ~max_seq:snapshot)
               candidates))
    in
    let sources =
      (Memtable.range t.memtable ~lo ~hi ~max_seq:snapshot
      :: List.map (fun (mt, _) -> Memtable.range mt ~lo ~hi ~max_seq:snapshot) t.immutables)
      @ sst_sources
    in
    let merged =
      List.fold_left (fun acc es -> List.merge internal_compare acc es) [] sources
    in
    (* Internal-key order: the first version of each key is the freshest
       visible one. *)
    let rec dedupe acc = function
      | [] -> List.rev acc
      | (key, _, op) :: rest ->
          let rest = List.filter (fun (k, _, _) -> k <> key) rest in
          let acc =
            match op with
            | Op.Put v ->
                Enclave.charge_engine_op ~lsm:(not t.config.in_memory) e
                  ~bytes:(String.length v);
                (key, v) :: acc
            | Op.Delete -> acc
          in
          dedupe acc rest
    in
    dedupe [] merged
  end

let get ?span t ~key ~snapshot =
  t.stats.gets <- t.stats.gets + 1;
  let r = get_attempt t ?span ~key ~snapshot 3 in
  let bytes =
    match r with Memtable.Found (_, v) -> String.length v | _ -> 0
  in
  Enclave.charge_engine_op ~lsm:(not t.config.in_memory) (enclave t) ~bytes;
  r

(* --- flush & compaction ---------------------------------------------- *)

let level_bytes t l =
  Array.fold_left (fun acc lf -> acc + lf.meta.Manifest.size) 0 t.levels.(l)

let level_max_bytes t l =
  let rec pow10 n = if n <= 0 then 1 else 10 * pow10 (n - 1) in
  t.config.level_base_bytes * pow10 (l - 1)

let alloc_file_id t =
  let id = t.next_file_id in
  t.next_file_id <- id + 1;
  id

let meta_of_entries ~file_id ~level ~footer_digest ~size entries =
  let min_key = (fun (k, _, _) -> k) (List.hd entries) in
  let max_key = (fun (k, _, _) -> k) (List.nth entries (List.length entries - 1)) in
  let max_seq = List.fold_left (fun acc (_, s, _) -> max acc s) 0 entries in
  {
    Manifest.file_id;
    level;
    footer_digest;
    footer_version = Sstable.footer_version;
    min_key;
    max_key;
    max_seq;
    size;
  }

(* Keep, per user key: every version newer than the oldest active snapshot,
   plus the newest version at or below it. Tombstones may additionally be
   dropped when the output is the bottommost populated level. *)
let gc_entries ~min_active ~bottommost entries =
  (* Group by key (input is sorted by internal key), then filter within each
     group. *)
  let groups =
    List.fold_left
      (fun acc ((k, _, _) as e) ->
        match acc with
        | (gk, g) :: tl when gk = k -> (gk, e :: g) :: tl
        | _ -> (k, [ e ]) :: acc)
      [] entries
    |> List.rev_map (fun (k, g) -> (k, List.rev g))
  in
  (* [groups] is in key-ascending order with each group's versions in
     seq-descending order — already the internal-key order the output must
     preserve (a descending-seq violation would make lookups return stale
     versions). *)
  List.concat_map
    (fun (_, versions) ->
      let newer, older = List.partition (fun (_, s, _) -> s > min_active) versions in
      let kept = newer @ (match older with [] -> [] | newest_old :: _ -> [ newest_old ]) in
      match kept with
      | [ (_, _, Op.Delete) ] when bottommost && newer = [] -> []
      | kept -> kept)
    groups

let build_files t ~level entries =
  (* Split into files of roughly [file_bytes], never splitting a user key. *)
  let files = ref [] and cur = ref [] and cur_bytes = ref 0 in
  let flush_cur () =
    if !cur <> [] then begin
      files := List.rev !cur :: !files;
      cur := [];
      cur_bytes := 0
    end
  in
  List.iter
    (fun ((key, _, op) as e) ->
      let sz = String.length key + 16 + Op.size op in
      let same_key = match !cur with (k, _, _) :: _ -> k = key | [] -> false in
      if !cur_bytes + sz > t.config.file_bytes && !cur <> [] && not same_key then
        flush_cur ();
      cur := e :: !cur;
      cur_bytes := !cur_bytes + sz)
    entries;
  flush_cur ();
  List.rev_map
    (fun file_entries ->
      let file_id = alloc_file_id t in
      let handle, footer_digest =
        Sstable.build t.ssd t.sec ~file_id ~block_bytes:t.config.block_bytes
          file_entries
      in
      let meta =
        meta_of_entries ~file_id ~level ~footer_digest
          ~size:(Sstable.data_bytes handle) file_entries
      in
      { meta; handle })
    !files
  |> List.rev

let bottommost_below t l =
  let rec check i = i >= n_levels || (Array.length t.levels.(i) = 0 && check (i + 1)) in
  check (l + 1)

(* The level the size/count triggers want compacted next, if any. *)
let compaction_target t =
  if Array.length t.levels.(0) >= t.config.l0_trigger then Some 0
  else
    let rec find l =
      if l >= n_levels - 1 then None
      else if level_bytes t l > level_max_bytes t l then Some l
      else find (l + 1)
    in
    find 1

(* Drop a dead input file from the verified read path: its cache entries
   and its enclave-resident Bloom filter. Runs at level-swap time, before
   the deferred SSD delete — a reader that raced the swap and already holds
   the old handle either reads the still-present file (and at worst
   re-inserts a stale, never-hit cache entry under the dead file id, which
   LRU eviction reclaims) or hits the deleted file and retries. *)
let forget_file t lf =
  (match t.cache with
  | Some c ->
      let freed = Block_cache.invalidate_file c ~file_id:lf.meta.Manifest.file_id in
      if freed > 0 then Enclave.free_enclave (enclave t) freed
  | None -> ());
  Sstable.release t.sec lf.handle

let compact t l =
  t.stats.compactions <- t.stats.compactions + 1;
  let srcs = Array.to_list t.levels.(l) in
  if srcs = [] then ()
  else begin
    let min_key =
      List.fold_left (fun acc lf -> min acc lf.meta.Manifest.min_key)
        (List.hd srcs).meta.Manifest.min_key srcs
    and max_key =
      List.fold_left (fun acc lf -> max acc lf.meta.Manifest.max_key)
        (List.hd srcs).meta.Manifest.max_key srcs
    in
    let overlapping, disjoint =
      List.partition
        (fun lf -> Sstable.overlaps lf.handle ~min:min_key ~max:max_key)
        (Array.to_list t.levels.(l + 1))
    in
    let inputs = srcs @ overlapping in
    let entries =
      List.map (fun lf -> Sstable.load_all t.ssd t.sec lf.handle) inputs
      |> List.fold_left (fun acc es -> List.merge internal_compare acc es) []
      |> List.sort_uniq internal_compare
    in
    let entries =
      gc_entries ~min_active:(min_active_snapshot t)
        ~bottommost:(bottommost_below t (l + 1))
        entries
    in
    let outputs = if entries = [] then [] else build_files t ~level:(l + 1) entries in
    (* Record the whole compaction in the MANIFEST, then swap levels. *)
    List.iter (fun lf -> ignore (manifest_append t (Manifest.Add_file lf.meta))) outputs;
    let last_edit =
      List.fold_left
        (fun _ lf ->
          manifest_append t
            (Manifest.Delete_file
               { level = lf.meta.Manifest.level; file_id = lf.meta.Manifest.file_id }))
        0 inputs
    in
    (* A flush may have added new L0 files while this compaction ran: remove
       only the inputs. *)
    t.levels.(l) <-
      Array.of_list
        (List.filter
           (fun lf -> not (List.memq lf srcs))
           (Array.to_list t.levels.(l)));
    t.levels.(l + 1) <-
      Array.of_list
        (List.sort
           (fun a b -> compare a.meta.Manifest.min_key b.meta.Manifest.min_key)
           (disjoint @ outputs));
    List.iter (forget_file t) inputs;
    (* Defer deleting inputs until the MANIFEST records are stable (§VI). *)
    let names = List.map (fun lf -> Sstable.file_name ~file_id:lf.meta.Manifest.file_id) inputs in
    Sim.spawn t.sim (fun () ->
        match t.stability.wait_stable ~log:manifest_log ~counter:last_edit with
        | Ok () -> List.iter (Ssd.delete t.ssd) names
        | Error `Stability_timeout ->
            (* Stabilization unavailable: keep the inputs — recovery from the
               stale MANIFEST prefix still finds them. Only space is lost. *)
            ())
  end

(* --- background compaction scheduler ---------------------------------- *)

let queue_gauge t =
  Metrics.set_gauge "engine.compact.queue_depth" (Queue.length t.compact_queue)

let run_compactor t =
  while not (Queue.is_empty t.compact_queue) do
    let req = Queue.pop t.compact_queue in
    queue_gauge t;
    match req with
    | Demand ->
        let rec drain () =
          match compaction_target t with
          | None -> ()
          | Some l ->
              compact t l;
              drain ()
        in
        drain ()
    | Full ->
        for l = 0 to n_levels - 2 do
          if Array.length t.levels.(l) > 0 then compact t l
        done
  done

(* Single guarded entry point for all compaction (the old code duplicated a
   [compacting] flag dance between maybe_compact and compact_now). Work is
   enqueued; one compactor fiber is spawned on demand and exits when the
   queue drains — spawn-on-demand rather than a perpetually parked fiber,
   which the TreatySan starvation watchdog would flag. *)
let request_compaction t req =
  Queue.push req t.compact_queue;
  queue_gauge t;
  if not t.compactor_running then begin
    t.compactor_running <- true;
    Sim.spawn t.sim (fun () ->
        Fun.protect
          ~finally:(fun () -> t.compactor_running <- false)
          (fun () -> run_compactor t))
  end

let maybe_compact t =
  if compaction_target t <> None then request_compaction t Demand

let compaction_idle t = Queue.is_empty t.compact_queue && not t.compactor_running

let wal_unresolved_count t wal_id =
  match Hashtbl.find_opt t.wal_unresolved wal_id with
  | Some r -> !r
  | None -> 0

let flush_oldest_immutable t =
  match List.rev t.immutables with
  | [] -> ()
  | (mt, old_wal_id) :: _ ->
      t.stats.flushes <- t.stats.flushes + 1;
      let entries = Memtable.to_sorted mt in
      let last_edit = ref 0 in
      if entries <> [] then begin
        let file_id = alloc_file_id t in
        let handle, footer_digest =
          Sstable.build t.ssd t.sec ~file_id ~block_bytes:t.config.block_bytes entries
        in
        let meta =
          meta_of_entries ~file_id ~level:0 ~footer_digest
            ~size:(Sstable.data_bytes handle) entries
        in
        last_edit := manifest_append t (Manifest.Add_file meta);
        t.levels.(0) <- Array.append [| { meta; handle } |] t.levels.(0)
      end;
      (* The WAL can only retire when its prepared txs are all resolved. *)
      while wal_unresolved_count t old_wal_id > 0 do
        Sim.sleep t.sim 200_000
      done;
      last_edit := manifest_append t (Manifest.Obsolete_wal { wal_id = old_wal_id });
      t.immutables <-
        List.filter (fun (_, wid) -> wid <> old_wal_id) t.immutables;
      let edit = !last_edit in
      Sim.spawn t.sim (fun () ->
          (match t.stability.wait_stable ~log:manifest_log ~counter:edit with
          | Ok () -> Ssd.delete t.ssd (Manifest.wal_name old_wal_id)
          | Error `Stability_timeout ->
              (* Keep the WAL: if the Obsolete_wal edit never stabilizes,
                 recovery replays it — duplicate-but-idempotent, not lost. *)
              ());
          Memtable.release mt);
      (* Off the foreground path: the flush fiber only enqueues compaction
         work; the compactor fiber does the merging, so group commit never
         stalls behind a level merge. *)
      maybe_compact t

let rotate_memtable t =
  let old_mt = t.memtable and old_wal_id = t.wal_id in
  let new_id = old_wal_id + 1 in
  t.wal_manifest_counter <- manifest_append t (Manifest.New_wal { wal_id = new_id });
  t.wal <- Log_auth.create t.ssd t.sec ~name:(Manifest.wal_name new_id);
  t.wal_id <- new_id;
  t.memtable <- Memtable.create ~values_in_enclave:t.config.values_in_enclave t.sec;
  t.immutables <- (old_mt, old_wal_id) :: t.immutables

let maybe_flush t =
  if
    (not t.config.in_memory)
    && Memtable.approx_bytes t.memtable > t.config.memtable_max_bytes
    && List.length t.immutables < 4
  then begin
    rotate_memtable t;
    if not t.flushing then begin
      t.flushing <- true;
      Sim.spawn t.sim (fun () ->
          Fun.protect ~finally:(fun () -> t.flushing <- false) (fun () ->
              while t.immutables <> [] do
                flush_oldest_immutable t
              done))
    end
  end

let flush_now t =
  if Memtable.entries t.memtable > 0 then rotate_memtable t;
  while t.immutables <> [] do
    flush_oldest_immutable t
  done

let compact_now t =
  request_compaction t Full;
  (* Deterministic drain: park until the compactor fiber has consumed the
     queue (same polling idiom as the WAL-retirement wait). *)
  while not (compaction_idle t) do
    Sim.sleep t.sim 50_000
  done

let level_files t l = Array.length t.levels.(l)
let memtable_handle t = t.memtable

let cache_usage t =
  Option.map (fun c -> (Block_cache.used_bytes c, Block_cache.capacity_bytes c)) t.cache

(* --- writes ----------------------------------------------------------- *)

(* Rollback protection for an acknowledged entry in the current WAL: both
   the WAL entry and the MANIFEST edit registering the WAL must be stable,
   or trusted-prefix recovery would drop the WAL altogether. Raises
   [Stability_timeout] when the counter group is unreachable — the entry is
   durable locally but NOT rollback-protected, so the caller must not ack. *)
let wait_wal_entry_stable t ?span ~counter () =
  if not t.config.in_memory then begin
    let wspan =
      if Trace.enabled () then
        Trace.begin_span ?parent:span ~node:t.trace_node ~cat:"storage"
          "stab.wait"
          ~args:[ ("counter", Trace.Int counter) ]
      else Trace.none
    in
    let t0 = Sim.now t.sim in
    let finish status =
      Trace.end_span wspan ~args:[ ("status", Trace.Str status) ];
      Metrics.observe "stab.wait_ns" (Sim.now t.sim - t0)
    in
    let check = function
      | Ok () -> ()
      | Error `Stability_timeout ->
          finish "timeout";
          raise Stability_timeout
    in
    check (t.stability.wait_stable ~log:(Log_auth.name t.wal) ~counter);
    check
      (t.stability.wait_stable ~log:manifest_log
         ~counter:t.wal_manifest_counter);
    finish "ok"
  end

let apply_writes t ~seq writes =
  List.iter
    (fun (key, op) ->
      Enclave.charge_engine_op ~lsm:(not t.config.in_memory) (enclave t)
        ~bytes:(Op.size op);
      Memtable.add t.memtable ~key ~seq op)
    writes

let commit t ?span ~writes () =
  t.stats.commits <- t.stats.commits + 1;
  let counter, seq =
    match t.group with
    | Some group ->
        let item = { cwrites = writes; cseq = 0 } in
        let counter = Group_commit.submit group ?span item in
        (counter, item.cseq)
    | None ->
        Sim.Resource.acquire t.commit_lock;
        Fun.protect ~finally:(fun () -> Sim.Resource.release t.commit_lock)
        @@ fun () ->
        let seq = next_seq t in
        let counter =
          wal_append t ?span (Wal_record.Commit_batch [ (seq, writes) ])
        in
        apply_writes t ~seq writes;
        t.visible_seq <- t.last_alloc_seq;
        (counter, seq)
  in
  if t.config.wait_commit_stable then wait_wal_entry_stable t ?span ~counter ();
  maybe_flush t;
  seq

let prepare t ?span ~tx ~writes () =
  t.stats.prepares <- t.stats.prepares + 1;
  Sim.Resource.acquire t.commit_lock;
  let counter, wal_id =
    Fun.protect ~finally:(fun () -> Sim.Resource.release t.commit_lock)
    @@ fun () ->
    let counter = wal_append t ?span (Wal_record.Prepare (tx, writes)) in
    Hashtbl.replace t.prepared tx (writes, t.wal_id);
    (match Hashtbl.find_opt t.wal_unresolved t.wal_id with
    | Some r -> incr r
    | None -> Hashtbl.replace t.wal_unresolved t.wal_id (ref 1));
    (counter, t.wal_id)
  in
  ignore wal_id;
  (* §V: participants only reply once the prepare entry is stabilized. *)
  wait_wal_entry_stable t ?span ~counter ()

let resolve t ~tx ~commit =
  match Hashtbl.find_opt t.prepared tx with
  | None -> None
  | Some (writes, prep_wal_id) ->
      Hashtbl.remove t.prepared tx;
      (match Hashtbl.find_opt t.wal_unresolved prep_wal_id with
      | Some r -> decr r
      | None -> ());
      Sim.Resource.acquire t.commit_lock;
      let seq =
        Fun.protect ~finally:(fun () -> Sim.Resource.release t.commit_lock)
        @@ fun () ->
        if commit then begin
          let seq = next_seq t in
          ignore (wal_append t (Wal_record.Resolve (tx, Some seq)));
          apply_writes t ~seq writes;
          t.visible_seq <- t.last_alloc_seq;
          Some seq
        end
        else begin
          ignore (wal_append t (Wal_record.Resolve (tx, None)));
          None
        end
      in
      maybe_flush t;
      seq

let prepared_txs t = Hashtbl.fold (fun tx _ acc -> tx :: acc) t.prepared []

let key_prepared t ~key =
  Hashtbl.fold
    (fun _ (writes, _) acc ->
      acc || List.exists (fun (k, _) -> String.equal k key) writes)
    t.prepared false

(* --- Clog ------------------------------------------------------------- *)

let clog_append t ?span record =
  t.stats.clog_appends <- t.stats.clog_appends + 1;
  if t.config.in_memory then ephemeral_counter t clog_log
  else
    match t.clog_group with
    | Some group -> Group_commit.submit group ?span record
    | None ->
        let c = Log_auth.append t.clog (Clog_record.encode record) in
        t.stability.submit
          ~span:(Option.value span ~default:Trace.none)
          ~log:clog_log ~counter:c;
        c

let clog_wait_stable t ?span ~counter () =
  let wspan =
    if Trace.enabled () then
      Trace.begin_span ?parent:span ~node:t.trace_node ~cat:"storage"
        "stab.wait"
        ~args:[ ("log", Trace.Str clog_log); ("counter", Trace.Int counter) ]
    else Trace.none
  in
  let t0 = Sim.now t.sim in
  let r = t.stability.wait_stable ~log:clog_log ~counter in
  Trace.end_span wspan
    ~args:
      [ ( "status",
          Trace.Str (match r with Ok () -> "ok" | Error _ -> "timeout") ) ];
  Metrics.observe "stab.wait_ns" (Sim.now t.sim - t0);
  r

let wal_group_stats t = Option.map Group_commit.stats t.group
let clog_group_stats t = Option.map Group_commit.stats t.clog_group

let clog_trim t ~upto = ignore (manifest_append t (Manifest.Clog_trim { upto }))

let log_last_counters t =
  [
    (manifest_log, Log_auth.last_counter t.manifest);
    (clog_log, Log_auth.last_counter t.clog);
    (Log_auth.name t.wal, Log_auth.last_counter t.wal);
  ]

(* --- recovery --------------------------------------------------------- *)

let recover ?node ssd sec cfg stability ~trusted =
  let sim = Ssd.sim ssd in
  let t = create_internal ?node sim ssd sec cfg stability in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let replay_log log =
    Log_auth.replay log ?trusted:(trusted (Log_auth.name log)) ()
  in
  match replay_log t.manifest with
  | Error e -> fail "MANIFEST: %s" (Format.asprintf "%a" Log_auth.pp_replay_error e)
  | Ok (manifest_entries, _manifest_dropped) -> (
      match
        try Ok (Manifest.replay_edits manifest_entries)
        with Treaty_util.Wire.Malformed m -> Error m
      with
      | Error m -> fail "MANIFEST: %s" m
      | Ok (version, _edits) -> (
          (* Reopen the SSTable hierarchy, verifying footer digests. *)
          match
            try
              Ok
                (Array.iteri
                   (fun l metas ->
                     t.levels.(l) <-
                       Array.of_list
                         (List.map
                            (fun (m : Manifest.file_meta) ->
                              {
                                meta = m;
                                handle =
                                  Sstable.open_ ~version:m.footer_version ssd sec
                                    ~file_id:m.file_id
                                    ~footer_digest:m.footer_digest;
                              })
                            metas))
                   version.Manifest.levels)
            with Sec.Integrity_violation m -> Error m
          with
          | Error m -> fail "SSTable: %s" m
          | Ok () -> (
              t.next_file_id <-
                1
                + Array.fold_left
                    (Array.fold_left (fun acc lf -> max acc lf.meta.Manifest.file_id))
                    0 t.levels;
              t.last_alloc_seq <-
                Array.fold_left
                  (Array.fold_left (fun acc lf -> max acc lf.meta.Manifest.max_seq))
                  0 t.levels;
              (* Replay live WALs, oldest first, into the fresh MemTable. *)
              let wal_dropped = ref 0 in
              let prepared : (Wal_record.txid, (string * Op.t) list) Hashtbl.t =
                Hashtbl.create 16
              in
              let replay_wal_record = function
                | Wal_record.Commit_batch txs ->
                    List.iter
                      (fun (seq, writes) ->
                        t.last_alloc_seq <- max t.last_alloc_seq seq;
                        List.iter
                          (fun (key, op) -> Memtable.add t.memtable ~key ~seq op)
                          writes)
                      txs
                | Wal_record.Prepare (tx, writes) -> Hashtbl.replace prepared tx writes
                | Wal_record.Resolve (tx, outcome) -> (
                    (match Hashtbl.find_opt prepared tx with
                    | Some writes ->
                        Hashtbl.remove prepared tx;
                        (match outcome with
                        | Some seq ->
                            t.last_alloc_seq <- max t.last_alloc_seq seq;
                            List.iter
                              (fun (key, op) -> Memtable.add t.memtable ~key ~seq op)
                              writes
                        | None -> ())
                    | None -> ()))
              in
              let wal_error = ref None in
              List.iter
                (fun wal_id ->
                  if !wal_error = None then begin
                    let wal =
                      Log_auth.create ssd sec ~name:(Manifest.wal_name wal_id)
                    in
                    match replay_log wal with
                    | Error e ->
                        wal_error :=
                          Some
                            (Printf.sprintf "%s: %s" (Manifest.wal_name wal_id)
                               (Format.asprintf "%a" Log_auth.pp_replay_error e))
                    | Ok (entries, dropped) ->
                        wal_dropped := !wal_dropped + dropped;
                        List.iter
                          (fun (_, payload) ->
                            replay_wal_record (Wal_record.decode payload))
                          entries
                  end)
                version.Manifest.live_wals;
              match !wal_error with
              | Some m -> fail "WAL: %s" m
              | None -> (
                  (* Version seqs allocated just before the crash may sit in
                     the WAL's unstable tail and not replay, yet they were
                     already visible to readers (Treaty acks a distributed
                     commit without waiting for the local Resolve entry to
                     stabilize — the stable Clog decision re-drives it).
                     Jump the allocator past that lost suffix so a
                     re-resolved prepare never reuses a seq an earlier
                     reader observed; same gap idiom as the coordinator's
                     tx-seq recovery. *)
                  t.last_alloc_seq <- t.last_alloc_seq + 1_000_000;
                  t.visible_seq <- t.last_alloc_seq;
                  (* Replay the Clog (coordinator 2PC state). *)
                  match replay_log t.clog with
                  | Error e ->
                      fail "CLOG: %s" (Format.asprintf "%a" Log_auth.pp_replay_error e)
                  | Ok (clog_entries, clog_dropped) ->
                      let clog_records =
                        List.concat_map
                          (fun (c, payload) ->
                            if c <= version.Manifest.clog_trim then []
                            else
                              (* A group-committed window shares one counter:
                                 every record it carries replays with the
                                 batch's counter value. *)
                              List.map
                                (fun r -> (c, r))
                                (Clog_record.flatten (Clog_record.decode payload)))
                          clog_entries
                      in
                      (* Consolidate: flush replayed state, retire all old
                         WALs, re-log surviving prepares into a fresh WAL. *)
                      if Memtable.entries t.memtable > 0 then begin
                        let entries = Memtable.to_sorted t.memtable in
                        let file_id = alloc_file_id t in
                        let handle, footer_digest =
                          Sstable.build ssd sec ~file_id
                            ~block_bytes:cfg.block_bytes entries
                        in
                        let meta =
                          meta_of_entries ~file_id ~level:0 ~footer_digest
                            ~size:(Sstable.data_bytes handle) entries
                        in
                        ignore (manifest_append t (Manifest.Add_file meta));
                        t.levels.(0) <- Array.append [| { meta; handle } |] t.levels.(0);
                        Memtable.release t.memtable;
                        t.memtable <-
                          Memtable.create ~values_in_enclave:cfg.values_in_enclave sec
                      end;
                      let new_wal_id =
                        1 + List.fold_left max 0 version.Manifest.live_wals
                      in
                      t.wal_manifest_counter <-
                        manifest_append t (Manifest.New_wal { wal_id = new_wal_id });
                      t.wal <-
                        Log_auth.create ssd sec ~name:(Manifest.wal_name new_wal_id);
                      t.wal_id <- new_wal_id;
                      List.iter
                        (fun wal_id ->
                          ignore
                            (manifest_append t (Manifest.Obsolete_wal { wal_id }));
                          Ssd.delete ssd (Manifest.wal_name wal_id))
                        version.Manifest.live_wals;
                      let prepared_list =
                        Hashtbl.fold (fun tx writes acc -> (tx, writes) :: acc) prepared []
                      in
                      List.iter
                        (fun (tx, writes) ->
                          ignore (wal_append t (Wal_record.Prepare (tx, writes)));
                          Hashtbl.replace t.prepared tx (writes, t.wal_id);
                          match Hashtbl.find_opt t.wal_unresolved t.wal_id with
                          | Some r -> incr r
                          | None -> Hashtbl.replace t.wal_unresolved t.wal_id (ref 1))
                        prepared_list;
                      Ok
                        ( t,
                          {
                            prepared = prepared_list;
                            clog_records;
                            wal_entries_dropped = !wal_dropped;
                            clog_entries_dropped = clog_dropped;
                          } )))))
