module Enclave = Treaty_tee.Enclave

type value_ref = {
  slot : int;
  stored_len : int;
  vhash : string;
  tombstone : bool;
}

type lookup = Found of int * string | Deleted of int | Not_found

type t = {
  sec : Sec.t;
  sl : value_ref Skiplist.t;
  host : Buffer.t;
  values_in_enclave : bool;
  mutable enclave_bytes : int;
  mutable host_bytes : int;
  mutable released : bool;
}

(* Per-entry enclave footprint: key bytes + seq + value pointer + hash. *)
let entry_overhead key = String.length key + 8 + 16 + 32

let create ?(values_in_enclave = false) sec =
  {
    sec;
    sl = Skiplist.create ();
    host = Buffer.create 4096;
    values_in_enclave;
    enclave_bytes = 0;
    host_bytes = 0;
    released = false;
  }

let charge_alloc t ~enclave_part ~value_part =
  let e = Sec.enclave t.sec in
  t.enclave_bytes <- t.enclave_bytes + enclave_part;
  Enclave.alloc_enclave e enclave_part;
  if t.values_in_enclave then begin
    t.enclave_bytes <- t.enclave_bytes + value_part;
    Enclave.alloc_enclave e value_part
  end
  else begin
    t.host_bytes <- t.host_bytes + value_part;
    Enclave.alloc_host e value_part
  end

let add t ~key ~seq op =
  let plain = match op with Op.Put v -> v | Op.Delete -> "" in
  let tombstone = op = Op.Delete in
  (* Values headed for untrusted host memory are protected; in the
     all-in-enclave ablation they stay plaintext inside the EPC. *)
  let stored = if t.values_in_enclave then plain else Sec.protect t.sec plain in
  (* TreatySan boundary: in the default layout this buffer lands in
     untrusted host memory (in the all-in-enclave ablation it stays in the
     EPC, so plaintext there is fine). *)
  if not t.values_in_enclave then
    Treaty_crypto.Taint.check ~what:"memtable host write" stored;
  let vhash = Sec.digest t.sec stored in
  let slot = Buffer.length t.host in
  Buffer.add_string t.host stored;
  charge_alloc t ~enclave_part:(entry_overhead key) ~value_part:(String.length stored);
  Skiplist.insert t.sl ~key ~seq
    { slot; stored_len = String.length stored; vhash; tombstone }

let fetch t vref =
  let stored = Buffer.sub t.host vref.slot vref.stored_len in
  Sec.check_digest t.sec ~what:"memtable value" ~data:stored ~expected:vref.vhash;
  if t.values_in_enclave then stored else Sec.unprotect t.sec stored

let get t ~key ~max_seq =
  match Skiplist.find t.sl ~key ~max_seq with
  | None -> Not_found
  | Some (seq, vref) ->
      if vref.tombstone then Deleted seq else Found (seq, fetch t vref)

let entries t = Skiplist.length t.sl
let approx_bytes t = t.enclave_bytes + t.host_bytes

let to_sorted t =
  Skiplist.fold t.sl ~init:[] ~f:(fun acc ~key ~seq vref ->
      let op = if vref.tombstone then Op.Delete else Op.Put (fetch t vref) in
      (key, seq, op) :: acc)
  |> List.rev

let range t ~lo ~hi ~max_seq =
  Skiplist.fold_range t.sl ~lo ~hi ~init:[] ~f:(fun acc ~key ~seq vref ->
      if seq > max_seq then acc
      else
        let op = if vref.tombstone then Op.Delete else Op.Put (fetch t vref) in
        (key, seq, op) :: acc)
  |> List.rev

let release t =
  if not t.released then begin
    t.released <- true;
    let e = Sec.enclave t.sec in
    Enclave.free_enclave e t.enclave_bytes;
    Enclave.free_host e t.host_bytes
  end

let host_tamper t =
  if Buffer.length t.host > 0 then begin
    let contents = Bytes.of_string (Buffer.contents t.host) in
    let i = Bytes.length contents / 2 in
    Bytes.set contents i (Char.chr (Char.code (Bytes.get contents i) lxor 0x01));
    Buffer.clear t.host;
    Buffer.add_bytes t.host contents
  end
