(** Skip list over internal keys [(user_key, seq)].

    The MemTable's core structure (§VII-B: "a MemTable skip list that
    supports parallel updates for concurrent Tx processing"; in the
    single-scheduler simulation, concurrency shows up as interleaved fiber
    updates). Internal ordering is RocksDB's: user key ascending, sequence
    number *descending*, so the freshest version of a key is encountered
    first when seeking. *)

type 'a t

val create : ?seed:int64 -> unit -> 'a t
val length : 'a t -> int

val insert : 'a t -> key:string -> seq:int -> 'a -> unit
(** Insert a version. Duplicate (key, seq) pairs replace the payload. *)

val find : 'a t -> key:string -> max_seq:int -> (int * 'a) option
(** Freshest version of [key] with [seq <= max_seq], as [(seq, payload)]. *)

val fold : 'a t -> init:'b -> f:('b -> key:string -> seq:int -> 'a -> 'b) -> 'b
(** In internal-key order (key asc, seq desc). *)

val fold_range :
  'a t -> lo:string -> hi:string -> init:'b -> f:('b -> key:string -> seq:int -> 'a -> 'b) -> 'b
(** Fold over entries with [lo <= key <= hi], in internal-key order. *)

val iter : 'a t -> (key:string -> seq:int -> 'a -> unit) -> unit

val min_key : 'a t -> string option
val max_key : 'a t -> string option
