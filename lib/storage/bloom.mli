(** Deterministic Bloom filter over an SSTable's user keys (§VII-B read
    path).

    Built at [Sstable.build]/compaction time, persisted in the (v2) footer
    — and therefore covered by the footer digest recorded in the MANIFEST,
    so a tampered filter is caught at [open_] like any other footer byte —
    and held in enclave memory, where a negative probe lets a point lookup
    skip the block read, hash check and decryption entirely.

    ~10 bits and 7 probes per key (~1% false positives). Hashing is two
    fixed FNV-1a streams: no randomized or address-dependent state, so the
    filter is a pure function of the key set (determinism contract). *)

type t

val create : expected:int -> t
(** Sized for [expected] distinct keys. *)

val add : t -> string -> unit

val mem : t -> string -> bool
(** No false negatives; false positives at the configured rate. A positive
    answer is only a hint — the caller must still verify against the
    authenticated block. *)

val bytes : t -> int
(** Filter size (enclave-residency accounting). *)

val encode : Buffer.t -> t -> unit

val decode : Treaty_util.Wire.reader -> t
(** Raises {!Treaty_util.Wire.Malformed} on corrupt input. *)
