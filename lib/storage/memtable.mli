(** Treaty's MemTable (§V-B, §VII-D).

    SPEICHER's design, adapted: the skip list of keys — with each key's
    version number, a pointer to its value and the value's secure hash —
    stays inside the enclave, while the (encrypted) values live in untrusted
    host memory. Reading a value fetches it from host memory, decrypts it
    and checks it against the in-enclave hash, so host-memory tampering is
    detected. The ablation flag [values_in_enclave] instead keeps values in
    the EPC (no encryption needed, but paging pressure) — the design the
    paper rejects.

    Enclave/host byte accounting flows into {!Treaty_tee.Enclave}, which is
    what makes large MemTables cause simulated EPC paging. *)

type t

type lookup = Found of int * string  (** (seq, value) *) | Deleted of int | Not_found

val create : ?values_in_enclave:bool -> Sec.t -> t

val add : t -> key:string -> seq:int -> Op.t -> unit
(** Insert a version; charges value protection (hash + encryption). *)

val get : t -> key:string -> max_seq:int -> lookup
(** Freshest version visible at [max_seq]. Charges fetch + integrity check;
    raises {!Sec.Integrity_violation} if host memory was tampered with. *)

val entries : t -> int
val approx_bytes : t -> int
(** Enclave + host bytes held — the flush trigger. *)

val to_sorted : t -> (string * int * Op.t) list
(** Decrypt/verify everything, in internal-key order — the flush path. *)

val range : t -> lo:string -> hi:string -> max_seq:int -> (string * int * Op.t) list
(** All versions with [lo <= key <= hi] and [seq <= max_seq], decrypted and
    verified, in internal-key order. *)

val release : t -> unit
(** Return the memory accounting to the enclave (after a flush). *)

val host_tamper : t -> unit
(** Adversary hook (tests): flip a byte of the host-memory value region. *)
