module Wire = Treaty_util.Wire

type t = { bits : Bytes.t; nbits : int; k : int }

let bits_per_key = 10
let k_hashes = 7

(* Two independent FNV-1a streams (different offset bases) drive the
   standard double-hashing scheme g_i = h1 + i*h2. No [Hashtbl.hash], no
   randomness: filters are a pure function of the key set, which the
   determinism contract (same seed => byte-identical traces) requires. *)
(* Masked to 32 bits so [h1 + i*h2] can never overflow into a negative
   (and thus out-of-range) bit index. *)
let fnv1a ~basis s =
  let h = ref basis in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

let h1 = fnv1a ~basis:0x811c9dc5
let h2 s = fnv1a ~basis:0x01234567 s lor 1 (* odd stride *)

let create ~expected =
  let expected = max expected 1 in
  let nbits = max 64 (expected * bits_per_key) in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k = k_hashes }

let set_bit b i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor mask))

let get_bit b i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Char.code (Bytes.get b byte) land mask <> 0

let add t key =
  let a = h1 key and b = h2 key in
  for i = 0 to t.k - 1 do
    set_bit t.bits ((a + (i * b)) mod t.nbits)
  done

let mem t key =
  let a = h1 key and b = h2 key in
  let rec go i = i >= t.k || (get_bit t.bits ((a + (i * b)) mod t.nbits) && go (i + 1)) in
  go 0

let bytes t = Bytes.length t.bits

let encode b t =
  Wire.w32 b t.nbits;
  Wire.w32 b t.k;
  Wire.wstr b (Bytes.to_string t.bits)

let decode r =
  let nbits = Wire.r32 r in
  let k = Wire.r32 r in
  let raw = Wire.rstr r in
  if nbits <= 0 || k <= 0 || k > 32 || String.length raw <> (nbits + 7) / 8 then
    raise (Wire.Malformed "bloom: bad dimensions");
  { bits = Bytes.of_string raw; nbits; k }
