let max_level = 16

type 'a node = {
  nkey : string;
  nseq : int;
  mutable payload : 'a option;  (* None only for the head sentinel *)
  forward : 'a node option array;
}

type 'a t = {
  head : 'a node;
  rng : Treaty_sim.Rng.t;
  mutable level : int;
  mutable count : int;
}

let create ?(seed = 0x5EEDL) () =
  {
    head = { nkey = ""; nseq = max_int; payload = None; forward = Array.make max_level None };
    rng = Treaty_sim.Rng.create seed;
    level = 1;
    count = 0;
  }

let length t = t.count

(* Internal key order: key ascending, then seq DESCENDING. *)
let before ~key ~seq node =
  let c = String.compare node.nkey key in
  c < 0 || (c = 0 && node.nseq > seq)

let random_level t =
  let rec go l = if l < max_level && Treaty_sim.Rng.int t.rng 4 = 0 then go (l + 1) else l in
  go 1

let find_predecessors t ~key ~seq update =
  let x = ref t.head in
  for i = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some next when before ~key ~seq next -> x := next
      | Some _ | None -> continue := false
    done;
    update.(i) <- !x
  done;
  !x

let insert t ~key ~seq payload =
  let update = Array.make max_level t.head in
  let pred = find_predecessors t ~key ~seq update in
  match pred.forward.(0) with
  | Some next when next.nkey = key && next.nseq = seq -> next.payload <- Some payload
  | _ ->
      let lvl = random_level t in
      if lvl > t.level then begin
        for i = t.level to lvl - 1 do
          update.(i) <- t.head
        done;
        t.level <- lvl
      end;
      let node = { nkey = key; nseq = seq; payload = Some payload; forward = Array.make lvl None } in
      for i = 0 to lvl - 1 do
        node.forward.(i) <- update.(i).forward.(i);
        update.(i).forward.(i) <- Some node
      done;
      t.count <- t.count + 1

let find t ~key ~max_seq =
  let update = Array.make max_level t.head in
  (* Seek to the first node with (nkey, nseq) >= (key, max_seq) in internal
     order, i.e. nkey = key with nseq <= max_seq, or nkey > key. *)
  let pred = find_predecessors t ~key ~seq:max_seq update in
  match pred.forward.(0) with
  | Some node when node.nkey = key && node.nseq <= max_seq -> (
      match node.payload with Some p -> Some (node.nseq, p) | None -> None)
  | Some _ | None -> None

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> (
        match node.payload with
        | Some p -> go (f acc ~key:node.nkey ~seq:node.nseq p) node.forward.(0)
        | None -> go acc node.forward.(0))
  in
  go init t.head.forward.(0)

let iter t f = fold t ~init:() ~f:(fun () ~key ~seq p -> f ~key ~seq p)

let fold_range t ~lo ~hi ~init ~f =
  (* Seek to the first node with key >= lo (any seq), then walk. *)
  let update = Array.make max_level t.head in
  let pred = find_predecessors t ~key:lo ~seq:max_int update in
  let rec go acc = function
    | Some node when node.nkey <= hi ->
        let acc =
          match node.payload with
          | Some p -> f acc ~key:node.nkey ~seq:node.nseq p
          | None -> acc
        in
        go acc node.forward.(0)
    | Some _ | None -> acc
  in
  go init pred.forward.(0)

let min_key t =
  match t.head.forward.(0) with Some n -> Some n.nkey | None -> None

let max_key t =
  let x = ref t.head in
  for i = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some next -> x := next
      | None -> continue := false
    done
  done;
  if !x == t.head then None else Some !x.nkey
