(** Group commit (§VII-B).

    "Each group elects a leader that merges their and all followers' Txs
    buffers into a larger buffer. The leader then writes this buffer into
    WAL and MemTable. We further defer logging (yield) at commit, allowing
    us to format group commits of bigger data blocks."

    The first committer of a quiet period becomes leader, defers briefly
    (the yield window) while followers enqueue, then flushes the combined
    batch as a single WAL append. Everyone in the batch receives the same
    log counter value to stabilize against. *)

type 'a t

type stats = { mutable batches : int; mutable items : int }

val create :
  Treaty_sim.Sim.t ->
  ?name:string ->
  ?node:int ->
  window_ns:int ->
  flush:(Treaty_obs.Trace.span -> 'a list -> int) ->
  unit ->
  'a t
(** [flush] writes one combined WAL entry for a batch and returns its log
    counter. When tracing, each batch runs under a ["<name>.flush"] span on
    pid lane [node], parented on the first item's submit-site span; the
    flush callback receives it so counter submissions can chain further
    ([Trace.none] when tracing is off). *)

val submit : 'a t -> ?span:Treaty_obs.Trace.span -> 'a -> int
(** Enqueue an item, becoming the leader if none is active; blocks until the
    batch containing the item is durable; returns its log counter. *)

val stats : 'a t -> stats
