module Wire = Treaty_util.Wire

type record =
  | Begin_2pc of { tx_seq : int; participants : int list }
  | Decision of { tx_seq : int; commit : bool }
  | Finished of { tx_seq : int }

let encode record =
  let b = Buffer.create 32 in
  (match record with
  | Begin_2pc { tx_seq; participants } ->
      Wire.w8 b 1;
      Wire.w64 b tx_seq;
      Wire.wlist b Wire.w64 participants
  | Decision { tx_seq; commit } ->
      Wire.w8 b 2;
      Wire.w64 b tx_seq;
      Wire.wbool b commit
  | Finished { tx_seq } ->
      Wire.w8 b 3;
      Wire.w64 b tx_seq);
  Buffer.contents b

let decode payload =
  let r = Wire.reader payload in
  match Wire.r8 r with
  | 1 ->
      let tx_seq = Wire.r64 r in
      let participants = Wire.rlist r Wire.r64 in
      Begin_2pc { tx_seq; participants }
  | 2 ->
      let tx_seq = Wire.r64 r in
      let commit = Wire.rbool r in
      Decision { tx_seq; commit }
  | 3 -> Finished { tx_seq = Wire.r64 r }
  | n -> raise (Wire.Malformed (Printf.sprintf "bad clog record tag %d" n))
