module Wire = Treaty_util.Wire

type record =
  | Begin_2pc of { tx_seq : int; participants : int list }
  | Decision of { tx_seq : int; commit : bool }
  | Finished of { tx_seq : int }
  | Batch of record list

let rec encode_into b record =
  match record with
  | Begin_2pc { tx_seq; participants } ->
      Wire.w8 b 1;
      Wire.w64 b tx_seq;
      Wire.wlist b Wire.w64 participants
  | Decision { tx_seq; commit } ->
      Wire.w8 b 2;
      Wire.w64 b tx_seq;
      Wire.wbool b commit
  | Finished { tx_seq } ->
      Wire.w8 b 3;
      Wire.w64 b tx_seq
  | Batch records ->
      Wire.w8 b 4;
      Wire.wlist b encode_into records

let encode record =
  let b = Buffer.create 32 in
  encode_into b record;
  Buffer.contents b

let rec decode_one r =
  match Wire.r8 r with
  | 1 ->
      let tx_seq = Wire.r64 r in
      let participants = Wire.rlist r Wire.r64 in
      Begin_2pc { tx_seq; participants }
  | 2 ->
      let tx_seq = Wire.r64 r in
      let commit = Wire.rbool r in
      Decision { tx_seq; commit }
  | 3 -> Finished { tx_seq = Wire.r64 r }
  | 4 -> Batch (Wire.rlist r decode_one)
  | n -> raise (Wire.Malformed (Printf.sprintf "bad clog record tag %d" n))

let decode payload = decode_one (Wire.reader payload)

let rec flatten record =
  match record with
  | Batch records -> List.concat_map flatten records
  | r -> [ r ]
