type 'a node = {
  file_id : int;
  block : int;
  value : 'a;
  vbytes : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'a t = {
  tbl : (int * int, 'a node) Hashtbl.t;
  capacity : int;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable used : int;
  stats : stats;
}

let create ~capacity_bytes =
  {
    tbl = Hashtbl.create 64;
    capacity = max 0 capacity_bytes;
    head = None;
    tail = None;
    used = 0;
    stats = { hits = 0; misses = 0; evictions = 0 };
  }

let stats t = t.stats
let used_bytes t = t.used
let capacity_bytes t = t.capacity
let entries t = Hashtbl.length t.tbl

(* Recency lives in an explicit doubly-linked list: eviction and
   invalidation orders are fixed by the access sequence alone, never by
   [Hashtbl] internals. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let remove_node t n =
  unlink t n;
  Hashtbl.remove t.tbl (n.file_id, n.block);
  t.used <- t.used - n.vbytes

let find t ~file_id ~block =
  match Hashtbl.find_opt t.tbl (file_id, block) with
  | Some n ->
      t.stats.hits <- t.stats.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None

(* Evict from the LRU tail until [extra] more bytes fit; returns the bytes
   freed (the caller releases the matching enclave allocation). *)
let make_room t extra =
  let freed = ref 0 in
  while t.used + extra > t.capacity && t.tail <> None do
    match t.tail with
    | Some n ->
        freed := !freed + n.vbytes;
        t.stats.evictions <- t.stats.evictions + 1;
        remove_node t n
    | None -> ()
  done;
  !freed

let insert t ~file_id ~block ~bytes value =
  if bytes > t.capacity then 0 (* would evict everything and still not fit *)
  else begin
    let freed =
      match Hashtbl.find_opt t.tbl (file_id, block) with
      | Some old ->
          remove_node t old;
          old.vbytes
      | None -> 0
    in
    let freed = freed + make_room t bytes in
    let n = { file_id; block; value; vbytes = bytes; prev = None; next = None } in
    Hashtbl.replace t.tbl (file_id, block) n;
    push_front t n;
    t.used <- t.used + bytes;
    freed
  end

let invalidate_file t ~file_id =
  (* Walk the recency list (deterministic order), not the Hashtbl. *)
  let freed = ref 0 in
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        if n.file_id = file_id then begin
          freed := !freed + n.vbytes;
          remove_node t n
        end;
        go next
  in
  go t.head;
  !freed

let clear t =
  let freed = t.used in
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.used <- 0;
  freed
