(** WAL record format (§V-A: "WAL stores the MemTable updates and the
    prepared Txs").

    A [Commit_batch] is one group commit: the merged write sets of the
    transactions a group leader flushed together, each with its commit
    sequence number. A [Prepare] persists a participant's prepared-but-
    undecided transaction (identified by its global (coordinator, tx) id);
    [Resolve] records its eventual fate. *)

type txid = int * int
(** (coordinator node id, tx sequence at the coordinator). *)

type record =
  | Commit_batch of (int * (string * Op.t) list) list
      (** [(commit_seq, writes)] per transaction in the group. *)
  | Prepare of txid * (string * Op.t) list
  | Resolve of txid * int option
      (** [Some commit_seq] = commit at that version; [None] = abort. *)

val encode : record -> string
val decode : string -> record
