(** Counter-stamped authenticated log (§V-A, §VI).

    MANIFEST, WAL and Clog all share this format. Each entry carries

    {v counter (8 B) | len (4 B) | payload (maybe encrypted) | MAC (32 B) v}

    where the counter is "unique, monotonic and deterministically increased"
    (+1 per entry) and the MAC chains over the previous entry's MAC, so
    deletion, reordering or in-place modification of any prefix breaks the
    chain. Freshness comes from outside: the trusted counter service (ROTE)
    stores the highest *stabilized* counter per log, and {!replay} checks the
    log against it — a log whose tail is older than the trusted value is a
    rollback attack.

    In non-authenticated modes (the native RocksDB baselines) the MAC field
    is zeroed and unchecked, at zero simulated cost. *)

type t

type replay_error =
  [ `Tampered of int  (** MAC chain broken at this counter value. *)
  | `Truncated  (** Trailing garbage / partial entry. *)
  | `Rolled_back of int * int  (* trusted, found *)
    (** The log ends before the trusted counter value: stale state. *) ]

val pp_replay_error : Format.formatter -> replay_error -> unit

val create : Ssd.t -> Sec.t -> name:string -> t
(** Open (or create) the log file [name]. A fresh handle starts at counter 1
    with the genesis chain seed; use {!replay} to resume an existing file. *)

val name : t -> string
val next_counter : t -> int
(** Counter value the next {!append} will be assigned. *)

val last_counter : t -> int
(** Counter of the most recent entry (0 if empty). *)

val append : t -> string -> int
(** Append a payload; returns its counter value. Charges encryption (enc
    mode), the chain MAC (auth mode), one write syscall and the device
    write. *)

val replay :
  t ->
  ?trusted:int ->
  unit ->
  ((int * string) list * int, replay_error) result
(** Re-read the log from disk, verifying the MAC chain and counter
    continuity; returns [(counter, payload) list, dropped] and prepares the
    handle for further appends. With [?trusted] (the ROTE value), entries
    beyond the trusted counter were never stabilized: they are discarded
    ([dropped] counts them) and the log file is truncated to the stable
    prefix; a log that ends *before* the trusted counter is a rollback
    ([`Rolled_back]). *)

val bytes_on_disk : t -> int
