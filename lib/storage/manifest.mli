(** MANIFEST: the authenticated record of persistent-state changes (§V-A).

    Every structural change — a new SSTable from a flush or compaction, a
    file deletion, WAL rotation/retirement, Clog trimming — is an edit
    appended to the MANIFEST log. Replaying it reconstructs the {!version}:
    the live SSTable hierarchy with the footer digests used to verify each
    file on open, plus the set of live WALs to replay. Old files are only
    garbage-collected once the MANIFEST entry recording their replacement is
    *stabilized*, so recovery from the trusted prefix never dangles. *)

type file_meta = {
  file_id : int;
  level : int;
  footer_digest : string;
  footer_version : int;
      (** Footer format the file was written with ([Sstable.footer_version]
          at build time): v2 carries the Bloom filter, v1 is the bare block
          index. Recovery passes it to [Sstable.open_] so either decodes. *)
  min_key : string;
  max_key : string;
  max_seq : int;  (** Highest version in the file (sequence recovery). *)
  size : int;
}

type edit =
  | Add_file of file_meta
  | Delete_file of { level : int; file_id : int }
  | New_wal of { wal_id : int }
  | Obsolete_wal of { wal_id : int }
  | Clog_trim of { upto : int }
      (** 2PC entries up to this Clog counter are fully resolved. *)

type version = {
  levels : file_meta list array;
      (** Per level; L0 newest-first, deeper levels sorted by [min_key]. *)
  live_wals : int list;  (** WAL ids still needed for recovery, oldest first. *)
  clog_trim : int;
}

val empty_version : int -> version
val apply_edit : version -> edit -> version

val encode : edit -> string
val decode : string -> edit
(** Raises [Treaty_util.Wire.Malformed] on corrupt input. *)

val replay_edits : (int * string) list -> version * (int * edit) list
(** Fold decoded log entries into the final version (also returning them,
    with their counters, for inspection). *)

val wal_name : int -> string
