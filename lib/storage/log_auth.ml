module Hmac = Treaty_crypto.Hmac
module Wire = Treaty_util.Wire

let mac_size = 32

type t = {
  ssd : Ssd.t;
  sec : Sec.t;
  name : string;
  mac : Hmac.t;
  genesis : string;
  mutable next_counter : int;
  mutable last_mac : string;
  lock : Treaty_sim.Sim.Resource.resource;
      (* Appends suspend on device I/O; the counter/MAC chain state must not
         interleave ("Clog is thread-safe; coordinators append independently
         their entries", §VII-B). *)
}

type replay_error =
  [ `Tampered of int
  | `Truncated
  | `Rolled_back of int * int  (* trusted, found *) ]

let pp_replay_error ppf = function
  | `Tampered c -> Format.fprintf ppf "MAC chain broken at counter %d" c
  | `Truncated -> Format.fprintf ppf "truncated entry"
  | `Rolled_back (trusted, found) ->
      Format.fprintf ppf "rollback detected: trusted counter %d, log ends at %d"
        trusted found

let create ssd sec ~name =
  let mac = Sec.mac_key sec name in
  let genesis = Hmac.mac mac ("genesis:" ^ name) in
  {
    ssd;
    sec;
    name;
    mac;
    genesis;
    next_counter = 1;
    last_mac = genesis;
    lock = Treaty_sim.Sim.Resource.create (Ssd.sim ssd) ~capacity:1 ("log:" ^ name);
  }

let name t = t.name
let next_counter t = t.next_counter
let last_counter t = t.next_counter - 1

let chain_mac t ~counter ~payload ~prev =
  if Sec.auth t.sec then begin
    Treaty_tee.Enclave.charge_hash (Sec.enclave t.sec)
      ~bytes:(String.length payload + 8 + mac_size);
    let b = Buffer.create 16 in
    Wire.w64 b counter;
    Hmac.mac_parts t.mac [ Buffer.contents b; payload; prev ]
  end
  else String.make mac_size '\000'

let encode_entry t ~counter payload =
  let stored = Sec.protect t.sec payload in
  let mac = chain_mac t ~counter ~payload:stored ~prev:t.last_mac in
  let b = Buffer.create (12 + String.length stored + mac_size) in
  Wire.w64 b counter;
  Wire.w32 b (String.length stored);
  Buffer.add_string b stored;
  Buffer.add_string b mac;
  (Buffer.contents b, mac)

let append t payload =
  Treaty_sim.Sim.Resource.acquire t.lock;
  Fun.protect ~finally:(fun () -> Treaty_sim.Sim.Resource.release t.lock)
  @@ fun () ->
  let counter = t.next_counter in
  let entry, mac = encode_entry t ~counter payload in
  (* Advance the chain before the device write suspends, so a concurrent
     append queued on the lock sees consistent state either way. *)
  t.next_counter <- counter + 1;
  t.last_mac <- mac;
  ignore (Ssd.append t.ssd ~enclave:(Sec.enclave t.sec) t.name entry);
  counter

let replay t ?trusted () =
  let enclave = Sec.enclave t.sec in
  let total = Ssd.size t.ssd t.name in
  (* One sequential read of the whole log, then parse in memory; syscall and
     page-cache costs were charged by the read. *)
  let raw = if total = 0 then "" else Ssd.read t.ssd ~enclave t.name ~off:0 ~len:total in
  let r = Wire.reader raw in
  let rec go acc prev_mac expected_counter last_ok_pos =
    if Wire.at_end r then Ok (List.rev acc, prev_mac, expected_counter - 1, last_ok_pos)
    else
      match
        let counter = Wire.r64 r in
        let len = Wire.r32 r in
        let stored = Wire.rbytes r len in
        let mac = Wire.rbytes r mac_size in
        (counter, stored, mac)
      with
      | exception Wire.Malformed _ -> Error `Truncated
      | counter, stored, mac ->
          (* Recovery issues one read syscall per entry and parses it — with
             small entries this dominates (Table I: "we have more syscalls
             ... more decryption calls"). *)
          Treaty_tee.Enclave.syscall enclave
            ~bytes:(String.length stored + 12 + mac_size) ();
          Treaty_tee.Enclave.compute_untrusted enclave 800;
          if counter <> expected_counter then Error (`Tampered expected_counter)
          else begin
            let expected_mac = chain_mac t ~counter ~payload:stored ~prev:prev_mac in
            if Sec.auth t.sec && not (Hmac.equal_tags mac expected_mac) then
              Error (`Tampered counter)
            else
              match Sec.unprotect t.sec stored with
              | exception Sec.Integrity_violation _ -> Error (`Tampered counter)
              | payload ->
                  go ((counter, payload) :: acc)
                    (if Sec.auth t.sec then mac else prev_mac)
                    (expected_counter + 1) (Wire.pos r)
          end
  in
  match go [] t.genesis 1 0 with
  | Error e -> Error e
  | Ok (entries, last_mac, last_counter, _last_pos) -> (
      match trusted with
      | Some trusted when last_counter < trusted ->
          Error (`Rolled_back (trusted, last_counter))
      | Some trusted when last_counter > trusted ->
          (* Entries past the trusted value were never stabilized: the crash
             happened before their counter round completed. Drop them — their
             transactions were never acknowledged. *)
          let keep = List.filter (fun (c, _) -> c <= trusted) entries in
          let dropped = last_counter - trusted in
          (* Rebuild the on-disk prefix and the in-memory chain state. *)
          Ssd.delete t.ssd t.name;
          t.next_counter <- 1;
          t.last_mac <- t.genesis;
          List.iter (fun (_, payload) -> ignore (append t payload)) keep;
          Ok (keep, dropped)
      | _ ->
          t.next_counter <- last_counter + 1;
          t.last_mac <- last_mac;
          Ok (entries, 0))

let bytes_on_disk t = Ssd.size t.ssd t.name
