(** Fault-injection harness: run a seeded {!Schedule} against a live cluster
    under a mixed bank-transfer / key-value workload, then check the
    system-level invariants the paper promises:

    - {b serializability} — the committed history's conflict graph is acyclic
      ({!Treaty_core.Serializability});
    - {b durability} — every client-acked commit is readable after all
      crashes have been recovered;
    - {b atomicity} — bank-transfer conservation: the sum over all accounts
      never changes;
    - {b leak-freedom} — once traffic stops and sweeps/TTLs run, every node's
      residual protocol state drains to zero
      ({!Treaty_core.Cluster.check_quiescent}).

    Everything is driven by simulated time from a single seed, so a failing
    seed reproduces exactly. *)

type config = {
  nodes : int;
  clients : int;
  horizon_ns : int;  (** Length of the fault + workload window. *)
  accounts : int;  (** Bank accounts, spread across shards. *)
  initial_balance : int;
  keys_per_client : int;  (** Private keys per client for the kv workload. *)
  drain_ns : int;  (** Post-schedule settle time before invariant checks. *)
  batching : bool;
      (** Run with the commit-pipeline batching profile knob; [false]
          exercises the unbatched (one round per log, one packet per
          message) path under the same fault schedules. *)
  batch_crypto : bool;
      (** Run with the burst-level AEAD knob (v2 packet envelope,
          {!Treaty_rpc.Secure_msg.Burst}); [false] exercises the v1
          per-message-sealed envelope under the same fault schedules —
          tampering detection and recovery must come out identical either
          way. *)
  read_opt : bool;
      (** Run with the authenticated read-path acceleration knob (Bloom
          filters + verified block cache); [false] exercises the
          verify-every-block path under the same fault schedules — recovery
          must come out identical either way. *)
  cc : Treaty_core.Types.isolation;
      (** Concurrency-control mode for the whole cluster:
          [Pessimistic] (2PL, the default) or [Optimistic]
          (OCC — lock-free reads validated at prepare). The same fault
          schedules and invariants apply under either mode. *)
  trace : bool;
      (** Record a {!Treaty_obs.Trace} of the whole run (reset at cluster
          creation, frozen when {!run_seed} returns — the caller exports it).
          Traces are a pure function of the seed: same seed, byte-identical
          JSON. *)
}

val default_config : config

type report = {
  schedule : Schedule.t;
  committed : int;  (** Client-acked commits across the workload. *)
  aborted : int;
  history_txs : int;  (** Transactions fed to the serializability checker. *)
}

val pp_report : Format.formatter -> report -> unit

val run_seed : ?config:config -> seed:int -> unit -> (report, string) result
(** Build the schedule for [seed], run it, check every invariant. [Error]
    carries the failed invariant plus the schedule rendering, enough to
    replay the exact run. Creates and drives its own simulation — call from
    plain code, not from inside [Sim.run]. *)
