open Treaty_core
module Sim = Treaty_sim.Sim
module Rng = Treaty_sim.Rng
module Net = Treaty_netsim.Net
module Adversary = Treaty_netsim.Adversary
module Packet = Treaty_netsim.Packet

type config = {
  nodes : int;
  clients : int;
  horizon_ns : int;
  accounts : int;
  initial_balance : int;
  keys_per_client : int;
  drain_ns : int;
  batching : bool;
  batch_crypto : bool;
  read_opt : bool;
  cc : Types.isolation;
  trace : bool;
}

let ms n = n * 1_000_000

let default_config =
  {
    nodes = 3;
    clients = 3;
    horizon_ns = ms 600;
    accounts = 8;
    initial_balance = 100;
    keys_per_client = 2;
    drain_ns = ms 1_500;
    batching = true;
    batch_crypto = true;
    read_opt = true;
    cc = Types.Pessimistic;
    trace = false;
  }

type report = {
  schedule : Schedule.t;
  committed : int;
  aborted : int;
  history_txs : int;
}

let pp_report fmt r =
  Format.fprintf fmt "seed=%d committed=%d aborted=%d history=%d faults=[%s]"
    r.schedule.Schedule.seed r.committed r.aborted r.history_txs
    (String.concat "; " (List.map Schedule.fault_to_string r.schedule.faults))

(* Short sweep/TTL knobs so residual state provably drains within the run,
   and a decision-query timeout above the largest delay spike a schedule can
   inject (otherwise prepared participants could never hear a decision). *)
let cluster_config cfg ~seed =
  (* Chaos always runs under TreatySan: a schedule that leaks a lockset,
     starves a fiber or spills plaintext should fail the seed even when the
     user-visible invariants still hold. *)
  let profile =
    {
      Config.treaty_enc_stab with
      batching = cfg.batching;
      batch_crypto = cfg.batch_crypto;
      read_opt = cfg.read_opt;
      sanitize = true;
      trace = cfg.trace;
    }
  in
  {
    (Config.with_profile Config.default profile) with
    Config.nodes = cfg.nodes;
    isolation = cfg.cc;
    record_history = true;
    decision_query_timeout_ns = ms 60;
    sweep_interval_ns = ms 100;
    part_prepared_resolve_ns = ms 200;
    part_stale_abort_ns = ms 500;
    coord_tx_abandon_ns = ms 1_000;
    dedup_ttl_ns = ms 600;
    seed = Int64.of_int (0x6b05 lxor seed);
  }

let acct_key i = Printf.sprintf "acct%d" i
let kv_key ~cid k = Printf.sprintf "c%d.k%d" cid k

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt
let reason = Types.abort_reason_to_string

let load_data cluster cfg =
  let loader = Client.connect_exn cluster ~client_id:900 in
  (match
     Client.with_txn loader (fun txn ->
         let rec put_accts i =
           if i >= cfg.accounts then Ok ()
           else
             match
               Client.put loader txn (acct_key i)
                 (string_of_int cfg.initial_balance)
             with
             | Ok () -> put_accts (i + 1)
             | Error e -> Error e
         in
         put_accts 0)
   with
  | Ok () -> ()
  | Error e -> failf "load accounts aborted: %s" (reason e));
  for cid = 0 to cfg.clients - 1 do
    match
      Client.with_txn loader (fun txn ->
          let rec put_keys k =
            if k >= cfg.keys_per_client then Ok ()
            else
              match Client.put loader txn (kv_key ~cid k) "v0" with
              | Ok () -> put_keys (k + 1)
              | Error e -> Error e
          in
          put_keys 0)
    with
    | Ok () -> ()
    | Error e -> failf "load client %d keys aborted: %s" cid (reason e)
  done;
  Client.disconnect loader

let install_adversary sim net (sched : Schedule.t) ~t0 ~seed =
  let dup_rng = Rng.create (Int64.of_int (seed lxor 0xd00d)) in
  let in_win (w : Schedule.window) now =
    now >= t0 + w.at_ns && now < t0 + w.at_ns + w.dur_ns
  in
  Net.set_adversary net (fun (pkt : Packet.t) ->
      let now = Sim.now sim in
      (* Faults attack the datacenter fabric (nodes + CAS); the client
         network stays clean so "client-acked" remains well defined. *)
      let fabric = pkt.src < 1000 && pkt.dst < 1000 in
      let rec eval = function
        | [] -> Adversary.Deliver
        | f :: rest -> (
            match f with
            | Schedule.Cas_blackout w
              when in_win w now
                   && (pkt.src = Cluster.cas_id || pkt.dst = Cluster.cas_id)
              ->
                Adversary.Drop
            | Schedule.Partition { window; island }
              when in_win window now && fabric
                   && (pkt.src = island) <> (pkt.dst = island) ->
                Adversary.Drop
            | Schedule.Delay_spike { window; extra_ns }
              when in_win window now && fabric ->
                Adversary.Delay extra_ns
            | Schedule.Duplicate_burst { window; percent }
              when in_win window now && fabric && Rng.int dup_rng 100 < percent
              ->
                Adversary.Duplicate
            | _ -> eval rest)
      in
      eval sched.faults)

(* One fiber per Crash_restart fault: wait, power-cycle, then insist on a
   successful restart (retrying while the CAS is blacked out / partitioned
   away, which legitimately blocks re-attestation). *)
let spawn_crash_faults sim cluster (sched : Schedule.t) ~on_done =
  let crashes =
    List.filter_map
      (function
        | Schedule.Crash_restart { node; at_ns; down_ns } ->
            Some (node, at_ns, down_ns)
        | _ -> None)
      sched.faults
  in
  List.iter
    (fun (node, at_ns, down_ns) ->
      Sim.spawn sim (fun () ->
          Sim.sleep sim at_ns;
          Cluster.crash_node cluster node;
          Sim.sleep sim down_ns;
          let rec retry n =
            match Cluster.restart_node cluster node with
            | Ok () -> ()
            | Error m when n = 0 -> failf "node %d never restarted: %s" node m
            | Error _ ->
                Sim.sleep sim (ms 50);
                retry (n - 1)
          in
          retry 100;
          on_done ()))
    crashes;
  List.length crashes

let spawn_workload sim workload_clients cfg ~seed ~t0 ~acked ~committed
    ~aborted ~on_done =
  Array.iteri
    (fun cid c ->
      let rng = Rng.create (Int64.of_int ((seed * 1009) + cid)) in
      let counters = Array.make cfg.keys_per_client 0 in
      Sim.spawn sim (fun () ->
          while Sim.now sim - t0 < cfg.horizon_ns do
            let dice = Rng.int rng 8 in
            let outcome =
              if dice >= 6 then begin
                (* Read-only audit over the zero-RPC snapshot fast path: the
                   reads land in the serializability history, so a snapshot
                   that exposed a non-committed prefix would fail the seed. *)
                let a = Rng.int rng cfg.accounts in
                let b =
                  (a + 1 + Rng.int rng (cfg.accounts - 1)) mod cfg.accounts
                in
                match Client.read_only c [ acct_key a; acct_key b ] with
                | Error e -> Error e
                | Ok kvs ->
                    List.iter
                      (fun (k, v) ->
                        match v with
                        | None -> failf "ro audit: account %s vanished" k
                        | Some v -> (
                            match int_of_string_opt v with
                            | Some _ -> ()
                            | None ->
                                failf "ro audit: %s has malformed balance %S"
                                  k v))
                      kvs;
                    Ok ()
              end
              else if dice >= 3 then begin
                (* Bank transfer between two distinct accounts: read both
                   balances, move a random amount. Conservation of the total
                   is the atomicity invariant. *)
                let a = Rng.int rng cfg.accounts in
                let b =
                  (a + 1 + Rng.int rng (cfg.accounts - 1)) mod cfg.accounts
                in
                Client.with_txn c (fun txn ->
                    match Client.get c txn (acct_key a) with
                    | Error e -> Error e
                    | Ok None -> Error Types.Integrity
                    | Ok (Some va) -> (
                        match Client.get c txn (acct_key b) with
                        | Error e -> Error e
                        | Ok None -> Error Types.Integrity
                        | Ok (Some vb) -> (
                            let amt = 1 + Rng.int rng 10 in
                            let va = int_of_string va
                            and vb = int_of_string vb in
                            match
                              Client.put c txn (acct_key a)
                                (string_of_int (va - amt))
                            with
                            | Error e -> Error e
                            | Ok () ->
                                Client.put c txn (acct_key b)
                                  (string_of_int (vb + amt)))))
              end
              else begin
                (* Private-key put with a monotone counter; remember the
                   last acked value for the durability check. *)
                let k = Rng.int rng cfg.keys_per_client in
                let next = counters.(k) + 1 in
                counters.(k) <- next;
                match
                  Client.with_txn c (fun txn ->
                      Client.put c txn (kv_key ~cid k)
                        (Printf.sprintf "v%d" next))
                with
                | Ok () ->
                    acked.(cid).(k) <- next;
                    Ok ()
                | Error e -> Error e
              end
            in
            (match outcome with
            | Ok () -> incr committed
            | Error _ -> incr aborted);
            Sim.sleep sim (500_000 + Rng.int rng 2_000_000)
          done;
          Client.disconnect c;
          on_done ()))
    workload_clients

let check_invariants sim cluster cfg ~acked =
  let checker = Client.connect_exn cluster ~client_id:999 in
  (* Atomicity: bank-transfer conservation. *)
  (match
     Client.with_txn checker (fun txn ->
         let rec sum i acc =
           if i >= cfg.accounts then Ok acc
           else
             match Client.get checker txn (acct_key i) with
             | Error e -> Error e
             | Ok None -> failf "account %s vanished" (acct_key i)
             | Ok (Some v) -> sum (i + 1) (acc + int_of_string v)
         in
         sum 0 0)
   with
  | Error e -> failf "conservation check aborted: %s" (reason e)
  | Ok total ->
      let expect = cfg.accounts * cfg.initial_balance in
      if total <> expect then
        failf "conservation violated: accounts sum to %d, expected %d" total
          expect);
  (* Durability: every client-acked kv put is still visible (the surviving
     counter may only be newer — a commit the client timed out on). *)
  for cid = 0 to cfg.clients - 1 do
    for k = 0 to cfg.keys_per_client - 1 do
      match
        Client.with_txn checker (fun txn ->
            Client.get checker txn (kv_key ~cid k))
      with
      | Error e -> failf "durability read aborted: %s" (reason e)
      | Ok None -> failf "key %s vanished" (kv_key ~cid k)
      | Ok (Some v) ->
          let got =
            try int_of_string (String.sub v 1 (String.length v - 1))
            with _ -> failf "key %s has malformed value %S" (kv_key ~cid k) v
          in
          if got < acked.(cid).(k) then
            failf "acked write lost on %s: acked v%d, read %s" (kv_key ~cid k)
              acked.(cid).(k) v
    done
  done;
  Client.disconnect checker;
  (* Leak-freedom: let TTLs and sweeps fire with zero traffic, then demand
     empty residual state everywhere. *)
  Sim.sleep sim (ms 1_000);
  (match Cluster.check_quiescent cluster with
  | Ok () -> ()
  | Error m -> failf "residual state leaked: %s" m);
  (* TreatySan verdict: lock leaks, zombie acquisitions, starved fibers and
     plaintext boundary crossings collected over the whole run. *)
  (match Cluster.sanitize_check cluster with
  | Ok () -> ()
  | Error m -> failf "sanitizer violations: %s" m);
  (* Serializability of the whole committed history. *)
  match Cluster.history cluster with
  | None -> failf "history recording was off"
  | Some h -> (
      match Serializability.check h with
      | Serializability.Serializable -> Serializability.committed h
      | Serializability.Cycle txs ->
          failf "history not serializable: %s" (Serializability.dump_cycle h txs))

let run_seed ?(config = default_config) ~seed () =
  let cfg = config in
  let sched =
    Schedule.generate ~seed ~nodes:cfg.nodes ~horizon_ns:cfg.horizon_ns
  in
  let sim = Sim.create ~seed:(Int64.of_int (0x7ea7_0000 lxor seed)) () in
  (* The sanitizer collector is global: start each seed from a clean slate. *)
  Treaty_util.Sanitizer.reset ();
  let result = ref (Error "chaos run did not finish") in
  (try
     Sim.run sim (fun () ->
         match Cluster.create sim (cluster_config cfg ~seed) () with
         | Error m -> failf "bootstrap: %s" m
         | Ok cluster ->
             load_data cluster cfg;
             (* Connect every workload client before the first fault can
                fire, so registration is never racing a crash. *)
             let workload_clients =
               Array.init cfg.clients (fun cid ->
                   Client.connect_exn cluster ~client_id:(100 + cid))
             in
             let committed = ref 0 and aborted = ref 0 in
             let acked =
               Array.init cfg.clients (fun _ ->
                   Array.make cfg.keys_per_client 0)
             in
             let t0 = Sim.now sim in
             install_adversary sim (Cluster.net cluster) sched ~t0 ~seed;
             let latch = Sim.ivar () in
             let pending = ref cfg.clients in
             let on_done () =
               decr pending;
               if !pending = 0 then Sim.fill latch ()
             in
             let crashes = spawn_crash_faults sim cluster sched ~on_done in
             pending := !pending + crashes;
             spawn_workload sim workload_clients cfg ~seed ~t0 ~acked
               ~committed ~aborted ~on_done;
             Sim.read sim latch;
             Net.clear_adversary (Cluster.net cluster);
             (* Belt and braces: every crash fiber restarts its node, but a
                later crash fault may overlap an earlier restart. *)
             for i = 0 to cfg.nodes - 1 do
               match Cluster.restart_node cluster i with
               | Ok () -> ()
               | Error m -> failf "final restart of node %d: %s" i m
             done;
             Sim.sleep sim cfg.drain_ns;
             let history_txs = check_invariants sim cluster cfg ~acked in
             Cluster.shutdown cluster;
             result :=
               Ok
                 {
                   schedule = sched;
                   committed = !committed;
                   aborted = !aborted;
                   history_txs;
                 })
   with Fail m ->
     result :=
       Error (Printf.sprintf "%s\n  schedule: %s" m (Schedule.to_string sched)));
  (* Freeze the trace buffer (export reads it after we return); the next
     traced run's Cluster.create resets it. *)
  if cfg.trace then Treaty_obs.Trace.disable ();
  !result
