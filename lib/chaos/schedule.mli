(** Deterministic fault schedules.

    A schedule is a finite set of timed faults — node crash/restart cycles,
    CAS blackouts, network partitions, delay spikes and duplication bursts —
    drawn from a seeded RNG. The same seed always yields the same schedule
    (an acceptance requirement: failures must be reproducible by seed), and
    the runner executes it against simulated time, so the whole run is
    deterministic end to end.

    Times are nanoseconds relative to the start of the measured workload
    window; every fault ends within the horizon except crash/restart
    downtime, which may spill past it (the runner waits for the restart). *)

type window = { at_ns : int; dur_ns : int }

type fault =
  | Crash_restart of { node : int; at_ns : int; down_ns : int }
      (** Power-cycle node [node] (0-based cluster index): volatile state
          lost, SSD retained, recovery + re-attestation on restart. *)
  | Cas_blackout of window
      (** Drop all traffic to/from the CAS: restarts during the window
          cannot attest and must retry. *)
  | Partition of { window : window; island : int }
      (** Isolate storage node with wire id [island] from the rest of the
          fabric (other storage nodes and the CAS); clients still reach it. *)
  | Delay_spike of { window : window; extra_ns : int }
      (** Add [extra_ns] to every fabric packet in the window. *)
  | Duplicate_burst of { window : window; percent : int }
      (** Duplicate [percent]% of fabric packets in the window (replay
          pressure on the at-most-once layer). *)

type t = {
  seed : int;
  nodes : int;
  horizon_ns : int;
  faults : fault list;  (** In generation order (not sorted by time). *)
}

val generate : seed:int -> nodes:int -> horizon_ns:int -> t
(** Draw 2–5 faults from a SplitMix64 stream keyed by [seed] alone —
    byte-for-byte reproducible. *)

val fault_to_string : fault -> string
val to_string : t -> string
(** Canonical rendering; equal strings iff equal schedules. *)
