module Rng = Treaty_sim.Rng

type window = { at_ns : int; dur_ns : int }

type fault =
  | Crash_restart of { node : int; at_ns : int; down_ns : int }
  | Cas_blackout of window
  | Partition of { window : window; island : int }
  | Delay_spike of { window : window; extra_ns : int }
  | Duplicate_burst of { window : window; percent : int }

type t = { seed : int; nodes : int; horizon_ns : int; faults : fault list }

let ms n = n * 1_000_000

(* A window starting somewhere in the horizon and ending inside it, so the
   post-schedule drain begins with the adversary quiet. *)
let window rng ~horizon_ns ~min_dur ~max_dur =
  let dur_ns = min_dur + Rng.int rng (max_dur - min_dur + 1) in
  let latest = max 1 (horizon_ns - dur_ns) in
  { at_ns = Rng.int rng latest; dur_ns }

let generate ~seed ~nodes ~horizon_ns =
  let rng = Rng.create (Int64.of_int (0x5eed_c4a0 lxor seed)) in
  let n_faults = 2 + Rng.int rng 4 in
  let fault () =
    match Rng.int rng 5 with
    | 0 ->
        let node = Rng.int rng nodes in
        let down_ns = ms 50 + Rng.int rng (ms 250) in
        Crash_restart { node; at_ns = Rng.int rng (max 1 (horizon_ns / 2)); down_ns }
    | 1 -> Cas_blackout (window rng ~horizon_ns ~min_dur:(ms 40) ~max_dur:(ms 150))
    | 2 ->
        Partition
          {
            window = window rng ~horizon_ns ~min_dur:(ms 40) ~max_dur:(ms 200);
            island = 1 + Rng.int rng nodes;
          }
    | 3 ->
        Delay_spike
          {
            window = window rng ~horizon_ns ~min_dur:(ms 50) ~max_dur:(ms 200);
            extra_ns = ms 5 + Rng.int rng (ms 40);
          }
    | _ ->
        Duplicate_burst
          {
            window = window rng ~horizon_ns ~min_dur:(ms 50) ~max_dur:(ms 250);
            percent = 10 + Rng.int rng 40;
          }
  in
  { seed; nodes; horizon_ns; faults = List.init n_faults (fun _ -> fault ()) }

let fault_to_string = function
  | Crash_restart { node; at_ns; down_ns } ->
      Printf.sprintf "crash(node=%d at=%d down=%d)" node at_ns down_ns
  | Cas_blackout w -> Printf.sprintf "cas_blackout(at=%d dur=%d)" w.at_ns w.dur_ns
  | Partition { window = w; island } ->
      Printf.sprintf "partition(island=%d at=%d dur=%d)" island w.at_ns w.dur_ns
  | Delay_spike { window = w; extra_ns } ->
      Printf.sprintf "delay(at=%d dur=%d extra=%d)" w.at_ns w.dur_ns extra_ns
  | Duplicate_burst { window = w; percent } ->
      Printf.sprintf "dup(at=%d dur=%d pct=%d)" w.at_ns w.dur_ns percent

let to_string t =
  Printf.sprintf "seed=%d nodes=%d horizon=%d [%s]" t.seed t.nodes t.horizon_ns
    (String.concat "; " (List.map fault_to_string t.faults))
