(** Deterministic span tracing for the simulator.

    A global collector (same idiom as {!Treaty_util.Sanitizer}) records
    spans timestamped from an injected clock — the simulator passes
    [Sim.now], so traces are a pure function of the seed. Spans form a
    tree: a root span per transaction, children per 2PC phase, grandchildren
    for lock waits, RPC calls, group-commit flushes and ROTE rounds.

    Cross-node edges ride on the metadata the secure message format already
    carries (§V): the caller registers its span under
    [(coord, tx_seq, op_id)] before the message leaves, and the remote
    handler resolves the same triple into a parent id. No wire change.

    When disabled every entry point is a cheap branch-and-return, so
    instrumented hot paths cost one call when [Config.profile] leaves
    tracing off. *)

type span = int
(** Span identifier. [none] (= 0) is the absent span: passing it as a
    parent makes a root; every operation on it is a no-op. *)

val none : span

type arg = Int of int | Str of string
(** Span annotation values, rendered into the Chrome [args] object. *)

val enabled : unit -> bool

val enable : clock:(unit -> int) -> unit
(** Start recording. [clock] supplies nanosecond timestamps and must be
    deterministic (the sim clock, never wall time). *)

val disable : unit -> unit
(** Stop recording; the buffer is kept for export. *)

val reset : unit -> unit
(** Drop all recorded spans and cross-node registrations. *)

val begin_span :
  ?parent:span -> ?args:(string * arg) list -> node:int -> cat:string ->
  string -> span
(** Open a span on [node] (the Chrome pid lane). Returns [none] when
    disabled. *)

val end_span : ?args:(string * arg) list -> span -> unit
(** Close a span, appending [args]. No-op on [none] or unknown ids. *)

val add_args : span -> (string * arg) list -> unit

val ctx_register : coord:int -> tx_seq:int -> op_id:int -> span -> unit
(** Publish [span] as the cross-node parent for the message identified by
    the at-most-once triple. Overwrites any previous registration. *)

val ctx_unregister : coord:int -> tx_seq:int -> op_id:int -> unit

val ctx_resolve : coord:int -> tx_seq:int -> op_id:int -> span
(** Look up the registered parent; [none] if absent, already closed (the
    caller timed out and moved on) or tracing is off. Non-consuming: a
    prepare fan-out and its decision reuse the same registration. *)

(** Test introspection: the raw span records, in creation order. *)
type info = {
  id : span;
  parent : span;
  node : int;
  cat : string;
  name : string;
  start_ns : int;
  mutable end_ns : int;  (** [-1] while the span is open. *)
  mutable args : (string * arg) list;
}

val spans : unit -> info list

val export_string : unit -> string
(** Chrome [trace_event] JSON ("X" complete events, [ts]/[dur] in
    microseconds, pid = node, tid = root-ancestor span). Deterministic:
    same recorded spans ⇒ same bytes. Spans still open are closed at the
    current clock and flagged [unclosed]. *)

val export_file : string -> unit
