type span = int

let none = 0

type arg = Int of int | Str of string

type info = {
  id : span;
  parent : span;
  node : int;
  cat : string;
  name : string;
  start_ns : int;
  mutable end_ns : int;
  mutable args : (string * arg) list;
}

type state = {
  mutable on : bool;
  mutable clock : unit -> int;
  mutable rev_spans : info list;
  mutable next_id : int;
  by_id : (int, info) Hashtbl.t;
  (* (coord, tx_seq, op_id) -> span: cross-node parent registrations. *)
  ctx : (int * int * int, int) Hashtbl.t;
}

let state =
  {
    on = false;
    clock = (fun () -> 0);
    rev_spans = [];
    next_id = 1;
    by_id = Hashtbl.create 256;
    ctx = Hashtbl.create 64;
  }

let enabled () = state.on

let enable ~clock =
  state.on <- true;
  state.clock <- clock

let disable () = state.on <- false

let reset () =
  state.rev_spans <- [];
  state.next_id <- 1;
  Hashtbl.reset state.by_id;
  Hashtbl.reset state.ctx

let begin_span ?(parent = none) ?(args = []) ~node ~cat name =
  if not state.on then none
  else begin
    let id = state.next_id in
    state.next_id <- id + 1;
    let s =
      { id; parent; node; cat; name; start_ns = state.clock (); end_ns = -1;
        args }
    in
    state.rev_spans <- s :: state.rev_spans;
    Hashtbl.replace state.by_id id s;
    id
  end

let add_args span args =
  if state.on && span <> none && args <> [] then
    match Hashtbl.find_opt state.by_id span with
    | None -> ()
    | Some s -> s.args <- s.args @ args

let end_span ?(args = []) span =
  if state.on && span <> none then
    match Hashtbl.find_opt state.by_id span with
    | None -> ()
    | Some s ->
        if s.end_ns < 0 then s.end_ns <- state.clock ();
        if args <> [] then s.args <- s.args @ args

let ctx_register ~coord ~tx_seq ~op_id span =
  if state.on && span <> none then
    Hashtbl.replace state.ctx (coord, tx_seq, op_id) span

let ctx_unregister ~coord ~tx_seq ~op_id =
  if state.on then Hashtbl.remove state.ctx (coord, tx_seq, op_id)

let ctx_resolve ~coord ~tx_seq ~op_id =
  if not state.on then none
  else
    match Hashtbl.find_opt state.ctx (coord, tx_seq, op_id) with
    | None -> none
    | Some id -> (
        (* A parent must be alive at child start; a closed registration
           means the caller already gave up (timeout) — orphan the child
           rather than violate well-formedness. *)
        match Hashtbl.find_opt state.by_id id with
        | Some s when s.end_ns < 0 -> id
        | _ -> none)

let spans () = List.rev state.rev_spans

(* ---- Chrome trace_event export ---------------------------------------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Microseconds with fixed three-decimal nanosecond precision: integer
   arithmetic only, so rendering is byte-stable across runs. *)
let add_us b ns = Printf.bprintf b "%d.%03d" (ns / 1000) (ns mod 1000)

let root_of s =
  let rec go id guard =
    if guard = 0 then id
    else
      match Hashtbl.find_opt state.by_id id with
      | Some p when p.parent <> none -> go p.parent (guard - 1)
      | _ -> id
  in
  if s.parent = none then s.id else go s.parent 64

let export_string () =
  let all = spans () in
  let close_at =
    if state.on then state.clock ()
    else
      List.fold_left (fun m s -> max m (max s.start_ns s.end_ns)) 0 all
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n"
  in
  (* Name the pid lanes. *)
  let pids =
    List.sort_uniq compare (List.map (fun s -> s.node) all)
  in
  List.iter
    (fun pid ->
      sep ();
      Printf.bprintf b
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
         \"args\":{\"name\":\"node %d\"}}"
        pid pid)
    pids;
  List.iter
    (fun s ->
      sep ();
      let end_ns = if s.end_ns < 0 then max close_at s.start_ns else s.end_ns in
      Buffer.add_string b "{\"name\":\"";
      json_escape b s.name;
      Buffer.add_string b "\",\"cat\":\"";
      json_escape b s.cat;
      Buffer.add_string b "\",\"ph\":\"X\",\"ts\":";
      add_us b s.start_ns;
      Buffer.add_string b ",\"dur\":";
      add_us b (end_ns - s.start_ns);
      Printf.bprintf b ",\"pid\":%d,\"tid\":%d,\"args\":{\"id\":%d" s.node
        (root_of s) s.id;
      if s.parent <> none then Printf.bprintf b ",\"parent\":%d" s.parent;
      if s.end_ns < 0 then Buffer.add_string b ",\"unclosed\":1";
      List.iter
        (fun (k, v) ->
          Buffer.add_string b ",\"";
          json_escape b k;
          Buffer.add_string b "\":";
          match v with
          | Int i -> Buffer.add_string b (string_of_int i)
          | Str s ->
              Buffer.add_char b '"';
              json_escape b s;
              Buffer.add_char b '"')
        s.args;
      Buffer.add_string b "}}")
    all;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let export_file path =
  let oc = open_out path in
  output_string oc (export_string ());
  close_out oc
