module Hist = struct
  let sub_bits = 9
  let sub_count = 1 lsl sub_bits (* 512 sub-buckets per octave *)
  let unit_max = 1 lsl (sub_bits + 1) (* exact below 1024 *)

  (* Octaves msb = 10 .. 62 after the exact region. *)
  let size = unit_max + ((62 - 10 + 1) * sub_count)

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_v : int;
  }

  let create () = { counts = Array.make size 0; count = 0; sum = 0; max_v = 0 }

  let msb v =
    let r = ref 0 and v = ref v in
    while !v > 1 do
      incr r;
      v := !v lsr 1
    done;
    !r

  let index v =
    if v < unit_max then v
    else
      let m = msb v in
      let shift = m - sub_bits in
      unit_max + ((m - 10) * sub_count) + ((v lsr shift) - sub_count)

  (* Midpoint of bucket [i] — the value reported for any sample in it. *)
  let representative i =
    if i < unit_max then i
    else
      let octave = (i - unit_max) / sub_count
      and sub = (i - unit_max) mod sub_count in
      let shift = octave + 1 in
      let low = (sub + sub_count) lsl shift in
      low + ((1 lsl shift) / 2)

  let record t v =
    let v = if v < 0 then 0 else v in
    t.counts.(index v) <- t.counts.(index v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let sum t = t.sum
  let max_value t = t.max_v
  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

  let percentile t p =
    if t.count = 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
        if r < 1 then 1 else if r > t.count then t.count else r
      in
      let i = ref 0 and cum = ref 0 and out = ref 0 in
      while !cum < rank && !i < size do
        if t.counts.(!i) > 0 then begin
          cum := !cum + t.counts.(!i);
          out := !i
        end;
        incr i
      done;
      representative !out
    end

  let merge a b =
    let t = create () in
    Array.iteri (fun i n -> t.counts.(i) <- n + b.counts.(i)) a.counts;
    t.count <- a.count + b.count;
    t.sum <- a.sum + b.sum;
    t.max_v <- max a.max_v b.max_v;
    t
end

type metric = Counter of int ref | Gauge of int ref | Histogram of Hist.t

type state = { mutable on : bool; tbl : (string, metric) Hashtbl.t }

let state = { on = false; tbl = Hashtbl.create 64 }

let enabled () = state.on
let enable () = state.on <- true
let disable () = state.on <- false
let reset () = Hashtbl.reset state.tbl

let kind_error name = invalid_arg ("Metrics: kind mismatch for " ^ name)

let incr ?(by = 1) name =
  if state.on then
    match Hashtbl.find_opt state.tbl name with
    | Some (Counter r) -> r := !r + by
    | Some _ -> kind_error name
    | None -> Hashtbl.replace state.tbl name (Counter (ref by))

let set_gauge name v =
  if state.on then
    match Hashtbl.find_opt state.tbl name with
    | Some (Gauge r) -> r := v
    | Some _ -> kind_error name
    | None -> Hashtbl.replace state.tbl name (Gauge (ref v))

let observe name v =
  if state.on then
    match Hashtbl.find_opt state.tbl name with
    | Some (Histogram h) -> Hist.record h v
    | Some _ -> kind_error name
    | None ->
        let h = Hist.create () in
        Hist.record h v;
        Hashtbl.replace state.tbl name (Histogram h)

let value name =
  match Hashtbl.find_opt state.tbl name with
  | Some (Counter r) | Some (Gauge r) -> !r
  | _ -> 0

let hist name =
  match Hashtbl.find_opt state.tbl name with
  | Some (Histogram h) -> Some h
  | _ -> None

let dump () =
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) state.tbl [] in
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find state.tbl name with
      | Counter r -> Printf.bprintf b "%s %d\n" name !r
      | Gauge r -> Printf.bprintf b "%s %d\n" name !r
      | Histogram h ->
          Printf.bprintf b
            "%s count=%d sum=%d mean=%.1f p50=%d p99=%d max=%d\n" name
            (Hist.count h) (Hist.sum h) (Hist.mean h)
            (Hist.percentile h 50.) (Hist.percentile h 99.)
            (Hist.max_value h))
    (List.sort compare names);
  Buffer.contents b
