(** Typed metrics registry: counters, gauges and log-scale histograms.

    A single global registry (gated like {!Trace} so instrumentation is a
    branch when [Config.profile] leaves metrics off) plus a standalone
    {!Hist} usable without the registry — {!Treaty_workload.Stats} builds
    its percentiles on it unconditionally.

    Everything is integer-valued and deterministic; there is no clock in
    here, callers observe durations they measured on the sim clock. *)

(** HdrHistogram-style log-scale histogram of non-negative integers.

    Values below 1024 are exact; above, buckets keep 9 significant bits
    (relative error ≤ 2{^-9} ≈ 0.2%). Count, sum and max are exact. *)
module Hist : sig
  type t

  val create : unit -> t
  val record : t -> int -> unit
  (** Negative values clamp to 0. *)

  val count : t -> int
  val sum : t -> int
  val max_value : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** [percentile t p] — the representative value of the bucket holding the
      sample of rank [ceil (p/100 * count)], matching the exact-sort
      convention the workload stats used. 0 when empty. *)

  val merge : t -> t -> t
  (** Fresh histogram holding both operands' samples. *)
end

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit
val reset : unit -> unit

val incr : ?by:int -> string -> unit
(** Bump a counter (created on first use). No-op when disabled. *)

val set_gauge : string -> int -> unit
val observe : string -> int -> unit
(** Record a histogram sample (created on first use). No-op when
    disabled. *)

val value : string -> int
(** Counter or gauge value; 0 when absent. *)

val hist : string -> Hist.t option

val dump : unit -> string
(** All metrics, one per line, sorted by name — deterministic. *)
