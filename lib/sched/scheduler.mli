(** Userland fiber scheduler (Treaty paper §VII-C).

    The paper implements a cooperative, round-robin userland scheduler on top
    of SCONE threads: one fiber per connected client, a run queue, a
    sleeping/waiting queue, and no syscalls/interrupts on the scheduling path.
    This module is the OCaml equivalent, built on OCaml 5 effect handlers.
    Fibers are spawned onto a scheduler, may [yield] their time slice, or
    [suspend] until an external waker fires.

    The scheduler itself has no notion of time; the discrete-event simulator
    ([Treaty_sim.Sim]) supplies timers by registering wakers on its event
    queue. *)

type t
(** A scheduler instance: a round-robin run queue of fibers. *)

val create : unit -> t

val spawn : ?label:string -> t -> (unit -> unit) -> unit
(** [spawn t f] enqueues a new fiber running [f]. Exceptions escaping [f] are
    re-raised out of the scheduler loop. [label] names the fiber in watchdog
    reports. *)

val set_watchdog :
  t -> now:(unit -> int) -> threshold:int -> report:(string -> unit) -> unit
(** TreatySan starvation detector: track every suspended fiber and, on each
    {!watchdog_scan}, report (once per parking) any fiber parked longer than
    [threshold] ticks of the caller-supplied clock. The scheduler has no
    clock of its own, so [now] is injected — the simulator passes its
    event-queue clock. *)

val watchdog_scan : t -> unit
(** Report fibers suspended beyond the watchdog threshold. No-op when no
    watchdog is installed. *)

(** Per-label fiber aggregate from the profiler. [run_ns] is lifetime minus
    parked time, credited when a fiber completes; [suspended_ns] and
    [wakeups] accrue at every resume, so long-lived fibers (sweepers,
    pumps) are visible before they exit. *)
type fiber_profile = {
  spawned : int;
  completed : int;
  wakeups : int;
  run_ns : int;
  suspended_ns : int;
}

val set_profiler : t -> now:(unit -> int) -> unit
(** Start aggregating per-fiber scheduling statistics by spawn label, using
    the injected (simulated) clock. Independent of the watchdog. *)

val profile : t -> (string * fiber_profile) list
(** Aggregates sorted by label; empty when no profiler is installed.
    Unlabelled fibers aggregate under ["anon"]. *)

val yield : t -> unit
(** Re-enqueue the current fiber at the back of the run queue and run others.
    Must be called from within a fiber. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] parks the current fiber and calls [register waker].
    The fiber resumes after [waker ()] is invoked. The waker must be called
    at most once; use {!Ivar} for race-safe one-shot wakeups. *)

val run_pending : t -> unit
(** Run fibers until the run queue is empty. Used by the simulator's main
    loop between event firings. *)

val live_fibers : t -> int
(** Number of fibers that have been spawned and not yet terminated
    (running, runnable or suspended). *)

(** Write-once synchronization cell, the primitive for futures/continuations
    in the RPC layer. *)
module Ivar : sig
  type 'a ivar

  val create : unit -> 'a ivar

  val fill : 'a ivar -> 'a -> unit
  (** Fill the ivar and wake all readers. Raises [Invalid_argument] if
      already full. *)

  val try_fill : 'a ivar -> 'a -> bool
  (** Like {!fill} but returns [false] instead of raising when already
      full. This is the race-safe primitive for timeout-vs-completion. *)

  val is_full : 'a ivar -> bool
  val peek : 'a ivar -> 'a option

  val on_fill : 'a ivar -> ('a -> unit) -> unit
  (** Run a callback when the ivar is filled (immediately if already full).
      Callbacks run in fill order, in the filling fiber's context. *)

  val read : t -> 'a ivar -> 'a
  (** Block the current fiber until the ivar is filled. *)
end

(** Deterministic per-shard execution lanes (§VII-C): work submitted to the
    same lane runs serially in submission order on a dedicated fiber; work on
    different lanes interleaves round-robin through the scheduler's FIFO run
    queue. Because lane selection, queue order and fiber scheduling are all
    deterministic functions of the submission sequence, fanning a node's
    prepare/commit handling across lanes preserves same-seed trace
    byte-identity — the simulator's replay contract.

    A lane's drain fiber is spawned on demand and exits once its queue
    empties, so idle lanes hold no parked fibers (the starvation watchdog
    stays quiet). *)
module Lanes : sig
  type lanes

  val create : ?label:string -> t -> shards:int -> lanes
  (** [shards] must be positive. [label] names the drain fibers in watchdog
      and profiler reports (default ["lane"]). *)

  val shards : lanes -> int

  val submit : lanes -> int -> (unit -> unit) -> unit
  (** Enqueue a job on lane [i mod shards], spawning the lane's drain fiber
      if it is not already running. Jobs may block; blocking parks the lane
      (later jobs on the same lane wait, other lanes keep running). An
      exception escaping a job is re-raised out of the scheduler loop and
      abandons the rest of that lane's queue until the next submit. *)

  val run : lanes -> int -> (unit -> 'a) -> 'a
  (** Like {!submit} but blocks the calling fiber until the job has run on
      its lane, returning the job's result (re-raising its exception in the
      caller — the lane itself keeps draining). *)
end

(** Counting latch: waits until [n] completions have been signalled. *)
module Latch : sig
  type latch

  val create : int -> latch
  val arrive : latch -> unit
  val wait : t -> latch -> unit
end
