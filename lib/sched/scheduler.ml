(* Growable ring buffer of thunks: the run-queue primitive. Unlike
   [Queue.t] there is no per-push cell allocation — the hot scheduling path
   (suspend/resume per RPC, per lock wait, per sleep) costs an array store
   and two index updates. *)
module Fring = struct
  type t = {
    mutable buf : (unit -> unit) array;
    mutable head : int;
    mutable len : int;
  }

  let nop () = ()
  let create () = { buf = Array.make 64 nop; head = 0; len = 0 }
  let is_empty q = q.len = 0

  let push q f =
    let cap = Array.length q.buf in
    if q.len = cap then begin
      let buf = Array.make (2 * cap) nop in
      let tail = cap - q.head in
      Array.blit q.buf q.head buf 0 tail;
      Array.blit q.buf 0 buf tail q.head;
      q.buf <- buf;
      q.head <- 0
    end;
    q.buf.((q.head + q.len) land (Array.length q.buf - 1)) <- f;
    q.len <- q.len + 1

  (* only call when non-empty; emptiness is always checked first *)
  let pop q =
    let f = q.buf.(q.head) in
    q.buf.(q.head) <- nop;
    q.head <- (q.head + 1) land (Array.length q.buf - 1);
    q.len <- q.len - 1;
    f
end

type watchdog = {
  wd_now : unit -> int;
  wd_threshold : int;
  wd_report : string -> unit;
}

type fiber_profile = {
  spawned : int;
  completed : int;
  wakeups : int;
  run_ns : int;
  suspended_ns : int;
}

(* Mutable aggregate per fiber label. [run_ns] is lifetime minus parked
   time, credited at completion; [suspended_ns]/[wakeups] accrue at each
   resume so long-lived fibers still show up. *)
type agg = {
  mutable a_spawned : int;
  mutable a_completed : int;
  mutable a_wakeups : int;
  mutable a_run_ns : int;
  mutable a_suspended_ns : int;
}

type profiler = {
  pr_now : unit -> int;
  per_label : (string, agg) Hashtbl.t;
  (* fiber id -> (spawned-at, parked-ns accumulated so far). *)
  active : (int, int * int ref) Hashtbl.t;
}

type t = {
  runq : Fring.t;
  mutable live : int;
  mutable next_fiber : int;
  mutable watchdog : watchdog option;
  mutable profiler : profiler option;
  mutable tracking : bool;
      (* true iff a watchdog or profiler is installed: the suspend/resume
         hot path pays exactly this one branch when observability is off *)
  (* fiber id -> (label, suspended-at) for parked fibers, maintained only
     while a watchdog or profiler is installed. *)
  suspended : (int, string * int) Hashtbl.t;
  flagged : (int, unit) Hashtbl.t;
}

type _ Effect.t +=
  | Yield : t -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let create () =
  {
    runq = Fring.create ();
    live = 0;
    next_fiber = 0;
    watchdog = None;
    profiler = None;
    tracking = false;
    suspended = Hashtbl.create 32;
    flagged = Hashtbl.create 8;
  }

let set_watchdog t ~now ~threshold ~report =
  t.watchdog <- Some { wd_now = now; wd_threshold = threshold; wd_report = report };
  t.tracking <- true

let set_profiler t ~now =
  t.profiler <-
    Some { pr_now = now; per_label = Hashtbl.create 16; active = Hashtbl.create 64 };
  t.tracking <- true

let agg_for pr label =
  let label = if label = "" then "anon" else label in
  match Hashtbl.find_opt pr.per_label label with
  | Some a -> a
  | None ->
      let a =
        { a_spawned = 0; a_completed = 0; a_wakeups = 0; a_run_ns = 0;
          a_suspended_ns = 0 }
      in
      Hashtbl.replace pr.per_label label a;
      a

let profile t =
  match t.profiler with
  | None -> []
  | Some pr ->
      Hashtbl.fold
        (fun label a acc ->
          ( label,
            { spawned = a.a_spawned; completed = a.a_completed;
              wakeups = a.a_wakeups; run_ns = a.a_run_ns;
              suspended_ns = a.a_suspended_ns } )
          :: acc)
        pr.per_label []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let track_spawn t id label =
  match t.profiler with
  | None -> ()
  | Some pr ->
      let a = agg_for pr label in
      a.a_spawned <- a.a_spawned + 1;
      Hashtbl.replace pr.active id (pr.pr_now (), ref 0)

let track_finish t id label =
  match t.profiler with
  | None -> ()
  | Some pr -> (
      match Hashtbl.find_opt pr.active id with
      | None -> ()
      | Some (started, parked) ->
          Hashtbl.remove pr.active id;
          let a = agg_for pr label in
          a.a_completed <- a.a_completed + 1;
          a.a_run_ns <- a.a_run_ns + (pr.pr_now () - started - !parked))

let track_suspend t id label =
  let now =
    match (t.watchdog, t.profiler) with
    | Some wd, _ -> wd.wd_now ()
    | None, Some pr -> pr.pr_now ()
    | None, None -> 0
  in
  Hashtbl.replace t.suspended id (label, now)

let track_resume t id =
  (match t.profiler with
  | None -> ()
  | Some pr -> (
      match Hashtbl.find_opt t.suspended id with
      | None -> ()
      | Some (label, since) ->
          let a = agg_for pr label in
          a.a_wakeups <- a.a_wakeups + 1;
          let parked_ns = pr.pr_now () - since in
          a.a_suspended_ns <- a.a_suspended_ns + parked_ns;
          (match Hashtbl.find_opt pr.active id with
          | Some (_, parked) -> parked := !parked + parked_ns
          | None -> ())));
  Hashtbl.remove t.suspended id;
  Hashtbl.remove t.flagged id

let watchdog_scan t =
  match t.watchdog with
  | None -> ()
  | Some wd ->
      let now = wd.wd_now () in
      Hashtbl.iter
        (fun id (label, since) ->
          if now - since > wd.wd_threshold && not (Hashtbl.mem t.flagged id) then begin
            Hashtbl.replace t.flagged id ();
            wd.wd_report
              (Printf.sprintf "fiber #%d%s suspended for %dns (threshold %dns)"
                 id
                 (if label = "" then "" else " [" ^ label ^ "]")
                 (now - since) wd.wd_threshold)
          end)
        t.suspended

let handler t ~id ~label =
  let open Effect.Deep in
  {
    retc = (fun () -> t.live <- t.live - 1; track_finish t id label);
    exnc = (fun e -> t.live <- t.live - 1; track_finish t id label; raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield _ ->
            Some
              (fun (k : (a, unit) continuation) ->
                Fring.push t.runq (fun () -> continue k ()))
        | Suspend (_, register) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if t.tracking then track_suspend t id label;
                register (fun () ->
                    if t.tracking then track_resume t id;
                    Fring.push t.runq (fun () -> continue k ())))
        | _ -> None);
  }

let spawn ?(label = "") t f =
  t.live <- t.live + 1;
  t.next_fiber <- t.next_fiber + 1;
  let id = t.next_fiber in
  track_spawn t id label;
  Fring.push t.runq (fun () -> Effect.Deep.match_with f () (handler t ~id ~label))

let yield t = Effect.perform (Yield t)
let suspend t register = Effect.perform (Suspend (t, register))

let run_pending t =
  while not (Fring.is_empty t.runq) do
    (Fring.pop t.runq) ()
  done

let live_fibers t = t.live

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a ivar = { mutable st : 'a state }

  let create () = { st = Empty [] }

  let try_fill iv v =
    match iv.st with
    | Full _ -> false
    | Empty waiters ->
        iv.st <- Full v;
        List.iter (fun w -> w v) (List.rev waiters);
        true

  let on_fill iv f =
    match iv.st with
    | Full v -> f v
    | Empty ws -> iv.st <- Empty (f :: ws)

  let fill iv v =
    if not (try_fill iv v) then invalid_arg "Ivar.fill: already full"

  let is_full iv = match iv.st with Full _ -> true | Empty _ -> false
  let peek iv = match iv.st with Full v -> Some v | Empty _ -> None

  let read sched iv =
    match iv.st with
    | Full v -> v
    | Empty _ ->
        suspend sched (fun waker -> on_fill iv (fun _ -> waker ()));
        (match iv.st with
        | Full v -> v
        | Empty _ ->
            (* The waker only fires from on_fill, which runs after the ivar
               transitioned to Full; an Empty here is unreachable. *)
            assert false)
end

module Lanes = struct
  type lanes = {
    sched : t;
    label : string;
    queues : Fring.t array;
    (* A lane's drain fiber exists only while its queue is non-empty, so idle
       lanes cost nothing and never trip the starvation watchdog. *)
    active : bool array;
  }

  let create ?(label = "lane") sched ~shards =
    if shards <= 0 then invalid_arg "Lanes.create: shards must be positive";
    {
      sched;
      label;
      queues = Array.init shards (fun _ -> Fring.create ());
      active = Array.make shards false;
    }

  let shards l = Array.length l.queues

  let rec drain l i () =
    if Fring.is_empty l.queues.(i) then l.active.(i) <- false
    else begin
      let job = Fring.pop l.queues.(i) in
      (try job ()
       with e ->
         l.active.(i) <- false;
         raise e);
      drain l i ()
    end

  let submit l i job =
    let i = i mod Array.length l.queues in
    Fring.push l.queues.(i) job;
    if not l.active.(i) then begin
      l.active.(i) <- true;
      spawn ~label:l.label l.sched (drain l i)
    end

  let run l i job =
    let iv = Ivar.create () in
    submit l i (fun () ->
        let r = match job () with v -> Ok v | exception e -> Error e in
        Ivar.fill iv r);
    match Ivar.read l.sched iv with Ok v -> v | Error e -> raise e
end

module Latch = struct
  type latch = { mutable remaining : int; done_ : unit Ivar.ivar }

  let create n =
    let l = { remaining = n; done_ = Ivar.create () } in
    if n <= 0 then Ivar.fill l.done_ ();
    l

  let arrive l =
    l.remaining <- l.remaining - 1;
    if l.remaining = 0 then ignore (Ivar.try_fill l.done_ ())

  let wait sched l = Ivar.read sched l.done_
end
