(** Conflict-serializability checker over committed histories.

    Treaty claims serializable ACID transactions; the test suite verifies it
    on the implementation rather than trusting the design. Nodes record, for
    every committed transaction, the versions it read and the versions it
    installed (keys are namespaced by node so per-node sequence numbers never
    collide). The checker builds the version order per key and the standard
    conflict graph — wr, ww and rw (anti-dependency) edges — and reports a
    cycle if one exists; acyclicity of the committed history's conflict
    graph is equivalent to conflict serializability. *)

type t

val create : unit -> t

val record_commit :
  t ->
  tx:Types.txid ->
  reads:(string * int) list ->
  writes:(string * int) list ->
  unit
(** [reads]: (namespaced key, version seq read — 0 for "not found").
    [writes]: (namespaced key, version seq installed). *)

val committed : t -> int

type verdict = Serializable | Cycle of Types.txid list

val check : t -> verdict
(** Builds the conflict graph and searches for a cycle. *)

val pp_verdict : Format.formatter -> verdict -> unit

val dump_tx : t -> Types.txid -> string
(** Human-readable reads/writes of a recorded transaction (debugging). *)

val dump_key : t -> string -> string
(** Every recorded read/write of one (namespaced) key, in commit-record
    order — the first thing to look at when {!check} reports a cycle. *)

val dump_cycle : t -> Types.txid list -> string
(** The cycle's transactions plus the full per-key history of every key they
    touched. *)
