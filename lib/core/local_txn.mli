(** Single-node transactions over the storage engine (§V-B).

    Each Treaty node runs a transactional single-node KV engine; distributed
    transactions "can then be viewed as the set of all participants' single
    node Txs". A [Local_txn.t] is one node's slice of a transaction:

    - {b pessimistic}: read/write locks are taken at access time (two-phase
      locking); commit is trivially valid;
    - {b optimistic}: accesses record the version sequence numbers they saw;
      {!prepare} validates them against the freshest versions and takes
      write locks only for the installation window.

    Uncommitted writes are buffered in enclave memory (charged to the EPC, as
    the paper's Tx buffers are, §VII-D) and are visible to the transaction's
    own reads. *)

type t

val begin_ :
  ?span:Treaty_obs.Trace.span ->
  engine:Treaty_storage.Engine.t ->
  locks:Lock_table.t ->
  isolation:Types.isolation ->
  tx:Types.txid ->
  unit ->
  t
(** [span] (default none) parents the lock-wait spans this transaction's
    accesses may open. *)

val set_span : t -> Treaty_obs.Trace.span -> unit
(** Re-point the lock-wait parent. Participant slices outlive individual RPC
    handlers; each op sets the currently-open handler span before executing
    so waits nest under the op that incurred them. *)

val tx : t -> Types.txid
val snapshot : t -> int

val get : t -> string -> (string option, [ `Timeout ]) result
(** Read-your-own-writes, then the engine at this transaction's snapshot. *)

val get_with_seq : t -> string -> (string option * int, [ `Timeout ]) result
(** Like {!get}, also returning the version sequence number observed (0 for
    not-found or own-write reads). *)

val scan : t -> lo:string -> hi:string -> ((string * string) list, [ `Timeout ]) result
(** Snapshot-consistent range scan merged with the transaction's own
    buffered writes; under 2PL every returned key is read-locked (committed
    keys only — there is no gap locking, so phantoms are possible, as in
    RocksDB's transactions). *)

val put : t -> string -> string -> (unit, [ `Timeout ]) result
val delete : t -> string -> (unit, [ `Timeout ]) result

val writes : t -> (string * Treaty_storage.Op.t) list
(** Buffered write set in application order. *)

val read_set : t -> (string * int) list
(** (key, version seq observed) — what OCC validates and the
    serializability checker consumes. *)

val prepare : t -> (unit, [ `Conflict | `Timeout ]) result
(** Make the transaction commit-ready: validation + write locks under OCC, a
    no-op check under 2PL. Does not touch the log — the caller decides
    between local commit and distributed prepare. *)

val finish : t -> unit
(** Release locks and enclave buffers. Idempotent; called on commit and
    abort alike. *)

val installed : t -> (string * int) list
(** (key, installed seq) after commit, for the history recorder. *)

val set_installed_seq : t -> int -> unit
