(** A Treaty deployment: CAS + storage nodes + shared fabric.

    [create] runs the full §VI trust-establishment flow inside the calling
    fiber: bootstrap the CAS (attested once over the slow IAS), deploy a LAS
    on every machine, attest every Treaty instance through its LAS, and
    provision the attested instances with the cluster secrets. Nodes then
    form the trusted-counter protection group among themselves.

    Node indexes are 0-based; the wire-level node ids are index+1, the CAS
    sits at id 90, clients at 1000+. *)

type t

val create :
  Treaty_sim.Sim.t ->
  Config.t ->
  ?route:(string -> int) ->
  unit ->
  (t, string) result
(** [route] maps a key to a node index (default: hash). Must run in a fiber
    ([Sim.run] context). *)

val sim : t -> Treaty_sim.Sim.t
val config : t -> Config.t
val net : t -> Treaty_netsim.Net.t
val node : t -> int -> Node.t
(** By index; raises if the node is currently crashed. *)

val node_ids : t -> int list
(** Wire ids of live storage nodes. *)

val n_nodes : t -> int
val route_key : t -> string -> int
(** Wire id of the node owning a key. *)

val history : t -> Serializability.t option
val master : t -> Treaty_crypto.Keys.master
val cas_id : int

val client_token : t -> client_id:int -> (string, [ `Cas_down ]) result
(** Obtain a client auth token from the CAS (models the out-of-band client
    registration). *)

val crash_node : t -> int -> unit
(** Power off a node: volatile state lost, SSD retained. *)

val restart_node : t -> int -> (unit, string) result
(** Re-attest to the CAS and run recovery. Fails if the CAS is down
    ("in case CAS fails, crashed nodes cannot recover", §VI), if attestation
    is rejected, or if the logs fail their integrity/freshness checks. *)

val crash_cas : t -> unit

val check_quiescent : t -> (unit, string) result
(** Leak-freedom: every live node's residual protocol state
    ({!Node.residual_state}) must be empty — no at-most-once cache entries,
    held locks, live transaction contexts or prepared-undecided engine
    transactions. Call only after all traffic has stopped and sweeps/TTLs
    have had time to run. [Error] names the leaking nodes and counters. *)

val sanitize_check : t -> (unit, string) result
(** TreatySan end-of-run audit: sweep every live node's lock table for
    residual holders ({!Lock_table.leak_check}) and fail if the
    {!Treaty_util.Sanitizer} collector saw any violation (warnings such as
    hold-and-wait timeouts do not fail the run). [Error] carries the
    sanitizer report. *)

val node_ssd : t -> int -> Treaty_storage.Ssd.t
(** The node's persistent store — live or crashed — for adversary tests. *)

val total_committed : t -> int
val total_aborted : t -> int

val pipeline_counters : t -> (string * int) list
(** Commit-pipeline batching counters aggregated over live nodes, in a fixed
    order: group commit ([wal.items]/[wal.batches], [clog.*]), epoch
    stabilization ([rote.*], [counter.*]) and RPC burst coalescing
    ([rpc.*]). Crashed nodes' counters are lost with their volatile state.
    The names double as registry gauge names (see {!publish_metrics}). *)

val publish_metrics : t -> unit
(** Snapshot {!pipeline_counters} into the {!Treaty_obs.Metrics} registry as
    [pipeline.*] gauges, and the fiber-scheduler profile as
    [fiber.<label>.*] gauges. No-op when the registry is disabled. *)

val pipeline_summary : t -> string
(** Human-readable rendering of {!pipeline_counters} with the derived
    per-batch / per-round ratios. *)

val shutdown : t -> unit
(** Stop all nodes and the CAS so the simulation can drain. *)
