module Enclave = Treaty_tee.Enclave

type security_profile = {
  tee : Enclave.mode;
  encryption : bool;
  authentication : bool;
  stabilization : bool;
  batching : bool;
  batch_crypto : bool;
  read_opt : bool;
  block_cache_bytes : int;
  sanitize : bool;
  trace : bool;
  metrics : bool;
}

let default_block_cache_bytes = 8 * 1024 * 1024

let ds_rocksdb =
  {
    tee = Enclave.Native;
    encryption = false;
    authentication = false;
    stabilization = false;
    batching = true;
    batch_crypto = true;
    read_opt = true;
    block_cache_bytes = default_block_cache_bytes;
    sanitize = false;
    trace = false;
    metrics = false;
  }

let native_treaty =
  {
    tee = Enclave.Native;
    encryption = false;
    authentication = true;
    stabilization = false;
    batching = true;
    batch_crypto = true;
    read_opt = true;
    block_cache_bytes = default_block_cache_bytes;
    sanitize = false;
    trace = false;
    metrics = false;
  }

let native_treaty_enc = { native_treaty with encryption = true }

let treaty_no_enc =
  {
    tee = Enclave.Scone;
    encryption = false;
    authentication = true;
    stabilization = false;
    batching = true;
    batch_crypto = true;
    read_opt = true;
    block_cache_bytes = default_block_cache_bytes;
    sanitize = false;
    trace = false;
    metrics = false;
  }

let treaty_enc = { treaty_no_enc with encryption = true }
let treaty_enc_stab = { treaty_enc with stabilization = true }

let profile_name p =
  let unbatched = if p.batching then "" else " unbatched" in
  let unsealed = if p.batch_crypto then "" else " no-batch-crypto" in
  let unread = if p.read_opt then "" else " no-readopt" in
  let sanitized = if p.sanitize then " +san" else "" in
  (match (p.tee, p.encryption, p.authentication, p.stabilization) with
  | Enclave.Native, false, false, false -> "DS-RocksDB"
  | Enclave.Native, false, true, false -> "Native Treaty"
  | Enclave.Native, true, true, false -> "Native Treaty w/ Enc"
  | Enclave.Scone, false, true, false -> "Treaty w/o Enc"
  | Enclave.Scone, true, true, false -> "Treaty w/ Enc"
  | Enclave.Scone, true, true, true -> "Treaty w/ Enc w/ Stab"
  | Enclave.Native, _, _, _ -> "custom (native)"
  | Enclave.Scone, _, _, _ -> "custom (scone)")
  ^ unbatched ^ unsealed ^ unread ^ sanitized

type t = {
  profile : security_profile;
  nodes : int;
  cores_per_node : int;
  isolation : Types.isolation;
  lock_shards : int;
  lock_timeout_ns : int;
  engine : Treaty_storage.Engine.config;
  cost : Treaty_sim.Costmodel.t;
  transport : Treaty_rpc.Transport.kind;
  transport_params : Treaty_rpc.Transport.params;
  rpc_timeout_ns : int;
  client_op_timeout_ns : int;
  decision_query_timeout_ns : int;
  recovery_resolve_attempts : int;
  recovery_resolve_retry_ns : int;
  sweep_interval_ns : int;
  part_prepared_resolve_ns : int;
  part_stale_abort_ns : int;
  coord_tx_abandon_ns : int;
  dedup_ttl_ns : int;
  burst_window_ns : int;
  sanitize_fiber_stall_ns : int;
  record_history : bool;
  naive_rpc_port : bool;
  seed : int64;
}

let default =
  {
    profile = treaty_enc_stab;
    nodes = 3;
    cores_per_node = 8;
    isolation = Types.Pessimistic;
    lock_shards = 256;
    lock_timeout_ns = 40_000_000;
    engine = Treaty_storage.Engine.default_config;
    cost = Treaty_sim.Costmodel.default;
    transport = Treaty_rpc.Transport.Dpdk;
    transport_params = Treaty_rpc.Transport.default_params;
    rpc_timeout_ns = 120_000_000;
    client_op_timeout_ns = 400_000_000;
    decision_query_timeout_ns = 20_000_000;
    recovery_resolve_attempts = 25;
    recovery_resolve_retry_ns = 20_000_000;
    sweep_interval_ns = 250_000_000;
    part_prepared_resolve_ns = 400_000_000;
    part_stale_abort_ns = 1_000_000_000;
    coord_tx_abandon_ns = 3_000_000_000;
    dedup_ttl_ns = 2_000_000_000;
    burst_window_ns = 8_000;
    sanitize_fiber_stall_ns = 10_000_000_000;
    record_history = false;
    naive_rpc_port = false;
    seed = 0xC0FFEEL;
  }

let with_profile t profile =
  {
    t with
    profile;
    engine =
      {
        t.engine with
        Treaty_storage.Engine.wait_commit_stable = profile.stabilization;
        clog_group_commit = profile.batching;
        read_opt = profile.read_opt;
        block_cache_bytes = profile.block_cache_bytes;
      };
  }
