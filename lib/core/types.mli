(** Shared identifiers and errors of the transaction layer. *)

type node_id = int

type txid = { coord : node_id; seq : int }
(** Global transaction handle: "uniquely identified by a monotonically
    [increasing] sequence number and the node id" (§V-A). *)

val txid_to_pair : txid -> int * int
val txid_of_pair : int * int -> txid
val pp_txid : Format.formatter -> txid -> unit

type isolation = Pessimistic | Optimistic
(** §V-B: pessimistic transactions take locks as they go (2PL); optimistic
    ones validate sequence numbers at commit. *)

type abort_reason =
  | Lock_timeout  (** Could not acquire a lock within the timeout (§V-B). *)
  | Validation_failed  (** OCC conflict at prepare. *)
  | Participant_failed  (** A participant voted FAIL or was unreachable. *)
  | Integrity  (** An integrity/freshness check failed mid-transaction. *)
  | Rolled_back  (** Explicit client rollback. *)
  | Unauthenticated
  | Stabilization_unavailable
      (** The trusted counter group was unreachable past its retry budget,
          so a log entry could not be rollback-protected; the transaction is
          aborted rather than acknowledged on unstable state. *)

val abort_reason_to_string : abort_reason -> string

type 'a txn_result = ('a, abort_reason) result
