module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave

type mode = Read | Write

type waiter = {
  wowner : Types.txid;
  wmode : mode;
  granted : unit Sim.ivar;
}

type lock = {
  mutable writer : Types.txid option;
  mutable readers : Types.txid list;
  mutable waiters : waiter list;  (* FIFO: oldest first *)
}

type stats = {
  mutable acquisitions : int;
  mutable waits : int;
  mutable timeouts : int;
  mutable upgrades : int;
}

type t = {
  sim : Sim.t;
  enclave : Enclave.t;
  shards : (string, lock) Hashtbl.t array;
  owner_keys : (Types.txid, string list ref) Hashtbl.t;
  timeout_ns : int;
  stats : stats;
}

let create sim ~enclave ~shards ~timeout_ns =
  {
    sim;
    enclave;
    shards = Array.init (max 1 shards) (fun _ -> Hashtbl.create 64);
    owner_keys = Hashtbl.create 64;
    timeout_ns;
    stats = { acquisitions = 0; waits = 0; timeouts = 0; upgrades = 0 };
  }

let stats t = t.stats

let shard t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let lock_of t key =
  let tbl = shard t key in
  match Hashtbl.find_opt tbl key with
  | Some l -> l
  | None ->
      let l = { writer = None; readers = []; waiters = [] } in
      Hashtbl.replace tbl key l;
      l

let remember t owner key =
  match Hashtbl.find_opt t.owner_keys owner with
  | Some keys -> if not (List.mem key !keys) then keys := key :: !keys
  | None -> Hashtbl.replace t.owner_keys owner (ref [ key ])

(* Can [owner] be granted [mode] right now? *)
let compatible l ~owner ~mode =
  match mode with
  | Read -> (
      match l.writer with
      | Some w -> w = owner (* reads under own write lock *)
      | None -> true)
  | Write -> (
      match l.writer with
      | Some w -> w = owner
      | None -> (
          match l.readers with
          | [] -> true
          | [ r ] -> r = owner (* sole-reader upgrade *)
          | _ -> false))

let grant l ~owner ~mode =
  match mode with
  | Read -> if not (List.mem owner l.readers) then l.readers <- owner :: l.readers
  | Write ->
      l.writer <- Some owner;
      l.readers <- List.filter (fun r -> r <> owner) l.readers

(* After a release, hand the lock to as many queued waiters as fit. *)
let rec promote_waiters t key l =
  match l.waiters with
  | [] -> ()
  | w :: rest ->
      if compatible l ~owner:w.wowner ~mode:w.wmode then begin
        l.waiters <- rest;
        grant l ~owner:w.wowner ~mode:w.wmode;
        remember t w.wowner key;
        if Sim.try_fill w.granted () then promote_waiters t key l
        else begin
          (* The waiter timed out concurrently: undo the speculative grant. *)
          (match w.wmode with
          | Write -> if l.writer = Some w.wowner then l.writer <- None
          | Read -> l.readers <- List.filter (fun r -> r <> w.wowner) l.readers);
          promote_waiters t key l
        end
      end

let acquire t ~owner ~key mode =
  t.stats.acquisitions <- t.stats.acquisitions + 1;
  Enclave.compute t.enclave 150;
  let l = lock_of t key in
  if compatible l ~owner ~mode then begin
    if mode = Write && List.mem owner l.readers then t.stats.upgrades <- t.stats.upgrades + 1;
    grant l ~owner ~mode;
    remember t owner key;
    Ok ()
  end
  else begin
    t.stats.waits <- t.stats.waits + 1;
    let w = { wowner = owner; wmode = mode; granted = Sim.ivar () } in
    l.waiters <- l.waiters @ [ w ];
    match Sim.read_timeout t.sim ~ns:t.timeout_ns w.granted with
    | Some () -> Ok ()
    | None ->
        t.stats.timeouts <- t.stats.timeouts + 1;
        l.waiters <- List.filter (fun w' -> w' != w) l.waiters;
        (* Mark the ivar so a late promotion sees the timeout. *)
        ignore (Sim.try_fill w.granted ());
        Error `Timeout
  end

let release_all t ~owner =
  match Hashtbl.find_opt t.owner_keys owner with
  | None -> ()
  | Some keys ->
      Hashtbl.remove t.owner_keys owner;
      List.iter
        (fun key ->
          let tbl = shard t key in
          match Hashtbl.find_opt tbl key with
          | None -> ()
          | Some l ->
              if l.writer = Some owner then l.writer <- None;
              l.readers <- List.filter (fun r -> r <> owner) l.readers;
              promote_waiters t key l;
              if l.writer = None && l.readers = [] && l.waiters = [] then
                Hashtbl.remove tbl key)
        !keys

let holds t ~owner ~key mode =
  let tbl = shard t key in
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some l -> (
      match mode with
      | Write -> l.writer = Some owner
      | Read -> List.mem owner l.readers || l.writer = Some owner)

let locked_keys t =
  Array.fold_left
    (fun acc tbl ->
      Hashtbl.fold
        (fun _ l acc -> if l.writer <> None || l.readers <> [] then acc + 1 else acc)
        tbl acc)
    0 t.shards
