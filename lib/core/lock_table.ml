module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Sanitizer = Treaty_util.Sanitizer
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics

type mode = Read | Write

type waiter = {
  wowner : Types.txid;
  wmode : mode;
  granted : unit Sim.ivar;
}

type lock = {
  mutable writer : Types.txid option;
  mutable readers : Types.txid list;
  mutable waiters : waiter list;  (* FIFO: oldest first *)
}

type stats = {
  mutable acquisitions : int;
  mutable waits : int;
  mutable timeouts : int;
  mutable upgrades : int;
}

(* Bound on the TreatySan ended-transaction memory: old entries can no
   longer produce zombie acquisitions worth tracking. *)
let max_ended = 4096

type t = {
  sim : Sim.t;
  enclave : Enclave.t;
  node : int;  (* trace pid lane for lock.wait spans *)
  shards : (string, lock) Hashtbl.t array;
  owner_keys : (Types.txid, string list ref) Hashtbl.t;
  timeout_ns : int;
  stats : stats;
  sanitize : bool;
  ended : (Types.txid, unit) Hashtbl.t;
  ended_fifo : Types.txid Queue.t;
}

let create ?(sanitize = false) ?(node = 0) sim ~enclave ~shards ~timeout_ns =
  {
    sim;
    enclave;
    node;
    shards = Array.init (max 1 shards) (fun _ -> Hashtbl.create 64);
    owner_keys = Hashtbl.create 64;
    timeout_ns;
    stats = { acquisitions = 0; waits = 0; timeouts = 0; upgrades = 0 };
    sanitize;
    ended = Hashtbl.create 64;
    ended_fifo = Queue.create ();
  }

let stats t = t.stats

let shard t key = t.shards.(Treaty_util.Fnv.hash key mod Array.length t.shards)

let lock_of t key =
  let tbl = shard t key in
  match Hashtbl.find_opt tbl key with
  | Some l -> l
  | None ->
      let l = { writer = None; readers = []; waiters = [] } in
      Hashtbl.replace tbl key l;
      l

let remember t owner key =
  match Hashtbl.find_opt t.owner_keys owner with
  | Some keys -> if not (List.mem key !keys) then keys := key :: !keys
  | None -> Hashtbl.replace t.owner_keys owner (ref [ key ])

(* Can [owner] be granted [mode] right now? *)
let compatible l ~owner ~mode =
  match mode with
  | Read -> (
      match l.writer with
      | Some w -> w = owner (* reads under own write lock *)
      | None -> true)
  | Write -> (
      match l.writer with
      | Some w -> w = owner
      | None -> (
          match l.readers with
          | [] -> true
          | [ r ] -> r = owner (* sole-reader upgrade *)
          | _ -> false))

let grant l ~owner ~mode =
  match mode with
  | Read -> if not (List.mem owner l.readers) then l.readers <- owner :: l.readers
  | Write ->
      l.writer <- Some owner;
      l.readers <- List.filter (fun r -> r <> owner) l.readers

(* After a release, hand the lock to as many queued waiters as fit. *)
let rec promote_waiters t key l =
  match l.waiters with
  | [] -> ()
  | w :: rest ->
      if compatible l ~owner:w.wowner ~mode:w.wmode then begin
        l.waiters <- rest;
        grant l ~owner:w.wowner ~mode:w.wmode;
        remember t w.wowner key;
        if Sim.try_fill w.granted () then promote_waiters t key l
        else begin
          (* The waiter timed out concurrently: undo the speculative grant. *)
          (match w.wmode with
          | Write -> if l.writer = Some w.wowner then l.writer <- None
          | Read -> l.readers <- List.filter (fun r -> r <> w.wowner) l.readers);
          promote_waiters t key l
        end
      end

let txid_str (o : Types.txid) = Printf.sprintf "tx(%d,%d)" o.coord o.seq

let acquire ?(span = Trace.none) t ~owner ~key mode =
  t.stats.acquisitions <- t.stats.acquisitions + 1;
  Enclave.compute t.enclave 150;
  if t.sanitize && Hashtbl.mem t.ended owner then
    Sanitizer.record Sanitizer.Lock_zombie
      (Printf.sprintf "%s acquired %S after its txn_end" (txid_str owner) key);
  (* Any acquisition is a hand-off point for the cross-lane write assert. *)
  if t.sanitize then Sanitizer.lane_lock ~txn:(txid_str owner);
  let l = lock_of t key in
  if compatible l ~owner ~mode then begin
    if mode = Write && List.mem owner l.readers then t.stats.upgrades <- t.stats.upgrades + 1;
    grant l ~owner ~mode;
    remember t owner key;
    Ok ()
  end
  else begin
    t.stats.waits <- t.stats.waits + 1;
    let held_before =
      if t.sanitize then
        match Hashtbl.find_opt t.owner_keys owner with
        | Some keys -> List.length !keys
        | None -> 0
      else 0
    in
    let w = { wowner = owner; wmode = mode; granted = Sim.ivar () } in
    l.waiters <- l.waiters @ [ w ];
    let wspan =
      Trace.begin_span ~parent:span ~node:t.node ~cat:"core" "lock.wait"
        ~args:
          [ ("key", Trace.Str key);
            ("mode", Trace.Str (match mode with Read -> "r" | Write -> "w")) ]
    in
    let t0 = Sim.now t.sim in
    let finish status =
      Metrics.observe "lock.wait_ns" (Sim.now t.sim - t0);
      Trace.end_span wspan ~args:[ ("status", Trace.Str status) ]
    in
    match Sim.read_timeout t.sim ~ns:t.timeout_ns w.granted with
    | Some () ->
        finish "granted";
        Ok ()
    | None ->
        finish "timeout";
        t.stats.timeouts <- t.stats.timeouts + 1;
        l.waiters <- List.filter (fun w' -> w' != w) l.waiters;
        (* Mark the ivar so a late promotion sees the timeout. *)
        ignore (Sim.try_fill w.granted ());
        if t.sanitize && held_before > 0 then
          (* Hold-and-wait that ran out the clock: the deadlock-suspect
             pattern, resolved by timeout as §V-B intends — a warning. *)
          Sanitizer.record Sanitizer.Lock_conflict
            (Printf.sprintf
               "%s timed out on %S while holding %d other lock(s) across the wait"
               (txid_str owner) key held_before);
        Error `Timeout
  end

let release_all t ~owner =
  match Hashtbl.find_opt t.owner_keys owner with
  | None -> ()
  | Some keys ->
      Hashtbl.remove t.owner_keys owner;
      List.iter
        (fun key ->
          let tbl = shard t key in
          match Hashtbl.find_opt tbl key with
          | None -> ()
          | Some l ->
              if l.writer = Some owner then l.writer <- None;
              l.readers <- List.filter (fun r -> r <> owner) l.readers;
              promote_waiters t key l;
              if l.writer = None && l.readers = [] && l.waiters = [] then
                Hashtbl.remove tbl key)
        !keys

let txn_begin t ~owner =
  (* A late-delivered op may legitimately re-open the same txid after an
     abort (the participant builds a fresh context); only acquisitions
     between a txn_end and the next txn_begin are zombies. *)
  if t.sanitize then Hashtbl.remove t.ended owner

let txn_end t ~owner =
  release_all t ~owner;
  if t.sanitize && not (Hashtbl.mem t.ended owner) then begin
    Hashtbl.replace t.ended owner ();
    Queue.push owner t.ended_fifo;
    while Queue.length t.ended_fifo > max_ended do
      Hashtbl.remove t.ended (Queue.pop t.ended_fifo)
    done
  end

let leak_check t =
  if t.sanitize then
    Hashtbl.iter
      (fun owner keys ->
        Sanitizer.record Sanitizer.Lock_leak
          (Printf.sprintf "%s still holds %d lock(s) (e.g. %S)" (txid_str owner)
             (List.length !keys)
             (match !keys with k :: _ -> k | [] -> "")))
      t.owner_keys

let write_locked t ~key =
  match Hashtbl.find_opt (shard t key) key with
  | None -> false
  | Some l -> l.writer <> None

let holds t ~owner ~key mode =
  let tbl = shard t key in
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some l -> (
      match mode with
      | Write -> l.writer = Some owner
      | Read -> List.mem owner l.readers || l.writer = Some owner)

let locked_keys t =
  Array.fold_left
    (fun acc tbl ->
      Hashtbl.fold
        (fun _ l acc -> if l.writer <> None || l.readers <> [] then acc + 1 else acc)
        tbl acc)
    0 t.shards
