module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Erpc = Treaty_rpc.Erpc
module Secure_msg = Treaty_rpc.Secure_msg
module Mempool = Treaty_memalloc.Mempool
module Net = Treaty_netsim.Net
module Ssd = Treaty_storage.Ssd
module Cas = Treaty_cas.Cas
module Las = Treaty_cas.Las
module Keys = Treaty_crypto.Keys
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics

(* The CAS's network id must stay clear of the storage-node range (ids
   1..nodes): [Net.register] replaces handlers, so a storage node sharing the
   CAS's id would silently swallow every attestation request. Clients live at
   1000+, so 900 is safe for clusters up to 899 nodes. *)
let cas_id = 900
let code_identity = "treaty-node-v1"

type slot = Live of Node.t | Crashed of Treaty_storage.Ssd.t

type t = {
  sim : Sim.t;
  config : Config.t;
  net : Net.t;
  mutable cas : Cas.t option;
  cas_las : (int, Las.t) Hashtbl.t;
  nodes : slot array;
  master : Keys.master;
  master_secret : string;
  route : string -> int;
  history : Serializability.t option;
}

let sim t = t.sim
let config t = t.config
let net t = t.net
let history t = t.history
let master t = t.master

let node t i =
  match t.nodes.(i) with
  | Live n -> n
  | Crashed _ -> invalid_arg (Printf.sprintf "Cluster.node: node %d is crashed" i)

let node_ids t =
  let ids = ref [] in
  Array.iteri
    (fun i slot -> match slot with Live _ -> ids := (i + 1) :: !ids | Crashed _ -> ())
    t.nodes;
  List.rev !ids

let n_nodes t = Array.length t.nodes
let route_key t key = 1 + (t.route key mod Array.length t.nodes)

let node_ssd t i =
  match t.nodes.(i) with Live n -> Node.ssd n | Crashed ssd -> ssd

let total_committed t =
  Array.fold_left
    (fun acc slot ->
      match slot with Live n -> acc + (Node.stats n).committed | Crashed _ -> acc)
    0 t.nodes

let total_aborted t =
  Array.fold_left
    (fun acc slot ->
      match slot with Live n -> acc + (Node.stats n).aborted | Crashed _ -> acc)
    0 t.nodes

(* Commit-pipeline batching counters aggregated over live nodes, as ordered
   (name, value) pairs. The names double as the registry gauge names (under
   a "pipeline." prefix); the fixed order keeps renderings deterministic. *)
let pipeline_counters t =
  let wal_batches = ref 0
  and wal_items = ref 0
  and clog_batches = ref 0
  and clog_items = ref 0
  and rote_rounds = ref 0
  and rote_increments = ref 0
  and rote_targets = ref 0
  and cc_submits = ref 0
  and cc_rounds = ref 0
  and cc_failed_waits = ref 0
  and bursts_sent = ref 0
  and burst_msgs = ref 0
  and crypto_ns = ref 0 in
  Array.iter
    (fun slot ->
      match slot with
      | Crashed _ -> ()
      | Live n ->
          let module GC = Treaty_storage.Group_commit in
          let engine = Node.engine n in
          let gc_add (b, i) = function
            | None -> ()
            | Some (s : GC.stats) ->
                b := !b + s.batches;
                i := !i + s.items
          in
          gc_add (wal_batches, wal_items)
            (Treaty_storage.Engine.wal_group_stats engine);
          gc_add (clog_batches, clog_items)
            (Treaty_storage.Engine.clog_group_stats engine);
          let rs = Treaty_counter.Rote.stats (Node.rote n) in
          rote_rounds := !rote_rounds + rs.rounds;
          rote_increments := !rote_increments + rs.increments;
          rote_targets := !rote_targets + rs.targets;
          (match Node.counter_client n with
          | None -> ()
          | Some cc ->
              let cs = Treaty_counter.Counter_client.stats cc in
              cc_submits := !cc_submits + cs.submits;
              cc_rounds := !cc_rounds + cs.rounds_started;
              cc_failed_waits := !cc_failed_waits + cs.failed_waits);
          let es = Erpc.stats (Node.rpc n) in
          bursts_sent := !bursts_sent + es.bursts_sent;
          burst_msgs := !burst_msgs + es.burst_msgs;
          crypto_ns :=
            !crypto_ns + (Treaty_tee.Enclave.stats (Node.enclave n)).crypto_ns)
    t.nodes;
  [
    ("wal.items", !wal_items);
    ("wal.batches", !wal_batches);
    ("clog.items", !clog_items);
    ("clog.batches", !clog_batches);
    ("rote.rounds", !rote_rounds);
    ("rote.increments", !rote_increments);
    ("rote.targets", !rote_targets);
    ("counter.submits", !cc_submits);
    ("counter.rounds", !cc_rounds);
    ("counter.failed_waits", !cc_failed_waits);
    ("rpc.bursts_sent", !bursts_sent);
    ("rpc.burst_msgs", !burst_msgs);
    ("crypto.ns", !crypto_ns);
  ]

let publish_metrics t =
  List.iter
    (fun (name, v) -> Metrics.set_gauge ("pipeline." ^ name) v)
    (pipeline_counters t);
  List.iter
    (fun (label, (p : Treaty_sched.Scheduler.fiber_profile)) ->
      let g suffix v =
        Metrics.set_gauge (Printf.sprintf "fiber.%s.%s" label suffix) v
      in
      g "spawned" p.spawned;
      g "completed" p.completed;
      g "wakeups" p.wakeups;
      g "run_ns" p.run_ns;
      g "suspended_ns" p.suspended_ns)
    (Sim.fiber_profile t.sim)

let pipeline_summary t =
  let c = pipeline_counters t in
  let v name = List.assoc name c in
  let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  Printf.sprintf
    "wal %d/%d (%.2f/batch) clog %d/%d (%.2f/batch) rote rounds=%d incs=%d \
     targets=%d (%.2f logs/round-pair) counter submits=%d rounds=%d \
     (%.2f/round) failed=%d bursts %d/%d (%.2f msgs/pkt)"
    (v "wal.items") (v "wal.batches")
    (ratio (v "wal.items") (v "wal.batches"))
    (v "clog.items") (v "clog.batches")
    (ratio (v "clog.items") (v "clog.batches"))
    (v "rote.rounds") (v "rote.increments") (v "rote.targets")
    (ratio (v "rote.targets") (v "rote.increments"))
    (v "counter.submits") (v "counter.rounds")
    (ratio (v "counter.submits") (v "counter.rounds"))
    (v "counter.failed_waits") (v "rpc.burst_msgs") (v "rpc.bursts_sent")
    (ratio (v "rpc.burst_msgs") (v "rpc.bursts_sent"))

(* A minimal plain endpoint used only during attestation, before the node
   has any cluster secrets. Its network registration is replaced when the
   real node endpoint comes up. *)
let bootstrap_rpc t ~node_id =
  let enclave =
    Enclave.create t.sim ~mode:t.config.profile.tee ~cost:t.config.cost ~cores:2
      ~node_id ~code_identity
  in
  let pool = Mempool.create enclave in
  let config = Erpc.default_config ~security:Secure_msg.Plain in
  (enclave, Erpc.create t.sim ~net:t.net ~enclave ~pool ~config ~node_id ())

let attest_node t ~node_id =
  let enclave, rpc = bootstrap_rpc t ~node_id in
  let las =
    match Hashtbl.find_opt t.cas_las node_id with
    | Some las -> las
    | None ->
        let las = Las.deploy t.sim ~node_id in
        Hashtbl.replace t.cas_las node_id las;
        (match t.cas with Some cas -> Cas.deploy_las cas las | None -> ());
        las
  in
  let result = Cas.Attest.run ~rpc ~enclave ~las ~cas_node:cas_id in
  Erpc.shutdown rpc;
  result

let deps_of t ~node_id =
  {
    Node.sim = t.sim;
    config = t.config;
    net = t.net;
    node_id;
    peers = List.init (Array.length t.nodes) (fun i -> i + 1);
    route = (fun key -> 1 + (t.route key mod Array.length t.nodes));
    master = t.master;
    history = t.history;
  }

let create sim config ?route () =
  let route =
    (* Deterministic by construction: Hashtbl.hash here would make key
       routing a reproducibility hazard for seeded runs. *)
    Option.value route ~default:Treaty_util.Fnv.hash
  in
  (* Observability is reset-then-enabled per cluster so two seeded runs in
     one process start from identical collector state (the determinism
     contract of `treaty chaos --trace`). *)
  if config.Config.profile.trace then begin
    Trace.reset ();
    Trace.enable ~clock:(fun () -> Sim.now sim)
  end;
  if config.Config.profile.metrics then begin
    Metrics.reset ();
    Metrics.enable ();
    Sim.enable_fiber_profile sim
  end;
  if config.Config.profile.sanitize then begin
    Sim.enable_fiber_watchdog sim
      ~threshold_ns:config.Config.sanitize_fiber_stall_ns
      ~report:(fun detail ->
        Treaty_util.Sanitizer.record Treaty_util.Sanitizer.Fiber_stall detail);
    (* Plaintext taint only means something when sealing actually happens;
       plain profiles move plaintext everywhere by design. *)
    if config.Config.profile.encryption then Treaty_crypto.Taint.enable ()
  end;
  let net = Net.create sim config.Config.cost in
  let master_secret =
    Printf.sprintf "cluster-master-%Ld" (Treaty_sim.Rng.next_int64 (Sim.rng sim))
  in
  let t =
    {
      sim;
      config;
      net;
      cas = None;
      cas_las = Hashtbl.create 8;
      nodes = Array.init config.nodes (fun _ -> Crashed (Ssd.create sim config.cost));
      master = Keys.master_of_secret master_secret;
      master_secret;
      route;
      history = (if config.record_history then Some (Serializability.create ()) else None);
    }
  in
  (* CAS bootstrap: its own enclave and endpoint, attested over IAS. *)
  let cas_enclave =
    Enclave.create sim ~mode:config.profile.tee ~cost:config.cost ~cores:2
      ~node_id:cas_id ~code_identity:"treaty-cas-v1"
  in
  let cas_pool = Mempool.create cas_enclave in
  let cas_rpc =
    Erpc.create sim ~net ~enclave:cas_enclave ~pool:cas_pool
      ~config:(Erpc.default_config ~security:Secure_msg.Plain)
      ~node_id:cas_id ()
  in
  let expected_measurement = Treaty_crypto.Sha256.digest_string code_identity in
  match
    Cas.bootstrap ~rpc:cas_rpc ~enclave:cas_enclave ~master_secret
      ~expected_measurement
      ~config_blob:(Printf.sprintf "treaty-cluster;nodes=%d" config.nodes)
  with
  | Error `Ias_rejected -> Error "CAS attestation rejected by IAS"
  | Ok cas -> (
      t.cas <- Some cas;
      (* Attest every storage node concurrently: the handshakes are
         independent (one bootstrap endpoint each, a shared CAS), and a
         sequential walk would put 100-node bootstrap at ~200 ms of
         simulated time — deep into any chaos fault schedule. Spawn order
         is fixed, so the interleaving is a pure function of the seed.
         Node startup stays sequential in id order below. *)
      let results = Array.make config.nodes None in
      let all_done = Sim.ivar () in
      let pending = ref config.nodes in
      for i = 0 to config.nodes - 1 do
        Sim.spawn sim (fun () ->
            results.(i) <- Some (attest_node t ~node_id:(i + 1));
            decr pending;
            if !pending = 0 then Sim.fill all_done ())
      done;
      Sim.read sim all_done;
      let failed = ref None in
      for i = 0 to config.nodes - 1 do
        if !failed = None then
          match results.(i) with
          | None | Some (Error `Rejected) ->
              failed := Some "node attestation rejected"
          | Some (Error `Cas_unreachable) -> failed := Some "CAS unreachable"
          | Some (Ok provision) ->
              if provision.Cas.Attest.master_secret <> master_secret then
                failed := Some "provisioned secret mismatch"
              else t.nodes.(i) <- Live (Node.create (deps_of t ~node_id:(i + 1)))
      done;
      match !failed with Some m -> Error m | None -> Ok t)

let client_token t ~client_id =
  match t.cas with
  | None -> Error `Cas_down
  | Some cas -> Ok (Cas.register_client cas ~client_id)

let crash_node t i =
  match t.nodes.(i) with
  | Live n -> t.nodes.(i) <- Crashed (Node.crash n)
  | Crashed _ -> ()

let restart_node t i =
  match t.nodes.(i) with
  | Live _ -> Ok ()
  | Crashed ssd -> (
      let node_id = i + 1 in
      (* A recovering node must re-attest before it can obtain the cluster
         secrets (§VI); a dead CAS therefore blocks recovery. *)
      match attest_node t ~node_id with
      | Error `Cas_unreachable -> Error "cannot recover: CAS unreachable"
      | Error `Rejected -> Error "cannot recover: attestation rejected"
      | Ok provision ->
          if provision.Cas.Attest.master_secret <> t.master_secret then
            Error "cannot recover: provisioned secret mismatch"
          else (
            match Node.recover_with (deps_of t ~node_id) ~ssd with
            | Error m -> Error m
            | Ok n ->
                t.nodes.(i) <- Live n;
                Ok ()))

let check_quiescent t =
  let leaks = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Crashed _ -> ()
      | Live n ->
          let r = Node.residual_state n in
          if Node.residual_total r > 0 then
            leaks :=
              Printf.sprintf "node %d: %s" (i + 1) (Node.residual_to_string r)
              :: !leaks)
    t.nodes;
  match !leaks with
  | [] -> Ok ()
  | l -> Error (String.concat "; " (List.rev l))

let sanitize_check t =
  (* Sweep every live node's lock table for residual holders and its engine
     for orphaned snapshot retentions, then judge the run by the collected
     violations (warnings don't fail it). An orphaned retention means some
     path dropped a transaction without [Local_txn.finish] (or a read-only
     fast-path read leaked its pin): the compaction GC watermark is stuck. *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Live n ->
          Lock_table.leak_check (Node.locks n);
          Treaty_memalloc.Mempool.leak_check (Node.pool n)
            ~what:(Printf.sprintf "node %d msgbufs" (i + 1));
          let pinned =
            Treaty_storage.Engine.active_snapshot_count (Node.engine n)
          in
          if pinned > 0 then
            Treaty_util.Sanitizer.record Treaty_util.Sanitizer.Snapshot_leak
              (Printf.sprintf "node %d: %d snapshot retention(s) at quiesce"
                 (i + 1) pinned)
      | Crashed _ -> ())
    t.nodes;
  (* No final watchdog scan: fibers still parked at drain-out were abandoned
     by design (see Sim.enable_fiber_watchdog); the periodic in-run scans
     already caught genuine starvation. *)
  let module San = Treaty_util.Sanitizer in
  if San.violations () = 0 then Ok () else Error (San.report ())

let crash_cas t =
  match t.cas with
  | Some cas ->
      Cas.shutdown cas;
      t.cas <- None
  | None -> ()

let shutdown t =
  Array.iter (function Live n -> Node.stop n | Crashed _ -> ()) t.nodes;
  crash_cas t;
  if t.config.profile.sanitize then Treaty_crypto.Taint.disable ()
