(** Client library: the transactional API of §IV-A.

    Clients authenticate with the CAS, register with the storage nodes over
    the (1 GbE) client network, and then drive interactive transactions:
    [begin_txn] picks a coordinator, [get]/[put]/[delete] execute operations
    through it, and [commit]/[rollback] end the transaction. Any failed
    operation aborts the whole transaction coordinator-side; the client sees
    the abort reason. *)

type t
type txn

val connect :
  Cluster.t ->
  client_id:int ->
  (t, [ `Auth_failed | `Cas_down ]) result
(** Obtain a token from the CAS and register with every node. Must run in a
    fiber. *)

exception Connect_failed of string

val connect_exn : Cluster.t -> client_id:int -> t
(** Like {!connect}, but raises {!Connect_failed} with the reason — for
    harness code that treats a failed connect as fatal. *)

val client_id : t -> int

val begin_txn : t -> ?coord:int -> unit -> txn Types.txn_result
(** Start a transaction at a coordinator (wire node id; default:
    round-robin over the nodes). *)

val coordinator : txn -> int
val tx_seq : txn -> int

val get : t -> txn -> string -> string option Types.txn_result

val scan : t -> txn -> lo:string -> hi:string -> (string * string) list Types.txn_result
(** Snapshot-consistent range scan over the closed interval from [lo] to
    [hi], across all shards, merged with the transaction's own writes. Under
    2PL the returned keys are read-locked (no gap locks: phantoms are
    possible). *)

val read_only : t -> string list -> (string * string option) list Types.txn_result
(** Zero-RPC read-only fast path: execute a client-declared read-only
    transaction without begin/commit rounds, locks, 2PC or stabilization
    waits. Keys are grouped by owning shard; each group is one RPC answered
    from a retained MVCC snapshot at the owner. Results come back in input
    order. Each per-shard batch is an individually serializable read-only
    transaction (a consistent committed prefix of that shard); a call whose
    keys span shards gets per-shard snapshot consistency, not one global
    snapshot — use {!with_txn} when cross-shard atomicity matters. *)

val put : t -> txn -> string -> string -> unit Types.txn_result
val delete : t -> txn -> string -> unit Types.txn_result
val commit : t -> txn -> unit Types.txn_result
val rollback : t -> txn -> unit

val disconnect : t -> unit

val with_txn :
  t -> ?coord:int -> (txn -> 'a Types.txn_result) -> 'a Types.txn_result
(** Begin, run the body, commit on [Ok] (rolling back if the body failed).
    No automatic retry — workloads decide their own retry policy. *)
