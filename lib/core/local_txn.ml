module Engine = Treaty_storage.Engine
module Memtable = Treaty_storage.Memtable
module Op = Treaty_storage.Op
module Enclave = Treaty_tee.Enclave
module Trace = Treaty_obs.Trace

type t = {
  engine : Engine.t;
  locks : Lock_table.t;
  isolation : Types.isolation;
  txid : Types.txid;
  mutable span : Trace.span;
      (* Parents lock.wait spans. Mutable because a participant slice spans
         many RPC handlers: each op re-points it at the live handler span
         (the first op's span is closed by the time a later op blocks). *)
  snapshot : int;
  mutable write_list : (string * Op.t) list;  (* newest first *)
  write_index : (string, Op.t) Hashtbl.t;
  mutable reads : (string * int) list;
  read_index : (string, int) Hashtbl.t;
      (* Mirrors [reads] for O(1) dedup: a read-read of the same key must
         not record (or OCC-lock, or validate) the key twice. The first
         observation wins — under 2PL the read lock held since then pins
         the version, under OCC both reads are at the begin snapshot, so a
         repeat observation can never legitimately differ. *)
  mutable buffer_bytes : int;
  mutable installed_seq : int option;
  mutable finished : bool;
}

let begin_ ?(span = Trace.none) ~engine ~locks ~isolation ~tx () =
  Lock_table.txn_begin locks ~owner:tx;
  let snapshot = Engine.snapshot engine in
  Engine.retain_snapshot engine snapshot;
  {
    engine;
    locks;
    isolation;
    txid = tx;
    span;
    snapshot;
    write_list = [];
    write_index = Hashtbl.create 8;
    reads = [];
    read_index = Hashtbl.create 8;
    buffer_bytes = 0;
    installed_seq = None;
    finished = false;
  }

let tx t = t.txid
let snapshot t = t.snapshot
let set_span t span = t.span <- span

let lock t key mode =
  match t.isolation with
  | Types.Pessimistic -> (
      match Lock_table.acquire ~span:t.span t.locks ~owner:t.txid ~key mode with
      | Ok () -> Ok ()
      | Error `Timeout -> Error `Timeout)
  | Types.Optimistic -> Ok ()

let buffer_write t key op =
  (* Tx buffers live in enclave memory (§VII-D). *)
  let bytes = String.length key + Op.size op + 32 in
  t.buffer_bytes <- t.buffer_bytes + bytes;
  Enclave.alloc_enclave (Treaty_storage.Sec.enclave (Engine.sec t.engine)) bytes;
  (match Hashtbl.find_opt t.write_index key with
  | Some _ -> t.write_list <- List.filter (fun (k, _) -> k <> key) t.write_list
  | None -> ());
  Hashtbl.replace t.write_index key op;
  t.write_list <- (key, op) :: t.write_list

let record_read t key seq =
  if not (Hashtbl.mem t.read_index key) then begin
    Hashtbl.add t.read_index key seq;
    t.reads <- (key, seq) :: t.reads
  end

let get_with_seq t key =
  match Hashtbl.find_opt t.write_index key with
  | Some (Op.Put v) -> Ok (Some v, 0) (* read-my-own-writes *)
  | Some Op.Delete -> Ok (None, 0)
  | None -> (
      match lock t key Lock_table.Read with
      | Error `Timeout -> Error `Timeout
      | Ok () ->
          (* Under 2PL the lock may have been waited on: read the freshest
             committed version at grant time, not the begin-time snapshot —
             reading stale data under a lock breaks serializability. OCC
             reads at its snapshot and validates instead. *)
          let read_snapshot =
            match t.isolation with
            | Types.Pessimistic -> Engine.snapshot t.engine
            | Types.Optimistic -> t.snapshot
          in
          let lookup = Engine.get ~span:t.span t.engine ~key ~snapshot:read_snapshot in
          let seq_seen, value =
            match lookup with
            | Memtable.Found (seq, v) -> (seq, Some v)
            | Memtable.Deleted seq -> (seq, None)
            | Memtable.Not_found -> (0, None)
          in
          record_read t key seq_seen;
          Ok (value, seq_seen))

let get t key =
  match get_with_seq t key with Ok (v, _) -> Ok v | Error `Timeout -> Error `Timeout

let scan t ~lo ~hi =
  let snapshot =
    match t.isolation with
    | Types.Pessimistic -> Engine.snapshot t.engine
    | Types.Optimistic -> t.snapshot
  in
  (* Discover the keys, then lock them, then re-read under the locks: a
     writer may commit between discovery and lock grant, and 2PL semantics
     require the returned values to be the locked (current) ones. *)
  let discovered = Engine.scan ~span:t.span t.engine ~lo ~hi ~snapshot in
  let rec lock_all = function
    | [] -> Ok ()
    | (key, _) :: rest -> (
        match lock t key Lock_table.Read with
        | Ok () -> lock_all rest
        | Error `Timeout -> Error `Timeout)
  in
  match lock_all discovered with
  | Error `Timeout -> Error `Timeout
  | Ok () ->
      let read_snapshot =
        match t.isolation with
        | Types.Pessimistic -> Engine.snapshot t.engine
        | Types.Optimistic -> t.snapshot
      in
      let committed =
        List.filter_map
          (fun (key, _) ->
            match Engine.get ~span:t.span t.engine ~key ~snapshot:read_snapshot with
            | Memtable.Found (seq, v) ->
                record_read t key seq;
                Some (key, v)
            | Memtable.Deleted seq ->
                record_read t key seq;
                None
            | Memtable.Not_found ->
                record_read t key 0;
                None)
          discovered
      in
      (* Overlay the transaction's own writes in the range. *)
      let mine =
        Hashtbl.fold
          (fun k op acc -> if k >= lo && k <= hi then (k, op) :: acc else acc)
          t.write_index []
      in
      let result =
        List.filter (fun (k, _) -> not (List.mem_assoc k mine)) committed
        @ List.filter_map
            (fun (k, op) -> match op with Op.Put v -> Some (k, v) | Op.Delete -> None)
            mine
      in
      Ok (List.sort compare result)

let put t key value =
  match lock t key Lock_table.Write with
  | Error `Timeout -> Error `Timeout
  | Ok () ->
      buffer_write t key (Op.Put value);
      Ok ()

let delete t key =
  match lock t key Lock_table.Write with
  | Error `Timeout -> Error `Timeout
  | Ok () ->
      buffer_write t key Op.Delete;
      Ok ()

let writes t = List.rev t.write_list
let read_set t = List.rev t.reads

let validate_reads t =
  (* OCC: every key we read must still be at the version we saw. *)
  List.for_all
    (fun (key, seq_seen) ->
      let current =
        match Engine.get ~span:t.span t.engine ~key ~snapshot:(Engine.snapshot t.engine) with
        | Memtable.Found (seq, _) | Memtable.Deleted seq -> seq
        | Memtable.Not_found -> 0
      in
      current = seq_seen)
    t.reads

let prepare t =
  match t.isolation with
  | Types.Pessimistic -> Ok ()
  | Types.Optimistic ->
      (* Lock the write set and the read set, then validate. The read locks
         keep the validated versions current until the writes install —
         without them a concurrent commit between validation and
         installation breaks serializability. *)
      let rec lock_keys mode = function
        | [] -> Ok ()
        | key :: rest -> (
            match Lock_table.acquire ~span:t.span t.locks ~owner:t.txid ~key mode with
            | Ok () -> lock_keys mode rest
            | Error `Timeout -> Error `Timeout)
      in
      (match lock_keys Lock_table.Write (List.map fst (writes t)) with
      | Error `Timeout -> Error `Timeout
      | Ok () -> (
          match lock_keys Lock_table.Read (List.map fst t.reads) with
          | Error `Timeout -> Error `Timeout
          | Ok () -> if validate_reads t then Ok () else Error `Conflict))

let set_installed_seq t seq = t.installed_seq <- Some seq

let installed t =
  match t.installed_seq with
  | None -> []
  | Some seq -> List.map (fun (k, _) -> (k, seq)) (writes t)

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Engine.release_snapshot t.engine t.snapshot;
    Lock_table.txn_end t.locks ~owner:t.txid;
    Enclave.free_enclave
      (Treaty_storage.Sec.enclave (Engine.sec t.engine))
      t.buffer_bytes
  end
