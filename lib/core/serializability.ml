type txinfo = {
  tx : Types.txid;
  reads : (string * int) list;
  writes : (string * int) list;
}

type t = { mutable txs : txinfo list; mutable count : int }

let create () = { txs = []; count = 0 }

let record_commit t ~tx ~reads ~writes =
  t.txs <- { tx; reads; writes } :: t.txs;
  t.count <- t.count + 1

let committed t = t.count

type verdict = Serializable | Cycle of Types.txid list

let pp_verdict ppf = function
  | Serializable -> Format.fprintf ppf "serializable"
  | Cycle txs ->
      Format.fprintf ppf "cycle: %a"
        (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p " -> ") Types.pp_txid)
        txs

let check t =
  let txs = Array.of_list (List.rev t.txs) in
  let n = Array.length txs in
  let index_of_tx = Hashtbl.create n in
  Array.iteri (fun i ti -> Hashtbl.replace index_of_tx ti.tx i) txs;
  (* Per key: installed versions sorted by seq, each with its writer. *)
  let versions : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i ti ->
      List.iter
        (fun (key, seq) ->
          match Hashtbl.find_opt versions key with
          | Some l -> l := (seq, i) :: !l
          | None -> Hashtbl.replace versions key (ref [ (seq, i) ]))
        ti.writes)
    txs;
  Hashtbl.iter (fun _ l -> l := List.sort compare !l) versions;
  let edges = Array.make n [] in
  let add_edge a b = if a <> b then edges.(a) <- b :: edges.(a) in
  let writer_of key seq =
    match Hashtbl.find_opt versions key with
    | None -> None
    | Some l -> List.assoc_opt seq !l
  in
  let next_writer_after key seq =
    match Hashtbl.find_opt versions key with
    | None -> None
    | Some l -> List.find_opt (fun (s, _) -> s > seq) !l |> Option.map snd
  in
  Array.iteri
    (fun i ti ->
      (* ww: version order on each key. *)
      List.iter
        (fun (key, seq) ->
          match next_writer_after key seq with
          | Some j -> add_edge i j
          | None -> ())
        ti.writes;
      (* wr and rw edges from reads. *)
      List.iter
        (fun (key, seq) ->
          (match writer_of key seq with Some j -> add_edge j i | None -> ());
          match next_writer_after key seq with
          | Some j -> add_edge i j
          | None -> ())
        ti.reads)
    txs;
  (* Cycle detection: iterative DFS with colors. *)
  let color = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
  let parent = Array.make n (-1) in
  let cycle = ref None in
  let rec dfs i =
    if !cycle = None then begin
      color.(i) <- 1;
      List.iter
        (fun j ->
          if !cycle = None then
            if color.(j) = 1 then begin
              (* Reconstruct the cycle j -> ... -> i -> j. *)
              let rec walk k acc = if k = j then k :: acc else walk parent.(k) (k :: acc) in
              cycle := Some (walk i [])
            end
            else if color.(j) = 0 then begin
              parent.(j) <- i;
              dfs j
            end)
        edges.(i);
      color.(i) <- 2
    end
  in
  for i = 0 to n - 1 do
    if color.(i) = 0 && !cycle = None then dfs i
  done;
  match !cycle with
  | None -> Serializable
  | Some idxs -> Cycle (List.map (fun i -> txs.(i).tx) idxs)

let dump_key t key =
  let lines =
    List.filter_map
      (fun ti ->
        let hits tag l =
          List.filter_map
            (fun (k, s) -> if k = key then Some (Printf.sprintf "%s@%d" tag s) else None)
            l
        in
        match hits "r" ti.reads @ hits "w" ti.writes with
        | [] -> None
        | hs ->
            Some
              (Printf.sprintf "  %s: %s"
                 (Format.asprintf "%a" Types.pp_txid ti.tx)
                 (String.concat " " hs)))
      (List.rev t.txs)
  in
  Printf.sprintf "%s (commit-record order):\n%s" key (String.concat "\n" lines)

let dump_tx t tx =
  match List.find_opt (fun ti -> ti.tx = tx) t.txs with
  | None -> "(not recorded)"
  | Some ti ->
      let fmt l = String.concat ", " (List.map (fun (k, s) -> Printf.sprintf "%s@%d" k s) l) in
      Printf.sprintf "reads=[%s] writes=[%s]" (fmt ti.reads) (fmt ti.writes)

let dump_cycle t txs =
  let tx_lines =
    List.map
      (fun tx -> Format.asprintf "%a: %s" Types.pp_txid tx (dump_tx t tx))
      txs
  in
  let keys =
    List.sort_uniq compare
      (List.concat_map
         (fun tx ->
           match List.find_opt (fun ti -> ti.tx = tx) t.txs with
           | None -> []
           | Some ti -> List.map fst ti.reads @ List.map fst ti.writes)
         txs)
  in
  Printf.sprintf "cycle through [%s]\n%s\n%s"
    (String.concat "; " (List.map (Format.asprintf "%a" Types.pp_txid) txs))
    (String.concat "\n" tx_lines)
    (String.concat "\n" (List.map (dump_key t) keys))
