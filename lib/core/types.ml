type node_id = int
type txid = { coord : node_id; seq : int }

let txid_to_pair { coord; seq } = (coord, seq)
let txid_of_pair (coord, seq) = { coord; seq }
let pp_txid ppf { coord; seq } = Format.fprintf ppf "tx(%d,%d)" coord seq

type isolation = Pessimistic | Optimistic

type abort_reason =
  | Lock_timeout
  | Validation_failed
  | Participant_failed
  | Integrity
  | Rolled_back
  | Unauthenticated
  | Stabilization_unavailable

let abort_reason_to_string = function
  | Lock_timeout -> "lock timeout"
  | Validation_failed -> "validation failed"
  | Participant_failed -> "participant failed"
  | Integrity -> "integrity violation"
  | Rolled_back -> "rolled back"
  | Unauthenticated -> "unauthenticated"
  | Stabilization_unavailable -> "stabilization unavailable"

type 'a txn_result = ('a, abort_reason) result
