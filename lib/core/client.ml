module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Erpc = Treaty_rpc.Erpc
module Secure_msg = Treaty_rpc.Secure_msg
module Mempool = Treaty_memalloc.Mempool
module Net = Treaty_netsim.Net
module Keys = Treaty_crypto.Keys
module Wire = Treaty_util.Wire

type t = {
  sim : Sim.t;
  rpc : Erpc.t;
  client_id : int;
  token : string;
  nodes : int array;
  route : string -> int;
      (* The cluster's shard map: read-only transactions are routed straight
         to the owning node instead of through a 2PC coordinator. *)
  mutable rr : int;
  op_timeout : int;
}

type txn = { t_coord : int; t_seq : int }

let client_id t = t.client_id
let coordinator txn = txn.t_coord
let tx_seq txn = txn.t_seq

let register_with t node =
  let b = Buffer.create 64 in
  Wire.w64 b t.client_id;
  Wire.wstr b t.token;
  match Erpc.call t.rpc ~dst:node ~kind:Node.k_client_register (Buffer.contents b) with
  | Ok reply -> String.length reply = 1 && reply.[0] = '\000'
  | Error (`Timeout | `Tampered) -> false

let connect cluster ~client_id =
  let sim = Cluster.sim cluster in
  let config = Cluster.config cluster in
  match Cluster.client_token cluster ~client_id with
  | Error `Cas_down -> Error `Cas_down
  | Ok token ->
      let enclave =
        (* Clients run on their own trusted machines, outside SGX. *)
        Enclave.create sim ~mode:Enclave.Native ~cost:config.cost ~cores:4
          ~node_id:(1000 + client_id) ~code_identity:"treaty-client"
      in
      let pool = Mempool.create enclave in
      let security =
        if config.profile.encryption then
          Secure_msg.Secure (Keys.network_key (Cluster.master cluster))
        else Secure_msg.Plain
      in
      let rpc =
        Erpc.create sim ~net:(Cluster.net cluster) ~enclave ~pool
          ~config:
            {
              (Erpc.default_config ~security) with
              Erpc.timeout_ns = config.client_op_timeout_ns;
            }
          ~node_id:(1000 + client_id) ~net_config:Net.client_config ()
      in
      let t =
        {
          sim;
          rpc;
          client_id;
          token;
          nodes = Array.of_list (Cluster.node_ids cluster);
          route = (fun key -> Cluster.route_key cluster key);
          rr = client_id;
          op_timeout = config.client_op_timeout_ns;
        }
      in
      let all_registered = Array.for_all (register_with t) t.nodes in
      if all_registered then Ok t
      else begin
        Erpc.shutdown rpc;
        Error `Auth_failed
      end

exception Connect_failed of string

let connect_exn cluster ~client_id =
  match connect cluster ~client_id with
  | Ok t -> t
  | Error `Auth_failed -> raise (Connect_failed "client authentication failed")
  | Error `Cas_down -> raise (Connect_failed "CAS down")

let pick_coord t =
  t.rr <- t.rr + 1;
  t.nodes.(t.rr mod Array.length t.nodes)

let rec begin_attempt t ~retry coord =
  let b = Buffer.create 8 in
  Wire.w64 b t.client_id;
  match
    Erpc.call t.rpc ~dst:coord ~kind:Node.k_client_begin
      ~timeout_ns:t.op_timeout (Buffer.contents b)
  with
  | Error (`Timeout | `Tampered) -> Error Types.Participant_failed
  | Ok reply -> (
      let r = Wire.reader reply in
      match Wire.r8 r with
      | exception Wire.Malformed _ -> Error Types.Participant_failed
      | 0 -> Ok { t_coord = coord; t_seq = Wire.r64 r }
      | 3 ->
          (* A restarted node has an empty client registry: re-register
             (re-presenting the CAS token) and retry once. *)
          if retry && register_with t coord then
            begin_attempt t ~retry:false coord
          else Error Types.Unauthenticated
      | _ -> Error Types.Participant_failed)

let begin_txn t ?coord () =
  let coord = Option.value coord ~default:(pick_coord t) in
  begin_attempt t ~retry:true coord

let send_op t txn op =
  let b = Buffer.create 64 in
  Wire.w64 b t.client_id;
  Wire.w64 b txn.t_seq;
  (match op with
  | `Get key ->
      Wire.w8 b 0;
      Wire.wstr b key
  | `Put (key, value) ->
      Wire.w8 b 1;
      Wire.wstr b key;
      Wire.wstr b value
  | `Del key ->
      Wire.w8 b 2;
      Wire.wstr b key);
  match
    Erpc.call t.rpc ~dst:txn.t_coord ~kind:Node.k_client_op
      ~timeout_ns:t.op_timeout (Buffer.contents b)
  with
  | Error (`Timeout | `Tampered) -> Error Types.Participant_failed
  | Ok reply -> (
      let r = Wire.reader reply in
      match Wire.r8 r with
      | exception Wire.Malformed _ -> Error Types.Participant_failed
      | 0 ->
          let value = if Wire.r8 r = 1 then Some (Wire.rstr r) else None in
          Ok value
      | 1 -> Error Types.Lock_timeout (* tx auto-aborted coordinator-side *)
      | 2 -> Error Types.Rolled_back
      | _ -> Error Types.Unauthenticated)

let get t txn key = send_op t txn (`Get key)

let scan t txn ~lo ~hi =
  let b = Buffer.create 64 in
  Wire.w64 b t.client_id;
  Wire.w64 b txn.t_seq;
  Wire.wstr b lo;
  Wire.wstr b hi;
  match
    Erpc.call t.rpc ~dst:txn.t_coord ~kind:Node.k_client_scan
      ~timeout_ns:t.op_timeout (Buffer.contents b)
  with
  | Error (`Timeout | `Tampered) -> Error Types.Participant_failed
  | Ok reply -> (
      let r = Wire.reader reply in
      match Wire.r8 r with
      | exception Wire.Malformed _ -> Error Types.Participant_failed
      | 0 -> (
          match
            Wire.rlist r (fun r ->
                let k = Wire.rstr r in
                let v = Wire.rstr r in
                (k, v))
          with
          | kvs -> Ok kvs
          | exception Wire.Malformed _ -> Error Types.Participant_failed)
      | 1 -> Error Types.Lock_timeout
      | 2 -> Error Types.Rolled_back
      | _ -> Error Types.Unauthenticated)

let put t txn key value =
  match send_op t txn (`Put (key, value)) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let delete t txn key =
  match send_op t txn (`Del key) with Ok _ -> Ok () | Error e -> Error e

let commit t txn =
  let b = Buffer.create 16 in
  Wire.w64 b t.client_id;
  Wire.w64 b txn.t_seq;
  match
    Erpc.call t.rpc ~dst:txn.t_coord ~kind:Node.k_client_commit
      ~timeout_ns:t.op_timeout (Buffer.contents b)
  with
  | Error (`Timeout | `Tampered) -> Error Types.Participant_failed
  | Ok reply -> (
      let r = Wire.reader reply in
      match Wire.r8 r with
      | exception Wire.Malformed _ -> Error Types.Participant_failed
      | 0 -> Ok ()
      | 1 -> (
          match Wire.r8 r with
          | 0 -> Error Types.Lock_timeout
          | 1 -> Error Types.Validation_failed
          | 2 -> Error Types.Participant_failed
          | 4 -> Error Types.Stabilization_unavailable
          | _ | (exception Wire.Malformed _) -> Error Types.Participant_failed)
      | 2 -> Error Types.Rolled_back
      | _ -> Error Types.Unauthenticated)

let rollback t txn =
  let b = Buffer.create 16 in
  Wire.w64 b t.client_id;
  Wire.w64 b txn.t_seq;
  ignore
    (Erpc.call t.rpc ~dst:txn.t_coord ~kind:Node.k_client_abort
       ~timeout_ns:t.op_timeout (Buffer.contents b))

(* Zero-RPC read-only fast path: declare the read set up front, group the
   keys by owning node and ship each group as ONE RPC answered from a
   retained MVCC snapshot — no begin/commit round, no locks, no
   stabilization waits. Each per-owner batch is its own serializable
   read-only transaction (a consistent prefix of that shard); a multi-shard
   call therefore gets per-shard snapshot consistency, not one global
   snapshot — callers that need cross-shard atomicity use {!with_txn}. *)
let read_only t keys =
  let groups = Hashtbl.create 4 in
  let owners_rev = ref [] in
  List.iter
    (fun key ->
      let owner = t.route key in
      match Hashtbl.find_opt groups owner with
      | Some batch -> batch := key :: !batch
      | None ->
          Hashtbl.add groups owner (ref [ key ]);
          owners_rev := owner :: !owners_rev)
    keys;
  let results = Hashtbl.create 16 in
  let rec fetch ~retry owner batch =
    let b = Buffer.create 64 in
    Wire.w64 b t.client_id;
    Wire.wlist b Wire.wstr batch;
    match
      Erpc.call t.rpc ~dst:owner ~kind:Node.k_client_ro
        ~timeout_ns:t.op_timeout (Buffer.contents b)
    with
    | Error (`Timeout | `Tampered) -> Error Types.Participant_failed
    | Ok reply -> (
        let r = Wire.reader reply in
        match Wire.r8 r with
        | exception Wire.Malformed _ -> Error Types.Participant_failed
        | 0 -> (
            match
              Wire.rlist r (fun r ->
                  if Wire.r8 r = 1 then Some (Wire.rstr r) else None)
            with
            | exception Wire.Malformed _ -> Error Types.Participant_failed
            | values when List.length values = List.length batch ->
                List.iter2
                  (fun key v -> Hashtbl.replace results key v)
                  batch values;
                Ok ()
            | _short -> Error Types.Participant_failed)
        | 1 ->
            (* The owner's stability guard timed out: the read set stayed
               under in-flight writes for the whole lock-timeout budget. *)
            Error Types.Lock_timeout
        | 3 ->
            (* Restarted node with an empty client registry: re-present the
               CAS token and retry once, as begin_txn does. *)
            if retry && register_with t owner then
              fetch ~retry:false owner batch
            else Error Types.Unauthenticated
        | _ -> Error Types.Participant_failed)
  in
  let rec go = function
    | [] ->
        Ok
          (List.map
             (fun key ->
               (key, Option.join (Hashtbl.find_opt results key)))
             keys)
    | owner :: rest -> (
        match fetch ~retry:true owner (List.rev !(Hashtbl.find groups owner)) with
        | Ok () -> go rest
        | Error e -> Error e)
  in
  go (List.rev !owners_rev)

let disconnect t = Erpc.shutdown t.rpc

let with_txn t ?coord body =
  match begin_txn t ?coord () with
  | Error e -> Error e
  | Ok txn -> (
      match body txn with
      | Ok v -> (
          match commit t txn with Ok () -> Ok v | Error e -> Error e)
      | Error e ->
          rollback t txn;
          Error e)
