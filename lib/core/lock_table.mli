(** Per-node key lock table (§V-B).

    Read/write locks keyed by user key, divided across shards by key hash to
    avoid a central bottleneck. Waiters queue FIFO per key; a transaction
    that cannot acquire a lock within the timeout aborts with a timeout
    error — the paper's deadlock-resolution strategy. Locks are reentrant
    for their owner, and a sole reader may upgrade to writer. *)

type t
type mode = Read | Write

type stats = {
  mutable acquisitions : int;
  mutable waits : int;  (** Acquisitions that had to block. *)
  mutable timeouts : int;
  mutable upgrades : int;
}

val create :
  Treaty_sim.Sim.t ->
  enclave:Treaty_tee.Enclave.t ->
  shards:int ->
  timeout_ns:int ->
  t

val stats : t -> stats

val acquire :
  t -> owner:Types.txid -> key:string -> mode -> (unit, [ `Timeout ]) result
(** Block until granted or until the timeout elapses. *)

val release_all : t -> owner:Types.txid -> unit
(** Drop every lock the owner holds and hand them to waiters. *)

val holds : t -> owner:Types.txid -> key:string -> mode -> bool
val locked_keys : t -> int
(** Number of keys with at least one holder (tests). *)
