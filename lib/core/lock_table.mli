(** Per-node key lock table (§V-B).

    Read/write locks keyed by user key, divided across shards by key hash to
    avoid a central bottleneck. Waiters queue FIFO per key; a transaction
    that cannot acquire a lock within the timeout aborts with a timeout
    error — the paper's deadlock-resolution strategy. Locks are reentrant
    for their owner, and a sole reader may upgrade to writer. *)

type t
type mode = Read | Write

type stats = {
  mutable acquisitions : int;
  mutable waits : int;  (** Acquisitions that had to block. *)
  mutable timeouts : int;
  mutable upgrades : int;
}

val create :
  ?sanitize:bool ->
  ?node:int ->
  Treaty_sim.Sim.t ->
  enclave:Treaty_tee.Enclave.t ->
  shards:int ->
  timeout_ns:int ->
  t
(** [sanitize] (default off) enables the TreatySan lockset tracker: see
    {!txn_begin}, {!txn_end} and {!leak_check}. [node] is the trace pid lane
    this table's lock-wait spans render on (default 0). *)

val stats : t -> stats

val acquire :
  ?span:Treaty_obs.Trace.span ->
  t ->
  owner:Types.txid ->
  key:string ->
  mode ->
  (unit, [ `Timeout ]) result
(** Block until granted or until the timeout elapses. When the acquisition
    has to block and tracing is on, a ["lock.wait"] span (child of [span])
    covers the wait, and its duration is recorded on the ["lock.wait_ns"]
    histogram. *)

val release_all : t -> owner:Types.txid -> unit
(** Drop every lock the owner holds and hand them to waiters. *)

val txn_begin : t -> owner:Types.txid -> unit
(** Mark the owner live again: acquisitions are legitimate until its next
    {!txn_end}. No-op unless sanitizing. *)

val txn_end : t -> owner:Types.txid -> unit
(** {!release_all} plus, when sanitizing, remember the owner as ended so a
    later acquisition under the same txid is reported as a zombie
    ([Treaty_util.Sanitizer.Lock_zombie]). *)

val leak_check : t -> unit
(** Report every owner still holding locks as a
    [Treaty_util.Sanitizer.Lock_leak]. Call at expected quiescence. *)

val write_locked : t -> key:string -> bool
(** Is any owner currently holding a write lock on [key]? The read-only
    fast path's stability guard: a write-locked key has an install in
    flight, so a snapshot read around it could observe an inconsistent
    committed prefix. *)

val holds : t -> owner:Types.txid -> key:string -> mode -> bool
val locked_keys : t -> int
(** Number of keys with at least one holder (tests). *)
