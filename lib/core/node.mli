(** A Treaty storage node (Figure 1): enclave, secure RPC endpoint, storage
    engine, lock table, trusted-counter replica — plus the transaction layer
    acting as 2PC coordinator for its clients' transactions and participant
    for everyone else's (§V-A, Figure 2).

    Message kinds on the node's endpoint:
    - coordinator→participant: operation execution, prepare, commit, abort,
      and decision queries from recovering participants;
    - client→coordinator: register, begin, op, commit, rollback.

    All handlers run on fibers (the userland scheduler), so a coordinator
    blocked on a participant's stabilization simply yields. *)

type t

(* RPC kinds (the wire protocol's handler selectors). *)
val k_txn_op : int
val k_txn_scan : int
val k_prepare : int
val k_commit : int
val k_abort : int
val k_query_decision : int
val k_client_register : int
val k_client_begin : int
val k_client_op : int
val k_client_scan : int
val k_client_commit : int
val k_client_abort : int

val k_client_ro : int
(** Zero-RPC read-only fast path: one round trip executes a whole
    client-declared read-only transaction against a retained MVCC snapshot
    at the owning node — no locks, no 2PC, no stabilization wait. *)

type stats = {
  mutable committed : int;
  mutable aborted : int;
  mutable distributed_committed : int;
  mutable single_node_committed : int;
  mutable read_only_committed : int;
      (** Committed via the snapshot fast path (also counted in
          [committed]). *)
  mutable remote_ops_served : int;
  mutable decisions_queried : int;
}

type deps = {
  sim : Treaty_sim.Sim.t;
  config : Config.t;
  net : Treaty_netsim.Net.t;
  node_id : int;
  peers : int list;  (** All storage node ids, self included. *)
  route : string -> int;  (** Key -> owning node id (the shard map). *)
  master : Treaty_crypto.Keys.master;  (** Provisioned by the CAS. *)
  history : Serializability.t option;
}

val create : deps -> t
(** Fresh node on an empty SSD. Registers handlers and the counter replica. *)

val recover_with : deps -> ssd:Treaty_storage.Ssd.t -> (t, string) result
(** Rebuild a node from its surviving SSD (§VI): replay + verify the logs
    (against the trusted counter group when stabilization is on), re-lock
    and re-resolve prepared transactions by querying their coordinators, and
    finish or abort in-doubt coordinator transactions from the Clog. *)

val node_id : t -> int
val stats : t -> stats
val engine : t -> Treaty_storage.Engine.t
val rpc : t -> Treaty_rpc.Erpc.t

val pool : t -> Treaty_memalloc.Mempool.t
(** The node's message-buffer pool; exposed so the chaos harness can run its
    quiescence-time leak check ({!Treaty_memalloc.Mempool.leak_check}). *)

val enclave : t -> Treaty_tee.Enclave.t
val ssd : t -> Treaty_storage.Ssd.t
val locks : t -> Lock_table.t
val rote : t -> Treaty_counter.Rote.replica
val counter_client : t -> Treaty_counter.Counter_client.t option

val authenticate_client : t -> client_id:int -> token:string -> bool

(** Residual protocol state — everything that must drain to zero once all
    transactions have finished and duplicates have aged out. The chaos
    harness checks it after every fault schedule (leak-freedom). *)
type residual = {
  res_dedup : int;  (** At-most-once cache entries ({!Treaty_rpc.Erpc.dedup_size}). *)
  res_locked_keys : int;  (** Keys with at least one lock holder. *)
  res_part_txs : int;  (** Live participant transaction contexts. *)
  res_coord_txs : int;  (** Live coordinator transaction contexts. *)
  res_prepared : int;  (** Prepared, undecided transactions in the engine. *)
  res_snapshots : int;
      (** Outstanding engine snapshot retentions
          ({!Treaty_storage.Engine.active_snapshot_count}) — a leak pins the
          compaction GC watermark. *)
}

val residual_state : t -> residual
val residual_total : residual -> int
val residual_to_string : residual -> string

val crash : t -> Treaty_storage.Ssd.t
(** Kill the node: volatile state is gone, the endpoint unregisters, the SSD
    survives and is returned for a later {!recover_with}. *)

val stop : t -> unit
(** Graceful stop for simulation teardown (no recovery intended). *)
