(** Cluster configuration and the paper's baseline matrix.

    One engine, six configurations — exactly the systems the evaluation
    compares. A {!security_profile} fixes the TEE mode (native vs SCONE),
    whether persistent data and messages are encrypted, whether they are
    authenticated, and whether the stabilization protocol runs. *)

type security_profile = {
  tee : Treaty_tee.Enclave.mode;
  encryption : bool;
  authentication : bool;
  stabilization : bool;
  batching : bool;
      (** Commit-pipeline batching (the ablation knob, on in every named
          profile): cross-log epoch stabilization rounds, Clog group commit
          and RPC burst coalescing. [false] reproduces the pre-pipeline
          behaviour — one counter round per log, one Clog append and one
          packet per record/message. *)
  batch_crypto : bool;
      (** Burst-level AEAD (the PR-7 ablation knob, on in every named
          profile): seal each coalesced RPC burst as one v2 packet — one IV,
          one keystream pass, one MAC per packet
          ({!Treaty_rpc.Secure_msg.Burst}). [false] falls back to the v1
          envelope that seals every sub-message individually. Orthogonal to
          [batching]: with a zero burst window every packet still carries one
          message, just framed as a 1-burst v2 packet. *)
  read_opt : bool;
      (** Authenticated read-path acceleration (the PR-5 ablation knob, on
          in every named profile): per-SSTable Bloom filters consulted
          before any block read, plus the enclave-resident verified block
          cache. [false] reproduces the verify-every-block read path. *)
  block_cache_bytes : int;
      (** Byte budget for the verified block cache (enclave memory,
          default 8 MiB); 0 disables the cache while keeping Bloom
          filters. *)
  sanitize : bool;
      (** TreatySan runtime sanitizer (off in every named profile): lockset
          tracking in [Lock_table], the fiber-starvation watchdog, and —
          when the profile also encrypts — plaintext-taint checks at the
          netsim and host-storage boundaries. Findings land in
          {!Treaty_util.Sanitizer}. *)
  trace : bool;
      (** Deterministic span tracing (off in every named profile): record
          per-transaction span trees in {!Treaty_obs.Trace} on the sim
          clock, exportable as Chrome [trace_event] JSON
          ([treaty run --trace]). *)
  metrics : bool;
      (** Metrics registry (off in every named profile): populate
          {!Treaty_obs.Metrics} — abort taxonomy, wait-time histograms,
          pipeline counters, fiber-scheduler profile
          ([treaty run --metrics]). *)
}

val default_block_cache_bytes : int

val ds_rocksdb : security_profile
(** Native 2PC over plain RocksDB-like storage: the paper's baseline. *)

val native_treaty : security_profile
(** Treaty's code (auth checks) outside SGX, no encryption. *)

val native_treaty_enc : security_profile

(** SCONE, authenticated, unencrypted. *)
val treaty_no_enc : security_profile

val treaty_enc : security_profile

(** The full system. *)
val treaty_enc_stab : security_profile

val profile_name : security_profile -> string

type t = {
  profile : security_profile;
  nodes : int;
  cores_per_node : int;
  isolation : Types.isolation;
  lock_shards : int;  (** "TREATY runs with a big number of shards" (§V-B). *)
  lock_timeout_ns : int;
  engine : Treaty_storage.Engine.config;
  cost : Treaty_sim.Costmodel.t;
  transport : Treaty_rpc.Transport.kind;
  transport_params : Treaty_rpc.Transport.params;
  rpc_timeout_ns : int;
  client_op_timeout_ns : int;
  decision_query_timeout_ns : int;
      (** Timeout for cooperative-termination decision queries
          ([k_query_decision]); chaos schedules with large delay spikes need
          it above the spike so prepared transactions are not stranded. *)
  recovery_resolve_attempts : int;
      (** Retries a recovering participant makes resolving a prepared tx. *)
  recovery_resolve_retry_ns : int;  (** Backoff between those retries. *)
  sweep_interval_ns : int;  (** Background hygiene sweep period. *)
  part_prepared_resolve_ns : int;
      (** Age at which a prepared participant tx is driven to resolution. *)
  part_stale_abort_ns : int;
      (** Age at which an unprepared participant tx (silent coordinator) is
          aborted to unblock its keys. *)
  coord_tx_abandon_ns : int;
      (** Age at which an idle coordinator tx (vanished client) is aborted;
          transactions mid-commit are never touched. *)
  dedup_ttl_ns : int;
      (** TTL for non-transactional at-most-once cache entries (see
          {!Treaty_rpc.Erpc.config}). *)
  burst_window_ns : int;
      (** Doorbell window for RPC burst coalescing on node endpoints
          (applied when the profile has [batching]; clients stay
          unbatched). *)
  sanitize_fiber_stall_ns : int;
      (** Watchdog threshold for the TreatySan fiber-starvation detector
          (simulated time). Must sit above the longest legitimate wait in a
          run — chaos crash-restart retry loops park fibers for seconds. *)
  record_history : bool;  (** Feed the serializability checker. *)
  naive_rpc_port : bool;
      (** Ablation: the unmodified eRPC-in-SCONE port — message buffers in
          the EPC, rdtsc OCALLs on the hot path (§VII-A). *)
  seed : int64;
}

val default : t
val with_profile : t -> security_profile -> t
(** Applies the profile, including the engine knobs it implies
    (stabilization gating, commit-stability waits). *)
