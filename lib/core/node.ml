module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Erpc = Treaty_rpc.Erpc
module Secure_msg = Treaty_rpc.Secure_msg
module Mempool = Treaty_memalloc.Mempool
module Net = Treaty_netsim.Net
module Engine = Treaty_storage.Engine
module Ssd = Treaty_storage.Ssd
module Sec = Treaty_storage.Sec
module Op = Treaty_storage.Op
module Clog_record = Treaty_storage.Clog_record
module Rote = Treaty_counter.Rote
module Counter_client = Treaty_counter.Counter_client
module Keys = Treaty_crypto.Keys
module Wire = Treaty_util.Wire
module Sanitizer = Treaty_util.Sanitizer
module Latch = Treaty_sched.Scheduler.Latch
module Lanes = Treaty_sched.Scheduler.Lanes
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics

let k_txn_op = 1
let k_txn_scan = 6
let k_prepare = 2
let k_commit = 3
let k_abort = 4
let k_query_decision = 5
let k_client_register = 10
let k_client_begin = 11
let k_client_op = 12
let k_client_scan = 15
let k_client_commit = 13
let k_client_abort = 14
let k_client_ro = 16

type stats = {
  mutable committed : int;
  mutable aborted : int;
  mutable distributed_committed : int;
  mutable single_node_committed : int;
  mutable read_only_committed : int;
  mutable remote_ops_served : int;
  mutable decisions_queried : int;
}

type deps = {
  sim : Sim.t;
  config : Config.t;
  net : Net.t;
  node_id : int;
  peers : int list;
  route : string -> int;
  master : Keys.master;
  history : Serializability.t option;
}

type remote_slice = {
  mutable r_written : string list;
  mutable r_reads : (string * int) list;
  mutable r_installed : int;
}

type coord_tx = {
  ct_seq : int;
  ct_client : int;
  ct_local : Local_txn.t;
  ct_span : Trace.span;  (* root "txn" span, ended by finish_coord *)
  mutable ct_next_op : int;
  ct_remote : (int, remote_slice) Hashtbl.t;
  ct_started : int;
  mutable ct_committing : bool;
      (* Commit in progress: the abandoned-tx sweep must not abort it. *)
}

type t = {
  deps : deps;
  enclave : Enclave.t;
  pool : Mempool.t;
  rpc : Erpc.t;
  lanes : Lanes.lanes;
  ssd : Ssd.t;
  sec : Sec.t;
  mutable engine : Engine.t;
  locks : Lock_table.t;
  rote : Rote.replica;
  counter_client : Counter_client.t option;
  mutable next_tx_seq : int;
  coord_txs : (int, coord_tx) Hashtbl.t;
  part_txs : (int * int, Local_txn.t * int) Hashtbl.t;  (* ctx, created_at *)
  decisions : (int, bool) Hashtbl.t;
  clients : (int, unit) Hashtbl.t;
  mutable alive : bool;
  mutable recovering : bool;
  stats : stats;
}

let node_id t = t.deps.node_id
let stats t = t.stats
let engine t = t.engine
let rpc t = t.rpc
let pool t = t.pool
let enclave t = t.enclave
let ssd t = t.ssd
let locks t = t.locks
let rote t = t.rote
let counter_client t = t.counter_client

type residual = {
  res_dedup : int;
  res_locked_keys : int;
  res_part_txs : int;
  res_coord_txs : int;
  res_prepared : int;
  res_snapshots : int;
}

let residual_state t =
  {
    res_dedup = Erpc.dedup_size t.rpc;
    res_locked_keys = Lock_table.locked_keys t.locks;
    res_part_txs = Hashtbl.length t.part_txs;
    res_coord_txs = Hashtbl.length t.coord_txs;
    res_prepared = List.length (Engine.prepared_txs t.engine);
    res_snapshots = Engine.active_snapshot_count t.engine;
  }

let residual_total r =
  r.res_dedup + r.res_locked_keys + r.res_part_txs + r.res_coord_txs
  + r.res_prepared + r.res_snapshots

let residual_to_string r =
  Printf.sprintf
    "dedup=%d locked=%d part_txs=%d coord_txs=%d prepared=%d snapshots=%d"
    r.res_dedup r.res_locked_keys r.res_part_txs r.res_coord_txs r.res_prepared
    r.res_snapshots

let fresh_stats () =
  {
    committed = 0;
    aborted = 0;
    distributed_committed = 0;
    single_node_committed = 0;
    read_only_committed = 0;
    remote_ops_served = 0;
    decisions_queried = 0;
  }

(* --- wire codecs ------------------------------------------------------ *)

type client_op = Cget of string | Cput of string * string | Cdel of string

let encode_op b = function
  | Cget key ->
      Wire.w8 b 0;
      Wire.wstr b key
  | Cput (key, value) ->
      Wire.w8 b 1;
      Wire.wstr b key;
      Wire.wstr b value
  | Cdel key ->
      Wire.w8 b 2;
      Wire.wstr b key

let decode_op r =
  match Wire.r8 r with
  | 0 -> Cget (Wire.rstr r)
  | 1 ->
      let key = Wire.rstr r in
      let value = Wire.rstr r in
      Cput (key, value)
  | 2 -> Cdel (Wire.rstr r)
  | n -> raise (Wire.Malformed (Printf.sprintf "bad op tag %d" n))

let op_key = function Cget k | Cput (k, _) | Cdel k -> k
let op_is_write = function Cget _ -> false | Cput _ | Cdel _ -> true

(* Op reply status byte. Every reply decode matches the full variant so a
   new status can't be silently swallowed by a wildcard arm. [St_conflict]
   is OCC's prepare-time validation failure — kept distinct from
   [St_lock_timeout] so the coordinator's abort taxonomy can attribute it. *)
type op_status = St_ok | St_lock_timeout | St_unknown_tx | St_unauth | St_conflict

let status_code = function
  | St_ok -> 0
  | St_lock_timeout -> 1
  | St_unknown_tx -> 2
  | St_unauth -> 3
  | St_conflict -> 4

let status_of_code = function
  | 0 -> Some St_ok
  | 1 -> Some St_lock_timeout
  | 2 -> Some St_unknown_tx
  | 3 -> Some St_unauth
  | 4 -> Some St_conflict
  | _unknown -> None

let ok_value_reply value seq =
  let b = Buffer.create 32 in
  Wire.w8 b (status_code St_ok);
  (match value with
  | Some v ->
      Wire.w8 b 1;
      Wire.wstr b v
  | None -> Wire.w8 b 0);
  Wire.w64 b seq;
  Buffer.contents b

let status_reply s =
  let b = Buffer.create 1 in
  Wire.w8 b (status_code s);
  Buffer.contents b

(* --- local transaction plumbing --------------------------------------- *)

let local_txid t seq = { Types.coord = t.deps.node_id; seq }

let begin_local ?span t txid =
  Local_txn.begin_ ?span ~engine:t.engine ~locks:t.locks
    ~isolation:t.deps.config.isolation ~tx:txid ()

let exec_local ltx = function
  | Cget key -> (
      match Local_txn.get_with_seq ltx key with
      | Ok (v, seq) -> Ok (v, seq)
      | Error `Timeout -> Error `Timeout)
  | Cput (key, value) -> (
      match Local_txn.put ltx key value with
      | Ok () -> Ok (None, 0)
      | Error `Timeout -> Error `Timeout)
  | Cdel key -> (
      match Local_txn.delete ltx key with
      | Ok () -> Ok (None, 0)
      | Error `Timeout -> Error `Timeout)

let namespaced node key = Printf.sprintf "n%d:%s" node key

let record_history t ctx ~installed_local_seq =
  match t.deps.history with
  | None -> ()
  | Some h ->
      let self = t.deps.node_id in
      let reads =
        List.map (fun (k, s) -> (namespaced self k, s)) (Local_txn.read_set ctx.ct_local)
        @ Hashtbl.fold
            (fun node slice acc ->
              List.map (fun (k, s) -> (namespaced node k, s)) slice.r_reads @ acc)
            ctx.ct_remote []
      in
      let writes =
        (match installed_local_seq with
        | Some seq ->
            List.map
              (fun (k, _) -> (namespaced self k, seq))
              (Local_txn.writes ctx.ct_local)
        | None -> [])
        @ Hashtbl.fold
            (fun node slice acc ->
              if slice.r_installed > 0 then
                List.map (fun k -> (namespaced node k, slice.r_installed)) slice.r_written
                @ acc
              else acc)
            ctx.ct_remote []
      in
      Serializability.record_commit h ~tx:(local_txid t ctx.ct_seq) ~reads ~writes

(* --- participant side -------------------------------------------------- *)

let part_ctx t ~coord ~tx_seq =
  match Hashtbl.find_opt t.part_txs (coord, tx_seq) with
  | Some (ctx, _) -> ctx
  | None ->
      let ctx = begin_local t { Types.coord; seq = tx_seq } in
      Hashtbl.replace t.part_txs (coord, tx_seq) (ctx, Sim.now t.deps.sim);
      ctx

(* The erpc layer re-registered the at-most-once triple to the live
   rpc.handle span before invoking us: resolving it parents the spans this
   handler opens (lock waits, prepare persistence) under that handler. *)
let handler_span (meta : Secure_msg.meta) =
  Trace.ctx_resolve ~coord:meta.coord ~tx_seq:meta.tx_seq ~op_id:meta.op_id

let handle_txn_op t (meta : Secure_msg.meta) payload =
  t.stats.remote_ops_served <- t.stats.remote_ops_served + 1;
  match decode_op (Wire.reader payload) with
  | exception Wire.Malformed _ -> status_reply St_unknown_tx
  | op -> (
      let ctx = part_ctx t ~coord:meta.coord ~tx_seq:meta.tx_seq in
      Local_txn.set_span ctx (handler_span meta);
      match exec_local ctx op with
      | Ok (value, seq) -> ok_value_reply value seq
      | Error `Timeout -> status_reply St_lock_timeout)

let encode_scan_reply kvs =
  let b = Buffer.create 256 in
  Wire.w8 b 0;
  Wire.wlist b
    (fun b (k, v) ->
      Wire.wstr b k;
      Wire.wstr b v)
    kvs;
  Buffer.contents b

let decode_scan_reply r =
  Wire.rlist r (fun r ->
      let k = Wire.rstr r in
      let v = Wire.rstr r in
      (k, v))

let handle_txn_scan t (meta : Secure_msg.meta) payload =
  t.stats.remote_ops_served <- t.stats.remote_ops_served + 1;
  match
    let r = Wire.reader payload in
    let lo = Wire.rstr r in
    let hi = Wire.rstr r in
    (lo, hi)
  with
  | exception Wire.Malformed _ -> status_reply St_unknown_tx
  | lo, hi -> (
      let ctx = part_ctx t ~coord:meta.coord ~tx_seq:meta.tx_seq in
      Local_txn.set_span ctx (handler_span meta);
      match Local_txn.scan ctx ~lo ~hi with
      | Ok kvs -> encode_scan_reply kvs
      | Error `Timeout -> status_reply St_lock_timeout)

(* Lane choice is a pure function of the transaction identity (see the
   commit-lane notes above [on_lane] in the assembly section). *)
let lane_key t (meta : Secure_msg.meta) =
  ((meta.Secure_msg.coord * 1000003) + meta.Secure_msg.tx_seq)
  land max_int
  mod Lanes.shards t.lanes

let txn_name ~coord ~tx_seq = Printf.sprintf "tx(%d,%d)" coord tx_seq

(* TreatySan cross-lane write assert: each 2PC handler records which lane
   it mutates this transaction's engine state from. All messages of one
   transaction must hash to the same lane, so a different lane with no lock
   hand-off in between is a lane-dispatch bug — the runtime counterpart of
   TreatyCheck's static lane-race pass (the two validate each other in the
   chaos sweep). *)
let san_lane_write t (meta : Secure_msg.meta) ~cell =
  if t.deps.config.profile.sanitize then
    Sanitizer.lane_write
      ~txn:(txn_name ~coord:meta.coord ~tx_seq:meta.tx_seq)
      ~cell ~lane:(lane_key t meta)

let finish_participant t ~coord ~tx_seq =
  (match Hashtbl.find_opt t.part_txs (coord, tx_seq) with
  | Some (ctx, _) ->
      Local_txn.finish ctx;
      Hashtbl.remove t.part_txs (coord, tx_seq)
  | None ->
      (* Recovered prepared txs hold locks under their txid without a ctx. *)
      Lock_table.txn_end t.locks ~owner:{ Types.coord; seq = tx_seq });
  if t.deps.config.profile.sanitize then
    Sanitizer.lane_forget ~txn:(txn_name ~coord ~tx_seq);
  Erpc.forget_tx t.rpc ~coord ~tx_seq

let handle_prepare t (meta : Secure_msg.meta) _payload =
  san_lane_write t meta ~cell:"engine.tx-state";
  match Hashtbl.find_opt t.part_txs (meta.coord, meta.tx_seq) with
  | None -> status_reply St_unknown_tx
  | Some (ctx, _) -> (
      let hspan = handler_span meta in
      Local_txn.set_span ctx hspan;
      match Local_txn.prepare ctx with
      | Error `Conflict -> status_reply St_conflict
      | Error `Timeout -> status_reply St_lock_timeout
      | Ok () -> (
          let writes = Local_txn.writes ctx in
          match
            if writes <> [] then
              Engine.prepare t.engine ~span:hspan
                ~tx:(meta.coord, meta.tx_seq) ~writes ()
          with
          | exception Engine.Stability_timeout ->
              (* The prepare entry is durable but not rollback-protected, so
                 §V forbids the ACK; vote FAIL and let the coordinator's
                 abort (or recovery) clean up the registered prepare. *)
              status_reply St_lock_timeout
          | () ->
              (* ACK carries the read versions for the coordinator's history. *)
              let b = Buffer.create 64 in
              Wire.w8 b (status_code St_ok);
              Wire.wlist b
                (fun b (k, s) ->
                  Wire.wstr b k;
                  Wire.w64 b s)
                (Local_txn.read_set ctx);
              Buffer.contents b))

let handle_commit t (meta : Secure_msg.meta) _payload =
  san_lane_write t meta ~cell:"engine.tx-state";
  let installed = Engine.resolve t.engine ~tx:(meta.coord, meta.tx_seq) ~commit:true in
  finish_participant t ~coord:meta.coord ~tx_seq:meta.tx_seq;
  let b = Buffer.create 16 in
  Wire.w8 b (status_code St_ok);
  Wire.w64 b (Option.value ~default:0 installed);
  Buffer.contents b

let handle_abort t (meta : Secure_msg.meta) _payload =
  san_lane_write t meta ~cell:"engine.tx-state";
  ignore (Engine.resolve t.engine ~tx:(meta.coord, meta.tx_seq) ~commit:false);
  finish_participant t ~coord:meta.coord ~tx_seq:meta.tx_seq;
  status_reply St_ok

let handle_query_decision t _meta payload =
  t.stats.decisions_queried <- t.stats.decisions_queried + 1;
  if t.recovering then "r"
  else
    match Wire.r64 (Wire.reader payload) with
    | exception Wire.Malformed _ -> "u"
    | tx_seq -> (
        match Hashtbl.find_opt t.decisions tx_seq with
        | Some true -> "c"
        | Some false -> "a"
        | None ->
            (* Distinguish "still deciding" from "no memory of it": an
               in-doubt participant may only abort on the latter. *)
            if Hashtbl.mem t.coord_txs tx_seq then "p" else "u")

(* --- coordinator side --------------------------------------------------- *)

let alloc_tx_seq t =
  t.next_tx_seq <- t.next_tx_seq + 1;
  t.next_tx_seq

let abort_remote t ctx =
  let remotes = Hashtbl.fold (fun node _ acc -> node :: acc) ctx.ct_remote [] in
  List.iter
    (fun node ->
      ignore
        (Erpc.call t.rpc ~dst:node ~kind:k_abort ~coord:t.deps.node_id
           ~tx_seq:ctx.ct_seq ~op_id:1_000_000 ""))
    remotes

let finish_coord t ctx =
  Local_txn.finish ctx.ct_local;
  Hashtbl.remove t.coord_txs ctx.ct_seq;
  Erpc.forget_tx t.rpc ~coord:t.deps.node_id ~tx_seq:ctx.ct_seq;
  Trace.end_span ctx.ct_span

(* Per-node abort taxonomy: one counter per (node, reason) so run --metrics
   attributes aborts instead of reporting a single opaque total. *)
let count_abort t reason =
  Metrics.incr (Printf.sprintf "n%d.abort.%s" t.deps.node_id reason)

let abort_tx t ctx ~reason =
  t.stats.aborted <- t.stats.aborted + 1;
  count_abort t reason;
  Trace.add_args ctx.ct_span
    [ ("status", Trace.Str "aborted"); ("reason", Trace.Str reason) ];
  if Hashtbl.length ctx.ct_remote > 0 then abort_remote t ctx;
  finish_coord t ctx

let handle_client_begin t _meta payload =
  let r = Wire.reader payload in
  match Wire.r64 r with
  | exception Wire.Malformed _ -> status_reply St_unauth
  | client_id ->
      if not (Hashtbl.mem t.clients client_id) then status_reply St_unauth
      else begin
        let seq = alloc_tx_seq t in
        let span =
          Trace.begin_span ~node:t.deps.node_id ~cat:"txn" "txn"
            ~args:
              [ ("tx_seq", Trace.Int seq); ("client", Trace.Int client_id) ]
        in
        let ctx =
          {
            ct_seq = seq;
            ct_client = client_id;
            ct_local = begin_local ~span t (local_txid t seq);
            ct_span = span;
            ct_next_op = 0;
            ct_remote = Hashtbl.create 4;
            ct_started = Sim.now t.deps.sim;
            ct_committing = false;
          }
        in
        Hashtbl.replace t.coord_txs seq ctx;
        let b = Buffer.create 16 in
        Wire.w8 b (status_code St_ok);
        Wire.w64 b seq;
        Buffer.contents b
      end

let remote_slice ctx node =
  match Hashtbl.find_opt ctx.ct_remote node with
  | Some s -> s
  | None ->
      let s = { r_written = []; r_reads = []; r_installed = 0 } in
      Hashtbl.replace ctx.ct_remote node s;
      s

(* Forward one op to the owning participant (Figure 2, steps 1-4). *)
let forward_op t ctx ~span ~owner op =
  ctx.ct_next_op <- ctx.ct_next_op + 1;
  (* Register the participant before the call, not on its reply: once the
     request is on the wire the participant may have begun its slice (which
     pins an engine snapshot and, under 2PL, holds locks) even if the op
     then times out or the reply is lost — the eventual abort fan-out must
     reach it rather than leaving the slice to the staleness sweeper. *)
  ignore (remote_slice ctx owner);
  let b = Buffer.create 64 in
  encode_op b op;
  match
    Erpc.call t.rpc ~dst:owner ~kind:k_txn_op ~coord:t.deps.node_id
      ~tx_seq:ctx.ct_seq ~op_id:ctx.ct_next_op
      ~timeout_ns:t.deps.config.rpc_timeout_ns ~span (Buffer.contents b)
  with
  | Error (`Timeout | `Tampered) -> Error `Participant
  | Ok reply -> (
      let r = Wire.reader reply in
      match status_of_code (Wire.r8 r) with
      | exception Wire.Malformed _ -> Error `Participant
      | Some St_ok ->
          let slice = remote_slice ctx owner in
          let value =
            if Wire.r8 r = 1 then Some (Wire.rstr r) else None
          in
          let _seq = Wire.r64 r in
          (* Read versions are collected once, from the prepare ACK's
             read_set; only the write-key routing is tracked per op. *)
          if op_is_write op then slice.r_written <- op_key op :: slice.r_written;
          Ok value
      | Some St_lock_timeout -> Error `Lock_timeout
      | Some (St_unknown_tx | St_unauth | St_conflict) | None -> Error `Participant)

let handle_client_op t _meta payload =
  let r = Wire.reader payload in
  match
    let _client = Wire.r64 r in
    let tx_seq = Wire.r64 r in
    let op = decode_op r in
    (tx_seq, op)
  with
  | exception Wire.Malformed _ -> status_reply St_unknown_tx
  | tx_seq, op -> (
      match Hashtbl.find_opt t.coord_txs tx_seq with
      | None -> status_reply St_unknown_tx
      | Some ctx -> (
          let owner = t.deps.route (op_key op) in
          (* One "execute" span per client op: the 2PC execution phase is
             the union of these (Figure 2, steps 1-4). *)
          let espan =
            Trace.begin_span ~parent:ctx.ct_span ~node:t.deps.node_id
              ~cat:"txn" "execute"
              ~args:
                [ ("op", Trace.Int ctx.ct_next_op);
                  ("owner", Trace.Int owner) ]
          in
          Local_txn.set_span ctx.ct_local espan;
          let result =
            if owner = t.deps.node_id then
              match exec_local ctx.ct_local op with
              | Ok (v, _) -> Ok v
              | Error `Timeout -> Error `Lock_timeout
            else forward_op t ctx ~span:espan ~owner op
          in
          Local_txn.set_span ctx.ct_local ctx.ct_span;
          match result with
          | Ok value ->
              Trace.end_span espan ~args:[ ("status", Trace.Str "ok") ];
              ok_value_reply value 0
          | Error `Lock_timeout ->
              Trace.end_span espan ~args:[ ("status", Trace.Str "lock_timeout") ];
              (* Failed op: the coordinator aborts the whole transaction. *)
              abort_tx t ctx ~reason:"lock_timeout";
              status_reply St_lock_timeout
          | Error `Participant ->
              Trace.end_span espan ~args:[ ("status", Trace.Str "participant") ];
              abort_tx t ctx ~reason:"participant_failed";
              status_reply St_lock_timeout))

let handle_client_scan t _meta payload =
  let r = Wire.reader payload in
  match
    let _client = Wire.r64 r in
    let tx_seq = Wire.r64 r in
    let lo = Wire.rstr r in
    let hi = Wire.rstr r in
    (tx_seq, lo, hi)
  with
  | exception Wire.Malformed _ -> status_reply St_unknown_tx
  | tx_seq, lo, hi -> (
      match Hashtbl.find_opt t.coord_txs tx_seq with
      | None -> status_reply St_unknown_tx
      | Some ctx -> (
          (* A range may span every shard: scan the local slice and fan the
             request out to all peers as participants of this transaction. *)
          let espan =
            Trace.begin_span ~parent:ctx.ct_span ~node:t.deps.node_id
              ~cat:"txn" "execute" ~args:[ ("scan", Trace.Int 1) ]
          in
          Local_txn.set_span ctx.ct_local espan;
          let remotes = List.filter (fun n -> n <> t.deps.node_id) t.deps.peers in
          let results = Hashtbl.create 8 in
          let failed = ref false in
          let latch = Latch.create (List.length remotes) in
          List.iter
            (fun node ->
              Sim.spawn t.deps.sim (fun () ->
                  ctx.ct_next_op <- ctx.ct_next_op + 1;
                  (* As in forward_op: the peer becomes a participant the
                     moment the scan request may reach it, so a failed or
                     lost scan still gets the abort fan-out. *)
                  ignore (remote_slice ctx node);
                  let b = Buffer.create 64 in
                  Wire.wstr b lo;
                  Wire.wstr b hi;
                  (match
                     Erpc.call t.rpc ~dst:node ~kind:k_txn_scan
                       ~coord:t.deps.node_id ~tx_seq:ctx.ct_seq
                       ~op_id:ctx.ct_next_op
                       ~timeout_ns:t.deps.config.rpc_timeout_ns ~span:espan
                       (Buffer.contents b)
                   with
                  | Error (`Timeout | `Tampered) -> failed := true
                  | Ok reply -> (
                      let r = Wire.reader reply in
                      match status_of_code (Wire.r8 r) with
                      | exception Wire.Malformed _ -> failed := true
                      | Some St_ok -> (
                          (* Read versions reach the history via the
                             participant's prepare-ACK read set; only the
                             data comes back here. Touching the slice also
                             marks the node as a 2PC participant. *)
                          match decode_scan_reply r with
                          | kvs ->
                              Hashtbl.replace results node kvs;
                              ignore (remote_slice ctx node)
                          | exception Wire.Malformed _ -> failed := true)
                      | Some
                          ( St_lock_timeout | St_unknown_tx | St_unauth
                          | St_conflict )
                      | None ->
                          failed := true));
                  Latch.arrive latch))
            remotes;
          let local = Local_txn.scan ctx.ct_local ~lo ~hi in
          Latch.wait (Sim.sched t.deps.sim) latch;
          Local_txn.set_span ctx.ct_local ctx.ct_span;
          Trace.end_span espan;
          match (local, !failed) with
          | Error `Timeout, _ ->
              abort_tx t ctx ~reason:"lock_timeout";
              status_reply St_lock_timeout
          | Ok _, true ->
              abort_tx t ctx ~reason:"participant_failed";
              status_reply St_lock_timeout
          | Ok local_kvs, false ->
              let all =
                Hashtbl.fold (fun _ kvs acc -> kvs @ acc) results local_kvs
              in
              encode_scan_reply (List.sort compare all)))

(* 2PC commit (Figure 2, steps 5-8). *)
let commit_distributed t ctx =
  let self = t.deps.node_id in
  let remotes = Hashtbl.fold (fun node _ acc -> node :: acc) ctx.ct_remote [] in
  (* Phase span: Clog begin + prepare fan-out + decision stabilization. *)
  let pspan =
    Trace.begin_span ~parent:ctx.ct_span ~node:self ~cat:"txn" "prepare"
      ~args:[ ("participants", Trace.Int (List.length remotes)) ]
  in
  Local_txn.set_span ctx.ct_local pspan;
  (* Step 5: log the 2PC start with its own trusted counter value. *)
  ignore
    (Engine.clog_append t.engine ~span:pspan
       (Clog_record.Begin_2pc { tx_seq = ctx.ct_seq; participants = remotes }));
  (* Prepare phase: all participants and the local slice, in parallel.
     [conflict] remembers whether any FAIL vote was an OCC validation
     conflict, so the abort is attributed to validation rather than to a
     failed participant. *)
  let results = Hashtbl.create 8 in
  let conflict = ref false in
  let latch = Latch.create (List.length remotes + 1) in
  List.iter
    (fun node ->
      Sim.spawn t.deps.sim (fun () ->
          let ok =
            match
              Erpc.call t.rpc ~dst:node ~kind:k_prepare ~coord:self
                ~tx_seq:ctx.ct_seq ~op_id:999_998
                ~timeout_ns:t.deps.config.rpc_timeout_ns ~span:pspan ""
            with
            | Error (`Timeout | `Tampered) -> false
            | Ok reply -> (
                let r = Wire.reader reply in
                match status_of_code (Wire.r8 r) with
                | exception Wire.Malformed _ -> false
                | Some St_ok ->
                    (* Pick up the participant's read versions for history. *)
                    (try
                       let reads =
                         Wire.rlist r (fun r ->
                             let k = Wire.rstr r in
                             let s = Wire.r64 r in
                             (k, s))
                       in
                       let slice = remote_slice ctx node in
                       slice.r_reads <- reads @ slice.r_reads
                     with Wire.Malformed _ -> ());
                    true
                | Some St_conflict ->
                    conflict := true;
                    false
                | Some (St_lock_timeout | St_unknown_tx | St_unauth) | None ->
                    false)
          in
          Hashtbl.replace results node ok;
          Latch.arrive latch))
    remotes;
  Sim.spawn t.deps.sim (fun () ->
      let ok =
        match Local_txn.prepare ctx.ct_local with
        | Error `Conflict ->
            conflict := true;
            false
        | Error `Timeout -> false
        | Ok () -> (
            let writes = Local_txn.writes ctx.ct_local in
            match
              if writes <> [] then
                Engine.prepare t.engine ~span:pspan ~tx:(self, ctx.ct_seq)
                  ~writes ()
            with
            | () -> true
            | exception Engine.Stability_timeout -> false)
      in
      Hashtbl.replace results self ok;
      Latch.arrive latch);
  Latch.wait (Sim.sched t.deps.sim) latch;
  let all_ok = Hashtbl.fold (fun _ ok acc -> ok && acc) results true in
  (* Steps 6-7: log and stabilize the decision before acting on it. *)
  let decision_counter =
    Engine.clog_append t.engine ~span:pspan
      (Clog_record.Decision { tx_seq = ctx.ct_seq; commit = all_ok })
  in
  let decision_stable =
    match
      Engine.clog_wait_stable t.engine ~span:pspan ~counter:decision_counter ()
    with
    | Ok () -> true
    | Error `Stability_timeout -> false
  in
  (* An unstabilized commit decision must not be acted on: recovery replays
     only the trusted Clog prefix, so the record could vanish and recovery
     would abort a transaction whose participants already committed.
     Supersede it with an abort — recovery takes the latest decision per tx,
     and if the whole tail is lost it aborts the undecided tx anyway, which
     is exactly what the participants are now told to do. *)
  if all_ok && not decision_stable then
    ignore
      (Engine.clog_append t.engine ~span:pspan
         (Clog_record.Decision { tx_seq = ctx.ct_seq; commit = false }));
  let prepared_ok = all_ok in
  let all_ok = all_ok && decision_stable in
  Hashtbl.replace t.decisions ctx.ct_seq all_ok;
  Local_txn.set_span ctx.ct_local ctx.ct_span;
  Trace.end_span pspan
    ~args:[ ("decision", Trace.Str (if all_ok then "commit" else "abort")) ];
  if all_ok then begin
    (* Commit phase span: the decision fan-out and local installation. *)
    let cspan =
      Trace.begin_span ~parent:ctx.ct_span ~node:self ~cat:"txn" "commit"
    in
    (* Step 8: commit everywhere; no need to wait for stability to ack. *)
    let latch = Latch.create (List.length remotes) in
    List.iter
      (fun node ->
        Sim.spawn t.deps.sim (fun () ->
            (match
               Erpc.call t.rpc ~dst:node ~kind:k_commit ~coord:self
                 ~tx_seq:ctx.ct_seq ~op_id:999_999
                 ~timeout_ns:t.deps.config.rpc_timeout_ns ~span:cspan ""
             with
            | Ok reply -> (
                let r = Wire.reader reply in
                match
                  let _ = Wire.r8 r in
                  Wire.r64 r
                with
                | seq -> (remote_slice ctx node).r_installed <- seq
                | exception Wire.Malformed _ -> ())
            | Error (`Timeout | `Tampered) ->
                (* The decision is stable: the participant will learn it from
                   the Clog-backed decision query at recovery. *)
                ());
            Latch.arrive latch))
      remotes;
    let installed_local =
      Engine.resolve t.engine ~tx:(self, ctx.ct_seq) ~commit:true
    in
    Latch.wait (Sim.sched t.deps.sim) latch;
    ignore
      (Engine.clog_append t.engine ~span:cspan
         (Clog_record.Finished { tx_seq = ctx.ct_seq }));
    Trace.end_span cspan;
    record_history t ctx ~installed_local_seq:installed_local;
    t.stats.committed <- t.stats.committed + 1;
    t.stats.distributed_committed <- t.stats.distributed_committed + 1;
    Trace.add_args ctx.ct_span [ ("status", Trace.Str "committed") ];
    finish_coord t ctx;
    Ok ()
  end
  else begin
    let reason, client_reason =
      if prepared_ok then
        ("stabilization_unavailable", Types.Stabilization_unavailable)
      else if !conflict then ("validation_conflict", Types.Validation_failed)
      else ("participant_failed", Types.Participant_failed)
    in
    abort_remote t ctx;
    ignore (Engine.resolve t.engine ~tx:(self, ctx.ct_seq) ~commit:false);
    ignore
      (Engine.clog_append t.engine
         (Clog_record.Finished { tx_seq = ctx.ct_seq }));
    t.stats.aborted <- t.stats.aborted + 1;
    count_abort t reason;
    Trace.add_args ctx.ct_span
      [ ("status", Trace.Str "aborted"); ("reason", Trace.Str reason) ];
    finish_coord t ctx;
    Error client_reason
  end

let commit_single_node t ctx =
  match Local_txn.prepare ctx.ct_local with
  | Error `Conflict ->
      abort_tx t ctx ~reason:"validation_conflict";
      Error Types.Validation_failed
  | Error `Timeout ->
      abort_tx t ctx ~reason:"lock_timeout";
      Error Types.Lock_timeout
  | Ok () -> (
      let writes = Local_txn.writes ctx.ct_local in
      let cspan =
        Trace.begin_span ~parent:ctx.ct_span ~node:t.deps.node_id ~cat:"txn"
          "commit"
          ~args:[ ("writes", Trace.Int (List.length writes)) ]
      in
      let end_commit status =
        Trace.end_span cspan ~args:[ ("status", Trace.Str status) ]
      in
      match
        if writes = [] then None
        else Some (Engine.commit t.engine ~span:cspan ~writes ())
      with
      | exception Engine.Stability_timeout ->
          (* The writes are applied and locally durable, but the WAL entry is
             not rollback-protected: a crash now would drop it from the
             trusted prefix. Refuse the ack — the client sees an abort, and
             an unacked transaction has no durability obligation. *)
          end_commit "stabilization_unavailable";
          t.stats.aborted <- t.stats.aborted + 1;
          count_abort t "stabilization_unavailable";
          Trace.add_args ctx.ct_span
            [ ("status", Trace.Str "aborted");
              ("reason", Trace.Str "stabilization_unavailable") ];
          finish_coord t ctx;
          Error Types.Stabilization_unavailable
      | seq ->
          end_commit "ok";
          (match seq with
          | Some s -> Local_txn.set_installed_seq ctx.ct_local s
          | None -> ());
          record_history t ctx ~installed_local_seq:seq;
          t.stats.committed <- t.stats.committed + 1;
          t.stats.single_node_committed <- t.stats.single_node_committed + 1;
          Trace.add_args ctx.ct_span [ ("status", Trace.Str "committed") ];
          finish_coord t ctx;
          Ok ())

let handle_client_commit t _meta payload =
  let r = Wire.reader payload in
  match
    let _client = Wire.r64 r in
    Wire.r64 r
  with
  | exception Wire.Malformed _ -> status_reply St_unknown_tx
  | tx_seq -> (
      match Hashtbl.find_opt t.coord_txs tx_seq with
      | None -> status_reply St_unknown_tx
      | Some ctx -> (
          ctx.ct_committing <- true;
          let result =
            if Hashtbl.length ctx.ct_remote = 0 then commit_single_node t ctx
            else commit_distributed t ctx
          in
          match result with
          | Ok () -> status_reply St_ok
          | Error reason ->
              let b = Buffer.create 2 in
              Wire.w8 b 1;
              Wire.w8 b
                (match reason with
                | Types.Lock_timeout -> 0
                | Types.Validation_failed -> 1
                | Types.Participant_failed -> 2
                | Types.Integrity | Types.Rolled_back | Types.Unauthenticated
                  ->
                    3
                | Types.Stabilization_unavailable -> 4);
              Buffer.contents b))

let handle_client_abort t _meta payload =
  let r = Wire.reader payload in
  match
    let _client = Wire.r64 r in
    Wire.r64 r
  with
  | exception Wire.Malformed _ -> status_reply St_unknown_tx
  | tx_seq -> (
      match Hashtbl.find_opt t.coord_txs tx_seq with
      | None -> status_reply St_ok (* already gone *)
      | Some ctx ->
          abort_tx t ctx ~reason:"client_abort";
          status_reply St_ok)

(* Zero-RPC read-only fast path (§V / ROADMAP item 3): a client-declared
   read-only transaction arrives as one RPC at the node owning its keys and
   is answered entirely from a retained MVCC snapshot — zero lock
   acquisitions, zero 2PC rounds, zero stabilization waits. Retaining the
   snapshot pins the GC watermark so compaction cannot drop the versions
   this read set is walking; the release is exception-safe because a leaked
   retention would pin the watermark forever (TreatySan checks at quiesce).
   Reads at a single node's committed snapshot are trivially serializable —
   the transaction observes exactly the prefix at [snapshot] — which is why
   the fast path only serves keys this node owns. *)
let handle_client_ro t _meta payload =
  let r = Wire.reader payload in
  match
    let client_id = Wire.r64 r in
    let keys = Wire.rlist r Wire.rstr in
    (client_id, keys)
  with
  | exception Wire.Malformed _ -> status_reply St_unauth
  | client_id, keys ->
      if not (Hashtbl.mem t.clients client_id) then status_reply St_unauth
      else if
        not (List.for_all (fun k -> t.deps.route k = t.deps.node_id) keys)
      then
        (* A misrouted key would silently read the wrong shard's (absent)
           version; refuse rather than answer wrongly. *)
        status_reply St_unknown_tx
      else begin
        let seq = alloc_tx_seq t in
        let span =
          Trace.begin_span ~node:t.deps.node_id ~cat:"txn" "txn.ro"
            ~args:
              [ ("tx_seq", Trace.Int seq);
                ("client", Trace.Int client_id);
                ("keys", Trace.Int (List.length keys)) ]
        in
        (* Stability guard. A requested key that is write-locked, or sits in
           a prepared-but-unresolved 2PC write set, has an install in
           flight — and the writing transaction may already be serialized
           before writes this snapshot WOULD show (only its resolve here is
           late). Reading around it could return a non-serializable prefix
           ("causal reverse"). Spin lock-free until the read set is quiet:
           writers install in bounded time, so under read-mostly load this
           never blocks; if the keys stay hot past the lock-timeout budget
           the transaction aborts exactly as a 2PL reader would. *)
        let unstable () =
          List.exists
            (fun k ->
              Lock_table.write_locked t.locks ~key:k
              || Engine.key_prepared t.engine ~key:k)
            keys
        in
        let backoff_ns = 100_000 in
        let rec wait_stable budget_ns =
          if not (unstable ()) then true
          else if budget_ns <= 0 then false
          else begin
            Sim.sleep t.deps.sim backoff_ns;
            wait_stable (budget_ns - backoff_ns)
          end
        in
        if not (wait_stable t.deps.config.lock_timeout_ns) then begin
          Trace.end_span span ~args:[ ("status", Trace.Str "unstable") ];
          status_reply St_lock_timeout
        end
        else begin
        let snapshot = Engine.snapshot t.engine in
        Engine.retain_snapshot t.engine snapshot;
        let results =
          Fun.protect
            ~finally:(fun () -> Engine.release_snapshot t.engine snapshot)
            (fun () ->
              List.map
                (fun key ->
                  match Engine.get ~span t.engine ~key ~snapshot with
                  | Treaty_storage.Memtable.Found (s, v) -> (key, s, Some v)
                  | Treaty_storage.Memtable.Deleted s -> (key, s, None)
                  | Treaty_storage.Memtable.Not_found -> (key, 0, None))
                keys)
        in
        (match t.deps.history with
        | None -> ()
        | Some h ->
            let self = t.deps.node_id in
            Serializability.record_commit h ~tx:(local_txid t seq)
              ~reads:(List.map (fun (k, s, _) -> (namespaced self k, s)) results)
              ~writes:[]);
        t.stats.committed <- t.stats.committed + 1;
        t.stats.read_only_committed <- t.stats.read_only_committed + 1;
        Metrics.incr (Printf.sprintf "n%d.ro.txns" t.deps.node_id);
        Metrics.incr
          ~by:(List.length keys)
          (Printf.sprintf "n%d.ro.keys" t.deps.node_id);
        Trace.end_span span ~args:[ ("status", Trace.Str "committed") ];
        let b = Buffer.create 256 in
        Wire.w8 b (status_code St_ok);
        Wire.wlist b
          (fun b (_, _, v) ->
            match v with
            | Some s ->
                Wire.w8 b 1;
                Wire.wstr b s
            | None -> Wire.w8 b 0)
          results;
        Buffer.contents b
        end
      end

let authenticate_client t ~client_id ~token =
  let ok = Keys.verify_client_token t.deps.master ~client_id ~token in
  if ok then Hashtbl.replace t.clients client_id ();
  ok

let handle_client_register t _meta payload =
  let r = Wire.reader payload in
  match
    let client_id = Wire.r64 r in
    let token = Wire.rstr r in
    (client_id, token)
  with
  | exception Wire.Malformed _ -> status_reply St_unauth
  | client_id, token ->
      if authenticate_client t ~client_id ~token then status_reply St_ok
      else status_reply St_unauth

(* --- assembly ----------------------------------------------------------- *)

(* Per-shard commit lanes (§VII-C): 2PC prepare/commit/abort handling fans
   out across [cores_per_node] lanes keyed by the transaction identity, so
   independent transactions process in parallel while all messages of one
   transaction stay serialized on the same lane (prepare-before-commit order
   is preserved without extra locking). Lane choice is a pure function of
   (coord, tx_seq) — [lane_key], defined up with the 2PC handlers so the
   TreatySan cross-lane assert can recompute it — and lane fibers drain
   FIFO through the deterministic scheduler, so same-seed traces stay
   byte-identical. *)
let on_lane t handler meta payload =
  Lanes.run t.lanes (lane_key t meta) (fun () -> handler meta payload)

let register_handlers t =
  Erpc.register t.rpc ~kind:k_txn_op (handle_txn_op t);
  Erpc.register t.rpc ~kind:k_prepare (on_lane t (handle_prepare t));
  Erpc.register t.rpc ~kind:k_commit (on_lane t (handle_commit t));
  Erpc.register t.rpc ~kind:k_abort (on_lane t (handle_abort t));
  Erpc.register t.rpc ~kind:k_query_decision (handle_query_decision t);
  Erpc.register t.rpc ~kind:k_client_register (handle_client_register t);
  Erpc.register t.rpc ~kind:k_client_begin (handle_client_begin t);
  Erpc.register t.rpc ~kind:k_client_op (handle_client_op t);
  Erpc.register t.rpc ~kind:k_txn_scan (handle_txn_scan t);
  Erpc.register t.rpc ~kind:k_client_scan (handle_client_scan t);
  Erpc.register t.rpc ~kind:k_client_commit (handle_client_commit t);
  Erpc.register t.rpc ~kind:k_client_abort (handle_client_abort t);
  Erpc.register t.rpc ~kind:k_client_ro (handle_client_ro t)

(* Query a prepared transaction's coordinator and resolve it (cooperative
   termination): "c"/"a" are authoritative; "u" means the coordinator has no
   memory of the transaction, which — because the decision is stabilized
   before any commit is sent — can only happen if no commit was ever issued,
   so aborting is safe. "p"/"r" mean ask again later. *)
let resolve_in_doubt t ~coord ~tx_seq =
  let b = Buffer.create 8 in
  Wire.w64 b tx_seq;
  match
    Erpc.call t.rpc ~dst:coord ~kind:k_query_decision
      ~timeout_ns:t.deps.config.decision_query_timeout_ns (Buffer.contents b)
  with
  | Ok "c" ->
      ignore (Engine.resolve t.engine ~tx:(coord, tx_seq) ~commit:true);
      finish_participant t ~coord ~tx_seq
  | Ok ("a" | "u") ->
      ignore (Engine.resolve t.engine ~tx:(coord, tx_seq) ~commit:false);
      finish_participant t ~coord ~tx_seq
  | Ok _ | Error (`Timeout | `Tampered) -> ()

(* Background hygiene: abort participant contexts whose coordinator went
   silent before prepare (their locks must not block the key space), drive
   in-doubt *prepared* transactions to resolution by querying their
   coordinators, abort coordinator contexts whose client vanished, and age
   out non-transactional at-most-once cache entries. *)
let start_sweeper t =
  let cfg = t.deps.config in
  Sim.spawn t.deps.sim (fun () ->
      while t.alive do
        Sim.sleep t.deps.sim cfg.sweep_interval_ns;
        if t.alive then begin
          Erpc.expire_dedup t.rpc;
          let now = Sim.now t.deps.sim in
          let prepared = Engine.prepared_txs t.engine in
          let stale, in_doubt =
            Hashtbl.fold
              (fun key (_, created) (stale, in_doubt) ->
                let is_prepared = List.mem key prepared in
                if is_prepared && now - created > cfg.part_prepared_resolve_ns
                then (stale, key :: in_doubt)
                else if (not is_prepared) && now - created > cfg.part_stale_abort_ns
                then (key :: stale, in_doubt)
                else (stale, in_doubt))
              t.part_txs ([], [])
          in
          (* Prepared txs recovered without a live context age from recovery
             time; resolve them too. *)
          let orphaned =
            List.filter (fun key -> not (Hashtbl.mem t.part_txs key)) prepared
          in
          List.iter
            (fun (coord, tx_seq) -> finish_participant t ~coord ~tx_seq)
            stale;
          List.iter
            (fun (coord, tx_seq) ->
              Sim.spawn t.deps.sim (fun () ->
                  if t.alive then resolve_in_doubt t ~coord ~tx_seq))
            (in_doubt @ orphaned);
          (* Coordinator contexts abandoned by their client (crashed client,
             lost rollback, begin whose ack never arrived) hold locks and a
             pinned snapshot forever; abort them once idle past the
             threshold. A commit in flight is never aborted from here. *)
          let abandoned =
            Hashtbl.fold
              (fun _ ctx acc ->
                if
                  (not ctx.ct_committing)
                  && now - ctx.ct_started > cfg.coord_tx_abandon_ns
                then ctx :: acc
                else acc)
              t.coord_txs []
          in
          List.iter
            (fun ctx ->
              Sim.spawn t.deps.sim (fun () ->
                  if
                    t.alive && (not ctx.ct_committing)
                    && Hashtbl.mem t.coord_txs ctx.ct_seq
                  then abort_tx t ctx ~reason:"abandoned"))
            abandoned
        end
      done)

let build_parts (deps : deps) ssd =
  let cfg = deps.config in
  let enclave =
    Enclave.create deps.sim ~mode:cfg.profile.tee ~cost:cfg.cost
      ~cores:cfg.cores_per_node ~node_id:deps.node_id ~code_identity:"treaty-node-v1"
  in
  Enclave.install_secrets enclave deps.master;
  let pool = Mempool.create ~sanitize:cfg.profile.sanitize enclave in
  let security =
    if cfg.profile.encryption then
      Secure_msg.Secure (Keys.network_key deps.master)
    else Secure_msg.Plain
  in
  let rpc_config =
    {
      (Erpc.default_config ~security) with
      Erpc.transport = cfg.transport;
      params = cfg.transport_params;
      timeout_ns = cfg.rpc_timeout_ns;
      dedup_ttl_ns = cfg.dedup_ttl_ns;
      msgbuf_region = (if cfg.naive_rpc_port then Mempool.Enclave else Mempool.Host);
      rdtsc_ocalls = cfg.naive_rpc_port;
      burst_window_ns = (if cfg.profile.batching then cfg.burst_window_ns else 0);
      batch_crypto = cfg.profile.batch_crypto;
    }
  in
  let rpc =
    Erpc.create deps.sim ~net:deps.net ~enclave ~pool ~config:rpc_config
      ~node_id:deps.node_id ()
  in
  let sec =
    Sec.create ~enclave ~auth:cfg.profile.authentication
      ~enc:
        (if cfg.profile.encryption then
           Some (Keys.storage_key deps.master ~node_id:deps.node_id)
         else None)
      ()
  in
  let locks =
    Lock_table.create ~sanitize:cfg.profile.sanitize ~node:deps.node_id
      deps.sim ~enclave ~shards:cfg.lock_shards
      ~timeout_ns:cfg.lock_timeout_ns
  in
  (* The replica's sealed counter table lives on the node's own SSD so a
     crashed node resumes from its latest confirmed counters even when its
     protection-group peers are down too (overlapping crashes). Records are
     length-framed appends: a crash mid-write can only tear the last record,
     which then fails to unseal and the previous one is used. *)
  let rote_seal_file = "rote.seal" in
  let rote_persist blob =
    let b = Buffer.create (String.length blob + 8) in
    Wire.wstr b blob;
    ignore (Ssd.append ssd ~enclave rote_seal_file (Buffer.contents b))
  in
  let rote_restore () =
    let len = Ssd.size ssd rote_seal_file in
    if len = 0 then []
    else begin
      let data = Ssd.read ssd ~enclave rote_seal_file ~off:0 ~len in
      let r = Wire.reader data in
      let rec go acc =
        match Wire.rstr r with
        | blob -> go (blob :: acc)
        | exception Wire.Malformed _ -> List.rev acc
      in
      go []
    end
  in
  let rote =
    Rote.create_replica rpc ~group:deps.peers ~persist:rote_persist
      ~restore:rote_restore ()
  in
  let counter_client =
    if cfg.profile.stabilization then
      Some
        (Counter_client.create ~batch_logs:cfg.profile.batching rote
           ~owner:deps.node_id)
    else None
  in
  (enclave, pool, rpc, sec, locks, rote, counter_client, ssd)

let stability_of counter_client =
  match counter_client with
  | None -> Engine.noop_stability
  | Some cc ->
      {
        Engine.submit =
          (fun ~span ~log ~counter -> Counter_client.submit ~span cc ~log ~counter);
        wait_stable =
          (fun ~log ~counter -> Counter_client.wait_stable cc ~log ~counter);
      }

let assemble deps (enclave, pool, rpc, sec, locks, rote, counter_client, ssd) engine =
  let t =
    {
      deps;
      enclave;
      pool;
      rpc;
      lanes =
        Lanes.create ~label:"commit-lane" (Sim.sched deps.sim)
          ~shards:(max 1 deps.config.cores_per_node);
      ssd;
      sec;
      engine;
      locks;
      rote;
      counter_client;
      next_tx_seq = 0;
      coord_txs = Hashtbl.create 64;
      part_txs = Hashtbl.create 64;
      decisions = Hashtbl.create 256;
      clients = Hashtbl.create 16;
      alive = true;
      recovering = false;
      stats = fresh_stats ();
    }
  in
  register_handlers t;
  start_sweeper t;
  t

let create deps =
  let ssd = Ssd.create deps.sim deps.config.cost in
  let ((_, _, _, sec, _, _, counter_client, _) as parts) = build_parts deps ssd in
  let engine =
    Engine.create ~node:deps.node_id ssd sec deps.config.engine
      (stability_of counter_client)
  in
  assemble deps parts engine

exception Recovery_unavailable of string

let recover_with deps ~ssd =
  let ((_, _, _, sec, _, _, counter_client, _) as parts) = build_parts deps ssd in
  let trusted log =
    match counter_client with
    | None -> None
    | Some cc -> (
        match Counter_client.trusted_for_recovery cc ~log with
        | Ok v -> Some v
        | Error `No_quorum ->
            raise (Recovery_unavailable "trusted counter group unreachable"))
  in
  match
    Engine.recover ~node:deps.node_id ssd sec deps.config.engine
      (stability_of counter_client) ~trusted
  with
  | exception Recovery_unavailable m -> Error m
  | Error m -> Error m
  | Ok (eng, info) ->
      let t = assemble deps parts eng in
      t.recovering <- true;
      (* Coordinator-side recovery from the Clog: finish decided txs, abort
         undecided ones (§VI). *)
      let begun = Hashtbl.create 16 in
      let decided = Hashtbl.create 16 in
      let finished = Hashtbl.create 16 in
      let max_seq = ref 0 in
      List.iter
        (fun (_, record) ->
          match record with
          | Clog_record.Begin_2pc { tx_seq; participants } ->
              max_seq := max !max_seq tx_seq;
              Hashtbl.replace begun tx_seq participants
          | Clog_record.Decision { tx_seq; commit } ->
              max_seq := max !max_seq tx_seq;
              Hashtbl.replace decided tx_seq commit
          | Clog_record.Finished { tx_seq } -> Hashtbl.replace finished tx_seq ()
          | Clog_record.Batch _ ->
              (* Engine.recover flattens group-committed windows. *)
              ())
        info.Engine.clog_records;
      (* New incarnation: leave a wide gap so txids never collide with stale
         dedup state on peers. *)
      t.next_tx_seq <- !max_seq + 1_000_000;
      Hashtbl.iter (fun seq commit -> Hashtbl.replace t.decisions seq commit) decided;
      let unfinished =
        Hashtbl.fold
          (fun seq participants acc ->
            if Hashtbl.mem finished seq then acc else (seq, participants) :: acc)
          begun []
      in
      List.iter
        (fun (seq, participants) ->
          let commit =
            match Hashtbl.find_opt decided seq with
            | Some c -> c
            | None ->
                (* Undecided at the crash: the safe re-execution of the
                   prepare phase is to abort. *)
                let c =
                  Engine.clog_append t.engine
                    (Clog_record.Decision { tx_seq = seq; commit = false })
                in
                (* The group had quorum moments ago (recovery queried it);
                   even if this wait fails, driving the abort is safe — a
                   lost abort record re-aborts on the next recovery. *)
                ignore (Engine.clog_wait_stable t.engine ~counter:c ());
                Hashtbl.replace t.decisions seq false;
                false
          in
          Sim.spawn deps.sim (fun () ->
              List.iter
                (fun node ->
                  ignore
                    (Erpc.call t.rpc ~dst:node
                       ~kind:(if commit then k_commit else k_abort)
                       ~coord:deps.node_id ~tx_seq:seq ~op_id:999_997 ""))
                participants;
              ignore
                (Engine.clog_append t.engine (Clog_record.Finished { tx_seq = seq }))))
        unfinished;
      (* Participant-side recovery: re-lock prepared write sets and resolve
         them with their coordinators. *)
      List.iter
        (fun ((coord, tx_seq), writes) ->
          let owner = { Types.coord; seq = tx_seq } in
          List.iter
            (fun (key, _) ->
              ignore (Lock_table.acquire t.locks ~owner ~key Lock_table.Write))
            writes;
          Sim.spawn deps.sim (fun () ->
              let rec resolve_loop attempts =
                if attempts <= 0 then () (* stay prepared; blocked on coord *)
                else
                  match
                    let b = Buffer.create 8 in
                    Wire.w64 b tx_seq;
                    Erpc.call t.rpc ~dst:coord ~kind:k_query_decision
                      ~timeout_ns:deps.config.decision_query_timeout_ns
                      (Buffer.contents b)
                  with
                  | Ok "c" ->
                      ignore (Engine.resolve t.engine ~tx:(coord, tx_seq) ~commit:true);
                      finish_participant t ~coord ~tx_seq
                  | Ok ("a" | "u") ->
                      ignore (Engine.resolve t.engine ~tx:(coord, tx_seq) ~commit:false);
                      finish_participant t ~coord ~tx_seq
                  | Ok _ | Error (`Timeout | `Tampered) ->
                      Sim.sleep deps.sim deps.config.recovery_resolve_retry_ns;
                      resolve_loop (attempts - 1)
              in
              resolve_loop deps.config.recovery_resolve_attempts))
        info.Engine.prepared;
      t.recovering <- false;
      Ok t

let crash t =
  t.alive <- false;
  Erpc.shutdown t.rpc;
  t.ssd

let stop t =
  t.alive <- false;
  Erpc.shutdown t.rpc
