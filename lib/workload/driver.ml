module Sim = Treaty_sim.Sim
module Cluster = Treaty_core.Cluster
module Client = Treaty_core.Client
module Latch = Treaty_sched.Scheduler.Latch

type result = {
  stats : Stats.t;
  duration_ns : int;
  clients : int;
}

let run_clients cluster ~clients ~duration_ns ?(warmup_ns = 0)
    ?(first_client_id = 1) ~txn () =
  let sim = Cluster.sim cluster in
  let stats = Stats.create () in
  let latch = Latch.create clients in
  let start = Sim.now sim in
  let measure_from = start + warmup_ns in
  let deadline = start + warmup_ns + duration_ns in
  for i = 0 to clients - 1 do
    Sim.spawn sim (fun () ->
        let rng = Treaty_sim.Rng.split (Sim.rng sim) in
        (match Client.connect cluster ~client_id:(first_client_id + i) with
        | Error (`Auth_failed | `Cas_down) -> ()
        | Ok client ->
            while Sim.now sim < deadline do
              let t0 = Sim.now sim in
              let outcome = txn client ~client_index:i rng in
              let t1 = Sim.now sim in
              if t0 >= measure_from && t1 <= deadline then
                match outcome with
                | Ok () -> Stats.record stats ~latency_ns:(t1 - t0)
                | Error _ -> Stats.record_abort stats
            done;
            Client.disconnect client);
        Latch.arrive latch)
  done;
  Latch.wait (Sim.sched sim) latch;
  { stats; duration_ns; clients }

let tps r = Stats.throughput_tps r.stats ~duration_ns:r.duration_ns
let mean_ms r = Stats.mean_latency_ms r.stats
let p99_ms r = Stats.percentile_ms r.stats 99.0
