(** TPC-C over Treaty's KV API.

    The full benchmark: warehouse/district/customer/item/stock/order/
    order-line/new-order/history schema mapped onto keys, and all five
    transaction profiles with the standard mix (NewOrder 45%, Payment 43%,
    OrderStatus 4%, Delivery 4%, StockLevel 4%), including the 1% NewOrder
    rollback and the remote-warehouse probabilities that make a fraction of
    transactions distributed.

    Key mapping (records are marshalled OCaml values):
    - ["w:W"], ["d:W:D"], ["c:W:D:C"], ["s:W:I"], ["o:W:D:O"],
      ["ol:W:D:O:N"], ["no_first:W:D"] (oldest undelivered order cursor),
      ["c_last_o:W:D:C"] (customer's latest order), ["cidx:W:D:NAME"]
      (customer last-name index), ["h:..."] (history).
    - The read-only item catalog is replicated per warehouse as ["i:W:I"],
      modelling the replicated catalog real deployments use — otherwise
      every NewOrder would cross shards just to price items.

    Sharding is by warehouse ({!route}), so single-home transactions stay on
    one node and remote-warehouse accesses drive 2PC, as in the paper's
    distributed runs. Scale knobs default to simulation-sized tables; the
    contention shape (10 warehouses = heavy W-W conflicts on districts) is
    what matters for the figures, and that is governed by [warehouses]. *)

type config = {
  warehouses : int;
  districts_per_warehouse : int;  (** 10 per spec. *)
  customers_per_district : int;  (** 3000 per spec; scaled down by default. *)
  items : int;  (** 100k per spec; scaled down by default. *)
  remote_item_pct : int;  (** NewOrder lines from a remote warehouse (1%). *)
  remote_customer_pct : int;  (** Payment for a remote customer (15%). *)
}

val config : ?warehouses:int -> unit -> config
(** Defaults: 10 warehouses, 10 districts, 60 customers/district, 400
    items. *)

val route : config -> nodes:int -> string -> int
(** Shard map: warehouse number -> node index; pass to
    [Cluster.create ~route]. *)

val home_node : config -> nodes:int -> warehouse:int -> int
(** Node index of a warehouse (to pin a client's coordinator). *)

exception Load_failure of string
(** Raised by {!load} when a populate transaction aborts — the database is
    not in a usable state and the harness should stop. *)

val load : config -> Treaty_core.Client.t -> Treaty_sim.Rng.t -> unit
(** Populate the database (run once, before measuring). Uses one loader
    client; idempotent. Raises {!Load_failure} if a load transaction
    aborts. *)

type txn_kind = New_order | Payment | Order_status | Delivery | Stock_level

val kind_name : txn_kind -> string

val pick_kind : Treaty_sim.Rng.t -> txn_kind
(** Standard mix. *)

val run :
  config ->
  Treaty_core.Client.t ->
  Treaty_sim.Rng.t ->
  nodes:int ->
  home:int ->
  txn_kind ->
  unit Treaty_core.Types.txn_result
(** Execute one transaction of the given profile from a terminal homed at
    warehouse [home]. *)

(** Consistency conditions (TPC-C §3.3.2), checked by the tests. *)
module Check : sig
  val district_orders :
    config -> Treaty_core.Client.t -> warehouse:int -> bool
  (** C-1/C-2 style: for every district, [d_next_o_id - 1] equals the
      highest order id present. *)
end
