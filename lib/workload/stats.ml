module Hist = Treaty_obs.Metrics.Hist

type t = {
  hist : Hist.t;  (* latency_ns samples, log-scale buckets *)
  mutable aborts : int;
}

let create () = { hist = Hist.create (); aborts = 0 }
let record t ~latency_ns = Hist.record t.hist latency_ns
let record_abort t = t.aborts <- t.aborts + 1

let merge a b =
  { hist = Hist.merge a.hist b.hist; aborts = a.aborts + b.aborts }

let committed t = Hist.count t.hist
let aborted t = t.aborts

let throughput_tps t ~duration_ns =
  if duration_ns <= 0 then 0.0
  else float_of_int (Hist.count t.hist) /. (float_of_int duration_ns /. 1e9)

let mean_latency_ms t = Hist.mean t.hist /. 1e6
let percentile_ms t p = float_of_int (Hist.percentile t.hist p) /. 1e6

let summary t ~duration_ns =
  Printf.sprintf "%d committed, %d aborted, %.1f tps, lat mean %.2f ms p50 %.2f p99 %.2f"
    (Hist.count t.hist) t.aborts
    (throughput_tps t ~duration_ns)
    (mean_latency_ms t) (percentile_ms t 50.0) (percentile_ms t 99.0)
