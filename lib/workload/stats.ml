type t = {
  mutable latencies : int list;  (* ns, unordered *)
  mutable count : int;
  mutable aborts : int;
  mutable sum : int;
}

let create () = { latencies = []; count = 0; aborts = 0; sum = 0 }

let record t ~latency_ns =
  t.latencies <- latency_ns :: t.latencies;
  t.count <- t.count + 1;
  t.sum <- t.sum + latency_ns

let record_abort t = t.aborts <- t.aborts + 1

let merge a b =
  {
    latencies = a.latencies @ b.latencies;
    count = a.count + b.count;
    aborts = a.aborts + b.aborts;
    sum = a.sum + b.sum;
  }

let committed t = t.count
let aborted t = t.aborts

let throughput_tps t ~duration_ns =
  if duration_ns <= 0 then 0.0
  else float_of_int t.count /. (float_of_int duration_ns /. 1e9)

let mean_latency_ms t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count /. 1e6

let percentile_ms t p =
  match t.latencies with
  | [] -> 0.0
  | l ->
      let sorted = List.sort compare l in
      let arr = Array.of_list sorted in
      let idx =
        int_of_float (ceil (p /. 100.0 *. float_of_int (Array.length arr))) - 1
      in
      let idx = max 0 (min (Array.length arr - 1) idx) in
      float_of_int arr.(idx) /. 1e6

let summary t ~duration_ns =
  Printf.sprintf "%d committed, %d aborted, %.1f tps, lat mean %.2f ms p50 %.2f p99 %.2f"
    t.count t.aborts
    (throughput_tps t ~duration_ns)
    (mean_latency_ms t) (percentile_ms t 50.0) (percentile_ms t 99.0)
