(** Closed-loop benchmark driver.

    Mirrors the paper's setup: N client terminals on separate machines
    (client-NIC endpoints), each running transactions back-to-back against
    the cluster. A run has a warmup window (not recorded) and a measurement
    window; throughput is committed transactions over the measurement
    window, latency is per-transaction. *)

type result = {
  stats : Stats.t;
  duration_ns : int;
  clients : int;
}

val run_clients :
  Treaty_core.Cluster.t ->
  clients:int ->
  duration_ns:int ->
  ?warmup_ns:int ->
  ?first_client_id:int ->
  txn:
    (Treaty_core.Client.t ->
    client_index:int ->
    Treaty_sim.Rng.t ->
    unit Treaty_core.Types.txn_result) ->
  unit ->
  result
(** Spawn [clients] closed-loop terminals and run until the window closes.
    [txn] executes one transaction (retries are the workload's business; an
    [Error] counts as an abort). Must run in a fiber. *)

val tps : result -> float
val mean_ms : result -> float
val p99_ms : result -> float
