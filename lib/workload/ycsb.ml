module Rng = Treaty_sim.Rng
module Client = Treaty_core.Client
module Types = Treaty_core.Types

type config = {
  read_fraction : float;
  ops_per_txn : int;
  value_size : int;
  n_keys : int;
  distribution : [ `Uniform | `Zipfian of float ];
}

let default =
  {
    read_fraction = 0.5;
    ops_per_txn = 10;
    value_size = 1000;
    n_keys = 10_000;
    distribution = `Uniform;
  }

let read_heavy = { default with read_fraction = 0.8 }
let write_heavy = { default with read_fraction = 0.2 }

type op = Read of string | Update of string * string

let key_of_index i = Printf.sprintf "user%08d" i

let load_keys config = List.init config.n_keys key_of_index

let make_value config rng =
  String.init config.value_size (fun _ -> Char.chr (97 + Rng.int rng 26))

type generator = { config : config; rng : Rng.t; dist : Zipf.t }

let generator config rng =
  let dist =
    match config.distribution with
    | `Uniform -> Zipf.uniform ~n:config.n_keys
    | `Zipfian theta -> Zipf.create ~theta ~n:config.n_keys ()
  in
  { config; rng; dist }

let next_txn g =
  List.init g.config.ops_per_txn (fun _ ->
      let key = key_of_index (Zipf.sample g.dist g.rng) in
      if Rng.float g.rng 1.0 < g.config.read_fraction then Read key
      else Update (key, make_value g.config g.rng))

let run_txn ?(ro_fast_path = false) client coord ops =
  let read_keys =
    if ro_fast_path then
      List.fold_left
        (fun acc op ->
          match (acc, op) with
          | Some ks, Read k -> Some (k :: ks)
          | _, Update _ | None, _ -> None)
        (Some []) ops
    else None
  in
  match read_keys with
  | Some keys ->
      (* Client-declared read-only transaction: one zero-RPC snapshot round
         per owning shard instead of begin + per-op + commit rounds. *)
      (match Client.read_only client (List.rev keys) with
      | Ok _ -> Ok ()
      | Error e -> Error e)
  | None ->
  Client.with_txn client ?coord (fun txn ->
      let rec go = function
        | [] -> Ok ()
        | Read key :: rest -> (
            match Client.get client txn key with
            | Ok _ -> go rest
            | Error e -> Error e)
        | Update (key, value) :: rest -> (
            match Client.put client txn key value with
            | Ok () -> go rest
            | Error e -> Error e)
      in
      go ops)
