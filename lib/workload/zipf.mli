(** Zipfian key-popularity distribution (YCSB's default skew).

    Precomputed inverse-CDF sampling: exact, O(log n) per draw, fine for the
    key-space sizes the paper uses (10k unique keys). *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [theta] is the skew (YCSB default 0.99); [n] the key-space size. *)

val sample : t -> Treaty_sim.Rng.t -> int
(** A key index in [\[0, n)], rank 0 most popular. *)

val uniform : n:int -> t
(** Degenerate uniform variant behind the same interface. *)
