type t = Zipf of float array (* cumulative probabilities *) | Uniform of int

let create ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  Zipf cdf

let uniform ~n =
  if n <= 0 then invalid_arg "Zipf.uniform";
  Uniform n

let sample t rng =
  match t with
  | Uniform n -> Treaty_sim.Rng.int rng n
  | Zipf cdf ->
      let u = Treaty_sim.Rng.float rng 1.0 in
      (* Binary search for the first index with cdf >= u. *)
      let lo = ref 0 and hi = ref (Array.length cdf - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) < u then lo := mid + 1 else hi := mid
      done;
      !lo
