(** YCSB workload generator, configured as the paper does (§VIII).

    Default shape: 10 operations per transaction, 1000 B values, 10 k unique
    keys, uniform distribution; read fraction per experiment (50%R for the
    2PC microbenchmark, 20%R write-heavy and 80%R read-heavy for Figures 5–7;
    zipfian available for contention studies). *)

type config = {
  read_fraction : float;
  ops_per_txn : int;
  value_size : int;
  n_keys : int;
  distribution : [ `Uniform | `Zipfian of float ];
}

val default : config
(** 50%R, 10 ops/tx, 1000 B, 10 k keys, uniform. *)

(** 80%R. *)
val read_heavy : config

(** 20%R. *)
val write_heavy : config

type op = Read of string | Update of string * string

val key_of_index : int -> string

val load_keys : config -> string list
(** The full key space, for pre-loading the store. *)

val make_value : config -> Treaty_sim.Rng.t -> string

type generator

val generator : config -> Treaty_sim.Rng.t -> generator

val next_txn : generator -> op list
(** One transaction's operation list. *)

val run_txn :
  ?ro_fast_path:bool ->
  Treaty_core.Client.t ->
  Treaty_core.Types.node_id option ->
  op list ->
  unit Treaty_core.Types.txn_result
(** Execute the operations as one client transaction. With [ro_fast_path]
    (default off), an all-read transaction is declared read-only up front
    and executed through {!Treaty_core.Client.read_only} — zero locks, no
    2PC, one snapshot round per owning shard. *)
