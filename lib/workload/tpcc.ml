module Rng = Treaty_sim.Rng
module Client = Treaty_core.Client
module Types = Treaty_core.Types

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  remote_item_pct : int;
  remote_customer_pct : int;
}

let config ?(warehouses = 10) () =
  {
    warehouses;
    districts_per_warehouse = 10;
    customers_per_district = 60;
    items = 400;
    remote_item_pct = 1;
    remote_customer_pct = 15;
  }

(* --- schema records (marshalled as values) ----------------------------- *)

type warehouse = { w_name : string; w_tax : float; mutable w_ytd : float }

type district = {
  d_name : string;
  d_tax : float;
  mutable d_ytd : float;
  mutable d_next_o_id : int;
}

type customer = {
  c_last : string;
  c_credit : string;
  c_discount : float;
  mutable c_balance : float;
  mutable c_ytd_payment : float;
  mutable c_payment_cnt : int;
  mutable c_delivery_cnt : int;
}

type item = { i_name : string; i_price : float }

type stock = {
  mutable s_quantity : int;
  mutable s_ytd : int;
  mutable s_order_cnt : int;
  mutable s_remote_cnt : int;
}

type order = {
  o_c_id : int;
  o_entry_d : int;
  mutable o_carrier_id : int option;
  o_ol_cnt : int;
}

type order_line = {
  ol_i_id : int;
  ol_supply_w_id : int;
  ol_quantity : int;
  ol_amount : float;
  mutable ol_delivery_d : int option;
}

let ser v = Marshal.to_string v []
let deser (s : string) : 'a = Marshal.from_string s 0

(* --- key mapping -------------------------------------------------------- *)

let k_warehouse w = Printf.sprintf "w:%d" w
let k_district w d = Printf.sprintf "d:%d:%d" w d
let k_customer w d c = Printf.sprintf "c:%d:%d:%d" w d c
let k_item w i = Printf.sprintf "i:%d:%d" w i
let k_stock w i = Printf.sprintf "s:%d:%d" w i
let k_order w d o = Printf.sprintf "o:%d:%d:%d" w d o
let k_order_line w d o n = Printf.sprintf "ol:%d:%d:%d:%d" w d o n
let k_no_first w d = Printf.sprintf "no_first:%d:%d" w d
let k_customer_last_order w d c = Printf.sprintf "c_last_o:%d:%d:%d" w d c
let k_customer_index w d last = Printf.sprintf "cidx:%d:%d:%s" w d last
let k_history w d c ts = Printf.sprintf "h:%d:%d:%d:%d" w d c ts

(* Every TPC-C key embeds its warehouse right after the first ':'. *)
let warehouse_of_key key =
  match String.index_opt key ':' with
  | None -> 0
  | Some i -> (
      let rest = String.sub key (i + 1) (String.length key - i - 1) in
      match String.index_opt rest ':' with
      | None -> ( try int_of_string rest with _ -> 0)
      | Some j -> ( try int_of_string (String.sub rest 0 j) with _ -> 0))

let route _config ~nodes key = (warehouse_of_key key - 1 + nodes) mod nodes
let home_node config ~nodes ~warehouse =
  route config ~nodes (k_warehouse warehouse)

(* --- load ---------------------------------------------------------------- *)

let last_names =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name_of i =
  (* Standard TPC-C syllable construction. *)
  last_names.(i / 100 mod 10) ^ last_names.(i / 10 mod 10) ^ last_names.(i mod 10)

exception Load_failure of string

let put_exn client txn key value =
  match Client.put client txn key value with
  | Ok () -> ()
  | Error e ->
      raise (Load_failure ("tpcc load put failed: " ^ Types.abort_reason_to_string e))

let load config client rng =
  let commit_batch puts =
    (* Loading is chunked into moderate transactions to bound buffer sizes. *)
    let rec chunks l =
      match l with
      | [] -> ()
      | _ ->
          let batch, rest =
            let rec take n acc = function
              | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            take 200 [] l
          in
          (match
             Client.with_txn client (fun txn ->
                 List.iter (fun (k, v) -> put_exn client txn k v) batch;
                 Ok ())
           with
          | Ok () -> ()
          | Error e ->
              raise
                (Load_failure
                   ("tpcc load commit failed: " ^ Types.abort_reason_to_string e)));
          chunks rest
    in
    chunks puts
  in
  for w = 1 to config.warehouses do
    let puts = ref [] in
    let add k v = puts := (k, v) :: !puts in
    add (k_warehouse w)
      (ser { w_name = Printf.sprintf "wh-%d" w; w_tax = 0.05; w_ytd = 300000.0 });
    for i = 1 to config.items do
      add (k_item w i)
        (ser { i_name = Printf.sprintf "item-%d" i; i_price = 1.0 +. float_of_int (i mod 100) });
      add (k_stock w i)
        (ser { s_quantity = 50 + Rng.int rng 50; s_ytd = 0; s_order_cnt = 0; s_remote_cnt = 0 })
    done;
    for d = 1 to config.districts_per_warehouse do
      add (k_district w d)
        (ser { d_name = Printf.sprintf "d-%d" d; d_tax = 0.05; d_ytd = 30000.0; d_next_o_id = 1 });
      add (k_no_first w d) (ser 1);
      let index : (string, int list) Hashtbl.t = Hashtbl.create 16 in
      for c = 1 to config.customers_per_district do
        let c_last = last_name_of (c - 1) in
        add (k_customer w d c)
          (ser
             {
               c_last;
               c_credit = (if Rng.int rng 10 = 0 then "BC" else "GC");
               c_discount = 0.1;
               c_balance = -10.0;
               c_ytd_payment = 10.0;
               c_payment_cnt = 1;
               c_delivery_cnt = 0;
             });
        Hashtbl.replace index c_last
          (c :: Option.value ~default:[] (Hashtbl.find_opt index c_last))
      done;
      Hashtbl.iter (fun last cs -> add (k_customer_index w d last) (ser (List.sort compare cs))) index
    done;
    commit_batch (List.rev !puts)
  done

(* --- transaction profiles ------------------------------------------------ *)

type txn_kind = New_order | Payment | Order_status | Delivery | Stock_level

let kind_name = function
  | New_order -> "NewOrder"
  | Payment -> "Payment"
  | Order_status -> "OrderStatus"
  | Delivery -> "Delivery"
  | Stock_level -> "StockLevel"

let pick_kind rng =
  let r = Rng.int rng 100 in
  if r < 45 then New_order
  else if r < 88 then Payment
  else if r < 92 then Order_status
  else if r < 96 then Delivery
  else Stock_level

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let get_rec client txn key : ('a, Types.abort_reason) result =
  match Client.get client txn key with
  | Ok (Some v) -> Ok (deser v)
  | Ok None -> Error Types.Integrity (* load invariant: record must exist *)
  | Error e -> Error e

let put_rec client txn key v =
  match Client.put client txn key (ser v) with Ok () -> Ok () | Error e -> Error e

(* NURand-ish customer selection: skewed towards a hot subset. *)
let pick_customer config rng =
  let n = config.customers_per_district in
  let a = Rng.int rng n and b = Rng.int rng n in
  1 + min a b

let pick_district config rng = 1 + Rng.int rng config.districts_per_warehouse

let new_order config client rng ~home txn =
  let d = pick_district config rng in
  let c = pick_customer config rng in
  let ol_cnt = 5 + Rng.int rng 11 in
  (* 1% of NewOrders roll back on an invalid item (spec 2.4.1.4). *)
  let rollback = Rng.int rng 100 = 0 in
  let* _w = (get_rec client txn (k_warehouse home) : (warehouse, _) result) in
  let* district = (get_rec client txn (k_district home d) : (district, _) result) in
  let o_id = district.d_next_o_id in
  let* () =
    put_rec client txn (k_district home d) { district with d_next_o_id = o_id + 1 }
  in
  let rec lines n total =
    if n > ol_cnt then Ok total
    else begin
      let remote = Rng.int rng 100 < config.remote_item_pct && config.warehouses > 1 in
      let supply_w =
        if remote then begin
          let rec other () =
            let w = 1 + Rng.int rng config.warehouses in
            if w = home then other () else w
          in
          other ()
        end
        else home
      in
      let i_id =
        if rollback && n = ol_cnt then config.items + 1 (* unused item *)
        else 1 + Rng.int rng config.items
      in
      if i_id > config.items then Error Types.Rolled_back
      else
        let* item = (get_rec client txn (k_item home i_id) : (item, _) result) in
        let* stock = (get_rec client txn (k_stock supply_w i_id) : (stock, _) result) in
        let qty = 1 + Rng.int rng 10 in
        let s_quantity =
          if stock.s_quantity >= qty + 10 then stock.s_quantity - qty
          else stock.s_quantity - qty + 91
        in
        let* () =
          put_rec client txn (k_stock supply_w i_id)
            {
              s_quantity;
              s_ytd = stock.s_ytd + qty;
              s_order_cnt = stock.s_order_cnt + 1;
              s_remote_cnt = (stock.s_remote_cnt + if remote then 1 else 0);
            }
        in
        let amount = float_of_int qty *. item.i_price in
        let* () =
          put_rec client txn
            (k_order_line home d o_id n)
            {
              ol_i_id = i_id;
              ol_supply_w_id = supply_w;
              ol_quantity = qty;
              ol_amount = amount;
              ol_delivery_d = None;
            }
        in
        lines (n + 1) (total +. amount)
    end
  in
  let* _total = lines 1 0.0 in
  let* () =
    put_rec client txn (k_order home d o_id)
      { o_c_id = c; o_entry_d = 0; o_carrier_id = None; o_ol_cnt = ol_cnt }
  in
  let* () = put_rec client txn (k_customer_last_order home d c) o_id in
  Ok ()

let payment config client rng ~home txn =
  let d = pick_district config rng in
  let amount = 1.0 +. Rng.float rng 4999.0 in
  (* 15% of payments are for a customer of a remote warehouse (2.5.1.2). *)
  let c_w, c_d =
    if Rng.int rng 100 < config.remote_customer_pct && config.warehouses > 1 then begin
      let rec other () =
        let w = 1 + Rng.int rng config.warehouses in
        if w = home then other () else w
      in
      (other (), pick_district config rng)
    end
    else (home, d)
  in
  let* w = (get_rec client txn (k_warehouse home) : (warehouse, _) result) in
  let* () = put_rec client txn (k_warehouse home) { w with w_ytd = w.w_ytd +. amount } in
  let* district = (get_rec client txn (k_district home d) : (district, _) result) in
  let* () =
    put_rec client txn (k_district home d)
      { district with d_ytd = district.d_ytd +. amount }
  in
  (* 60% select customer by last name through the index (2.5.1.2). *)
  let* c_id =
    if Rng.int rng 100 < 60 then begin
      let last = last_name_of (Rng.int rng config.customers_per_district) in
      match Client.get client txn (k_customer_index c_w c_d last) with
      | Ok (Some v) -> (
          let ids : int list = deser v in
          match ids with
          | [] -> Ok (pick_customer config rng)
          | _ -> Ok (List.nth ids (List.length ids / 2)) (* median, per spec *))
      | Ok None -> Ok (pick_customer config rng)
      | Error e -> Error e
    end
    else Ok (pick_customer config rng)
  in
  let* cust = (get_rec client txn (k_customer c_w c_d c_id) : (customer, _) result) in
  let* () =
    put_rec client txn (k_customer c_w c_d c_id)
      {
        cust with
        c_balance = cust.c_balance -. amount;
        c_ytd_payment = cust.c_ytd_payment +. amount;
        c_payment_cnt = cust.c_payment_cnt + 1;
      }
  in
  let* () =
    put_rec client txn
      (k_history home d c_id (Rng.int rng max_int))
      (amount, home, d, c_w, c_d)
  in
  Ok ()

let order_status config client rng ~home txn =
  let d = pick_district config rng in
  let c = pick_customer config rng in
  let* _cust = (get_rec client txn (k_customer home d c) : (customer, _) result) in
  match Client.get client txn (k_customer_last_order home d c) with
  | Ok None -> Ok () (* no order yet *)
  | Error e -> Error e
  | Ok (Some v) ->
      let o_id : int = deser v in
      let* order = (get_rec client txn (k_order home d o_id) : (order, _) result) in
      let rec read_lines n =
        if n > order.o_ol_cnt then Ok ()
        else
          match Client.get client txn (k_order_line home d o_id n) with
          | Ok _ -> read_lines (n + 1)
          | Error e -> Error e
      in
      read_lines 1

let delivery config client rng ~home txn =
  ignore rng;
  let carrier = 1 + Rng.int rng 10 in
  let rec districts d =
    if d > config.districts_per_warehouse then Ok ()
    else
      let* first = (get_rec client txn (k_no_first home d) : (int, _) result) in
      let* district = (get_rec client txn (k_district home d) : (district, _) result) in
      if first >= district.d_next_o_id then districts (d + 1) (* nothing undelivered *)
      else
        let o_id = first in
        let* order = (get_rec client txn (k_order home d o_id) : (order, _) result) in
        let* () =
          put_rec client txn (k_order home d o_id)
            { order with o_carrier_id = Some carrier }
        in
        let rec sum_lines n total =
          if n > order.o_ol_cnt then Ok total
          else
            let* ol =
              (get_rec client txn (k_order_line home d o_id n) : (order_line, _) result)
            in
            let* () =
              put_rec client txn (k_order_line home d o_id n)
                { ol with ol_delivery_d = Some 1 }
            in
            sum_lines (n + 1) (total +. ol.ol_amount)
        in
        let* total = sum_lines 1 0.0 in
        let* cust =
          (get_rec client txn (k_customer home d order.o_c_id) : (customer, _) result)
        in
        let* () =
          put_rec client txn (k_customer home d order.o_c_id)
            {
              cust with
              c_balance = cust.c_balance +. total;
              c_delivery_cnt = cust.c_delivery_cnt + 1;
            }
        in
        let* () = put_rec client txn (k_no_first home d) (o_id + 1) in
        districts (d + 1)
  in
  districts 1

let stock_level config client rng ~home txn =
  let d = pick_district config rng in
  let threshold = 10 + Rng.int rng 11 in
  let* district = (get_rec client txn (k_district home d) : (district, _) result) in
  let next = district.d_next_o_id in
  let lo = max 1 (next - 20) in
  let seen = Hashtbl.create 64 in
  let low = ref 0 in
  let rec orders o =
    if o >= next then Ok ()
    else
      match Client.get client txn (k_order home d o) with
      | Error e -> Error e
      | Ok None -> orders (o + 1)
      | Ok (Some v) ->
          let order : order = deser v in
          let rec lines n =
            if n > order.o_ol_cnt then Ok ()
            else
              match Client.get client txn (k_order_line home d o n) with
              | Error e -> Error e
              | Ok None -> lines (n + 1)
              | Ok (Some lv) ->
                  let ol : order_line = deser lv in
                  if not (Hashtbl.mem seen ol.ol_i_id) then begin
                    Hashtbl.replace seen ol.ol_i_id ();
                    match Client.get client txn (k_stock home ol.ol_i_id) with
                    | Error e -> Error e
                    | Ok None -> lines (n + 1)
                    | Ok (Some sv) ->
                        let stock : stock = deser sv in
                        if stock.s_quantity < threshold then incr low;
                        lines (n + 1)
                  end
                  else lines (n + 1)
          in
          (match lines 1 with Ok () -> orders (o + 1) | Error e -> Error e)
  in
  let* () = orders lo in
  Ok ()

let run config client rng ~nodes ~home kind =
  let coord = 1 + home_node config ~nodes ~warehouse:home in
  Client.with_txn client ~coord (fun txn ->
      match kind with
      | New_order -> new_order config client rng ~home txn
      | Payment -> payment config client rng ~home txn
      | Order_status -> order_status config client rng ~home txn
      | Delivery -> delivery config client rng ~home txn
      | Stock_level -> stock_level config client rng ~home txn)

module Check = struct
  let district_orders config client ~warehouse =
    match
      Client.with_txn client (fun txn ->
          let ok = ref true in
          let rec go d =
            if d > config.districts_per_warehouse then Ok !ok
            else
              let* district =
                (get_rec client txn (k_district warehouse d) : (district, _) result)
              in
              let top = district.d_next_o_id - 1 in
              (if top >= 1 then
                 match Client.get client txn (k_order warehouse d top) with
                 | Ok (Some _) -> ()
                 | _ -> ok := false);
              (match Client.get client txn (k_order warehouse d (top + 1)) with
              | Ok (Some _) -> ok := false
              | _ -> ());
              go (d + 1)
          in
          go 1)
    with
    | Ok b -> b
    | Error _ -> false
end
