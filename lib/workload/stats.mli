(** Latency/throughput accounting for benchmark runs. *)

type t

val create : unit -> t

val record : t -> latency_ns:int -> unit
(** One committed transaction. *)

val record_abort : t -> unit

val merge : t -> t -> t
val committed : t -> int
val aborted : t -> int

val throughput_tps : t -> duration_ns:int -> float
val mean_latency_ms : t -> float
val percentile_ms : t -> float -> float
(** [percentile_ms t 99.0] — exact over all recorded samples. *)

val summary : t -> duration_ns:int -> string
