(** Latency/throughput accounting for benchmark runs. *)

type t

val create : unit -> t

val record : t -> latency_ns:int -> unit
(** One committed transaction. *)

val record_abort : t -> unit

val merge : t -> t -> t
val committed : t -> int
val aborted : t -> int

val throughput_tps : t -> duration_ns:int -> float
val mean_latency_ms : t -> float
(** Exact (sum/count are kept precisely). *)

val percentile_ms : t -> float -> float
(** [percentile_ms t 99.0]. Samples live in a {!Treaty_obs.Metrics.Hist}
    log-scale histogram (exact below ~1 µs, <0.2% relative error above), so
    percentiles are bucket-resolution rather than exact — the price of O(1)
    memory per sample instead of the old per-sample list. *)

val summary : t -> duration_ns:int -> string
