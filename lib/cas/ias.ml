let platform_key = "intel-platform-root-key"
let latency_ns = 120_000_000 (* ~120 ms internet round trip *)

let verify sim ~expected_measurement quote =
  Treaty_sim.Sim.sleep sim latency_ns;
  Treaty_tee.Quote.verify ~las_key:platform_key ~expected_measurement quote
