type t = { node_id : int; key : string; sim : Treaty_sim.Sim.t }

let deploy sim ~node_id =
  {
    node_id;
    key = Treaty_crypto.Sha256.digest_string (Printf.sprintf "las-key:%d" node_id);
    sim;
  }

let node_id t = t.node_id
let signing_key t = t.key

let quote t enclave ~report_data =
  (* Local attestation: cheap compared to IAS, but not free. *)
  Treaty_sim.Sim.sleep t.sim 200_000;
  Treaty_tee.Quote.sign ~las_key:t.key
    ~measurement:(Treaty_tee.Enclave.measurement enclave)
    ~report_data
