(** Intel Attestation Service stand-in (§VI).

    The IAS is only contacted once per deployment — to attest the CAS itself
    — precisely because it is slow (an internet round trip) and single-node.
    This model verifies a quote signed with the platform root key and charges
    that latency, which is what makes a CAS-per-datacenter worthwhile. *)

val platform_key : string
(** Root of trust shared between "hardware" (LAS deployment) and IAS. In
    real SGX this is the EPID/DCAP key hierarchy. *)

val verify :
  Treaty_sim.Sim.t ->
  expected_measurement:string ->
  Treaty_tee.Quote.t ->
  bool
(** Verify a platform-signed quote; sleeps the ~WAN round-trip. *)

val latency_ns : int
