(** Configuration and Attestation Service (§VI).

    One CAS runs inside the datacenter: the service provider attests it once
    over IAS, then the CAS attests every Treaty instance through the per-node
    LAS (whose deployments it verified), supplying attested instances with
    the cluster secrets and configuration — network key, storage keys, node
    addresses. It also authenticates clients.

    The CAS is deliberately a single point of failure for *recovery* (not
    for running transactions): "in case CAS fails, crashed nodes cannot
    recover" — the recovery tests exercise exactly that.

    Transport: the CAS answers two RPC kinds on its endpoint. Provisioning
    responses are encrypted under a key derived from the LAS signing key and
    the nonce in the quote's report data, standing in for the RA-TLS channel
    a real deployment uses. *)

val kind_attest : int
val kind_client_auth : int

type t

val bootstrap :
  rpc:Treaty_rpc.Erpc.t ->
  enclave:Treaty_tee.Enclave.t ->
  master_secret:string ->
  expected_measurement:string ->
  config_blob:string ->
  (t, [ `Ias_rejected ]) result
(** Start the CAS: attest its own enclave over IAS (slow, once), then serve.
    [config_blob] is the opaque cluster configuration handed to provisioned
    nodes; [expected_measurement] is the Treaty code identity the CAS will
    accept. *)

val deploy_las : t -> Las.t -> unit
(** Verify a LAS deployment (over IAS) and record its signing key. *)

val master : t -> Treaty_crypto.Keys.master
val node_id : t -> int

val register_client : t -> client_id:int -> string
(** Out-of-band client registration; returns the client's auth token. *)

val shutdown : t -> unit
(** Kill the CAS (tests: recovery must then fail). *)

(** Node-side helper: attest to the CAS and receive provisioned secrets. *)
module Attest : sig
  type provision = {
    master_secret : string;
    config_blob : string;
  }

  val run :
    rpc:Treaty_rpc.Erpc.t ->
    enclave:Treaty_tee.Enclave.t ->
    las:Las.t ->
    cas_node:int ->
    (provision, [ `Rejected | `Cas_unreachable ]) result
  (** Generate a fresh nonce, obtain a LAS-signed quote, send it to the CAS,
      decrypt the provisioning response. *)
end
