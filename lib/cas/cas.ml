module Sim = Treaty_sim.Sim
module Erpc = Treaty_rpc.Erpc
module Enclave = Treaty_tee.Enclave
module Quote = Treaty_tee.Quote
module Wire = Treaty_util.Wire
module Aead = Treaty_crypto.Aead

let kind_attest = 120
let kind_client_auth = 121

type t = {
  rpc : Erpc.t;
  enclave : Enclave.t;
  master_secret : string;
  master : Treaty_crypto.Keys.master;
  expected_measurement : string;
  config_blob : string;
  las_keys : (int, string) Hashtbl.t;  (* node id -> LAS signing key *)
  mutable alive : bool;
}

let encode_quote (q : Quote.t) =
  let b = Buffer.create 128 in
  Wire.wstr b q.measurement;
  Wire.wstr b q.report_data;
  Wire.wstr b q.signature;
  Buffer.contents b

let decode_quote payload =
  let r = Wire.reader payload in
  let measurement = Wire.rstr r in
  let report_data = Wire.rstr r in
  let signature = Wire.rstr r in
  { Quote.measurement; report_data; signature }

(* Channel key for the provisioning response: both ends can derive it from
   the LAS signing key and the fresh nonce in the quote (RA-TLS stand-in). *)
let channel_key ~las_key ~nonce =
  Aead.key_of_string (Treaty_crypto.Sha256.digest_string (las_key ^ ":" ^ nonce))

let handle_attest t payload =
  if not t.alive then ""
  else begin
    let r = Wire.reader payload in
    let node = Wire.r64 r in
    let quote = decode_quote (Wire.rstr r) in
    match Hashtbl.find_opt t.las_keys node with
    | None -> ""
    | Some las_key ->
        if not (Quote.verify ~las_key ~expected_measurement:t.expected_measurement quote)
        then "" (* rejected: wrong code identity or forged signature *)
        else begin
          let b = Buffer.create 256 in
          Wire.wstr b t.master_secret;
          Wire.wstr b t.config_blob;
          let key = channel_key ~las_key ~nonce:quote.report_data in
          Enclave.charge_crypto t.enclave ~bytes:(Buffer.length b);
          let ivg = Aead.Iv_gen.create ~node_id:(Erpc.node_id t.rpc) in
          Aead.seal_packed key ~iv:(Aead.Iv_gen.next ivg) (Buffer.contents b)
        end
  end

let handle_client_auth t payload =
  if not t.alive then ""
  else begin
    let r = Wire.reader payload in
    let client_id = Wire.r64 r in
    (* Client registration is assumed pre-authorized out of band; hand back
       the token the storage nodes will verify. *)
    Treaty_crypto.Keys.client_token t.master ~client_id
  end

let bootstrap ~rpc ~enclave ~master_secret ~expected_measurement ~config_blob =
  (* The service provider verifies the CAS itself over IAS before trusting
     it with the master secret. *)
  let self_quote =
    Quote.sign ~las_key:Ias.platform_key
      ~measurement:(Enclave.measurement enclave)
      ~report_data:"cas-bootstrap"
  in
  if not
       (Ias.verify (Enclave.sim enclave)
          ~expected_measurement:(Enclave.measurement enclave)
          self_quote)
  then Error `Ias_rejected
  else begin
    let t =
      {
        rpc;
        enclave;
        master_secret;
        master = Treaty_crypto.Keys.master_of_secret master_secret;
        expected_measurement;
        config_blob;
        las_keys = Hashtbl.create 8;
        alive = true;
      }
    in
    Erpc.register rpc ~kind:kind_attest (fun _meta payload -> handle_attest t payload);
    Erpc.register rpc ~kind:kind_client_auth (fun _meta payload ->
        handle_client_auth t payload);
    Ok t
  end

let deploy_las t las =
  (* Modelled as verified over IAS at deployment time. *)
  Hashtbl.replace t.las_keys (Las.node_id las) (Las.signing_key las)

let master t = t.master
let node_id t = Erpc.node_id t.rpc
let register_client t ~client_id = Treaty_crypto.Keys.client_token t.master ~client_id

let shutdown t =
  t.alive <- false;
  Erpc.shutdown t.rpc

module Attest = struct
  type provision = { master_secret : string; config_blob : string }

  let run ~rpc ~enclave ~las ~cas_node =
    let nonce =
      Treaty_crypto.Sha256.digest_string
        (Printf.sprintf "nonce:%d:%d" (Erpc.node_id rpc)
           (Sim.now (Enclave.sim enclave)))
    in
    let quote = Las.quote las enclave ~report_data:nonce in
    let b = Buffer.create 256 in
    Wire.w64 b (Erpc.node_id rpc);
    Wire.wstr b (encode_quote quote);
    (* Attestation is a bootstrap-time handshake riding IAS-scale internet
       latencies, and at cluster sizes in the hundreds the CAS time-slices a
       whole burst of concurrent quote verifications — so it gets its own
       deadline, far above the data-path RPC timeout. *)
    match
      Erpc.call rpc ~dst:cas_node ~kind:kind_attest
        ~timeout_ns:2_000_000_000 (Buffer.contents b)
    with
    | Error (`Timeout | `Tampered) -> Error `Cas_unreachable
    | Ok "" -> Error `Rejected
    | Ok sealed -> (
        let key = channel_key ~las_key:(Las.signing_key las) ~nonce in
        Enclave.charge_crypto enclave ~bytes:(String.length sealed);
        match Aead.open_packed key sealed with
        | Error (`Mac_mismatch | `Truncated) -> Error `Rejected
        | Ok plain -> (
            match
              let r = Wire.reader plain in
              let master_secret = Wire.rstr r in
              let config_blob = Wire.rstr r in
              { master_secret; config_blob }
            with
            | p -> Ok p
            | exception Wire.Malformed _ -> Error `Rejected))
end
