(** Local Attestation Service (§VI).

    "The LAS replaces the Quoting Enclave, collecting and signing quotes for
    all Treaty instances running on the node." One LAS runs per machine; it
    is itself attested by the CAS over IAS at deployment, which establishes
    the per-LAS signing key the CAS will accept quotes under. *)

type t

val deploy : Treaty_sim.Sim.t -> node_id:int -> t
(** Install a LAS on a node. (In the bootstrap flow the CAS verifies this
    deployment over IAS; see {!Cas.deploy_las}.) *)

val node_id : t -> int
val signing_key : t -> string

val quote : t -> Treaty_tee.Enclave.t -> report_data:string -> Treaty_tee.Quote.t
(** Sign a quote for an enclave running on this node. *)
