(** Authenticated encryption with associated data.

    ChaCha20 + HMAC-SHA256 in encrypt-then-MAC composition, with the wire
    sizes Treaty's message layout prescribes (§VII-A): a 12-byte IV and a
    16-byte (truncated) MAC. Tampering with the IV, the associated data, the
    ciphertext or the MAC makes {!open_} return [Error `Mac_mismatch]. *)

type key

val iv_size : int
(** 12 bytes. *)

val mac_size : int
(** 16 bytes. *)

val overhead : int
(** [iv_size + mac_size]: bytes added by {!seal_packed}. *)

val key_of_string : string -> key
(** Derive an AEAD key (independent cipher and MAC subkeys) from arbitrary
    key material. *)

val seal : key -> iv:string -> ?aad:string -> string -> string * string
(** [seal k ~iv ~aad pt] is [(ciphertext, mac)]. The IV must be unique per
    key; use {!Iv_gen}. *)

val open_ :
  key ->
  iv:string ->
  ?aad:string ->
  mac:string ->
  string ->
  (string, [ `Mac_mismatch ]) result

val seal_packed : key -> iv:string -> ?aad:string -> string -> string
(** [iv || ciphertext || mac] as one string. *)

val open_packed :
  key -> ?aad:string -> string -> (string, [ `Mac_mismatch | `Truncated ]) result

(** Deterministic IV generator: a per-key 96-bit counter, never reused. *)
module Iv_gen : sig
  type t

  val create : node_id:int -> t
  (** Node id is mixed into the IV so distinct nodes sharing a network key
      never collide. *)

  val next : t -> string
end
