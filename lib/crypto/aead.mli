(** Authenticated encryption with associated data.

    ChaCha20 + HMAC-SHA256 in encrypt-then-MAC composition, with the wire
    sizes Treaty's message layout prescribes (§VII-A): a 12-byte IV and a
    16-byte (truncated) MAC. Tampering with the IV, the associated data, the
    ciphertext or the MAC makes {!open_} return [Error `Mac_mismatch]. *)

type key

val iv_size : int
(** 12 bytes. *)

val mac_size : int
(** 16 bytes. *)

val overhead : int
(** [iv_size + mac_size]: bytes added by {!seal_packed}. *)

val key_of_string : string -> key
(** Derive an AEAD key (independent cipher and MAC subkeys) from arbitrary
    key material. *)

val seal : key -> iv:string -> ?aad:string -> string -> string * string
(** [seal k ~iv ~aad pt] is [(ciphertext, mac)]. The IV must be unique per
    key; use {!Iv_gen}. *)

val open_ :
  key ->
  iv:string ->
  ?aad:string ->
  mac:string ->
  string ->
  (string, [ `Mac_mismatch ]) result

val seal_packed : key -> iv:string -> ?aad:string -> string -> string
(** [iv || ciphertext || mac] as one string. *)

val open_packed :
  key -> ?aad:string -> string -> (string, [ `Mac_mismatch | `Truncated ]) result

(** {2 In-place region operations}

    The zero-copy wire path seals and opens whole packet regions inside a
    mempool-backed buffer: one keystream pass and one MAC per packet, no
    intermediate strings. The tag transcript matches {!seal}/{!open_}
    exactly, so region-sealed and string-sealed messages interverify. *)

val xor_region : key -> iv:string -> Bytes.t -> off:int -> len:int -> unit
(** Encrypt (or decrypt — it is an involution) [buf.[off .. off+len)] in
    place. *)

val tag_region :
  key ->
  iv:string ->
  Bytes.t ->
  aad_off:int ->
  aad_len:int ->
  ct_off:int ->
  ct_len:int ->
  string
(** 16-byte truncated tag over [iv], the AAD region and the ciphertext
    region of one buffer (length-framed like {!seal}). *)

val check_region :
  key ->
  iv:string ->
  Bytes.t ->
  aad_off:int ->
  aad_len:int ->
  ct_off:int ->
  ct_len:int ->
  mac:string ->
  bool
(** Timing-safe verification of {!tag_region}. *)

(** Deterministic IV generator: a per-key 96-bit counter, never reused. *)
module Iv_gen : sig
  type t

  val create : node_id:int -> t
  (** Node id is mixed into the IV so distinct nodes sharing a network key
      never collide. *)

  val next : t -> string
  (** A fresh, unique 12-byte IV. *)

  val next_into : t -> Bytes.t -> int -> unit
  (** [next_into t buf off] writes the next IV at [buf.[off .. off+12)]
      without allocating — the hot path stamps IVs directly into the packet
      buffer. *)
end
