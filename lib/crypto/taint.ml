module Sanitizer = Treaty_util.Sanitizer

let ring_size = 128
let enabled = ref false
let ring : string Weak.t = Weak.create ring_size
let pos = ref 0

let clear () =
  for i = 0 to ring_size - 1 do
    Weak.set ring i None
  done;
  pos := 0

let enable () =
  clear ();
  enabled := true

let disable () =
  enabled := false;
  clear ()

let is_enabled () = !enabled

(* Strings shorter than 4 bytes may be physically shared literals; tracking
   them would risk false positives without catching any real leak (every
   sealed payload is a framed message or value well above that). *)
let register pt =
  if !enabled && String.length pt >= 4 then begin
    Weak.set ring !pos (Some pt);
    pos := (!pos + 1) mod ring_size
  end

let check ~what buf =
  if !enabled then
    let rec scan i =
      if i < ring_size then
        match Weak.get ring i with
        | Some p when p == buf ->
            Weak.set ring i None;
            Sanitizer.record Sanitizer.Plaintext
              (Printf.sprintf "%s: plaintext buffer (%d bytes) crossed the enclave boundary"
                 what (String.length buf))
        | Some _ | None -> scan (i + 1)
    in
    scan 0
