type key = { enc : string; mac : Hmac.t }

let iv_size = 12
let mac_size = 16
let overhead = iv_size + mac_size

let key_of_string material =
  let enc = Sha256.digest_string ("treaty-aead-enc:" ^ material) in
  let mac_key = Sha256.digest_string ("treaty-aead-mac:" ^ material) in
  { enc; mac = Hmac.create mac_key }

let len32 s =
  let n = String.length s in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (n land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.unsafe_to_string b

let tag key ~iv ~aad ct =
  (* Unambiguous framing: lengths of aad and ct are MACed too. *)
  let full = Hmac.mac_parts key.mac [ iv; len32 aad; aad; len32 ct; ct ] in
  String.sub full 0 mac_size

let seal key ~iv ?(aad = "") pt =
  if String.length iv <> iv_size then invalid_arg "Aead.seal: iv size";
  Taint.register pt;
  let ct = Chacha20.xor ~key:key.enc ~nonce:iv pt in
  (ct, tag key ~iv ~aad ct)

let open_ key ~iv ?(aad = "") ~mac ct =
  if
    String.length iv = iv_size
    && String.length mac = mac_size
    && Hmac.equal_tags mac (tag key ~iv ~aad ct)
  then Ok (Chacha20.xor ~key:key.enc ~nonce:iv ct)
  else Error `Mac_mismatch

let seal_packed key ~iv ?aad pt =
  let ct, mac = seal key ~iv ?aad pt in
  iv ^ ct ^ mac

let open_packed key ?aad packed =
  if String.length packed < overhead then Error `Truncated
  else begin
    let iv = String.sub packed 0 iv_size in
    let ct_len = String.length packed - overhead in
    let ct = String.sub packed iv_size ct_len in
    let mac = String.sub packed (iv_size + ct_len) mac_size in
    match open_ key ~iv ?aad ~mac ct with
    | Ok pt -> Ok pt
    | Error `Mac_mismatch -> Error `Mac_mismatch
  end

module Iv_gen = struct
  type t = { prefix : string; mutable counter : int }

  let create ~node_id =
    let prefix =
      let b = Bytes.create 4 in
      Bytes.set b 0 (Char.chr (node_id land 0xff));
      Bytes.set b 1 (Char.chr ((node_id lsr 8) land 0xff));
      Bytes.set b 2 (Char.chr ((node_id lsr 16) land 0xff));
      Bytes.set b 3 (Char.chr ((node_id lsr 24) land 0xff));
      Bytes.unsafe_to_string b
    in
    { prefix; counter = 0 }

  let next t =
    t.counter <- t.counter + 1;
    let b = Bytes.create 8 in
    for i = 0 to 7 do
      Bytes.set b i (Char.chr ((t.counter lsr (8 * i)) land 0xff))
    done;
    t.prefix ^ Bytes.unsafe_to_string b
end
