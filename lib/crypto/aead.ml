type key = { enc : string; mac : Hmac.t }

let iv_size = 12
let mac_size = 16
let overhead = iv_size + mac_size

let key_of_string material =
  let enc = Sha256.digest_string ("treaty-aead-enc:" ^ material) in
  let mac_key = Sha256.digest_string ("treaty-aead-mac:" ^ material) in
  { enc; mac = Hmac.create mac_key }

let len32_int n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (n land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.unsafe_to_string b

let len32 s = len32_int (String.length s)

let tag key ~iv ~aad ct =
  (* Unambiguous framing: lengths of aad and ct are MACed too. *)
  let full = Hmac.mac_parts key.mac [ iv; len32 aad; aad; len32 ct; ct ] in
  String.sub full 0 mac_size

let seal key ~iv ?(aad = "") pt =
  if String.length iv <> iv_size then invalid_arg "Aead.seal: iv size";
  Taint.register pt;
  let ct = Chacha20.xor ~key:key.enc ~nonce:iv pt in
  (ct, tag key ~iv ~aad ct)

let open_ key ~iv ?(aad = "") ~mac ct =
  if
    String.length iv = iv_size
    && String.length mac = mac_size
    && Hmac.equal_tags mac (tag key ~iv ~aad ct)
  then Ok (Chacha20.xor ~key:key.enc ~nonce:iv ct)
  else Error `Mac_mismatch

let seal_packed key ~iv ?aad pt =
  let ct, mac = seal key ~iv ?aad pt in
  iv ^ ct ^ mac

let open_packed key ?aad packed =
  if String.length packed < overhead then Error `Truncated
  else begin
    let iv = String.sub packed 0 iv_size in
    let ct_len = String.length packed - overhead in
    let ct = String.sub packed iv_size ct_len in
    let mac = String.sub packed (iv_size + ct_len) mac_size in
    match open_ key ~iv ?aad ~mac ct with
    | Ok pt -> Ok pt
    | Error `Mac_mismatch -> Error `Mac_mismatch
  end

let xor_region key ~iv buf ~off ~len =
  if String.length iv <> iv_size then invalid_arg "Aead.xor_region: iv size";
  Chacha20.xor_into ~key:key.enc ~nonce:iv buf ~off ~len

let tag_region key ~iv buf ~aad_off ~aad_len ~ct_off ~ct_len =
  (* Same transcript as {!tag}: iv, len32 aad, aad, len32 ct, ct — so a
     region-sealed message verifies against a string-sealed one and vice
     versa. The regions are fed straight from the packet buffer. *)
  let s = Hmac.stream key.mac in
  Hmac.feed_string s iv;
  Hmac.feed_string s (len32_int aad_len);
  Hmac.feed_bytes s buf aad_off aad_len;
  Hmac.feed_string s (len32_int ct_len);
  Hmac.feed_bytes s buf ct_off ct_len;
  String.sub (Hmac.stream_mac s) 0 mac_size

let check_region key ~iv buf ~aad_off ~aad_len ~ct_off ~ct_len ~mac =
  String.length iv = iv_size
  && String.length mac = mac_size
  && Hmac.equal_tags mac (tag_region key ~iv buf ~aad_off ~aad_len ~ct_off ~ct_len)

module Iv_gen = struct
  type t = { prefix : string; mutable counter : int; scratch : Bytes.t }

  let create ~node_id =
    let prefix =
      let b = Bytes.create 4 in
      Bytes.set b 0 (Char.chr (node_id land 0xff));
      Bytes.set b 1 (Char.chr ((node_id lsr 8) land 0xff));
      Bytes.set b 2 (Char.chr ((node_id lsr 16) land 0xff));
      Bytes.set b 3 (Char.chr ((node_id lsr 24) land 0xff));
      Bytes.unsafe_to_string b
    in
    { prefix; counter = 0; scratch = Bytes.create iv_size }

  let next_into t buf off =
    t.counter <- t.counter + 1;
    Bytes.blit_string t.prefix 0 buf off 4;
    let c = t.counter in
    for i = 0 to 7 do
      Bytes.unsafe_set buf (off + 4 + i) (Char.unsafe_chr ((c lsr (8 * i)) land 0xff))
    done

  let next t =
    next_into t t.scratch 0;
    (* One fresh string per IV (callers hold on to it); the intermediate
       8-byte counter buffer and concat are gone. *)
    Bytes.to_string t.scratch
end
