(** SHA-256 (FIPS 180-4), pure OCaml.

    Implemented from scratch because no crypto package is available in this
    offline environment. Exposes an incremental interface whose intermediate
    state can be copied — {!Hmac} exploits this to precompute the keyed inner
    and outer states once per key. *)

type ctx

val digest_size : int
(** 32 bytes. *)

val init : unit -> ctx
val copy : ctx -> ctx
val update : ctx -> bytes -> int -> int -> unit
(** [update ctx buf off len] absorbs [len] bytes of [buf] starting at [off]. *)

val update_string : ctx -> string -> unit
val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused afterwards. *)

val digest_bytes : bytes -> string
val digest_string : string -> string

val to_hex : string -> string
(** Lowercase hex of a raw digest (or any raw byte string). *)
