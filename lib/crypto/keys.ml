type master = Hmac.t

let master_of_secret secret = Hmac.create (Sha256.digest_string secret)
let derive m label = Hmac.mac m label
let network_key m = Aead.key_of_string (derive m "network")

let storage_key m ~node_id =
  Aead.key_of_string (derive m (Printf.sprintf "storage:%d" node_id))

let log_mac_key m ~node_id ~log = derive m (Printf.sprintf "log:%d:%s" node_id log)

let sealing_key m ~node_id =
  Aead.key_of_string (derive m (Printf.sprintf "seal:%d" node_id))

let client_token m ~client_id = derive m (Printf.sprintf "client:%d" client_id)

let verify_client_token m ~client_id ~token =
  Hmac.equal_tags (client_token m ~client_id) token
