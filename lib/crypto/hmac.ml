type t = { inner : Sha256.ctx; outer : Sha256.ctx }

let block_size = 64

let create key =
  let key =
    if String.length key > block_size then Sha256.digest_string key else key
  in
  let ipad = Bytes.make block_size '\x36' and opad = Bytes.make block_size '\x5c' in
  String.iteri
    (fun i c ->
      Bytes.set ipad i (Char.chr (Char.code c lxor 0x36));
      Bytes.set opad i (Char.chr (Char.code c lxor 0x5c)))
    key;
  let inner = Sha256.init () and outer = Sha256.init () in
  Sha256.update inner ipad 0 block_size;
  Sha256.update outer opad 0 block_size;
  { inner; outer }

let finish t inner_ctx =
  let inner_digest = Sha256.finalize inner_ctx in
  let outer_ctx = Sha256.copy t.outer in
  Sha256.update_string outer_ctx inner_digest;
  Sha256.finalize outer_ctx

let mac t msg =
  let ctx = Sha256.copy t.inner in
  Sha256.update_string ctx msg;
  finish t ctx

let mac_parts t parts =
  let ctx = Sha256.copy t.inner in
  List.iter (Sha256.update_string ctx) parts;
  finish t ctx

let mac_bytes t buf off len =
  let ctx = Sha256.copy t.inner in
  Sha256.update ctx buf off len;
  finish t ctx

type stream = { s_outer : Sha256.ctx; s_inner : Sha256.ctx }

let stream t = { s_outer = t.outer; s_inner = Sha256.copy t.inner }
let feed_string s data = Sha256.update_string s.s_inner data
let feed_bytes s buf off len = Sha256.update s.s_inner buf off len

let stream_mac s =
  let inner_digest = Sha256.finalize s.s_inner in
  let outer_ctx = Sha256.copy s.s_outer in
  Sha256.update_string outer_ctx inner_digest;
  Sha256.finalize outer_ctx

let equal_tags a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end

let verify t msg ~tag = equal_tags (mac t msg) tag
