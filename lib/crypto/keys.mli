(** Key hierarchy for a Treaty deployment.

    The CAS provisions each attested node with key material derived from a
    cluster master secret (§VI, "the CAS ... supplies the instance with the
    necessary configuration, e.g., network key"). All derivations are
    domain-separated HKDF-style expansions over HMAC-SHA256. *)

type master

val master_of_secret : string -> master

val derive : master -> string -> string
(** [derive m label] is a 32-byte subkey bound to [label]. *)

val network_key : master -> Aead.key
(** Shared AEAD key for node<->node RPC traffic. *)

val storage_key : master -> node_id:int -> Aead.key
(** Per-node AEAD key for SSTable blocks and log payloads. *)

val log_mac_key : master -> node_id:int -> log:string -> string
(** Per-node, per-log HMAC key for authenticated log chains. *)

val sealing_key : master -> node_id:int -> Aead.key
(** Per-node sealing key (counter-state sealing, §VI). *)

val client_token : master -> client_id:int -> string
(** Authentication token the CAS hands to a registered client. *)

val verify_client_token : master -> client_id:int -> token:string -> bool
(** Timing-safe check of a presented client token, so callers outside the
    crypto zone never touch the HMAC primitives directly. *)
