let key_size = 32
let nonce_size = 12
let mask = 0xffffffff

let[@inline] rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let[@inline] quarter st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let init_state ~key ~nonce ~counter =
  if String.length key <> key_size then invalid_arg "Chacha20: key size";
  if String.length nonce <> nonce_size then invalid_arg "Chacha20: nonce size";
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- le32 key (4 * i)
  done;
  st.(12) <- counter land mask;
  for i = 0 to 2 do
    st.(13 + i) <- le32 nonce (4 * i)
  done;
  st

let block_into ~state ~working out out_off =
  Array.blit state 0 working 0 16;
  for _round = 1 to 10 do
    quarter working 0 4 8 12;
    quarter working 1 5 9 13;
    quarter working 2 6 10 14;
    quarter working 3 7 11 15;
    quarter working 0 5 10 15;
    quarter working 1 6 11 12;
    quarter working 2 7 8 13;
    quarter working 3 4 9 14
  done;
  for i = 0 to 15 do
    let v = (working.(i) + state.(i)) land mask in
    Bytes.unsafe_set out (out_off + (4 * i)) (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set out (out_off + (4 * i) + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set out (out_off + (4 * i) + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set out (out_off + (4 * i) + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))
  done

let block ~key ~nonce ~counter =
  let state = init_state ~key ~nonce ~counter in
  let out = Bytes.create 64 in
  block_into ~state ~working:(Array.make 16 0) out 0;
  Bytes.unsafe_to_string out

let xor_into ~key ~nonce ?(counter = 1) buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Chacha20.xor_into: region out of bounds";
  let state = init_state ~key ~nonce ~counter in
  let working = Array.make 16 0 in
  let ks = Bytes.create 64 in
  let pos = ref 0 and blk = ref counter in
  while !pos < len do
    state.(12) <- !blk land mask;
    block_into ~state ~working ks 0;
    let n = min 64 (len - !pos) in
    for i = 0 to n - 1 do
      Bytes.unsafe_set buf (off + !pos + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get buf (off + !pos + i))
           lxor Char.code (Bytes.unsafe_get ks i)))
    done;
    pos := !pos + n;
    incr blk
  done

let xor ~key ~nonce ?(counter = 1) msg =
  let out = Bytes.of_string msg in
  xor_into ~key ~nonce ~counter out ~off:0 ~len:(Bytes.length out);
  Bytes.unsafe_to_string out
