(** HMAC-SHA256 (RFC 2104).

    A key can be preprocessed into a {!t} whose inner/outer pad states are
    computed once; each subsequent MAC then costs only the message blocks
    plus one extra compression. The authenticated logs MAC millions of small
    entries with the same key, so this matters. *)

type t

val create : string -> t
(** Preprocess a key of any length. *)

val mac : t -> string -> string
(** 32-byte tag over a message. *)

val mac_parts : t -> string list -> string
(** Tag over the concatenation of the parts, without building it. *)

val mac_bytes : t -> bytes -> int -> int -> string

(** {2 Incremental MACs}

    A [stream] absorbs discontiguous byte regions without concatenating
    them — the burst-level wire path MACs [iv || framing || ciphertext]
    straight out of the packet buffer. A stream is one-shot: after
    {!stream_mac} it must not be fed again. *)

type stream

val stream : t -> stream
(** Start from the precomputed keyed inner state (one ctx copy, no key
    reprocessing). *)

val feed_string : stream -> string -> unit
val feed_bytes : stream -> bytes -> int -> int -> unit
(** [feed_bytes s buf off len] absorbs [buf.[off .. off+len)]. *)

val stream_mac : stream -> string
(** Finalize: the 32-byte tag over everything fed so far. *)

val verify : t -> string -> tag:string -> bool
(** Constant-shape comparison of a full 32-byte tag. *)

val equal_tags : string -> string -> bool
(** Timing-safe equality on raw tags (any equal length). *)
