(** HMAC-SHA256 (RFC 2104).

    A key can be preprocessed into a {!t} whose inner/outer pad states are
    computed once; each subsequent MAC then costs only the message blocks
    plus one extra compression. The authenticated logs MAC millions of small
    entries with the same key, so this matters. *)

type t

val create : string -> t
(** Preprocess a key of any length. *)

val mac : t -> string -> string
(** 32-byte tag over a message. *)

val mac_parts : t -> string list -> string
(** Tag over the concatenation of the parts, without building it. *)

val mac_bytes : t -> bytes -> int -> int -> string

val verify : t -> string -> tag:string -> bool
(** Constant-shape comparison of a full 32-byte tag. *)

val equal_tags : string -> string -> bool
(** Timing-safe equality on raw tags (any equal length). *)
