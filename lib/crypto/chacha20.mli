(** ChaCha20 stream cipher (RFC 8439).

    Used as the confidentiality half of the {!Aead} construction. Pure OCaml,
    from scratch. *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 12 bytes. *)

val xor : key:string -> nonce:string -> ?counter:int -> string -> string
(** [xor ~key ~nonce msg] encrypts (or, being an involution, decrypts) [msg]
    with the keystream starting at block [counter] (default 1, per RFC 8439
    AEAD usage). *)

val xor_into :
  key:string -> nonce:string -> ?counter:int -> Bytes.t -> off:int -> len:int -> unit
(** In-place variant: applies the keystream to [buf.[off .. off+len)] with no
    intermediate copies. One keystream pass over a whole packet region is how
    the burst-level wire path avoids a per-sub-message cipher setup. *)

val block : key:string -> nonce:string -> counter:int -> string
(** One raw 64-byte keystream block (exposed for tests against the RFC
    vectors). *)
