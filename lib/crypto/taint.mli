(** Plaintext-taint tracking for TreatySan.

    Every buffer handed to {!Aead.seal} is a plaintext that must never
    itself leave the enclave — only its sealed form may. When enabled, the
    recent such buffers are kept in a bounded weak ring and the untrusted
    boundaries (netsim packet injection, host-memory writes in the storage
    layer) assert by physical identity ([==]) that the buffer they were
    handed is not one of them. Physical identity makes the check free of
    false positives by construction: sealing and decoding always produce
    fresh strings, so an alias can only mean the original plaintext was
    passed where ciphertext belongs.

    Only meaningful when the profile encrypts ([Config.profile.encryption]);
    plain profiles legitimately move plaintext everywhere. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val register : string -> unit
(** Remember a plaintext buffer (called by {!Aead.seal}). *)

val check : what:string -> string -> unit
(** [check ~what buf] records a {!Treaty_util.Sanitizer.Plaintext} violation
    if [buf] is physically one of the registered plaintexts. *)
