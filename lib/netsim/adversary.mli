(** Network adversary (threat model, §III).

    Treaty's adversary "can drop, delay, or manipulate network traffic". An
    adversary is a packet interposer installed on the {!Net}; each in-flight
    packet is presented to it and the returned actions are applied. Tests use
    the combinators here to mount the attacks the paper defends against and
    assert they are detected (MAC failure, duplicate-execution rejection). *)

type action =
  | Deliver  (** Pass through unmodified. *)
  | Drop
  | Delay of int  (** Extra nanoseconds before delivery. *)
  | Tamper of (string -> string)  (** Rewrite the wire payload. *)
  | Duplicate  (** Deliver twice (replay of a fresh packet). *)

type t = Packet.t -> action

val honest : t

val drop_matching : (Packet.t -> bool) -> t
val delay_matching : (Packet.t -> bool) -> ns:int -> t
val duplicate_matching : (Packet.t -> bool) -> t

val flip_byte : at:int -> (Packet.t -> bool) -> t
(** Flip one payload byte of matching packets (integrity attack). *)

val nth_matching : (Packet.t -> bool) -> n:int -> action -> t
(** Apply [action] to the [n]-th (1-based) matching packet only; everything
    else is delivered. Useful for targeting e.g. "the 3rd prepare". *)
