type t = { id : int; src : int; dst : int; size : int; payload : string }

let pp ppf t =
  Format.fprintf ppf "pkt#%d %d->%d (%dB)" t.id t.src t.dst t.size
