type action =
  | Deliver
  | Drop
  | Delay of int
  | Tamper of (string -> string)
  | Duplicate

type t = Packet.t -> action

let honest _ = Deliver
let drop_matching p pkt = if p pkt then Drop else Deliver
let delay_matching p ~ns pkt = if p pkt then Delay ns else Deliver
let duplicate_matching p pkt = if p pkt then Duplicate else Deliver

let flip_byte ~at p pkt =
  if p pkt then
    Tamper
      (fun payload ->
        if String.length payload = 0 then payload
        else begin
          let b = Bytes.of_string payload in
          let i = at mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
          Bytes.to_string b
        end)
  else Deliver

let nth_matching p ~n action =
  let seen = ref 0 in
  fun pkt ->
    if p pkt then begin
      incr seen;
      if !seen = n then action else Deliver
    end
    else Deliver
