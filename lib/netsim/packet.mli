(** Network packets as the simulated fabric sees them.

    The payload is an opaque wire string (already encrypted/MAC'd by the RPC
    layer when Treaty runs in a secure mode) — exactly what an adversary
    in Treaty's threat model gets to observe and manipulate. *)

type t = {
  id : int;  (** Unique per network, for logs and replay. *)
  src : int;
  dst : int;
  size : int;  (** Wire size in bytes (payload + simulated headers). *)
  payload : string;
}

val pp : Format.formatter -> t -> unit
