module Sim = Treaty_sim.Sim
module Scheduler = Treaty_sched.Scheduler

type endpoint_config = {
  bandwidth_bytes_per_ns : float;
  propagation_ns : int;
}

type endpoint = {
  config : endpoint_config;
  mutable handler : (Packet.t -> unit) option;
  mutable nic_free_at : int;  (** FIFO NIC serialization horizon. *)
}

type stats = {
  mutable packets : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable tampered : int;
  mutable duplicated : int;
}

let no_pkt = { Packet.id = 0; src = 0; dst = 0; size = 0; payload = "" }

(* A same-tick delivery batch: several packets arriving at the same
   simulated nanosecond ride one simulation event instead of one each. *)
type batch = {
  mutable pkts : Packet.t array;
  mutable n : int;
  mutable time : int;
  mutable openb : bool;  (** still the mergeable head batch *)
  mutable stamp : int;  (** event-schedule stamp right after arming *)
}

type t = {
  sim : Sim.t;
  cost : Treaty_sim.Costmodel.t;
  (* Dense endpoint table keyed by node id: ids are small ints (storage
     nodes 1..N, the CAS, client ids), so delivery is an array load where
     it used to be a Hashtbl probe per packet. *)
  mutable endpoints : endpoint option array;
  mutable adversary : Adversary.t;
  mutable next_packet_id : int;
  stats : stats;
  mutable capture_limit : int;
  mutable capture_buf : Packet.t array;  (** fixed ring, [capture_limit] slots *)
  mutable capture_n : int;  (** total packets ever captured *)
  mutable batch : batch;
  mutable spare : batch;  (** recycled batch record *)
}

let fabric_config (cost : Treaty_sim.Costmodel.t) =
  {
    bandwidth_bytes_per_ns = cost.net_bandwidth_bytes_per_ns;
    propagation_ns = cost.net_propagation_ns;
  }

let client_config = { bandwidth_bytes_per_ns = 0.125 (* 1 Gb/s *); propagation_ns = 30_000 }

let fresh_batch () =
  { pkts = Array.make 8 no_pkt; n = 0; time = -1; openb = false; stamp = -1 }

let create sim cost =
  {
    sim;
    cost;
    endpoints = Array.make 16 None;
    adversary = Adversary.honest;
    next_packet_id = 0;
    stats = { packets = 0; bytes = 0; dropped = 0; tampered = 0; duplicated = 0 };
    capture_limit = 0;
    capture_buf = [||];
    capture_n = 0;
    batch = fresh_batch ();
    spare = fresh_batch ();
  }

let endpoint t id =
  if id >= 0 && id < Array.length t.endpoints then t.endpoints.(id) else None

let register t ~id ?config handler =
  let config = Option.value config ~default:(fabric_config t.cost) in
  if id >= Array.length t.endpoints then begin
    let n = ref (2 * Array.length t.endpoints) in
    while id >= !n do
      n := 2 * !n
    done;
    let eps = Array.make !n None in
    Array.blit t.endpoints 0 eps 0 (Array.length t.endpoints);
    t.endpoints <- eps
  end;
  match t.endpoints.(id) with
  | Some ep -> ep.handler <- Some handler
  | None ->
      t.endpoints.(id) <- Some { config; handler = Some handler; nic_free_at = 0 }

let unregister t ~id =
  match endpoint t id with Some ep -> ep.handler <- None | None -> ()

let push_capture t pkt =
  t.capture_buf.(t.capture_n mod t.capture_limit) <- pkt;
  t.capture_n <- t.capture_n + 1

let deliver_one t pkt =
  match endpoint t pkt.Packet.dst with
  | Some { handler = Some h; _ } ->
      if t.capture_limit > 0 then push_capture t pkt;
      h pkt
  | Some { handler = None; _ } | None ->
      t.stats.dropped <- t.stats.dropped + 1

(* Fire a delivery batch. Between packets we drain the fiber run queue,
   exactly as the simulator main loop does between two same-tick events —
   this keeps the interleaving (and therefore same-seed traces) identical
   to scheduling every packet as its own event. *)
let fire_batch t b =
  let sched = Sim.sched t.sim in
  let i = ref 0 in
  while !i < b.n do
    let pkt = b.pkts.(!i) in
    incr i;
    deliver_one t pkt;
    Scheduler.run_pending sched
  done;
  b.openb <- false;
  Array.fill b.pkts 0 b.n no_pkt;
  b.n <- 0;
  t.spare <- b

let batch_push b pkt =
  if b.n = Array.length b.pkts then begin
    let pkts = Array.make (2 * b.n) no_pkt in
    Array.blit b.pkts 0 pkts 0 b.n;
    b.pkts <- pkts
  end;
  b.pkts.(b.n) <- pkt;
  b.n <- b.n + 1

let deliver_at t pkt ~time =
  let b = t.batch in
  (* Merging a packet into the open batch is only trace-preserving when no
     other event has been scheduled since the batch was armed: the merged
     packets then occupy consecutive (time, seq) positions, so firing them
     back-to-back is exactly what the event queue would have done. *)
  if b.openb && b.time = time && Sim.events_stamp t.sim = b.stamp then
    batch_push b pkt
  else begin
    b.openb <- false;
    let nb =
      let s = t.spare in
      if (not s.openb) && s.n = 0 then begin
        t.spare <- fresh_batch ();
        s
      end
      else fresh_batch ()
    in
    nb.time <- time;
    batch_push nb pkt;
    nb.openb <- true;
    t.batch <- nb;
    ignore (Sim.at t.sim ~time (fun () -> fire_batch t nb));
    nb.stamp <- Sim.events_stamp t.sim
  end

let transit t pkt =
  match endpoint t pkt.Packet.src, endpoint t pkt.Packet.dst with
  | None, _ | _, None -> t.stats.dropped <- t.stats.dropped + 1
  | Some src_ep, Some dst_ep ->
      let bw =
        Float.min src_ep.config.bandwidth_bytes_per_ns
          dst_ep.config.bandwidth_bytes_per_ns
      in
      let tx_ns = int_of_float (float_of_int pkt.size /. bw) in
      let start = max (Sim.now t.sim) src_ep.nic_free_at in
      src_ep.nic_free_at <- start + tx_ns;
      let prop = max src_ep.config.propagation_ns dst_ep.config.propagation_ns in
      t.stats.packets <- t.stats.packets + 1;
      t.stats.bytes <- t.stats.bytes + pkt.size;
      deliver_at t pkt ~time:(src_ep.nic_free_at + prop)

let inject t pkt ~interpose =
  if not interpose then transit t pkt
  else
    match t.adversary pkt with
    | Adversary.Deliver -> transit t pkt
    | Adversary.Drop -> t.stats.dropped <- t.stats.dropped + 1
    | Adversary.Delay ns ->
        ignore (Sim.after t.sim ~ns (fun () -> transit t pkt))
    | Adversary.Tamper f ->
        t.stats.tampered <- t.stats.tampered + 1;
        let payload = f pkt.payload in
        transit t { pkt with payload }
    | Adversary.Duplicate ->
        t.stats.duplicated <- t.stats.duplicated + 1;
        transit t pkt;
        transit t { pkt with id = (t.next_packet_id <- t.next_packet_id + 1; t.next_packet_id) }

let send t ~src ~dst ?(wire_overhead = 64) payload =
  (* TreatySan boundary: the fabric is untrusted memory, so no buffer that
     entered Aead.seal as plaintext may be handed to it. *)
  Treaty_crypto.Taint.check
    ~what:(Printf.sprintf "net send %d->%d" src dst)
    payload;
  t.next_packet_id <- t.next_packet_id + 1;
  let pkt =
    {
      Packet.id = t.next_packet_id;
      src;
      dst;
      size = String.length payload + wire_overhead;
      payload;
    }
  in
  inject t pkt ~interpose:true

let set_adversary t adv = t.adversary <- adv
let clear_adversary t = t.adversary <- Adversary.honest
let stats t = t.stats
let replay t pkt = inject t pkt ~interpose:false

let capture t ~limit =
  t.capture_limit <- limit;
  t.capture_buf <- (if limit > 0 then Array.make limit no_pkt else [||]);
  t.capture_n <- 0

let captured t =
  let count = min t.capture_n t.capture_limit in
  let start = if t.capture_n <= t.capture_limit then 0 else t.capture_n in
  List.init count (fun i ->
      t.capture_buf.((start + i) mod t.capture_limit))
