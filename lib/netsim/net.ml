module Sim = Treaty_sim.Sim

type endpoint_config = {
  bandwidth_bytes_per_ns : float;
  propagation_ns : int;
}

type endpoint = {
  config : endpoint_config;
  mutable handler : (Packet.t -> unit) option;
  mutable nic_free_at : int;  (** FIFO NIC serialization horizon. *)
}

type stats = {
  mutable packets : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable tampered : int;
  mutable duplicated : int;
}

type t = {
  sim : Sim.t;
  cost : Treaty_sim.Costmodel.t;
  endpoints : (int, endpoint) Hashtbl.t;
  mutable adversary : Adversary.t;
  mutable next_packet_id : int;
  stats : stats;
  mutable capture_limit : int;
  mutable capture_buf : Packet.t list;  (** newest first *)
}

let fabric_config (cost : Treaty_sim.Costmodel.t) =
  {
    bandwidth_bytes_per_ns = cost.net_bandwidth_bytes_per_ns;
    propagation_ns = cost.net_propagation_ns;
  }

let client_config = { bandwidth_bytes_per_ns = 0.125 (* 1 Gb/s *); propagation_ns = 30_000 }

let create sim cost =
  {
    sim;
    cost;
    endpoints = Hashtbl.create 16;
    adversary = Adversary.honest;
    next_packet_id = 0;
    stats = { packets = 0; bytes = 0; dropped = 0; tampered = 0; duplicated = 0 };
    capture_limit = 0;
    capture_buf = [];
  }

let register t ~id ?config handler =
  let config = Option.value config ~default:(fabric_config t.cost) in
  match Hashtbl.find_opt t.endpoints id with
  | Some ep ->
      ep.handler <- Some handler
  | None ->
      Hashtbl.replace t.endpoints id { config; handler = Some handler; nic_free_at = 0 }

let unregister t ~id =
  match Hashtbl.find_opt t.endpoints id with
  | Some ep -> ep.handler <- None
  | None -> ()

let deliver_at t pkt ~time =
  ignore
    (Sim.at t.sim ~time (fun () ->
         match Hashtbl.find_opt t.endpoints pkt.Packet.dst with
         | Some { handler = Some h; _ } ->
             if t.capture_limit > 0 then begin
               t.capture_buf <- pkt :: t.capture_buf;
               (match
                  List.filteri (fun i _ -> i < t.capture_limit) t.capture_buf
                with
               | trimmed -> t.capture_buf <- trimmed)
             end;
             h pkt
         | Some { handler = None; _ } | None ->
             t.stats.dropped <- t.stats.dropped + 1))

let transit t pkt =
  match Hashtbl.find_opt t.endpoints pkt.Packet.src, Hashtbl.find_opt t.endpoints pkt.Packet.dst with
  | None, _ | _, None -> t.stats.dropped <- t.stats.dropped + 1
  | Some src_ep, Some dst_ep ->
      let bw =
        Float.min src_ep.config.bandwidth_bytes_per_ns
          dst_ep.config.bandwidth_bytes_per_ns
      in
      let tx_ns = int_of_float (float_of_int pkt.size /. bw) in
      let start = max (Sim.now t.sim) src_ep.nic_free_at in
      src_ep.nic_free_at <- start + tx_ns;
      let prop = max src_ep.config.propagation_ns dst_ep.config.propagation_ns in
      t.stats.packets <- t.stats.packets + 1;
      t.stats.bytes <- t.stats.bytes + pkt.size;
      deliver_at t pkt ~time:(src_ep.nic_free_at + prop)

let inject t pkt ~interpose =
  if not interpose then transit t pkt
  else
    match t.adversary pkt with
    | Adversary.Deliver -> transit t pkt
    | Adversary.Drop -> t.stats.dropped <- t.stats.dropped + 1
    | Adversary.Delay ns ->
        ignore (Sim.after t.sim ~ns (fun () -> transit t pkt))
    | Adversary.Tamper f ->
        t.stats.tampered <- t.stats.tampered + 1;
        let payload = f pkt.payload in
        transit t { pkt with payload }
    | Adversary.Duplicate ->
        t.stats.duplicated <- t.stats.duplicated + 1;
        transit t pkt;
        transit t { pkt with id = (t.next_packet_id <- t.next_packet_id + 1; t.next_packet_id) }

let send t ~src ~dst ?(wire_overhead = 64) payload =
  (* TreatySan boundary: the fabric is untrusted memory, so no buffer that
     entered Aead.seal as plaintext may be handed to it. *)
  Treaty_crypto.Taint.check
    ~what:(Printf.sprintf "net send %d->%d" src dst)
    payload;
  t.next_packet_id <- t.next_packet_id + 1;
  let pkt =
    {
      Packet.id = t.next_packet_id;
      src;
      dst;
      size = String.length payload + wire_overhead;
      payload;
    }
  in
  inject t pkt ~interpose:true

let set_adversary t adv = t.adversary <- adv
let clear_adversary t = t.adversary <- Adversary.honest
let stats t = t.stats
let replay t pkt = inject t pkt ~interpose:false

let capture t ~limit = t.capture_limit <- limit
let captured t = List.rev t.capture_buf
