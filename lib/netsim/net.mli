(** Simulated datacenter network.

    A set of endpoints (Treaty nodes on the 40 GbE fabric, clients on a
    1 GbE secondary NIC — the paper's testbed topology) connected through a
    store-and-forward model: each endpoint's NIC serializes outgoing packets
    at its line rate (FIFO), and delivery adds propagation delay. An
    {!Adversary.t} may interpose on every packet.

    Delivery is a callback into the destination's RPC layer; packets to
    unregistered (crashed) endpoints are dropped, which is how node failure
    manifests to peers. *)

type t

type endpoint_config = {
  bandwidth_bytes_per_ns : float;
  propagation_ns : int;
}

val fabric_config : Treaty_sim.Costmodel.t -> endpoint_config
(** 40 GbE node NIC from the cost model. *)

val client_config : endpoint_config
(** 1 Gb/s client NIC with WAN-ish propagation, per the testbed. *)

type stats = {
  mutable packets : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable tampered : int;
  mutable duplicated : int;
}

val create : Treaty_sim.Sim.t -> Treaty_sim.Costmodel.t -> t

val register :
  t -> id:int -> ?config:endpoint_config -> (Packet.t -> unit) -> unit
(** Attach an endpoint. [config] defaults to the fabric NIC. Re-registering
    an id replaces the handler (node restart). *)

val unregister : t -> id:int -> unit
(** Detach (crash) an endpoint: in-flight packets to it are dropped on
    arrival. *)

val send : t -> src:int -> dst:int -> ?wire_overhead:int -> string -> unit
(** Transmit a payload. Charges NIC serialization at the slower of the two
    endpoints' line rates plus propagation; delivery fires the destination
    handler as a simulation event. [wire_overhead] (default 64: Ethernet,
    IP/UDP and eRPC headers) is added to the wire size. *)

val set_adversary : t -> Adversary.t -> unit
val clear_adversary : t -> unit
val stats : t -> stats

val replay : t -> Packet.t -> unit
(** Re-inject a previously captured packet (rollback/replay attack). The
    adversary does not interpose on its own replays. *)

val capture : t -> limit:int -> unit
(** Start capturing delivered packets (keeps the last [limit]). *)

val captured : t -> Packet.t list
(** Captured packets, oldest first. *)
