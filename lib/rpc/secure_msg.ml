module Aead = Treaty_crypto.Aead
module Taint = Treaty_crypto.Taint

type meta = {
  coord : int;
  tx_seq : int;
  op_id : int;
  src : int;
  kind : int;
  is_response : bool;
  req_id : int;
}

let meta_size = 80
let pad_size = 4

type security = Plain | Secure of Aead.key

(* This module is a lint wire-zone: no [String.sub] / [( ^ )] — every encode
   and decode runs over byte regions of one packet buffer. *)

let put64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get64 s off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let get64b b off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let put32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get32b b off =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let encode_meta_into b off m =
  Bytes.fill b off meta_size '\000';
  put64 b off m.coord;
  put64 b (off + 8) m.tx_seq;
  put64 b (off + 16) m.op_id;
  put64 b (off + 24) m.src;
  put64 b (off + 32) m.kind;
  put64 b (off + 40) (if m.is_response then 1 else 0);
  put64 b (off + 48) m.req_id

let decode_meta s off =
  {
    coord = get64 s off;
    tx_seq = get64 s (off + 8);
    op_id = get64 s (off + 16);
    src = get64 s (off + 24);
    kind = get64 s (off + 32);
    is_response = get64 s (off + 40) = 1;
    req_id = get64 s (off + 48);
  }

let decode_meta_bytes b off =
  {
    coord = get64b b off;
    tx_seq = get64b b (off + 8);
    op_id = get64b b (off + 16);
    src = get64b b (off + 24);
    kind = get64b b (off + 32);
    is_response = get64b b (off + 40) = 1;
    req_id = get64b b (off + 48);
  }

let at_most_once_key m = (m.coord, m.tx_seq, m.op_id)

(* Register the caller's payload with the plaintext sanitizer: if the raw
   data string (rather than the sealed packet) ever reaches the network,
   TreatySan flags it. The empty string is skipped — zero-length blocks are
   shared atoms in the runtime, so registering one would taint every "" in
   the program. *)
let taint_data data = if String.length data > 0 then Taint.register data

let wire_size security ~data_len =
  match security with
  | Plain -> 1 + meta_size + data_len
  | Secure _ -> 1 + Aead.iv_size + pad_size + meta_size + data_len + Aead.mac_size

let encode security ~iv_gen m data =
  let data_len = String.length data in
  match security with
  | Plain ->
      let b = Bytes.create (1 + meta_size + data_len) in
      Bytes.set b 0 'P';
      encode_meta_into b 1 m;
      Bytes.blit_string data 0 b (1 + meta_size) data_len;
      Bytes.unsafe_to_string b
  | Secure key ->
      let hdr = 1 + Aead.iv_size + pad_size in
      let pt_len = meta_size + data_len in
      let b = Bytes.create (hdr + pt_len + Aead.mac_size) in
      Bytes.set b 0 'S';
      Aead.Iv_gen.next_into iv_gen b 1;
      let iv = Bytes.sub_string b 1 Aead.iv_size in
      Bytes.fill b (1 + Aead.iv_size) pad_size '\000';
      encode_meta_into b hdr m;
      Bytes.blit_string data 0 b (hdr + meta_size) data_len;
      taint_data data;
      (* Encrypt-then-MAC in place: same transcript as [Aead.seal] with
         empty AAD, so the wire format is unchanged. *)
      Aead.xor_region key ~iv b ~off:hdr ~len:pt_len;
      let mac =
        Aead.tag_region key ~iv b ~aad_off:0 ~aad_len:0 ~ct_off:hdr ~ct_len:pt_len
      in
      Bytes.blit_string mac 0 b (hdr + pt_len) Aead.mac_size;
      Bytes.unsafe_to_string b

let decode security wire =
  let n = String.length wire in
  match security with
  | Plain ->
      if n < 1 + meta_size || wire.[0] <> 'P' then Error `Malformed
      else begin
        let data_len = n - 1 - meta_size in
        let data = Bytes.create data_len in
        Bytes.blit_string wire (1 + meta_size) data 0 data_len;
        Ok (decode_meta wire 1, Bytes.unsafe_to_string data)
      end
  | Secure key ->
      let hdr = 1 + Aead.iv_size + pad_size in
      if n < hdr + meta_size + Aead.mac_size || wire.[0] <> 'S' then
        Error `Malformed
      else begin
        let pad_ok = ref true in
        for i = 1 + Aead.iv_size to hdr - 1 do
          if wire.[i] <> '\000' then pad_ok := false
        done;
        if not !pad_ok then Error `Malformed
        else begin
          (* One copy of the wire into a scratch buffer; verify and decrypt
             in place, then slice out the payload. *)
          let b = Bytes.of_string wire in
          let iv = Bytes.sub_string b 1 Aead.iv_size in
          let ct_len = n - hdr - Aead.mac_size in
          let mac = Bytes.sub_string b (hdr + ct_len) Aead.mac_size in
          if
            not
              (Aead.check_region key ~iv b ~aad_off:0 ~aad_len:0 ~ct_off:hdr
                 ~ct_len ~mac)
          then Error `Tampered
          else begin
            Aead.xor_region key ~iv b ~off:hdr ~len:ct_len;
            Ok
              ( decode_meta_bytes b hdr,
                Bytes.sub_string b (hdr + meta_size) (ct_len - meta_size) )
          end
        end
      end

module Burst = struct
  let version = 2

  let header_size security ~msgs =
    match security with
    | Plain -> 1 + 4 + (4 * msgs)
    | Secure _ -> 1 + Aead.iv_size + 4 + (4 * msgs)

  let wire_size security ~data_lens =
    let msgs = List.length data_lens in
    let bodies = List.fold_left (fun acc l -> acc + meta_size + l) 0 data_lens in
    header_size security ~msgs
    + bodies
    + (match security with Plain -> 0 | Secure _ -> Aead.mac_size)

  (* Packet layout (v2):

     {v 0x02 | IV (12 B, Secure) | count (4 B) | len_0..len_n-1 (4 B each)
        | enc( meta_0|data_0 | ... | meta_n-1|data_n-1 ) | MAC (16 B, Secure) v}

     The whole header — version byte, IV, count and the sub-message length
     table — is the AAD of a single packet-level AEAD: one IV, one keystream
     pass, one MAC. Tampering with any framing length (or any body byte)
     fails the one MAC and rejects the whole packet. *)
  let encode_into security ~iv_gen buf msgs =
    let n = List.length msgs in
    let count_off =
      match security with Plain -> 1 | Secure _ -> 1 + Aead.iv_size
    in
    let lens_off = count_off + 4 in
    let body_off = lens_off + (4 * n) in
    Bytes.set buf 0 (Char.chr version);
    put32 buf count_off n;
    let write_bodies () =
      let i = ref 0 and off = ref body_off in
      List.iter
        (fun (m, data) ->
          let data_len = String.length data in
          let len = meta_size + data_len in
          put32 buf (lens_off + (4 * !i)) len;
          encode_meta_into buf !off m;
          Bytes.blit_string data 0 buf (!off + meta_size) data_len;
          incr i;
          off := !off + len)
        msgs;
      !off
    in
    match security with
    | Plain -> write_bodies ()
    | Secure key ->
        Aead.Iv_gen.next_into iv_gen buf 1;
        let iv = Bytes.sub_string buf 1 Aead.iv_size in
        List.iter (fun (_, data) -> taint_data data) msgs;
        let body_end = write_bodies () in
        let ct_len = body_end - body_off in
        Aead.xor_region key ~iv buf ~off:body_off ~len:ct_len;
        let mac =
          Aead.tag_region key ~iv buf ~aad_off:0 ~aad_len:body_off
            ~ct_off:body_off ~ct_len
        in
        Bytes.blit_string mac 0 buf body_end Aead.mac_size;
        body_end + Aead.mac_size

  (* Slice the (already plaintext) bodies out of [b]. The length table was
     authenticated (Secure) or structurally checked (Plain) by the caller. *)
  let slice_bodies b ~n ~lens_off ~body_off ~body_len =
    let msgs = ref [] and off = ref body_off and ok = ref true in
    for i = 0 to n - 1 do
      if !ok then begin
        let len = get32b b (lens_off + (4 * i)) in
        if len < meta_size || !off + len > body_off + body_len then ok := false
        else begin
          let meta = decode_meta_bytes b !off in
          let data = Bytes.sub_string b (!off + meta_size) (len - meta_size) in
          msgs := (meta, data) :: !msgs;
          off := !off + len
        end
      end
    done;
    if !ok && !off = body_off + body_len then Ok (List.rev !msgs)
    else Error `Malformed

  let decode security packet =
    let pn = String.length packet in
    if pn < 5 || Char.code packet.[0] <> version then Error `Malformed
    else
      match security with
      | Plain ->
          let b = Bytes.of_string packet in
          let n = get32b b 1 in
          let lens_off = 5 in
          let body_off = lens_off + (4 * n) in
          if n < 0 || body_off > pn then Error `Malformed
          else slice_bodies b ~n ~lens_off ~body_off ~body_len:(pn - body_off)
      | Secure key ->
          let count_off = 1 + Aead.iv_size in
          if pn < count_off + 4 + Aead.mac_size then Error `Malformed
          else begin
            let b = Bytes.of_string packet in
            let n = get32b b count_off in
            let lens_off = count_off + 4 in
            let body_off = lens_off + (4 * n) in
            if n < 0 || body_off + Aead.mac_size > pn then Error `Malformed
            else begin
              let ct_len = pn - body_off - Aead.mac_size in
              let iv = Bytes.sub_string b 1 Aead.iv_size in
              let mac = Bytes.sub_string b (body_off + ct_len) Aead.mac_size in
              (* Verify before trusting the length table: it is part of the
                 AAD, so a flipped length byte is a MAC failure (`Tampered),
                 not a framing error. *)
              if
                not
                  (Aead.check_region key ~iv b ~aad_off:0 ~aad_len:body_off
                     ~ct_off:body_off ~ct_len ~mac)
              then Error `Tampered
              else begin
                Aead.xor_region key ~iv b ~off:body_off ~len:ct_len;
                slice_bodies b ~n ~lens_off ~body_off ~body_len:ct_len
              end
            end
          end
end
