module Aead = Treaty_crypto.Aead

type meta = {
  coord : int;
  tx_seq : int;
  op_id : int;
  src : int;
  kind : int;
  is_response : bool;
  req_id : int;
}

let meta_size = 80
let pad_size = 4

type security = Plain | Secure of Aead.key

let put64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get64 s off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode_meta m =
  let b = Bytes.make meta_size '\000' in
  put64 b 0 m.coord;
  put64 b 8 m.tx_seq;
  put64 b 16 m.op_id;
  put64 b 24 m.src;
  put64 b 32 m.kind;
  put64 b 40 (if m.is_response then 1 else 0);
  put64 b 48 m.req_id;
  Bytes.unsafe_to_string b

let decode_meta s off =
  {
    coord = get64 s off;
    tx_seq = get64 s (off + 8);
    op_id = get64 s (off + 16);
    src = get64 s (off + 24);
    kind = get64 s (off + 32);
    is_response = get64 s (off + 40) = 1;
    req_id = get64 s (off + 48);
  }

let at_most_once_key m = (m.coord, m.tx_seq, m.op_id)

let encode security ~iv_gen m data =
  match security with
  | Plain -> "P" ^ encode_meta m ^ data
  | Secure key ->
      let iv = Aead.Iv_gen.next iv_gen in
      let ct, mac = Aead.seal key ~iv (encode_meta m ^ data) in
      "S" ^ iv ^ String.make pad_size '\000' ^ ct ^ mac

let decode security wire =
  let n = String.length wire in
  match security with
  | Plain ->
      if n < 1 + meta_size || wire.[0] <> 'P' then Error `Malformed
      else
        Ok (decode_meta wire 1, String.sub wire (1 + meta_size) (n - 1 - meta_size))
  | Secure key ->
      let hdr = 1 + Aead.iv_size + pad_size in
      if
        n < hdr + meta_size + Aead.mac_size
        || wire.[0] <> 'S'
        || String.sub wire (1 + Aead.iv_size) pad_size <> String.make pad_size '\000'
      then Error `Malformed
      else begin
        let iv = String.sub wire 1 Aead.iv_size in
        let ct_len = n - hdr - Aead.mac_size in
        let ct = String.sub wire hdr ct_len in
        let mac = String.sub wire (hdr + ct_len) Aead.mac_size in
        match Aead.open_ key ~iv ~mac ct with
        | Error `Mac_mismatch -> Error `Tampered
        | Ok pt -> Ok (decode_meta pt 0, String.sub pt meta_size (String.length pt - meta_size))
      end

let wire_size security ~data_len =
  match security with
  | Plain -> 1 + meta_size + data_len
  | Secure _ -> 1 + Aead.iv_size + pad_size + meta_size + data_len + Aead.mac_size
