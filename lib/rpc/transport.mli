(** Network transport cost paths (§II-D, §VII-A, Figure 8).

    The paper contrasts three ways of moving a message, each with a native
    and a SCONE variant:

    - kernel sockets over TCP (iPerf's path): per-message kernel processing
      plus send/recv syscalls — which under SCONE become async syscalls with
      an extra enclave↔host copy of the payload;
    - kernel sockets over UDP: cheaper per message but no flow control
      (receiver livelock under load) and fragmentation loss above the MTU;
    - kernel-bypass DPDK (eRPC's path): polling, no syscalls; under SCONE
      this still works *if* the DMA-visible buffers live in untrusted host
      memory — Treaty's key networking trick.

    [per_msg_ns] is the pure cost function the RPC engine and the Figure 8
    benchmark charge per message and direction. *)

type kind = Kernel_tcp | Kernel_udp | Dpdk

val kind_to_string : kind -> string

type params = {
  tcp_fixed_ns : int;  (** Kernel TCP per-message processing (excl. syscall). *)
  tcp_per_byte_ns : float;  (** Copies + checksums (TSO keeps this low). *)
  udp_fixed_ns : int;
  udp_per_byte_ns : float;
  udp_rx_livelock_factor : float;
      (** Receive-side inefficiency of unmoderated UDP under load. *)
  dpdk_fixed_ns : int;  (** Poll + descriptor handling, no syscall. *)
  dpdk_per_byte_ns : float;  (** Zero-copy DMA: near zero. *)
  erpc_rpc_fixed_ns : int;
      (** Extra per-RPC work over raw DPDK: sessions, credits, reordering,
          continuation dispatch. *)
  erpc_burst_msg_ns : int;
      (** Per-additional-message descriptor cost inside a doorbell-coalesced
          burst — what each coalesced message still pays after the fixed
          per-packet costs are amortized. *)
  scone_socket_syscall_ns : int;
      (** Per-socket-syscall cost under SCONE (queue handoff + wakeup): far
          worse than the file-I/O async syscall path. *)
  scone_shield_per_byte_ns : float;
      (** Enclave↔host copy through SCONE's shield layer, each direction,
          socket I/O only. *)
  dpdk_enclave_copy_per_byte_ns : float;
      (** Copy between host-memory DMA buffers and enclave working memory on
          the kernel-bypass path under SCONE. *)
}

val default_params : params

val syscalls_per_msg : kind -> int
(** Syscalls charged per message per direction (0 for DPDK). *)

val per_msg_ns :
  params ->
  Treaty_sim.Costmodel.t ->
  Treaty_tee.Enclave.mode ->
  kind ->
  rpc_layer:bool ->
  dir:[ `Tx | `Rx ] ->
  bytes:int ->
  int
(** CPU nanoseconds to push/pull one message of [bytes] through the
    transport. [rpc_layer] adds the eRPC per-RPC costs on top of raw
    transport (true for all of Treaty's traffic; false models raw iPerf
    streaming). *)

val charge :
  params ->
  Treaty_tee.Enclave.t ->
  kind ->
  rpc_layer:bool ->
  dir:[ `Tx | `Rx ] ->
  bytes:int ->
  unit
(** Charge [per_msg_ns] on the enclave's CPU, plus the transport's syscalls
    (which under SCONE include the shield-layer copy of [bytes]). *)

val charge_burst :
  params ->
  Treaty_tee.Enclave.t ->
  kind ->
  dir:[ `Tx | `Rx ] ->
  bytes:int ->
  msgs:int ->
  unit
(** Charge one doorbell-coalesced burst of [msgs] messages totalling [bytes]:
    the fixed per-packet costs (and any syscalls) are paid once, each extra
    message adds only [erpc_burst_msg_ns]. [msgs = 1] charges the same as
    {!charge} with [rpc_layer:true]. *)

val fragments : Treaty_sim.Costmodel.t -> bytes:int -> int
(** IP fragments a UDP datagram of [bytes] needs. *)
