(** Treaty's secure message layout (§VII-A).

    On the wire a secure message is

    {v IV (12 B) | pad (4 B) | enc( metadata (80 B) | data ) | MAC (16 B) v}

    Metadata carries the coordinator node id, the transaction id
    (monotonically incremented at the coordinator) and the operation id —
    the unique triple that gives at-most-once execution — plus RPC plumbing
    (source node, handler kind, response flag, request id). Only metadata and
    data are encrypted; if the IV or MAC is altered the integrity check
    fails. Plain mode (the native baselines) sends the same metadata
    unencrypted with no IV/MAC. *)

type meta = {
  coord : int;  (** Coordinator node id (8 B on the wire). *)
  tx_seq : int;  (** Tx id, monotonic per coordinator (8 B). *)
  op_id : int;  (** Operation id, unique within the Tx (8 B). *)
  src : int;  (** Sending node. *)
  kind : int;  (** Request-handler selector. *)
  is_response : bool;
  req_id : int;  (** RPC-level id matching a response to its request. *)
}

val meta_size : int
(** 80 bytes, as in the paper. *)

val at_most_once_key : meta -> int * int * int
(** The (coord, tx, op) triple that must never execute twice. *)

type security = Plain | Secure of Treaty_crypto.Aead.key

val encode :
  security -> iv_gen:Treaty_crypto.Aead.Iv_gen.t -> meta -> string -> string
(** Wire-encode metadata and payload data. *)

val decode :
  security -> string -> (meta * string, [ `Tampered | `Malformed ]) result
(** [`Tampered] is a MAC mismatch — the signature of an adversary on the
    wire; [`Malformed] a structurally invalid message. A plain-mode decoder
    applied to a secure message (or vice versa) is [`Malformed]. *)

val wire_size : security -> data_len:int -> int
(** Size of the encoded message for a payload of [data_len] bytes. *)

(** Packet envelope format v2: burst-level AEAD.

    A whole eRPC burst becomes ONE sealed packet —

    {v 0x02 | IV (12 B) | count (4 B) | len_i (4 B each)
       | enc( meta_0|data_0 | ... ) | MAC (16 B) v}

    — one IV, one ChaCha20 keystream pass and one HMAC per packet instead
    of per sub-message. The version byte, IV, count and the sub-message
    length table form the AAD of the packet-level AEAD: tampering with any
    framing length or body byte fails the single MAC and rejects the whole
    packet as [`Tampered]. Plain mode uses the same framing without IV/MAC.

    Encoding writes through a cursor into a caller-provided (mempool-backed)
    buffer and seals in place; decoding verifies once, decrypts in place
    and hands out per-message views. *)
module Burst : sig
  val version : int
  (** Leading packet byte: [2]. (v1 envelopes lead with [1].) *)

  val wire_size : security -> data_lens:int list -> int
  (** Exact packet size for a burst whose payloads have the given sizes. *)

  val encode_into :
    security ->
    iv_gen:Treaty_crypto.Aead.Iv_gen.t ->
    Bytes.t ->
    (meta * string) list ->
    int
  (** Frame, encrypt and MAC the burst into [buf] starting at offset 0
      (which must hold at least [wire_size] bytes); returns the bytes
      written. *)

  val decode :
    security ->
    string ->
    ((meta * string) list, [ `Tampered | `Malformed ]) result
  (** One verification and one decryption for the whole packet; [`Tampered]
      on any MAC failure (including a framing-length flip), [`Malformed] on
      structural damage (version byte, truncation). *)
end
