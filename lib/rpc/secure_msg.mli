(** Treaty's secure message layout (§VII-A).

    On the wire a secure message is

    {v IV (12 B) | pad (4 B) | enc( metadata (80 B) | data ) | MAC (16 B) v}

    Metadata carries the coordinator node id, the transaction id
    (monotonically incremented at the coordinator) and the operation id —
    the unique triple that gives at-most-once execution — plus RPC plumbing
    (source node, handler kind, response flag, request id). Only metadata and
    data are encrypted; if the IV or MAC is altered the integrity check
    fails. Plain mode (the native baselines) sends the same metadata
    unencrypted with no IV/MAC. *)

type meta = {
  coord : int;  (** Coordinator node id (8 B on the wire). *)
  tx_seq : int;  (** Tx id, monotonic per coordinator (8 B). *)
  op_id : int;  (** Operation id, unique within the Tx (8 B). *)
  src : int;  (** Sending node. *)
  kind : int;  (** Request-handler selector. *)
  is_response : bool;
  req_id : int;  (** RPC-level id matching a response to its request. *)
}

val meta_size : int
(** 80 bytes, as in the paper. *)

val at_most_once_key : meta -> int * int * int
(** The (coord, tx, op) triple that must never execute twice. *)

type security = Plain | Secure of Treaty_crypto.Aead.key

val encode :
  security -> iv_gen:Treaty_crypto.Aead.Iv_gen.t -> meta -> string -> string
(** Wire-encode metadata and payload data. *)

val decode :
  security -> string -> (meta * string, [ `Tampered | `Malformed ]) result
(** [`Tampered] is a MAC mismatch — the signature of an adversary on the
    wire; [`Malformed] a structurally invalid message. A plain-mode decoder
    applied to a secure message (or vice versa) is [`Malformed]. *)

val wire_size : security -> data_len:int -> int
(** Size of the encoded message for a payload of [data_len] bytes. *)
