module Enclave = Treaty_tee.Enclave

type kind = Kernel_tcp | Kernel_udp | Dpdk

let kind_to_string = function
  | Kernel_tcp -> "tcp"
  | Kernel_udp -> "udp"
  | Dpdk -> "dpdk"

type params = {
  tcp_fixed_ns : int;
  tcp_per_byte_ns : float;
  udp_fixed_ns : int;
  udp_per_byte_ns : float;
  udp_rx_livelock_factor : float;
  dpdk_fixed_ns : int;
  dpdk_per_byte_ns : float;
  erpc_rpc_fixed_ns : int;
  erpc_burst_msg_ns : int;
  scone_socket_syscall_ns : int;
  scone_shield_per_byte_ns : float;
  dpdk_enclave_copy_per_byte_ns : float;
}

let default_params =
  {
    tcp_fixed_ns = 1_000;
    tcp_per_byte_ns = 0.35;
    udp_fixed_ns = 900;
    udp_per_byte_ns = 0.55;
    udp_rx_livelock_factor = 3.0;
    dpdk_fixed_ns = 350;
    dpdk_per_byte_ns = 0.08;
    erpc_rpc_fixed_ns = 950;
    erpc_burst_msg_ns = 150;
    scone_socket_syscall_ns = 3_500;
    scone_shield_per_byte_ns = 9.0;
    dpdk_enclave_copy_per_byte_ns = 3.0;
  }

let syscalls_per_msg = function Kernel_tcp | Kernel_udp -> 1 | Dpdk -> 0

let per_msg_ns p (cost : Treaty_sim.Costmodel.t) mode kind ~rpc_layer ~dir ~bytes =
  let fb = float_of_int bytes in
  let base =
    match kind with
    | Kernel_tcp -> p.tcp_fixed_ns + int_of_float (p.tcp_per_byte_ns *. fb)
    | Kernel_udp ->
        let c = p.udp_fixed_ns + int_of_float (p.udp_per_byte_ns *. fb) in
        if dir = `Rx then int_of_float (float_of_int c *. p.udp_rx_livelock_factor)
        else c
    | Dpdk -> p.dpdk_fixed_ns + int_of_float (p.dpdk_per_byte_ns *. fb)
  in
  let rpc = if rpc_layer then p.erpc_rpc_fixed_ns else 0 in
  (* Transport and RPC processing runs inside the enclave under SCONE and is
     scaled accordingly; kernel-socket I/O additionally pays async syscalls
     with a shield-layer copy, while DPDK pays an enclave<->host copy of the
     payload (the DMA buffers must live in host memory). *)
  let in_enclave = base + rpc in
  let in_enclave, extra =
    match mode with
    | Enclave.Native -> in_enclave, syscalls_per_msg kind * cost.syscall_native_ns
    | Enclave.Scone ->
        let scaled =
          int_of_float (float_of_int in_enclave *. cost.scone_cpu_factor)
        in
        let io =
          match kind with
          | Kernel_tcp | Kernel_udp ->
              (* Socket syscalls fare far worse than file I/O under SCONE:
                 no page-cache locality, per-call syscall-thread wakeups and
                 shield copies of the payload. *)
              syscalls_per_msg kind
              * (p.scone_socket_syscall_ns
                + int_of_float (p.scone_shield_per_byte_ns *. fb))
          | Dpdk -> int_of_float (p.dpdk_enclave_copy_per_byte_ns *. fb)
        in
        scaled, io
  in
  in_enclave + extra

let charge p enclave kind ~rpc_layer ~dir ~bytes =
  let mode = Enclave.mode enclave in
  let cost = Enclave.cost enclave in
  (* Syscall counting for stats; the time is folded into per_msg_ns. *)
  for _ = 1 to syscalls_per_msg kind do
    (Enclave.stats enclave).syscalls <- (Enclave.stats enclave).syscalls + 1
  done;
  Enclave.compute_untrusted enclave
    (per_msg_ns p cost mode kind ~rpc_layer ~dir ~bytes)

(* Doorbell-coalesced burst: one transport traversal (fixed costs, and on
   kernel paths one syscall batch) for the combined bytes, plus a small
   per-extra-message descriptor cost — the eRPC TxBurst amortization. *)
let charge_burst p enclave kind ~dir ~bytes ~msgs =
  let mode = Enclave.mode enclave in
  let cost = Enclave.cost enclave in
  for _ = 1 to syscalls_per_msg kind do
    (Enclave.stats enclave).syscalls <- (Enclave.stats enclave).syscalls + 1
  done;
  Enclave.compute_untrusted enclave
    (per_msg_ns p cost mode kind ~rpc_layer:true ~dir ~bytes
    + (max 0 (msgs - 1) * p.erpc_burst_msg_ns))

let fragments (cost : Treaty_sim.Costmodel.t) ~bytes =
  (bytes + cost.mtu_bytes - 1) / cost.mtu_bytes
