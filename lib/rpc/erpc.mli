(** Asynchronous RPC engine for transactions (§VII-A).

    The shape follows eRPC as the paper uses it: a caller allocates message
    buffers from the mempool (in untrusted host memory, encrypted — never in
    the EPC), enqueues the request, and yields; the receiving node's request
    handler runs on a fiber and enqueues the response; a continuation wakes
    the caller, which then frees the buffers. The polling loops of real
    eRPC/DPDK become fiber suspensions in the simulator — same control flow,
    no busy-waiting.

    Security (§V-A, §VII-A): in [Secure] mode every message is sealed with
    the network key, and the (coordinator, tx, op) id triple enforces
    at-most-once execution: a replayed or duplicated request is answered from
    a response cache instead of re-executing, and a tampered message fails
    its MAC and is dropped (the caller times out). *)

type config = {
  transport : Transport.kind;  (** [Dpdk] for Treaty; kernel paths for baselines. *)
  params : Transport.params;
  security : Secure_msg.security;
  msgbuf_region : Treaty_memalloc.Mempool.region;
      (** [Host] for Treaty; [Enclave] models the naive SCONE port of eRPC
          that triggers EPC paging (§VII-A). *)
  rdtsc_ocalls : bool;
      (** Model the unmodified eRPC codebase whose timestamping OCALLs cause
          a world switch per burst (Treaty replaces rdtsc with a monotonic
          counter). *)
  timeout_ns : int;  (** Default request timeout. *)
  dedup_ttl_ns : int;
      (** Lifetime of at-most-once cache entries whose identity is
          non-transactional (fresh per call, never replayed beyond the
          network's duplication window): without an owning transaction no
          commit/abort ever forgets them, so they are reclaimed by age. *)
  burst_window_ns : int;
      (** Doorbell/TxBurst coalescing: messages enqueued to the same
          destination within this window ride one packet — one transport
          traversal and one serialization, fragmented by MTU (the paper's
          eRPC batching). [0] disables coalescing (every message is its own
          packet, as before). *)
  burst_max_msgs : int;
      (** Flush a destination's burst early once it holds this many
          messages. *)
  batch_crypto : bool;
      (** Packet envelope v2 ({!Secure_msg.Burst}): frame the whole burst
          into one mempool-backed buffer and seal it with a single
          packet-level AEAD — one IV, one keystream pass, one MAC and one
          crypto charge per packet. [false] falls back to the v1 envelope
          (every sub-message individually sealed) as the ablation. The
          receive path decodes both versions regardless of this flag, so
          mixed senders interoperate. *)
}

val default_config : security:Secure_msg.security -> config

type error = [ `Timeout | `Tampered ]

type stats = {
  mutable requests_sent : int;
  mutable responses_sent : int;
  mutable mac_failures : int;  (** Tampered messages dropped. *)
  mutable replays_suppressed : int;  (** At-most-once cache hits. *)
  mutable timeouts : int;
  mutable bursts_sent : int;  (** Packets emitted (each carries a burst). *)
  mutable burst_msgs : int;
      (** Messages carried in those packets — [burst_msgs / bursts_sent] is
          the coalescing factor. *)
}

type t

val create :
  Treaty_sim.Sim.t ->
  net:Treaty_netsim.Net.t ->
  enclave:Treaty_tee.Enclave.t ->
  pool:Treaty_memalloc.Mempool.t ->
  config:config ->
  node_id:int ->
  ?net_config:Treaty_netsim.Net.endpoint_config ->
  unit ->
  t
(** Create and register the endpoint on the network. Incoming packets are
    processed on freshly spawned fibers (one per request — the paper's
    fiber-per-client model under a closed-loop workload). *)

val node_id : t -> int
val stats : t -> stats
val enclave : t -> Treaty_tee.Enclave.t

val register : t -> kind:int -> (Secure_msg.meta -> string -> string) -> unit
(** Install the request handler for a message kind. The handler runs on a
    fiber and may block (locks, log stabilization, nested RPCs). *)

val call :
  t ->
  dst:int ->
  kind:int ->
  ?coord:int ->
  ?tx_seq:int ->
  ?op_id:int ->
  ?timeout_ns:int ->
  ?span:Treaty_obs.Trace.span ->
  string ->
  (string, error) result
(** Issue a request and block the current fiber until the response arrives
    or the timeout fires. The id triple defaults to a fresh, non-transactional
    identity; 2PC passes the real (coord, tx, op). When tracing, [span]
    parents an [rpc.call] span whose id is registered under the triple so
    the remote handler links to it ({!Treaty_obs.Trace.ctx_resolve}). *)

val forget_tx : t -> coord:int -> tx_seq:int -> unit
(** Drop the at-most-once response cache for a finished transaction. *)

val expire_dedup : t -> unit
(** Reclaim non-transactional at-most-once entries older than
    [dedup_ttl_ns]. Runs automatically on request arrival; background
    sweepers call it so quiet endpoints drain too. *)

val dedup_size : t -> int
(** Entries currently held in the at-most-once response cache. After all
    transactions finish, duplicates age out and sweeps run, this returns to
    zero — the leak-freedom invariant the chaos harness checks. *)

val shutdown : t -> unit
(** Crash/stop: unregister from the network and stop serving. *)
