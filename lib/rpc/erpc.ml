module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Mempool = Treaty_memalloc.Mempool
module Net = Treaty_netsim.Net

type config = {
  transport : Transport.kind;
  params : Transport.params;
  security : Secure_msg.security;
  msgbuf_region : Mempool.region;
  rdtsc_ocalls : bool;
  timeout_ns : int;
  dedup_ttl_ns : int;
}

let default_config ~security =
  {
    transport = Transport.Dpdk;
    params = Transport.default_params;
    security;
    msgbuf_region = Mempool.Host;
    rdtsc_ocalls = false;
    timeout_ns = 50_000_000 (* 50 ms *);
    dedup_ttl_ns = 2_000_000_000 (* 2 s *);
  }

type error = [ `Timeout | `Tampered ]

type stats = {
  mutable requests_sent : int;
  mutable responses_sent : int;
  mutable mac_failures : int;
  mutable replays_suppressed : int;
  mutable timeouts : int;
}

type dedup_entry = Running of string Sim.ivar | Done of string

(* Endpoint incarnation counter: non-transactional calls from a restarted
   endpoint must not collide with its previous life's identities in peers'
   at-most-once caches. Deterministic (creation order is deterministic). *)
let next_epoch = ref 0

type t = {
  sim : Sim.t;
  net : Net.t;
  enclave : Enclave.t;
  pool : Mempool.t;
  config : config;
  node_id : int;
  iv_gen : Treaty_crypto.Aead.Iv_gen.t;
  handlers : (int, Secure_msg.meta -> string -> string) Hashtbl.t;
  pending : (int, (string, error) result Sim.ivar) Hashtbl.t;
  dedup : (int * int * int, dedup_entry) Hashtbl.t;
  dedup_by_tx : (int * int, int list ref) Hashtbl.t;
  dedup_expiry : ((int * int) * int) Queue.t;
      (* (coord, tx_seq) of non-transactional identities with insertion time,
         oldest first: their callers never send forget_tx, so they are
         reclaimed by TTL instead. *)
  mutable next_req_id : int;
  epoch : int;
  mutable next_tx_seq : int;
  mutable alive : bool;
  stats : stats;
}

let crypto_charge t ~bytes =
  match t.config.security with
  | Secure_msg.Plain -> ()
  | Secure_msg.Secure _ -> Enclave.charge_crypto t.enclave ~bytes

(* Allocate, touch and free a message buffer around an action — the paper's
   "buffers remain allocated until the entire request has been served". *)
let with_msgbuf t size f =
  let buf = Mempool.alloc t.pool ~owner:t.node_id t.config.msgbuf_region size in
  Fun.protect ~finally:(fun () -> Mempool.free t.pool ~owner:t.node_id buf) f

let send_wire t ~dst meta data =
  if not t.alive then ()
  else
  let data_len = String.length data in
  let wire_len = Secure_msg.wire_size t.config.security ~data_len in
  with_msgbuf t wire_len (fun () ->
      if t.config.rdtsc_ocalls then Enclave.world_switch t.enclave;
      Transport.charge t.config.params t.enclave t.config.transport
        ~rpc_layer:true ~dir:`Tx ~bytes:wire_len;
      crypto_charge t ~bytes:wire_len;
      let wire = Secure_msg.encode t.config.security ~iv_gen:t.iv_gen meta data in
      Net.send t.net ~src:t.node_id ~dst wire)

let send_response t ~dst (meta : Secure_msg.meta) payload =
  t.stats.responses_sent <- t.stats.responses_sent + 1;
  send_wire t ~dst { meta with is_response = true; src = t.node_id } payload

let record_dedup t key entry =
  Hashtbl.replace t.dedup key entry;
  let coord, tx_seq, _ = key in
  let ops =
    match Hashtbl.find_opt t.dedup_by_tx (coord, tx_seq) with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.dedup_by_tx (coord, tx_seq) l;
        (* Non-transactional identities (tx_seq < 0) have no commit/abort to
           forget them; schedule TTL reclamation instead. *)
        if tx_seq < 0 then Queue.push ((coord, tx_seq), Sim.now t.sim) t.dedup_expiry;
        l
  in
  let _, _, op = key in
  ops := op :: !ops

let forget_tx t ~coord ~tx_seq =
  match Hashtbl.find_opt t.dedup_by_tx (coord, tx_seq) with
  | None -> ()
  | Some ops ->
      List.iter (fun op -> Hashtbl.remove t.dedup (coord, tx_seq, op)) !ops;
      Hashtbl.remove t.dedup_by_tx (coord, tx_seq)

let expire_dedup t =
  let now = Sim.now t.sim in
  let rec drain () =
    match Queue.peek_opt t.dedup_expiry with
    | Some ((coord, tx_seq), born) when now - born >= t.config.dedup_ttl_ns ->
        ignore (Queue.pop t.dedup_expiry);
        forget_tx t ~coord ~tx_seq;
        drain ()
    | _ -> ()
  in
  drain ()

let dedup_size t = Hashtbl.length t.dedup

let handle_request t (meta : Secure_msg.meta) data =
  expire_dedup t;
  let key = Secure_msg.at_most_once_key meta in
  (* A crashed/stopped endpoint must not answer — not even from its response
     cache: only the [alive] check at reply time covers handlers and cache
     reads that blocked across the crash. *)
  let reply payload = if t.alive then send_response t ~dst:meta.src meta payload in
  match Hashtbl.find_opt t.dedup key with
  | Some (Done payload) ->
      (* Replayed/duplicated request: answer from the cache, never
         re-execute (freshness / at-most-once, §VII-A). *)
      t.stats.replays_suppressed <- t.stats.replays_suppressed + 1;
      reply payload
  | Some (Running iv) ->
      t.stats.replays_suppressed <- t.stats.replays_suppressed + 1;
      let payload = Sim.read t.sim iv in
      reply payload
  | None -> (
      match Hashtbl.find_opt t.handlers meta.kind with
      | None -> () (* unknown kind: drop; caller times out *)
      | Some handler ->
          let running = Sim.ivar () in
          record_dedup t key (Running running);
          let payload = handler meta data in
          (* The handler may have torn down this transaction's dedup state
             (commit/abort run [forget_tx] while finishing the tx); blindly
             re-inserting [Done] here would orphan the entry — present in
             [dedup] but absent from [dedup_by_tx] — and leak it forever. *)
          if Hashtbl.mem t.dedup key then Hashtbl.replace t.dedup key (Done payload);
          Sim.fill running payload;
          reply payload)

let on_packet t (pkt : Treaty_netsim.Packet.t) =
  (* Runs as a network-delivery event; spawn a fiber so handlers can block. *)
  Sim.spawn t.sim (fun () ->
      if t.alive then begin
        if t.config.rdtsc_ocalls then Enclave.world_switch t.enclave;
        Transport.charge t.config.params t.enclave t.config.transport
          ~rpc_layer:true ~dir:`Rx ~bytes:pkt.size;
        crypto_charge t ~bytes:(String.length pkt.payload);
        match Secure_msg.decode t.config.security pkt.payload with
        | Error (`Tampered | `Malformed) ->
            t.stats.mac_failures <- t.stats.mac_failures + 1
        | Ok (meta, data) ->
            if meta.is_response then begin
              match Hashtbl.find_opt t.pending meta.req_id with
              | Some iv ->
                  Hashtbl.remove t.pending meta.req_id;
                  ignore (Sim.try_fill iv (Ok data))
              | None -> () (* response after timeout: drop *)
            end
            else handle_request t meta data
      end)

let create sim ~net ~enclave ~pool ~config ~node_id ?net_config () =
  let t =
    {
      sim;
      net;
      enclave;
      pool;
      config;
      node_id;
      iv_gen = Treaty_crypto.Aead.Iv_gen.create ~node_id;
      handlers = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      dedup = Hashtbl.create 256;
      dedup_by_tx = Hashtbl.create 64;
      dedup_expiry = Queue.create ();
      next_req_id = 0;
      epoch = (incr next_epoch; !next_epoch);
      next_tx_seq = 0;
      alive = true;
      stats =
        {
          requests_sent = 0;
          responses_sent = 0;
          mac_failures = 0;
          replays_suppressed = 0;
          timeouts = 0;
        };
    }
  in
  Net.register net ~id:node_id ?config:net_config (on_packet t);
  t

let node_id t = t.node_id
let stats t = t.stats
let enclave t = t.enclave
let register t ~kind handler = Hashtbl.replace t.handlers kind handler

let call t ~dst ~kind ?coord ?tx_seq ?op_id ?timeout_ns payload =
  let timeout_ns = Option.value timeout_ns ~default:t.config.timeout_ns in
  t.next_req_id <- t.next_req_id + 1;
  let req_id = t.next_req_id in
  let coord = Option.value coord ~default:t.node_id in
  let tx_seq =
    match tx_seq with
    | Some s -> s
    | None ->
        (* Non-transactional call: fresh identity, unique across endpoint
           incarnations, so peer dedup caches never serve a stale reply. *)
        t.next_tx_seq <- t.next_tx_seq + 1;
        -((t.epoch * 1_000_000) + t.next_tx_seq)
  in
  let op_id = Option.value op_id ~default:req_id in
  let meta =
    {
      Secure_msg.coord;
      tx_seq;
      op_id;
      src = t.node_id;
      kind;
      is_response = false;
      req_id;
    }
  in
  t.stats.requests_sent <- t.stats.requests_sent + 1;
  let iv = Sim.ivar () in
  Hashtbl.replace t.pending req_id iv;
  send_wire t ~dst meta payload;
  match Sim.read_timeout t.sim ~ns:timeout_ns iv with
  | Some r -> r
  | None ->
      Hashtbl.remove t.pending req_id;
      t.stats.timeouts <- t.stats.timeouts + 1;
      Error `Timeout

let shutdown t =
  t.alive <- false;
  Net.unregister t.net ~id:t.node_id
