module Sim = Treaty_sim.Sim
module Enclave = Treaty_tee.Enclave
module Mempool = Treaty_memalloc.Mempool
module Net = Treaty_netsim.Net
module Wire = Treaty_util.Wire
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics

type config = {
  transport : Transport.kind;
  params : Transport.params;
  security : Secure_msg.security;
  msgbuf_region : Mempool.region;
  rdtsc_ocalls : bool;
  timeout_ns : int;
  dedup_ttl_ns : int;
  burst_window_ns : int;
  burst_max_msgs : int;
  batch_crypto : bool;
}

let default_config ~security =
  {
    transport = Transport.Dpdk;
    params = Transport.default_params;
    security;
    msgbuf_region = Mempool.Host;
    rdtsc_ocalls = false;
    timeout_ns = 50_000_000 (* 50 ms *);
    dedup_ttl_ns = 2_000_000_000 (* 2 s *);
    burst_window_ns = 5_000;
    burst_max_msgs = 32;
    batch_crypto = true;
  }

type error = [ `Timeout | `Tampered ]

type stats = {
  mutable requests_sent : int;
  mutable responses_sent : int;
  mutable mac_failures : int;
  mutable replays_suppressed : int;
  mutable timeouts : int;
  mutable bursts_sent : int;
  mutable burst_msgs : int;
}

type dedup_entry = Running of string Sim.ivar | Done of string

(* Endpoint incarnation counter: non-transactional calls from a restarted
   endpoint must not collide with its previous life's identities in peers'
   at-most-once caches. Deterministic (creation order is deterministic). *)
let next_epoch = ref 0

type t = {
  sim : Sim.t;
  net : Net.t;
  enclave : Enclave.t;
  pool : Mempool.t;
  config : config;
  node_id : int;
  iv_gen : Treaty_crypto.Aead.Iv_gen.t;
  handlers : (int, Secure_msg.meta -> string -> string) Hashtbl.t;
  pending : (int, (string, error) result Sim.ivar) Hashtbl.t;
  dedup : (int * int * int, dedup_entry) Hashtbl.t;
  dedup_by_tx : (int * int, int list ref) Hashtbl.t;
  dedup_expiry : ((int * int) * int) Queue.t;
      (* (coord, tx_seq) of non-transactional identities with insertion time,
         oldest first: their callers never send forget_tx, so they are
         reclaimed by TTL instead. *)
  mutable next_req_id : int;
  epoch : int;
  mutable next_tx_seq : int;
  mutable alive : bool;
  outq : (int, (Secure_msg.meta * string) list ref) Hashtbl.t;
      (* dst -> plaintext messages (newest first) awaiting the doorbell;
         sealing happens at flush, once per packet in v2. *)
  mutable doorbell_active : bool;
  stats : stats;
}

let crypto_charge t ~bytes =
  match t.config.security with
  | Secure_msg.Plain -> ()
  | Secure_msg.Secure _ -> Enclave.charge_crypto t.enclave ~bytes

(* Allocate, touch and free a message buffer around an action — the paper's
   "buffers remain allocated until the entire request has been served". *)
let with_msgbuf t size f =
  let buf = Mempool.alloc t.pool ~owner:t.node_id t.config.msgbuf_region size in
  Fun.protect ~finally:(fun () -> Mempool.free t.pool ~owner:t.node_id buf) f

(* Packet envelope v1: a version byte then a length-framed list of
   individually sealed wires. Kept as the [batch_crypto = false] ablation —
   each sub-message pays its own IV, keystream setup and MAC. *)
let encode_packet_v1 t msgs =
  let wires =
    List.map
      (fun ((meta : Secure_msg.meta), data) ->
        let wire_len =
          Secure_msg.wire_size t.config.security ~data_len:(String.length data)
        in
        with_msgbuf t wire_len (fun () ->
            if t.config.rdtsc_ocalls then Enclave.world_switch t.enclave;
            crypto_charge t ~bytes:wire_len;
            Secure_msg.encode t.config.security ~iv_gen:t.iv_gen meta data))
      msgs
  in
  let b = Buffer.create 256 in
  Wire.w8 b 1;
  Wire.wlist b Wire.wstr wires;
  Buffer.contents b

(* Packet envelope v2: the whole burst framed into one mempool-backed buffer
   and sealed with a single packet-level AEAD — one IV, one keystream pass,
   one MAC, one crypto charge per packet instead of per sub-message. The
   buffer is allocated for exactly the packet's lifetime (TreatySan checks
   it drains). *)
let encode_packet_v2 t msgs =
  let size =
    Secure_msg.Burst.wire_size t.config.security
      ~data_lens:(List.map (fun (_, data) -> String.length data) msgs)
  in
  let buf = Mempool.alloc t.pool ~owner:t.node_id t.config.msgbuf_region size in
  Fun.protect ~finally:(fun () -> Mempool.free t.pool ~owner:t.node_id buf)
    (fun () ->
      if t.config.rdtsc_ocalls then Enclave.world_switch t.enclave;
      crypto_charge t ~bytes:size;
      let n =
        Secure_msg.Burst.encode_into t.config.security ~iv_gen:t.iv_gen
          buf.Mempool.bytes msgs
      in
      Bytes.sub_string buf.Mempool.bytes 0 n)

(* Ring the doorbell: one netsim packet, one transport traversal and one
   serialization (fragmented by MTU) carry the whole burst to [dst]. *)
let flush_burst t ~dst msgs =
  match msgs with
  | [] -> ()
  | _ ->
      let payload =
        if t.config.batch_crypto then encode_packet_v2 t msgs
        else encode_packet_v1 t msgs
      in
      let bytes = String.length payload in
      t.stats.bursts_sent <- t.stats.bursts_sent + 1;
      t.stats.burst_msgs <- t.stats.burst_msgs + List.length msgs;
      let bspan =
        if Trace.enabled () then
          Trace.begin_span ~node:t.node_id ~cat:"rpc" "rpc.burst"
            ~args:
              [ ("msgs", Trace.Int (List.length msgs));
                ("bytes", Trace.Int bytes); ("dst", Trace.Int dst) ]
        else Trace.none
      in
      Transport.charge_burst t.config.params t.enclave t.config.transport
        ~dir:`Tx ~bytes ~msgs:(List.length msgs);
      let frags = Transport.fragments (Enclave.cost t.enclave) ~bytes in
      Net.send t.net ~src:t.node_id ~dst ~wire_overhead:(64 * frags) payload;
      Trace.end_span bspan

let flush_all t =
  if not t.alive then Hashtbl.reset t.outq
  else begin
    let dsts = Hashtbl.fold (fun dst _ acc -> dst :: acc) t.outq [] in
    List.iter
      (fun dst ->
        match Hashtbl.find_opt t.outq dst with
        | None -> ()
        | Some q ->
            Hashtbl.remove t.outq dst;
            flush_burst t ~dst (List.rev !q))
      (List.sort compare dsts)
  end

let send_wire t ~dst meta data =
  if not t.alive then ()
  else if t.config.burst_window_ns <= 0 then flush_burst t ~dst [ (meta, data) ]
  else begin
    let q =
      match Hashtbl.find_opt t.outq dst with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.replace t.outq dst q;
          q
    in
    q := (meta, data) :: !q;
    if List.length !q >= t.config.burst_max_msgs then begin
      (* Full burst: ring the doorbell early instead of growing past what
         one TxBurst can carry. *)
      Hashtbl.remove t.outq dst;
      flush_burst t ~dst (List.rev !q)
    end
    else if not t.doorbell_active then begin
      t.doorbell_active <- true;
      Sim.spawn t.sim (fun () ->
          Sim.sleep t.sim t.config.burst_window_ns;
          t.doorbell_active <- false;
          flush_all t)
    end
  end

let send_response t ~dst (meta : Secure_msg.meta) payload =
  t.stats.responses_sent <- t.stats.responses_sent + 1;
  send_wire t ~dst { meta with is_response = true; src = t.node_id } payload

let record_dedup t key entry =
  Hashtbl.replace t.dedup key entry;
  let coord, tx_seq, _ = key in
  let ops =
    match Hashtbl.find_opt t.dedup_by_tx (coord, tx_seq) with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.dedup_by_tx (coord, tx_seq) l;
        (* Non-transactional identities (tx_seq < 0) have no commit/abort to
           forget them; schedule TTL reclamation instead. *)
        if tx_seq < 0 then Queue.push ((coord, tx_seq), Sim.now t.sim) t.dedup_expiry;
        l
  in
  let _, _, op = key in
  ops := op :: !ops

let forget_tx t ~coord ~tx_seq =
  match Hashtbl.find_opt t.dedup_by_tx (coord, tx_seq) with
  | None -> ()
  | Some ops ->
      List.iter (fun op -> Hashtbl.remove t.dedup (coord, tx_seq, op)) !ops;
      Hashtbl.remove t.dedup_by_tx (coord, tx_seq)

let expire_dedup t =
  let now = Sim.now t.sim in
  let rec drain () =
    match Queue.peek_opt t.dedup_expiry with
    | Some ((coord, tx_seq), born) when now - born >= t.config.dedup_ttl_ns ->
        ignore (Queue.pop t.dedup_expiry);
        forget_tx t ~coord ~tx_seq;
        drain ()
    | _ -> ()
  in
  drain ()

let dedup_size t = Hashtbl.length t.dedup

let handle_request t (meta : Secure_msg.meta) data =
  expire_dedup t;
  let key = Secure_msg.at_most_once_key meta in
  (* A crashed/stopped endpoint must not answer — not even from its response
     cache: only the [alive] check at reply time covers handlers and cache
     reads that blocked across the crash. *)
  let reply payload = if t.alive then send_response t ~dst:meta.src meta payload in
  match Hashtbl.find_opt t.dedup key with
  | Some (Done payload) ->
      (* Replayed/duplicated request: answer from the cache, never
         re-execute (freshness / at-most-once, §VII-A). *)
      t.stats.replays_suppressed <- t.stats.replays_suppressed + 1;
      reply payload
  | Some (Running iv) ->
      t.stats.replays_suppressed <- t.stats.replays_suppressed + 1;
      let payload = Sim.read t.sim iv in
      reply payload
  | None -> (
      match Hashtbl.find_opt t.handlers meta.kind with
      | None -> () (* unknown kind: drop; caller times out *)
      | Some handler ->
          let hspan =
            if Trace.enabled () then begin
              let coord, tx_seq, op_id = key in
              let parent = Trace.ctx_resolve ~coord ~tx_seq ~op_id in
              let s =
                Trace.begin_span ~parent ~node:t.node_id ~cat:"rpc"
                  "rpc.handle"
                  ~args:[ ("kind", Trace.Int meta.kind) ]
              in
              (* Re-point the registration at the handler span so spans the
                 handler opens under the same triple nest beneath it; the
                 caller's own registration is restored implicitly — nothing
                 else resolves this op after the handler returns. *)
              Trace.ctx_register ~coord ~tx_seq ~op_id s;
              s
            end
            else Trace.none
          in
          let running = Sim.ivar () in
          record_dedup t key (Running running);
          let payload = handler meta data in
          if hspan <> Trace.none then begin
            let coord, tx_seq, op_id = key in
            Trace.ctx_unregister ~coord ~tx_seq ~op_id;
            Trace.end_span hspan
          end;
          (* The handler may have torn down this transaction's dedup state
             (commit/abort run [forget_tx] while finishing the tx); blindly
             re-inserting [Done] here would orphan the entry — present in
             [dedup] but absent from [dedup_by_tx] — and leak it forever. *)
          if Hashtbl.mem t.dedup key then Hashtbl.replace t.dedup key (Done payload);
          Sim.fill running payload;
          reply payload)

let dispatch_decoded t (meta : Secure_msg.meta) data =
  if meta.is_response then begin
    match Hashtbl.find_opt t.pending meta.req_id with
    | Some iv ->
        Hashtbl.remove t.pending meta.req_id;
        ignore (Sim.try_fill iv (Ok data))
    | None -> () (* response after timeout: drop *)
  end
  else handle_request t meta data

let dispatch_wire t wire =
  crypto_charge t ~bytes:(String.length wire);
  match Secure_msg.decode t.config.security wire with
  | Error (`Tampered | `Malformed) ->
      t.stats.mac_failures <- t.stats.mac_failures + 1
  | Ok (meta, data) -> dispatch_decoded t meta data

let rx_malformed t (pkt : Treaty_netsim.Packet.t) =
  (* Packet framing destroyed by tampering: nothing inside is
     recoverable. *)
  Transport.charge t.config.params t.enclave t.config.transport ~rpc_layer:true
    ~dir:`Rx ~bytes:pkt.size;
  t.stats.mac_failures <- t.stats.mac_failures + 1

(* One fiber per message: a burst may interleave a blocking request (e.g. a
   prepare awaiting stabilization) with the very counter-service traffic it
   is waiting on, so messages must not queue behind each other's
   handlers. *)
let on_packet t (pkt : Treaty_netsim.Packet.t) =
  (* Runs as a network-delivery event; spawn a fiber so handlers can block. *)
  Sim.spawn t.sim (fun () ->
      if t.alive then begin
        if t.config.rdtsc_ocalls then Enclave.world_switch t.enclave;
        if String.length pkt.payload = 0 then rx_malformed t pkt
        else
          match Char.code pkt.payload.[0] with
          | 1 -> (
              (* v1 envelope: per-message seal; decode (and its crypto
                 charge) happens in each sub-message's fiber. *)
              match Wire.rlist (Wire.reader ~pos:1 pkt.payload) Wire.rstr with
              | exception Wire.Malformed _ -> rx_malformed t pkt
              | wires ->
                  Transport.charge_burst t.config.params t.enclave
                    t.config.transport ~dir:`Rx ~bytes:pkt.size
                    ~msgs:(List.length wires);
                  List.iter
                    (fun wire ->
                      Sim.spawn t.sim (fun () ->
                          if t.alive then dispatch_wire t wire))
                    wires)
          | 2 -> (
              (* v2 packet: verify and decrypt ONCE for the whole burst,
                 then hand out plaintext sub-message views. *)
              match Secure_msg.Burst.decode t.config.security pkt.payload with
              | Error (`Tampered | `Malformed) ->
                  Transport.charge t.config.params t.enclave t.config.transport
                    ~rpc_layer:true ~dir:`Rx ~bytes:pkt.size;
                  crypto_charge t ~bytes:pkt.size;
                  t.stats.mac_failures <- t.stats.mac_failures + 1
              | Ok msgs ->
                  Transport.charge_burst t.config.params t.enclave
                    t.config.transport ~dir:`Rx ~bytes:pkt.size
                    ~msgs:(List.length msgs);
                  crypto_charge t ~bytes:pkt.size;
                  List.iter
                    (fun (meta, data) ->
                      Sim.spawn t.sim (fun () ->
                          if t.alive then dispatch_decoded t meta data))
                    msgs)
          | _ -> rx_malformed t pkt
      end)

let create sim ~net ~enclave ~pool ~config ~node_id ?net_config () =
  let t =
    {
      sim;
      net;
      enclave;
      pool;
      config;
      node_id;
      iv_gen = Treaty_crypto.Aead.Iv_gen.create ~node_id;
      handlers = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      dedup = Hashtbl.create 256;
      dedup_by_tx = Hashtbl.create 64;
      dedup_expiry = Queue.create ();
      next_req_id = 0;
      epoch = (incr next_epoch; !next_epoch);
      next_tx_seq = 0;
      alive = true;
      outq = Hashtbl.create 8;
      doorbell_active = false;
      stats =
        {
          requests_sent = 0;
          responses_sent = 0;
          mac_failures = 0;
          replays_suppressed = 0;
          timeouts = 0;
          bursts_sent = 0;
          burst_msgs = 0;
        };
    }
  in
  Net.register net ~id:node_id ?config:net_config (on_packet t);
  t

let node_id t = t.node_id
let stats t = t.stats
let enclave t = t.enclave
let register t ~kind handler = Hashtbl.replace t.handlers kind handler

let call t ~dst ~kind ?coord ?tx_seq ?op_id ?timeout_ns ?span payload =
  let timeout_ns = Option.value timeout_ns ~default:t.config.timeout_ns in
  t.next_req_id <- t.next_req_id + 1;
  let req_id = t.next_req_id in
  let coord = Option.value coord ~default:t.node_id in
  let tx_seq =
    match tx_seq with
    | Some s -> s
    | None ->
        (* Non-transactional call: fresh identity, unique across endpoint
           incarnations, so peer dedup caches never serve a stale reply. *)
        t.next_tx_seq <- t.next_tx_seq + 1;
        -((t.epoch * 1_000_000) + t.next_tx_seq)
  in
  let op_id = Option.value op_id ~default:req_id in
  let meta =
    {
      Secure_msg.coord;
      tx_seq;
      op_id;
      src = t.node_id;
      kind;
      is_response = false;
      req_id;
    }
  in
  t.stats.requests_sent <- t.stats.requests_sent + 1;
  let cspan =
    if Trace.enabled () then begin
      (* tx_seq stays out of the args: non-transactional identities embed
         the process-global endpoint epoch, which differs between two
         in-process runs of the same seed. *)
      let s =
        Trace.begin_span ?parent:span ~node:t.node_id ~cat:"rpc" "rpc.call"
          ~args:[ ("kind", Trace.Int kind); ("dst", Trace.Int dst) ]
      in
      Trace.ctx_register ~coord ~tx_seq ~op_id s;
      s
    end
    else Trace.none
  in
  let t0 = Sim.now t.sim in
  let finish status result =
    if cspan <> Trace.none then begin
      Trace.ctx_unregister ~coord ~tx_seq ~op_id;
      Trace.end_span cspan ~args:[ ("status", Trace.Str status) ]
    end;
    Metrics.observe "rpc.wait_ns" (Sim.now t.sim - t0);
    result
  in
  let iv = Sim.ivar () in
  Hashtbl.replace t.pending req_id iv;
  send_wire t ~dst meta payload;
  match Sim.read_timeout t.sim ~ns:timeout_ns iv with
  | Some r -> finish "ok" r
  | None ->
      Hashtbl.remove t.pending req_id;
      t.stats.timeouts <- t.stats.timeouts + 1;
      finish "timeout" (Error `Timeout)

let shutdown t =
  t.alive <- false;
  Hashtbl.reset t.outq;
  Net.unregister t.net ~id:t.node_id
