(* Treaty command-line driver: run workloads against a simulated cluster,
   inspect a recovery, or mount an attack — without writing OCaml.

     treaty run   --workload ycsb --profile treaty-enc-stab --clients 32
     treaty run   --workload tpcc --warehouses 10 --duration-ms 500
     treaty attack --kind rollback --profile treaty-enc-stab
     treaty recover --profile treaty-enc --crash-after 20 *)

open Treaty_core
module Sim = Treaty_sim.Sim
module W = Treaty_workload
module Trace = Treaty_obs.Trace
module Metrics = Treaty_obs.Metrics

let profiles =
  [
    ("ds-rocksdb", Config.ds_rocksdb);
    ("native", Config.native_treaty);
    ("native-enc", Config.native_treaty_enc);
    ("treaty", Config.treaty_no_enc);
    ("treaty-enc", Config.treaty_enc);
    ("treaty-enc-stab", Config.treaty_enc_stab);
  ]

let profile_conv =
  Cmdliner.Arg.enum profiles

let mk_config profile nodes = { (Config.with_profile Config.default profile) with Config.nodes }

let bootstrap sim config ?route () =
  match Cluster.create sim config ?route () with
  | Ok c -> c
  | Error m ->
      Printf.eprintf "cluster bootstrap failed: %s\n" m;
      exit 1

(* --- run ---------------------------------------------------------------- *)

let report_sanitizer cluster =
  if (Cluster.config cluster).Config.profile.Config.sanitize then
    match Cluster.sanitize_check cluster with
    | Ok () -> Printf.printf "sanitizer: clean\n"
    | Error m ->
        Printf.printf "sanitizer: %s\n" m;
        exit 1

(* Post-run observability reporting, shared by the run-command workloads:
   the registry-backed pipeline line (the old bespoke pipeline_stats record
   folded into gauges), the full metrics dump, and the Chrome trace. *)
let report_obs ~trace_file ~metrics cluster =
  Printf.printf "pipeline: %s\n" (Cluster.pipeline_summary cluster);
  if metrics then begin
    Cluster.publish_metrics cluster;
    print_string (Metrics.dump ())
  end;
  match trace_file with
  | None -> ()
  | Some f ->
      Trace.export_file f;
      Printf.printf "trace: wrote %s (chrome://tracing or ui.perfetto.dev)\n" f

let run_cmd profile no_batching no_batch_crypto no_read_opt cc sanitize nodes
    workload clients duration_ms warehouses read_pct trace_file metrics =
  let profile =
    if no_batching then { profile with Config.batching = false } else profile
  in
  let profile =
    if no_batch_crypto then { profile with Config.batch_crypto = false }
    else profile
  in
  let profile =
    if no_read_opt then { profile with Config.read_opt = false } else profile
  in
  let profile = if sanitize then { profile with Config.sanitize = true } else profile in
  let profile =
    { profile with Config.trace = trace_file <> None; metrics }
  in
  if sanitize then Treaty_util.Sanitizer.reset ();
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = { (mk_config profile nodes) with Config.isolation = cc } in
      Printf.printf "profile: %s (%s), %d nodes, %d clients, %s for %d ms\n%!"
        (Config.profile_name profile)
        (match cc with
        | Types.Pessimistic -> "2pl"
        | Types.Optimistic -> "occ")
        nodes clients workload duration_ms;
      match workload with
      | "ycsb" ->
          let cluster = bootstrap sim config () in
          let ycsb =
            { W.Ycsb.default with W.Ycsb.read_fraction = float_of_int read_pct /. 100.0 }
          in
          let loader = Client.connect_exn cluster ~client_id:900 in
          let rng = Treaty_sim.Rng.create 7L in
          List.iteri
            (fun i batch_start ->
              ignore i;
              ignore
                (Client.with_txn loader (fun txn ->
                     let rec go j =
                       if j >= batch_start + 100 || j >= ycsb.W.Ycsb.n_keys then Ok ()
                       else
                         match
                           Client.put loader txn (W.Ycsb.key_of_index j)
                             (W.Ycsb.make_value ycsb rng)
                         with
                         | Ok () -> go (j + 1)
                         | Error e -> Error e
                     in
                     go batch_start)))
            (List.init ((ycsb.W.Ycsb.n_keys + 99) / 100) (fun i -> i * 100));
          Client.disconnect loader;
          let gens = Hashtbl.create 16 in
          let r =
            W.Driver.run_clients cluster ~clients
              ~duration_ns:(duration_ms * 1_000_000)
              ~txn:(fun client ~client_index rng ->
                let g =
                  match Hashtbl.find_opt gens client_index with
                  | Some g -> g
                  | None ->
                      let g = W.Ycsb.generator ycsb rng in
                      Hashtbl.replace gens client_index g;
                      g
                in
                (* Under OCC the client declares all-read transactions
                   read-only so they take the zero-RPC snapshot path. *)
                W.Ycsb.run_txn
                  ~ro_fast_path:(cc = Types.Optimistic)
                  client None (W.Ycsb.next_txn g))
              ()
          in
          Printf.printf "%s\n" (W.Stats.summary r.W.Driver.stats ~duration_ns:r.W.Driver.duration_ns);
          report_obs ~trace_file ~metrics cluster;
          report_sanitizer cluster;
          Cluster.shutdown cluster
      | "tpcc" ->
          let tpcc = W.Tpcc.config ~warehouses () in
          let route = W.Tpcc.route tpcc ~nodes in
          let cluster = bootstrap sim config ~route () in
          let loader = Client.connect_exn cluster ~client_id:900 in
          W.Tpcc.load tpcc loader (Treaty_sim.Rng.create 7L);
          Client.disconnect loader;
          let r =
            W.Driver.run_clients cluster ~clients
              ~duration_ns:(duration_ms * 1_000_000)
              ~txn:(fun client ~client_index rng ->
                let home = 1 + (client_index mod warehouses) in
                W.Tpcc.run tpcc client rng ~nodes ~home (W.Tpcc.pick_kind rng))
              ()
          in
          Printf.printf "%s\n" (W.Stats.summary r.W.Driver.stats ~duration_ns:r.W.Driver.duration_ns);
          report_obs ~trace_file ~metrics cluster;
          report_sanitizer cluster;
          Cluster.shutdown cluster
      | other ->
          Printf.eprintf "unknown workload %S (ycsb | tpcc)\n" other;
          exit 1)

(* --- attack ------------------------------------------------------------- *)

let attack_cmd profile kind =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = mk_config profile 3 in
      let cluster = bootstrap sim config () in
      let c = Client.connect_exn cluster ~client_id:1 in
      let put k v = Client.with_txn c (fun txn -> Client.put c txn k v) in
      (match kind with
      | "rollback" ->
          for i = 0 to 8 do
            ignore (put (Printf.sprintf "k%d" i) "old")
          done;
          let ssd = Cluster.node_ssd cluster 0 in
          let snap = Treaty_storage.Ssd.snapshot ssd in
          for i = 0 to 8 do
            ignore (put (Printf.sprintf "k%d" i) "new")
          done;
          Cluster.crash_node cluster 0;
          Treaty_storage.Ssd.restore ssd snap;
          (match Cluster.restart_node cluster 0 with
          | Error m -> Printf.printf "rollback DETECTED: %s\n" m
          | Ok () -> Printf.printf "rollback UNDETECTED (profile has no stabilization)\n")
      | "tamper" ->
          ignore (put "t" "v");
          Cluster.crash_node cluster 0;
          let ssd = Cluster.node_ssd cluster 0 in
          List.iter
            (fun f -> Treaty_storage.Ssd.tamper ssd f ~off:(Treaty_storage.Ssd.size ssd f / 2))
            (Treaty_storage.Ssd.list_files ssd);
          (match Cluster.restart_node cluster 0 with
          | Error m -> Printf.printf "tampering DETECTED: %s\n" m
          | Ok () -> Printf.printf "node restarted on tampered storage\n")
      | "replay" ->
          Treaty_netsim.Net.capture (Cluster.net cluster) ~limit:64;
          ignore (put "r" "1");
          List.iter
            (Treaty_netsim.Net.replay (Cluster.net cluster))
            (Treaty_netsim.Net.captured (Cluster.net cluster));
          Sim.sleep sim 20_000_000;
          let suppressed =
            List.fold_left
              (fun acc i ->
                acc + (Treaty_rpc.Erpc.stats (Node.rpc (Cluster.node cluster i))).replays_suppressed)
              0 [ 0; 1; 2 ]
          in
          Printf.printf "replayed all captured packets: %d duplicates suppressed\n" suppressed
      | other ->
          Printf.eprintf "unknown attack %S (rollback | tamper | replay)\n" other;
          exit 1);
      Client.disconnect c;
      Cluster.shutdown cluster)

(* --- recover ------------------------------------------------------------ *)

let recover_cmd profile crash_after =
  let sim = Sim.create () in
  Sim.run sim (fun () ->
      let config = mk_config profile 3 in
      let cluster = bootstrap sim config () in
      let c = Client.connect_exn cluster ~client_id:1 in
      for i = 0 to crash_after - 1 do
        ignore (Client.with_txn c (fun txn -> Client.put c txn (Printf.sprintf "k%d" i) "v"))
      done;
      Printf.printf "committed %d txs; crashing node 1...\n%!" crash_after;
      Cluster.crash_node cluster 0;
      let t0 = Sim.now sim in
      (match Cluster.restart_node cluster 0 with
      | Ok () ->
          Printf.printf "recovered in %.2f ms simulated (attestation + log replay + verification)\n"
            (float_of_int (Sim.now sim - t0) /. 1e6)
      | Error m -> Printf.printf "recovery failed: %s\n" m);
      let missing = ref 0 in
      ignore
        (Client.with_txn c (fun txn ->
             for i = 0 to crash_after - 1 do
               match Client.get c txn (Printf.sprintf "k%d" i) with
               | Ok (Some _) -> ()
               | _ -> incr missing
             done;
             Ok ()));
      Printf.printf "post-recovery: %d/%d keys intact\n" (crash_after - !missing) crash_after;
      Client.disconnect c;
      Cluster.shutdown cluster)

(* --- chaos --------------------------------------------------------------- *)

let chaos_cmd seeds first_seed nodes clients horizon_ms no_batching
    no_batch_crypto no_read_opt cc seed_opt trace_file =
  (* --seed N: run exactly that one seed (the replay-and-trace workflow). *)
  let seeds, first_seed =
    match seed_opt with Some s -> (1, s) | None -> (seeds, first_seed)
  in
  let cfg =
    {
      Treaty_chaos.Chaos.default_config with
      Treaty_chaos.Chaos.nodes;
      clients;
      horizon_ns = horizon_ms * 1_000_000;
      batching = not no_batching;
      batch_crypto = not no_batch_crypto;
      read_opt = not no_read_opt;
      cc;
      trace = trace_file <> None;
    }
  in
  let failures = ref 0 in
  for seed = first_seed to first_seed + seeds - 1 do
    (match Treaty_chaos.Chaos.run_seed ~config:cfg ~seed () with
    | Ok r ->
        Format.printf "PASS %a@." Treaty_chaos.Chaos.pp_report r
    | Error m ->
        incr failures;
        Printf.printf "FAIL seed=%d: %s\n%!" seed m);
    (* Traces are per seed; with a multi-seed sweep the file holds the last
       run (use --seed to trace a specific one). *)
    match trace_file with
    | Some f ->
        Trace.export_file f;
        Printf.printf "trace: wrote %s for seed %d\n%!" f seed
    | None -> ()
  done;
  Printf.printf "%d/%d seeds passed\n" (seeds - !failures) seeds;
  if !failures > 0 then exit 1

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let profile_arg =
  Arg.(value & opt profile_conv Config.treaty_enc_stab
       & info [ "profile" ] ~doc:"Security profile: $(docv)."
           ~docv:"ds-rocksdb|native|native-enc|treaty|treaty-enc|treaty-enc-stab")

let nodes_arg = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Storage nodes.")
let clients_arg = Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Closed-loop clients.")
let duration_arg = Arg.(value & opt int 300 & info [ "duration-ms" ] ~doc:"Measured window (simulated ms).")
let workload_arg = Arg.(value & opt string "ycsb" & info [ "workload" ] ~doc:"ycsb or tpcc.")
let warehouses_arg = Arg.(value & opt int 4 & info [ "warehouses" ] ~doc:"TPC-C warehouses.")
let read_pct_arg = Arg.(value & opt int 50 & info [ "read-pct" ] ~doc:"YCSB read percentage.")
let attack_arg = Arg.(value & opt string "rollback" & info [ "kind" ] ~doc:"rollback, tamper or replay.")
let crash_after_arg = Arg.(value & opt int 20 & info [ "crash-after" ] ~doc:"Transactions before the crash.")
let seeds_arg = Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"How many fault schedules to sweep.")
let first_seed_arg = Arg.(value & opt int 1 & info [ "first-seed" ] ~doc:"First seed of the sweep.")
let chaos_clients_arg = Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Workload clients per run.")
let horizon_arg = Arg.(value & opt int 600 & info [ "horizon-ms" ] ~doc:"Fault window length (simulated ms).")
let no_batching_arg =
  Arg.(value & flag
       & info [ "no-batching" ]
           ~doc:"Disable commit-pipeline batching (epoch stabilization, Clog \
                 group commit, RPC burst coalescing).")

let no_batch_crypto_arg =
  Arg.(value & flag
       & info [ "no-batch-crypto" ]
           ~doc:"Disable burst-level AEAD (the v2 packet envelope that seals \
                 a whole RPC burst with one IV/keystream/MAC): fall back to \
                 sealing every sub-message individually (v1 envelope).")

let no_read_opt_arg =
  Arg.(value & flag
       & info [ "no-read-opt" ]
           ~doc:"Disable the authenticated read-path acceleration (SSTable \
                 Bloom filters and the enclave verified block cache): every \
                 point read verifies and decrypts its block from the SSD.")

let cc_arg =
  Arg.(value
       & opt (enum [ ("2pl", Types.Pessimistic); ("occ", Types.Optimistic) ])
           Types.Pessimistic
       & info [ "cc" ]
           ~doc:"Concurrency-control mode: $(docv). 2pl (default) takes \
                 read/write locks as operations execute; occ buffers \
                 lock-free reads against the begin snapshot and validates \
                 them at prepare, and all-read transactions take the \
                 zero-RPC read-only snapshot path."
           ~docv:"2pl|occ")

let sanitize_arg =
  Arg.(value & flag
       & info [ "sanitize" ]
           ~doc:"Run under TreatySan: lockset tracking, the fiber-starvation \
                 watchdog and plaintext-taint checks, with a verdict after \
                 the run (non-zero exit on violations).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ]
           ~doc:"Record a distributed trace of the run and write it to \
                 $(docv) as Chrome trace_event JSON (open in chrome://tracing \
                 or ui.perfetto.dev). Deterministic: same seed, same bytes."
           ~docv:"FILE")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Dump the metrics registry after the run: abort-reason \
                 taxonomy, lock/stabilization/network wait histograms, \
                 fiber-scheduler profile and pipeline gauges.")

let single_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "seed" ]
           ~doc:"Run exactly this one seed (overrides --seeds/--first-seed).")

let run_term =
  Term.(const run_cmd $ profile_arg $ no_batching_arg $ no_batch_crypto_arg
        $ no_read_opt_arg $ cc_arg $ sanitize_arg $ nodes_arg $ workload_arg
        $ clients_arg $ duration_arg $ warehouses_arg $ read_pct_arg
        $ trace_arg $ metrics_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a workload against a simulated cluster") run_term;
    Cmd.v (Cmd.info "attack" ~doc:"Mount an attack and report detection")
      Term.(const attack_cmd $ profile_arg $ attack_arg);
    Cmd.v (Cmd.info "recover" ~doc:"Crash a node and time its recovery")
      Term.(const recover_cmd $ profile_arg $ crash_after_arg);
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Sweep seeded fault schedules (crashes, partitions, CAS outages, \
            delay/duplication) and check serializability, durability, \
            atomicity and leak-freedom after each.")
      Term.(const chaos_cmd $ seeds_arg $ first_seed_arg $ nodes_arg
            $ chaos_clients_arg $ horizon_arg $ no_batching_arg
            $ no_batch_crypto_arg $ no_read_opt_arg $ cc_arg $ single_seed_arg
            $ trace_arg);
  ]

let () =
  exit (Cmd.eval (Cmd.group (Cmd.info "treaty" ~doc:"Treaty: secure distributed transactions") cmds))
